(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (section IV), prints paper-vs-measured rows, and
   runs a bechamel timing suite for the static-vs-dynamic cost claim
   (section IV-D1).

   Run with: dune exec bench/main.exe
   Pass --fast to shrink the dynamic workloads.
   Pass --json to run only the batch/incremental timing sections and
   write their numbers to BENCH_batch.json (make bench-json). *)

let fast = Array.exists (( = ) "--fast") Sys.argv
let json = Array.exists (( = ) "--json") Sys.argv

let sci = Mira_core.Report.scientific

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let dyn_fpi vm fname =
  match Mira_vm.Vm.profile_of vm fname with
  | None -> nan
  | Some p ->
      List.fold_left
        (fun acc mn -> acc +. float_of_int (Mira_vm.Vm.count_of p mn))
        0.0 Mira_core.Model_eval.fp_mnemonics

let dyn_fpi_per_call vm fname =
  match Mira_vm.Vm.profile_of vm fname with
  | None -> nan
  | Some p -> dyn_fpi vm fname /. float_of_int p.calls

let err_pct dyn static =
  if dyn = 0.0 then 0.0 else Float.abs (dyn -. static) /. dyn *. 100.0

(* Analyses reused across sections. *)
let stream_m =
  Mira_core.Mira.analyze ~source_name:"stream.mc" Mira_corpus.Corpus.stream

let dgemm_m =
  Mira_core.Mira.analyze ~source_name:"dgemm.mc" Mira_corpus.Corpus.dgemm

let minife_m =
  Mira_core.Mira.analyze ~source_name:"minife.mc" Mira_corpus.Corpus.minife

(* ---------- Table I ---------- *)

let table1 () =
  header "Table I: loop coverage (our corpus; paper surveyed 77-100%)";
  let rows =
    List.map
      (fun (name, src) ->
        Mira_core.Coverage.of_program ~name (Mira_srclang.Parser.parse src))
      Mira_corpus.Corpus.all
  in
  print_string (Mira_core.Coverage.table rows);
  let ts = List.fold_left (fun a (r : Mira_core.Coverage.t) -> a + r.statements) 0 rows in
  let ti = List.fold_left (fun a (r : Mira_core.Coverage.t) -> a + r.in_loops) 0 rows in
  Printf.printf "aggregate: %.0f%% of statements inside loop scopes\n"
    (100.0 *. float_of_int ti /. float_of_int ts)

(* ---------- Figures 2 and 3 ---------- *)

let figures23 () =
  header "Figures 2-3: source and binary AST dumps (dot)";
  let nodes s =
    List.length
      (List.filter
         (fun l ->
           let l = String.trim l in
           String.length l > 1 && l.[0] = 'n' && String.contains l '[')
         (String.split_on_char '\n' s))
  in
  let src_dot = Mira_core.Mira.source_dot minife_m in
  let bin_dot = Mira_core.Mira.binary_dot minife_m in
  Printf.printf
    "miniFE source AST dot: %d nodes; binary AST dot: %d nodes\n"
    (nodes src_dot) (nodes bin_dot);
  print_endline "(regenerate with: mira dot corpus/minife.mc [--binary])"

(* ---------- Figure 4 ---------- *)

let figure4 () =
  header "Figure 4: polyhedral models of the paper's listings";
  let open Mira_symexpr in
  let open Mira_poly in
  let p_int = Poly.of_int and v = Poly.var in
  let l2 =
    Domain.add_level
      (Domain.add_level Domain.empty
         (Domain.level "i" ~lo:(p_int 1) ~hi:(p_int 4)))
      (Domain.level "j" ~lo:(Poly.add (v "i") Poly.one) ~hi:(p_int 6))
  in
  let cases =
    [
      ("Listing 2 (Fig 4a): dependent nest", l2, 14);
      ( "Listing 4 (Fig 4b): if (j > 4)",
        Domain.add_guard l2 (Domain.Ge (Poly.sub (v "j") (p_int 5))),
        8 );
      ( "Listing 5 (Fig 4c): if (j mod 4 != 0)",
        Domain.add_guard l2 (Domain.Mod_ne (v "j", 4)),
        11 );
    ]
  in
  List.iter
    (fun (title, dom, expected) ->
      let got = Count.eval ~params:[] (Count.count dom) in
      Printf.printf "%s: %d points (expected %d) %s\n" title got expected
        (if got = expected then "ok" else "MISMATCH");
      print_string (Plot.render dom))
    cases

(* ---------- Figure 5 ---------- *)

let figure5 () =
  header "Figure 5: generated Python model for the class example";
  let src =
    {|class A {
  int tag;
  double foo(double *a, double *b) {
    double s = 0.0;
    for (int i = 0; i < 16; i++) {
      #pragma @Annotation {lp_cond:y}
      for (int j = 0; j <= 0; j++) {
        s = s + a[i] * b[j];
      }
    }
    return s;
  }
};
int main() {
  double a[16];
  double b[16];
  A inst;
  double r = inst.foo(a, b);
  if (r < 0.0) {
    return 1;
  }
  return 0;
}|}
  in
  let m = Mira_core.Mira.analyze ~source_name:"fig5.mc" src in
  print_string (Mira_core.Python_emit.emit_function m.model "A::foo")

(* ---------- Table II / Figure 6 ---------- *)

let table2_figure6 () =
  header "Table II + Figure 6: categorized instruction counts of cg_solve";
  let arch = Mira_arch.Archdesc.arya in
  let counts =
    Mira_core.Mira.counts minife_m ~fname:"cg_solve"
      ~env:[ ("nrows", 27_000); ("max_iter", 200) ]
  in
  Printf.printf "grid 30x30x30, 200 iterations (paper: 30x30x30)\n";
  print_string (Mira_core.Report.table2 arch counts);
  Printf.printf
    "(paper's rows for reference: int arith 6.8E8, control 2.26E8, int data 2.42E9,\n sse2 move 3.67E8, sse2 arith 1.93E8, misc 2.77E8, 64-bit 2.59E8)\n";
  print_endline "\nFigure 6 distribution:";
  print_string (Mira_core.Report.distribution arch counts)

(* ---------- Table III / Figure 7a ---------- *)

let table3 () =
  header "Table III + Figure 7a: STREAM FPI (TAU vs Mira)";
  Printf.printf "%-12s %-12s %-12s %-8s\n" "array size" "TAU" "Mira" "error";
  let vm_sizes = if fast then [ 50_000 ] else [ 200_000; 500_000; 1_000_000 ] in
  List.iter
    (fun n ->
      let vm = Mira_corpus.Corpus.run_stream ~n ~ntimes:10 in
      let dyn = dyn_fpi vm "stream_driver" in
      let static =
        Mira_core.Mira.fpi stream_m ~fname:"stream_driver"
          ~env:[ ("n", n); ("ntimes", 10) ]
      in
      Printf.printf "%-12s %-12s %-12s %6.2f%%\n"
        (string_of_int n) (sci dyn) (sci static) (err_pct dyn static))
    vm_sizes;
  List.iter
    (fun (n, paper_tau, paper_mira) ->
      let static =
        Mira_core.Mira.fpi stream_m ~fname:"stream_driver"
          ~env:[ ("n", n); ("ntimes", 10) ]
      in
      Printf.printf "%-12s %-12s %-12s   (model only; paper: TAU %s, Mira %s)\n"
        (string_of_int n) "-" (sci static) paper_tau paper_mira)
    [ (2_000_000, "8.239E7", "8.20E7");
      (50_000_000, "4.108E9", "4.100E9");
      (100_000_000, "2.055E10", "2.050E10") ]

(* ---------- Table IV / Figure 7b ---------- *)

let table4 () =
  header "Table IV + Figure 7b: DGEMM FPI (TAU vs Mira)";
  Printf.printf "%-12s %-12s %-12s %-8s\n" "matrix size" "TAU" "Mira" "error";
  let vm_sizes = if fast then [ 32 ] else [ 48; 96; 144 ] in
  List.iter
    (fun n ->
      let vm = Mira_corpus.Corpus.run_dgemm ~n in
      let dyn = dyn_fpi vm "dgemm" in
      let static = Mira_core.Mira.fpi dgemm_m ~fname:"dgemm" ~env:[ ("n", n) ] in
      Printf.printf "%-12d %-12s %-12s %6.2f%%\n" n (sci dyn) (sci static)
        (err_pct dyn static))
    vm_sizes;
  List.iter
    (fun (n, paper_tau, paper_mira) ->
      let static = Mira_core.Mira.fpi dgemm_m ~fname:"dgemm" ~env:[ ("n", n) ] in
      Printf.printf "%-12d %-12s %-12s   (model only; paper: TAU %s, Mira %s)\n"
        n "-" (sci static) paper_tau paper_mira)
    [ (256, "1.013E9", "1.0125E9"); (512, "8.077E9", "8.0769E9");
      (1024, "6.452E10", "6.4519E10") ]

(* ---------- Table V / Figures 7c-d ---------- *)

let table5 () =
  header "Table V + Figures 7c-d: miniFE per-function FPI (TAU vs Mira)";
  let grids =
    if fast then [ (6, 6, 6, 20) ] else [ (8, 8, 8, 50); (10, 12, 14, 50) ]
  in
  List.iter
    (fun (nx, ny, nz, max_iter) ->
      let run = Mira_corpus.Corpus.run_minife ~nx ~ny ~nz ~max_iter in
      let nrows = run.nrows in
      Printf.printf "grid %dx%dx%d (%d iterations):\n" nx ny nz max_iter;
      Printf.printf "  %-22s %-12s %-12s %-8s\n" "function" "TAU" "Mira" "error";
      List.iter
        (fun (fname, env) ->
          let static = Mira_core.Mira.fpi minife_m ~fname ~env in
          let dyn = dyn_fpi_per_call run.vm fname in
          Printf.printf "  %-22s %-12s %-12s %6.2f%%\n" fname (sci dyn)
            (sci static) (err_pct dyn static))
        [
          ("waxpby", [ ("n", nrows) ]);
          ("matvec_std::apply", [ ("nrows", nrows) ]);
          ("cg_solve", [ ("nrows", nrows); ("max_iter", max_iter) ]);
        ])
    grids;
  print_endline "paper grids, model only (200 iterations):";
  List.iter
    (fun (nx, ny, nz, paper) ->
      let nrows = nx * ny * nz in
      let static =
        Mira_core.Mira.fpi minife_m ~fname:"cg_solve"
          ~env:[ ("nrows", nrows); ("max_iter", 200) ]
      in
      Printf.printf "  %2dx%2dx%2d cg_solve FPI = %-10s (paper Mira: %s)\n" nx
        ny nz (sci static) paper)
    [ (30, 30, 30, "1.925E8"); (35, 40, 45, "7.386E8") ]

(* ---------- arithmetic intensity ---------- *)

let intensity () =
  header "Prediction (section IV-D2): arithmetic intensity of cg_solve";
  let arch = Mira_arch.Archdesc.arya in
  let counts =
    Mira_core.Mira.counts minife_m ~fname:"cg_solve"
      ~env:[ ("nrows", 27_000); ("max_iter", 200) ]
  in
  Printf.printf "instruction-based AI = %.2f (paper: 1.93E8/3.67E8 = 0.53)\n"
    (Mira_core.Report.arithmetic_intensity arch counts);
  Printf.printf "roofline estimate on %s: %.1f GFLOP/s attainable\n"
    arch.name
    (Mira_core.Report.roofline_gflops arch counts)

(* ---------- ablation A: PBound vs Mira ---------- *)

let ablation_pbound () =
  header "Ablation A: source-only (PBound) vs source+binary (Mira)";
  let n = if fast then 20_000 else 200_000 in
  let vm = Mira_corpus.Corpus.run_stream ~n ~ntimes:10 in
  let p = Option.get (Mira_vm.Vm.profile_of vm "stream_driver") in
  let dyn_total =
    List.fold_left (fun acc (_, c) -> acc +. float_of_int c) 0.0 p.inclusive
  in
  let mira_counts =
    Mira_core.Mira.counts stream_m ~fname:"stream_driver"
      ~env:[ ("n", n); ("ntimes", 10) ]
  in
  let mira_total = Mira_core.Model_eval.total mira_counts in
  let pb =
    Mira_baselines.Pbound.analyze ~source_name:"stream.mc"
      Mira_corpus.Corpus.stream
  in
  let pb_counts =
    Mira_core.Model_eval.eval pb ~fname:"stream_driver"
      ~env:[ ("n", n); ("ntimes", 10) ]
  in
  let pb_total = Mira_core.Model_eval.total pb_counts in
  Printf.printf "STREAM driver, n = %d: dynamic retired %s instructions\n" n
    (sci dyn_total);
  Printf.printf "  Mira (binary-aware) predicts  %-10s error %6.2f%%\n"
    (sci mira_total) (err_pct dyn_total mira_total);
  Printf.printf
    "  PBound (source ops) predicts  %-10s error %6.2f%% (source operations are not instructions)\n"
    (sci pb_total) (err_pct dyn_total pb_total);
  let dyn_fp = dyn_fpi vm "stream_driver" in
  Printf.printf "  FP only: dynamic %s, Mira %s, PBound source-flops %s\n"
    (sci dyn_fp)
    (sci (Mira_core.Model_eval.fpi mira_counts))
    (sci (Mira_baselines.Pbound.flops pb_counts))

(* ---------- ablation B: trip-count hazard ---------- *)

let ablation_vectorize () =
  header "Ablation B: -O2 vectorization breaks naive source-binary bridging";
  let n = if fast then 20_000 else 100_000 in
  let obj =
    Mira_codegen.Codegen.compile_to_object ~level:Mira_codegen.Codegen.O2
      Mira_corpus.Corpus.stream
  in
  let vm = Mira_vm.Vm.load_object obj in
  let a = Mira_vm.Vm.zeros_f vm n in
  let b = Mira_vm.Vm.zeros_f vm n in
  let c = Mira_vm.Vm.zeros_f vm n in
  ignore
    (Mira_vm.Vm.call vm "stream_driver"
       [ Int a; Int b; Int c; Double 3.0; Int n; Int 10 ]);
  let dyn = dyn_fpi vm "stream_driver" in
  let m2 =
    Mira_core.Mira.analyze ~level:Mira_codegen.Codegen.O2
      ~source_name:"stream.mc" Mira_corpus.Corpus.stream
  in
  let counts =
    Mira_core.Mira.counts m2 ~fname:"stream_driver"
      ~env:[ ("n", n); ("ntimes", 10) ]
  in
  let naive = Mira_core.Model_eval.fpi counts in
  (* the correction needs the model's per-line structure: packed main
     loops count 1/lanes, their scalar remainder copies drop out *)
  let prog = Mira_visa.Objfile.decode obj in
  let vectorized = Mira_codegen.Vectorize.vectorized_lines prog in
  let corrected =
    Mira_core.Model_eval.fpi_vectorization_aware m2.model ~lanes:2 ~vectorized
      ~fname:"stream_driver"
      ~env:[ ("n", n); ("ntimes", 10) ]
  in
  Printf.printf "STREAM at -O2, n = %d:\n" n;
  Printf.printf "  dynamic FPI                %s\n" (sci dyn);
  Printf.printf "  naive bridged model        %-10s error %6.2f%% (packed main loop AND its\n"
    (sci naive) (err_pct dyn naive);
  Printf.printf "                                        scalar remainder both bridged at full trip count)\n";
  Printf.printf "  packed-aware correction    %-10s error %6.2f%%\n"
    (sci corrected) (err_pct dyn corrected)

(* ---------- prediction + shared-memory extension ---------- *)

let prediction_extension () =
  header "Prediction (extension): time estimates and architecture ranking";
  let counts =
    Mira_core.Mira.counts minife_m ~fname:"cg_solve"
      ~env:[ ("nrows", 27_000); ("max_iter", 200) ]
  in
  let ranked =
    Mira_core.Predict.compare_architectures
      [ Mira_arch.Archdesc.arya; Mira_arch.Archdesc.frankenstein ]
      counts
  in
  List.iter
    (fun (_, p) -> print_endline (Mira_core.Predict.to_string p))
    ranked;
  header "Extension: shared-memory characterization (paper future work)";
  let par_src =
    {|void triad_par(double *a, double *b, double *c, double s, int n, int reps) {
  for (int r = 0; r < reps; r++) {
    #pragma @Annotation {parallel:yes}
    for (int i = 0; i < n; i++) {
      a[i] = b[i] + s * c[i];
    }
  }
}|}
  in
  let m = Mira_core.Mira.analyze ~source_name:"triad_par.mc" par_src in
  let split =
    Mira_core.Mira.counts_split m ~fname:"triad_par"
      ~env:[ ("n", 10_000_000); ("reps", 10) ]
  in
  Printf.printf "parallel STREAM triad (n = 10M, 10 reps) on arya:\n";
  Printf.printf "  %-8s %-12s %-10s %-10s\n" "cores" "est. time" "speedup"
    "efficiency";
  List.iter
    (fun cores ->
      let e =
        Mira_core.Predict.parallel_estimate Mira_arch.Archdesc.arya ~cores
          split
      in
      Printf.printf "  %-8d %-12.4f %-10.2f %-10.0f%%\n" cores
        e.seconds_parallel e.speedup (100.0 *. e.efficiency))
    [ 1; 2; 4; 8; 18; 36 ]

(* ---------- memory behavior (cache simulator) ---------- *)

let cache_behavior () =
  header "Memory behavior: simulated 256 KiB data cache (extension)";
  let run_with_cache setup =
    let cache = Mira_vm.Cache.create ~size_bytes:(256 * 1024) () in
    let vm = setup cache in
    ignore vm;
    Mira_vm.Cache.stats cache
  in
  let stream_stats =
    run_with_cache (fun cache ->
        let n = if fast then 20_000 else 200_000 in
        let prog = Mira_codegen.Codegen.compile Mira_corpus.Corpus.stream in
        let vm = Mira_vm.Vm.create prog in
        Mira_vm.Vm.attach_cache vm cache;
        let a = Mira_vm.Vm.zeros_f vm n in
        let b = Mira_vm.Vm.zeros_f vm n in
        let c = Mira_vm.Vm.zeros_f vm n in
        ignore
          (Mira_vm.Vm.call vm "stream_driver"
             [ Int a; Int b; Int c; Double 3.0; Int n; Int 10 ]);
        vm)
  in
  let dgemm_stats =
    run_with_cache (fun cache ->
        let n = if fast then 32 else 96 in
        let prog = Mira_codegen.Codegen.compile Mira_corpus.Corpus.dgemm in
        let vm = Mira_vm.Vm.create prog in
        Mira_vm.Vm.attach_cache vm cache;
        let a = Mira_vm.Vm.alloc_floats vm (Array.make (n * n) 1.0) in
        let b = Mira_vm.Vm.alloc_floats vm (Array.make (n * n) 0.5) in
        let c = Mira_vm.Vm.zeros_f vm (n * n) in
        ignore
          (Mira_vm.Vm.call vm "dgemm"
             [ Int n; Double 1.0; Int a; Int b; Double 0.0; Int c ]);
        vm)
  in
  let show name (s : Mira_vm.Cache.stats) =
    Printf.printf "  %-10s accesses %-10d miss rate %5.2f%%\n" name s.accesses
      (100.0 *. float_of_int s.misses /. float_of_int (max 1 s.accesses))
  in
  show "stream" stream_stats;
  show "dgemm" dgemm_stats;
  print_endline
    "  (streaming kernels miss once per line; the blocked working set of\n\
    \   dgemm at this size largely fits, matching the roofline verdicts)"

(* ---------- batch analysis: parallel scaling and memoization ---------- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let batch_timings () =
  header "Batch analysis: whole-corpus wall time (serial vs pool vs cache)";
  let sources = Mira_corpus.Corpus.all in
  let run ?cache ~jobs () = Mira_core.Mira.analyze_batch ~jobs ?cache sources in
  (* one throwaway pass so allocator/caches inside the compiler are in
     steady state before anything is timed *)
  ignore (run ~jobs:1 ());
  let (_, s1), t_serial = time (fun () -> run ~jobs:1 ()) in
  let (_, s4), t_par = time (fun () -> run ~jobs:4 ()) in
  let cache = Mira_core.Batch.create_cache () in
  let (_, sc), t_cold = time (fun () -> run ~cache ~jobs:4 ()) in
  let (_, sw), t_warm = time (fun () -> run ~cache ~jobs:4 ()) in
  let cores =
    try Domain.recommended_domain_count () with _ -> 1
  in
  Printf.printf "corpus: %d programs; host offers %d core(s)\n"
    (List.length sources) cores;
  Printf.printf "  serial    (--jobs 1)        %8.3f s (%d analyzed)\n" t_serial
    s1.Mira_core.Batch.st_analyzed;
  Printf.printf
    "  pool      (--jobs 4)        %8.3f s (%d analyzed)  %.2fx serial time\n"
    t_par s4.Mira_core.Batch.st_analyzed (t_par /. t_serial);
  Printf.printf "  cold cache (--jobs 4)       %8.3f s (%d analyzed)\n" t_cold
    sc.Mira_core.Batch.st_analyzed;
  Printf.printf
    "  warm cache (--jobs 4)       %8.3f s (%d analyzed, %d hits)  %.1fx faster than cold\n"
    t_warm sw.Mira_core.Batch.st_analyzed sw.Mira_core.Batch.st_mem_hits
    (t_cold /. t_warm);
  if cores < 4 then
    Printf.printf
      "  (pool speedup needs cores: this host exposes %d, so --jobs 4 \
       timeslices)\n"
      cores;
  [
    ("sources", string_of_int (List.length sources));
    ("serial_s", Printf.sprintf "%.6f" t_serial);
    ("pool4_s", Printf.sprintf "%.6f" t_par);
    ("cold_cache_s", Printf.sprintf "%.6f" t_cold);
    ("warm_cache_s", Printf.sprintf "%.6f" t_warm);
    ("warm_mem_hits", string_of_int sw.Mira_core.Batch.st_mem_hits);
    ("warm_speedup_vs_cold", Printf.sprintf "%.2f" (t_cold /. t_warm));
  ]

(* ---------- incremental reanalysis: one-function edit ---------- *)

let replace_once ~sub ~by s =
  let ls = String.length s and lsub = String.length sub in
  let rec find i =
    if i + lsub > ls then invalid_arg "replace_once: substring not found"
    else if String.sub s i lsub = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + lsub) (ls - i - lsub)

(* Time a one-function, line-count-preserving edit of [src] three
   ways: cold (no cache), function-warm (the pre-edit analysis is in
   the function tier, so only the edited function is re-analyzed) and
   file-warm (the edited text itself is already in the file tier). *)
let incr_subject ~label ~src ~edited =
  let reps = if fast then 5 else 20 in
  let run ?cache s = Mira_core.Mira.analyze_batch ?cache [ (label, s) ] in
  ignore (run edited);
  let (), t_cold =
    time (fun () -> for _ = 1 to reps do ignore (run edited) done)
  in
  let fcache = Mira_core.Batch.create_cache () in
  ignore (run ~cache:fcache edited);
  let (), t_file =
    time (fun () -> for _ = 1 to reps do ignore (run ~cache:fcache edited) done)
  in
  (* one freshly seeded cache per rep — an edited run would otherwise
     warm the file tier and turn the next rep into a file hit.  Seed
     inside the loop (not as a pre-built list) so only one model is
     live at a time, and collect the seeding garbage before starting
     the clock: keeping [reps] full models live would bill the timed
     runs for major-GC work the cold tier never pays. *)
  let last = ref None in
  let t_fn =
    let acc = ref 0.0 in
    for _ = 1 to reps do
      let c = Mira_core.Batch.create_cache () in
      ignore (run ~cache:c src);
      Gc.full_major ();
      let (), dt =
        time (fun () ->
            let _, s = run ~cache:c edited in
            last := Some s)
      in
      acc := !acc +. dt
    done;
    !acc
  in
  let s = Option.get !last in
  let per t = t /. float_of_int reps *. 1e3 in
  let open Mira_core.Batch in
  Printf.printf "%s: %d functions; %d reps per tier\n" label
    (s.st_fn_mem_hits + s.st_fn_analyzed) reps;
  Printf.printf "  cold (no cache)             %8.3f ms/run\n" (per t_cold);
  Printf.printf
    "  function-warm (edit)        %8.3f ms/run (%d hits + %d re-analyzed)  \
     %.1fx faster than cold\n"
    (per t_fn) s.st_fn_mem_hits s.st_fn_analyzed (t_cold /. t_fn);
  Printf.printf
    "  file-warm (unchanged)       %8.3f ms/run  %.1fx faster than cold\n"
    (per t_file) (t_cold /. t_file);
  [
    ("functions", string_of_int (s.st_fn_mem_hits + s.st_fn_analyzed));
    ("reps", string_of_int reps);
    ("cold_ms", Printf.sprintf "%.4f" (per t_cold));
    ("function_warm_ms", Printf.sprintf "%.4f" (per t_fn));
    ("file_warm_ms", Printf.sprintf "%.4f" (per t_file));
    ("fn_hits", string_of_int s.st_fn_mem_hits);
    ("fn_reanalyzed", string_of_int s.st_fn_analyzed);
    ("function_warm_speedup_vs_cold", Printf.sprintf "%.2f" (t_cold /. t_fn));
    ("file_warm_speedup_vs_cold", Printf.sprintf "%.2f" (t_cold /. t_file));
  ]

let incremental_timings () =
  header "Incremental reanalysis: one-function edit";
  (* The target scenario: a large translation unit of many analyzable
     kernels where one body changes.  Dependent inner bounds keep each
     function's polyhedral counting honest. *)
  let kernel_fn i =
    Printf.sprintf
      "double k%d(double *a, double *b, int n) {\n\
      \  double s = 0.0;\n\
      \  for (int i = 0; i < n; i++) {\n\
      \    for (int j = i; j < n; j++) {\n\
      \      for (int l = j; l < n; l++) {\n\
      \        s += a[i] * b[l] + %d.0;\n\
      \        s += a[l] * b[j];\n\
      \      }\n\
      \    }\n\
      \  }\n\
      \  return s;\n\
       }\n"
      i i
  in
  let multi = String.concat "\n" (List.init 12 kernel_fn) in
  let multi_fields =
    incr_subject ~label:"kernels12.mc" ~src:multi
      ~edited:
        (replace_once ~sub:"b[l] + 5.0" ~by:"b[l] - 5.0" multi)
  in
  (* And the hard case: miniFE's `assemble` emits a model two orders
     of magnitude larger than the rest of the file put together, and
     re-emitting the assembled model bounds what any cache can save. *)
  let minife = Mira_corpus.Corpus.minife in
  let minife_fields =
    incr_subject ~label:"minife.mc" ~src:minife
      ~edited:
        (replace_once ~sub:"alpha * x[i] + beta * y[i]"
           ~by:"alpha * x[i] - beta * y[i]" minife)
  in
  (multi_fields, minife_fields)

let write_bench_json sections =
  let obj fields =
    "  {\n"
    ^ String.concat ",\n"
        (List.map (fun (k, v) -> Printf.sprintf "    \"%s\": %s" k v) fields)
    ^ "\n  }"
  in
  let body =
    "{\n"
    ^ String.concat ",\n"
        (List.map (fun (name, fields) -> Printf.sprintf "  \"%s\":\n%s" name (obj fields)) sections)
    ^ "\n}\n"
  in
  let oc = open_out "BENCH_batch.json" in
  output_string oc body;
  close_out oc;
  Printf.printf "\nwrote BENCH_batch.json\n"

(* ---------- evaluation tiers: interpreted vs plan vs compiled ---------- *)

(* The headline eval-layer numbers live in BENCH_eval.json (`make
   bench-eval`); this section prints a quick in-context comparison so
   one `make bench` run shows where sweep throughput comes from. *)
let eval_tiers () =
  header "Evaluation tiers: one-shot interpreter vs plan vs compiled program";
  let min_time_s = if fast then 0.05 else 0.2 in
  let hi = if fast then 500 else 5_000 in
  Printf.printf "  %-22s %14s %12s %12s %10s\n" "kernel" "interpreted"
    "planned" "compiled" "evals/s";
  List.iter
    (fun (name, fname, fixed) ->
      match Mira_corpus.Corpus.find name with
      | None -> ()
      | Some src ->
          let r =
            Mira_core.Bench_eval.run ~min_time_s
              {
                Mira_core.Bench_eval.tg_label = name;
                tg_source_name = name;
                tg_source = src;
                tg_fname = fname;
                tg_sweep = "n";
                tg_lo = 2;
                tg_hi = hi;
                tg_fixed = fixed;
              }
          in
          Printf.printf
            "  %-22s %11.1f ns %9.1f ns %9.2f ns %9.1fM\n" fname
            r.Mira_core.Bench_eval.br_legacy_ns r.br_plan_ns r.br_compiled_ns
            (r.br_compiled_eps /. 1e6))
    [
      ("stream", "stream_triad", []);
      ("dgemm", "dgemm", []);
      ("jacobi2d", "jacobi2d", [ ("tsteps", 10) ]);
    ]

(* ---------- bechamel timing suite ---------- *)

let timing_suite () =
  header "Timing (bechamel): static analysis and evaluation vs execution";
  let open Bechamel in
  let open Toolkit in
  let n = 100_000 in
  let tests =
    [
      Test.make ~name:"t1-coverage"
        (Staged.stage (fun () ->
             List.iter
               (fun (name, src) ->
                 ignore
                   (Mira_core.Coverage.of_program ~name
                      (Mira_srclang.Parser.parse src)))
               Mira_corpus.Corpus.all));
      Test.make ~name:"t2-categorize"
        (Staged.stage (fun () ->
             ignore
               (Mira_core.Report.table2 Mira_arch.Archdesc.arya
                  (Mira_core.Mira.counts minife_m ~fname:"cg_solve"
                     ~env:[ ("nrows", 27_000); ("max_iter", 200) ]))));
      Test.make ~name:"t3-stream-model-eval"
        (Staged.stage (fun () ->
             ignore
               (Mira_core.Mira.fpi stream_m ~fname:"stream_driver"
                  ~env:[ ("n", n); ("ntimes", 10) ])));
      Test.make ~name:"t4-dgemm-model-eval"
        (Staged.stage (fun () ->
             ignore
               (Mira_core.Mira.fpi dgemm_m ~fname:"dgemm" ~env:[ ("n", 1024) ])));
      Test.make ~name:"t5-minife-model-eval"
        (Staged.stage (fun () ->
             ignore
               (Mira_core.Mira.fpi minife_m ~fname:"cg_solve"
                  ~env:[ ("nrows", 27_000); ("max_iter", 200) ])));
      Test.make ~name:"analyze-stream-model-generation"
        (Staged.stage (fun () ->
             ignore
               (Mira_core.Mira.analyze ~source_name:"stream.mc"
                  Mira_corpus.Corpus.stream)));
      Test.make ~name:"vm-run-stream-n1000"
        (Staged.stage (fun () ->
             ignore (Mira_corpus.Corpus.run_stream ~n:1_000 ~ntimes:1)));
      Test.make ~name:"poly-count-triangular"
        (Staged.stage (fun () ->
             let open Mira_symexpr in
             let open Mira_poly in
             let d =
               Domain.add_level
                 (Domain.add_level Domain.empty
                    (Domain.level "i" ~lo:(Poly.of_int 0)
                       ~hi:(Poly.sub (Poly.var "n") Poly.one)))
                 (Domain.level "j" ~lo:(Poly.var "i")
                    ~hi:(Poly.sub (Poly.var "n") Poly.one))
             in
             ignore (Count.count d)));
    ]
  in
  let grouped = Test.make_grouped ~name:"mira" ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if fast then 0.2 else 0.5))
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-44s %14.1f ns/run\n" name est
      | _ -> Printf.printf "  %-44s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  if json then begin
    (* timing-only mode: just the batch/incremental numbers, persisted
       for regression tracking *)
    let batch = batch_timings () in
    let incr, incr_minife = incremental_timings () in
    write_bench_json
      [
        ("batch", batch);
        ("incremental", incr);
        ("incremental_minife", incr_minife);
      ];
    print_endline "\nbench: done"
  end
  else begin
    table1 ();
    figures23 ();
    figure4 ();
    figure5 ();
    table2_figure6 ();
    table3 ();
    table4 ();
    table5 ();
    intensity ();
    ablation_pbound ();
    ablation_vectorize ();
    prediction_extension ();
    cache_behavior ();
    eval_tiers ();
    ignore (batch_timings ());
    ignore (incremental_timings ());
    timing_suite ();
    print_endline "\nbench: done"
  end
