module Monomial = struct
  type t = (string * int) list

  let compare (a : t) (b : t) =
    (* Graded lexicographic: lower total degree first, then lex. *)
    let da = List.fold_left (fun s (_, e) -> s + e) 0 a in
    let db = List.fold_left (fun s (_, e) -> s + e) 0 b in
    if da <> db then Stdlib.compare da db else Stdlib.compare a b

  let degree (m : t) = List.fold_left (fun s (_, e) -> s + e) 0 m

  (* Merge two sorted monomials, adding exponents. *)
  let rec mul (a : t) (b : t) : t =
    match (a, b) with
    | [], m | m, [] -> m
    | (x, i) :: a', (y, j) :: b' ->
        let c = String.compare x y in
        if c < 0 then (x, i) :: mul a' b
        else if c > 0 then (y, j) :: mul a b'
        else (x, i + j) :: mul a' b'
end

module M = Map.Make (Monomial)

type t = Ratio.t M.t
(* Invariant: no zero coefficients are stored. *)

let zero = M.empty
let normal_add m c map =
  let c' = match M.find_opt m map with None -> c | Some d -> Ratio.add c d in
  if Ratio.is_zero c' then M.remove m map else M.add m c' map

let const c = if Ratio.is_zero c then zero else M.singleton [] c
let of_int n = const (Ratio.of_int n)
let one = of_int 1
let var x = M.singleton [ (x, 1) ] Ratio.one
let add a b = M.fold normal_add a b
let neg a = M.map Ratio.neg a
let sub a b = add a (neg b)

let scale c a =
  if Ratio.is_zero c then zero else M.map (fun d -> Ratio.mul c d) a

let mul a b =
  M.fold
    (fun ma ca acc ->
      M.fold
        (fun mb cb acc -> normal_add (Monomial.mul ma mb) (Ratio.mul ca cb) acc)
        b acc)
    a zero

let pow a k =
  assert (k >= 0);
  let rec go acc k = if k = 0 then acc else go (mul acc a) (k - 1) in
  go one k

let sum = List.fold_left add zero
let product = List.fold_left mul one
let equal = M.equal Ratio.equal
let compare = M.compare Ratio.compare
let is_zero = M.is_empty

let to_const p =
  if is_zero p then Some Ratio.zero
  else
    match M.bindings p with [ ([], c) ] -> Some c | _ -> None

let degree p = M.fold (fun m _ d -> max d (Monomial.degree m)) p 0

let degree_in x p =
  M.fold
    (fun m _ d ->
      match List.assoc_opt x m with None -> d | Some e -> max d e)
    p 0

let vars p =
  let module S = Set.Make (String) in
  M.fold
    (fun m _ s -> List.fold_left (fun s (x, _) -> S.add x s) s m)
    p S.empty
  |> S.elements

let coeffs_in x p =
  let d = degree_in x p in
  let cs = Array.make (d + 1) zero in
  M.iter
    (fun m c ->
      let e = match List.assoc_opt x m with None -> 0 | Some e -> e in
      let m' = List.filter (fun (y, _) -> y <> x) m in
      cs.(e) <- normal_add m' c cs.(e))
    p;
  cs

let subst x q p =
  M.fold
    (fun m c acc ->
      let e = match List.assoc_opt x m with None -> 0 | Some e -> e in
      let m' = List.filter (fun (y, _) -> y <> x) m in
      let base = M.singleton m' c in
      add acc (mul base (pow q e)))
    p zero

let eval lookup p =
  M.fold
    (fun m c acc ->
      let v =
        List.fold_left
          (fun v (x, e) -> Ratio.mul v (Ratio.pow (lookup x) e))
          c m
      in
      Ratio.add acc v)
    p Ratio.zero

let fold_terms f p init = M.fold f p init

let pp_term ppf (m, c) =
  let pow_str (x, e) = if e = 1 then x else Printf.sprintf "%s^%d" x e in
  match m with
  | [] -> Ratio.pp ppf c
  | _ ->
      let vars = String.concat "*" (List.map pow_str m) in
      if Ratio.equal c Ratio.one then Format.pp_print_string ppf vars
      else if Ratio.equal c Ratio.minus_one then Format.fprintf ppf "-%s" vars
      else Format.fprintf ppf "%a*%s" Ratio.pp c vars

let pp ppf p =
  if is_zero p then Format.pp_print_string ppf "0"
  else
    let terms = List.rev (M.bindings p) in
    List.iteri
      (fun i (m, c) ->
        if i = 0 then pp_term ppf (m, c)
        else if Ratio.sign c >= 0 then Format.fprintf ppf " + %a" pp_term (m, c)
        else Format.fprintf ppf " - %a" pp_term (m, Ratio.neg c))
      terms

let to_string p = Format.asprintf "%a" pp p

(* Renders straight into [b]: polynomials appear as the leaves of
   symbolic-expression towers that can carry tens of thousands of
   them, so the per-leaf intermediate strings of a concat-based
   renderer dominate emission time. *)
let add_python b p =
  if is_zero p then Buffer.add_string b "0"
  else begin
    let term (m, c) =
      let n = Ratio.num c and d = Ratio.den c in
      if n <> 1 || m = [] then Buffer.add_string b (string_of_int n);
      List.iteri
        (fun i (x, e) ->
          if i > 0 || n <> 1 || m = [] then Buffer.add_char b '*';
          Buffer.add_string b x;
          if e <> 1 then (
            Buffer.add_string b "**";
            Buffer.add_string b (string_of_int e)))
        m;
      if d <> 1 then (
        Buffer.add_string b "//";
        Buffer.add_string b (string_of_int d))
    in
    let terms q =
      List.iteri
        (fun i t ->
          if i > 0 then Buffer.add_string b " + ";
          term t)
        (List.rev (M.bindings q))
    in
    (* Integer-valued polynomials may have rational coefficients whose
       sum is integral; group by denominator so Python // stays exact:
       we instead emit a single exact form (num)/(den) folded over a
       common denominator. *)
    let lcm a b = a / (let rec g a b = if b = 0 then a else g b (a mod b) in g a b) * b in
    let common_den = M.fold (fun _ c d -> lcm d (Ratio.den c)) p 1 in
    if common_den = 1 then terms p
    else begin
      Buffer.add_char b '(';
      terms (scale (Ratio.of_int common_den) p);
      Buffer.add_string b ")//";
      Buffer.add_string b (string_of_int common_den)
    end
  end

let to_python p =
  let b = Buffer.create 64 in
  add_python b p;
  Buffer.contents b
