type t =
  | P of Poly.t
  | Add of t * t
  | Mul of t * t
  | Max of t * t
  | Min of t * t
  | Fdiv of t * int
  | Cdiv of t * int
  | If of Poly.t * t * t

let poly p = P p
let of_int n = P (Poly.of_int n)
let of_ratio q = P (Poly.const q)
let var x = P (Poly.var x)
let zero = of_int 0
let one = of_int 1
let to_poly = function P p -> Some p | _ -> None
let is_const = function P p -> Poly.to_const p | _ -> None

let is_zero = function P p -> Poly.is_zero p | _ -> false
let is_one = function
  | P p -> ( match Poly.to_const p with Some c -> Ratio.equal c Ratio.one | None -> false)
  | _ -> false

let rec add a b =
  match (a, b) with
  | P x, P y -> P (Poly.add x y)
  | _ when is_zero a -> b
  | _ when is_zero b -> a
  | If (g, t, f), e when to_poly e <> None -> If (g, add t e, add f e)
  | e, If (g, t, f) when to_poly e <> None -> If (g, add t e, add f e)
  | _ -> Add (a, b)

let rec mul a b =
  match (a, b) with
  | P x, P y -> P (Poly.mul x y)
  | _ when is_zero a || is_zero b -> zero
  | _ when is_one a -> b
  | _ when is_one b -> a
  | If (g, t, f), e when to_poly e <> None -> If (g, mul t e, mul f e)
  | e, If (g, t, f) when to_poly e <> None -> If (g, mul t e, mul f e)
  | _ -> Mul (a, b)

let neg a = mul (of_int (-1)) a
let sub a b = add a (neg b)

let compare_const a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> Some (Ratio.compare x y)
  | _ -> None

(* Poly.t is a Map.Make tree: equal maps can have unequal internal
   shapes, so polymorphic (=) is wrong on anything containing one.
   Recurse structurally and compare polynomials with Poly.equal. *)
let rec equal a b =
  match (a, b) with
  | P x, P y -> Poly.equal x y
  | Add (a1, b1), Add (a2, b2)
  | Mul (a1, b1), Mul (a2, b2)
  | Max (a1, b1), Max (a2, b2)
  | Min (a1, b1), Min (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | Fdiv (a1, n1), Fdiv (a2, n2) | Cdiv (a1, n1), Cdiv (a2, n2) ->
      n1 = n2 && equal a1 a2
  | If (g1, a1, b1), If (g2, a2, b2) ->
      Poly.equal g1 g2 && equal a1 a2 && equal b1 b2
  | (P _ | Add _ | Mul _ | Max _ | Min _ | Fdiv _ | Cdiv _ | If _), _ -> false

let max_ a b =
  if equal a b then a
  else
    match compare_const a b with
    | Some c -> if c >= 0 then a else b
    | None -> Max (a, b)

let min_ a b =
  if equal a b then a
  else
    match compare_const a b with
    | Some c -> if c <= 0 then a else b
    | None -> Min (a, b)

let fdiv a n =
  assert (n > 0);
  if n = 1 then a
  else
    match is_const a with
    | Some c -> of_int (Ratio.floor (Ratio.div c (Ratio.of_int n)))
    | None -> Fdiv (a, n)

let cdiv a n =
  assert (n > 0);
  if n = 1 then a
  else
    match is_const a with
    | Some c -> of_int (Ratio.ceil (Ratio.div c (Ratio.of_int n)))
    | None -> Cdiv (a, n)

let if_ g a b =
  match Poly.to_const g with
  | Some c -> if Ratio.sign c >= 0 then a else b
  | None -> if equal a b then a else If (g, a, b)

let clamp0 e =
  match is_const e with
  | Some c -> if Ratio.sign c >= 0 then e else zero
  | None -> (
      (* max(0, p): if p >= 0 then p else 0, expressed as a guard so it
         interacts with interval splitting. *)
      match e with P p -> If (p, e, zero) | _ -> max_ zero e)

let sum = List.fold_left add zero

let rec eval lookup = function
  | P p -> Poly.eval lookup p
  | Add (a, b) -> Ratio.add (eval lookup a) (eval lookup b)
  | Mul (a, b) -> Ratio.mul (eval lookup a) (eval lookup b)
  | Max (a, b) ->
      let x = eval lookup a and y = eval lookup b in
      if Ratio.compare x y >= 0 then x else y
  | Min (a, b) ->
      let x = eval lookup a and y = eval lookup b in
      if Ratio.compare x y <= 0 then x else y
  | Fdiv (a, n) -> Ratio.of_int (Ratio.floor (Ratio.div (eval lookup a) (Ratio.of_int n)))
  | Cdiv (a, n) -> Ratio.of_int (Ratio.ceil (Ratio.div (eval lookup a) (Ratio.of_int n)))
  | If (g, a, b) ->
      if Ratio.sign (Poly.eval lookup g) >= 0 then eval lookup a
      else eval lookup b

let eval_int lookup e =
  let q = eval (fun x -> Ratio.of_int (lookup x)) e in
  if Ratio.is_integer q then Ratio.to_int_exn q
  else
    (* Fractional counts only arise from annotation weights; round to
       nearest. *)
    int_of_float (Float.round (Ratio.to_float q))

let rec eval_float lookup = function
  | P p ->
      Poly.fold_terms
        (fun m c acc ->
          let v =
            List.fold_left
              (fun v (x, e) -> v *. (lookup x ** float_of_int e))
              (Ratio.to_float c) m
          in
          acc +. v)
        p 0.0
  | Add (a, b) -> eval_float lookup a +. eval_float lookup b
  | Mul (a, b) -> eval_float lookup a *. eval_float lookup b
  | Max (a, b) -> Float.max (eval_float lookup a) (eval_float lookup b)
  | Min (a, b) -> Float.min (eval_float lookup a) (eval_float lookup b)
  | Fdiv (a, n) -> Float.of_int (int_of_float (floor (eval_float lookup a /. float_of_int n)))
  | Cdiv (a, n) -> Float.of_int (int_of_float (ceil (eval_float lookup a /. float_of_int n)))
  | If (g, a, b) ->
      if eval_float lookup (P g) >= 0.0 then eval_float lookup a
      else eval_float lookup b

let vars e =
  let module S = Set.Make (String) in
  let rec go acc = function
    | P p -> List.fold_left (fun s x -> S.add x s) acc (Poly.vars p)
    | Add (a, b) | Mul (a, b) | Max (a, b) | Min (a, b) -> go (go acc a) b
    | Fdiv (a, _) | Cdiv (a, _) -> go acc a
    | If (g, a, b) ->
        let acc = List.fold_left (fun s x -> S.add x s) acc (Poly.vars g) in
        go (go acc a) b
  in
  S.elements (go S.empty e)

let rec pp ppf = function
  | P p -> Poly.pp ppf p
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Max (a, b) -> Format.fprintf ppf "max(%a, %a)" pp a pp b
  | Min (a, b) -> Format.fprintf ppf "min(%a, %a)" pp a pp b
  | Fdiv (a, n) -> Format.fprintf ppf "floor(%a / %d)" pp a n
  | Cdiv (a, n) -> Format.fprintf ppf "ceil(%a / %d)" pp a n
  | If (g, a, b) ->
      Format.fprintf ppf "(%a if %a >= 0 else %a)" pp a Poly.pp g pp b

let to_string e = Format.asprintf "%a" pp e

(* A single shared buffer keeps rendering linear in the output size;
   nesting sprintf calls instead re-copies every subexpression once
   per enclosing level, which is quadratic on the deep Min/Max/If
   towers dependent loop nests produce. *)
let to_python e =
  let b = Buffer.create 256 in
  let s = Buffer.add_string b in
  let rec go = function
    | P p -> Poly.add_python b p
    | Add (x, y) -> s "("; go x; s " + "; go y; s ")"
    | Mul (x, y) -> s "("; go x; s " * "; go y; s ")"
    | Max (x, y) -> s "max("; go x; s ", "; go y; s ")"
    | Min (x, y) -> s "min("; go x; s ", "; go y; s ")"
    | Fdiv (x, n) -> s "(("; go x; s (Printf.sprintf ") // %d)" n)
    | Cdiv (x, n) -> s "(-((-("; go x; s (Printf.sprintf ")) // %d))" n)
    | If (g, x, y) ->
        s "(";
        go x;
        s " if (";
        Poly.add_python b g;
        s ") >= 0 else ";
        go y;
        s ")"
  in
  go e;
  Buffer.contents b
