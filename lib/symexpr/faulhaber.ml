let binom n k =
  (* Small n only (degrees of loop-count polynomials). *)
  let k = min k (n - k) in
  let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
  if k < 0 then 0 else go 1 1

(* The two memo tables below are the only module-level mutable state in
   the analysis path; analyses may run on several domains at once
   (Mira_core.Batch), so every access goes through [lock].  The lock is
   not reentrant: public entry points take it once and then use only
   the _unlocked internals. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let bernoulli_minus_unlocked =
  (* Memoized B_n with the B(1) = -1/2 convention, via
     sum_{j=0}^{m} C(m+1,j) B_j = 0. *)
  let cache = Hashtbl.create 16 in
  Hashtbl.add cache 0 Ratio.one;
  let rec b n =
    match Hashtbl.find_opt cache n with
    | Some v -> v
    | None ->
        let s = ref Ratio.zero in
        for j = 0 to n - 1 do
          s := Ratio.add !s (Ratio.mul (Ratio.of_int (binom (n + 1) j)) (b j))
        done;
        let v = Ratio.div (Ratio.neg !s) (Ratio.of_int (n + 1)) in
        Hashtbl.add cache n v;
        v
  in
  b

let bernoulli_unlocked n =
  let v = bernoulli_minus_unlocked n in
  if n = 1 then Ratio.neg v else v

let bernoulli n = locked (fun () -> bernoulli_unlocked n)

let power_sum_unlocked =
  let cache = Hashtbl.create 16 in
  fun k ->
    match Hashtbl.find_opt cache k with
    | Some p -> p
    | None ->
        (* S_k(n) = 1/(k+1) * sum_{j=0}^{k} C(k+1,j) B+_j n^{k+1-j} *)
        let n = Poly.var "n" in
        let terms = ref Poly.zero in
        for j = 0 to k do
          let c =
            Ratio.mul (Ratio.of_int (binom (k + 1) j)) (bernoulli_unlocked j)
          in
          terms := Poly.add !terms (Poly.scale c (Poly.pow n (k + 1 - j)))
        done;
        let p = Poly.scale (Ratio.make 1 (k + 1)) !terms in
        Hashtbl.add cache k p;
        p

let power_sum k = locked (fun () -> power_sum_unlocked k)

let sum_range x ~lo ~hi p =
  if Poly.degree_in x lo > 0 || Poly.degree_in x hi > 0 then
    invalid_arg "Faulhaber.sum_range: bounds mention the summation variable";
  let coeffs = Poly.coeffs_in x p in
  let lo_minus_1 = Poly.sub lo Poly.one in
  let acc = ref Poly.zero in
  Array.iteri
    (fun k ck ->
      if not (Poly.is_zero ck) then
        let sk = power_sum k in
        let at b = Poly.subst "n" b sk in
        acc := Poly.add !acc (Poly.mul ck (Poly.sub (at hi) (at lo_minus_1))))
    coeffs;
  !acc
