(** Multivariate polynomials with rational coefficients.

    Variables are named by strings (model parameters and loop
    indices).  Polynomials are kept in a canonical sparse normal form,
    so structural equality coincides with mathematical equality. *)

type t

module Monomial : sig
  type t = (string * int) list
  (** Sorted by variable name; exponents are [>= 1]. The empty list is
      the unit monomial. *)

  val compare : t -> t -> int
  val degree : t -> int
end

val zero : t
val one : t
val const : Ratio.t -> t
val of_int : int -> t
val var : string -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val scale : Ratio.t -> t -> t
val pow : t -> int -> t

val sum : t list -> t
val product : t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val is_zero : t -> bool
val to_const : t -> Ratio.t option
(** [Some c] iff the polynomial is the constant [c]. *)

val degree : t -> int
val degree_in : string -> t -> int
val vars : t -> string list
(** Variables occurring with nonzero coefficient, sorted. *)

val coeffs_in : string -> t -> t array
(** [coeffs_in x p] views [p] as a univariate polynomial in [x]:
    element [k] is the coefficient (a polynomial not containing [x])
    of [x^k].  The array has length [degree_in x p + 1]. *)

val subst : string -> t -> t -> t
(** [subst x q p] replaces every occurrence of variable [x] in [p] by
    the polynomial [q]. *)

val eval : (string -> Ratio.t) -> t -> Ratio.t
(** @raise Not_found (or whatever the lookup raises) for unbound
    variables. *)

val fold_terms : (Monomial.t -> Ratio.t -> 'a -> 'a) -> t -> 'a -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_python : t -> string
(** Render as a Python expression, e.g. ["3*n**2/2 + n/2"]. *)

val add_python : Buffer.t -> t -> unit
(** [to_python] rendered straight into a buffer — polynomials are the
    leaves of {!Expr} towers, and avoiding one intermediate string per
    leaf keeps large-model emission linear. *)
