open Mira_visa
open Mira_visa.Isa

exception Fault of string

let fault fmt = Format.kasprintf (fun m -> raise (Fault m)) fmt

(* ---------- mnemonic interning ---------- *)

let n_mnemonics = List.length Isa.all_mnemonics

let mnemonic_id =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun i m -> Hashtbl.add tbl m i) Isa.all_mnemonics;
  fun m ->
    match Hashtbl.find_opt tbl m with
    | Some i -> i
    | None -> fault "unknown mnemonic %s" m

let mnemonic_of_id = Array.of_list Isa.all_mnemonics

(* ---------- function stats ---------- *)

type fstat = {
  mutable calls : int;
  totals : int array;  (* inclusive *)
  self_totals : int array;  (* exclusive *)
}

type loaded = { fn : Program.fundef; mids : int array }

type frame = {
  lf : loaded;
  mutable pc : int;
  ir : int array;
  xr : float array;
  incl : int array;  (* inclusive counts for this invocation *)
  excl : int array;  (* own retires only *)
}

type t = {
  prog : Program.t;
  funcs : (string, loaded) Hashtbl.t;
  stats : (string, fstat) Hashtbl.t;
  iabi : int array;
  xabi : float array;
  mutable imem : int array;
  mutable itop : int;
  mutable fmem : float array;
  mutable ftop : int;
  mutable flags : int;
  mutable retired : int;
  step_limit : int;
  extern_costs : (string, int array) Hashtbl.t;  (* per-mnemonic synthetic mix *)
  mutable dcache : Cache.t option;  (* simulated cache on float memory *)
}

let mix items =
  let a = Array.make n_mnemonics 0 in
  List.iter (fun (m, c) -> a.(mnemonic_id m) <- a.(mnemonic_id m) + c) items;
  a

(* Synthetic instruction mixes for external library calls: roughly the
   shape of glibc's small math routines.  TAU/PAPI sees these; static
   analysis does not. *)
let default_extern_costs () =
  let tbl = Hashtbl.create 8 in
  Hashtbl.replace tbl "sqrt"
    (mix
       [ ("sqrtsd", 1); ("movsd", 6); ("ucomisd", 2); ("mulsd", 3);
         ("addsd", 2); ("movq", 4); ("cmpq", 2); ("jne", 1); ("ret", 1) ]);
  Hashtbl.replace tbl "fabs"
    (mix [ ("movsd", 2); ("movq", 2); ("andq", 1); ("ret", 1) ]);
  Hashtbl.replace tbl "exp"
    (mix
       [ ("movsd", 8); ("mulsd", 9); ("addsd", 7); ("ucomisd", 2);
         ("movq", 6); ("cmpq", 2); ("jle", 1); ("ret", 1) ]);
  Hashtbl.replace tbl "log"
    (mix
       [ ("movsd", 8); ("mulsd", 8); ("addsd", 8); ("divsd", 1);
         ("ucomisd", 2); ("movq", 6); ("cmpq", 2); ("jle", 1); ("ret", 1) ]);
  Hashtbl.replace tbl "min"
    (mix [ ("cmpq", 1); ("movq", 2); ("jle", 1); ("ret", 1) ]);
  Hashtbl.replace tbl "max"
    (mix [ ("cmpq", 1); ("movq", 2); ("jge", 1); ("ret", 1) ]);
  tbl

let load (f : Program.fundef) =
  { fn = f; mids = Array.map (fun i -> mnemonic_id (Isa.mnemonic i)) f.insns }

let create ?(step_limit = 2_000_000_000) prog =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Program.fundef) -> Hashtbl.replace funcs f.name (load f))
    prog.Program.funs;
  {
    prog;
    funcs;
    stats = Hashtbl.create 16;
    iabi = Array.make abi_regs 0;
    xabi = Array.make abi_regs 0.0;
    imem = Array.make 1024 0;
    itop = 0;
    fmem = Array.make 1024 0.0;
    ftop = 0;
    flags = 0;
    retired = 0;
    step_limit;
    extern_costs = default_extern_costs ();
    dcache = None;
  }

let load_object ?step_limit bytes = create ?step_limit (Objfile.decode bytes)

(* ---------- memory ---------- *)

let ensure_i vm n =
  let need = vm.itop + n in
  if need > Array.length vm.imem then begin
    let bigger = Array.make (max need (2 * Array.length vm.imem)) 0 in
    Array.blit vm.imem 0 bigger 0 vm.itop;
    vm.imem <- bigger
  end

let ensure_f vm n =
  let need = vm.ftop + n in
  if need > Array.length vm.fmem then begin
    let bigger = Array.make (max need (2 * Array.length vm.fmem)) 0.0 in
    Array.blit vm.fmem 0 bigger 0 vm.ftop;
    vm.fmem <- bigger
  end

let zeros_i vm n =
  if n < 0 then fault "negative allocation %d" n;
  ensure_i vm n;
  let a = vm.itop in
  Array.fill vm.imem a n 0;
  vm.itop <- a + n;
  a

let zeros_f vm n =
  if n < 0 then fault "negative allocation %d" n;
  ensure_f vm n;
  let a = vm.ftop in
  Array.fill vm.fmem a n 0.0;
  vm.ftop <- a + n;
  a

let alloc_ints vm src =
  let a = zeros_i vm (Array.length src) in
  Array.blit src 0 vm.imem a (Array.length src);
  a

let alloc_floats vm src =
  let a = zeros_f vm (Array.length src) in
  Array.blit src 0 vm.fmem a (Array.length src);
  a

let read_ints vm addr n =
  if addr < 0 || addr + n > vm.itop then fault "read_ints out of bounds";
  Array.sub vm.imem addr n

let read_floats vm addr n =
  if addr < 0 || addr + n > vm.ftop then fault "read_floats out of bounds";
  Array.sub vm.fmem addr n

(* ---------- execution ---------- *)

type value = Int of int | Double of float | Unit

let geti vm fr r = if r < abi_regs then vm.iabi.(r) else fr.ir.(r)

let seti vm fr r v =
  if r < abi_regs then vm.iabi.(r) <- v else fr.ir.(r) <- v

let getx vm fr r = if r < abi_regs then vm.xabi.(r) else fr.xr.(r)

let setx vm fr r v =
  if r < abi_regs then vm.xabi.(r) <- v else fr.xr.(r) <- v

let iop vm fr = function Reg r -> geti vm fr r | Imm n -> n

let eff vm fr (a : addr) =
  let base = geti vm fr a.base in
  let idx = match a.index with None -> 0 | Some r -> geti vm fr r * a.scale in
  base + idx + a.disp

let load_i vm addr =
  if addr < 0 || addr >= vm.itop then fault "int load out of bounds: %d" addr;
  vm.imem.(addr)

let store_i vm addr v =
  if addr < 0 || addr >= vm.itop then fault "int store out of bounds: %d" addr;
  vm.imem.(addr) <- v

let touch_cache vm addr =
  match vm.dcache with None -> () | Some c -> ignore (Cache.access c addr)

let load_f vm addr =
  if addr < 0 || addr >= vm.ftop then fault "float load out of bounds: %d" addr;
  touch_cache vm addr;
  vm.fmem.(addr)

let store_f vm addr v =
  if addr < 0 || addr >= vm.ftop then fault "float store out of bounds: %d" addr;
  touch_cache vm addr;
  vm.fmem.(addr) <- v

let stat_of vm name =
  match Hashtbl.find_opt vm.stats name with
  | Some s -> s
  | None ->
      let s =
        {
          calls = 0;
          totals = Array.make n_mnemonics 0;
          self_totals = Array.make n_mnemonics 0;
        }
      in
      Hashtbl.replace vm.stats name s;
      s

let charge_extern vm fr name =
  match Hashtbl.find_opt vm.extern_costs name with
  | None -> ()
  | Some costs ->
      for i = 0 to n_mnemonics - 1 do
        fr.incl.(i) <- fr.incl.(i) + costs.(i);
        fr.excl.(i) <- fr.excl.(i) + costs.(i)
      done

let run_extern vm fr name arity =
  match (name, arity) with
  | "sqrt", 1 ->
      vm.xabi.(0) <- sqrt vm.xabi.(0);
      charge_extern vm fr name
  | "fabs", 1 ->
      vm.xabi.(0) <- Float.abs vm.xabi.(0);
      charge_extern vm fr name
  | "exp", 1 ->
      vm.xabi.(0) <- exp vm.xabi.(0);
      charge_extern vm fr name
  | "log", 1 ->
      vm.xabi.(0) <- log vm.xabi.(0);
      charge_extern vm fr name
  | "min", 2 ->
      vm.iabi.(0) <- min vm.iabi.(0) vm.iabi.(1);
      charge_extern vm fr name
  | "max", 2 ->
      vm.iabi.(0) <- max vm.iabi.(0) vm.iabi.(1);
      charge_extern vm fr name
  | _ -> fault "unknown external function %s/%d" name arity

let new_frame lf =
  {
    lf;
    pc = 0;
    ir = Array.make (max abi_regs lf.fn.n_iregs) 0;
    xr = Array.make (max abi_regs lf.fn.n_xregs) 0.0;
    incl = Array.make n_mnemonics 0;
    excl = Array.make n_mnemonics 0;
  }

let finish_frame vm fr (parent : frame option) =
  let st = stat_of vm fr.lf.fn.name in
  st.calls <- st.calls + 1;
  for i = 0 to n_mnemonics - 1 do
    st.totals.(i) <- st.totals.(i) + fr.incl.(i);
    st.self_totals.(i) <- st.self_totals.(i) + fr.excl.(i)
  done;
  match parent with
  | None -> ()
  | Some p ->
      for i = 0 to n_mnemonics - 1 do
        p.incl.(i) <- p.incl.(i) + fr.incl.(i)
      done

let exec vm (entry : loaded) =
  let stack = ref [] in
  let fr = ref (new_frame entry) in
  let running = ref true in
  while !running do
    let f = !fr in
    let code = f.lf.fn.insns in
    if f.pc < 0 || f.pc >= Array.length code then
      fault "pc out of range in %s" f.lf.fn.name;
    let insn = code.(f.pc) in
    let mid = f.lf.mids.(f.pc) in
    f.incl.(mid) <- f.incl.(mid) + 1;
    f.excl.(mid) <- f.excl.(mid) + 1;
    vm.retired <- vm.retired + 1;
    if vm.retired > vm.step_limit then fault "step limit exceeded";
    (* budget hook: amortized so the interpreter loop stays tight, but
       frequent enough that a wall-clock deadline cuts a runaway
       program off within microseconds *)
    if vm.retired land 63 = 0 then Mira_limits.Budget.tick ();
    let next = f.pc + 1 in
    (match insn with
    | Movq (d, s) ->
        seti vm f d (iop vm f s);
        f.pc <- next
    | Load (d, a) ->
        seti vm f d (load_i vm (eff vm f a));
        f.pc <- next
    | Store (a, s) ->
        store_i vm (eff vm f a) (iop vm f s);
        f.pc <- next
    | Leaq (d, a) ->
        seti vm f d (eff vm f a);
        f.pc <- next
    | Addq (d, s) ->
        seti vm f d (geti vm f d + iop vm f s);
        f.pc <- next
    | Subq (d, s) ->
        seti vm f d (geti vm f d - iop vm f s);
        f.pc <- next
    | Imulq (d, s) ->
        seti vm f d (geti vm f d * iop vm f s);
        f.pc <- next
    | Idivq (d, s) ->
        let v = iop vm f s in
        if v = 0 then fault "integer division by zero";
        seti vm f d (geti vm f d / v);
        f.pc <- next
    | Iremq (d, s) ->
        let v = iop vm f s in
        if v = 0 then fault "integer modulo by zero";
        seti vm f d (geti vm f d mod v);
        f.pc <- next
    | Negq d ->
        seti vm f d (-geti vm f d);
        f.pc <- next
    | Andq (d, s) ->
        seti vm f d (geti vm f d land iop vm f s);
        f.pc <- next
    | Orq (d, s) ->
        seti vm f d (geti vm f d lor iop vm f s);
        f.pc <- next
    | Xorq (d, s) ->
        seti vm f d (geti vm f d lxor iop vm f s);
        f.pc <- next
    | Shlq (d, k) ->
        seti vm f d (geti vm f d lsl k);
        f.pc <- next
    | Sarq (d, k) ->
        seti vm f d (geti vm f d asr k);
        f.pc <- next
    | Incq d ->
        seti vm f d (geti vm f d + 1);
        f.pc <- next
    | Decq d ->
        seti vm f d (geti vm f d - 1);
        f.pc <- next
    | Cmpq (a, b) ->
        vm.flags <- compare (iop vm f a) (iop vm f b);
        f.pc <- next
    | Testq (a, b) ->
        vm.flags <- compare (iop vm f a land iop vm f b) 0;
        f.pc <- next
    | Jmp t -> f.pc <- t
    | Jcc (cc, t) ->
        let taken =
          match cc with
          | E -> vm.flags = 0
          | NE -> vm.flags <> 0
          | L -> vm.flags < 0
          | LE -> vm.flags <= 0
          | G -> vm.flags > 0
          | GE -> vm.flags >= 0
        in
        f.pc <- (if taken then t else next)
    | Call name -> (
        match Hashtbl.find_opt vm.funcs name with
        | None -> fault "call to unknown function %s" name
        | Some lf ->
            f.pc <- next;
            stack := f :: !stack;
            fr := new_frame lf)
    | Call_ext (name, arity) ->
        run_extern vm f name arity;
        f.pc <- next
    | Ret -> (
        match !stack with
        | [] ->
            finish_frame vm f None;
            running := false
        | parent :: rest ->
            finish_frame vm f (Some parent);
            stack := rest;
            fr := parent)
    | Movsd_rr (d, s) ->
        setx vm f d (getx vm f s);
        f.pc <- next
    | Movsd_load (d, a) ->
        setx vm f d (load_f vm (eff vm f a));
        f.pc <- next
    | Movsd_store (a, s) ->
        store_f vm (eff vm f a) (getx vm f s);
        f.pc <- next
    | Movsd_const (d, k) ->
        if k < 0 || k >= Array.length vm.prog.fpool then
          fault "bad constant-pool index %d" k;
        setx vm f d vm.prog.fpool.(k);
        f.pc <- next
    | Movapd (d, s) ->
        if d = s then (* broadcast low lane (unpcklpd stand-in) *)
          setx vm f (d + 1) (getx vm f d)
        else begin
          setx vm f d (getx vm f s);
          setx vm f (d + 1) (getx vm f (s + 1))
        end;
        f.pc <- next
    | Movapd_load (d, a) ->
        let addr = eff vm f a in
        setx vm f d (load_f vm addr);
        setx vm f (d + 1) (load_f vm (addr + 1));
        f.pc <- next
    | Movapd_store (a, s) ->
        let addr = eff vm f a in
        store_f vm addr (getx vm f s);
        store_f vm (addr + 1) (getx vm f (s + 1));
        f.pc <- next
    | Xorpd d ->
        setx vm f d 0.0;
        f.pc <- next
    | Addsd (d, s) ->
        setx vm f d (getx vm f d +. getx vm f s);
        f.pc <- next
    | Subsd (d, s) ->
        setx vm f d (getx vm f d -. getx vm f s);
        f.pc <- next
    | Mulsd (d, s) ->
        setx vm f d (getx vm f d *. getx vm f s);
        f.pc <- next
    | Divsd (d, s) ->
        setx vm f d (getx vm f d /. getx vm f s);
        f.pc <- next
    | Sqrtsd (d, s) ->
        setx vm f d (sqrt (getx vm f s));
        f.pc <- next
    | Ucomisd (a, b) ->
        vm.flags <- compare (getx vm f a) (getx vm f b);
        f.pc <- next
    | Addpd (d, s) ->
        setx vm f d (getx vm f d +. getx vm f s);
        setx vm f (d + 1) (getx vm f (d + 1) +. getx vm f (s + 1));
        f.pc <- next
    | Subpd (d, s) ->
        setx vm f d (getx vm f d -. getx vm f s);
        setx vm f (d + 1) (getx vm f (d + 1) -. getx vm f (s + 1));
        f.pc <- next
    | Mulpd (d, s) ->
        setx vm f d (getx vm f d *. getx vm f s);
        setx vm f (d + 1) (getx vm f (d + 1) *. getx vm f (s + 1));
        f.pc <- next
    | Divpd (d, s) ->
        setx vm f d (getx vm f d /. getx vm f s);
        setx vm f (d + 1) (getx vm f (d + 1) /. getx vm f (s + 1));
        f.pc <- next
    | Cvtsi2sd (d, s) ->
        setx vm f d (float_of_int (geti vm f s));
        f.pc <- next
    | Cvttsd2si (d, s) ->
        seti vm f d (int_of_float (Float.trunc (getx vm f s)));
        f.pc <- next
    | Nop -> f.pc <- next
    | Alloc_i (d, n) ->
        seti vm f d (zeros_i vm (iop vm f n));
        f.pc <- next
    | Alloc_f (d, n) ->
        seti vm f d (zeros_f vm (iop vm f n));
        f.pc <- next)
  done

let call vm name args =
  let lf =
    match Hashtbl.find_opt vm.funcs name with
    | Some lf -> lf
    | None -> fault "no such function: %s" name
  in
  let params = lf.fn.params in
  if List.length params <> List.length args then
    fault "%s expects %d arguments, got %d" name (List.length params)
      (List.length args);
  let icount = ref 0 and xcount = ref 0 in
  List.iter2
    (fun kind arg ->
      match (kind, arg) with
      | Program.Kint, Int v ->
          vm.iabi.(!icount) <- v;
          incr icount
      | Program.Kdouble, Double v ->
          vm.xabi.(!xcount) <- v;
          incr xcount
      | Program.Kint, Double _ | Program.Kdouble, Int _ ->
          fault "argument kind mismatch calling %s" name
      | _, Unit | Program.Kvoid, _ -> fault "void argument calling %s" name)
    params args;
  exec vm lf;
  match lf.fn.ret with
  | Program.Kint -> Int vm.iabi.(0)
  | Program.Kdouble -> Double vm.xabi.(0)
  | Program.Kvoid -> Unit

(* ---------- reporting ---------- *)

type profile = {
  calls : int;
  inclusive : (string * int) list;
  exclusive : (string * int) list;
}

let profile_of_stat (s : fstat) =
  let collect arr =
    let acc = ref [] in
    Array.iteri
      (fun i c -> if c > 0 then acc := (mnemonic_of_id.(i), c) :: !acc)
      arr;
    List.rev !acc
  in
  {
    calls = s.calls;
    inclusive = collect s.totals;
    exclusive = collect s.self_totals;
  }

let profiles vm =
  Hashtbl.fold (fun name s acc -> (name, profile_of_stat s) :: acc) vm.stats []
  |> List.sort (fun (_, a) (_, b) ->
         compare
           (List.fold_left (fun n (_, c) -> n + c) 0 b.inclusive)
           (List.fold_left (fun n (_, c) -> n + c) 0 a.inclusive))

let profile_of vm name =
  Option.map profile_of_stat (Hashtbl.find_opt vm.stats name)

let total_retired vm = vm.retired

let reset_counters vm =
  Hashtbl.reset vm.stats;
  vm.retired <- 0

let attach_cache vm cache = vm.dcache <- Some cache
let cache_stats vm = Option.map Cache.stats vm.dcache
let cache vm = vm.dcache

let count_of p m =
  match List.assoc_opt m p.inclusive with Some c -> c | None -> 0

let self_count_of p m =
  match List.assoc_opt m p.exclusive with Some c -> c | None -> 0
