type level = O0 | O1 | O2

exception Error = Emit.Error

let compile_ast ?(level = O1) (ast : Mira_srclang.Ast.program) =
  let ast = match level with O0 -> ast | O1 | O2 -> Fold.program ast in
  let ast = Mira_srclang.Typecheck.check_exn ast in
  let prog = Emit.program ~addressing_fold:(level <> O0) ast in
  let prog =
    match level with
    | O0 -> prog
    | O1 | O2 -> Peephole.program (Liveness.program prog)
  in
  match level with O2 -> Vectorize.program prog | O0 | O1 -> prog

let compile ?level src = compile_ast ?level (Mira_srclang.Parser.parse src)

let compile_to_object ?level src = Mira_visa.Objfile.encode (compile ?level src)

(* ---------- single-function isolation ---------- *)

(* Replace the body of every function except the target with a
   trivial stub of the same signature.  Signatures, classes and
   externs — the target's analysis closure — are untouched, so the
   target's own instructions come out identical to a whole-file
   compilation (lowering is per-function; the only shared state, the
   float constant pool, affects operand indices that no consumer of
   mnemonics observes).  Return types the backend cannot stub (arrays,
   classes) keep their original body: the backend rejects such
   signatures at the function header regardless of the body, so error
   behavior matches whole-file compilation exactly. *)
let stub_body (f : Mira_srclang.Ast.func) =
  let open Mira_srclang in
  let ret e = [ Ast.mk_stmt (Ast.Return e) Loc.dummy ] in
  match f.Ast.fret with
  | Ast.Tvoid -> Some []
  | Ast.Tint -> Some (ret (Some (Ast.mk_expr (Ast.Int_lit 0) Loc.dummy)))
  | Ast.Tdouble ->
      Some (ret (Some (Ast.mk_expr (Ast.Float_lit 0.0) Loc.dummy)))
  | Ast.Tarr _ | Ast.Tclass _ -> None

let reduce_to_function (p : Mira_srclang.Ast.program) ~name ~cls :
    Mira_srclang.Ast.program =
  let open Mira_srclang.Ast in
  let stub (f : func) =
    if f.fname = name && f.fclass = cls then f
    else match stub_body f with Some body -> { f with fbody = body } | None -> f
  in
  {
    p with
    funcs = List.map stub p.funcs;
    classes =
      List.map
        (fun c -> { c with cmethods = List.map stub c.cmethods })
        p.classes;
  }

let compile_function_to_object ?level ~name ~cls src =
  Mira_visa.Objfile.encode
    (compile_ast ?level
       (reduce_to_function (Mira_srclang.Parser.parse src) ~name ~cls))
