(** Compiler driver: mini-C source/AST → virtual-ISA program or
    object bytes.

    Optimization levels:
    - [O0]: naive lowering — no constant folding, no addressing-mode
      folding, no peephole.  Source operation counts and binary
      instruction counts track each other closely.
    - [O1] (default): AST constant folding, strength reduction,
      addressing-mode folding, peephole cleanup.  Binary counts
      diverge from naive source counts — the regime where Mira's
      binary-aware analysis beats source-only estimation (PBound).
    - [O2]: [O1] plus 2-wide vectorization of eligible innermost
      loops ({!Vectorize}); changes loop trip counts and is used by
      the ablation benchmark on bridging hazards. *)

type level = O0 | O1 | O2

exception Error of string * Mira_srclang.Loc.pos

val compile_ast :
  ?level:level -> Mira_srclang.Ast.program -> Mira_visa.Program.t
(** Typechecks, folds (per [level]), lowers, cleans up.
    @raise Error on unsupported constructs.
    @raise Failure if the program does not typecheck. *)

val compile : ?level:level -> string -> Mira_visa.Program.t
(** Parse and compile mini-C source text. *)

val compile_to_object : ?level:level -> string -> string
(** Source text → encoded object file bytes. *)

val reduce_to_function :
  Mira_srclang.Ast.program -> name:string -> cls:string option ->
  Mira_srclang.Ast.program
(** Stub the body of every function except the one matching
    [(name, cls)] ([cls] is the enclosing class for methods).
    Signatures, classes and externs are preserved, so compiling the
    reduced program yields instructions for the kept function that are
    identical (as mnemonic streams with source positions) to a
    whole-file compilation. *)

val compile_function_to_object :
  ?level:level -> name:string -> cls:string option -> string -> string
(** Parse, reduce to one function, compile, encode — the
    single-function analogue of {!compile_to_object}. *)
