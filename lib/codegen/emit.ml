open Mira_srclang
open Mira_srclang.Ast
open Mira_visa
open Mira_visa.Isa

exception Error of string * Loc.pos

let err pos fmt = Format.kasprintf (fun m -> raise (Error (m, pos))) fmt

let mangle (f : func) =
  match f.fclass with None -> f.fname | Some c -> c ^ "::" ^ f.fname

(* Storage of a named value. *)
type storage =
  | Sint of ireg  (* int scalar in a register *)
  | Sdouble of xreg
  | Sarr of ireg * Program.value_kind  (* base address; element kind *)
  | Sclass of string * ireg * ireg  (* class name; int block; float block *)
  | Sfield_int of int * ty  (* offset in this's int block; field type *)
  | Sfield_double of int  (* offset in this's float block *)

(* Per-class layout: int-space fields (int scalars and array handles)
   and float-space fields get slots in declaration order. *)
type layout = { li : (string * (int * ty)) list; lf : (string * int) list }

let layout_of_class (c : class_decl) : layout =
  let li = ref [] and lf = ref [] and ni = ref 0 and nf = ref 0 in
  List.iter
    (fun p ->
      match p.pty with
      | Tint | Tarr _ ->
          li := (p.pname, (!ni, p.pty)) :: !li;
          incr ni
      | Tdouble ->
          lf := (p.pname, !nf) :: !lf;
          incr nf
      | Tvoid | Tclass _ ->
          err Loc.dummy.lo "unsupported field type in class %s" c.cname)
    c.cfields;
  { li = List.rev !li; lf = List.rev !lf }

type ctx = {
  prog : program;
  layouts : (string * layout) list;
  code : Isa.insn array ref;  (* grow-able buffer *)
  dbg : Program.debug array ref;
  mutable len : int;
  mutable next_ireg : int;
  mutable next_xreg : int;
  mutable scopes : (string, storage) Hashtbl.t list;
  mutable labels : (int, int) Hashtbl.t;  (* label id -> address *)
  mutable next_label : int;
  fpool : (float, int) Hashtbl.t;
  fpool_rev : float array ref;
  mutable fpool_len : int;
  this_i : ireg;  (* valid in methods *)
  this_f : ireg;
  current_class : string option;
  addressing_fold : bool;
}

let grow arr len default =
  if len < Array.length !arr then ()
  else begin
    let bigger = Array.make (max 16 (2 * Array.length !arr)) default in
    Array.blit !arr 0 bigger 0 (Array.length !arr);
    arr := bigger
  end

let emit ctx insn (pos : Loc.pos) =
  grow ctx.code ctx.len Nop;
  grow ctx.dbg ctx.len { Program.line = 0; col = 0 };
  !(ctx.code).(ctx.len) <- insn;
  !(ctx.dbg).(ctx.len) <- { Program.line = pos.line; col = pos.col };
  ctx.len <- ctx.len + 1

let fresh_ireg ctx =
  let r = ctx.next_ireg in
  ctx.next_ireg <- r + 1;
  r

let fresh_xreg ctx =
  let r = ctx.next_xreg in
  ctx.next_xreg <- r + 1;
  r

let new_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

let place_label ctx l = Hashtbl.replace ctx.labels l ctx.len

let push_scope ctx = ctx.scopes <- Hashtbl.create 8 :: ctx.scopes
let pop_scope ctx = ctx.scopes <- List.tl ctx.scopes

let bind ctx name st =
  match ctx.scopes with
  | [] -> assert false
  | s :: _ -> Hashtbl.replace s name st

let lookup ctx name pos =
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s name with Some v -> Some v | None -> go rest)
  in
  match go ctx.scopes with
  | Some v -> v
  | None -> (
      match ctx.current_class with
      | Some c -> (
          let l = List.assoc c ctx.layouts in
          match List.assoc_opt name l.li with
          | Some (off, ty) -> Sfield_int (off, ty)
          | None -> (
              match List.assoc_opt name l.lf with
              | Some off -> Sfield_double off
              | None -> err pos "unbound variable %s" name))
      | None -> err pos "unbound variable %s" name)

let const_index ctx f =
  match Hashtbl.find_opt ctx.fpool f with
  | Some i -> i
  | None ->
      let i = ctx.fpool_len in
      grow ctx.fpool_rev i 0.0;
      !(ctx.fpool_rev).(i) <- f;
      ctx.fpool_len <- i + 1;
      Hashtbl.add ctx.fpool f i;
      i

let ty_of (e : expr) pos =
  match e.ety with
  | Some t -> t
  | None -> err pos "expression missing type (typecheck not run?)"

let kind_of_ty pos = function
  | Tint -> Program.Kint
  | Tdouble -> Program.Kdouble
  | Tvoid -> Program.Kvoid
  | Tarr _ -> Program.Kint
  | Tclass c -> err pos "class %s values have no direct register kind" c

(* ---------- expression lowering ---------- *)

(* Evaluate an int expression to an operand. *)
let rec gen_int ctx (e : expr) : iop =
  Mira_limits.Budget.tick ();
  let pos = e.espan.lo in
  match e.e with
  | Int_lit n -> Imm n
  | Float_lit _ -> err pos "float literal in int context"
  | Var x -> (
      match lookup ctx x pos with
      | Sint r -> Reg r
      | Sarr (r, _) -> Reg r
      | Sfield_int (off, (Tint | Tarr _)) ->
          let d = fresh_ireg ctx in
          emit ctx (Load (d, { base = ctx.this_i; index = None; scale = 1; disp = off })) pos;
          Reg d
      | _ -> err pos "%s is not an int value" x)
  | Index (a, i) ->
      let addr = gen_addr ctx a i in
      let d = fresh_ireg ctx in
      emit ctx (Load (d, addr)) pos;
      Reg d
  | Field (o, f) -> (
      let iblk, _ = gen_class ctx o in
      let cls = class_of ctx o in
      let l = List.assoc cls ctx.layouts in
      match List.assoc_opt f l.li with
      | Some (off, (Tint | Tarr _)) ->
          let d = fresh_ireg ctx in
          emit ctx (Load (d, { base = iblk; index = None; scale = 1; disp = off })) pos;
          Reg d
      | _ -> err pos "field %s is not an int field" f)
  | Call _ | Method_call _ ->
      let r = gen_call ctx e in
      (match r with `Int op -> op | `Double _ -> err pos "double call in int context")
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | Land | Lor), _, _) | Unop (Lnot, _)
    ->
      (* materialize a boolean via branches *)
      let d = fresh_ireg ctx in
      let l_false = new_label ctx and l_end = new_label ctx in
      branch_false ctx e l_false;
      emit ctx (Movq (d, Imm 1)) pos;
      emit ctx (Jmp l_end) pos;
      place_label ctx l_false;
      emit ctx (Movq (d, Imm 0)) pos;
      place_label ctx l_end;
      Reg d
  | Binop (op, a, b) -> (
      let va = gen_int ctx a in
      let vb = gen_int ctx b in
      let d = fresh_ireg ctx in
      emit ctx (Movq (d, va)) pos;
      match (op, vb) with
      | Add, _ -> emit ctx (Addq (d, vb)) pos; Reg d
      | Sub, _ -> emit ctx (Subq (d, vb)) pos; Reg d
      | Mul, Imm k when k > 0 && k land (k - 1) = 0 && ctx.addressing_fold ->
          (* strength reduction: multiply by power of two *)
          let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
          emit ctx (Shlq (d, log2 k)) pos;
          Reg d
      | Mul, _ -> emit ctx (Imulq (d, vb)) pos; Reg d
      | Div, _ -> emit ctx (Idivq (d, vb)) pos; Reg d
      | Mod, _ -> emit ctx (Iremq (d, vb)) pos; Reg d
      | (Lt | Le | Gt | Ge | Eq | Ne | Land | Lor), _ -> assert false)
  | Unop (Neg, a) ->
      let va = gen_int ctx a in
      let d = fresh_ireg ctx in
      emit ctx (Movq (d, va)) pos;
      emit ctx (Negq d) pos;
      Reg d
  | Cast (Tint, a) ->
      if ty_of a pos = Tint then gen_int ctx a
      else
        let x = gen_double ctx a in
        let d = fresh_ireg ctx in
        emit ctx (Cvttsd2si (d, x)) pos;
        Reg d
  | Cast (_, _) -> err pos "unsupported cast in int context"

(* Evaluate a double expression into an xmm register. *)
and gen_double ctx (e : expr) : xreg =
  let pos = e.espan.lo in
  match ty_of e pos with
  | Tint ->
      (* implicit widening *)
      let v = gen_int ctx e in
      let tmp =
        match v with
        | Reg r -> r
        | Imm n ->
            let r = fresh_ireg ctx in
            emit ctx (Movq (r, Imm n)) pos;
            r
      in
      let x = fresh_xreg ctx in
      emit ctx (Cvtsi2sd (x, tmp)) pos;
      x
  | Tdouble -> (
      match e.e with
      | Float_lit f ->
          let x = fresh_xreg ctx in
          if f = 0.0 then emit ctx (Xorpd x) pos
          else emit ctx (Movsd_const (x, const_index ctx f)) pos;
          x
      | Var v -> (
          match lookup ctx v pos with
          | Sdouble x ->
              let d = fresh_xreg ctx in
              emit ctx (Movsd_rr (d, x)) pos;
              d
          | Sfield_double off ->
              let d = fresh_xreg ctx in
              emit ctx
                (Movsd_load (d, { base = ctx.this_f; index = None; scale = 1; disp = off }))
                pos;
              d
          | _ -> err pos "%s is not a double value" v)
      | Index (a, i) ->
          let addr = gen_addr ctx a i in
          let d = fresh_xreg ctx in
          emit ctx (Movsd_load (d, addr)) pos;
          d
      | Field (o, f) -> (
          let _, fblk = gen_class ctx o in
          let cls = class_of ctx o in
          let l = List.assoc cls ctx.layouts in
          match List.assoc_opt f l.lf with
          | Some off ->
              let d = fresh_xreg ctx in
              emit ctx (Movsd_load (d, { base = fblk; index = None; scale = 1; disp = off })) pos;
              d
          | None -> err pos "field %s is not a double field" f)
      | Call _ | Method_call _ -> (
          match gen_call ctx e with
          | `Double x -> x
          | `Int _ -> err pos "int call in double context")
      | Binop (op, a, b) -> (
          let xa = gen_double ctx a in
          let xb = gen_double ctx b in
          let d = fresh_xreg ctx in
          emit ctx (Movsd_rr (d, xa)) pos;
          match op with
          | Add -> emit ctx (Addsd (d, xb)) pos; d
          | Sub -> emit ctx (Subsd (d, xb)) pos; d
          | Mul -> emit ctx (Mulsd (d, xb)) pos; d
          | Div -> emit ctx (Divsd (d, xb)) pos; d
          | _ -> err pos "unsupported double operator %s" (binop_to_string op))
      | Unop (Neg, a) ->
          let xa = gen_double ctx a in
          let d = fresh_xreg ctx in
          emit ctx (Xorpd d) pos;
          emit ctx (Subsd (d, xa)) pos;
          d
      | Cast (Tdouble, a) ->
          if ty_of a pos = Tdouble then gen_double ctx a
          else
            let v = gen_int ctx a in
            let tmp =
              match v with
              | Reg r -> r
              | Imm n ->
                  let r = fresh_ireg ctx in
                  emit ctx (Movq (r, Imm n)) pos;
                  r
            in
            let x = fresh_xreg ctx in
            emit ctx (Cvtsi2sd (x, tmp)) pos;
            x
      | _ -> err pos "unsupported double expression")
  | t -> err pos "expression of type %s in double context" (ty_to_string t)

(* Address of a[i], folding literal offsets and `e + k` indices into
   the operand when addressing_fold is on. *)
and gen_addr ctx (a : expr) (i : expr) : addr =
  let pos = a.espan.lo in
  let base =
    match gen_int ctx a with
    | Reg r -> r
    | Imm _ -> err pos "array base is an immediate"
  in
  if ctx.addressing_fold then
    match i.e with
    | Int_lit n -> { base; index = None; scale = 1; disp = n }
    | Binop (Add, e1, { e = Int_lit k; _ }) ->
        let idx = reg_of ctx (gen_int ctx e1) pos in
        { base; index = Some idx; scale = 1; disp = k }
    | Binop (Sub, e1, { e = Int_lit k; _ }) ->
        let idx = reg_of ctx (gen_int ctx e1) pos in
        { base; index = Some idx; scale = 1; disp = -k }
    | _ ->
        let idx = reg_of ctx (gen_int ctx i) pos in
        { base; index = Some idx; scale = 1; disp = 0 }
  else
    let idx = reg_of ctx (gen_int ctx i) pos in
    { base; index = Some idx; scale = 1; disp = 0 }

and reg_of ctx v pos =
  match v with
  | Reg r -> r
  | Imm n ->
      let r = fresh_ireg ctx in
      emit ctx (Movq (r, Imm n)) pos;
      r

(* Class-typed expression: yields (int block, float block) registers. *)
and gen_class ctx (e : expr) : ireg * ireg =
  let pos = e.espan.lo in
  match e.e with
  | Var x -> (
      match lookup ctx x pos with
      | Sclass (_, bi, bf) -> (bi, bf)
      | _ -> err pos "%s is not a class instance" x)
  | _ -> err pos "unsupported class-typed expression"

and class_of _ctx (e : expr) =
  let pos = e.espan.lo in
  match ty_of e pos with
  | Tclass c -> c
  | t -> err pos "expected class type, got %s" (ty_to_string t)

(* Calls: args go to ABI registers in positional order within their
   register file; methods pass this's two blocks as leading int args. *)
and gen_call ctx (e : expr) : [ `Int of iop | `Double of xreg ] =
  let pos = e.espan.lo in
  let name, args, is_method, recv =
    match e.e with
    | Call (f, args) -> (f, args, false, None)
    | Method_call (o, m, args) -> (m, args, true, Some o)
    | _ -> assert false
  in
  (* evaluate arguments into temporaries first *)
  let evaluated =
    List.map
      (fun a ->
        match ty_of a a.espan.lo with
        | Tint | Tarr _ -> `I (reg_of ctx (gen_int ctx a) a.espan.lo)
        | Tdouble -> `X (gen_double ctx a)
        | t -> err a.espan.lo "unsupported argument type %s" (ty_to_string t))
      args
  in
  let icount = ref 0 and xcount = ref 0 in
  (match recv with
  | Some o ->
      let bi, bf = gen_class ctx o in
      emit ctx (Movq (0, Reg bi)) pos;
      emit ctx (Movq (1, Reg bf)) pos;
      icount := 2
  | None -> ());
  List.iter
    (fun v ->
      match v with
      | `I r ->
          emit ctx (Movq (!icount, Reg r)) pos;
          incr icount
      | `X x ->
          emit ctx (Movsd_rr (!xcount, x)) pos;
          incr xcount)
    evaluated;
  let ret_ty =
    if is_method then
      let cls = class_of ctx (Option.get recv) in
      match find_method ctx.prog cls name with
      | Some m -> m.fret
      | None -> err pos "unknown method %s::%s" cls name
    else
      match find_func ctx.prog name with
      | Some f -> f.fret
      | None -> (
          match find_extern ctx.prog name with
          | Some x -> x.xret
          | None -> err pos "unknown function %s" name)
  in
  (match e.e with
  | Method_call (o, m, _) ->
      let cls = class_of ctx o in
      emit ctx (Call (cls ^ "::" ^ m)) pos
  | Call (f, _) ->
      if find_func ctx.prog f <> None then emit ctx (Call f) pos
      else emit ctx (Call_ext (f, List.length args)) pos
  | _ -> assert false);
  match ret_ty with
  | Tint | Tarr _ ->
      let d = fresh_ireg ctx in
      emit ctx (Movq (d, Reg 0)) pos;
      `Int (Reg d)
  | Tdouble ->
      let d = fresh_xreg ctx in
      emit ctx (Movsd_rr (d, 0)) pos;
      `Double d
  | Tvoid -> `Int (Imm 0)
  | Tclass c -> err pos "returning class %s by value is unsupported" c

(* Conditional branches: jump to [l] when the condition is false. *)
and branch_false ctx (e : expr) l =
  let pos = e.espan.lo in
  match e.e with
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let both_int = ty_of a pos = Tint && ty_of b pos = Tint in
      if both_int then begin
        let va = gen_int ctx a in
        let vb = gen_int ctx b in
        emit ctx (Cmpq (va, vb)) pos
      end
      else begin
        let xa = gen_double ctx a in
        let xb = gen_double ctx b in
        emit ctx (Ucomisd (xa, xb)) pos
      end;
      let inverse =
        match op with
        | Lt -> GE | Le -> G | Gt -> LE | Ge -> L | Eq -> NE | Ne -> E
        | _ -> assert false
      in
      emit ctx (Jcc (inverse, l)) pos
  | Binop (Land, a, b) ->
      branch_false ctx a l;
      branch_false ctx b l
  | Binop (Lor, a, b) ->
      let l_true = new_label ctx in
      branch_true ctx a l_true;
      branch_false ctx b l;
      place_label ctx l_true
  | Unop (Lnot, a) -> branch_true ctx a l
  | _ ->
      let v = gen_int ctx e in
      emit ctx (Cmpq (v, Imm 0)) pos;
      emit ctx (Jcc (E, l)) pos

and branch_true ctx (e : expr) l =
  let pos = e.espan.lo in
  match e.e with
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let both_int = ty_of a pos = Tint && ty_of b pos = Tint in
      if both_int then begin
        let va = gen_int ctx a in
        let vb = gen_int ctx b in
        emit ctx (Cmpq (va, vb)) pos
      end
      else begin
        let xa = gen_double ctx a in
        let xb = gen_double ctx b in
        emit ctx (Ucomisd (xa, xb)) pos
      end;
      let cc =
        match op with
        | Lt -> L | Le -> LE | Gt -> G | Ge -> GE | Eq -> E | Ne -> NE
        | _ -> assert false
      in
      emit ctx (Jcc (cc, l)) pos
  | Binop (Land, a, b) ->
      let l_false = new_label ctx in
      branch_false ctx a l_false;
      branch_true ctx b l;
      place_label ctx l_false
  | Binop (Lor, a, b) ->
      branch_true ctx a l;
      branch_true ctx b l
  | Unop (Lnot, a) -> branch_false ctx a l
  | _ ->
      let v = gen_int ctx e in
      emit ctx (Cmpq (v, Imm 0)) pos;
      emit ctx (Jcc (NE, l)) pos

(* ---------- lvalues ---------- *)

type location =
  | Loc_ireg of ireg
  | Loc_xreg of xreg
  | Loc_imem of addr
  | Loc_fmem of addr

let rec gen_lvalue ctx (lv : lvalue) : location * ty =
  let pos = lv.lspan.lo in
  match lv.l with
  | Lvar x -> (
      match lookup ctx x pos with
      | Sint r -> (Loc_ireg r, Tint)
      | Sdouble x -> (Loc_xreg x, Tdouble)
      | Sarr (r, k) ->
          (Loc_ireg r, Tarr (match k with Program.Kdouble -> Tdouble | _ -> Tint))
      | Sclass (c, _, _) -> err pos "cannot assign to class instance %s of %s" x c
      | Sfield_int (off, ty) ->
          (Loc_imem { base = ctx.this_i; index = None; scale = 1; disp = off }, ty)
      | Sfield_double off ->
          (Loc_fmem { base = ctx.this_f; index = None; scale = 1; disp = off }, Tdouble))
  | Lindex (base_lv, i) -> (
      let elem_ty =
        match snd (lvalue_ty ctx base_lv) with
        | Tarr t -> t
        | t -> err pos "indexing non-array of type %s" (ty_to_string t)
      in
      let base_expr = expr_of_lvalue base_lv in
      let addr = gen_addr ctx base_expr i in
      match elem_ty with
      | Tdouble -> (Loc_fmem addr, Tdouble)
      | Tint -> (Loc_imem addr, Tint)
      | t -> err pos "unsupported array element type %s" (ty_to_string t))
  | Lfield (base_lv, f) -> (
      match base_lv.l with
      | Lvar x -> (
          match lookup ctx x pos with
          | Sclass (c, bi, bf) -> (
              let l = List.assoc c ctx.layouts in
              match List.assoc_opt f l.li with
              | Some (off, ty) ->
                  (Loc_imem { base = bi; index = None; scale = 1; disp = off }, ty)
              | None -> (
                  match List.assoc_opt f l.lf with
                  | Some off ->
                      (Loc_fmem { base = bf; index = None; scale = 1; disp = off }, Tdouble)
                  | None -> err pos "class %s has no field %s" c f))
          | _ -> err pos "%s is not a class instance" x)
      | _ -> err pos "unsupported nested field assignment")

and lvalue_ty ctx (lv : lvalue) : location option * ty =
  (* type-only view, no code emitted for the leaf var case *)
  let pos = lv.lspan.lo in
  match lv.l with
  | Lvar x -> (
      match lookup ctx x pos with
      | Sint _ -> (None, Tint)
      | Sdouble _ -> (None, Tdouble)
      | Sarr (_, k) ->
          (None, Tarr (match k with Program.Kdouble -> Tdouble | _ -> Tint))
      | Sclass (c, _, _) -> (None, Tclass c)
      | Sfield_int (_, ty) -> (None, ty)
      | Sfield_double _ -> (None, Tdouble))
  | Lindex (l, _) -> (
      match snd (lvalue_ty ctx l) with
      | Tarr t -> (None, t)
      | t -> err pos "indexing non-array of type %s" (ty_to_string t))
  | Lfield (l, f) -> (
      match snd (lvalue_ty ctx l) with
      | Tclass c -> (
          let lay = List.assoc c ctx.layouts in
          match List.assoc_opt f lay.li with
          | Some (_, ty) -> (None, ty)
          | None ->
              if List.mem_assoc f lay.lf then (None, Tdouble)
              else err pos "class %s has no field %s" c f)
      | t -> err pos "field access on %s" (ty_to_string t))

and expr_of_lvalue (lv : lvalue) : expr =
  let desc =
    match lv.l with
    | Lvar x -> Var x
    | Lindex (l, i) -> Index (expr_of_lvalue l, i)
    | Lfield (l, f) -> Field (expr_of_lvalue l, f)
  in
  { e = desc; espan = lv.lspan; ety = None }

(* ---------- statements ---------- *)

let store_int ctx loc v pos =
  match loc with
  | Loc_ireg r -> emit ctx (Movq (r, v)) pos
  | Loc_imem a -> emit ctx (Store (a, v)) pos
  | Loc_xreg _ | Loc_fmem _ -> err pos "int store to double location"

let store_double ctx loc x pos =
  match loc with
  | Loc_xreg d -> emit ctx (Movsd_rr (d, x)) pos
  | Loc_fmem a -> emit ctx (Movsd_store (a, x)) pos
  | Loc_ireg _ | Loc_imem _ -> err pos "double store to int location"

let rec gen_stmt ctx (st : stmt) =
  Mira_limits.Budget.tick ();
  let pos = st.sspan.lo in
  match st.s with
  | Decl (Tint, name, init) ->
      let r = fresh_ireg ctx in
      (match init with
      | Some e ->
          let v = gen_int ctx e in
          emit ctx (Movq (r, v)) pos
      | None -> emit ctx (Movq (r, Imm 0)) pos);
      bind ctx name (Sint r)
  | Decl (Tdouble, name, init) ->
      let x = fresh_xreg ctx in
      (match init with
      | Some e ->
          let v = gen_double ctx e in
          emit ctx (Movsd_rr (x, v)) pos
      | None -> emit ctx (Xorpd x) pos);
      bind ctx name (Sdouble x)
  | Decl (Tclass c, name, None) ->
      let l = List.assoc c ctx.layouts in
      let bi = fresh_ireg ctx and bf = fresh_ireg ctx in
      emit ctx (Alloc_i (bi, Imm (max 1 (List.length l.li)))) pos;
      emit ctx (Alloc_f (bf, Imm (max 1 (List.length l.lf)))) pos;
      bind ctx name (Sclass (c, bi, bf))
  | Decl (Tclass _, _, Some _) -> err pos "class initializers are unsupported"
  | Decl (Tarr _, name, Some init) ->
      (* array alias: double *p = q; *)
      let v = gen_int ctx init in
      let r = fresh_ireg ctx in
      emit ctx (Movq (r, v)) pos;
      let kind =
        match ty_of init pos with
        | Tarr Tdouble -> Program.Kdouble
        | Tarr _ -> Program.Kint
        | t -> err pos "array alias initializer has type %s" (ty_to_string t)
      in
      bind ctx name (Sarr (r, kind))
  | Decl ((Tarr _ | Tvoid), _, _) -> err pos "unsupported declaration"
  | Arr_decl (elem, name, size) ->
      let v = gen_int ctx size in
      let r = fresh_ireg ctx in
      (match elem with
      | Tdouble ->
          emit ctx (Alloc_f (r, v)) pos;
          bind ctx name (Sarr (r, Program.Kdouble))
      | Tint ->
          emit ctx (Alloc_i (r, v)) pos;
          bind ctx name (Sarr (r, Program.Kint))
      | t -> err pos "unsupported array element type %s" (ty_to_string t))
  | Assign (lv, e) -> (
      let loc, ty = gen_lvalue ctx lv in
      match ty with
      | Tdouble ->
          let x = gen_double ctx e in
          store_double ctx loc x pos
      | Tint | Tarr _ ->
          let v = gen_int ctx e in
          store_int ctx loc v pos
      | t -> err pos "unsupported assignment to %s" (ty_to_string t))
  | Op_assign (op, lv, e) -> (
      match snd (lvalue_ty ctx lv) with
      | Tint -> (
          let v = gen_int ctx e in
          let loc, _ = gen_lvalue ctx lv in
          match loc with
          | Loc_ireg r ->
              (match op with
              | Add -> emit ctx (Addq (r, v)) pos
              | Sub -> emit ctx (Subq (r, v)) pos
              | Mul -> emit ctx (Imulq (r, v)) pos
              | Div -> emit ctx (Idivq (r, v)) pos
              | Mod -> emit ctx (Iremq (r, v)) pos
              | _ -> err pos "unsupported compound operator")
          | Loc_imem a ->
              let t = fresh_ireg ctx in
              emit ctx (Load (t, a)) pos;
              (match op with
              | Add -> emit ctx (Addq (t, v)) pos
              | Sub -> emit ctx (Subq (t, v)) pos
              | Mul -> emit ctx (Imulq (t, v)) pos
              | Div -> emit ctx (Idivq (t, v)) pos
              | Mod -> emit ctx (Iremq (t, v)) pos
              | _ -> err pos "unsupported compound operator");
              emit ctx (Store (a, Reg t)) pos
          | _ -> err pos "int compound assignment to double location")
      | Tdouble -> (
          let x = gen_double ctx e in
          let loc, _ = gen_lvalue ctx lv in
          let apply d =
            match op with
            | Add -> emit ctx (Addsd (d, x)) pos
            | Sub -> emit ctx (Subsd (d, x)) pos
            | Mul -> emit ctx (Mulsd (d, x)) pos
            | Div -> emit ctx (Divsd (d, x)) pos
            | _ -> err pos "unsupported compound operator"
          in
          match loc with
          | Loc_xreg d -> apply d
          | Loc_fmem a ->
              let t = fresh_xreg ctx in
              emit ctx (Movsd_load (t, a)) pos;
              apply t;
              emit ctx (Movsd_store (a, t)) pos
          | _ -> err pos "double compound assignment to int location")
      | t -> err pos "unsupported compound assignment to %s" (ty_to_string t))
  | Expr_stmt e -> (
      match e.e with
      | Call _ | Method_call _ -> ignore (gen_call ctx e)
      | _ ->
          (* evaluate for effect; harmless and rare *)
          (match ty_of e pos with
          | Tdouble -> ignore (gen_double ctx e)
          | _ -> ignore (gen_int ctx e)))
  | If { cond; then_; else_ } ->
      let l_else = new_label ctx and l_end = new_label ctx in
      branch_false ctx cond l_else;
      push_scope ctx;
      List.iter (gen_stmt ctx) then_;
      pop_scope ctx;
      if else_ <> [] then begin
        (* attribute the jump over the else branch to the last
           statement of the then branch: it executes exactly as often
           as that statement *)
        let then_pos =
          match List.rev then_ with
          | last :: _ -> last.sspan.lo
          | [] -> pos
        in
        emit ctx (Jmp l_end) then_pos;
        place_label ctx l_else;
        push_scope ctx;
        List.iter (gen_stmt ctx) else_;
        pop_scope ctx;
        place_label ctx l_end
      end
      else place_label ctx l_else
  | For { init; cond; step; body } ->
      push_scope ctx;
      let ipos = init.ispan.lo in
      let r =
        if init.ideclared then begin
          let r = fresh_ireg ctx in
          bind ctx init.ivar (Sint r);
          r
        end
        else
          match lookup ctx init.ivar ipos with
          | Sint r -> r
          | _ -> err ipos "loop variable %s is not an int" init.ivar
      in
      let v = gen_int ctx init.iexpr in
      emit ctx (Movq (r, v)) ipos;
      let l_cond = new_label ctx and l_exit = new_label ctx in
      place_label ctx l_cond;
      branch_false ctx cond l_exit;
      push_scope ctx;
      List.iter (gen_stmt ctx) body;
      pop_scope ctx;
      let spos = step.stspan.lo in
      (match (step.sdelta, step.sexpr) with
      | Some 1, _ -> emit ctx (Incq r) spos
      | Some -1, _ -> emit ctx (Decq r) spos
      | Some d, _ when d >= 0 -> emit ctx (Addq (r, Imm d)) spos
      | Some d, _ -> emit ctx (Subq (r, Imm (-d))) spos
      | None, Some e ->
          let v = gen_int ctx e in
          emit ctx (Addq (r, v)) spos
      | None, None -> err spos "malformed loop step");
      emit ctx (Jmp l_cond) spos;
      place_label ctx l_exit;
      pop_scope ctx
  | While (cond, body) ->
      let l_cond = new_label ctx and l_exit = new_label ctx in
      place_label ctx l_cond;
      branch_false ctx cond l_exit;
      push_scope ctx;
      List.iter (gen_stmt ctx) body;
      pop_scope ctx;
      (* the back-jump executes once per iteration: attribute it to the
         last body statement, which has exactly that multiplicity *)
      let back_pos =
        match List.rev body with
        | last :: _ -> last.sspan.lo
        | [] -> cond.espan.lo
      in
      emit ctx (Jmp l_cond) back_pos;
      place_label ctx l_exit
  | Return None -> emit ctx Ret pos
  | Return (Some e) ->
      (match ty_of e pos with
      | Tdouble ->
          let x = gen_double ctx e in
          emit ctx (Movsd_rr (0, x)) pos
      | Tint | Tarr _ ->
          let v = gen_int ctx e in
          emit ctx (Movq (0, v)) pos
      | t -> err pos "unsupported return type %s" (ty_to_string t));
      emit ctx Ret pos
  | Block body ->
      push_scope ctx;
      List.iter (gen_stmt ctx) body;
      pop_scope ctx

(* ---------- functions ---------- *)

let gen_func ~addressing_fold prog layouts fpool fpool_rev fpool_len (f : func)
    : Program.fundef * int =
  let ctx =
    {
      prog;
      layouts;
      code = ref [||];
      dbg = ref [||];
      len = 0;
      next_ireg = abi_regs;
      next_xreg = abi_regs;
      scopes = [];
      labels = Hashtbl.create 16;
      next_label = 0;
      fpool;
      fpool_rev;
      fpool_len = !fpool_len;
      this_i = abi_regs;  (* locals 16, 17 reserved for this in methods *)
      this_f = abi_regs + 1;
      current_class = f.fclass;
      addressing_fold;
    }
  in
  push_scope ctx;
  let pos = f.fspan.lo in
  (* prologue: copy ABI registers into frame-local registers *)
  let icount = ref 0 and xcount = ref 0 in
  if f.fclass <> None then begin
    ctx.next_ireg <- abi_regs + 2;
    emit ctx (Movq (ctx.this_i, Reg 0)) pos;
    emit ctx (Movq (ctx.this_f, Reg 1)) pos;
    icount := 2
  end;
  List.iter
    (fun p ->
      match p.pty with
      | Tint ->
          let r = fresh_ireg ctx in
          emit ctx (Movq (r, Reg !icount)) pos;
          incr icount;
          bind ctx p.pname (Sint r)
      | Tarr elem ->
          let r = fresh_ireg ctx in
          emit ctx (Movq (r, Reg !icount)) pos;
          incr icount;
          let kind =
            match elem with Tdouble -> Program.Kdouble | _ -> Program.Kint
          in
          bind ctx p.pname (Sarr (r, kind))
      | Tdouble ->
          let x = fresh_xreg ctx in
          emit ctx (Movsd_rr (x, !xcount)) pos;
          incr xcount;
          bind ctx p.pname (Sdouble x)
      | t -> err pos "unsupported parameter type %s" (ty_to_string t))
    f.fparams;
  List.iter (gen_stmt ctx) f.fbody;
  (* Implicit return for functions falling off the end (omitted when
     the body already ends in return, as a real compiler would).
     Attributed to the function's closing position — deliberately
     outside every statement span so the bridge counts it once per
     invocation. *)
  (match List.rev f.fbody with
  | { s = Return _; _ } :: _ -> ()
  | _ -> emit ctx Ret f.fspan.hi);
  (* patch label targets *)
  let code = Array.sub !(ctx.code) 0 ctx.len in
  let resolve l =
    match Hashtbl.find_opt ctx.labels l with
    | Some a -> a
    | None -> err pos "internal: unplaced label %d" l
  in
  Array.iteri
    (fun i insn ->
      match insn with
      | Jmp l -> code.(i) <- Jmp (resolve l)
      | Jcc (c, l) -> code.(i) <- Jcc (c, resolve l)
      | _ -> ())
    code;
  let dbg = Array.sub !(ctx.dbg) 0 ctx.len in
  let params =
    (if f.fclass <> None then [ Program.Kint; Program.Kint ] else [])
    @ List.map (fun p -> kind_of_ty pos p.pty) f.fparams
  in
  ( {
      Program.name = mangle f;
      params;
      ret = kind_of_ty pos f.fret;
      insns = code;
      debug = dbg;
      n_iregs = ctx.next_ireg;
      n_xregs = ctx.next_xreg;
    },
    ctx.fpool_len )

let program ?(addressing_fold = true) (p : program) : Program.t =
  let layouts = List.map (fun c -> (c.cname, layout_of_class c)) p.classes in
  let fpool = Hashtbl.create 16 in
  let fpool_rev = ref [||] in
  let fpool_len = ref 0 in
  let funs =
    List.map
      (fun f ->
        let fd, n =
          gen_func ~addressing_fold p layouts fpool fpool_rev fpool_len f
        in
        fpool_len := n;
        fd)
      (all_functions p)
  in
  { Program.funs; fpool = Array.sub !fpool_rev 0 !fpool_len }
