type what = Fuel | Depth | Deadline

exception Exhausted of what

let what_to_string = function
  | Fuel -> "fuel"
  | Depth -> "recursion depth"
  | Deadline -> "deadline"

type t = {
  mutable fuel : int;  (* remaining ticks; max_int means unlimited *)
  fuel_limit : int;
  depth_limit : int;
  mutable depth : int;
  deadline : float;  (* absolute wall-clock time; infinity means none *)
  mutable clock_in : int;  (* ticks until the next deadline check *)
}

let default_depth = 10_000

(* How often [tick] consults the wall clock.  Small enough that a
   source with a few hundred tokens still notices an expired deadline,
   large enough that gettimeofday stays off the hot path. *)
let clock_period = 64

let make ?fuel ?(depth = default_depth) ?timeout_ms () =
  let fuel = match fuel with Some f -> max 0 f | None -> max_int in
  let deadline =
    match timeout_ms with
    | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
    | None -> infinity
  in
  {
    fuel;
    fuel_limit = fuel;
    depth_limit = max 1 depth;
    depth = 0;
    deadline;
    clock_in = clock_period;
  }

(* The current-budget slot is per {e sys-thread}, not per domain.
   [Domain.DLS] cannot hold it: every thread spawned with
   [Thread.create] shares its domain's DLS copy, so concurrent server
   threads (the daemon runs one per connection, all on domain 0) would
   overwrite each other's slot — one request's ticks burning another's
   fuel, and a restore firing mid-request dropping a live budget back
   to the permissive default.

   Slots live in one global array indexed by [Thread.id]: ids are
   process-unique, small, monotonically allocated ints (each domain's
   initial thread has one too, so [Domain.spawn] batch workers are
   covered by the same mechanism).  The hot-path read is lock-free — a
   thread only ever reads or writes its own slot — while writes and
   growth go through [slots_mu]; the array reference itself is atomic,
   so a reader racing a grow sees either array, and both hold its
   slot's current value because growth copies under the same mutex
   every writer holds. *)

let slots_mu = Mutex.create ()
let slots : t option array Atomic.t = Atomic.make (Array.make 64 None)

let set_slot id v =
  Mutex.lock slots_mu;
  let a = Atomic.get slots in
  let a =
    if id < Array.length a then a
    else begin
      let grown = Array.make (max (id + 1) (2 * Array.length a)) None in
      Array.blit a 0 grown 0 (Array.length a);
      Atomic.set slots grown;
      grown
    end
  in
  a.(id) <- v;
  Mutex.unlock slots_mu

let slot_of id =
  let a = Atomic.get slots in
  if id < Array.length a then a.(id) else None

let current () =
  let id = Thread.id (Thread.self ()) in
  match slot_of id with
  | Some b -> b
  | None ->
      (* first touch on this thread: a fresh permissive default (its
         depth/clock counters are mutable, so it cannot be shared) *)
      let b = make () in
      set_slot id (Some b);
      b

let check_deadline b =
  if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
    raise (Exhausted Deadline)

let install b f =
  check_deadline b;
  let id = Thread.id (Thread.self ()) in
  let prev = slot_of id in
  set_slot id (Some b);
  Fun.protect ~finally:(fun () -> set_slot id prev) f

let tick () =
  let b = current () in
  if b.fuel <> max_int then begin
    if b.fuel <= 0 then raise (Exhausted Fuel);
    b.fuel <- b.fuel - 1
  end;
  b.clock_in <- b.clock_in - 1;
  if b.clock_in <= 0 then begin
    b.clock_in <- clock_period;
    check_deadline b
  end

let with_depth f =
  let b = current () in
  if b.depth >= b.depth_limit then raise (Exhausted Depth);
  b.depth <- b.depth + 1;
  Fun.protect ~finally:(fun () -> b.depth <- b.depth - 1) f

let spent () =
  let b = current () in
  if b.fuel_limit = max_int then 0 else b.fuel_limit - b.fuel

let time_left_s () =
  let b = current () in
  if b.deadline = infinity then None
  else Some (b.deadline -. Unix.gettimeofday ())
