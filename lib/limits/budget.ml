type what = Fuel | Depth | Deadline

exception Exhausted of what

let what_to_string = function
  | Fuel -> "fuel"
  | Depth -> "recursion depth"
  | Deadline -> "deadline"

type t = {
  mutable fuel : int;  (* remaining ticks; max_int means unlimited *)
  fuel_limit : int;
  depth_limit : int;
  mutable depth : int;
  deadline : float;  (* absolute wall-clock time; infinity means none *)
  mutable clock_in : int;  (* ticks until the next deadline check *)
}

let default_depth = 10_000

(* How often [tick] consults the wall clock.  Small enough that a
   source with a few hundred tokens still notices an expired deadline,
   large enough that gettimeofday stays off the hot path. *)
let clock_period = 64

let make ?fuel ?(depth = default_depth) ?timeout_ms () =
  let fuel = match fuel with Some f -> max 0 f | None -> max_int in
  let deadline =
    match timeout_ms with
    | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
    | None -> infinity
  in
  {
    fuel;
    fuel_limit = fuel;
    depth_limit = max 1 depth;
    depth = 0;
    deadline;
    clock_in = clock_period;
  }

(* The default budget never expires except on depth, so it can be
   shared: its only mutable traffic is the fuel/clock counters, which
   are per-domain because DLS hands each domain a fresh copy. *)
let current : t Domain.DLS.key = Domain.DLS.new_key (fun () -> make ())

let check_deadline b =
  if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
    raise (Exhausted Deadline)

let install b f =
  check_deadline b;
  let prev = Domain.DLS.get current in
  Domain.DLS.set current b;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current prev) f

let tick () =
  let b = Domain.DLS.get current in
  if b.fuel <> max_int then begin
    if b.fuel <= 0 then raise (Exhausted Fuel);
    b.fuel <- b.fuel - 1
  end;
  b.clock_in <- b.clock_in - 1;
  if b.clock_in <= 0 then begin
    b.clock_in <- clock_period;
    check_deadline b
  end

let with_depth f =
  let b = Domain.DLS.get current in
  if b.depth >= b.depth_limit then raise (Exhausted Depth);
  b.depth <- b.depth + 1;
  Fun.protect ~finally:(fun () -> b.depth <- b.depth - 1) f

let spent () =
  let b = Domain.DLS.get current in
  if b.fuel_limit = max_int then 0 else b.fuel_limit - b.fuel

let time_left_s () =
  let b = Domain.DLS.get current in
  if b.deadline = infinity then None
  else Some (b.deadline -. Unix.gettimeofday ())
