(** Per-thread analysis budgets.

    Every analysis pass that recurses or loops over untrusted input
    consults the thread's {e current budget}: a fuel counter (bounding
    total work), a recursion-depth cap (bounding stack growth well
    below [Stack_overflow] territory), and an optional wall-clock
    deadline (checked every few fuel ticks, so a runaway source times
    out instead of hanging a worker).

    The budget is installed with {!install} for the dynamic extent of
    one analysis; the hot paths call {!tick} and {!with_depth} without
    threading state through every signature.  Each {e sys-thread} owns
    its own slot, keyed by [Thread.id] — not [Domain.DLS], which all
    of a domain's threads share — so concurrent batch worker domains
    {e and} concurrent server threads on one domain cannot observe
    each other's budgets.  When nothing is installed a permissive
    default applies: unlimited fuel, no deadline, and a recursion-depth
    cap of {!default_depth} (deep enough for any legitimate program,
    shallow enough that native stacks never overflow). *)

type what = Fuel | Depth | Deadline

exception Exhausted of what
(** Raised by {!tick} / {!with_depth} when the current budget runs out.
    Never raised by the default budget except for [Depth]. *)

val what_to_string : what -> string
(** ["fuel"], ["recursion depth"], ["deadline"]. *)

type t

val default_depth : int
(** Depth cap of the default budget (10_000). *)

val make : ?fuel:int -> ?depth:int -> ?timeout_ms:int -> unit -> t
(** A fresh budget.  [fuel] bounds the number of {!tick}s (default
    unlimited); [depth] bounds {!with_depth} nesting (default
    {!default_depth}); [timeout_ms] sets a wall-clock deadline that
    starts now (default none).  A [timeout_ms] of [0] expires on the
    first check. *)

val install : t -> (unit -> 'a) -> 'a
(** [install b f] makes [b] the calling thread's current budget for the
    duration of [f], restoring the previous budget afterwards (also on
    exceptions).  The deadline is checked once on entry. *)

val tick : unit -> unit
(** Burn one unit of fuel on the current budget; every 64 ticks the
    wall-clock deadline is also checked.  Raises {!Exhausted}. *)

val with_depth : (unit -> 'a) -> 'a
(** Run one recursion level deeper; raises [Exhausted Depth] when the
    current budget's cap is exceeded. *)

val spent : unit -> int
(** Fuel consumed so far on the current budget (for tests and stats). *)

val time_left_s : unit -> float option
(** Seconds until the current budget's wall-clock deadline ([None]
    when it has no deadline; non-positive once it has passed).  Lets
    slow paths that sleep voluntarily — retry backoff, queue waits —
    cap the sleep so they never outlive the deadline that is supposed
    to bound them. *)
