open Ast

exception Error of string * Loc.pos

type state = {
  mutable toks : Lexer.token list;
  mutable classes : string list;  (* class names seen so far *)
}

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let peek2 st =
  match st.toks with _ :: t :: _ -> Some t.Lexer.t | _ -> None

let next st =
  match st.toks with
  | [] -> assert false
  | t :: rest ->
      st.toks <- (match rest with [] -> [ t ] | _ -> rest);
      t

let err st msg = raise (Error (msg, (peek st).tspan.lo))

let expect_punct st p =
  match (peek st).Lexer.t with
  | PUNCT q when q = p -> next st
  | t ->
      err st
        (Printf.sprintf "expected %S, found %S" p (Lexer.token_to_string t))

let expect_ident st =
  match (peek st).Lexer.t with
  | IDENT s ->
      let tok = next st in
      (s, tok.tspan)
  | t -> err st (Printf.sprintf "expected identifier, found %S" (Lexer.token_to_string t))

let accept_punct st p =
  match (peek st).Lexer.t with
  | PUNCT q when q = p ->
      ignore (next st);
      true
  | _ -> false

let is_type_start st =
  match (peek st).Lexer.t with
  | KW ("int" | "double" | "void") -> true
  | IDENT c when List.mem c st.classes -> (
      (* a class name starts a declaration only when followed by an
         identifier: `A a;` vs the expression `a.foo()` *)
      match peek2 st with Some (IDENT _) -> true | _ -> false)
  | _ -> false

let parse_base_ty st =
  match (peek st).Lexer.t with
  | KW "int" -> ignore (next st); Tint
  | KW "double" -> ignore (next st); Tdouble
  | KW "void" -> ignore (next st); Tvoid
  | IDENT c when List.mem c st.classes -> ignore (next st); Tclass c
  | t -> err st (Printf.sprintf "expected type, found %S" (Lexer.token_to_string t))

(* ---------- expressions ---------- *)

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and prec_of = function
  | "||" -> Some (1, Lor)
  | "&&" -> Some (2, Land)
  | "==" -> Some (3, Eq)
  | "!=" -> Some (3, Ne)
  | "<" -> Some (4, Lt)
  | "<=" -> Some (4, Le)
  | ">" -> Some (4, Gt)
  | ">=" -> Some (4, Ge)
  | "+" -> Some (5, Add)
  | "-" -> Some (5, Sub)
  | "*" -> Some (6, Mul)
  | "/" -> Some (6, Div)
  | "%" -> Some (6, Mod)
  | _ -> None

and climb st lhs min_prec =
  match (peek st).Lexer.t with
  | PUNCT p -> (
      match prec_of p with
      | Some (prec, op) when prec >= min_prec ->
          ignore (next st);
          let rhs = parse_expr_prec st (prec + 1) in
          let span = Loc.join lhs.espan rhs.espan in
          climb st (mk_expr (Binop (op, lhs, rhs)) span) min_prec
      | _ -> lhs)
  | _ -> lhs

and parse_unary st =
  (* every nested-expression shape — parens, casts, unary chains,
     index subscripts — passes through here, so one depth guard bounds
     expression recursion as a whole *)
  Mira_limits.Budget.with_depth (fun () -> parse_unary_inner st)

and parse_unary_inner st =
  let tok = peek st in
  match tok.Lexer.t with
  | PUNCT "-" ->
      ignore (next st);
      let e = parse_unary st in
      mk_expr (Unop (Neg, e)) (Loc.join tok.tspan e.espan)
  | PUNCT "!" ->
      ignore (next st);
      let e = parse_unary st in
      mk_expr (Unop (Lnot, e)) (Loc.join tok.tspan e.espan)
  | PUNCT "(" -> (
      (* cast or parenthesized expression *)
      match peek2 st with
      | Some (KW ("int" | "double")) ->
          ignore (next st);
          let ty = parse_base_ty st in
          ignore (expect_punct st ")");
          let e = parse_unary st in
          mk_expr (Cast (ty, e)) (Loc.join tok.tspan e.espan)
      | _ ->
          ignore (next st);
          let e = parse_expr_prec st 1 in
          let closing = expect_punct st ")" in
          { e with espan = Loc.join tok.tspan closing.tspan })
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  parse_postfix_ops st e

and parse_postfix_ops st e =
  match (peek st).Lexer.t with
  | PUNCT "[" ->
      ignore (next st);
      let idx = parse_expr_prec st 1 in
      let closing = expect_punct st "]" in
      parse_postfix_ops st
        (mk_expr (Index (e, idx)) (Loc.join e.espan closing.tspan))
  | PUNCT "." -> (
      ignore (next st);
      let name, nspan = expect_ident st in
      match (peek st).Lexer.t with
      | PUNCT "(" ->
          let args, stop = parse_args st in
          parse_postfix_ops st
            (mk_expr (Method_call (e, name, args)) (Loc.join e.espan stop))
      | _ ->
          parse_postfix_ops st
            (mk_expr (Field (e, name)) (Loc.join e.espan nspan)))
  | _ -> e

and parse_args st =
  ignore (expect_punct st "(");
  let rec go acc =
    if (peek st).Lexer.t = PUNCT ")" then
      let closing = next st in
      (List.rev acc, closing.tspan)
    else
      let e = parse_expr_prec st 1 in
      if accept_punct st "," then go (e :: acc)
      else
        let closing = expect_punct st ")" in
        (List.rev (e :: acc), closing.tspan)
  in
  go []

and parse_primary st =
  let tok = peek st in
  match tok.Lexer.t with
  | INT n ->
      ignore (next st);
      mk_expr (Int_lit n) tok.tspan
  | FLOAT f ->
      ignore (next st);
      mk_expr (Float_lit f) tok.tspan
  | IDENT name -> (
      ignore (next st);
      match (peek st).Lexer.t with
      | PUNCT "(" ->
          let args, stop = parse_args st in
          mk_expr (Call (name, args)) (Loc.join tok.tspan stop)
      | _ -> mk_expr (Var name) tok.tspan)
  | t -> err st (Printf.sprintf "expected expression, found %S" (Lexer.token_to_string t))

let parse_full_expr st = parse_expr_prec st 1

(* ---------- lvalues ---------- *)

let rec lvalue_of_expr st (e : expr) : lvalue =
  match e.e with
  | Var x -> { l = Lvar x; lspan = e.espan }
  | Index (a, i) -> { l = Lindex (lvalue_of_expr st a, i); lspan = e.espan }
  | Field (a, f) -> { l = Lfield (lvalue_of_expr st a, f); lspan = e.espan }
  | _ -> raise (Error ("invalid assignment target", e.espan.lo))

(* ---------- statements ---------- *)

let rec parse_stmt st : stmt =
  Mira_limits.Budget.tick ();
  (* blocks, ifs and loops recurse through here: cap their nesting *)
  Mira_limits.Budget.with_depth (fun () -> parse_stmt_inner st)

and parse_stmt_inner st : stmt =
  let tok = peek st in
  match tok.Lexer.t with
  | PRAGMA payload ->
      ignore (next st);
      let items = Annot.parse payload in
      let inner = parse_stmt st in
      { inner with sann = items @ inner.sann }
  | PUNCT "{" ->
      let body, span = parse_block st in
      mk_stmt (Block body) span
  | KW "if" -> parse_if st
  | KW "for" -> parse_for st
  | KW "while" -> parse_while st
  | KW "return" ->
      ignore (next st);
      if (peek st).Lexer.t = PUNCT ";" then begin
        let stop = next st in
        mk_stmt (Return None) (Loc.join tok.tspan stop.tspan)
      end
      else
        let e = parse_full_expr st in
        let stop = expect_punct st ";" in
        mk_stmt (Return (Some e)) (Loc.join tok.tspan stop.tspan)
  | _ when is_type_start st -> parse_decl st
  | _ ->
      (* assignment, compound assignment, increment or expression *)
      let e = parse_full_expr st in
      let finish desc stop = mk_stmt desc (Loc.join tok.tspan stop) in
      (match (peek st).Lexer.t with
      | PUNCT "=" ->
          ignore (next st);
          let lv = lvalue_of_expr st e in
          let rhs = parse_full_expr st in
          let stop = expect_punct st ";" in
          finish (Assign (lv, rhs)) stop.tspan
      | PUNCT ("+=" | "-=" | "*=" | "/=") ->
          let op_tok = next st in
          let op =
            match op_tok.Lexer.t with
            | PUNCT "+=" -> Add
            | PUNCT "-=" -> Sub
            | PUNCT "*=" -> Mul
            | PUNCT "/=" -> Div
            | _ -> assert false
          in
          let lv = lvalue_of_expr st e in
          let rhs = parse_full_expr st in
          let stop = expect_punct st ";" in
          finish (Op_assign (op, lv, rhs)) stop.tspan
      | PUNCT "++" ->
          ignore (next st);
          let lv = lvalue_of_expr st e in
          let stop = expect_punct st ";" in
          finish (Op_assign (Add, lv, mk_expr (Int_lit 1) e.espan)) stop.tspan
      | PUNCT "--" ->
          ignore (next st);
          let lv = lvalue_of_expr st e in
          let stop = expect_punct st ";" in
          finish (Op_assign (Sub, lv, mk_expr (Int_lit 1) e.espan)) stop.tspan
      | PUNCT ";" ->
          let stop = next st in
          finish (Expr_stmt e) stop.tspan
      | t ->
          err st
            (Printf.sprintf "expected statement terminator, found %S"
               (Lexer.token_to_string t)))

and parse_decl st =
  let start = (peek st).tspan in
  let base = parse_base_ty st in
  let ptr = accept_punct st "*" in
  let name, _ = expect_ident st in
  match (peek st).Lexer.t with
  | PUNCT "[" ->
      ignore (next st);
      let size = parse_full_expr st in
      ignore (expect_punct st "]");
      let stop = expect_punct st ";" in
      mk_stmt (Arr_decl (base, name, size)) (Loc.join start stop.tspan)
  | PUNCT "=" ->
      ignore (next st);
      let init = parse_full_expr st in
      let stop = expect_punct st ";" in
      let ty = if ptr then Tarr base else base in
      mk_stmt (Decl (ty, name, Some init)) (Loc.join start stop.tspan)
  | _ ->
      let stop = expect_punct st ";" in
      let ty = if ptr then Tarr base else base in
      mk_stmt (Decl (ty, name, None)) (Loc.join start stop.tspan)

and parse_body st : stmt list =
  (* a single statement or a braced block, flattened *)
  if (peek st).Lexer.t = PUNCT "{" then fst (parse_block st)
  else [ parse_stmt st ]

and parse_block st : stmt list * Loc.span =
  let opening = expect_punct st "{" in
  let rec go acc =
    if (peek st).Lexer.t = PUNCT "}" then
      let closing = next st in
      (List.rev acc, Loc.join opening.tspan closing.tspan)
    else go (parse_stmt st :: acc)
  in
  go []

and parse_if st =
  let start = next st (* if *) in
  ignore (expect_punct st "(");
  let cond = parse_full_expr st in
  ignore (expect_punct st ")");
  let then_ = parse_body st in
  let else_ =
    match (peek st).Lexer.t with
    | KW "else" ->
        ignore (next st);
        parse_body st
    | _ -> []
  in
  let stop =
    match (List.rev (then_ @ else_) : stmt list) with
    | last :: _ -> last.sspan
    | [] -> start.tspan
  in
  mk_stmt (If { cond; then_; else_ }) (Loc.join start.tspan stop)

and parse_for st =
  let start = next st (* for *) in
  ignore (expect_punct st "(");
  (* init: [int] x = e *)
  let init_start = (peek st).tspan in
  let ideclared =
    match (peek st).Lexer.t with
    | KW "int" ->
        ignore (next st);
        true
    | _ -> false
  in
  let ivar, _ = expect_ident st in
  ignore (expect_punct st "=");
  let iexpr = parse_full_expr st in
  let init_stop = expect_punct st ";" in
  let init =
    { ivar; ideclared; iexpr; ispan = Loc.join init_start init_stop.tspan }
  in
  let cond = parse_full_expr st in
  ignore (expect_punct st ";");
  (* step: x++ | x-- | x += e | x -= e *)
  let step_start = (peek st).tspan in
  let svar, _ = expect_ident st in
  let sdelta, sexpr =
    match (peek st).Lexer.t with
    | PUNCT "++" ->
        ignore (next st);
        (Some 1, None)
    | PUNCT "--" ->
        ignore (next st);
        (Some (-1), None)
    | PUNCT "+=" ->
        ignore (next st);
        let e = parse_full_expr st in
        ((match e.e with Int_lit n -> Some n | _ -> None), Some e)
    | PUNCT "-=" ->
        ignore (next st);
        let e = parse_full_expr st in
        ((match e.e with Int_lit n -> Some (-n) | _ -> None), Some e)
    | t ->
        err st
          (Printf.sprintf "expected loop step, found %S" (Lexer.token_to_string t))
  in
  let step_stop = expect_punct st ")" in
  let step =
    { svar; sdelta; sexpr; stspan = Loc.join step_start step_stop.tspan }
  in
  let body = parse_body st in
  let stop =
    match List.rev body with last :: _ -> last.sspan | [] -> step.stspan
  in
  mk_stmt (For { init; cond; step; body }) (Loc.join start.tspan stop)

and parse_while st =
  let start = next st in
  ignore (expect_punct st "(");
  let cond = parse_full_expr st in
  ignore (expect_punct st ")");
  let body = parse_body st in
  let stop =
    match List.rev body with last :: _ -> last.sspan | [] -> cond.espan
  in
  mk_stmt (While (cond, body)) (Loc.join start.tspan stop)

(* ---------- top level ---------- *)

let parse_params st : param list =
  ignore (expect_punct st "(");
  if accept_punct st ")" then []
  else
    let rec go acc =
      let base = parse_base_ty st in
      let ptr = accept_punct st "*" in
      let name, _ = expect_ident st in
      let arr =
        if accept_punct st "[" then begin
          ignore (expect_punct st "]");
          true
        end
        else false
      in
      let pty = if ptr || arr then Tarr base else base in
      let p = { pty; pname = name } in
      if accept_punct st "," then go (p :: acc)
      else begin
        ignore (expect_punct st ")");
        List.rev (p :: acc)
      end
    in
    go []

let parse_func st ~fclass ~fret ~fname ~start : func =
  let fparams = parse_params st in
  let fbody, body_span = parse_block st in
  { fname; fret; fparams; fbody; fclass; fspan = Loc.join start body_span }

let parse_extern st : extern_decl =
  ignore (next st) (* extern *);
  let xret = parse_base_ty st in
  let xname, _ = expect_ident st in
  ignore (expect_punct st "(");
  let xparams =
    if accept_punct st ")" then []
    else
      let rec go acc =
        let t = parse_base_ty st in
        let t = if accept_punct st "*" then Tarr t else t in
        (* parameter names in extern prototypes are optional *)
        (match (peek st).Lexer.t with
        | IDENT _ -> ignore (next st)
        | _ -> ());
        if accept_punct st "," then go (t :: acc)
        else begin
          ignore (expect_punct st ")");
          List.rev (t :: acc)
        end
      in
      go []
  in
  ignore (expect_punct st ";");
  { xname; xret; xparams }

let parse_class st : class_decl =
  let start = next st (* class *) in
  let cname, _ = expect_ident st in
  st.classes <- cname :: st.classes;
  ignore (expect_punct st "{");
  let fields = ref [] and methods = ref [] in
  let rec go () =
    match (peek st).Lexer.t with
    | PUNCT "}" ->
        ignore (next st);
        ignore (accept_punct st ";")
    | _ ->
        let mstart = (peek st).tspan in
        let base = parse_base_ty st in
        let ptr = accept_punct st "*" in
        let name, _ = expect_ident st in
        (match (peek st).Lexer.t with
        | PUNCT "(" ->
            let m =
              parse_func st ~fclass:(Some cname) ~fret:base ~fname:name
                ~start:mstart
            in
            methods := m :: !methods
        | _ ->
            let arr =
              if accept_punct st "[" then begin
                ignore (expect_punct st "]");
                true
              end
              else false
            in
            ignore (expect_punct st ";");
            let pty = if ptr || arr then Tarr base else base in
            fields := { pty; pname = name } :: !fields);
        go ()
  in
  go ();
  {
    cname;
    cfields = List.rev !fields;
    cmethods = List.rev !methods;
    cspan = Loc.join start.tspan (peek st).tspan;
  }

let parse src =
  let st = { toks = Lexer.tokenize src; classes = [] } in
  let classes = ref [] and funcs = ref [] and externs = ref [] in
  let rec go () =
    match (peek st).Lexer.t with
    | EOF -> ()
    | KW "extern" ->
        externs := parse_extern st :: !externs;
        go ()
    | KW "class" ->
        classes := parse_class st :: !classes;
        go ()
    | _ ->
        let start = (peek st).tspan in
        let fret = parse_base_ty st in
        let fname, _ = expect_ident st in
        funcs := parse_func st ~fclass:None ~fret ~fname ~start :: !funcs;
        go ()
  in
  go ();
  {
    classes = List.rev !classes;
    funcs = List.rev !funcs;
    externs = List.rev !externs;
  }

let parse_expr src =
  let st = { toks = Lexer.tokenize src; classes = [] } in
  let e = parse_full_expr st in
  (match (peek st).Lexer.t with
  | EOF -> ()
  | t -> err st (Printf.sprintf "trailing input: %S" (Lexer.token_to_string t)));
  e
