open Ast

type error = { msg : string; at : Loc.pos }

let pp_error ppf e = Format.fprintf ppf "%a: %s" Loc.pp_pos e.at e.msg

type env = {
  prog : program;
  mutable scopes : (string, ty) Hashtbl.t list;
  current_class : class_decl option;
  mutable errors : error list;
  ret : ty;
}

let error env at fmt =
  Format.kasprintf
    (fun msg -> env.errors <- { msg; at } :: env.errors)
    fmt

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let bind env name ty =
  match env.scopes with
  | [] -> assert false
  | s :: _ -> Hashtbl.replace s name ty

let lookup env name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s name with Some t -> Some t | None -> go rest)
  in
  match go env.scopes with
  | Some t -> Some t
  | None -> (
      match env.current_class with
      | Some c -> (
          match List.find_opt (fun f -> f.pname = name) c.cfields with
          | Some f -> Some f.pty
          | None -> None)
      | None -> None)

let is_numeric = function Tint | Tdouble -> true | _ -> false

(* Implicit widening: int may flow into double. *)
let compatible ~expected ~actual =
  expected = actual || (expected = Tdouble && actual = Tint)

let signature_of env name =
  match find_func env.prog name with
  | Some f -> Some (f.fret, List.map (fun p -> p.pty) f.fparams)
  | None -> (
      match find_extern env.prog name with
      | Some x -> Some (x.xret, x.xparams)
      | None -> None)

let rec infer env (e : expr) : ty =
  let t = infer_desc env e in
  e.ety <- Some t;
  t

and infer_desc env e =
  let at = e.espan.lo in
  match e.e with
  | Int_lit _ -> Tint
  | Float_lit _ -> Tdouble
  | Var x -> (
      match lookup env x with
      | Some t -> t
      | None ->
          error env at "unbound variable %s" x;
          Tint)
  | Index (a, i) -> (
      let ta = infer env a in
      let ti = infer env i in
      if ti <> Tint then error env at "array index must be int, got %s" (ty_to_string ti);
      match ta with
      | Tarr t -> t
      | t ->
          error env at "indexing non-array of type %s" (ty_to_string t);
          Tint)
  | Field (o, f) -> (
      match infer env o with
      | Tclass c -> (
          match List.find_opt (fun cd -> cd.cname = c) env.prog.classes with
          | None ->
              error env at "unknown class %s" c;
              Tint
          | Some cd -> (
              match List.find_opt (fun p -> p.pname = f) cd.cfields with
              | Some p -> p.pty
              | None ->
                  error env at "class %s has no field %s" c f;
                  Tint))
      | t ->
          error env at "field access on non-class type %s" (ty_to_string t);
          Tint)
  | Call (name, args) -> (
      match signature_of env name with
      | None ->
          error env at "unknown function %s" name;
          List.iter (fun a -> ignore (infer env a)) args;
          Tint
      | Some (ret, ptys) ->
          check_args env at name ptys args;
          ret)
  | Method_call (o, m, args) -> (
      match infer env o with
      | Tclass c -> (
          match find_method env.prog c m with
          | None ->
              error env at "class %s has no method %s" c m;
              Tint
          | Some f ->
              check_args env at (c ^ "::" ^ m)
                (List.map (fun p -> p.pty) f.fparams)
                args;
              f.fret)
      | t ->
          error env at "method call on non-class type %s" (ty_to_string t);
          Tint)
  | Binop (op, a, b) -> (
      let ta = infer env a and tb = infer env b in
      match op with
      | Add | Sub | Mul | Div ->
          if not (is_numeric ta && is_numeric tb) then
            error env at "arithmetic on non-numeric types %s, %s"
              (ty_to_string ta) (ty_to_string tb);
          if ta = Tdouble || tb = Tdouble then Tdouble else Tint
      | Mod ->
          if ta <> Tint || tb <> Tint then
            error env at "%% requires int operands";
          Tint
      | Lt | Le | Gt | Ge | Eq | Ne ->
          if not (is_numeric ta && is_numeric tb) then
            error env at "comparison on non-numeric types";
          Tint
      | Land | Lor ->
          if ta <> Tint || tb <> Tint then
            error env at "logical operator requires int operands";
          Tint)
  | Unop (Neg, a) ->
      let t = infer env a in
      if not (is_numeric t) then error env at "negation of non-numeric type";
      t
  | Unop (Lnot, a) ->
      if infer env a <> Tint then error env at "! requires int operand";
      Tint
  | Cast (t, a) ->
      let ta = infer env a in
      if not (is_numeric ta) then error env at "cast of non-numeric type";
      t

and check_args env at name ptys args =
  if List.length ptys <> List.length args then
    error env at "%s expects %d arguments, got %d" name (List.length ptys)
      (List.length args)
  else
    List.iteri
      (fun i (pty, arg) ->
        let t = infer env arg in
        if not (compatible ~expected:pty ~actual:t) then
          error env at "argument %d of %s: expected %s, got %s" (i + 1) name
            (ty_to_string pty) (ty_to_string t))
      (List.combine ptys args)

let rec infer_lvalue env (lv : lvalue) : ty =
  let at = lv.lspan.lo in
  match lv.l with
  | Lvar x -> (
      match lookup env x with
      | Some t -> t
      | None ->
          error env at "unbound variable %s" x;
          Tint)
  | Lindex (l, i) -> (
      let tl = infer_lvalue env l in
      if infer env i <> Tint then error env at "array index must be int";
      match tl with
      | Tarr t -> t
      | t ->
          error env at "indexing non-array of type %s" (ty_to_string t);
          Tint)
  | Lfield (l, f) -> (
      match infer_lvalue env l with
      | Tclass c -> (
          match List.find_opt (fun cd -> cd.cname = c) env.prog.classes with
          | Some cd -> (
              match List.find_opt (fun p -> p.pname = f) cd.cfields with
              | Some p -> p.pty
              | None ->
                  error env at "class %s has no field %s" c f;
                  Tint)
          | None ->
              error env at "unknown class %s" c;
              Tint)
      | t ->
          error env at "field access on non-class type %s" (ty_to_string t);
          Tint)

let rec check_stmt env (st : stmt) =
  let at = st.sspan.lo in
  match st.s with
  | Decl (ty, name, init) ->
      (match ty with
      | Tvoid -> error env at "cannot declare variable of type void"
      | _ -> ());
      Option.iter
        (fun e ->
          let t = infer env e in
          if not (compatible ~expected:ty ~actual:t) then
            error env at "initializer for %s: expected %s, got %s" name
              (ty_to_string ty) (ty_to_string t))
        init;
      bind env name ty
  | Arr_decl (elem, name, size) ->
      if infer env size <> Tint then error env at "array size must be int";
      bind env name (Tarr elem)
  | Assign (lv, e) ->
      let tl = infer_lvalue env lv in
      let te = infer env e in
      if not (compatible ~expected:tl ~actual:te) then
        error env at "assignment: expected %s, got %s" (ty_to_string tl)
          (ty_to_string te)
  | Op_assign (op, lv, e) ->
      let tl = infer_lvalue env lv in
      let te = infer env e in
      if not (is_numeric tl && is_numeric te) then
        error env at "compound assignment on non-numeric types"
      else if tl = Tint && te = Tdouble then
        error env at "compound assignment narrows double to int";
      (match op with
      | Mod when tl <> Tint -> error env at "%% requires int operands"
      | _ -> ())
  | Expr_stmt e -> ignore (infer env e)
  | If { cond; then_; else_ } ->
      if infer env cond <> Tint then error env at "condition must be int";
      push_scope env;
      List.iter (check_stmt env) then_;
      pop_scope env;
      push_scope env;
      List.iter (check_stmt env) else_;
      pop_scope env
  | For { init; cond; step; body } ->
      push_scope env;
      if init.ideclared then bind env init.ivar Tint
      else if lookup env init.ivar = None then
        error env init.ispan.lo "unbound loop variable %s" init.ivar;
      if infer env init.iexpr <> Tint then
        error env init.ispan.lo "loop initializer must be int";
      if infer env cond <> Tint then
        error env cond.espan.lo "loop condition must be int";
      if step.svar <> init.ivar then
        error env step.stspan.lo
          "loop step updates %s but the loop variable is %s" step.svar
          init.ivar;
      Option.iter
        (fun e ->
          if infer env e <> Tint then
            error env step.stspan.lo "loop step must be int")
        step.sexpr;
      List.iter (check_stmt env) body;
      pop_scope env
  | While (cond, body) ->
      if infer env cond <> Tint then error env at "condition must be int";
      push_scope env;
      List.iter (check_stmt env) body;
      pop_scope env
  | Return None ->
      if env.ret <> Tvoid then error env at "missing return value"
  | Return (Some e) ->
      let t = infer env e in
      if env.ret = Tvoid then error env at "void function returns a value"
      else if not (compatible ~expected:env.ret ~actual:t) then
        error env at "return type: expected %s, got %s" (ty_to_string env.ret)
          (ty_to_string t)
  | Block body ->
      push_scope env;
      List.iter (check_stmt env) body;
      pop_scope env

let check_func prog errors (f : func) =
  let current_class =
    match f.fclass with
    | None -> None
    | Some c -> List.find_opt (fun cd -> cd.cname = c) prog.classes
  in
  let env =
    { prog; scopes = []; current_class; errors = []; ret = f.fret }
  in
  push_scope env;
  List.iter (fun p -> bind env p.pname p.pty) f.fparams;
  List.iter (check_stmt env) f.fbody;
  pop_scope env;
  errors := !errors @ List.rev env.errors

let check prog =
  let errors = ref [] in
  (* duplicate definitions *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : func) ->
      let key =
        match f.fclass with None -> f.fname | Some c -> c ^ "::" ^ f.fname
      in
      if Hashtbl.mem seen key then
        errors :=
          !errors @ [ { msg = "duplicate function " ^ key; at = f.fspan.lo } ]
      else Hashtbl.add seen key ())
    (all_functions prog);
  List.iter (check_func prog errors) (all_functions prog);
  match !errors with [] -> Ok () | es -> Error es

exception Check_error of error list

let errors_to_string es =
  String.concat "\n" (List.map (fun e -> Format.asprintf "%a" pp_error e) es)

let check_exn prog =
  match check prog with Ok () -> prog | Error es -> raise (Check_error es)
