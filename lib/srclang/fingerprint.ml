open Ast

(* Canonical per-function digests for incremental reanalysis.

   The digest of a function must change exactly when re-analyzing it
   could produce a different model fragment.  The analysis consumes:

   - the function's own (folded, typechecked) structure, including the
     source *line* of every statement span — absolute lines appear in
     the model (entry lines, synthesized parameter names like
     [iters_42], warning texts) — and its annotations;
   - its analysis closure: the signatures of every function, method
     and extern it may call (return types drive typing and lowering,
     parameter names become call-site binding keys) and every class
     declaration (field order fixes object layout).

   Columns are deliberately excluded: instruction attribution works by
   span containment, and both the spans and the instruction positions
   are re-derived from the same parse, so any whitespace edit that
   preserves the line structure of a function leaves its model
   fragment byte-identical.  Bodies of *other* functions are likewise
   excluded — editing one function invalidates only that function.

   The serialization is an unambiguous tagged prefix form (every
   constructor gets a distinct tag, every list a length header), so
   distinct trees cannot collide textually; the hash is MD5 over the
   bytes. *)

let version = "mira-fp-1"

let add_str b s =
  (* length-prefixed so user identifiers cannot forge structure *)
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let add_int b n =
  Buffer.add_char b '#';
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let add_list b f xs =
  add_int b (List.length xs);
  List.iter (f b) xs

let add_span b (sp : Loc.span) =
  (* lines only; see the column note above *)
  add_int b sp.lo.line;
  add_int b sp.hi.line

let rec add_ty b = function
  | Tint -> Buffer.add_char b 'i'
  | Tdouble -> Buffer.add_char b 'd'
  | Tvoid -> Buffer.add_char b 'v'
  | Tarr t ->
      Buffer.add_char b 'a';
      add_ty b t
  | Tclass c ->
      Buffer.add_char b 'c';
      add_str b c

let add_binop b op = add_str b (binop_to_string op)

let add_unop b = function
  | Neg -> Buffer.add_char b 'n'
  | Lnot -> Buffer.add_char b '!'

let rec add_expr b (e : expr) =
  match e.e with
  | Int_lit n ->
      Buffer.add_char b 'I';
      add_int b n
  | Float_lit f ->
      Buffer.add_char b 'F';
      (* %h is exact (hex) — no rounding ambiguity *)
      add_str b (Printf.sprintf "%h" f)
  | Var x ->
      Buffer.add_char b 'V';
      add_str b x
  | Index (a, i) ->
      Buffer.add_char b 'X';
      add_expr b a;
      add_expr b i
  | Field (a, f) ->
      Buffer.add_char b 'D';
      add_expr b a;
      add_str b f
  | Call (f, args) ->
      Buffer.add_char b 'C';
      add_str b f;
      add_list b add_expr args
  | Method_call (o, m, args) ->
      Buffer.add_char b 'M';
      add_expr b o;
      add_str b m;
      add_list b add_expr args
  | Binop (op, a, c) ->
      Buffer.add_char b 'B';
      add_binop b op;
      add_expr b a;
      add_expr b c
  | Unop (op, a) ->
      Buffer.add_char b 'U';
      add_unop b op;
      add_expr b a
  | Cast (t, a) ->
      Buffer.add_char b 'T';
      add_ty b t;
      add_expr b a

let rec add_lvalue b (lv : lvalue) =
  match lv.l with
  | Lvar x ->
      Buffer.add_char b 'v';
      add_str b x
  | Lindex (l, e) ->
      Buffer.add_char b 'x';
      add_lvalue b l;
      add_expr b e
  | Lfield (l, f) ->
      Buffer.add_char b 'f';
      add_lvalue b l;
      add_str b f

let add_annotation b = function
  | A_skip -> Buffer.add_string b "@s"
  | A_init v ->
      Buffer.add_string b "@i";
      add_str b v
  | A_cond v ->
      Buffer.add_string b "@c";
      add_str b v
  | A_iters v ->
      Buffer.add_string b "@n";
      add_str b v
  | A_fraction f ->
      Buffer.add_string b "@f";
      add_str b (Printf.sprintf "%h" f)
  | A_parallel -> Buffer.add_string b "@p"

let rec add_stmt b (st : stmt) =
  add_span b st.sspan;
  add_list b add_annotation st.sann;
  match st.s with
  | Decl (t, x, init) ->
      Buffer.add_char b 'D';
      add_ty b t;
      add_str b x;
      add_list b add_expr (Option.to_list init)
  | Arr_decl (t, x, len) ->
      Buffer.add_char b 'A';
      add_ty b t;
      add_str b x;
      add_expr b len
  | Assign (lv, e) ->
      Buffer.add_char b '=';
      add_lvalue b lv;
      add_expr b e
  | Op_assign (op, lv, e) ->
      Buffer.add_char b 'O';
      add_binop b op;
      add_lvalue b lv;
      add_expr b e
  | Expr_stmt e ->
      Buffer.add_char b 'E';
      add_expr b e
  | If { cond; then_; else_ } ->
      Buffer.add_char b 'I';
      add_expr b cond;
      add_list b add_stmt then_;
      add_list b add_stmt else_
  | For { init; cond; step; body } ->
      Buffer.add_char b 'F';
      add_str b init.ivar;
      add_int b (if init.ideclared then 1 else 0);
      add_expr b init.iexpr;
      add_span b init.ispan;
      add_expr b cond;
      add_str b step.svar;
      add_list b (fun b d -> add_int b d) (Option.to_list step.sdelta);
      add_list b add_expr (Option.to_list step.sexpr);
      add_span b step.stspan;
      add_list b add_stmt body
  | While (cond, body) ->
      Buffer.add_char b 'W';
      add_expr b cond;
      add_list b add_stmt body
  | Return e ->
      Buffer.add_char b 'R';
      add_list b add_expr (Option.to_list e)
  | Block body ->
      Buffer.add_char b 'B';
      add_list b add_stmt body

let add_param b (p : param) =
  add_ty b p.pty;
  add_str b p.pname

let add_signature b (f : func) =
  add_list b (fun b c -> add_str b c) (Option.to_list f.fclass);
  add_str b f.fname;
  add_ty b f.fret;
  add_list b add_param f.fparams

(* The closure serialization: everything a function's analysis can
   observe about the rest of the program.  Bodies of other functions
   are not included — that is the whole point. *)
type context = string

let context_of_program (p : program) : context =
  let b = Buffer.create 512 in
  add_str b version;
  add_list b
    (fun b (c : class_decl) ->
      add_str b c.cname;
      add_list b add_param c.cfields;
      add_list b add_signature c.cmethods)
    p.classes;
  add_list b add_signature p.funcs;
  add_list b
    (fun b (x : extern_decl) ->
      add_str b x.xname;
      add_ty b x.xret;
      add_list b add_ty x.xparams)
    p.externs;
  Buffer.contents b

let func_bytes ~(context : context) ~salt (f : func) =
  let b = Buffer.create 1024 in
  add_str b salt;
  add_str b context;
  add_signature b f;
  add_span b f.fspan;
  add_list b add_stmt f.fbody;
  Buffer.contents b

let func_digest ~context ~salt (f : func) =
  Digest.to_hex (Digest.string (func_bytes ~context ~salt f))

(* ---------- cross-file interface and reference sets ---------- *)

let digest_of add x =
  let b = Buffer.create 128 in
  add_str b version;
  add b x;
  Digest.to_hex (Digest.string (Buffer.contents b))

let mangled (f : func) =
  match f.fclass with None -> f.fname | Some c -> c ^ "::" ^ f.fname

(* Only the annotation structure of the body, in traversal order:
   callers splice the callee's evaluated model, so an annotation edit
   inside [f] must reach [f]'s cross-file callers — but a plain body
   edit must not. *)
let add_body_annotations b (f : func) =
  iter_stmts (fun st -> add_list b add_annotation st.sann) f.fbody

let add_class b (c : class_decl) =
  add_str b c.cname;
  add_list b add_param c.cfields;
  add_list b add_signature c.cmethods

let add_extern b (x : extern_decl) =
  add_str b x.xname;
  add_ty b x.xret;
  add_list b add_ty x.xparams

let interface_of_program (p : program) =
  let entries = ref [] in
  let push k v = entries := (k, v) :: !entries in
  List.iter
    (fun (c : class_decl) ->
      push ("class:" ^ c.cname) (digest_of add_class c);
      List.iter
        (fun (m : func) ->
          push ("ann:" ^ mangled m) (digest_of add_body_annotations m))
        c.cmethods)
    p.classes;
  List.iter
    (fun (f : func) ->
      push ("sig:" ^ f.fname) (digest_of add_signature f);
      push ("ann:" ^ f.fname) (digest_of add_body_annotations f))
    p.funcs;
  List.iter
    (fun (x : extern_decl) -> push ("extern:" ^ x.xname) (digest_of add_extern x))
    p.externs;
  List.rev !entries

module Sset = Set.Make (String)

let func_refs (p : program) (f : func) =
  let refs = ref Sset.empty in
  let add k = refs := Sset.add k !refs in
  let rec ty_refs = function
    | Tint | Tdouble | Tvoid -> ()
    | Tarr t -> ty_refs t
    | Tclass c -> add ("class:" ^ c)
  in
  ty_refs f.fret;
  List.iter (fun (pm : param) -> ty_refs pm.pty) f.fparams;
  (match f.fclass with Some c -> add ("class:" ^ c) | None -> ());
  let on_expr (e : expr) =
    (match e.ety with Some t -> ty_refs t | None -> ());
    match e.e with
    | Call (name, _) ->
        if Option.is_some (find_extern p name) then add ("extern:" ^ name)
        else begin
          add ("sig:" ^ name);
          add ("ann:" ^ name)
        end
    | Method_call (o, m, _) -> (
        match o.ety with
        | Some (Tclass c) ->
            add ("class:" ^ c);
            add ("ann:" ^ c ^ "::" ^ m)
        | _ -> ())
    | Cast (t, _) -> ty_refs t
    | Int_lit _ | Float_lit _ | Var _ | Index _ | Field _ | Binop _ | Unop _ ->
        ()
  in
  iter_stmts
    (fun st ->
      (match st.s with
      | Decl (t, _, _) | Arr_decl (t, _, _) -> ty_refs t
      | _ -> ());
      iter_exprs_of_stmt on_expr st)
    f.fbody;
  Sset.elements !refs
