type token_desc =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | PRAGMA of string
  | EOF

type token = { t : token_desc; tspan : Loc.span }

exception Error of string * Loc.pos

let keywords =
  [ "int"; "double"; "void"; "for"; "while"; "if"; "else"; "return";
    "class"; "extern" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | PRAGMA s -> "#pragma @Annotation " ^ s
  | EOF -> "<eof>"

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let here st = Loc.pos st.line st.col

let error st msg = raise (Error (msg, here st))

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated comment"
        | _ ->
            advance st;
            close ()
      in
      close ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let start = here st in
  let buf = Buffer.create 8 in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        Buffer.add_char buf c;
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | Some '.', (Some _ | None) -> true
    | Some ('e' | 'E'), _ -> true
    | _ -> false
  in
  if is_float then begin
    (match peek st with
    | Some '.' ->
        Buffer.add_char buf '.';
        advance st;
        digits ()
    | _ -> ());
    (match peek st with
    | Some ('e' | 'E') ->
        Buffer.add_char buf 'e';
        advance st;
        (match peek st with
        | Some ('+' | '-') ->
            Buffer.add_char buf (Option.get (peek st));
            advance st
        | _ -> ());
        digits ()
    | _ -> ());
    let stop = Loc.pos st.line (st.col - 1) in
    let f =
      match float_of_string_opt (Buffer.contents buf) with
      | Some f -> f
      | None ->
          raise
            (Error
               ( Printf.sprintf "malformed float literal %S" (Buffer.contents buf),
                 start ))
    in
    { t = FLOAT f; tspan = Loc.span start stop }
  end
  else
    let stop = Loc.pos st.line (st.col - 1) in
    let n =
      match int_of_string_opt (Buffer.contents buf) with
      | Some n -> n
      | None ->
          raise
            (Error
               ( Printf.sprintf "integer literal %s out of range"
                   (Buffer.contents buf),
                 start ))
    in
    { t = INT n; tspan = Loc.span start stop }

let lex_ident st =
  let start = here st in
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_alnum c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = Buffer.contents buf in
  let stop = Loc.pos st.line (st.col - 1) in
  let t = if List.mem s keywords then KW s else IDENT s in
  { t; tspan = Loc.span start stop }

(* `#pragma @Annotation { ... }`, possibly continued over lines with a
   trailing backslash (as in the paper's Listing 6). *)
let lex_pragma st =
  let start = here st in
  let buf = Buffer.create 32 in
  let rec to_eol () =
    match peek st with
    | Some '\\' when peek2 st = Some '\n' ->
        advance st;
        advance st;
        to_eol ()
    | Some '\\' when peek2 st = Some '\r' ->
        advance st;
        advance st;
        (if peek st = Some '\n' then advance st);
        to_eol ()
    | Some '\n' | None -> ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        to_eol ()
  in
  to_eol ();
  let line = Buffer.contents buf in
  let prefix = "#pragma" in
  if not (String.length line >= String.length prefix
          && String.sub line 0 (String.length prefix) = prefix) then
    error st "malformed pragma";
  let rest = String.sub line 7 (String.length line - 7) |> String.trim in
  let marker = "@Annotation" in
  if String.length rest >= String.length marker
     && String.sub rest 0 (String.length marker) = marker then
    let payload =
      String.sub rest (String.length marker)
        (String.length rest - String.length marker)
      |> String.trim
    in
    let stop = Loc.pos st.line (max 1 (st.col - 1)) in
    Some { t = PRAGMA payload; tspan = Loc.span start stop }
  else None (* unknown pragmas are ignored, like a real compiler *)

let two_char_puncts =
  [ "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "-="; "*="; "/="; "++"; "--" ]

let lex_punct st =
  let start = here st in
  let c = Option.get (peek st) in
  let two =
    match peek2 st with
    | Some c2 ->
        let s = Printf.sprintf "%c%c" c c2 in
        if List.mem s two_char_puncts then Some s else None
    | None -> None
  in
  match two with
  | Some s ->
      advance st;
      advance st;
      { t = PUNCT s; tspan = Loc.span start (Loc.pos st.line (st.col - 1)) }
  | None ->
      let singles = "+-*/%<>=!()[]{};,." in
      if String.contains singles c then begin
        advance st;
        { t = PUNCT (String.make 1 c); tspan = Loc.span start start }
      end
      else error st (Printf.sprintf "unexpected character %C" c)

let tokenize src =
  let st = { src; off = 0; line = 1; col = 1 } in
  let acc = ref [] in
  let rec go () =
    Mira_limits.Budget.tick ();
    skip_ws_and_comments st;
    match peek st with
    | None ->
        acc := { t = EOF; tspan = Loc.span (here st) (here st) } :: !acc
    | Some '#' ->
        (match lex_pragma st with
        | Some tok -> acc := tok :: !acc
        | None -> ());
        go ()
    | Some c when is_digit c ->
        acc := lex_number st :: !acc;
        go ()
    | Some c when is_alpha c ->
        acc := lex_ident st :: !acc;
        go ()
    | Some _ ->
        acc := lex_punct st :: !acc;
        go ()
  in
  go ();
  List.rev !acc
