(** Canonical per-function digests over the folded, typechecked AST —
    the keys of function-granular incremental reanalysis.

    A function's digest covers its own structure (statements,
    expressions, annotations, and the source {e line} of every span —
    absolute lines appear in model entries, synthesized parameter
    names and warnings) plus its {e analysis closure}: every function,
    method and extern signature and every class declaration in the
    program.  It deliberately excludes columns (instruction
    attribution is span-relative, so whitespace edits that preserve
    line structure change nothing) and the bodies of other functions
    (editing one function invalidates only that function).

    Two sources of invalidation follow: editing a function's own body
    or moving it to different lines changes only its digest; changing
    any signature, class or extern changes every digest in the file —
    sound and cheap, at the cost of over-invalidation when an unused
    declaration changes. *)

val version : string
(** Participates in every digest; bump on serialization changes. *)

type context
(** The serialized analysis closure of a program. *)

val context_of_program : Ast.program -> context
(** Compute the closure once per program; cheap (signatures only). *)

val func_digest : context:context -> salt:string -> Ast.func -> string
(** Hex digest of one function under the given closure.  [salt] lets
    callers fold in external invalidators (codegen level, consumer
    cache version). *)
