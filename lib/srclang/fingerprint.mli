(** Canonical per-function digests over the folded, typechecked AST —
    the keys of function-granular incremental reanalysis.

    A function's digest covers its own structure (statements,
    expressions, annotations, and the source {e line} of every span —
    absolute lines appear in model entries, synthesized parameter
    names and warnings) plus its {e analysis closure}: every function,
    method and extern signature and every class declaration in the
    program.  It deliberately excludes columns (instruction
    attribution is span-relative, so whitespace edits that preserve
    line structure change nothing) and the bodies of other functions
    (editing one function invalidates only that function).

    Two sources of invalidation follow: editing a function's own body
    or moving it to different lines changes only its digest; changing
    any signature, class or extern changes every digest in the file —
    sound and cheap, at the cost of over-invalidation when an unused
    declaration changes. *)

val version : string
(** Participates in every digest; bump on serialization changes. *)

type context
(** The serialized analysis closure of a program. *)

val context_of_program : Ast.program -> context
(** Compute the closure once per program; cheap (signatures only). *)

val func_digest : context:context -> salt:string -> Ast.func -> string
(** Hex digest of one function under the given closure.  [salt] lets
    callers fold in external invalidators (codegen level, consumer
    cache version). *)

(** {2 Cross-file interface and reference sets}

    Watch-mode sessions track dependencies {e between} files by name:
    every file is a self-contained program, but real projects repeat
    shared declarations textually (the C-header discipline), so when
    file [B]'s exported declaration of name [g] changes, any function
    in another file that references [g] conservatively re-analyzes.
    The exported interface is a map from keys — ["sig:NAME"],
    ["class:NAME"], ["extern:NAME"], ["ann:NAME"] (the annotations
    inside [NAME]'s body, which feed callers' evaluated models) — to
    digests of the corresponding declaration serialization, and each
    function's reference set lists the keys its analysis closure can
    observe. *)

val interface_of_program : Ast.program -> (string * string) list
(** Exported interface of a program: [(key, digest)] pairs for every
    function signature ([sig:f]), per-function annotation structure
    ([ann:f], methods mangled [ann:C::m]), class declaration
    ([class:C]) and extern ([extern:x]), in declaration order.  A
    key's digest changes exactly when re-analyzing a referencing
    function {e in another file} could observe the difference (plus
    the deliberate over-approximation of [ann:*], which changes with
    any annotation edit in the body). *)

val func_refs : Ast.program -> Ast.func -> string list
(** The interface keys function [f] references: ["sig:g"] and
    ["ann:g"] for every called program function [g], ["extern:x"] for
    called externs, ["class:C"] (and ["ann:C::m"] at method call
    sites) for every class named in its types.  Sorted, duplicate
    free. *)
