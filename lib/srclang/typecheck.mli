(** Type checking and type annotation.

    Walks the program, checks well-formedness, and fills the mutable
    [ety] slot of every expression with its inferred type — codegen
    and the metric generator dispatch on it (int vs double
    instructions).  Implicit [int → double] widening is allowed, as in
    C; narrowing requires an explicit cast. *)

type error = { msg : string; at : Loc.pos }

exception Check_error of error list
(** Raised by {!check_exn}; distinct from [Failure] so callers can tell
    a type error in the input from a genuine internal failure. *)

val check : Ast.program -> (unit, error list) result
(** On [Ok], every reachable expression's [ety] is set. *)

val check_exn : Ast.program -> Ast.program
(** Same, returning the (annotated) program.
    @raise Check_error with the error list. *)

val errors_to_string : error list -> string
(** Newline-separated rendering of {!pp_error} lines. *)

val pp_error : Format.formatter -> error -> unit
