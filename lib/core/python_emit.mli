(** The Model Generator back-end (paper §III-C, Figure 5): renders a
    model as executable Python.

    Each source function becomes a Python function named
    [Class_name_arity] (e.g. [A_foo_2]) whose parameters are the model
    parameters; its body accumulates per-mnemonic counts in a dict and
    splices callees with [handle_function_call(caller, callee, iters)].
    The emitted text is runnable by CPython and by the bundled
    mini-Python interpreter, which the test suite uses to check it
    against {!Model_eval}. *)

val emit : Model_ir.t -> string
(** The whole model as a Python module. *)

val emit_function : Model_ir.t -> string -> string
(** One function's Python definition (by mangled name).
    @raise Invalid_argument on unknown names. *)

val python_name_of : Model_ir.t -> string -> string
(** Mangled name -> emitted Python name. *)

val update_chunk : Model_ir.entry -> string option
(** The rendered Python of one [Update] entry ([None] for a
    [Call_site], whose text depends on the assembled model).  Pure in
    the entry, so {!Metric_gen.build_part} precomputes it and a
    cache-served function is emitted by splicing stored text instead
    of re-rendering its multiplicity expressions. *)
