(* A select-shaped interface over poll(2).  Unix.select cannot watch a
   descriptor numbered >= FD_SETSIZE (1024 on Linux): the fd_set write
   is undefined behaviour, so a server meant to hold thousands of idle
   connections needs a real poller.  The C binding is in
   poller_stubs.c; event bits come from <poll.h> at build time, never
   hard-coded here.

   Unix-only by construction: Unix.file_descr is physically an int on
   Unix, which is what the stub passes to poll.  (On Windows it is a
   HANDLE and this module would need a WSAPoll binding.) *)

external poll_constants : unit -> int * int * int * int * int
  = "mira_poll_constants"

external poll_stub : int array -> int array -> int array -> int -> int
  = "mira_poll_stub"

external rlimit_nofile : unit -> int = "mira_rlimit_nofile"

let pollin, pollout, pollerr, pollhup, pollnval = poll_constants ()
let poll_bad = pollerr lor pollhup lor pollnval

let int_of_fd : Unix.file_descr -> int = Obj.magic
let fd_of_int : int -> Unix.file_descr = Obj.magic

(* [wait ~read ~write ~timeout_ms ()]: the descriptors ready to read
   and ready to write, like [Unix.select] but unbounded by FD_SETSIZE.
   A descriptor may appear in both interest lists (its events are
   merged into one poll slot).  Error conditions (POLLERR / POLLHUP /
   POLLNVAL) are reported under whichever interest was registered, so
   the owner discovers the condition from the failing/EOF-ing syscall
   it was about to make anyway.  [timeout_ms < 0] waits forever; an
   EINTR wait returns empty lists so the caller re-evaluates its
   deadlines and retries. *)
let wait ?(read = []) ?(write = []) ~timeout_ms () =
  let tbl = Hashtbl.create 64 in
  let add ev fd =
    let k = int_of_fd fd in
    let cur = try Hashtbl.find tbl k with Not_found -> 0 in
    Hashtbl.replace tbl k (cur lor ev)
  in
  List.iter (add pollin) read;
  List.iter (add pollout) write;
  let n = Hashtbl.length tbl in
  let fds = Array.make (max n 1) 0 and events = Array.make (max n 1) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun fd ev ->
      fds.(!i) <- fd;
      events.(!i) <- ev;
      incr i)
    tbl;
  let fds = if n = 0 then [||] else fds
  and events = if n = 0 then [||] else events in
  let revents = Array.make n 0 in
  match poll_stub fds events revents timeout_ms with
  | -1 | 0 -> ([], [])
  | _ ->
      let rd = ref [] and wr = ref [] in
      for j = n - 1 downto 0 do
        let r = revents.(j) in
        if r <> 0 then begin
          let bad = r land poll_bad <> 0 in
          let fd = fd_of_int fds.(j) in
          if r land pollin <> 0 || (bad && events.(j) land pollin <> 0) then
            rd := fd :: !rd;
          if r land pollout <> 0 || (bad && events.(j) land pollout <> 0)
          then wr := fd :: !wr
        end
      done;
      (!rd, !wr)
