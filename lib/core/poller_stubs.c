/* poll(2) binding for the event-loop server and the bench-serve load
   generator.  Unix.select tops out at FD_SETSIZE (1024 on Linux)
   descriptors -- writing a larger fd into an fd_set is undefined
   behaviour -- so a server meant to hold 10k+ connections needs a real
   poller.  The binding is deliberately minimal: the caller passes
   parallel int arrays (fds, requested events, a revents out-buffer)
   and gets poll's return count back; event bit values are exported
   from <poll.h> so the OCaml side never hard-codes platform bits. */

#include <poll.h>
#include <errno.h>
#include <stdlib.h>
#include <string.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

CAMLprim value mira_poll_constants(value unit)
{
  CAMLparam1(unit);
  CAMLlocal1(res);
  res = caml_alloc_tuple(5);
  Store_field(res, 0, Val_int(POLLIN));
  Store_field(res, 1, Val_int(POLLOUT));
  Store_field(res, 2, Val_int(POLLERR));
  Store_field(res, 3, Val_int(POLLHUP));
  Store_field(res, 4, Val_int(POLLNVAL));
  CAMLreturn(res);
}

#include <sys/resource.h>

/* Soft RLIMIT_NOFILE: how many descriptors this process may hold.
   The scale probe and the idle-connection tests size themselves (or
   skip, with a logged reason) from this. */
CAMLprim value mira_rlimit_nofile(value unit)
{
  struct rlimit rl;
  (void)unit;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_int(1024);
  if (rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur > (rlim_t)Max_long)
    return Val_long(Max_long);
  return Val_long((long)rl.rlim_cur);
}

/* mira_poll_stub fds events revents timeout_ms
   -> number of ready descriptors, or -1 if the wait was interrupted
      by a signal (the caller retries with a recomputed timeout).
   The three arrays must have identical lengths; revents is filled in
   place (immediate ints, so no write barrier is needed). */
CAMLprim value mira_poll_stub(value v_fds, value v_events, value v_revents,
                              value v_timeout)
{
  CAMLparam4(v_fds, v_events, v_revents, v_timeout);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout);
  struct pollfd *pfds = NULL;
  int rc;
  mlsize_t i;

  if (n > 0) {
    pfds = malloc(n * sizeof(struct pollfd));
    if (pfds == NULL) caml_failwith("mira_poll: out of memory");
    for (i = 0; i < n; i++) {
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = (short)Int_val(Field(v_events, i));
      pfds[i].revents = 0;
    }
  }

  caml_enter_blocking_section();
  rc = poll(pfds, (nfds_t)n, timeout);
  caml_leave_blocking_section();

  if (rc < 0) {
    int err = errno;
    free(pfds);
    if (err == EINTR) CAMLreturn(Val_int(-1));
    caml_failwith(strerror(err));
  }

  for (i = 0; i < n; i++)
    Field(v_revents, i) = Val_int(pfds[i].revents);
  free(pfds);
  CAMLreturn(Val_int(rc));
}
