(** The daemon client: pipelined connections, a connection pool over
    many endpoints, and fan-out sweeps.

    One {!t} fronts N daemons (any mix of [unix:] and [tcp:]
    endpoints).  Each endpoint gets one pipelined connection, opened
    lazily and reopened transparently after failures: requests are
    tagged with [id=] and may complete out of order on the wire
    ({!Serve} echoes the tag), so up to [max_inflight] requests ride
    one connection concurrently.  Dispatch is round-robin, skipping
    endpoints whose circuit is open (see below) and preferring
    connections with pipeline room; a due half-open probe is admitted
    ahead of the rotation, so a revived endpoint rejoins even while
    its healthy peers could absorb the load.

    {2 Failure semantics}

    Each endpoint carries a {e circuit breaker}
    (closed / open / half-open).  A transport failure — connect
    refused, a dead or desynced connection, a request deadline
    overrun — counts against the endpoint; consecutive failures open
    its circuit, and dispatch then {e skips} the endpoint instead of
    retrying into it.  Once the cooldown (doubling per consecutive
    trip) elapses, exactly one request is admitted as the half-open
    probe; its success closes the circuit — a daemon revived by the
    {!Supervisor} rejoins dispatch, counted in
    {!breaker_stats}[.bk_reopened] — while failure re-opens it with a
    longer cooldown.  For {e idempotent} requests ([ping], [stats],
    [health], [analyze], [eval]: all side-effect-free on the daemon),
    a failure also retries on the next endpoint, up to [retries] extra
    attempts.  [shutdown] is
    not idempotent and is {e never} retried: if its connection dies
    before the acknowledgement arrives, the caller gets the transport
    error and must decide for itself.  An [overloaded] response is
    treated like a transport failure for retry purposes (idempotent
    requests move to another endpoint) but is returned as-is when
    attempts run out.

    A request deadline overrun closes its connection: whether the
    daemon is wedged or merely slow cannot be distinguished, and the
    other in-flight requests on that connection fail fast (and are
    retried elsewhere when idempotent) instead of queueing behind a
    corpse. *)

type t

val create :
  ?io_timeout_ms:int ->
  ?max_inflight:int ->
  ?retries:int ->
  ?hedge_ms:int ->
  ?auth_secret:string ->
  Endpoint.t list ->
  t
(** A pool over the given endpoints (at least one; raises
    [Invalid_argument] on an empty list).  [io_timeout_ms] (default
    30 000) bounds connects and socket writes, and is the default
    per-request deadline; [0] disables both.  [max_inflight] (default
    8) bounds the pipeline depth per connection.  [retries] (default
    2) is the number of {e extra} attempts an idempotent request gets
    after a transport failure.  [hedge_ms] (default 0 = off) enables
    hedged requests: an idempotent request still unanswered after
    [hedge_ms] fires one duplicate through the pool (round-robin lands
    it on another endpoint when one exists) and the first answer wins —
    tail latency protection against a slow daemon, at the cost of at
    most one duplicate execution; meaningful only with ≥ 2 endpoints.
    With [auth_secret] every request is
    sealed with an [auth=] HMAC ({!Auth}) and every response must
    verify — an unsealed or forged response kills the connection (the
    peer is not the daemon this pool was configured for).  No
    connection is opened until the first request needs it. *)

val endpoints : t -> Endpoint.t list

type breaker_stats = {
  bk_closed : int;  (** endpoints passing traffic *)
  bk_open : int;  (** endpoints being skipped (cooling down) *)
  bk_half_open : int;  (** endpoints with a probe in flight *)
  bk_reopened : int;
      (** cumulative half-open → closed transitions: dead endpoints
          that came back and rejoined dispatch *)
  bk_hedges : int;  (** hedge requests fired (see [hedge_ms]) *)
  bk_hedge_wins : int;  (** answered by the hedge, not the primary *)
}

val breaker_stats : t -> breaker_stats
(** Live circuit-breaker and hedging counters for the pool. *)

val request :
  ?deadline_ms:int -> t -> Serve.request -> (Serve.response, string) result
(** One request through the pool.  [deadline_ms] (default
    [io_timeout_ms]) bounds the wait for this response; an overrun is
    a transport error (and closes the connection — see above).
    [Error] means no daemon could be reached within the retry budget;
    server-side failures arrive as [Ok] responses with
    [rs_status = "error"].  [Serve.Sweep] is refused with an [Error]:
    its responses stream (one frame per binding) and cannot ride this
    pool's one-response slots — use {!Coordinator}. *)

val sweep :
  ?jobs:int ->
  ?deadline_ms:int ->
  t ->
  Serve.request list ->
  (Serve.response, string) result list
(** Fan a batch of requests across the pool and return the results
    {e in input order} (the merge is positional, whatever order the
    wire completions arrive in).  [jobs] (default
    [endpoints × max_inflight]) bounds concurrent in-flight requests;
    each failure is confined to its own slot in the result list. *)

val close : t -> unit
(** Close every connection and join their reader threads.
    Idempotent; in-flight requests fail with a transport error. *)

val with_pool :
  ?io_timeout_ms:int ->
  ?max_inflight:int ->
  ?retries:int ->
  ?hedge_ms:int ->
  ?auth_secret:string ->
  Endpoint.t list ->
  (t -> 'a) ->
  'a
(** [create] / run / [close], exception-safe. *)

val with_endpoint :
  ?io_timeout_ms:int -> Endpoint.t -> (t -> 'a) -> 'a
(** {!with_pool} over a single endpoint — the one-shot convenience:
    [with_endpoint e (fun c -> request c Ping)].  Re-exported as
    {!Mira.with_endpoint} so library users never touch the frame
    codec. *)

val wait_ready : ?timeout_s:float -> ?auth_secret:string -> Endpoint.t -> bool
(** Poll connect+ping until a daemon answers at [ep] (for scripts and
    tests that just started one); [false] on timeout (default 5 s).
    [auth_secret] is required to probe a secret-bearing [tcp:]
    daemon (the unauthenticated ping would be rejected). *)

val idempotent : Serve.request -> bool
(** Whether the pool may transparently retry this request after a
    transport failure ([true] for everything but [Shutdown]). *)
