(* SHA-256 / HMAC-SHA256, implemented directly from FIPS 180-4 and
   RFC 2104.  The stdlib's [Digest] is MD5 — adequate for the frame
   checksum, which only guards against corruption, but not for
   authentication — and pulling in an external crypto library is out
   of scope for a daemon this small.  All word arithmetic is on
   [Int32], which is exact on every word size OCaml runs on; the test
   suite pins the implementation against the standard test vectors. *)

let rotr x n =
  Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let ( +% ) = Int32.add
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let shr = Int32.shift_right_logical

(* first 32 bits of the fractional parts of the cube roots of the
   first 64 primes *)
let k_tbl =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
    0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
    0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
    0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
    0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
    0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
    0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
    0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
    0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
    0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
    0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

let sha256 msg =
  let len = String.length msg in
  (* pad to a 64-byte multiple: message, 0x80, zeros, 64-bit bit length *)
  let total = (((len + 8) / 64) + 1) * 64 in
  let buf = Bytes.make total '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = Int64.of_int len |> Int64.mul 8L in
  for i = 0 to 7 do
    Bytes.set buf
      (total - 1 - i)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  let h =
    [|
      0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
      0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
    |]
  in
  let w = Array.make 64 0l in
  let byte i = Int32.of_int (Char.code (Bytes.get buf i)) in
  for block = 0 to (total / 64) - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let o = base + (t * 4) in
      w.(t) <-
        Int32.logor
          (Int32.shift_left (byte o) 24)
          (Int32.logor
             (Int32.shift_left (byte (o + 1)) 16)
             (Int32.logor (Int32.shift_left (byte (o + 2)) 8) (byte (o + 3))))
    done;
    for t = 16 to 63 do
      let s0 = rotr w.(t - 15) 7 ^^ rotr w.(t - 15) 18 ^^ shr w.(t - 15) 3 in
      let s1 = rotr w.(t - 2) 17 ^^ rotr w.(t - 2) 19 ^^ shr w.(t - 2) 10 in
      w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for t = 0 to 63 do
      let s1 = rotr !e 6 ^^ rotr !e 11 ^^ rotr !e 25 in
      let ch = (!e &&& !f) ^^ (Int32.lognot !e &&& !g) in
      let temp1 = !hh +% s1 +% ch +% k_tbl.(t) +% w.(t) in
      let s0 = rotr !a 2 ^^ rotr !a 13 ^^ rotr !a 22 in
      let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
      let temp2 = s0 +% maj in
      hh := !g;
      g := !f;
      f := !e;
      e := !d +% temp1;
      d := !c;
      c := !b;
      b := !a;
      a := temp1 +% temp2
    done;
    h.(0) <- h.(0) +% !a;
    h.(1) <- h.(1) +% !b;
    h.(2) <- h.(2) +% !c;
    h.(3) <- h.(3) +% !d;
    h.(4) <- h.(4) +% !e;
    h.(5) <- h.(5) +% !f;
    h.(6) <- h.(6) +% !g;
    h.(7) <- h.(7) +% !hh
  done;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = h.(i) in
    for j = 0 to 3 do
      Bytes.set out
        ((4 * i) + j)
        (Char.chr (Int32.to_int (shr v (24 - (8 * j))) land 0xff))
    done
  done;
  Bytes.unsafe_to_string out

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let sha256_hex msg = to_hex (sha256 msg)

let block_len = 64

let hmac_sha256 ~key msg =
  let key = if String.length key > block_len then sha256 key else key in
  let ipad = Bytes.make block_len '\x36' in
  let opad = Bytes.make block_len '\x5c' in
  String.iteri
    (fun i c ->
      Bytes.set ipad i (Char.chr (Char.code c lxor 0x36));
      Bytes.set opad i (Char.chr (Char.code c lxor 0x5c)))
    key;
  sha256 (Bytes.unsafe_to_string opad ^ sha256 (Bytes.unsafe_to_string ipad ^ msg))

let hmac_sha256_hex ~key msg = to_hex (hmac_sha256 ~key msg)

let equal_constant_time a b =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
  !acc = 0

(* ---------- payload sealing ---------- *)

let auth_prefix = "auth="

(* split a payload at its head line: [head] excludes the newline,
   [rest] includes it (or is empty — a degenerate payload with no
   fields and no body, which the codec never produces but sealing
   round-trips anyway) *)
let split_head payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
      (String.sub payload 0 i, String.sub payload i (String.length payload - i))

let mac ~secret payload = hmac_sha256_hex ~key:secret payload

let seal ~secret payload =
  let head, rest = split_head payload in
  head ^ "\n" ^ auth_prefix ^ mac ~secret payload ^ rest

let verify ~secret payload =
  match String.index_opt payload '\n' with
  | None -> `Missing
  | Some i ->
      let len = String.length payload in
      let j =
        match String.index_from_opt payload (i + 1) '\n' with
        | Some j -> j
        | None -> len
      in
      let line = String.sub payload (i + 1) (j - i - 1) in
      let plen = String.length auth_prefix in
      if
        String.length line < plen || String.sub line 0 plen <> auth_prefix
      then `Missing
      else
        let presented = String.sub line plen (String.length line - plen) in
        (* the covered bytes: the payload with the auth line spliced
           out (head, then everything from the newline that ended the
           auth line) *)
        let stripped = String.sub payload 0 i ^ String.sub payload j (len - j) in
        if equal_constant_time presented (mac ~secret stripped) then
          `Ok stripped
        else `Bad

let read_secret_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | raw ->
      let n = ref (String.length raw) in
      while !n > 0 && (raw.[!n - 1] = '\n' || raw.[!n - 1] = '\r') do
        decr n
      done;
      if !n = 0 then
        Error (Printf.sprintf "auth secret file %s is empty" path)
      else Ok (String.sub raw 0 !n)
