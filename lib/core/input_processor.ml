type t = {
  source_name : string;
  source : string;
  ast : Mira_srclang.Ast.program;
  object_bytes : string;
  binast : Mira_visa.Binast.t;
  level : Mira_codegen.Codegen.level;
}

type prepared = {
  pr_source_name : string;
  pr_source : string;
  pr_level : Mira_codegen.Codegen.level;
  pr_ast : Mira_srclang.Ast.program;
  pr_closure : Mira_srclang.Fingerprint.context;
}

let prepare ?(level = Mira_codegen.Codegen.O1) ~source_name source =
  (* The analysis AST is folded the same way the compiler folds (spans
     are preserved), so the metric generator's value propagation sees
     the expressions the binary actually implements; the compiler
     still parses its own copy. *)
  let parsed = Mira_srclang.Parser.parse source in
  let parsed =
    match level with
    | Mira_codegen.Codegen.O0 -> parsed
    | Mira_codegen.Codegen.O1 | Mira_codegen.Codegen.O2 ->
        Mira_codegen.Fold.program parsed
  in
  let ast = Mira_srclang.Typecheck.check_exn parsed in
  {
    pr_source_name = source_name;
    pr_source = source;
    pr_level = level;
    pr_ast = ast;
    pr_closure = Mira_srclang.Fingerprint.context_of_program ast;
  }

let process_prepared pr =
  let object_bytes =
    Mira_codegen.Codegen.compile_to_object ~level:pr.pr_level pr.pr_source
  in
  let binast = Mira_visa.Binast.of_object object_bytes in
  {
    source_name = pr.pr_source_name;
    source = pr.pr_source;
    ast = pr.pr_ast;
    object_bytes;
    binast;
    level = pr.pr_level;
  }

let process ?level ~source_name source =
  process_prepared (prepare ?level ~source_name source)

let function_digest pr ~salt (f : Mira_srclang.Ast.func) =
  Mira_srclang.Fingerprint.func_digest ~context:pr.pr_closure ~salt f

let process_function pr (f : Mira_srclang.Ast.func) =
  (* the same deliberate object-file round-trip as [process], on a
     program reduced to [f] plus stubs.  The reduction starts from the
     prepared AST rather than re-parsing the source — parsing is the
     dominant cost of a single-function re-analysis, and reusing the
     AST is sound because typechecking fills [ety] slots
     unconditionally and folding rebuilds nodes, so the compiled
     object is byte-for-byte what a fresh parse would give. *)
  Mira_visa.Binast.of_object
    (Mira_visa.Objfile.encode
       (Mira_codegen.Codegen.compile_ast ~level:pr.pr_level
          (Mira_codegen.Codegen.reduce_to_function pr.pr_ast
             ~name:f.Mira_srclang.Ast.fname ~cls:f.Mira_srclang.Ast.fclass)))

let process_file ?level path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  process ?level ~source_name:(Filename.basename path) source
