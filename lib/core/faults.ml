type t = {
  seed : int;
  read_p : float;
  write_p : float;
  rename_p : float;
  corrupt_p : float;
  worker_p : float;
  slow_p : float;
  slow_ms : int;
  net_write_p : float;
  disconnect_p : float;
  kill_p : float;
}

exception Injected of string

let none =
  {
    seed = 0;
    read_p = 0.0;
    write_p = 0.0;
    rename_p = 0.0;
    corrupt_p = 0.0;
    worker_p = 0.0;
    slow_p = 0.0;
    slow_ms = 0;
    net_write_p = 0.0;
    disconnect_p = 0.0;
    kill_p = 0.0;
  }

(* The crash site is process-global, not per-spec: it kills the whole
   process (self-SIGKILL), so exactly one schedule can be meaningful
   per process, and the spec records handed around per-request keep
   their shape.  [parse] arms it when a spec carries [crash=P]. *)
let crash_schedule : (int * float) option Atomic.t = Atomic.make None

let set_crash ?(seed = 0) p =
  Atomic.set crash_schedule (if p > 0.0 then Some (seed, p) else None)

let parse spec =
  let crash = ref None in
  let parse_p k v =
    match float_of_string_opt v with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok p
    | _ -> Error (Printf.sprintf "%s expects a probability in [0,1], got %S" k v)
  in
  let parse_int k v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "%s expects a non-negative integer, got %S" k v)
  in
  let step acc item =
    match acc with
    | Error _ -> acc
    | Ok t -> (
        match String.index_opt item '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" item)
        | Some i -> (
            let k = String.trim (String.sub item 0 i) in
            let v =
              String.trim (String.sub item (i + 1) (String.length item - i - 1))
            in
            match k with
            | "seed" -> Result.map (fun n -> { t with seed = n }) (parse_int k v)
            | "read" -> Result.map (fun p -> { t with read_p = p }) (parse_p k v)
            | "write" ->
                Result.map (fun p -> { t with write_p = p }) (parse_p k v)
            | "rename" ->
                Result.map (fun p -> { t with rename_p = p }) (parse_p k v)
            | "corrupt" ->
                Result.map (fun p -> { t with corrupt_p = p }) (parse_p k v)
            | "worker" ->
                Result.map (fun p -> { t with worker_p = p }) (parse_p k v)
            | "slow" -> Result.map (fun p -> { t with slow_p = p }) (parse_p k v)
            | "slow_ms" ->
                Result.map (fun n -> { t with slow_ms = n }) (parse_int k v)
            | "net_write" ->
                Result.map (fun p -> { t with net_write_p = p }) (parse_p k v)
            | "disconnect" ->
                Result.map (fun p -> { t with disconnect_p = p }) (parse_p k v)
            | "kill" -> Result.map (fun p -> { t with kill_p = p }) (parse_p k v)
            | "crash" ->
                Result.map
                  (fun p ->
                    crash := Some p;
                    t)
                  (parse_p k v)
            | _ -> Error (Printf.sprintf "unknown fault key %S" k)))
  in
  match String.trim spec with
  | "" -> Error "empty fault spec"
  | spec -> (
      match List.fold_left step (Ok none) (String.split_on_char ',' spec) with
      | Ok t as ok ->
          (* armed only once the whole spec is folded, so the seed is
             the spec's seed wherever the keys appeared in it *)
          (match !crash with Some p -> set_crash ~seed:t.seed p | None -> ());
          ok
      | Error _ as e -> e)

let to_string t =
  let parts = ref [] in
  let add k v = if v > 0.0 then parts := Printf.sprintf "%s=%g" k v :: !parts in
  add "kill" t.kill_p;
  add "disconnect" t.disconnect_p;
  add "net_write" t.net_write_p;
  add "slow" t.slow_p;
  if t.slow_ms > 0 then parts := Printf.sprintf "slow_ms=%d" t.slow_ms :: !parts;
  add "worker" t.worker_p;
  add "corrupt" t.corrupt_p;
  add "rename" t.rename_p;
  add "write" t.write_p;
  add "read" t.read_p;
  String.concat "," (Printf.sprintf "seed=%d" t.seed :: !parts)

(* 56 bits of an MD5 over (seed, site, subject), scaled to [0, 1).
   Stateless, platform-independent, and oblivious to scheduling. *)
let roll t ~site ~subject =
  let d =
    Digest.string (Printf.sprintf "%d\x00%s\x00%s" t.seed site subject)
  in
  let bits = ref 0 in
  for i = 0 to 6 do
    bits := (!bits lsl 8) lor Char.code d.[i]
  done;
  float_of_int !bits /. 72057594037927936.0 (* 2^56 *)

let fires t ~p ~site ~subject = p > 0.0 && roll t ~site ~subject < p

(* The crash site does not raise: it kills the process the way a power
   cut or SIGKILL would, with no unwind, no finalizers, no buffered-IO
   flush.  The subject should name both the entry being published and
   the point inside the publish sequence (e.g. "KEY@tmp-written") so a
   seed sweep exercises every interleaving deterministically. *)
let maybe_crash ~subject =
  match Atomic.get crash_schedule with
  | None -> ()
  | Some (seed, p) ->
      if fires { none with seed } ~p ~site:"crash" ~subject then
        Unix.kill (Unix.getpid ()) Sys.sigkill
