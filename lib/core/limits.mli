(** Per-source analysis budgets, as configured by the batch driver and
    the CLI ([--fuel], [--timeout-ms], [--retries]).

    The enforcement mechanism lives in {!Mira_limits.Budget} (fuel
    ticks and depth guards inside the lexer, parser, code generator,
    metric generator and VM); this module is the policy record the
    driver installs once per source. *)

module Budget = Mira_limits.Budget
(** Re-export: [Limits.Budget.Exhausted] is the exception hot paths
    raise. *)

type t = {
  fuel : int option;
      (** total work units (tokens, statements, domain pieces) one
          source may consume; [None] = unlimited *)
  depth : int;  (** recursion-depth cap (parser nesting etc.) *)
  timeout_ms : int option;
      (** wall-clock deadline per source; [None] = no deadline *)
  retries : int;  (** disk-cache I/O retry attempts after the first *)
}

val default : t
(** Unlimited fuel, depth {!Mira_limits.Budget.default_depth}, no
    deadline, 2 retries. *)

val budget : t -> Budget.t
(** A fresh budget for one source; the deadline clock starts now. *)

val clamp :
  t -> fuel:int option -> timeout_ms:int option -> depth:int option -> t
(** Tighten [t] by a request's own budget: each [Some] field lowers
    the corresponding limit ([min]), so a request can narrow but never
    exceed the operator's ceiling.  [retries] is the operator's alone
    and passes through unchanged. *)
