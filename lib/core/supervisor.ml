(* The self-healing fleet supervisor.  One single-threaded control
   loop owns every child: it forks/execs the configured [mira serve]
   processes, reaps exits (liveness), polls each child's [health] verb
   (readiness), and restarts whatever died or wedged — with
   exponential backoff, deterministic jitter, and a per-child restart
   storm breaker so a child that can never come up fails the whole
   supervisor loudly instead of burning CPU forever.

   Everything is time-and-poll driven off one loop tick (no threads,
   no self-pipe): signals only flip [t_stopping], and the loop notices
   within a tick.  That keeps [stop] safe to call from a signal
   handler. *)

type child_spec = {
  cs_name : string;
  cs_argv : string array;
  cs_endpoint : Endpoint.t;
}

type config = {
  sp_children : child_spec list;
  sp_probe_interval_ms : int;
  sp_wedge_timeout_ms : int;
  sp_backoff_base_ms : int;
  sp_backoff_max_ms : int;
  sp_storm_failures : int;
  sp_storm_window_s : float;
  sp_grace_ms : int;
  sp_seed : int;
  sp_log : string -> unit;
}

let default_config ~children =
  {
    sp_children = children;
    sp_probe_interval_ms = 300;
    sp_wedge_timeout_ms = 10_000;
    sp_backoff_base_ms = 200;
    sp_backoff_max_ms = 5_000;
    sp_storm_failures = 5;
    sp_storm_window_s = 30.0;
    sp_grace_ms = 5_000;
    sp_seed = 0;
    sp_log = (fun m -> Printf.eprintf "mira supervise: %s\n%!" m);
  }

type stats = {
  su_spawns : int;
  su_restarts : int;
  su_wedge_kills : int;
  su_storms : int;
}

type outcome = Drained | Storm of string
(* [Storm child] — that child hit the restart-storm breaker *)

(* one supervised process slot; [ch_pid = None] means the slot is
   between generations, waiting for [ch_restart_at] *)
type child = {
  ch_spec : child_spec;
  mutable ch_pid : int option;
  mutable ch_spawned_at : float;
  mutable ch_ready_seen : bool;  (* this generation reached ready *)
  mutable ch_last_alive : float;  (* last exit-free, probe-passing moment *)
  mutable ch_restart_at : float;
  mutable ch_attempt : int;  (* consecutive failed generations *)
  mutable ch_failures : float list;  (* storm window, newest first *)
}

type t = {
  t_cfg : config;
  t_children : child list;
  t_stopping : bool Atomic.t;
  mutable t_spawns : int;
  mutable t_restarts : int;
  mutable t_wedge_kills : int;
  mutable t_storms : int;
}

let create cfg =
  if cfg.sp_children = [] then failwith "supervise: no children configured";
  {
    t_cfg = cfg;
    t_children =
      List.map
        (fun spec ->
          {
            ch_spec = spec;
            ch_pid = None;
            ch_spawned_at = 0.0;
            ch_ready_seen = false;
            ch_last_alive = 0.0;
            ch_restart_at = 0.0;  (* spawn immediately *)
            ch_attempt = 0;
            ch_failures = [];
          })
        cfg.sp_children;
    t_stopping = Atomic.make false;
    t_spawns = 0;
    t_restarts = 0;
    t_wedge_kills = 0;
    t_storms = 0;
  }

let stats t =
  {
    su_spawns = t.t_spawns;
    su_restarts = t.t_restarts;
    su_wedge_kills = t.t_wedge_kills;
    su_storms = t.t_storms;
  }

let stop t = Atomic.set t.t_stopping true

(* deterministic jitter: a hash, not a random draw, so a supervised
   chaos run replays the same restart timeline for the same seed *)
let backoff_ms cfg ~name ~attempt =
  let base = max 1 cfg.sp_backoff_base_ms in
  let exp = base * (1 lsl min 6 (max 0 (attempt - 1))) in
  let capped = min cfg.sp_backoff_max_ms exp in
  let jitter =
    Char.code
      (Digest.string (Printf.sprintf "%d:%s:%d" cfg.sp_seed name attempt)).[0]
    * base / 256
  in
  capped + jitter

(* ---------- readiness probe ---------- *)

type probe = Ready | Starting | Draining | Unreachable

let probe_child ~timeout_ms ch =
  match Endpoint.connect ~io_timeout_ms:timeout_ms ch.ch_spec.cs_endpoint with
  | exception _ -> Unreachable
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Serve.roundtrip fd Serve.Health with
          | Ok resp -> (
              match Serve.field resp "state" with
              | Some "starting" -> Starting
              | Some "draining" -> Draining
              | Some _ -> Ready
              (* a pre-health daemon answers with an error frame:
                 alive, just old *)
              | None -> Ready)
          | Error _ -> Unreachable)

(* ---------- lifecycle ---------- *)

(* OCaml encodes standard signals as negative numbers (Sys.sigkill is
   -7), so name the common ones: "killed by SIGKILL", not "-7" *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sighup then "SIGHUP"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigquit then "SIGQUIT"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

let render_status = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

let spawn t ch =
  let cfg = t.t_cfg in
  let argv = ch.ch_spec.cs_argv in
  match
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
  with
  | pid ->
      t.t_spawns <- t.t_spawns + 1;
      ch.ch_pid <- Some pid;
      ch.ch_spawned_at <- Unix.gettimeofday ();
      ch.ch_last_alive <- ch.ch_spawned_at;
      ch.ch_ready_seen <- false;
      cfg.sp_log
        (Printf.sprintf "%s: spawned pid %d (%s)" ch.ch_spec.cs_name pid
           (Endpoint.to_string ch.ch_spec.cs_endpoint));
      true
  | exception e ->
      cfg.sp_log
        (Printf.sprintf "%s: spawn failed: %s" ch.ch_spec.cs_name
           (Printexc.to_string e));
      false

(* a child generation ended badly (exit, wedge kill, spawn failure):
   either schedule the respawn or report a restart storm *)
let handle_failure t ch ~reason =
  let cfg = t.t_cfg in
  let now = Unix.gettimeofday () in
  ch.ch_pid <- None;
  ch.ch_attempt <- ch.ch_attempt + 1;
  ch.ch_failures <-
    now
    :: List.filter (fun f -> now -. f <= cfg.sp_storm_window_s) ch.ch_failures;
  if List.length ch.ch_failures >= max 1 cfg.sp_storm_failures then begin
    t.t_storms <- t.t_storms + 1;
    cfg.sp_log
      (Printf.sprintf "%s: %s — %d failures in %.0fs, giving up"
         ch.ch_spec.cs_name reason
         (List.length ch.ch_failures)
         cfg.sp_storm_window_s);
    `Storm
  end
  else begin
    let delay = backoff_ms cfg ~name:ch.ch_spec.cs_name ~attempt:ch.ch_attempt in
    ch.ch_restart_at <- now +. (float_of_int delay /. 1000.0);
    t.t_restarts <- t.t_restarts + 1;
    cfg.sp_log
      (Printf.sprintf "%s: %s — restarting in %d ms (attempt %d)"
         ch.ch_spec.cs_name reason delay ch.ch_attempt);
    `Restarting
  end

let kill_child signal ch =
  match ch.ch_pid with
  | None -> ()
  | Some pid -> ( try Unix.kill pid signal with Unix.Unix_error _ -> ())

let reap_child ?(block = false) ch =
  match ch.ch_pid with
  | None -> None
  | Some pid -> (
      match Unix.waitpid (if block then [] else [ Unix.WNOHANG ]) pid with
      | 0, _ -> None
      | _, status -> Some status
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          (* already reaped somehow; treat as an exit we missed *)
          Some (Unix.WEXITED 0)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)

(* SIGTERM fan-out, then a bounded WNOHANG drain, then SIGKILL for
   whatever ignored the term — the shutdown path and the storm path
   share this *)
let drain_fleet t =
  let cfg = t.t_cfg in
  List.iter (kill_child Sys.sigterm) t.t_children;
  let deadline =
    Unix.gettimeofday () +. (float_of_int cfg.sp_grace_ms /. 1000.0)
  in
  let rec wait () =
    let still =
      List.filter
        (fun ch ->
          match reap_child ch with
          | Some status ->
              cfg.sp_log
                (Printf.sprintf "%s: drained (%s)" ch.ch_spec.cs_name
                   (render_status status));
              ch.ch_pid <- None;
              false
          | None -> ch.ch_pid <> None)
        t.t_children
    in
    if still <> [] then
      if Unix.gettimeofday () >= deadline then begin
        List.iter
          (fun ch ->
            cfg.sp_log
              (Printf.sprintf "%s: did not drain, killing"
                 ch.ch_spec.cs_name);
            kill_child Sys.sigkill ch;
            ignore (reap_child ~block:true ch);
            ch.ch_pid <- None)
          still
      end
      else begin
        Unix.sleepf 0.05;
        wait ()
      end
  in
  wait ()

let run t =
  let cfg = t.t_cfg in
  let wedge_s = float_of_int cfg.sp_wedge_timeout_ms /. 1000.0 in
  let probe_every = float_of_int (max 50 cfg.sp_probe_interval_ms) /. 1000.0 in
  let next_probe = ref 0.0 in
  let storm = ref None in
  (* one child's tick: reap → probe → respawn, reporting `Storm up *)
  let tick_child now probing ch =
    match ch.ch_pid with
    | Some _ -> (
        match reap_child ch with
        | Some status ->
            (* liveness: the process is gone *)
            if handle_failure t ch ~reason:(render_status status) = `Storm
            then storm := Some ch.ch_spec.cs_name
        | None ->
            if probing then (
              match probe_child ~timeout_ms:cfg.sp_probe_interval_ms ch with
              | Ready | Draining ->
                  (* draining counts as alive: it is finishing real
                     work, not wedged — and only our own shutdown
                     fan-out puts a supervised child there *)
                  ch.ch_last_alive <- now;
                  if not ch.ch_ready_seen then begin
                    ch.ch_ready_seen <- true;
                    ch.ch_attempt <- 0;
                    cfg.sp_log
                      (Printf.sprintf "%s: ready" ch.ch_spec.cs_name)
                  end
              | Starting | Unreachable ->
                  (* readiness: answering [starting] forever and not
                     answering at all are the same wedge *)
                  if now -. ch.ch_last_alive > wedge_s then begin
                    t.t_wedge_kills <- t.t_wedge_kills + 1;
                    kill_child Sys.sigkill ch;
                    ignore (reap_child ~block:true ch);
                    if
                      handle_failure t ch
                        ~reason:
                          (Printf.sprintf "wedged (unready for %.1fs)"
                             (now -. ch.ch_last_alive))
                      = `Storm
                    then storm := Some ch.ch_spec.cs_name
                  end))
    | None ->
        if now >= ch.ch_restart_at then
          if not (spawn t ch) then
            if handle_failure t ch ~reason:"spawn failed" = `Storm then
              storm := Some ch.ch_spec.cs_name
  in
  while (not (Atomic.get t.t_stopping)) && !storm = None do
    let now = Unix.gettimeofday () in
    let probing = now >= !next_probe in
    if probing then next_probe := now +. probe_every;
    List.iter (tick_child now probing) t.t_children;
    if (not (Atomic.get t.t_stopping)) && !storm = None then
      Unix.sleepf 0.05
  done;
  drain_fleet t;
  match !storm with Some name -> Storm name | None -> Drained
