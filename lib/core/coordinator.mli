(** Fault-tolerant sweep dispatch across a daemon fleet.

    {!Client} gives one answer per request; a parameter sweep wants
    thousands of answers and must survive a daemon dying mid-chunk.
    The coordinator sits between: it splits a sweep deterministically
    into chunks, sends each chunk to a daemon as one [sweep] frame
    (the daemon schedules the bindings across its own worker pool and
    streams [binding=]-tagged answers back — see "The sweep verb" in
    [docs/PROTOCOL.md]), tracks completion {e per binding}, and when a
    shard is lost re-dispatches only its unfinished bindings to the
    surviving daemons.

    {2 Failure semantics}

    A shard is declared lost when its connection drops, when the
    per-chunk [deadline_ms] overruns, or when the daemon goes silent:
    after [heartbeat_ms] without a frame the coordinator sends a
    [ping] on the same connection (the daemon answers pings inline
    even while a sweep streams), and a further silent [heartbeat_ms]
    means the daemon is gone.  The connection is closed — so a
    merely-slow daemon's late answers are dropped, not double-counted
    — the chunk's unfinished bindings go back on the queue, and the
    endpoint's worker retries after bounded exponential backoff with
    deterministic jitter.  [retries] consecutive no-progress failures
    open the endpoint's circuit (any recorded binding resets the
    counter): the loss is counted in [co_daemons_lost] and the worker
    stops dispatching into the dead endpoint — but instead of retiring
    outright it half-open probes the endpoint (a [health] roundtrip
    every 200 ms, up to [revive_ms]) while other workers keep serving,
    so a daemon brought back by the {!Supervisor} {e rejoins the
    running sweep} ([co_revived]).  The probe gives up — and the
    worker retires for good — when the sweep finishes without it, when
    no other worker is actively serving (an all-dead fleet terminates
    promptly, exactly as before), or when [revive_ms] elapses.

    Every binding is answered {e exactly once}: results are recorded
    first-wins under one lock (late duplicates are counted, not
    stored), and the queue invariant — every unfinished binding is
    either queued or held by a live worker, re-queued {e before} a
    worker retires — means nothing is stranded short of whole-fleet
    death.  When every endpoint is lost, [run] returns with the
    survivors' partial results and {!stats}' [co_unfinished] naming
    the bindings that were never answered (the CLI turns that into
    exit 3 and a report).

    A {e request-level} error frame (an [auth] rejection, a
    [bad-request]) is not a shard loss: retrying elsewhere cannot
    help, so the chunk's remaining bindings are recorded as errors
    and the sweep moves on — a misconfigured secret fails fast
    instead of ping-ponging forever. *)

type binding = {
  bd_name : string;
      (** source name (the label models and reports carry); every
          binding with the same name must carry the same [bd_source] *)
  bd_source : string;  (** full source text *)
  bd_function : string;  (** mangled function name *)
  bd_params : (string * int) list;
}

type stats = {
  co_total : int;
  co_finished : int;  (** bindings answered (including analysis errors) *)
  co_redispatched : int;
      (** bindings re-queued after a shard loss (a binding lost twice
          counts twice) *)
  co_daemons_lost : int;
      (** circuit-open events: endpoints that stopped answering after
          repeated failures (an endpoint lost, revived and lost again
          counts twice) *)
  co_duplicates : int;
      (** late answers dropped by first-wins recording *)
  co_revived : int;
      (** lost endpoints that answered a half-open probe and rejoined
          the sweep *)
  co_unfinished : int list;
      (** binding indices never answered (whole-fleet death only),
          ascending *)
}

val run :
  ?chunk:int ->
  ?heartbeat_ms:int ->
  ?deadline_ms:int ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?revive_ms:int ->
  ?auth_secret:string ->
  ?budget:Serve.budget_request ->
  ?on_progress:(finished:int -> total:int -> unit) ->
  Endpoint.t list ->
  binding list ->
  (Serve.response, string) result array * stats
(** Dispatch [bindings] across [endpoints] and return the results in
    input order: slot [i] holds binding [i]'s answer — [Ok response]
    for anything a daemon answered (analysis failures arrive as [Ok]
    with [rs_status = "error"], exactly as {!Client.request} returns
    them), [Error] for bindings the coordinator itself had to give up
    on (request-level rejection, or fleet death — see [co_unfinished]).

    [chunk] (default 64) bindings travel per frame; [heartbeat_ms]
    (default 1000) is the silence threshold described above ([0]
    disables liveness detection {e and} socket timeouts — a dead
    daemon then hangs its worker forever); [deadline_ms] (default 0 =
    off) additionally bounds one chunk end to end; [retries] (default
    3) consecutive no-progress failures open an endpoint's circuit;
    [backoff_ms] (default 100) seeds the exponential backoff (capped
    at 5 s); [revive_ms] (default 10 000) bounds the half-open
    revival wait described above ([0] restores permanent
    retirement).  With [auth_secret] every frame is sealed and every
    response must verify ({!Auth}); an unverifiable response is a
    shard loss, not data.  [budget] is the per-binding clamp shared
    by the whole sweep.  [on_progress] is called after each newly
    recorded binding, from whichever worker thread recorded it.

    Raises [Invalid_argument] on an empty endpoint list, a
    non-positive [chunk], or a [bd_name] bound to two different
    source texts. *)
