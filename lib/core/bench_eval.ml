(* Eval-layer microbenchmark: one-shot interpretation vs a reusable
   interpreter plan vs the compiled register program, swept over one
   variable.  The numbers go to BENCH_eval.json; correctness is the
   differential suite's job, but each run still cross-checks a sample
   of points so a benchmark of a wrong evaluator is impossible. *)

type target = {
  tg_label : string;
  tg_source_name : string;
  tg_source : string;
  tg_fname : string;
  tg_sweep : string;  (* the swept parameter *)
  tg_lo : int;
  tg_hi : int;
  tg_fixed : (string * int) list;
}

type result = {
  br_label : string;
  br_fname : string;
  br_points : int;
  br_legacy_ns : float;
  br_plan_ns : float;
  br_compiled_ns : float;
  br_legacy_eps : float;
  br_plan_eps : float;
  br_compiled_eps : float;
  br_speedup_vs_plan : float;
  br_speedup_vs_legacy : float;
  br_prog_ops : int;
  br_max_rel_err : float;
}

let default_min_time_s = 0.5

(* A float the loops must produce, so no measured work can be hoisted
   or dropped. *)
let sink = ref 0.0

(* Run [pass] (one full sweep) repeatedly, doubling the pass count
   until the measured span exceeds [min_time_s]; seconds per pass. *)
let calibrated ~min_time_s pass =
  let rec go n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      pass ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time_s || n > 1_000_000_000 then dt /. float_of_int n
    else go (n * 2)
  in
  go 1

let rel_err a b =
  Float.abs (a -. b) /. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let run ?(min_time_s = default_min_time_s) ?(verify_points = 20) t =
  let model = (Mira.analyze ~source_name:t.tg_source_name t.tg_source).model in
  let points = t.tg_hi - t.tg_lo + 1 in
  if points <= 0 then invalid_arg "Bench_eval.run: empty sweep";
  (* the compiled program: fixed parameters folded away, one input *)
  let prog =
    Model_compile.compile model ~fname:t.tg_fname ~sweep:[ t.tg_sweep ]
      ~fixed:t.tg_fixed
  in
  let runner = Model_compile.runner prog in
  let args = [| 0 |] in
  (* the reusable interpreter plan over the same parameter shape *)
  let names = t.tg_sweep :: List.map fst t.tg_fixed in
  let plan = Model_eval.plan model ~fname:t.tg_fname ~params:names in
  let penv = Array.make (List.length names) 0 in
  List.iteri (fun i (_, v) -> penv.(i + 1) <- v) t.tg_fixed;
  let pout = Array.make (Array.length (Model_eval.plan_mnemonics plan)) 0.0 in
  (* cross-check a sample before timing anything *)
  let max_err = ref 0.0 in
  for k = 0 to verify_points - 1 do
    let v = t.tg_lo + (k * max 1 (points / max 1 verify_points)) in
    let v = min v t.tg_hi in
    let env = (t.tg_sweep, v) :: t.tg_fixed in
    let interp = Model_eval.eval model ~fname:t.tg_fname ~env in
    let comp = Model_compile.eval prog ~env in
    List.iter2
      (fun (mn, a) (mn', b) ->
        if mn <> mn' then
          failwith ("Bench_eval: mnemonic order diverged at " ^ mn);
        max_err := Float.max !max_err (rel_err a b))
      comp interp;
    if !max_err > 1e-6 then
      failwith
        (Printf.sprintf "Bench_eval: %s diverges at %s=%d (rel err %g)"
           t.tg_fname t.tg_sweep v !max_err)
  done;
  (* 1. the one-shot interpreter: what every eval paid before plans *)
  let legacy_pass () =
    let acc = ref 0.0 in
    for v = t.tg_lo to t.tg_hi do
      let counts =
        Model_eval.eval model ~fname:t.tg_fname
          ~env:((t.tg_sweep, v) :: t.tg_fixed)
      in
      acc := !acc +. snd (List.hd counts)
    done;
    sink := !sink +. !acc
  in
  (* 2. the plan: resolution and closure compilation hoisted, but the
     symbolic content still walked per eval *)
  let plan_pass () =
    let acc = ref 0.0 in
    for v = t.tg_lo to t.tg_hi do
      penv.(0) <- v;
      Model_eval.run_plan_into plan penv pout;
      acc := !acc +. pout.(0)
    done;
    sink := !sink +. !acc
  in
  (* 3. the register program *)
  let compiled_pass () =
    let acc = ref 0.0 in
    for v = t.tg_lo to t.tg_hi do
      args.(0) <- v;
      let out = Model_compile.run runner args in
      acc := !acc +. Array.unsafe_get out 0
    done;
    sink := !sink +. !acc
  in
  let fpoints = float_of_int points in
  let per_eval pass = calibrated ~min_time_s pass /. fpoints in
  let legacy_s = per_eval legacy_pass in
  let plan_s = per_eval plan_pass in
  let compiled_s = per_eval compiled_pass in
  {
    br_label = t.tg_label;
    br_fname = t.tg_fname;
    br_points = points;
    br_legacy_ns = legacy_s *. 1e9;
    br_plan_ns = plan_s *. 1e9;
    br_compiled_ns = compiled_s *. 1e9;
    br_legacy_eps = 1.0 /. legacy_s;
    br_plan_eps = 1.0 /. plan_s;
    br_compiled_eps = 1.0 /. compiled_s;
    br_speedup_vs_plan = plan_s /. compiled_s;
    br_speedup_vs_legacy = legacy_s /. compiled_s;
    br_prog_ops = Model_compile.n_ops prog;
    br_max_rel_err = !max_err;
  }
