(* The analysis daemon.  Layering, bottom up:

   - frame I/O: length-prefixed, versioned, checksummed frames over a
     file descriptor, with fault-injection sites on the write path;
   - payload codec: a tiny line-oriented grammar shared by requests
     and responses;
   - the server: an accept loop in the calling thread, one thread per
     admitted connection, bounded admission with load shedding, and a
     graceful drain on stop.

   Robustness stance: everything a client can send is untrusted.
   Frame errors are classified; whatever still has a trustworthy
   frame boundary is answered with an error frame and the connection
   continues, anything past a lost boundary closes the connection —
   and in neither case does the accept loop notice. *)

type config = {
  cfg_endpoints : Endpoint.t list;
  cfg_max_inflight : int;
  cfg_max_pipeline : int;
  cfg_max_frame_bytes : int;
  cfg_idle_timeout_ms : int;
  cfg_drain_ms : int;
  cfg_level : Mira_codegen.Codegen.level;
  cfg_limits : Limits.t;
  cfg_cache : Batch.cache option;
  cfg_incremental : bool;
  cfg_faults : Faults.t option;
}

let default_config_endpoints ~endpoints =
  {
    cfg_endpoints = endpoints;
    cfg_max_inflight = 8;
    cfg_max_pipeline = 8;
    cfg_max_frame_bytes = 4 * 1024 * 1024;
    cfg_idle_timeout_ms = 30_000;
    cfg_drain_ms = 2_000;
    cfg_level = Mira_codegen.Codegen.O1;
    cfg_limits = Limits.default;
    cfg_cache = None;
    cfg_incremental = true;
    cfg_faults = None;
  }

let default_config ~socket =
  default_config_endpoints ~endpoints:[ Endpoint.Unix_sock socket ]

(* ---------- frame layer ---------- *)

let magic = "MIRS1\n"
let digest_len = 16
let header_len = String.length magic + 4

type frame_error =
  | Closed
  | Truncated
  | Bad_magic
  | Oversized of int
  | Bad_checksum
  | Timed_out

let frame_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad frame magic"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n
  | Bad_checksum -> "frame checksum mismatch"
  | Timed_out -> "socket timeout"

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.unsafe_to_string b

let of_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* [read_exact fd n]: all [n] bytes, or how the stream ended.  EINTR
   restarts; EAGAIN/EWOULDBLOCK is the SO_RCVTIMEO idle timeout; a
   reset peer reads as EOF. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof off
      | r -> go (off + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Timeout
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Eof off
  in
  go 0

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | r -> go (off + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let frame payload =
  magic ^ be32 (String.length payload) ^ Digest.string payload ^ payload

let write_frame ?faults fd payload =
  let data = frame payload in
  let subject = Digest.to_hex (Digest.string payload) in
  let fires p site =
    match faults with
    | Some f -> Faults.fires f ~p:(p f) ~site ~subject
    | None -> false
  in
  if fires (fun f -> f.Faults.disconnect_p) "net_disconnect" then begin
    (* the peer vanishes mid-frame: half a frame, then a hard close *)
    write_all fd (String.sub data 0 (String.length data / 2));
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    raise (Faults.Injected "net_disconnect")
  end
  else if fires (fun f -> f.Faults.net_write_p) "net_write" then begin
    (* a dropped/short write: the frame just stops *)
    write_all fd (String.sub data 0 (String.length data / 2));
    raise (Faults.Injected "net_write")
  end
  else if
    (match faults with Some f -> f.Faults.slow_ms > 0 | None -> false)
    && fires (fun f -> f.Faults.slow_p) "net_slow"
  then begin
    (* a slow peer: the header arrives, the payload dribbles in later *)
    write_all fd (String.sub data 0 header_len);
    (match faults with
    | Some f -> Unix.sleepf (float_of_int f.Faults.slow_ms /. 1000.0)
    | None -> ());
    write_all fd
      (String.sub data header_len (String.length data - header_len))
  end
  else write_all fd data

let read_frame ?(max_bytes = 4 * 1024 * 1024) fd =
  match read_exact fd header_len with
  | `Timeout -> Error Timed_out
  | `Eof 0 -> Error Closed
  | `Eof _ -> Error Truncated
  | `Ok header ->
      if String.sub header 0 (String.length magic) <> magic then
        Error Bad_magic
      else
        let len = of_be32 header (String.length magic) in
        if len > max_bytes then Error (Oversized len)
        else (
          match read_exact fd (digest_len + len) with
          | `Timeout -> Error Timed_out
          | `Eof _ -> Error Truncated
          | `Ok rest ->
              let digest = String.sub rest 0 digest_len in
              let payload =
                String.sub rest digest_len (String.length rest - digest_len)
              in
              if Digest.string payload <> digest then Error Bad_checksum
              else Ok payload)

(* ---------- payload codec ---------- *)

let proto = "mira/1"

(* field values travel on one line; whatever they came from, newlines
   must not let a value forge extra fields *)
let sanitize v =
  String.map (function '\n' | '\r' -> ' ' | c -> c) v

let encode_payload ~head ~fields ~body =
  let buf = Buffer.create (128 + String.length body) in
  Buffer.add_string buf proto;
  Buffer.add_char buf ' ';
  Buffer.add_string buf head;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (sanitize v))
    fields;
  Buffer.add_string buf "\n\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let parse_payload s =
  let header, body =
    match find_sub s "\n\n" with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    | None -> (s, "")
  in
  match String.split_on_char '\n' header with
  | [] -> Error "empty payload"
  | head :: field_lines -> (
      match String.index_opt head ' ' with
      | None -> Error "malformed head line"
      | Some sp ->
          let version = String.sub head 0 sp in
          if version <> proto then
            Error (Printf.sprintf "unsupported protocol version %S" version)
          else
            let verb =
              String.sub head (sp + 1) (String.length head - sp - 1)
            in
            if verb = "" then Error "missing verb"
            else
              let rec fields acc = function
                | [] -> Ok (List.rev acc)
                | "" :: _ -> Error "blank line inside header"
                | line :: rest -> (
                    match String.index_opt line '=' with
                    | None ->
                        Error
                          (Printf.sprintf "malformed field line %S" line)
                    | Some i ->
                        let k = String.sub line 0 i in
                        let v =
                          String.sub line (i + 1)
                            (String.length line - i - 1)
                        in
                        fields ((k, v) :: acc) rest)
              in
              Result.map (fun fs -> (verb, fs, body)) (fields [] field_lines))

(* ---------- requests ---------- *)

type budget_request = {
  rq_fuel : int option;
  rq_timeout_ms : int option;
  rq_depth : int option;
}

let no_budget = { rq_fuel = None; rq_timeout_ms = None; rq_depth = None }

type request =
  | Ping
  | Stats
  | Shutdown
  | Analyze of {
      an_name : string;
      an_source : string;
      an_budget : budget_request;
    }
  | Eval of {
      ev_name : string;
      ev_source : string;
      ev_function : string;
      ev_params : (string * int) list;
      ev_budget : budget_request;
    }

let budget_fields b =
  let opt k = function
    | Some n -> [ (k, string_of_int n) ]
    | None -> []
  in
  opt "fuel" b.rq_fuel @ opt "timeout-ms" b.rq_timeout_ms
  @ opt "depth" b.rq_depth

let encode_request ?id req =
  (* the id tag rides along as an ordinary field: untagged requests
     stay byte-identical to the pre-pipelining wire format *)
  let tag fields =
    match id with None -> fields | Some i -> ("id", i) :: fields
  in
  match req with
  | Ping -> encode_payload ~head:"ping" ~fields:(tag []) ~body:""
  | Stats -> encode_payload ~head:"stats" ~fields:(tag []) ~body:""
  | Shutdown -> encode_payload ~head:"shutdown" ~fields:(tag []) ~body:""
  | Analyze { an_name; an_source; an_budget } ->
      encode_payload ~head:"analyze"
        ~fields:(tag (("name", an_name) :: budget_fields an_budget))
        ~body:an_source
  | Eval { ev_name; ev_source; ev_function; ev_params; ev_budget } ->
      encode_payload ~head:"eval"
        ~fields:
          (tag
             ([ ("name", ev_name); ("function", ev_function) ]
             @ List.map
                 (fun (k, v) -> ("param", Printf.sprintf "%s=%d" k v))
                 ev_params
             @ budget_fields ev_budget))
        ~body:ev_source

(* the request id, when the payload parses at all — extracted
   independently of the verb so even a bad-request error frame can be
   re-associated by a pipelining client *)
let payload_id payload =
  match parse_payload payload with
  | Ok (_, fields, _) -> List.assoc_opt "id" fields
  | Error _ -> None

let parse_request payload =
  let ( let* ) = Result.bind in
  let* verb, fields, body = parse_payload payload in
  let field k = List.assoc_opt k fields in
  let int_field k =
    match field k with
    | None -> Ok None
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok (Some n)
        | _ -> Error (Printf.sprintf "field %s: expected an integer, got %S" k v))
  in
  let budget () =
    let* fuel = int_field "fuel" in
    let* timeout_ms = int_field "timeout-ms" in
    let* depth = int_field "depth" in
    Ok { rq_fuel = fuel; rq_timeout_ms = timeout_ms; rq_depth = depth }
  in
  let name () = Option.value (field "name") ~default:"request.mc" in
  match verb with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "analyze" ->
      let* b = budget () in
      Ok (Analyze { an_name = name (); an_source = body; an_budget = b })
  | "eval" -> (
      let* b = budget () in
      match field "function" with
      | None -> Error "eval needs a function= field"
      | Some fn ->
          let* params =
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                if k <> "param" then Ok acc
                else
                  match String.index_opt v '=' with
                  | None ->
                      Error
                        (Printf.sprintf "param %S: expected name=value" v)
                  | Some i -> (
                      let pk = String.sub v 0 i in
                      let pv =
                        String.sub v (i + 1) (String.length v - i - 1)
                      in
                      match int_of_string_opt pv with
                      | Some n -> Ok ((pk, n) :: acc)
                      | None ->
                          Error
                            (Printf.sprintf "param %s: %S is not an integer"
                               pk pv)))
              (Ok []) fields
          in
          Ok
            (Eval
               {
                 ev_name = name ();
                 ev_source = body;
                 ev_function = fn;
                 ev_params = List.rev params;
                 ev_budget = b;
               }))
  | v -> Error (Printf.sprintf "unknown request verb %S" v)

(* ---------- responses ---------- *)

type response = {
  rs_status : string;
  rs_fields : (string * string) list;
  rs_body : string;
}

let encode_response r =
  encode_payload ~head:r.rs_status ~fields:r.rs_fields ~body:r.rs_body

let parse_response payload =
  Result.map
    (fun (status, fields, body) ->
      { rs_status = status; rs_fields = fields; rs_body = body })
    (parse_payload payload)

let field r k = List.assoc_opt k r.rs_fields

let ok ?(fields = []) ?(body = "") () =
  { rs_status = "ok"; rs_fields = fields; rs_body = body }

let error_response ~code ?(fields = []) message =
  {
    rs_status = "error";
    rs_fields = (("code", code) :: ("message", message) :: fields);
    rs_body = "";
  }

let overloaded_response =
  {
    rs_status = "overloaded";
    rs_fields = [ ("retry", "1") ];
    rs_body = "";
  }

let diag_code (d : Diag.t) =
  match d.d_kind with
  | Diag.User_error -> "analysis"
  | Diag.Budget_exhausted -> "budget"
  | Diag.Timeout -> "timeout"
  | Diag.Io_error -> "io"
  | Diag.Cache_corrupt -> "cache"
  | Diag.Injected_fault -> "injected"
  | Diag.Internal_error -> "internal"

let diag_response (d : Diag.t) =
  error_response ~code:(diag_code d)
    ~fields:
      [
        ("phase", Diag.phase_to_string d.d_phase);
        ("kind", Diag.kind_to_string d.d_kind);
      ]
    (Diag.to_string d)

(* ---------- server stats ---------- *)

type server_stats = {
  sv_uptime_ms : int;
  sv_served : int;
  sv_failed : int;
  sv_shed : int;
  sv_protocol_errors : int;
  sv_inflight : int;
  sv_inflight_hwm : int;
  sv_analyzed : int;
  sv_mem_hits : int;
  sv_disk_hits : int;
  sv_assembled : int;
  sv_fn_mem_hits : int;
  sv_fn_disk_hits : int;
  sv_fn_analyzed : int;
  sv_cache_corrupt : int;
  sv_io_retries : int;
  sv_io_failures : int;
}

let stats_fields s =
  [
    ("uptime-ms", string_of_int s.sv_uptime_ms);
    ("served", string_of_int s.sv_served);
    ("failed", string_of_int s.sv_failed);
    ("shed", string_of_int s.sv_shed);
    ("protocol-errors", string_of_int s.sv_protocol_errors);
    ("inflight", string_of_int s.sv_inflight);
    ("inflight-hwm", string_of_int s.sv_inflight_hwm);
    ("analyzed", string_of_int s.sv_analyzed);
    ("mem-hits", string_of_int s.sv_mem_hits);
    ("disk-hits", string_of_int s.sv_disk_hits);
    ("assembled", string_of_int s.sv_assembled);
    ("fn-mem-hits", string_of_int s.sv_fn_mem_hits);
    ("fn-disk-hits", string_of_int s.sv_fn_disk_hits);
    ("fn-analyzed", string_of_int s.sv_fn_analyzed);
    ("cache-corrupt", string_of_int s.sv_cache_corrupt);
    ("io-retries", string_of_int s.sv_io_retries);
    ("io-failures", string_of_int s.sv_io_failures);
  ]

(* ---------- the server ---------- *)

type t = {
  t_cfg : config;
  t_listen : (Unix.file_descr * Endpoint.t) list;
  t_stop_r : Unix.file_descr;
  t_stop_w : Unix.file_descr;
  t_stopping : bool Atomic.t;
  t_start : float;
  t_inflight : int Atomic.t;
  t_hwm : int Atomic.t;
  t_served : int Atomic.t;
  t_failed : int Atomic.t;
  t_shed : int Atomic.t;
  t_proto_err : int Atomic.t;
  (* accumulated Batch.stats over served requests *)
  t_batch_mu : Mutex.t;
  mutable t_batch : Batch.stats option;
  (* live connections, so the drain can force-close stragglers *)
  t_conns_mu : Mutex.t;
  t_conns : (Unix.file_descr, unit) Hashtbl.t;
}

let add_batch_stats t (s : Batch.stats) =
  Mutex.lock t.t_batch_mu;
  (t.t_batch <-
    (match t.t_batch with
    | None -> Some s
    | Some a ->
        Some
          {
            a with
            Batch.st_analyzed = a.Batch.st_analyzed + s.Batch.st_analyzed;
            st_mem_hits = a.st_mem_hits + s.Batch.st_mem_hits;
            st_disk_hits = a.st_disk_hits + s.Batch.st_disk_hits;
            st_assembled = a.st_assembled + s.Batch.st_assembled;
            st_fn_mem_hits = a.st_fn_mem_hits + s.Batch.st_fn_mem_hits;
            st_fn_disk_hits = a.st_fn_disk_hits + s.Batch.st_fn_disk_hits;
            st_fn_analyzed = a.st_fn_analyzed + s.Batch.st_fn_analyzed;
            st_cache_corrupt = a.st_cache_corrupt + s.Batch.st_cache_corrupt;
            st_io_retries = a.st_io_retries + s.Batch.st_io_retries;
            st_io_failures = a.st_io_failures + s.Batch.st_io_failures;
          }));
  Mutex.unlock t.t_batch_mu

let stats t =
  let b =
    Mutex.lock t.t_batch_mu;
    let b = t.t_batch in
    Mutex.unlock t.t_batch_mu;
    b
  in
  let bf f = match b with None -> 0 | Some s -> f s in
  {
    sv_uptime_ms =
      int_of_float ((Unix.gettimeofday () -. t.t_start) *. 1000.0);
    sv_served = Atomic.get t.t_served;
    sv_failed = Atomic.get t.t_failed;
    sv_shed = Atomic.get t.t_shed;
    sv_protocol_errors = Atomic.get t.t_proto_err;
    sv_inflight = Atomic.get t.t_inflight;
    sv_inflight_hwm = Atomic.get t.t_hwm;
    sv_analyzed = bf (fun s -> s.Batch.st_analyzed);
    sv_mem_hits = bf (fun s -> s.Batch.st_mem_hits);
    sv_disk_hits = bf (fun s -> s.Batch.st_disk_hits);
    sv_assembled = bf (fun s -> s.Batch.st_assembled);
    sv_fn_mem_hits = bf (fun s -> s.Batch.st_fn_mem_hits);
    sv_fn_disk_hits = bf (fun s -> s.Batch.st_fn_disk_hits);
    sv_fn_analyzed = bf (fun s -> s.Batch.st_fn_analyzed);
    sv_cache_corrupt = bf (fun s -> s.Batch.st_cache_corrupt);
    sv_io_retries = bf (fun s -> s.Batch.st_io_retries);
    sv_io_failures = bf (fun s -> s.Batch.st_io_failures);
  }

let create cfg =
  (* a client that disconnects mid-response must surface as EPIPE on
     that connection, never as a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if cfg.cfg_endpoints = [] then failwith "serve: no endpoints configured";
  (* bind every endpoint before serving any, unwinding on failure so a
     half-configured daemon never runs *)
  let listen =
    List.fold_left
      (fun acc ep ->
        match Endpoint.listen ep with
        | bound -> bound :: acc
        | exception e ->
            List.iter
              (fun (fd, _) ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              acc;
            raise e)
      [] cfg.cfg_endpoints
    |> List.rev
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_w;
  {
    t_cfg = cfg;
    t_listen = listen;
    t_stop_r = stop_r;
    t_stop_w = stop_w;
    t_stopping = Atomic.make false;
    t_start = Unix.gettimeofday ();
    t_inflight = Atomic.make 0;
    t_hwm = Atomic.make 0;
    t_served = Atomic.make 0;
    t_failed = Atomic.make 0;
    t_shed = Atomic.make 0;
    t_proto_err = Atomic.make 0;
    t_batch_mu = Mutex.create ();
    t_batch = None;
    t_conns_mu = Mutex.create ();
    t_conns = Hashtbl.create 16;
  }

let bound_endpoints t = List.map snd t.t_listen

let stop t =
  if not (Atomic.exchange t.t_stopping true) then
    (* wake the accept loop; if the pipe is gone the loop already
       exited, which is fine *)
    try ignore (Unix.write t.t_stop_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* ---------- request handling ---------- *)

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

(* the server's limits are a ceiling: a request can tighten its own
   budget but never exceed the operator's *)
let clamp_limits (server : Limits.t) (rq : budget_request) =
  {
    Limits.fuel = min_opt server.Limits.fuel rq.rq_fuel;
    depth =
      (match rq.rq_depth with
      | Some d -> min server.Limits.depth d
      | None -> server.Limits.depth);
    timeout_ms = min_opt server.Limits.timeout_ms rq.rq_timeout_ms;
    retries = server.Limits.retries;
  }

let analyze_source t ~name ~source ~budget =
  let cfg = t.t_cfg in
  let limits = clamp_limits cfg.cfg_limits budget in
  let results, stats =
    Batch.run ~jobs:1 ?cache:cfg.cfg_cache ~incremental:cfg.cfg_incremental
      ~level:cfg.cfg_level ~limits ?faults:cfg.cfg_faults
      [ { Batch.src_name = name; src_text = source } ]
  in
  add_batch_stats t stats;
  match results with
  | [ Ok a ] -> Ok (a, limits)
  | [ Error (_, d) ] -> Error d
  | _ ->
      Error
        (Diag.make Diag.Driver Diag.Internal_error
           "batch returned an unexpected result shape")

let float_field v = Printf.sprintf "%.12g" v

let handle_analyze t ~name ~source ~budget =
  match analyze_source t ~name ~source ~budget with
  | Error d -> diag_response d
  | Ok ((a : Batch.analysis), _) ->
      ok
        ~fields:
          ([
             ("name", a.a_name);
             ( "functions",
               string_of_int (List.length a.a_model.Model_ir.functions) );
             ("cached", if a.a_cached then "1" else "0");
           ]
          @ List.map
              (fun (f, w) -> ("warning", f ^ ": " ^ w))
              a.a_warnings)
        ~body:a.a_python ()

let handle_eval t ~name ~source ~fname ~params ~budget =
  match analyze_source t ~name ~source ~budget with
  | Error d -> diag_response d
  | Ok ((a : Batch.analysis), limits) -> (
      (* model evaluation recurses over untrusted structure too; give
         it the same budget the analysis ran under *)
      match
        Limits.Budget.install (Limits.budget limits) (fun () ->
            Model_eval.eval a.a_model ~fname ~env:params)
      with
      | counts ->
          let buf = Buffer.create 256 in
          List.iter
            (fun (mn, v) ->
              Buffer.add_string buf mn;
              Buffer.add_char buf '=';
              Buffer.add_string buf (float_field v);
              Buffer.add_char buf '\n')
            counts;
          ok
            ~fields:
              [
                ("name", a.a_name);
                ("function", fname);
                ("fpi", float_field (Model_eval.fpi counts));
                ("total", float_field (Model_eval.total counts));
                ("cached", if a.a_cached then "1" else "0");
              ]
            ~body:(Buffer.contents buf) ()
      | exception Model_eval.Missing_parameter (f, p) ->
          error_response ~code:"bad-request"
            (Printf.sprintf "function %s needs a value for parameter %s" f p)
      | exception Invalid_argument m ->
          error_response ~code:"bad-request" m
      | exception e -> diag_response (Diag.of_exn e))

(* returns the response plus whether the connection should go on *)
let handle_request t ~transport req =
  match req with
  | Ping -> (ok ~fields:[ ("pong", "1") ] (), `Continue)
  | Stats ->
      let s = stats t in
      let body =
        String.concat ""
          (List.map (fun (k, v) -> k ^ "=" ^ v ^ "\n") (stats_fields s))
      in
      (* protocol introspection: a pool can refuse a mismatched daemon
         with a clear diagnostic instead of a decode error *)
      ( ok ~fields:[ ("proto", proto); ("transport", transport) ] ~body (),
        `Continue )
  | Shutdown ->
      (ok ~fields:[ ("stopping", "1") ] (), `Stop)
  | Analyze { an_name; an_source; an_budget } ->
      ( handle_analyze t ~name:an_name ~source:an_source ~budget:an_budget,
        `Continue )
  | Eval { ev_name; ev_source; ev_function; ev_params; ev_budget } ->
      ( handle_eval t ~name:ev_name ~source:ev_source ~fname:ev_function
          ~params:ev_params ~budget:ev_budget,
        `Continue )

(* ---------- connections ---------- *)

let register_conn t fd =
  Mutex.lock t.t_conns_mu;
  Hashtbl.replace t.t_conns fd ();
  Mutex.unlock t.t_conns_mu

let unregister_conn t fd =
  Mutex.lock t.t_conns_mu;
  Hashtbl.remove t.t_conns fd;
  Mutex.unlock t.t_conns_mu

(* best-effort response write: a vanished or wedged client is its own
   problem; [false] means the connection is no longer usable *)
let send_response t fd resp =
  match write_frame ?faults:t.t_cfg.cfg_faults fd (encode_response resp) with
  | () -> true
  | exception Unix.Unix_error ((EPIPE | ECONNRESET | EAGAIN | EWOULDBLOCK), _, _)
    ->
      false
  | exception Faults.Injected _ -> false

let handle_connection t transport fd =
  let cfg = t.t_cfg in
  if cfg.cfg_idle_timeout_ms > 0 then begin
    let s = float_of_int cfg.cfg_idle_timeout_ms /. 1000.0 in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
     with Unix.Unix_error _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
    with Unix.Unix_error _ -> ()
  end;
  (* Pipelining: an [id=]-tagged request is dispatched to a worker
     thread and may complete out of order; its response echoes the tag
     so the client can re-associate it.  Untagged requests keep the
     original strictly-serial request/response semantics, so old
     clients see an unchanged protocol.  Response writes (from the
     reader and all workers) are serialized by [write_mu]; the
     pipeline depth is bounded by [cfg_max_pipeline] — the reader
     blocks when it is full, which backpressures the socket. *)
  let write_mu = Mutex.create () in
  let pend_mu = Mutex.create () in
  let pend_cv = Condition.create () in
  let pending = ref 0 in
  let conn_dead = Atomic.make false in
  let send resp =
    Mutex.lock write_mu;
    let sent = send_response t fd resp in
    Mutex.unlock write_mu;
    if not sent then Atomic.set conn_dead true;
    sent
  in
  let count resp =
    if resp.rs_status = "ok" then Atomic.incr t.t_served
    else Atomic.incr t.t_failed
  in
  let with_id id resp =
    { resp with rs_fields = ("id", id) :: resp.rs_fields }
  in
  let pending_now () =
    Mutex.lock pend_mu;
    let p = !pending in
    Mutex.unlock pend_mu;
    p
  in
  let handle req =
    (* one hostile request must never take the daemon down: whatever
       escapes becomes a structured error frame *)
    try handle_request t ~transport req
    with e -> (diag_response (Diag.of_exn e), `Continue)
  in
  let dispatch id req =
    Mutex.lock pend_mu;
    while !pending >= max 1 cfg.cfg_max_pipeline do
      Condition.wait pend_cv pend_mu
    done;
    incr pending;
    Mutex.unlock pend_mu;
    ignore
      (Thread.create
         (fun () ->
           let resp, after = handle req in
           count resp;
           ignore (send (with_id id resp));
           (match after with `Stop -> stop t | `Continue -> ());
           Mutex.lock pend_mu;
           decr pending;
           Condition.broadcast pend_cv;
           Mutex.unlock pend_mu)
         ())
  in
  let rec loop () =
    if Atomic.get conn_dead then ()
    else
      match read_frame ~max_bytes:cfg.cfg_max_frame_bytes fd with
      | Error Closed ->
          (* a finished client: just let the connection go *)
          ()
      | Error Timed_out ->
          (* idle only counts when nothing is in flight: a pipelining
             client quietly waiting for its responses is not a
             slow-loris *)
          if pending_now () > 0 && not (Atomic.get t.t_stopping) then
            loop ()
      | Error ((Bad_magic | Oversized _ | Truncated | Bad_checksum) as e) ->
          (* the stream position can no longer be trusted: answer if
             possible, then drop the connection.  A checksum mismatch is
             in this class too — the digest covers only the payload, so
             a corrupted length prefix also surfaces as Bad_checksum,
             and then the boundary we read at was never real *)
          Atomic.incr t.t_proto_err;
          ignore
            (send
               (error_response ~code:"bad-frame" (frame_error_to_string e)))
      | Ok payload -> (
          let id = payload_id payload in
          match parse_request payload with
          | Error m ->
              let resp = error_response ~code:"bad-request" m in
              let resp =
                match id with Some i -> with_id i resp | None -> resp
              in
              count resp;
              if send resp && not (Atomic.get t.t_stopping) then loop ()
          | Ok req -> (
              match (id, req) with
              | Some id, Shutdown ->
                  (* exactly-once doesn't mix with concurrency:
                     shutdown is answered in-line even when tagged *)
                  let resp, _ = handle Shutdown in
                  count resp;
                  ignore (send (with_id id resp));
                  stop t
              | Some id, _ ->
                  dispatch id req;
                  if not (Atomic.get t.t_stopping) then loop ()
              | None, _ -> (
                  let resp, after = handle req in
                  count resp;
                  let sent = send resp in
                  match after with
                  | `Stop -> stop t
                  | `Continue ->
                      if sent && not (Atomic.get t.t_stopping) then loop ())))
  in
  Fun.protect
    ~finally:(fun () ->
      (* drain this connection's pipeline before closing: worker
         threads still hold the descriptor, and closing it out from
         under them would race a kernel-level descriptor reuse *)
      Mutex.lock pend_mu;
      while !pending > 0 do
        Condition.wait pend_cv pend_mu
      done;
      Mutex.unlock pend_mu;
      unregister_conn t fd;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr t.t_inflight)
    (fun () -> try loop () with _ -> ())

(* ---------- accept loop and drain ---------- *)

let shed t fd =
  Atomic.incr t.t_shed;
  (* the frame is far smaller than a fresh socket buffer, so this
     cannot block even on a client that never reads *)
  (try write_frame fd (encode_response overloaded_response)
   with Unix.Unix_error _ | Faults.Injected _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec bump_hwm hwm v =
  let cur = Atomic.get hwm in
  if v > cur && not (Atomic.compare_and_set hwm cur v) then bump_hwm hwm v

let serve t =
  let cfg = t.t_cfg in
  let listen_fds = List.map fst t.t_listen in
  let rec accept_loop () =
    if Atomic.get t.t_stopping then ()
    else
      match Unix.select (t.t_stop_r :: listen_fds) [] [] 0.5 with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | readable, _, _ ->
          if List.mem t.t_stop_r readable then ()
          else begin
            List.iter
              (fun (lfd, ep) ->
                if List.mem lfd readable then
                  match Unix.accept ~cloexec:true lfd with
                  | exception
                      Unix.Unix_error
                        ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED), _, _)
                    ->
                      ()
                  | fd, _ ->
                      if Atomic.get t.t_stopping then (
                        try Unix.close fd with Unix.Unix_error _ -> ())
                      else if Atomic.get t.t_inflight >= cfg.cfg_max_inflight
                      then shed t fd
                      else begin
                        (match ep with
                        | Endpoint.Tcp _ -> (
                            (* frames are small and latency-sensitive;
                               Nagle + delayed ack would add round
                               trips to every pipelined response *)
                            try Unix.setsockopt fd Unix.TCP_NODELAY true
                            with Unix.Unix_error _ -> ())
                        | Endpoint.Unix_sock _ -> ());
                        let now = Atomic.fetch_and_add t.t_inflight 1 + 1 in
                        bump_hwm t.t_hwm now;
                        register_conn t fd;
                        ignore
                          (Thread.create
                             (handle_connection t (Endpoint.transport ep))
                             fd)
                      end)
              t.t_listen;
            accept_loop ()
          end
  in
  accept_loop ();
  Atomic.set t.t_stopping true;
  (* no new admissions *)
  List.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.t_listen;
  List.iter
    (function
      | Endpoint.Unix_sock p -> (
          try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      | Endpoint.Tcp _ -> ())
    (bound_endpoints t);
  (* graceful drain: in-flight requests get [cfg_drain_ms] to finish *)
  let deadline =
    Unix.gettimeofday () +. (float_of_int cfg.cfg_drain_ms /. 1000.0)
  in
  while Atomic.get t.t_inflight > 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  (* hard deadline passed: force the stragglers' sockets shut so their
     threads wake out of blocking reads and unwind *)
  if Atomic.get t.t_inflight > 0 then begin
    Mutex.lock t.t_conns_mu;
    Hashtbl.iter
      (fun fd () ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.t_conns;
    Mutex.unlock t.t_conns_mu;
    let hard = Unix.gettimeofday () +. 0.5 in
    while Atomic.get t.t_inflight > 0 && Unix.gettimeofday () < hard do
      Unix.sleepf 0.005
    done
  end;
  (try Unix.close t.t_stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.t_stop_w with Unix.Unix_error _ -> ());
  stats t

(* ---------- client helpers ---------- *)

let connect ?io_timeout_ms path =
  Endpoint.connect ?io_timeout_ms (Endpoint.Unix_sock path)

let roundtrip ?faults ?max_bytes fd req =
  match write_frame ?faults fd (encode_request req) with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("write: " ^ Unix.error_message e)
  | exception Faults.Injected site -> Error ("injected: " ^ site)
  | () -> (
      match read_frame ?max_bytes fd with
      | Error e -> Error (frame_error_to_string e)
      | Ok payload -> parse_response payload)

let wait_ready ?(timeout_s = 5.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let ready =
      (* each probe is individually bounded so a half-up daemon cannot
         park one past the caller's overall deadline *)
      match connect ~io_timeout_ms:1000 path with
      | exception (Unix.Unix_error _ | Sys_error _) -> false
      | fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match roundtrip fd Ping with
              | Ok { rs_status = "ok"; _ } -> true
              | _ -> false)
    in
    if ready then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()
