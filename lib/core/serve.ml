(* The analysis daemon.  Layering, bottom up:

   - frame I/O: length-prefixed, versioned, checksummed frames over a
     file descriptor, with fault-injection sites on the write path;
   - payload codec: a tiny line-oriented grammar shared by requests
     and responses;
   - the server: a single event loop (poll(2) via {!Poller}) in the
     calling thread driving non-blocking per-connection state
     machines, with analyze/eval work handed to a fixed pool of
     [cfg_workers] threads.  An admitted connection costs a
     descriptor and a small record, not a thread, so thousands of
     idle connections are cheap; bounded admission with load
     shedding and a graceful drain on stop are unchanged.

   Robustness stance: everything a client can send is untrusted.
   Frame errors are classified; whatever still has a trustworthy
   frame boundary is answered with an error frame and the connection
   continues, anything past a lost boundary closes the connection —
   and in neither case does the event loop stop accepting. *)

type config = {
  cfg_endpoints : Endpoint.t list;
  cfg_max_inflight : int;
  cfg_max_pipeline : int;
  cfg_max_frame_bytes : int;
  cfg_idle_timeout_ms : int;
  cfg_drain_ms : int;
  cfg_workers : int;
  cfg_level : Mira_codegen.Codegen.level;
  cfg_limits : Limits.t;
  cfg_cache : Batch.cache option;
  cfg_incremental : bool;
  cfg_faults : Faults.t option;
  cfg_auth_secret : string option;
}

let default_config_endpoints ~endpoints =
  {
    cfg_endpoints = endpoints;
    cfg_max_inflight = 8;
    cfg_max_pipeline = 8;
    cfg_max_frame_bytes = 4 * 1024 * 1024;
    cfg_idle_timeout_ms = 30_000;
    cfg_drain_ms = 2_000;
    cfg_workers = 8;
    cfg_level = Mira_codegen.Codegen.O1;
    cfg_limits = Limits.default;
    cfg_cache = None;
    cfg_incremental = true;
    cfg_faults = None;
    cfg_auth_secret = None;
  }

let default_config ~socket =
  default_config_endpoints ~endpoints:[ Endpoint.Unix_sock socket ]

(* ---------- frame layer ---------- *)

let magic = "MIRS1\n"
let digest_len = 16
let header_len = String.length magic + 4

type frame_error =
  | Closed
  | Truncated
  | Bad_magic
  | Oversized of int
  | Bad_checksum
  | Timed_out

let frame_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad frame magic"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n
  | Bad_checksum -> "frame checksum mismatch"
  | Timed_out -> "socket timeout"

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.unsafe_to_string b

let of_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* [read_exact fd n]: all [n] bytes, or how the stream ended.  EINTR
   restarts; EAGAIN/EWOULDBLOCK is the SO_RCVTIMEO idle timeout; a
   reset peer reads as EOF. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof off
      | r -> go (off + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Timeout
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Eof off
  in
  go 0

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | r -> go (off + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let frame payload =
  magic ^ be32 (String.length payload) ^ Digest.string payload ^ payload

let write_frame ?faults fd payload =
  let data = frame payload in
  let subject = Digest.to_hex (Digest.string payload) in
  let fires p site =
    match faults with
    | Some f -> Faults.fires f ~p:(p f) ~site ~subject
    | None -> false
  in
  if fires (fun f -> f.Faults.kill_p) "net_kill" then begin
    (* the process dies between frames: nothing of this frame is ever
       written, the socket is just severed — what a SIGKILLed daemon
       looks like from the other end *)
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    raise (Faults.Injected "net_kill")
  end
  else if fires (fun f -> f.Faults.disconnect_p) "net_disconnect" then begin
    (* the peer vanishes mid-frame: half a frame, then a hard close *)
    write_all fd (String.sub data 0 (String.length data / 2));
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    raise (Faults.Injected "net_disconnect")
  end
  else if fires (fun f -> f.Faults.net_write_p) "net_write" then begin
    (* a dropped/short write: the frame just stops *)
    write_all fd (String.sub data 0 (String.length data / 2));
    raise (Faults.Injected "net_write")
  end
  else if
    (match faults with Some f -> f.Faults.slow_ms > 0 | None -> false)
    && fires (fun f -> f.Faults.slow_p) "net_slow"
  then begin
    (* a slow peer: the header arrives, the payload dribbles in later *)
    write_all fd (String.sub data 0 header_len);
    (match faults with
    | Some f -> Unix.sleepf (float_of_int f.Faults.slow_ms /. 1000.0)
    | None -> ());
    write_all fd
      (String.sub data header_len (String.length data - header_len))
  end
  else write_all fd data

let read_frame ?(max_bytes = 4 * 1024 * 1024) fd =
  match read_exact fd header_len with
  | `Timeout -> Error Timed_out
  | `Eof 0 -> Error Closed
  | `Eof _ -> Error Truncated
  | `Ok header ->
      if String.sub header 0 (String.length magic) <> magic then
        Error Bad_magic
      else
        let len = of_be32 header (String.length magic) in
        if len > max_bytes then Error (Oversized len)
        else (
          match read_exact fd (digest_len + len) with
          | `Timeout -> Error Timed_out
          | `Eof _ -> Error Truncated
          | `Ok rest ->
              let digest = String.sub rest 0 digest_len in
              let payload =
                String.sub rest digest_len (String.length rest - digest_len)
              in
              if Digest.string payload <> digest then Error Bad_checksum
              else Ok payload)

(* ---------- payload codec ---------- *)

let proto = "mira/1"

(* field values travel on one line; whatever they came from, newlines
   must not let a value forge extra fields *)
let sanitize v =
  String.map (function '\n' | '\r' -> ' ' | c -> c) v

let encode_payload ~head ~fields ~body =
  let buf = Buffer.create (128 + String.length body) in
  Buffer.add_string buf proto;
  Buffer.add_char buf ' ';
  Buffer.add_string buf head;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (sanitize v))
    fields;
  Buffer.add_string buf "\n\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let parse_payload s =
  let header, body =
    match find_sub s "\n\n" with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    | None -> (s, "")
  in
  match String.split_on_char '\n' header with
  | [] -> Error "empty payload"
  | head :: field_lines -> (
      match String.index_opt head ' ' with
      | None -> Error "malformed head line"
      | Some sp ->
          let version = String.sub head 0 sp in
          if version <> proto then
            Error (Printf.sprintf "unsupported protocol version %S" version)
          else
            let verb =
              String.sub head (sp + 1) (String.length head - sp - 1)
            in
            if verb = "" then Error "missing verb"
            else
              let rec fields acc = function
                | [] -> Ok (List.rev acc)
                | "" :: _ -> Error "blank line inside header"
                | line :: rest -> (
                    match String.index_opt line '=' with
                    | None ->
                        Error
                          (Printf.sprintf "malformed field line %S" line)
                    | Some i ->
                        let k = String.sub line 0 i in
                        let v =
                          String.sub line (i + 1)
                            (String.length line - i - 1)
                        in
                        fields ((k, v) :: acc) rest)
              in
              Result.map (fun fs -> (verb, fs, body)) (fields [] field_lines))

(* ---------- requests ---------- *)

type budget_request = {
  rq_fuel : int option;
  rq_timeout_ms : int option;
  rq_depth : int option;
}

let no_budget = { rq_fuel = None; rq_timeout_ms = None; rq_depth = None }

type sweep_binding = {
  sb_index : int;
  sb_source : string;
  sb_function : string;
  sb_params : (string * int) list;
}

type request =
  | Ping
  | Stats
  | Health
  | Shutdown
  | Analyze of {
      an_name : string;
      an_source : string;
      an_budget : budget_request;
    }
  | Eval of {
      ev_name : string;
      ev_source : string;
      ev_function : string;
      ev_params : (string * int) list;
      ev_budget : budget_request;
    }
  | Sweep of {
      sw_sources : (string * string) list;
      sw_bindings : sweep_binding list;
      sw_budget : budget_request;
    }
  (* watch-mode session verbs (additive, PROTOCOL.md "watch mode"):
     an empty source body means "read [path] from the daemon's own
     filesystem" — the shared-filesystem deployment — while a
     non-empty body carries the text itself *)
  | Watch of { wt_path : string; wt_source : string }
  | Reanalyze of { rz_path : string; rz_source : string }
  | Forget of { fg_path : string }

let budget_fields b =
  let opt k = function
    | Some n -> [ (k, string_of_int n) ]
    | None -> []
  in
  opt "fuel" b.rq_fuel @ opt "timeout-ms" b.rq_timeout_ms
  @ opt "depth" b.rq_depth

(* ---------- sweep body codec ----------

   A sweep chunk carries every distinct source once (length-prefixed,
   so arbitrary program text needs no escaping) followed by one [bind]
   line per evaluation, each tagged with its caller-chosen index:

   {v source NAME LEN \n <LEN bytes> \n
      bind INDEX NAME FUNCTION k=v k=v... \n v}

   Names and function names are single tokens (no spaces/newlines);
   the index rides back on the per-binding response frame, which is
   what lets a coordinator track completion of a chunk it may later
   re-dispatch elsewhere. *)

let valid_token s =
  s <> ""
  && String.for_all (fun c -> c <> ' ' && c <> '\n' && c <> '\r') s

let encode_sweep_body ~sources ~bindings =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, text) ->
      if not (valid_token name) then
        invalid_arg
          (Printf.sprintf "sweep: source name %S is not a single token" name);
      Printf.bprintf buf "source %s %d\n%s\n" name (String.length text) text)
    sources;
  List.iter
    (fun b ->
      if b.sb_index < 0 then invalid_arg "sweep: negative binding index";
      if not (valid_token b.sb_function) then
        invalid_arg
          (Printf.sprintf "sweep: function name %S is not a single token"
             b.sb_function);
      Printf.bprintf buf "bind %d %s %s" b.sb_index b.sb_source b.sb_function;
      List.iter
        (fun (k, v) ->
          if not (valid_token k) || String.contains k '=' then
            invalid_arg
              (Printf.sprintf "sweep: parameter name %S is not a single token"
                 k);
          Printf.bprintf buf " %s=%d" k v)
        b.sb_params;
      Buffer.add_char buf '\n')
    bindings;
  Buffer.contents buf

let parse_sweep_body body =
  let ( let* ) = Result.bind in
  let len = String.length body in
  let line_end pos =
    match String.index_from_opt body pos '\n' with Some i -> i | None -> len
  in
  let parse_bind idx name fn params =
    let* idx =
      match int_of_string_opt idx with
      | Some i when i >= 0 -> Ok i
      | _ -> Error (Printf.sprintf "sweep bind: bad index %S" idx)
    in
    let* params =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          match String.index_opt p '=' with
          | None -> Error (Printf.sprintf "sweep bind: expected k=v, got %S" p)
          | Some i -> (
              let k = String.sub p 0 i in
              let v = String.sub p (i + 1) (String.length p - i - 1) in
              match int_of_string_opt v with
              | Some n -> Ok ((k, n) :: acc)
              | None ->
                  Error
                    (Printf.sprintf "sweep bind: param %s: %S is not an integer"
                       k v)))
        (Ok []) params
    in
    Ok
      {
        sb_index = idx;
        sb_source = name;
        sb_function = fn;
        sb_params = List.rev params;
      }
  in
  let rec go pos sources bindings =
    if pos >= len then Ok (List.rev sources, List.rev bindings)
    else
      let e = line_end pos in
      let line = String.sub body pos (e - pos) in
      match String.split_on_char ' ' line with
      | [ "source"; name; n ] -> (
          match int_of_string_opt n with
          | Some sz when sz >= 0 && e + 1 + sz < len ->
              let text = String.sub body (e + 1) sz in
              if body.[e + 1 + sz] <> '\n' then
                Error "sweep source: missing terminator after text"
              else go (e + 2 + sz) ((name, text) :: sources) bindings
          | _ -> Error (Printf.sprintf "sweep source: bad length %S" n))
      | "bind" :: idx :: name :: fn :: params ->
          let* b = parse_bind idx name fn params in
          go (e + 1) sources (b :: bindings)
      | _ -> Error (Printf.sprintf "sweep: malformed line %S" line)
  in
  go 0 [] []

let encode_request ?id req =
  (* the id tag rides along as an ordinary field: untagged requests
     stay byte-identical to the pre-pipelining wire format *)
  let tag fields =
    match id with None -> fields | Some i -> ("id", i) :: fields
  in
  match req with
  | Ping -> encode_payload ~head:"ping" ~fields:(tag []) ~body:""
  | Stats -> encode_payload ~head:"stats" ~fields:(tag []) ~body:""
  | Health -> encode_payload ~head:"health" ~fields:(tag []) ~body:""
  | Shutdown -> encode_payload ~head:"shutdown" ~fields:(tag []) ~body:""
  | Analyze { an_name; an_source; an_budget } ->
      encode_payload ~head:"analyze"
        ~fields:(tag (("name", an_name) :: budget_fields an_budget))
        ~body:an_source
  | Eval { ev_name; ev_source; ev_function; ev_params; ev_budget } ->
      encode_payload ~head:"eval"
        ~fields:
          (tag
             ([ ("name", ev_name); ("function", ev_function) ]
             @ List.map
                 (fun (k, v) -> ("param", Printf.sprintf "%s=%d" k v))
                 ev_params
             @ budget_fields ev_budget))
        ~body:ev_source
  | Sweep { sw_sources; sw_bindings; sw_budget } ->
      encode_payload ~head:"sweep"
        ~fields:(tag (budget_fields sw_budget))
        ~body:(encode_sweep_body ~sources:sw_sources ~bindings:sw_bindings)
  | Watch { wt_path; wt_source } ->
      encode_payload ~head:"watch"
        ~fields:(tag [ ("path", wt_path) ])
        ~body:wt_source
  | Reanalyze { rz_path; rz_source } ->
      encode_payload ~head:"reanalyze"
        ~fields:(tag [ ("path", rz_path) ])
        ~body:rz_source
  | Forget { fg_path } ->
      encode_payload ~head:"forget" ~fields:(tag [ ("path", fg_path) ]) ~body:""

(* the request id, when the payload parses at all — extracted
   independently of the verb so even a bad-request error frame can be
   re-associated by a pipelining client *)
let payload_id payload =
  match parse_payload payload with
  | Ok (_, fields, _) -> List.assoc_opt "id" fields
  | Error _ -> None

let parse_request payload =
  let ( let* ) = Result.bind in
  let* verb, fields, body = parse_payload payload in
  let field k = List.assoc_opt k fields in
  let int_field k =
    match field k with
    | None -> Ok None
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok (Some n)
        | _ -> Error (Printf.sprintf "field %s: expected an integer, got %S" k v))
  in
  let budget () =
    let* fuel = int_field "fuel" in
    let* timeout_ms = int_field "timeout-ms" in
    let* depth = int_field "depth" in
    Ok { rq_fuel = fuel; rq_timeout_ms = timeout_ms; rq_depth = depth }
  in
  let name () = Option.value (field "name") ~default:"request.mc" in
  match verb with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "health" -> Ok Health
  | "shutdown" -> Ok Shutdown
  | "analyze" ->
      let* b = budget () in
      Ok (Analyze { an_name = name (); an_source = body; an_budget = b })
  | "eval" -> (
      let* b = budget () in
      match field "function" with
      | None -> Error "eval needs a function= field"
      | Some fn ->
          let* params =
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                if k <> "param" then Ok acc
                else
                  match String.index_opt v '=' with
                  | None ->
                      Error
                        (Printf.sprintf "param %S: expected name=value" v)
                  | Some i -> (
                      let pk = String.sub v 0 i in
                      let pv =
                        String.sub v (i + 1) (String.length v - i - 1)
                      in
                      match int_of_string_opt pv with
                      | Some n -> Ok ((pk, n) :: acc)
                      | None ->
                          Error
                            (Printf.sprintf "param %s: %S is not an integer"
                               pk pv)))
              (Ok []) fields
          in
          Ok
            (Eval
               {
                 ev_name = name ();
                 ev_source = body;
                 ev_function = fn;
                 ev_params = List.rev params;
                 ev_budget = b;
               }))
  | "sweep" ->
      let* b = budget () in
      let* sources, bindings = parse_sweep_body body in
      let* () =
        List.fold_left
          (fun acc sb ->
            let* () = acc in
            if List.mem_assoc sb.sb_source sources then Ok ()
            else
              Error
                (Printf.sprintf "sweep binding %d: unknown source %S"
                   sb.sb_index sb.sb_source))
          (Ok ()) bindings
      in
      Ok (Sweep { sw_sources = sources; sw_bindings = bindings; sw_budget = b })
  | ("watch" | "reanalyze" | "forget") as verb -> (
      match field "path" with
      | None -> Error (Printf.sprintf "%s needs a path= field" verb)
      | Some p ->
          Ok
            (match verb with
            | "watch" -> Watch { wt_path = p; wt_source = body }
            | "reanalyze" -> Reanalyze { rz_path = p; rz_source = body }
            | _ -> Forget { fg_path = p }))
  | v -> Error (Printf.sprintf "unknown request verb %S" v)

(* ---------- responses ---------- *)

type response = {
  rs_status : string;
  rs_fields : (string * string) list;
  rs_body : string;
}

let encode_response r =
  encode_payload ~head:r.rs_status ~fields:r.rs_fields ~body:r.rs_body

let parse_response payload =
  Result.map
    (fun (status, fields, body) ->
      { rs_status = status; rs_fields = fields; rs_body = body })
    (parse_payload payload)

let field r k = List.assoc_opt k r.rs_fields

let ok ?(fields = []) ?(body = "") () =
  { rs_status = "ok"; rs_fields = fields; rs_body = body }

let error_response ~code ?(fields = []) message =
  {
    rs_status = "error";
    rs_fields = (("code", code) :: ("message", message) :: fields);
    rs_body = "";
  }

let overloaded_response =
  {
    rs_status = "overloaded";
    rs_fields = [ ("retry", "1") ];
    rs_body = "";
  }

let diag_code (d : Diag.t) =
  match d.d_kind with
  | Diag.User_error -> "analysis"
  | Diag.Budget_exhausted -> "budget"
  | Diag.Timeout -> "timeout"
  | Diag.Io_error -> "io"
  | Diag.Cache_corrupt -> "cache"
  | Diag.Injected_fault -> "injected"
  | Diag.Internal_error -> "internal"

let diag_response (d : Diag.t) =
  error_response ~code:(diag_code d)
    ~fields:
      [
        ("phase", Diag.phase_to_string d.d_phase);
        ("kind", Diag.kind_to_string d.d_kind);
      ]
    (Diag.to_string d)

(* ---------- server stats ---------- *)

type server_stats = {
  sv_uptime_ms : int;
  sv_served : int;
  sv_failed : int;
  sv_shed : int;
  sv_protocol_errors : int;
  sv_inflight : int;
  sv_inflight_hwm : int;
  sv_analyzed : int;
  sv_mem_hits : int;
  sv_disk_hits : int;
  sv_assembled : int;
  sv_fn_mem_hits : int;
  sv_fn_disk_hits : int;
  sv_fn_analyzed : int;
  sv_cache_corrupt : int;
  sv_io_retries : int;
  sv_io_failures : int;
  sv_compile_hits : int;
  sv_compile_misses : int;
  sv_compile_fallbacks : int;
}

let stats_fields s =
  [
    ("uptime-ms", string_of_int s.sv_uptime_ms);
    ("served", string_of_int s.sv_served);
    ("failed", string_of_int s.sv_failed);
    ("shed", string_of_int s.sv_shed);
    ("protocol-errors", string_of_int s.sv_protocol_errors);
    ("inflight", string_of_int s.sv_inflight);
    ("inflight-hwm", string_of_int s.sv_inflight_hwm);
    ("analyzed", string_of_int s.sv_analyzed);
    ("mem-hits", string_of_int s.sv_mem_hits);
    ("disk-hits", string_of_int s.sv_disk_hits);
    ("assembled", string_of_int s.sv_assembled);
    ("fn-mem-hits", string_of_int s.sv_fn_mem_hits);
    ("fn-disk-hits", string_of_int s.sv_fn_disk_hits);
    ("fn-analyzed", string_of_int s.sv_fn_analyzed);
    ("cache-corrupt", string_of_int s.sv_cache_corrupt);
    ("io-retries", string_of_int s.sv_io_retries);
    ("io-failures", string_of_int s.sv_io_failures);
  ]
(* the compiled-evaluator counters ride as response header fields, not
   body lines: the body's key list is pinned wire shape
   (docs/PROTOCOL.md, test_protocol) and pre-compile pollers must keep
   parsing it byte-for-byte *)

let compile_fields s =
  [
    ("compile-hits", string_of_int s.sv_compile_hits);
    ("compile-misses", string_of_int s.sv_compile_misses);
    ("compile-fallbacks", string_of_int s.sv_compile_fallbacks);
  ]

(* watch-mode session counters — same precedent as [compile_fields]:
   header fields on the stats response, never new body lines *)
let session_counter_fields (c : Session.counters) =
  [
    ("watch-files", string_of_int c.Session.ct_files);
    ("watch-reanalyses", string_of_int c.ct_reanalyses);
    ("watch-invalidated", string_of_int c.ct_invalidated);
    ("watch-local", string_of_int c.ct_local);
    ("watch-cross", string_of_int c.ct_cross);
    ("watch-recomputed", string_of_int c.ct_recomputed);
    ("watch-clean", string_of_int c.ct_clean);
  ]

(* ---------- the server ---------- *)

type t = {
  t_cfg : config;
  t_listen : (Unix.file_descr * Endpoint.t) list;
  t_stop_r : Unix.file_descr;
  t_stop_w : Unix.file_descr;
  t_stopping : bool Atomic.t;
  (* flipped once the event loop is live; [health] reports "starting"
     until then, so a supervisor can tell a booting daemon (bound but
     not yet serving, e.g. still scanning its cache) from a ready one *)
  t_ready : bool Atomic.t;
  t_start : float;
  t_inflight : int Atomic.t;
  t_hwm : int Atomic.t;
  t_served : int Atomic.t;
  t_failed : int Atomic.t;
  t_shed : int Atomic.t;
  t_proto_err : int Atomic.t;
  (* accumulated Batch.stats over served requests *)
  t_batch_mu : Mutex.t;
  mutable t_batch : Batch.stats option;
  (* compiled evaluators, shared across workers and requests: eval and
     sweep bindings with the same (model, function, parameter-name
     set) re-run one program instead of re-walking the model *)
  t_compile : Model_compile.cache;
  (* the watch-mode session: per-file fingerprint tables, models and
     the cross-file dependency index.  Mutating verbs are serialized
     by the event loop (one at a time, FIFO), so pipelined edits
     always observe a consistent snapshot; Session's own mutex guards
     the remaining reader paths (stats). *)
  t_session : Session.t;
}

let add_batch_stats t (s : Batch.stats) =
  Mutex.lock t.t_batch_mu;
  (t.t_batch <-
    (match t.t_batch with
    | None -> Some s
    | Some a ->
        Some
          {
            a with
            Batch.st_analyzed = a.Batch.st_analyzed + s.Batch.st_analyzed;
            st_mem_hits = a.st_mem_hits + s.Batch.st_mem_hits;
            st_disk_hits = a.st_disk_hits + s.Batch.st_disk_hits;
            st_assembled = a.st_assembled + s.Batch.st_assembled;
            st_fn_mem_hits = a.st_fn_mem_hits + s.Batch.st_fn_mem_hits;
            st_fn_disk_hits = a.st_fn_disk_hits + s.Batch.st_fn_disk_hits;
            st_fn_analyzed = a.st_fn_analyzed + s.Batch.st_fn_analyzed;
            st_cache_corrupt = a.st_cache_corrupt + s.Batch.st_cache_corrupt;
            st_io_retries = a.st_io_retries + s.Batch.st_io_retries;
            st_io_failures = a.st_io_failures + s.Batch.st_io_failures;
          }));
  Mutex.unlock t.t_batch_mu

let stats t =
  let b =
    Mutex.lock t.t_batch_mu;
    let b = t.t_batch in
    Mutex.unlock t.t_batch_mu;
    b
  in
  let bf f = match b with None -> 0 | Some s -> f s in
  let cs = Model_compile.stats t.t_compile in
  {
    sv_uptime_ms =
      int_of_float ((Unix.gettimeofday () -. t.t_start) *. 1000.0);
    sv_served = Atomic.get t.t_served;
    sv_failed = Atomic.get t.t_failed;
    sv_shed = Atomic.get t.t_shed;
    sv_protocol_errors = Atomic.get t.t_proto_err;
    sv_inflight = Atomic.get t.t_inflight;
    sv_inflight_hwm = Atomic.get t.t_hwm;
    sv_analyzed = bf (fun s -> s.Batch.st_analyzed);
    sv_mem_hits = bf (fun s -> s.Batch.st_mem_hits);
    sv_disk_hits = bf (fun s -> s.Batch.st_disk_hits);
    sv_assembled = bf (fun s -> s.Batch.st_assembled);
    sv_fn_mem_hits = bf (fun s -> s.Batch.st_fn_mem_hits);
    sv_fn_disk_hits = bf (fun s -> s.Batch.st_fn_disk_hits);
    sv_fn_analyzed = bf (fun s -> s.Batch.st_fn_analyzed);
    sv_cache_corrupt = bf (fun s -> s.Batch.st_cache_corrupt);
    sv_io_retries = bf (fun s -> s.Batch.st_io_retries);
    sv_io_failures = bf (fun s -> s.Batch.st_io_failures);
    sv_compile_hits = cs.Model_compile.hits;
    sv_compile_misses = cs.Model_compile.misses;
    sv_compile_fallbacks = cs.Model_compile.fallbacks;
  }

let create cfg =
  (* a client that disconnects mid-response must surface as EPIPE on
     that connection, never as a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if cfg.cfg_endpoints = [] then failwith "serve: no endpoints configured";
  (* bind every endpoint before serving any, unwinding on failure so a
     half-configured daemon never runs *)
  let listen =
    List.fold_left
      (fun acc ep ->
        match Endpoint.listen ep with
        | bound -> bound :: acc
        | exception e ->
            List.iter
              (fun (fd, _) ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              acc;
            raise e)
      [] cfg.cfg_endpoints
    |> List.rev
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_w;
  {
    t_cfg = cfg;
    t_listen = listen;
    t_stop_r = stop_r;
    t_stop_w = stop_w;
    t_stopping = Atomic.make false;
    t_ready = Atomic.make false;
    t_start = Unix.gettimeofday ();
    t_inflight = Atomic.make 0;
    t_hwm = Atomic.make 0;
    t_served = Atomic.make 0;
    t_failed = Atomic.make 0;
    t_shed = Atomic.make 0;
    t_proto_err = Atomic.make 0;
    t_batch_mu = Mutex.create ();
    t_batch = None;
    t_compile =
      (* share the analysis cache's directory so compiled programs
         survive restarts alongside the models they derive from *)
      Model_compile.create_cache ~capacity:256
        ?dir:(Option.bind cfg.cfg_cache Batch.cache_dir)
        ();
    t_session = Session.create ~level:cfg.cfg_level ~limits:cfg.cfg_limits ();
  }

let bound_endpoints t = List.map snd t.t_listen

let stop t =
  if not (Atomic.exchange t.t_stopping true) then
    (* wake the accept loop; if the pipe is gone the loop already
       exited, which is fine *)
    try ignore (Unix.write t.t_stop_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* ---------- request handling ---------- *)

(* the per-request budget: the server's limits clamped down by the
   request's own (a request can tighten its budget but never exceed
   the operator's).  Computed once at admission and carried with the
   job, so the worker that runs it needs no ambient per-thread state
   to find it. *)
let request_limits (cfg : config) = function
  | Analyze { an_budget = b; _ }
  | Eval { ev_budget = b; _ }
  | Sweep { sw_budget = b; _ } ->
      Limits.clamp cfg.cfg_limits ~fuel:b.rq_fuel ~timeout_ms:b.rq_timeout_ms
        ~depth:b.rq_depth
  | Ping | Stats | Health | Shutdown -> cfg.cfg_limits
  | Watch _ | Reanalyze _ | Forget _ -> cfg.cfg_limits

let analyze_source t ~name ~source ~limits =
  let cfg = t.t_cfg in
  let results, stats =
    Batch.run ~jobs:1 ?cache:cfg.cfg_cache ~incremental:cfg.cfg_incremental
      ~level:cfg.cfg_level ~limits ?faults:cfg.cfg_faults
      [ { Batch.src_name = name; src_text = source } ]
  in
  add_batch_stats t stats;
  match results with
  | [ Ok a ] -> Ok a
  | [ Error (_, d) ] -> Error d
  | _ ->
      Error
        (Diag.make Diag.Driver Diag.Internal_error
           "batch returned an unexpected result shape")

let float_field v = Printf.sprintf "%.12g" v

let handle_analyze t ~limits ~name ~source =
  match analyze_source t ~name ~source ~limits with
  | Error d -> diag_response d
  | Ok (a : Batch.analysis) ->
      ok
        ~fields:
          ([
             ("name", a.a_name);
             ( "functions",
               string_of_int (List.length a.a_model.Model_ir.functions) );
             ("cached", if a.a_cached then "1" else "0");
           ]
          @ List.map
              (fun (f, w) -> ("warning", f ^ ": " ^ w))
              a.a_warnings)
        ~body:a.a_python ()

(* Evaluate through the compiled-program cache: one compilation per
   (model, function, parameter-name set), so a sweep's bindings all
   re-run the same program.  Models the partial evaluator rejects are
   answered by the interpreter; results agree to float tolerance and
   the response wire format is identical either way. *)
let eval_counts t (a : Batch.analysis) ~fname ~params =
  let sweep = List.sort_uniq compare (List.map fst params) in
  match
    Model_compile.get t.t_compile
      ~digest:(Digest.string a.a_python)
      ~model:a.a_model ~fname ~sweep ~fixed:[] ()
  with
  | Ok prog -> Model_compile.eval prog ~env:params
  | Error _ -> Model_eval.eval a.a_model ~fname ~env:params

let handle_eval t ~limits ~name ~source ~fname ~params =
  match analyze_source t ~name ~source ~limits with
  | Error d -> diag_response d
  | Ok (a : Batch.analysis) -> (
      (* model evaluation recurses over untrusted structure too; give
         it the same budget the analysis ran under *)
      match
        Limits.Budget.install (Limits.budget limits) (fun () ->
            eval_counts t a ~fname ~params)
      with
      | counts ->
          let buf = Buffer.create 256 in
          List.iter
            (fun (mn, v) ->
              Buffer.add_string buf mn;
              Buffer.add_char buf '=';
              Buffer.add_string buf (float_field v);
              Buffer.add_char buf '\n')
            counts;
          ok
            ~fields:
              [
                ("name", a.a_name);
                ("function", fname);
                ("fpi", float_field (Model_eval.fpi counts));
                ("total", float_field (Model_eval.total counts));
                ("cached", if a.a_cached then "1" else "0");
              ]
            ~body:(Buffer.contents buf) ()
      | exception Model_eval.Missing_parameter (f, p) ->
          error_response ~code:"bad-request"
            (Printf.sprintf "function %s needs a value for parameter %s" f p)
      | exception Invalid_argument m ->
          error_response ~code:"bad-request" m
      | exception e -> diag_response (Diag.of_exn e))

(* returns the response plus whether the connection should go on *)
(* The readiness probe's view of the daemon.  Order matters: a
   draining daemon is "draining" even while saturated, and a booting
   one is "starting" whatever its counters say — a supervisor restarts
   a wedged "starting" child but leaves a "draining" one alone. *)
let health_state t =
  if Atomic.get t.t_stopping then "draining"
  else if not (Atomic.get t.t_ready) then "starting"
  else if Atomic.get t.t_inflight >= t.t_cfg.cfg_max_inflight then "overloaded"
  else "ready"

(* watch/reanalyze with an empty body read the file from the daemon's
   own filesystem (shared-filesystem deployment); failures are ordinary
   io-coded error responses, never exceptions *)
let read_path_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | (exception Sys_error m) -> Error m
  | (exception Unix.Unix_error (e, _, _)) ->
      Error (path ^ ": " ^ Unix.error_message e)

let handle_request t ~transport ~limits req =
  match req with
  | Ping -> (ok ~fields:[ ("pong", "1") ] (), `Continue)
  | Health ->
      (* purely additive: a new verb plus response fields, nothing in
         the existing grammar moves (docs/PROTOCOL.md, "health") *)
      ( ok
          ~fields:
            [
              ("state", health_state t);
              ("inflight", string_of_int (Atomic.get t.t_inflight));
              ("max-inflight", string_of_int t.t_cfg.cfg_max_inflight);
              ("workers", string_of_int t.t_cfg.cfg_workers);
              ("served", string_of_int (Atomic.get t.t_served));
              ("failed", string_of_int (Atomic.get t.t_failed));
            ]
          (),
        `Continue )
  | Stats ->
      let s = stats t in
      let body =
        String.concat ""
          (List.map (fun (k, v) -> k ^ "=" ^ v ^ "\n") (stats_fields s))
      in
      (* protocol introspection: a pool can refuse a mismatched daemon
         with a clear diagnostic instead of a decode error *)
      ( ok
          ~fields:
            ([ ("proto", proto); ("transport", transport) ]
            @ compile_fields s
            @ session_counter_fields (Session.counters t.t_session))
          ~body (),
        `Continue )
  | Shutdown ->
      (ok ~fields:[ ("stopping", "1") ] (), `Stop)
  | Analyze { an_name; an_source; _ } ->
      (handle_analyze t ~limits ~name:an_name ~source:an_source, `Continue)
  | Eval { ev_name; ev_source; ev_function; ev_params; _ } ->
      ( handle_eval t ~limits ~name:ev_name ~source:ev_source
          ~fname:ev_function ~params:ev_params,
        `Continue )
  | Sweep _ ->
      (* sweeps stream multiple frames and are scheduled by the event
         loop itself (see [process_payload]); they cannot be answered
         by this single-response path *)
      ( error_response ~code:"bad-request"
          "sweep is only served by the event loop",
        `Continue )
  | Watch { wt_path; wt_source } -> (
      match
        if wt_source <> "" then Ok wt_source else read_path_file wt_path
      with
      | Error m -> (error_response ~code:"io" m, `Continue)
      | Ok text -> (
          match Session.watch t.t_session ~path:wt_path text with
          | Error d -> (diag_response d, `Continue)
          | Ok info ->
              ( ok
                  ~fields:
                    [
                      ("path", info.Session.in_path);
                      ( "functions",
                        string_of_int (List.length info.Session.in_functions)
                      );
                    ]
                  ~body:(Json.to_string (Json.of_model info.Session.in_model))
                  (),
                `Continue )))
  | Forget { fg_path } ->
      ( ok
          ~fields:
            [
              ("path", fg_path);
              ( "forgotten",
                if Session.forget t.t_session ~path:fg_path then "1" else "0"
              );
            ]
          (),
        `Continue )
  | Reanalyze _ ->
      (* reanalyze streams one frame per invalidated function plus a
         terminal frame; like sweep it is scheduled by the event loop *)
      ( error_response ~code:"bad-request"
          "reanalyze is only served by the event loop",
        `Continue )

(* ---------- connections: per-connection state machines ---------- *)

(* One queued write.  Responses are enqueued as chunks so the wire
   fault sites can be expressed as queue transformations: a delayed
   payload is a chunk with [wc_not_before] in the future, a truncated
   write is half a frame followed by nothing, a disconnect is half a
   frame with [wc_shutdown_after] set. *)
type wchunk = {
  wc_data : string;
  mutable wc_off : int;
  wc_not_before : float;  (** 0.0 = immediately *)
  wc_shutdown_after : bool;
}

type rstage = Header | Body of int  (* declared payload length *)

type conn = {
  cn_fd : Unix.file_descr;
  cn_transport : string;
  (* exact-length frame assembly: [cn_want] bytes finish the stage *)
  mutable cn_buf : Bytes.t;
  mutable cn_have : int;
  mutable cn_want : int;
  mutable cn_stage : rstage;
  cn_wq : wchunk Queue.t;
  mutable cn_pending : int;  (* dispatched worker jobs unanswered *)
  mutable cn_serial_busy : bool;  (* an untagged request is in a worker *)
  mutable cn_closing : bool;  (* stop reading; close once settled *)
  mutable cn_poisoned : bool;  (* write path is gone: drop writes *)
  mutable cn_dead : bool;  (* descriptor closed *)
  mutable cn_last_rx : float;  (* last byte received (idle reaping) *)
  mutable cn_wstall : float;  (* last write progress (stall reaping) *)
}

(* ---------- worker pool ---------- *)

(* Shared bookkeeping for one in-flight sweep: every binding of the
   chunk is its own pool job, and the completion that brings [sx_done]
   to [sx_total] emits the terminal [sweep-done] frame.  All mutation
   happens on the event-loop thread (process_completions), so plain
   mutable fields suffice. *)
type sweep_ctx = {
  sx_id : string;  (* the sweep's id= tag, echoed on every frame *)
  sx_total : int;
  mutable sx_done : int;
  mutable sx_ok : int;
  mutable sx_failed : int;
}

(* Shared bookkeeping for one in-flight reanalyze: planning and the
   final commit run on the event-loop thread; each invalidated
   function's recomputation is its own pool job.  Like [sweep_ctx],
   all mutation of the counters and accumulated results happens on
   the loop thread (process_completions). *)
type reanalyze_ctx = {
  rz_id : string;  (* the reanalyze's id= tag, echoed on every frame *)
  rz_plan : Session.plan;
  rz_total : int;
  mutable rz_done : int;
  mutable rz_ok : int;
  mutable rz_failed : int;
  mutable rz_results : (Session.inval * (Metric_gen.part, Diag.t) result) list;
      (* accumulated in reverse completion order; commit re-sorts
         nothing — Session.commit keys by (file, function) *)
}

type jobwork =
  | Wreq of request
  | Wsession of request
      (* watch/forget: single-response session verbs, serialized
         daemon-wide by the event loop's session queue *)
  | Wbinding of {
      wb_ctx : sweep_ctx;
      wb_index : int;
      wb_name : string;
      wb_source : string;
      wb_function : string;
      wb_params : (string * int) list;
    }
  | Wrecompute of {
      wr_ctx : reanalyze_ctx;
      wr_index : int;
      wr_inval : Session.inval;
      mutable wr_result : (Metric_gen.part, Diag.t) result option;
          (* written by the worker before the job lands on po_done,
             read by the loop after it is popped — the done-queue
             mutex orders the two *)
    }

(* A dispatched request.  The budget is clamped at admission and
   rides with the job: workers are interchangeable and hold no
   per-request state between jobs, so the pool — not the request
   rate — bounds every per-thread structure downstream. *)
type job = {
  jb_conn : conn;
  jb_id : string option;  (* None = untagged (strictly serial) *)
  jb_work : jobwork;
  jb_limits : Limits.t;
}

type pool = {
  po_mu : Mutex.t;
  po_cv : Condition.t;
  po_jobs : job Queue.t;
  mutable po_stop : bool;
  po_done_mu : Mutex.t;
  po_done : (job * response * [ `Continue | `Stop ]) Queue.t;
  mutable po_closed : bool;  (* wake pipe closed; stop writing to it *)
  po_wake_w : Unix.file_descr;
}

let count t resp =
  if resp.rs_status = "ok" then Atomic.incr t.t_served
  else Atomic.incr t.t_failed

let worker_loop t pool =
  let wake = Bytes.make 1 'c' in
  let rec next () =
    Mutex.lock pool.po_mu;
    while Queue.is_empty pool.po_jobs && not pool.po_stop do
      Condition.wait pool.po_cv pool.po_mu
    done;
    match Queue.take_opt pool.po_jobs with
    | None -> Mutex.unlock pool.po_mu (* stopping, queue drained *)
    | Some job ->
        Mutex.unlock pool.po_mu;
        (* one hostile request must never take the daemon down:
           whatever escapes becomes a structured error frame *)
        let resp, after =
          match job.jb_work with
          | Wreq req | Wsession req -> (
              try
                handle_request t ~transport:job.jb_conn.cn_transport
                  ~limits:job.jb_limits req
              with e -> (diag_response (Diag.of_exn e), `Continue))
          | Wrecompute w ->
              let inv = w.wr_inval in
              let result =
                try Session.recompute t.t_session w.wr_ctx.rz_plan inv
                with e -> Error (Diag.of_exn e)
              in
              w.wr_result <- Some result;
              (* one streamed frame per invalidated function: the
                 routing fields name the function and why it was
                 invalidated; the body carries its recomputed part
                 summary (the final python needs the assembled model
                 and rides on the terminal frame) *)
              let tag =
                [
                  ("binding", string_of_int w.wr_index);
                  ("file", inv.Session.iv_file);
                  ("function", inv.Session.iv_func);
                  ("reason", Session.reason_to_string inv.Session.iv_reason);
                ]
              in
              let resp =
                match result with
                | Ok part ->
                    ok ~fields:tag
                      ~body:
                        (Json.to_string
                           (Json.Obj
                              [
                                ("file", Json.Str inv.Session.iv_file);
                                ("function", Json.Str inv.Session.iv_func);
                                ( "reason",
                                  Json.Str
                                    (Session.reason_to_string
                                       inv.Session.iv_reason) );
                                ( "source_params",
                                  Json.Arr
                                    (List.map
                                       (fun s -> Json.Str s)
                                       part.Metric_gen.fp_source_params) );
                                ("arity", Json.Int part.Metric_gen.fp_arity);
                                ( "class",
                                  match part.Metric_gen.fp_class with
                                  | None -> Json.Null
                                  | Some c -> Json.Str c );
                                ( "warnings",
                                  Json.Arr
                                    (List.map
                                       (fun s -> Json.Str s)
                                       part.Metric_gen.fp_warnings) );
                              ]))
                      ()
                | Error d ->
                    let base = diag_response d in
                    { base with rs_fields = tag @ base.rs_fields }
              in
              (resp, `Continue)
          | Wbinding b ->
              let resp =
                try
                  handle_eval t ~limits:job.jb_limits ~name:b.wb_name
                    ~source:b.wb_source ~fname:b.wb_function
                    ~params:b.wb_params
                with e -> diag_response (Diag.of_exn e)
              in
              (* the binding index is how the coordinator knows which
                 evaluation this frame answers *)
              ( {
                  resp with
                  rs_fields =
                    ("binding", string_of_int b.wb_index) :: resp.rs_fields;
                },
                `Continue )
        in
        count t resp;
        Mutex.lock pool.po_done_mu;
        Queue.add (job, resp, after) pool.po_done;
        (* wake the event loop; a full pipe already has wake bytes in
           it, so a failed write is never a lost wakeup *)
        if not pool.po_closed then (
          try ignore (Unix.write pool.po_wake_w wake 0 1)
          with Unix.Unix_error _ -> ());
        Mutex.unlock pool.po_done_mu;
        next ()
  in
  next ()

(* ---------- load shedding ---------- *)

let shed t fd =
  Atomic.incr t.t_shed;
  let payload = encode_response overloaded_response in
  let payload =
    match t.t_cfg.cfg_auth_secret with
    | Some secret -> Auth.seal ~secret payload
    | None -> payload
  in
  (* the frame is far smaller than a fresh socket buffer, so this
     cannot block even on a client that never reads *)
  (try write_frame fd payload
   with Unix.Unix_error _ | Faults.Injected _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec bump_hwm hwm v =
  let cur = Atomic.get hwm in
  if v > cur && not (Atomic.compare_and_set hwm cur v) then bump_hwm hwm v

(* ---------- the event loop ---------- *)

let serve t =
  let cfg = t.t_cfg in
  let max_pipe = max 1 cfg.cfg_max_pipeline in
  let idle_s =
    if cfg.cfg_idle_timeout_ms > 0 then
      Some (float_of_int cfg.cfg_idle_timeout_ms /. 1000.0)
    else None
  in
  List.iter (fun (fd, _) -> Unix.set_nonblock fd) t.t_listen;
  (try Unix.set_nonblock t.t_stop_r with Unix.Unix_error _ -> ());
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let pool =
    {
      po_mu = Mutex.create ();
      po_cv = Condition.create ();
      po_jobs = Queue.create ();
      po_stop = false;
      po_done_mu = Mutex.create ();
      po_done = Queue.create ();
      po_closed = false;
      po_wake_w = wake_w;
    }
  in
  for _ = 1 to max 1 cfg.cfg_workers do
    ignore (Thread.create (worker_loop t) pool)
  done;
  Atomic.set t.t_ready true;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let live () = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  let close_conn conn =
    if not conn.cn_dead then begin
      conn.cn_dead <- true;
      Hashtbl.remove conns conn.cn_fd;
      (try Unix.close conn.cn_fd with Unix.Unix_error _ -> ());
      Atomic.decr t.t_inflight
    end
  in
  let maybe_close conn =
    if
      (not conn.cn_dead) && conn.cn_closing && conn.cn_pending = 0
      && Queue.is_empty conn.cn_wq
    then close_conn conn
  in
  let rec pump_writes conn =
    if not conn.cn_dead then
      match Queue.peek_opt conn.cn_wq with
      | None -> maybe_close conn
      | Some c ->
          if c.wc_not_before > Unix.gettimeofday () then ()
          else begin
            match
              Unix.write_substring conn.cn_fd c.wc_data c.wc_off
                (String.length c.wc_data - c.wc_off)
            with
            | n ->
                conn.cn_wstall <- Unix.gettimeofday ();
                c.wc_off <- c.wc_off + n;
                if c.wc_off = String.length c.wc_data then begin
                  ignore (Queue.pop conn.cn_wq);
                  if c.wc_shutdown_after then begin
                    (try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL
                     with Unix.Unix_error _ -> ());
                    Queue.clear conn.cn_wq
                  end;
                  pump_writes conn
                end
                (* partial write: the socket buffer is full; poll for
                   writability *)
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error (EINTR, _, _) -> pump_writes conn
            | exception Unix.Unix_error (_, _, _) ->
                (* the peer is gone (EPIPE/ECONNRESET/...): a vanished
                   client is its own problem *)
                Queue.clear conn.cn_wq;
                conn.cn_poisoned <- true;
                conn.cn_closing <- true;
                maybe_close conn
          end
  in
  let enqueue_payload conn payload =
    if (not conn.cn_dead) && not conn.cn_poisoned then begin
      (* a secret-bearing daemon seals everything it sends, so clients
         can authenticate responses symmetrically; without a secret the
         bytes are identical to every earlier release *)
      let payload =
        match cfg.cfg_auth_secret with
        | Some secret -> Auth.seal ~secret payload
        | None -> payload
      in
      let data = frame payload in
      let chunk ?(not_before = 0.0) ?(shutdown_after = false) s =
        Queue.add
          {
            wc_data = s;
            wc_off = 0;
            wc_not_before = not_before;
            wc_shutdown_after = shutdown_after;
          }
          conn.cn_wq
      in
      let faults = cfg.cfg_faults in
      (* same sites, same subjects, same order as the blocking
         write_frame: fault schedules are identical across server
         implementations *)
      let subject = Digest.to_hex (Digest.string payload) in
      let fires p site =
        match faults with
        | Some f -> Faults.fires f ~p:(p f) ~site ~subject
        | None -> false
      in
      if Queue.is_empty conn.cn_wq then
        conn.cn_wstall <- Unix.gettimeofday ();
      if fires (fun f -> f.Faults.kill_p) "net_kill" then begin
        (* abrupt death between frames: this frame — and anything still
           queued behind the kernel's back — never reaches the peer,
           exactly as a SIGKILLed daemon would behave.  Same site,
           subject and ordering as the blocking write_frame. *)
        Queue.clear conn.cn_wq;
        (try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        conn.cn_poisoned <- true;
        conn.cn_closing <- true
      end
      else if fires (fun f -> f.Faults.disconnect_p) "net_disconnect" then begin
        (* the peer vanishes mid-frame: half a frame, then a hard
           close *)
        chunk ~shutdown_after:true
          (String.sub data 0 (String.length data / 2));
        conn.cn_poisoned <- true;
        conn.cn_closing <- true
      end
      else if fires (fun f -> f.Faults.net_write_p) "net_write" then begin
        (* a dropped/short write: the frame just stops *)
        chunk (String.sub data 0 (String.length data / 2));
        conn.cn_poisoned <- true;
        conn.cn_closing <- true
      end
      else if
        (match faults with Some f -> f.Faults.slow_ms > 0 | None -> false)
        && fires (fun f -> f.Faults.slow_p) "net_slow"
      then begin
        (* a slow peer: the header arrives, the payload dribbles in
           later — without parking a thread for the interval *)
        let slow_ms =
          match faults with Some f -> f.Faults.slow_ms | None -> 0
        in
        chunk (String.sub data 0 header_len);
        chunk
          ~not_before:(Unix.gettimeofday () +. (float_of_int slow_ms /. 1000.0))
          (String.sub data header_len (String.length data - header_len))
      end
      else chunk data;
      pump_writes conn
    end
  in
  let with_id id resp =
    { resp with rs_fields = ("id", id) :: resp.rs_fields }
  in
  let respond conn id resp =
    let resp = match id with Some i -> with_id i resp | None -> resp in
    enqueue_payload conn (encode_response resp)
  in
  let handle_inline conn req =
    try
      handle_request t ~transport:conn.cn_transport ~limits:cfg.cfg_limits req
    with e -> (diag_response (Diag.of_exn e), `Continue)
  in
  let enqueue_job job =
    Mutex.lock pool.po_mu;
    Queue.add job pool.po_jobs;
    Condition.signal pool.po_cv;
    Mutex.unlock pool.po_mu
  in
  let submit conn id req =
    conn.cn_pending <- conn.cn_pending + 1;
    (match id with None -> conn.cn_serial_busy <- true | Some _ -> ());
    enqueue_job
      { jb_conn = conn; jb_id = id; jb_work = Wreq req;
        jb_limits = request_limits cfg req }
  in
  let sweep_done_response ctx =
    ok
      ~fields:
        [
          ("sweep-done", "1");
          ("bindings", string_of_int ctx.sx_total);
          ("ok", string_of_int ctx.sx_ok);
          ("failed", string_of_int ctx.sx_failed);
        ]
      ()
  in
  (* A whole sweep chunk counts as ONE pending unit on its connection
     (decremented when the terminal frame is emitted): admission stays
     bounded by [cfg_max_pipeline] sweeps, but the reader keeps
     consuming — so a heartbeat ping sent while a long chunk runs is
     answered inline immediately, which is what makes client-side
     liveness detection work.  The analysis pool still bounds the
     actual concurrency; per-binding jobs just queue. *)
  let submit_sweep conn id sw_sources sw_bindings limits =
    let ctx =
      {
        sx_id = id;
        sx_total = List.length sw_bindings;
        sx_done = 0;
        sx_ok = 0;
        sx_failed = 0;
      }
    in
    if ctx.sx_total = 0 then begin
      let resp = sweep_done_response ctx in
      count t resp;
      respond conn (Some id) resp
    end
    else begin
      conn.cn_pending <- conn.cn_pending + 1;
      List.iter
        (fun sb ->
          enqueue_job
            {
              jb_conn = conn;
              jb_id = Some id;
              jb_work =
                Wbinding
                  {
                    wb_ctx = ctx;
                    wb_index = sb.sb_index;
                    wb_name = sb.sb_source;
                    wb_source = List.assoc sb.sb_source sw_sources;
                    wb_function = sb.sb_function;
                    wb_params = sb.sb_params;
                  };
              jb_limits = limits;
            })
        sw_bindings
    end
  in
  (* Session verbs (watch / reanalyze / forget) serialize daemon-wide:
     one at a time, FIFO across connections, so pipelined edits always
     observe a consistent session snapshot and two overlapping
     reanalyzes can never interleave their commits.  Each op counts as
     ONE pending unit on its connection (exactly like a sweep chunk);
     the reader keeps consuming, so heartbeats stay answered while a
     reanalyze streams.  A reanalyze's per-function recomputations run
     concurrently on the analysis pool — only the verbs themselves are
     serialized. *)
  let session_q : (conn * string option * request) Queue.t =
    Queue.create ()
  in
  let session_busy = ref false in
  let reanalyze_done_response ctx (upd : Session.update) =
    ok
      ~fields:
        [
          ("reanalyze-done", "1");
          ("path", upd.Session.up_path);
          ("invalidated", string_of_int (List.length upd.Session.up_invalidated));
          ("recomputed", string_of_int ctx.rz_ok);
          ("failed", string_of_int ctx.rz_failed);
          ("cross-files", string_of_int (List.length upd.Session.up_cross_files));
          ("deleted", string_of_int (List.length upd.Session.up_deleted));
          ("clean", if upd.Session.up_clean then "1" else "0");
        ]
      ~body:
        (Json.to_string
           (Json.Arr
              (List.map
                 (fun (p, m, py) ->
                   Json.Obj
                     [
                       ("file", Json.Str p);
                       ( "functions",
                         Json.Int (List.length m.Model_ir.functions) );
                       ( "python_digest",
                         Json.Str (Digest.to_hex (Digest.string py)) );
                       ("python", Json.Str py);
                     ])
                 upd.Session.up_models)))
      ()
  in
  let rec pump_session () =
    if (not !session_busy) && not (Queue.is_empty session_q) then begin
      let conn, id, req = Queue.pop session_q in
      session_busy := true;
      if conn.cn_dead then begin
        (* the submitter hung up before its turn: release the slot and
           let the next queued op run *)
        session_busy := false;
        pump_session ()
      end
      else
        match req with
        | Reanalyze { rz_path; rz_source } ->
            start_reanalyze conn id rz_path rz_source
        | req ->
            enqueue_job
              {
                jb_conn = conn;
                jb_id = id;
                jb_work = Wsession req;
                jb_limits = request_limits cfg req;
              }
    end
  and finish_session () =
    session_busy := false;
    pump_session ()
  (* answer a session op from the loop thread itself (plan failures,
     clean edits): settle the connection accounting that submission
     charged, then release the session slot *)
  and answer_session conn id resp =
    count t resp;
    conn.cn_pending <- conn.cn_pending - 1;
    (match id with None -> conn.cn_serial_busy <- false | Some _ -> ());
    if not conn.cn_dead then respond conn id resp;
    maybe_close conn;
    finish_session ()
  and start_reanalyze conn id path source =
    match if source <> "" then Ok source else read_path_file path with
    | Error m -> answer_session conn id (error_response ~code:"io" m)
    | Ok text -> (
        match Session.plan t.t_session ~path text with
        | Error d -> answer_session conn id (diag_response d)
        | Ok plan -> (
            match Session.plan_invalidated plan with
            | [] ->
                (* nothing to recompute — commit still refreshes the
                   edited file's tables (and handles deletions) *)
                let upd = Session.commit t.t_session plan [] in
                let ctx =
                  {
                    rz_id = Option.value id ~default:"";
                    rz_plan = plan;
                    rz_total = 0;
                    rz_done = 0;
                    rz_ok = 0;
                    rz_failed = 0;
                    rz_results = [];
                  }
                in
                answer_session conn id (reanalyze_done_response ctx upd)
            | invals ->
                let ctx =
                  {
                    rz_id = Option.value id ~default:"";
                    rz_plan = plan;
                    rz_total = List.length invals;
                    rz_done = 0;
                    rz_ok = 0;
                    rz_failed = 0;
                    rz_results = [];
                  }
                in
                List.iteri
                  (fun i inv ->
                    enqueue_job
                      {
                        jb_conn = conn;
                        jb_id = id;
                        jb_work =
                          Wrecompute
                            {
                              wr_ctx = ctx;
                              wr_index = i;
                              wr_inval = inv;
                              wr_result = None;
                            };
                        jb_limits = cfg.cfg_limits;
                      })
                  invals))
  in
  let submit_session conn id req =
    conn.cn_pending <- conn.cn_pending + 1;
    (match id with None -> conn.cn_serial_busy <- true | Some _ -> ());
    Queue.add (conn, id, req) session_q;
    pump_session ()
  in
  let process_request conn payload =
    let id = payload_id payload in
    match parse_request payload with
    | Error m ->
        let resp = error_response ~code:"bad-request" m in
        count t resp;
        respond conn id resp
    | Ok req -> (
        match (id, req) with
        | Some i, Shutdown ->
            (* exactly-once doesn't mix with concurrency: shutdown is
               answered in-line even when tagged *)
            let resp, _ = handle_inline conn Shutdown in
            count t resp;
            respond conn (Some i) resp;
            stop t
        | _, (Ping | Stats | Health) | None, Shutdown ->
            (* cheap verbs are answered in the loop itself: a ping
               never waits behind a stalled analysis *)
            let resp, after = handle_inline conn req in
            count t resp;
            respond conn id resp;
            (match after with `Stop -> stop t | `Continue -> ())
        | _, (Analyze _ | Eval _) -> submit conn id req
        | _, (Watch _ | Forget _) | Some _, Reanalyze _ ->
            submit_session conn id req
        | None, Reanalyze _ ->
            let resp =
              error_response ~code:"bad-request"
                "reanalyze requires an id= field (its responses stream)"
            in
            count t resp;
            respond conn None resp
        | Some i, Sweep { sw_sources; sw_bindings; _ } ->
            submit_sweep conn i sw_sources sw_bindings
              (request_limits cfg req)
        | None, Sweep _ ->
            (* streamed responses are meaningless without a tag to
               re-associate them *)
            let resp =
              error_response ~code:"bad-request"
                "sweep requires an id= field (its responses stream)"
            in
            count t resp;
            respond conn None resp)
  in
  let process_payload conn payload =
    match cfg.cfg_auth_secret with
    | None -> process_request conn payload
    | Some secret -> (
        match Auth.verify ~secret payload with
        | `Ok stripped -> process_request conn stripped
        | `Missing when conn.cn_transport <> "tcp" ->
            (* unix sockets are already gated by filesystem permission;
               the MAC is optional there (but still verified when
               present — see the `Bad arm) *)
            process_request conn payload
        | (`Missing | `Bad) as why ->
            (* an unauthenticated frame never reaches the request
               parser or the analysis pool: answer with a structured
               error and drop the connection *)
            Atomic.incr t.t_proto_err;
            let resp =
              error_response ~code:"auth"
                (match why with
                | `Missing -> "frame authentication required (no auth= field)"
                | `Bad -> "frame authentication failed (bad MAC)")
            in
            count t resp;
            respond conn (payload_id payload) resp;
            conn.cn_closing <- true;
            maybe_close conn)
  in
  let want_read conn =
    (not conn.cn_dead) && (not conn.cn_closing) && (not conn.cn_poisoned)
    && (not conn.cn_serial_busy)
    && conn.cn_pending < max_pipe
  in
  let frame_err conn e =
    (* the stream position can no longer be trusted: answer if
       possible, then drop the connection.  A checksum mismatch is in
       this class too — the digest covers only the payload, so a
       corrupted length prefix also surfaces as Bad_checksum, and then
       the boundary we read at was never real *)
    Atomic.incr t.t_proto_err;
    enqueue_payload conn
      (encode_response
         (error_response ~code:"bad-frame" (frame_error_to_string e)));
    conn.cn_closing <- true;
    maybe_close conn
  in
  let eof conn =
    match conn.cn_stage with
    | Header when conn.cn_have = 0 ->
        (* a finished client: just let the connection go *)
        conn.cn_closing <- true;
        maybe_close conn
    | _ -> frame_err conn Truncated
  in
  let pump_reads conn =
    (* cap the frames handled per readiness event so one firehose
       connection cannot starve the rest of the loop *)
    let budget = ref 64 in
    let continue = ref true in
    while !continue && want_read conn && !budget > 0 do
      match
        Unix.read conn.cn_fd conn.cn_buf conn.cn_have
          (conn.cn_want - conn.cn_have)
      with
      | 0 ->
          continue := false;
          eof conn
      | r ->
          conn.cn_have <- conn.cn_have + r;
          conn.cn_last_rx <- Unix.gettimeofday ();
          if conn.cn_have = conn.cn_want then begin
            match conn.cn_stage with
            | Header ->
                if
                  Bytes.sub_string conn.cn_buf 0 (String.length magic)
                  <> magic
                then begin
                  continue := false;
                  frame_err conn Bad_magic
                end
                else
                  let len =
                    of_be32
                      (Bytes.sub_string conn.cn_buf 0 header_len)
                      (String.length magic)
                  in
                  if len > cfg.cfg_max_frame_bytes then begin
                    continue := false;
                    frame_err conn (Oversized len)
                  end
                  else begin
                    conn.cn_stage <- Body len;
                    conn.cn_want <- digest_len + len;
                    conn.cn_have <- 0;
                    if Bytes.length conn.cn_buf < conn.cn_want then
                      conn.cn_buf <- Bytes.create conn.cn_want
                  end
            | Body len ->
                let digest = Bytes.sub_string conn.cn_buf 0 digest_len in
                let payload =
                  Bytes.sub_string conn.cn_buf digest_len len
                in
                conn.cn_stage <- Header;
                conn.cn_want <- header_len;
                conn.cn_have <- 0;
                (* do not let one huge frame pin its buffer forever *)
                if Bytes.length conn.cn_buf > 65536 then
                  conn.cn_buf <- Bytes.create header_len;
                decr budget;
                if Digest.string payload <> digest then begin
                  continue := false;
                  frame_err conn Bad_checksum
                end
                else process_payload conn payload
          end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
          continue := false;
          eof conn
      | exception Unix.Unix_error (_, _, _) ->
          continue := false;
          Queue.clear conn.cn_wq;
          conn.cn_poisoned <- true;
          conn.cn_closing <- true;
          maybe_close conn
    done
  in
  let accept_backoff = ref false in
  let accept_ready (lfd, ep) =
    let rec go () =
      match Unix.accept ~cloexec:true lfd with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> go ()
      | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
          (* out of descriptors: leave the connection queued and retry
             after a beat instead of spinning on a readable listener *)
          accept_backoff := true
      | exception Unix.Unix_error (_, _, _) -> ()
      | fd, _ ->
          if Atomic.get t.t_stopping then (
            try Unix.close fd with Unix.Unix_error _ -> ())
          else if Atomic.get t.t_inflight >= cfg.cfg_max_inflight then begin
            shed t fd;
            go ()
          end
          else begin
            (match ep with
            | Endpoint.Tcp _ -> (
                (* frames are small and latency-sensitive; Nagle +
                   delayed ack would add round trips to every
                   pipelined response *)
                try Unix.setsockopt fd Unix.TCP_NODELAY true
                with Unix.Unix_error _ -> ())
            | Endpoint.Unix_sock _ -> ());
            Unix.set_nonblock fd;
            let n = Atomic.fetch_and_add t.t_inflight 1 + 1 in
            bump_hwm t.t_hwm n;
            let now = Unix.gettimeofday () in
            Hashtbl.replace conns fd
              {
                cn_fd = fd;
                cn_transport = Endpoint.transport ep;
                cn_buf = Bytes.create header_len;
                cn_have = 0;
                cn_want = header_len;
                cn_stage = Header;
                cn_wq = Queue.create ();
                cn_pending = 0;
                cn_serial_busy = false;
                cn_closing = false;
                cn_poisoned = false;
                cn_dead = false;
                cn_last_rx = now;
                cn_wstall = now;
              };
            go ()
          end
    in
    go ()
  in
  let process_completions () =
    let items =
      Mutex.lock pool.po_done_mu;
      let acc = Queue.fold (fun acc x -> x :: acc) [] pool.po_done in
      Queue.clear pool.po_done;
      Mutex.unlock pool.po_done_mu;
      List.rev acc
    in
    List.iter
      (fun (job, resp, after) ->
        let conn = job.jb_conn in
        (match job.jb_work with
        | Wreq _ ->
            conn.cn_pending <- conn.cn_pending - 1;
            (match job.jb_id with
            | None -> conn.cn_serial_busy <- false
            | Some _ -> ());
            if not conn.cn_dead then respond conn job.jb_id resp
        | Wsession _ ->
            conn.cn_pending <- conn.cn_pending - 1;
            (match job.jb_id with
            | None -> conn.cn_serial_busy <- false
            | Some _ -> ());
            if not conn.cn_dead then respond conn job.jb_id resp;
            (* the daemon-wide session slot frees only when the op's
               single response has been produced *)
            finish_session ()
        | Wrecompute w ->
            let ctx = w.wr_ctx in
            if not conn.cn_dead then respond conn job.jb_id resp;
            let result =
              match w.wr_result with
              | Some r -> r
              | None ->
                  Error
                    (Diag.make Diag.Driver Diag.Internal_error
                       "recompute finished without a result")
            in
            (match result with
            | Ok _ -> ctx.rz_ok <- ctx.rz_ok + 1
            | Error _ -> ctx.rz_failed <- ctx.rz_failed + 1);
            ctx.rz_results <- (w.wr_inval, result) :: ctx.rz_results;
            ctx.rz_done <- ctx.rz_done + 1;
            if ctx.rz_done = ctx.rz_total then begin
              (* last recomputation landed: commit (reassemble every
                 touched model) and emit the terminal frame *)
              let upd =
                Session.commit t.t_session ctx.rz_plan
                  (List.rev ctx.rz_results)
              in
              conn.cn_pending <- conn.cn_pending - 1;
              let term = reanalyze_done_response ctx upd in
              count t term;
              if not conn.cn_dead then respond conn (Some ctx.rz_id) term;
              finish_session ()
            end
        | Wbinding { wb_ctx = ctx; _ } ->
            (* the sweep holds its single pending unit until the last
               binding lands; only then does the terminal frame go out
               and the unit release *)
            if not conn.cn_dead then respond conn job.jb_id resp;
            if resp.rs_status = "ok" then ctx.sx_ok <- ctx.sx_ok + 1
            else ctx.sx_failed <- ctx.sx_failed + 1;
            ctx.sx_done <- ctx.sx_done + 1;
            if ctx.sx_done = ctx.sx_total then begin
              conn.cn_pending <- conn.cn_pending - 1;
              if not conn.cn_dead then
                respond conn (Some ctx.sx_id) (sweep_done_response ctx)
            end);
        (match after with `Stop -> stop t | `Continue -> ());
        maybe_close conn)
      items
  in
  let drained = ref false in
  let drain_deadline = ref infinity in
  let begin_drain () =
    if not !drained then begin
      drained := true;
      Atomic.set t.t_stopping true;
      (* no new admissions *)
      List.iter
        (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.t_listen;
      List.iter
        (function
          | Endpoint.Unix_sock p -> (
              try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
          | Endpoint.Tcp _ -> ())
        (bound_endpoints t);
      drain_deadline :=
        Unix.gettimeofday () +. (float_of_int cfg.cfg_drain_ms /. 1000.0);
      (* serve whatever was already on the wire, then stop reading:
         in-flight requests get the full drain window to finish *)
      List.iter (fun c -> if not c.cn_dead then pump_reads c) (live ());
      List.iter
        (fun c ->
          if not c.cn_dead then begin
            c.cn_closing <- true;
            maybe_close c
          end)
        (live ())
    end
  in
  let reap now =
    match idle_s with
    | None -> ()
    | Some idle ->
        let victims =
          Hashtbl.fold
            (fun _ c acc ->
              if c.cn_dead then acc
              else
                match Queue.peek_opt c.cn_wq with
                | Some head ->
                    (* a wedged client that stopped reading; a chunk
                       the server itself delayed does not count *)
                    if
                      head.wc_not_before <= now
                      && now -. c.cn_wstall >= idle
                    then c :: acc
                    else acc
                | None ->
                    (* idle only counts when nothing is in flight: a
                       pipelining client quietly waiting for its
                       responses is not a slow-loris *)
                    if
                      c.cn_pending = 0 && (not c.cn_closing)
                      && now -. c.cn_last_rx >= idle
                    then c :: acc
                    else acc)
            conns []
        in
        List.iter close_conn victims
  in
  let next_timeout now =
    let dl = ref (if !drained then !drain_deadline else infinity) in
    let consider x = if x < !dl then dl := x in
    Hashtbl.iter
      (fun _ c ->
        if not c.cn_dead then
          match Queue.peek_opt c.cn_wq with
          | Some head ->
              if head.wc_not_before > now then consider head.wc_not_before;
              (match idle_s with
              | Some idle -> consider (c.cn_wstall +. idle)
              | None -> ())
          | None -> (
              match idle_s with
              | Some idle when c.cn_pending = 0 && not c.cn_closing ->
                  consider (c.cn_last_rx +. idle)
              | _ -> ()))
      conns;
    let ms =
      if !dl = infinity then -1
      else max 0 (int_of_float (ceil ((!dl -. now) *. 1000.0)))
    in
    if !accept_backoff then if ms < 0 then 50 else min ms 50 else ms
  in
  let pipe_buf = Bytes.create 512 in
  let drain_pipe fd =
    let rec go () =
      match Unix.read fd pipe_buf 0 (Bytes.length pipe_buf) with
      | n when n = Bytes.length pipe_buf -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()
  in
  let running = ref true in
  while !running do
    let now = Unix.gettimeofday () in
    if Atomic.get t.t_stopping then begin_drain ();
    process_completions ();
    reap now;
    if !drained && now >= !drain_deadline then
      (* hard deadline passed: force the stragglers shut *)
      List.iter
        (fun c ->
          (try Unix.shutdown c.cn_fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ());
          close_conn c)
        (live ());
    if !drained && Hashtbl.length conns = 0 then running := false
    else begin
      let rd = ref [ t.t_stop_r; wake_r ] in
      if not (Atomic.get t.t_stopping) then
        List.iter (fun (fd, _) -> rd := fd :: !rd) t.t_listen;
      let wr = ref [] in
      Hashtbl.iter
        (fun fd c ->
          if want_read c then rd := fd :: !rd;
          match Queue.peek_opt c.cn_wq with
          | Some head when head.wc_not_before <= now -> wr := fd :: !wr
          | _ -> ())
        conns;
      let timeout_ms = next_timeout now in
      accept_backoff := false;
      let readable, writable =
        Poller.wait ~read:!rd ~write:!wr ~timeout_ms ()
      in
      List.iter
        (fun fd ->
          if fd = t.t_stop_r then begin
            drain_pipe t.t_stop_r;
            begin_drain ()
          end
          else if fd = wake_r then drain_pipe wake_r
          else
            match List.assoc_opt fd t.t_listen with
            | Some ep -> accept_ready (fd, ep)
            | None -> (
                match Hashtbl.find_opt conns fd with
                | Some c -> pump_reads c
                | None -> ()))
        readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | Some c -> pump_writes c
          | None -> ())
        writable
    end
  done;
  (* release the pool: idle workers exit; one stuck mid-analysis is
     abandoned, exactly as the drain abandoned its connection *)
  Mutex.lock pool.po_mu;
  pool.po_stop <- true;
  Condition.broadcast pool.po_cv;
  Mutex.unlock pool.po_mu;
  Mutex.lock pool.po_done_mu;
  pool.po_closed <- true;
  Mutex.unlock pool.po_done_mu;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  (try Unix.close t.t_stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.t_stop_w with Unix.Unix_error _ -> ());
  stats t

(* ---------- client helpers ---------- *)

let connect ?io_timeout_ms path =
  Endpoint.connect ?io_timeout_ms (Endpoint.Unix_sock path)

let roundtrip ?faults ?max_bytes ?auth_secret fd req =
  let payload = encode_request req in
  let payload =
    match auth_secret with
    | Some secret -> Auth.seal ~secret payload
    | None -> payload
  in
  match write_frame ?faults fd payload with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("write: " ^ Unix.error_message e)
  | exception Faults.Injected site -> Error ("injected: " ^ site)
  | () -> (
      match read_frame ?max_bytes fd with
      | Error e -> Error (frame_error_to_string e)
      | Ok payload -> (
          match auth_secret with
          | None -> parse_response payload
          | Some secret -> (
              (* a secret-bearing daemon seals every response; accept
                 nothing less than a valid MAC *)
              match Auth.verify ~secret payload with
              | `Ok stripped -> parse_response stripped
              | `Missing | `Bad -> Error "response failed authentication")))

let wait_ready ?(timeout_s = 5.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let ready =
      (* each probe is individually bounded so a half-up daemon cannot
         park one past the caller's overall deadline *)
      match connect ~io_timeout_ms:1000 path with
      | exception (Unix.Unix_error _ | Sys_error _) -> false
      | fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match roundtrip fd Ping with
              | Ok { rs_status = "ok"; _ } -> true
              | _ -> false)
    in
    if ready then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()
