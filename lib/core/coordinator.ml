(* Sweep coordination: chunked dispatch, per-binding completion
   tracking, shard re-dispatch.  See coordinator.mli for the contract;
   the load-bearing invariant here is that every unfinished binding is
   either on [sh_queue] or held by a live worker, and a worker
   re-queues its leftovers *before* it retires — so short of the whole
   fleet dying, nothing is stranded.  Results are recorded first-wins
   under the one mutex; everything a worker learns after its
   connection is closed is a counted duplicate, never a second answer. *)

type binding = {
  bd_name : string;
  bd_source : string;
  bd_function : string;
  bd_params : (string * int) list;
}

type stats = {
  co_total : int;
  co_finished : int;
  co_redispatched : int;
  co_daemons_lost : int;
  co_duplicates : int;
  co_revived : int;
  co_unfinished : int list;
}

type shared = {
  sh_mutex : Mutex.t;
  sh_cond : Condition.t;
  sh_queue : int array Queue.t;  (* chunks of binding indices *)
  sh_results : (Serve.response, string) result option array;
  mutable sh_unfinished : int;
  mutable sh_redispatched : int;
  mutable sh_daemons_lost : int;
  mutable sh_duplicates : int;
  mutable sh_revived : int;
  mutable sh_live : int;  (* workers still running *)
  mutable sh_active : int;  (* workers serving (not probing a lost daemon) *)
}

(* what one chunk attempt came to *)
type attempt_result =
  | Chunk_done
  | Shard_lost of {
      lv_leftover : int array;  (* still-unanswered indices, ascending *)
      lv_reason : string;
      lv_progressed : bool;  (* any binding recorded this attempt *)
    }

let run ?(chunk = 64) ?(heartbeat_ms = 1000) ?(deadline_ms = 0) ?(retries = 3)
    ?(backoff_ms = 100) ?(revive_ms = 10_000) ?auth_secret
    ?(budget = Serve.no_budget) ?on_progress endpoints bindings =
  if endpoints = [] then invalid_arg "Coordinator.run: empty endpoint list";
  if chunk <= 0 then invalid_arg "Coordinator.run: chunk must be positive";
  let bindings = Array.of_list bindings in
  let total = Array.length bindings in
  (* chunks dedupe sources by name, so one name carrying two texts
     would silently analyze the wrong program — refuse up front *)
  let sources = Hashtbl.create 16 in
  Array.iter
    (fun b ->
      match Hashtbl.find_opt sources b.bd_name with
      | None -> Hashtbl.add sources b.bd_name b.bd_source
      | Some s when String.equal s b.bd_source -> ()
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Coordinator.run: source %S bound to two different texts"
               b.bd_name))
    bindings;
  let sh =
    {
      sh_mutex = Mutex.create ();
      sh_cond = Condition.create ();
      sh_queue = Queue.create ();
      sh_results = Array.make total None;
      sh_unfinished = total;
      sh_redispatched = 0;
      sh_daemons_lost = 0;
      sh_duplicates = 0;
      sh_revived = 0;
      sh_live = 0;
      sh_active = 0;
    }
  in
  let i = ref 0 in
  while !i < total do
    let n = min chunk (total - !i) in
    let base = !i in
    Queue.add (Array.init n (fun j -> base + j)) sh.sh_queue;
    i := !i + n
  done;
  (* first-wins recording; the progress callback runs outside the lock
     (it may do arbitrary work — the kill test SIGKILLs a daemon from
     it) *)
  let record idx r =
    Mutex.lock sh.sh_mutex;
    let finished =
      match sh.sh_results.(idx) with
      | Some _ ->
          sh.sh_duplicates <- sh.sh_duplicates + 1;
          None
      | None ->
          sh.sh_results.(idx) <- Some r;
          sh.sh_unfinished <- sh.sh_unfinished - 1;
          if sh.sh_unfinished = 0 then Condition.broadcast sh.sh_cond;
          Some (total - sh.sh_unfinished)
    in
    Mutex.unlock sh.sh_mutex;
    match (finished, on_progress) with
    | Some finished, Some f -> f ~finished ~total
    | _ -> ()
  in
  let seal payload =
    match auth_secret with
    | Some secret -> Auth.seal ~secret payload
    | None -> payload
  in
  let worker wi ep =
    let ep_str = Endpoint.to_string ep in
    let conn = ref None in
    let close_conn () =
      match !conn with
      | None -> ()
      | Some fd ->
          conn := None;
          (try Unix.close fd with Unix.Unix_error _ -> ())
    in
    let fails = ref 0 in
    let reqno = ref 0 in
    (* Open-circuit probe: is the daemon back?  One [health] (or, for
       a pre-health daemon, any parsed answer) roundtrip; a daemon
       reporting itself starting or draining is not ready to take
       chunks yet. *)
    let probe_once () =
      match Endpoint.connect ~io_timeout_ms:heartbeat_ms ep with
      | exception _ -> false
      | fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match Serve.roundtrip ?auth_secret fd Serve.Health with
              | Ok resp -> (
                  match Serve.field resp "state" with
                  | Some ("starting" | "draining") -> false
                  | Some _ | None -> true)
              | Error _ -> false)
    in
    (* The half-open wait of a worker whose daemon was lost: instead of
       retiring for good, keep probing the endpoint — a supervisor may
       be restarting it — and rejoin the sweep when it answers.  The
       wait gives up when the sweep finishes without us, when no other
       worker is actively serving (the old prompt-termination
       behaviour: a fleet that is {e all} dead must not sit out the
       whole revive window), or after [revive_ms]. *)
    let probe_for_revival () =
      let deadline =
        Unix.gettimeofday () +. (float_of_int revive_ms /. 1000.)
      in
      let rec go () =
        Mutex.lock sh.sh_mutex;
        let worth_waiting = sh.sh_unfinished > 0 && sh.sh_active > 0 in
        Mutex.unlock sh.sh_mutex;
        if (not worth_waiting) || Unix.gettimeofday () > deadline then false
        else if probe_once () then true
        else begin
          Thread.delay 0.2;
          go ()
        end
      in
      go ()
    in
    let backoff () =
      (* bounded exponential backoff; the jitter is a hash, not a
         random draw, so a fault-injected run replays byte-identically *)
      let base = min 5000 (backoff_ms * (1 lsl min 6 (!fails - 1))) in
      let jitter =
        Char.code
          (Digest.string (Printf.sprintf "%d:%d:%s" wi !fails ep_str)).[0]
        * base / 1024
      in
      Thread.delay (float_of_int (base + jitter) /. 1000.)
    in
    (* one chunk on this endpoint; never raises *)
    let attempt idxs =
      let remaining = Hashtbl.create (Array.length idxs) in
      Array.iter (fun i -> Hashtbl.replace remaining i ()) idxs;
      let progressed = ref false in
      let leftover () =
        Hashtbl.fold (fun i () acc -> i :: acc) remaining []
        |> List.sort compare |> Array.of_list
      in
      let lost reason =
        Shard_lost
          { lv_leftover = leftover (); lv_reason = reason;
            lv_progressed = !progressed }
      in
      let record_frame idx resp =
        if Hashtbl.mem remaining idx then begin
          Hashtbl.remove remaining idx;
          progressed := true;
          record idx (Ok resp)
        end
        else if idx >= 0 && idx < total then
          (* an index we did not send on this chunk: a daemon echoing a
             stale frame — first-wins accounting absorbs it *)
          record idx (Ok resp)
      in
      try
        let fd =
          match !conn with
          | Some fd -> fd
          | None ->
              let fd = Endpoint.connect ~io_timeout_ms:heartbeat_ms ep in
              conn := Some fd;
              fd
        in
        incr reqno;
        let sweep_id = Printf.sprintf "s%d-%d" wi !reqno in
        let names =
          let seen = Hashtbl.create 8 in
          Array.fold_left
            (fun acc i ->
              let n = bindings.(i).bd_name in
              if Hashtbl.mem seen n then acc
              else begin
                Hashtbl.add seen n ();
                n :: acc
              end)
            [] idxs
          |> List.rev
        in
        let req =
          Serve.Sweep
            {
              sw_sources =
                List.map (fun n -> (n, Hashtbl.find sources n)) names;
              sw_bindings =
                Array.to_list idxs
                |> List.map (fun i ->
                       let b = bindings.(i) in
                       {
                         Serve.sb_index = i;
                         sb_source = b.bd_name;
                         sb_function = b.bd_function;
                         sb_params = b.bd_params;
                       });
              sw_budget = budget;
            }
        in
        Serve.write_frame fd (seal (Serve.encode_request ~id:sweep_id req));
        let started = Unix.gettimeofday () in
        let ping_outstanding = ref false in
        let outcome = ref None in
        while !outcome = None do
          if
            deadline_ms > 0
            && (Unix.gettimeofday () -. started) *. 1000. > float_of_int deadline_ms
          then outcome := Some (lost "chunk deadline overrun")
          else
            match Serve.read_frame fd with
            | Error Serve.Timed_out ->
                (* [heartbeat_ms] of silence.  First: ping — the daemon
                   answers pings inline even while the sweep streams.
                   Second silence in a row means the ping went
                   unanswered too: the daemon is gone. *)
                if !ping_outstanding then
                  outcome := Some (lost "heartbeat timeout")
                else begin
                  let pid = Printf.sprintf "%s-hb" sweep_id in
                  Serve.write_frame fd
                    (seal (Serve.encode_request ~id:pid Serve.Ping));
                  ping_outstanding := true
                end
            | Error e ->
                outcome := Some (lost (Serve.frame_error_to_string e))
            | Ok payload -> (
                ping_outstanding := false;
                let payload =
                  match auth_secret with
                  | None -> Ok payload
                  | Some secret -> (
                      match Auth.verify ~secret payload with
                      | `Ok p -> Ok p
                      | `Missing | `Bad ->
                          Error "response failed authentication")
                in
                match Result.bind payload Serve.parse_response with
                | Error e -> outcome := Some (lost e)
                | Ok resp -> (
                    match Serve.field resp "id" with
                    | Some rid when rid = sweep_id -> (
                        if Serve.field resp "sweep-done" = Some "1" then begin
                          (* terminal frame; a well-behaved daemon has
                             answered everything, but never trust the
                             count — strand nothing *)
                          Hashtbl.iter
                            (fun i () ->
                              record i
                                (Error
                                   "sweep terminated without an answer"))
                            remaining;
                          Hashtbl.reset remaining;
                          outcome := Some Chunk_done
                        end
                        else
                          match
                            Option.bind
                              (Serve.field resp "binding")
                              int_of_string_opt
                          with
                          | Some idx -> record_frame idx resp
                          | None ->
                              (* a request-level rejection (auth,
                                 bad-request): retrying elsewhere cannot
                                 help, so fail the chunk's remaining
                                 bindings instead of bouncing them
                                 around the fleet forever *)
                              let detail =
                                match Serve.field resp "message" with
                                | Some m -> m
                                | None -> String.trim resp.Serve.rs_body
                              in
                              let msg =
                                Printf.sprintf "sweep rejected (%s): %s"
                                  (Option.value
                                     (Serve.field resp "code")
                                     ~default:resp.Serve.rs_status)
                                  detail
                              in
                              Hashtbl.iter
                                (fun i () -> record i (Error msg))
                                remaining;
                              Hashtbl.reset remaining;
                              outcome := Some Chunk_done)
                    | Some _ -> ()  (* our heartbeat ping's answer *)
                    | None ->
                        (* an untagged frame mid-sweep: [overloaded] at
                           admission, or a desynced peer — either way
                           this connection is not serving our chunk *)
                        outcome :=
                          Some
                            (lost
                               (Printf.sprintf "connection rejected: %s"
                                  resp.Serve.rs_status))))
        done;
        match !outcome with Some r -> r | None -> assert false
      with e -> lost (Printexc.to_string e)
    in
    let rec loop () =
      Mutex.lock sh.sh_mutex;
      while Queue.is_empty sh.sh_queue && sh.sh_unfinished > 0 do
        Condition.wait sh.sh_cond sh.sh_mutex
      done;
      if sh.sh_unfinished = 0 then Mutex.unlock sh.sh_mutex
      else begin
        let idxs = Queue.pop sh.sh_queue in
        Mutex.unlock sh.sh_mutex;
        (* a re-queued chunk can only hold unfinished indices, but
           filtering is cheap and makes that a non-assumption *)
        let idxs =
          Array.to_list idxs
          |> List.filter (fun i ->
                 Mutex.lock sh.sh_mutex;
                 let unfinished = sh.sh_results.(i) = None in
                 Mutex.unlock sh.sh_mutex;
                 unfinished)
          |> Array.of_list
        in
        if Array.length idxs = 0 then loop ()
        else
          match attempt idxs with
          | Chunk_done ->
              fails := 0;
              loop ()
          | Shard_lost { lv_leftover; lv_reason = _; lv_progressed } ->
              close_conn ();
              if lv_progressed then fails := 0;
              incr fails;
              (* re-queue BEFORE deciding whether to retire: the chunk
                 must never be stranded on a dying worker *)
              Mutex.lock sh.sh_mutex;
              if Array.length lv_leftover > 0 then begin
                Queue.add lv_leftover sh.sh_queue;
                sh.sh_redispatched <-
                  sh.sh_redispatched + Array.length lv_leftover;
                Condition.broadcast sh.sh_cond
              end;
              Mutex.unlock sh.sh_mutex;
              if !fails > retries then begin
                (* circuit open: the daemon is lost.  Step out of the
                   active set, then wait half-open for a revival
                   instead of retiring outright. *)
                Mutex.lock sh.sh_mutex;
                sh.sh_daemons_lost <- sh.sh_daemons_lost + 1;
                sh.sh_active <- sh.sh_active - 1;
                Mutex.unlock sh.sh_mutex;
                if probe_for_revival () then begin
                  Mutex.lock sh.sh_mutex;
                  sh.sh_active <- sh.sh_active + 1;
                  sh.sh_revived <- sh.sh_revived + 1;
                  Mutex.unlock sh.sh_mutex;
                  fails := 0;
                  loop ()
                end
                (* else: retire — the fall-through releases the worker *)
              end
              else begin
                backoff ();
                loop ()
              end
      end
    in
    Fun.protect
      ~finally:(fun () ->
        close_conn ();
        Mutex.lock sh.sh_mutex;
        sh.sh_live <- sh.sh_live - 1;
        Condition.broadcast sh.sh_cond;
        Mutex.unlock sh.sh_mutex)
      loop
  in
  sh.sh_live <- List.length endpoints;
  sh.sh_active <- List.length endpoints;
  let threads =
    List.mapi (fun wi ep -> Thread.create (fun () -> worker wi ep) ()) endpoints
  in
  Mutex.lock sh.sh_mutex;
  while sh.sh_unfinished > 0 && sh.sh_live > 0 do
    Condition.wait sh.sh_cond sh.sh_mutex
  done;
  Mutex.unlock sh.sh_mutex;
  List.iter Thread.join threads;
  let unfinished = ref [] in
  for i = total - 1 downto 0 do
    if sh.sh_results.(i) = None then unfinished := i :: !unfinished
  done;
  let results =
    Array.map
      (function
        | Some r -> r
        | None ->
            Error "unfinished: every daemon was lost before this binding was answered")
      sh.sh_results
  in
  ( results,
    {
      co_total = total;
      co_finished = total - List.length !unfinished;
      co_redispatched = sh.sh_redispatched;
      co_daemons_lost = sh.sh_daemons_lost;
      co_duplicates = sh.sh_duplicates;
      co_revived = sh.sh_revived;
      co_unfinished = !unfinished;
    } )
