(* The one place the endpoint grammar lives.  Everything that names a
   daemon — serve's listeners, the client pool, the CLI flags — goes
   through parse/to_string here, so the two sides can never drift. *)

type t = Unix_sock of string | Tcp of string * int

let parse s =
  let prefixed p =
    String.length s >= String.length p
    && String.sub s 0 (String.length p) = p
  in
  let rest p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then
    let path = rest "unix:" in
    if path = "" then Error "unix endpoint: empty socket path"
    else Ok (Unix_sock path)
  else if prefixed "tcp:" then
    let hp = rest "tcp:" in
    match String.rindex_opt hp ':' with
    | None -> Error (Printf.sprintf "tcp endpoint %S: expected HOST:PORT" hp)
    | Some i -> (
        let host = String.sub hp 0 i in
        let port = String.sub hp (i + 1) (String.length hp - i - 1) in
        if host = "" then Error "tcp endpoint: empty host"
        else
          match int_of_string_opt port with
          | Some p when p >= 0 && p <= 65535 -> Ok (Tcp (host, p))
          | _ ->
              Error
                (Printf.sprintf "tcp endpoint: port %S is not in 0..65535"
                   port))
  else if s = "" then Error "empty endpoint"
  else
    (* compatibility: a bare path (no scheme) is a Unix socket, which
       is what every pre-endpoint --socket flag passed *)
    Ok (Unix_sock s)

let parse_exn s =
  match parse s with Ok e -> e | Error m -> invalid_arg m

let to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let transport = function Unix_sock _ -> "unix" | Tcp _ -> "tcp"
let equal (a : t) b = a = b

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | addr -> Unix.ADDR_INET (addr, port)
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              failwith (host ^ ": host has no address")
          | h -> Unix.ADDR_INET (h.Unix.h_addr_list.(0), port)
          | exception Not_found -> failwith (host ^ ": unknown host")))

let domain = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let connect ?(io_timeout_ms = 0) ep =
  let addr = sockaddr ep in
  let fd = Unix.socket ~cloexec:true (domain ep) Unix.SOCK_STREAM 0 in
  match
    (match ep with
    | Tcp _ -> (
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ())
    | Unix_sock _ -> ());
    if io_timeout_ms <= 0 then Unix.connect fd addr
    else begin
      let s = float_of_int io_timeout_ms /. 1000.0 in
      (* the connect itself is bounded too: a wedged daemon whose
         backlog has filled parks a blocking connect forever *)
      Unix.set_nonblock fd;
      (match Unix.connect fd addr with
      | () -> ()
      | exception Unix.Unix_error ((EINPROGRESS | EAGAIN | EWOULDBLOCK), _, _)
        -> (
          match Unix.select [] [ fd ] [] s with
          | [], [], [] ->
              raise (Unix.Unix_error (ETIMEDOUT, "connect", to_string ep))
          | _ -> (
              match Unix.getsockopt_error fd with
              | None -> ()
              | Some e -> raise (Unix.Unix_error (e, "connect", to_string ep)))));
      Unix.clear_nonblock fd;
      (* and so is every read/write: a daemon that stops responding
         mid-exchange surfaces as a timeout, never as a hung client *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
       with Unix.Unix_error _ -> ());
      try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
      with Unix.Unix_error _ -> ()
    end
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let listen ?(backlog = 64) ep =
  (match ep with
  | Unix_sock path ->
      if Sys.file_exists path then begin
        (match (Unix.stat path).Unix.st_kind with
        | Unix.S_SOCK -> ()
        | _ -> failwith (path ^ ": exists and is not a socket"));
        (* stale socket from a dead daemon, or a live one?  probe it *)
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () ->
            Unix.close probe;
            failwith (path ^ ": a daemon is already serving this socket")
        | exception Unix.Unix_error _ ->
            Unix.close probe;
            (try Unix.unlink path with Unix.Unix_error _ -> ())
      end
  | Tcp _ -> ());
  let fd = Unix.socket ~cloexec:true (domain ep) Unix.SOCK_STREAM 0 in
  match
    (match ep with
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix_sock _ -> ());
    Unix.bind fd (sockaddr ep);
    Unix.listen fd backlog
  with
  | () ->
      let resolved =
        match ep with
        | Unix_sock _ -> ep
        | Tcp (host, _) -> (
            (* port 0 asked the OS for an ephemeral port; report the
               one it actually assigned so callers can advertise it *)
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, port) -> Tcp (host, port)
            | _ -> ep)
      in
      (fd, resolved)
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
