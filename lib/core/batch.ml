type source = { src_name : string; src_text : string }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of_file path =
  { src_name = Filename.basename path; src_text = read_file path }

let expand_paths paths =
  List.concat_map
    (fun path ->
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mc")
        |> List.sort compare
        |> List.map (fun f -> Filename.concat path f)
      else [ path ])
    paths

let sources_of_paths paths = List.map source_of_file (expand_paths paths)

(* Shard membership is a pure function of the expanded path, so k
   [mira batch --shard i/k] processes launched with the same arguments
   partition the work without coordinating: every path lands in
   exactly one shard, whatever order the filesystem listed it in. *)
let shard_member ~index ~count path =
  if count < 1 then invalid_arg "Batch.shard_member: count must be >= 1";
  if index < 1 || index > count then
    invalid_arg
      (Printf.sprintf "Batch.shard_member: index %d out of 1..%d" index count);
  let d = Digest.string path in
  let h =
    (Char.code d.[0] lsl 16) lor (Char.code d.[1] lsl 8) lor Char.code d.[2]
  in
  h mod count = index - 1

type analysis = {
  a_name : string;
  a_model : Model_ir.t;
  a_python : string;
  a_warnings : (string * string) list;
  a_cached : bool;
}

type result = (analysis, string * Diag.t) Stdlib.result

type stats = {
  st_total : int;
  st_analyzed : int;
  st_mem_hits : int;
  st_disk_hits : int;
  st_failed : int;
  st_jobs : int;
  st_budget : int;
  st_injected : int;
  st_cache_corrupt : int;
  st_io_retries : int;
  st_io_failures : int;
  (* function tier *)
  st_assembled : int;
  st_fn_mem_hits : int;
  st_fn_disk_hits : int;
  st_fn_analyzed : int;
}

(* ---------- content addressing ---------- *)

(* bumped from mira-batch-2: Model_ir.fmodel gained mf_update_py, so
   payloads marshalled by older releases decode at the wrong type —
   versioning the key keeps them from ever being looked up (they age
   out under the old version via gc_disk) *)
let cache_version = "mira-batch-3"

(* the function tier versions independently of the file tier: it keys
   marshalled Metric_gen.part values, whose layout can change without
   the file payloads changing (and vice versa) *)
(* bumped from mira-fn-1: parts now carry precomputed free vars *)
let fn_cache_version = "mira-fn-2"

let level_tag = function
  | Mira_codegen.Codegen.O0 -> "O0"
  | Mira_codegen.Codegen.O1 -> "O1"
  | Mira_codegen.Codegen.O2 -> "O2"

let key ~level text =
  Digest.to_hex
    (Digest.string (cache_version ^ "\x00" ^ level_tag level ^ "\x00" ^ text))

(* ---------- two-tier cache ---------- *)

(* What a cache entry holds: the model plus the Python emitted for it
   under [p_name].  Emission is deterministic in (model, name), so a
   hit under the same name reuses [p_python] verbatim and a hit under
   another name (renamed identical file) re-emits from the model —
   either way the output is byte-identical to a fresh analysis. *)
type payload = { p_name : string; p_model : Model_ir.t; p_python : string }

(* The memory tier is an LRU keyed by digest; entries carry a use tick
   and eviction scans for the minimum (capacities are small).  All
   access goes through [c_lock]: lookups and stores are brief, the
   expensive analysis itself runs outside the lock.  The health
   counters are atomics, not lock-protected: they are bumped from
   worker domains during disk I/O, outside the lock. *)
type cache = {
  c_lock : Mutex.t;
  c_mem : (string, payload * int ref) Hashtbl.t;
  (* the function tier: Metric_gen.part keyed by Fingerprint digest.
     A separate table (same lock, same use clock) so file payloads and
     function parts don't evict each other. *)
  c_fn_mem : (string, Metric_gen.part * int ref) Hashtbl.t;
  c_capacity : int;
  mutable c_tick : int;
  c_dir : string option;
  c_corrupt : int Atomic.t;  (* checksum/decode failures detected *)
  c_retries : int Atomic.t;  (* I/O attempts retried *)
  c_io_fail : int Atomic.t;  (* I/O given up on after retries *)
  c_fn_mem_hits : int Atomic.t;
  c_fn_disk_hits : int Atomic.t;
  c_fn_fresh : int Atomic.t;  (* functions re-analyzed in isolation *)
}

let is_tmp_name f =
  (* entries are published as <digest>.model; anything still carrying a
     .tmp. infix is an orphan from an interrupted writer.  The .ptmp.
     infix is Model_compile's prog-tier temporary: distinct so its
     writers are recognizable, but swept here all the same — a crashed
     compile must not leak temp blobs forever *)
  let has sub =
    let n = String.length sub in
    let rec find i =
      i + n <= String.length f && (String.sub f i n = sub || find (i + 1))
    in
    find 0
  in
  has ".tmp." || has ".ptmp."

(* ---------- cross-process cache locking ----------

   A daemon and a concurrent [mira batch] may share one cache
   directory.  Entry publication was already safe (atomic rename,
   checksummed payloads), but eviction was not: one process's
   [gc_disk] or orphan sweep could delete a [*.tmp.*] file the other
   was mid-writing, failing that writer's publish.  An advisory
   [Unix.lockf] region lock on [.mira-cache/.lock] coordinates them:
   writers hold it {e shared} for the brief write+rename window,
   GC/sweep holds it {e exclusive}.  Acquisition is non-blocking with
   a few short retries; on failure the caller degrades — GC is skipped
   (it can run next time), a store is dropped (cold cache next run) —
   never crashes and never blocks a batch behind another process.

   POSIX record locks are per-process (closing {e any} descriptor of
   the lock file drops {e all} of the process's locks on it, and locks
   taken on two descriptors by one process never conflict), so the
   file lock alone cannot coordinate threads/domains of one process.
   Each directory therefore gets one cached lock-file descriptor that
   is {e never closed} — the close-drops-everything footgun cannot
   fire — plus an in-process holder mode: shared holders are counted
   (the file lock is taken on the first and released by the last, and
   their write+rename sections run {e concurrently}), an exclusive
   holder (GC/sweep) excludes everyone.  The per-directory mutex
   covers only these acquire/release transitions, never a caller's
   critical section, so disk-cache stores from parallel batch workers
   no longer serialize behind one another's I/O.  (The registry is
   keyed by the directory path as given; processes use one consistent
   path per cache, as the CLI does.) *)

let lock_file_name = ".lock"

type dir_lock = {
  dl_mu : Mutex.t;
  mutable dl_fd : Unix.file_descr option;  (* cached, never closed *)
  mutable dl_mode : [ `Free | `Shared of int | `Exclusive ];
}

let dir_locks_mu = Mutex.create ()
let dir_locks : (string, dir_lock) Hashtbl.t = Hashtbl.create 4

let dir_lock_for dir =
  Mutex.lock dir_locks_mu;
  let dl =
    match Hashtbl.find_opt dir_locks dir with
    | Some dl -> dl
    | None ->
        let dl = { dl_mu = Mutex.create (); dl_fd = None; dl_mode = `Free } in
        Hashtbl.add dir_locks dir dl;
        dl
  in
  Mutex.unlock dir_locks_mu;
  dl

(* must hold [dl.dl_mu] *)
let dir_lock_fd dl dir =
  match dl.dl_fd with
  | Some fd -> Some fd
  | None -> (
      let path = Filename.concat dir lock_file_name in
      match Unix.openfile path [ O_CREAT; O_RDWR; O_CLOEXEC ] 0o644 with
      | fd ->
          dl.dl_fd <- Some fd;
          Some fd
      | exception (Unix.Unix_error _ | Sys_error _) ->
          (* cannot even create the lock file (read-only dir, …):
             degrade *)
          None)

let rec dir_lock_acquire ~shared dl dir attempt =
  Mutex.lock dl.dl_mu;
  let outcome =
    match (dl.dl_mode, shared) with
    | `Shared n, true ->
        (* the process already holds the shared file lock: join it *)
        dl.dl_mode <- `Shared (n + 1);
        `Ok
    | `Free, _ -> (
        match dir_lock_fd dl dir with
        | None -> `Fail
        | Some fd -> (
            (* one non-blocking attempt; backoff runs with the mutex
               released so other sections are not held up *)
            let cmd = if shared then Unix.F_TRLOCK else Unix.F_TLOCK in
            match Unix.lockf fd cmd 0 with
            | () ->
                dl.dl_mode <- (if shared then `Shared 1 else `Exclusive);
                `Ok
            | exception Unix.Unix_error ((EAGAIN | EACCES | EINTR), _, _) ->
                `Busy
            | exception (Unix.Unix_error _ | Sys_error _) -> `Fail))
    | (`Shared _ | `Exclusive), _ ->
        (* an incompatible in-process holder *)
        `Busy
  in
  Mutex.unlock dl.dl_mu;
  match outcome with
  | `Ok -> true
  | `Fail -> false
  | `Busy ->
      if attempt >= 3 then false
      else begin
        Unix.sleepf (0.002 *. float_of_int (1 lsl attempt));
        dir_lock_acquire ~shared dl dir (attempt + 1)
      end

let dir_lock_release dl =
  Mutex.lock dl.dl_mu;
  (match dl.dl_mode with
  | `Shared n when n > 1 -> dl.dl_mode <- `Shared (n - 1)
  | `Shared _ | `Exclusive -> (
      dl.dl_mode <- `Free;
      match dl.dl_fd with
      | Some fd -> (
          try Unix.lockf fd Unix.F_ULOCK 0
          with Unix.Unix_error _ | Sys_error _ -> ())
      | None -> ())
  | `Free -> ());
  Mutex.unlock dl.dl_mu

let with_dir_lock ?(shared = false) dir f =
  let dl = dir_lock_for dir in
  if dir_lock_acquire ~shared dl dir 0 then
    Fun.protect
      ~finally:(fun () -> dir_lock_release dl)
      (fun () -> Some (f ()))
  else None

let sweep_orphans dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter
        (fun f ->
          if is_tmp_name f then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        entries

(* the sweep deletes other writers' temporaries, so it needs the
   exclusive lock; an unobtainable lock just postpones the sweep *)
let sweep_orphans_locked dir =
  ignore (with_dir_lock dir (fun () -> sweep_orphans dir))

let cache_dir c = c.c_dir

type cache_health = {
  h_corrupt : int;
  h_io_retries : int;
  h_io_failures : int;
  h_fn_mem_hits : int;
  h_fn_disk_hits : int;
  h_fn_fresh : int;
}

let cache_health c =
  {
    h_corrupt = Atomic.get c.c_corrupt;
    h_io_retries = Atomic.get c.c_retries;
    h_io_failures = Atomic.get c.c_io_fail;
    h_fn_mem_hits = Atomic.get c.c_fn_mem_hits;
    h_fn_disk_hits = Atomic.get c.c_fn_disk_hits;
    h_fn_fresh = Atomic.get c.c_fn_fresh;
  }

let locked c f =
  Mutex.lock c.c_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.c_lock) f

(* LRU lookup/insert, generic over the table so the file tier
   ([c_mem]) and the function tier ([c_fn_mem]) share one
   implementation, one lock, and one use clock *)
let mem_find_in c tbl k =
  locked c (fun () ->
      match Hashtbl.find_opt tbl k with
      | None -> None
      | Some (m, tick) ->
          c.c_tick <- c.c_tick + 1;
          tick := c.c_tick;
          Some m)

let mem_store_in c tbl k m =
  locked c (fun () ->
      if not (Hashtbl.mem tbl k) then begin
        if Hashtbl.length tbl >= c.c_capacity then begin
          (* evict the least recently used entry *)
          let victim = ref None in
          Hashtbl.iter
            (fun k' (_, tick) ->
              match !victim with
              | Some (_, t) when t <= !tick -> ()
              | _ -> victim := Some (k', !tick))
            tbl;
          match !victim with
          | Some (k', _) -> Hashtbl.remove tbl k'
          | None -> ()
        end;
        c.c_tick <- c.c_tick + 1;
        Hashtbl.add tbl k (m, ref c.c_tick)
      end)

let mem_find c k = mem_find_in c c.c_mem k
let mem_store c k m = mem_store_in c c.c_mem k m

(* ---------- checksummed disk payloads ---------- *)

exception Corrupt_entry of string

let payload_magic = "MIRAC2\n"
let fn_magic = "MIRAF1\n"

(* magic + MD5-of-body + marshalled body; both tiers use the same
   frame with their own magic *)
let encode_blob ~magic body = magic ^ Digest.string body ^ body

let decode_blob ~magic data =
  let mlen = String.length magic in
  if String.length data < mlen + 16 then raise (Corrupt_entry "truncated entry");
  if String.sub data 0 mlen <> magic then raise (Corrupt_entry "bad magic");
  let digest = String.sub data mlen 16 in
  let body = String.sub data (mlen + 16) (String.length data - mlen - 16) in
  if Digest.string body <> digest then
    raise (Corrupt_entry "checksum mismatch");
  body

let encode_payload (m : payload) =
  encode_blob ~magic:payload_magic (Marshal.to_string m [])

let decode_payload data : payload =
  let body = decode_blob ~magic:payload_magic data in
  (* the checksum matched, so this is byte-for-byte what a writer
     produced and unmarshalling is safe *)
  match (Marshal.from_string body 0 : payload) with
  | p -> p
  | exception _ -> raise (Corrupt_entry "undecodable payload")

let encode_fn_payload (p : Metric_gen.part) =
  encode_blob ~magic:fn_magic (Marshal.to_string p [])

let decode_fn_payload data : Metric_gen.part =
  let body = decode_blob ~magic:fn_magic data in
  match (Marshal.from_string body 0 : Metric_gen.part) with
  | p -> p
  | exception _ -> raise (Corrupt_entry "undecodable payload")

(* ---------- durable publish ----------

   tmp+rename is atomic against concurrent readers but not against
   machine crashes: without fsync the rename can reach disk before the
   temporary's data blocks, so a crash leaves a {e published} name with
   torn contents.  Every cache tier (file [.model], function
   [.fnmodel], compiled-program [.prog]) publishes through this one
   helper: write the temporary, fsync it, rename into place, then
   fsync the directory so the new name itself survives the crash.
   [set_fsync false] ([--no-fsync]) drops the fsyncs for benches,
   leaving the checksum layer as the only defence.  The [crash] fault
   site fires {e between} the steps, SIGKILLing the process exactly
   where a real crash would bite; the chaos harness sweeps it through
   hundreds of publishes and asserts the startup recovery scan leaves
   nothing torn behind. *)

let fsync_enabled = Atomic.make true
let set_fsync on = Atomic.set fsync_enabled on

(* directory fsync is best-effort: some filesystems refuse it, and a
   lost directory entry is re-creatable (a cache miss), unlike torn
   contents under a published name *)
let fsync_dir dir =
  if Atomic.get fsync_enabled then
    match Unix.openfile dir [ O_RDONLY; O_CLOEXEC ] 0 with
    | fd ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
    | exception (Unix.Unix_error _ | Sys_error _) -> ()

let durable_publish ?(before_rename = ignore) ~subject ~tmp ~final data =
  let crash point = Faults.maybe_crash ~subject:(subject ^ "@" ^ point) in
  try
    let fd =
      Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let n = String.length data in
        let off = ref 0 in
        while !off < n do
          off := !off + Unix.write_substring fd data !off (n - !off)
        done;
        crash "tmp-written";
        if Atomic.get fsync_enabled then Unix.fsync fd;
        crash "tmp-synced");
    before_rename ();
    Unix.rename tmp final;
    crash "renamed";
    fsync_dir (Filename.dirname final)
  with Unix.Unix_error (e, fn, _) ->
    (* callers speak Sys_error (retry loops, degrade-to-miss paths) *)
    raise
      (Sys_error (Printf.sprintf "%s %s: %s" fn tmp (Unix.error_message e)))

(* ---------- retrying disk I/O ---------- *)

let backoff_s attempt = 0.0005 *. (4.0 ** float_of_int attempt)

(* Run [op attempt], retrying transient [Sys_error]s with bounded
   exponential backoff.  [op] receives the attempt number so fault
   injection can key on it (a retry may then succeed, exercising the
   recovery path rather than looping on the same decision).  The
   backoff respects the caller's wall-clock deadline: a retry sleep is
   capped at the time remaining, and once the deadline has passed we
   stop retrying rather than burn time the request no longer has —
   without this, a slow disk near the deadline could make a budgeted
   request overrun its own timeout while asleep. *)
let with_io_retries c ~retries op =
  let rec go attempt =
    try op attempt
    with Sys_error _ as e when attempt < retries -> (
      match Limits.Budget.time_left_s () with
      | Some left when left <= 0.0 -> raise e
      | left ->
          Atomic.incr c.c_retries;
          let pause = backoff_s attempt in
          let pause =
            match left with
            | Some l -> Float.min pause l
            | None -> pause
          in
          Unix.sleepf pause;
          go (attempt + 1))
  in
  go 0

let inject_io faults ~p ~site ~subject ~attempt =
  match faults with
  | Some f when Faults.fires f ~p:(p f) ~site ~subject:(Printf.sprintf "%s#%d" subject attempt)
    ->
      raise (Sys_error ("injected " ^ site))
  | _ -> ()

let file_suffix = ".model"
let fn_suffix = ".fnmodel"

let disk_path ~suffix dir k = Filename.concat dir (k ^ suffix)

(* ---------- crash recovery ---------- *)

type recovery_stats = { rc_scanned : int; rc_quarantined : int }

let quarantine_suffix = ".quarantined"

(* Startup recovery scan.  Even with durable publish, a cache written
   by an older build, a --no-fsync run, or a filesystem that reorders
   rename and data writes can survive a crash with a published name
   over torn bytes.  Re-verify every entry's checksum and move the
   torn ones aside to NAME.quarantined — kept for post-mortems,
   invisible to every reader (wrong suffix) — so no consumer ever has
   to trust a post-crash cache.  Unreadable files are left alone (the
   read path degrades to a miss there anyway); an unobtainable lock
   postpones the scan to the next startup, like the orphan sweep.
   [entries] maps an entry suffix to its magic; the default covers the
   two Batch tiers, and Model_compile passes its prog tier — all three
   share the magic+checksum+body frame, so one scan serves them
   all. *)
let recover_dir ?entries dir =
  let entries =
    match entries with
    | Some e -> e
    | None -> [ (file_suffix, payload_magic); (fn_suffix, fn_magic) ]
  in
  let scanned = ref 0 and quarantined = ref 0 in
  (match
     with_dir_lock dir (fun () ->
         match Sys.readdir dir with
         | exception Sys_error _ -> ()
         | names ->
             Array.sort compare names;
             Array.iter
               (fun f ->
                 if not (is_tmp_name f) then
                   match
                     List.find_opt
                       (fun (suf, _) -> Filename.check_suffix f suf)
                       entries
                   with
                   | None -> ()
                   | Some (_, magic) -> (
                       incr scanned;
                       let path = Filename.concat dir f in
                       match decode_blob ~magic (read_file path) with
                       | _body -> ()
                       | exception Corrupt_entry _ ->
                           (try Sys.rename path (path ^ quarantine_suffix)
                            with Sys_error _ -> ());
                           incr quarantined
                       | exception Sys_error _ -> ()))
               names)
   with
  | Some () | None -> ());
  { rc_scanned = !scanned; rc_quarantined = !quarantined }

let create_cache ?(capacity = 512) ?dir () =
  (match dir with
  | Some d when Sys.file_exists d ->
      sweep_orphans_locked d;
      ignore (recover_dir d)
  | _ -> ());
  {
    c_lock = Mutex.create ();
    c_mem = Hashtbl.create 64;
    c_fn_mem = Hashtbl.create 256;
    c_capacity = max 1 capacity;
    c_tick = 0;
    c_dir = dir;
    c_corrupt = Atomic.make 0;
    c_retries = Atomic.make 0;
    c_io_fail = Atomic.make 0;
    c_fn_mem_hits = Atomic.make 0;
    c_fn_disk_hits = Atomic.make 0;
    c_fn_fresh = Atomic.make 0;
  }

(* a successful read refreshes the entry's mtime so {!gc_disk}'s
   LRU-by-mtime eviction spares hot entries *)
let touch path =
  try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> () | Sys_error _ -> ()

let disk_find_blob ~faults ~retries ~suffix ~decode c k =
  match c.c_dir with
  | None -> None
  | Some dir -> (
      let path = disk_path ~suffix dir k in
      if not (Sys.file_exists path) then None
      else
        match
          with_io_retries c ~retries (fun attempt ->
              inject_io faults
                ~p:(fun f -> f.Faults.read_p)
                ~site:"disk_read" ~subject:k ~attempt;
              read_file path)
        with
        | exception Sys_error _ ->
            (* persistently unreadable: degrade to a miss *)
            Atomic.incr c.c_io_fail;
            None
        | data -> (
            match decode data with
            | p ->
                touch path;
                Some p
            | exception Corrupt_entry _ ->
                (* detected, counted, and removed so the fresh result
                   can be rewritten cleanly *)
                Atomic.incr c.c_corrupt;
                (try Sys.remove path with Sys_error _ -> ());
                None))

let disk_store_blob ~faults ~retries ~suffix c k full =
  match c.c_dir with
  | None -> ()
  | Some dir -> (
      let data =
        match faults with
        | Some f when Faults.fires f ~p:f.corrupt_p ~site:"corrupt" ~subject:k
          ->
            (* a deliberately truncated payload: readable, wrong
               checksum — must be detected on the next read *)
            String.sub full 0 (String.length full / 2)
        | _ -> full
      in
      let tmp =
        (* thread id, not domain id: concurrent daemon threads all
           live on domain 0 and their stores now overlap in time, so
           the temporary must be unique per writer thread (thread ids
           are process-unique, covering worker domains too) *)
        disk_path ~suffix dir
          (Printf.sprintf "%s.tmp.%d" k (Thread.id (Thread.self ())))
      in
      if not (Sys.file_exists dir) then begin
        try Sys.mkdir dir 0o755 with Sys_error _ -> ()
      end;
      (* hold the directory lock (shared) for the write+rename window
         so a concurrent process's GC cannot sweep [tmp] from under
         us; an unobtainable lock degrades to skipping the store *)
      match
        with_dir_lock ~shared:true dir (fun () ->
            with_io_retries c ~retries (fun attempt ->
                inject_io faults
                  ~p:(fun f -> f.Faults.write_p)
                  ~site:"disk_write" ~subject:k ~attempt;
                durable_publish ~subject:k ~tmp
                  ~final:(disk_path ~suffix dir k)
                  ~before_rename:(fun () ->
                    inject_io faults
                      ~p:(fun f -> f.Faults.rename_p)
                      ~site:"rename" ~subject:k ~attempt)
                  data))
      with
      | Some () -> ()
      | None | (exception Sys_error _) ->
          (* a cold cache next time, never a failed batch; don't leave
             the orphan behind (the next create_cache would sweep it,
             but be tidy) *)
          Atomic.incr c.c_io_fail;
          (try Sys.remove tmp with Sys_error _ -> ()))

let disk_find ~faults ~retries c k =
  disk_find_blob ~faults ~retries ~suffix:file_suffix ~decode:decode_payload c k

let disk_store ~faults ~retries c k m =
  disk_store_blob ~faults ~retries ~suffix:file_suffix c k (encode_payload m)

let disk_find_fn ~faults ~retries c k =
  disk_find_blob ~faults ~retries ~suffix:fn_suffix ~decode:decode_fn_payload c
    k

let disk_store_fn ~faults ~retries c k p =
  disk_store_blob ~faults ~retries ~suffix:fn_suffix c k (encode_fn_payload p)

(* A memory-tier hit never reads the disk copy, so refresh its mtime
   explicitly: otherwise entries that stay hot in the LRU look cold to
   {!gc_disk} and are evicted first, turning the next cold start into
   a full miss. *)
let touch_disk ~suffix c k =
  match c.c_dir with
  | None -> ()
  | Some dir -> touch (disk_path ~suffix dir k)

(* ---------- disk-tier eviction ---------- *)

(* Size-capped GC: scan the cache directory, and if the published
   entries exceed [max_bytes], remove oldest-mtime-first (reads touch
   mtime, so this is LRU) until under the cap.  Removals are atomic
   ([Sys.remove]); a concurrently vanishing file is tolerated.  Orphan
   temporaries are swept too, as in [create_cache].  The whole pass
   runs under the exclusive directory lock so it cannot sweep a
   temporary another process is about to publish; when the lock is
   busy the pass is skipped — eviction is best-effort housekeeping,
   and the next run will do it. *)
let gc_disk_unlocked ~max_bytes c =
  match c.c_dir with
  | None -> (0, 0)
  | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> (0, 0)
      | entries ->
          let files =
            Array.to_list entries
            |> List.filter_map (fun f ->
                   if is_tmp_name f then (
                     (try Sys.remove (Filename.concat dir f)
                      with Sys_error _ -> ());
                     None)
                   else if
                     Filename.check_suffix f file_suffix
                     || Filename.check_suffix f fn_suffix
                   then
                     let path = Filename.concat dir f in
                     match Unix.stat path with
                     | st -> Some (path, st.Unix.st_mtime, st.Unix.st_size)
                     | exception Unix.Unix_error _ -> None
                     | exception Sys_error _ -> None
                   else None)
          in
          let total = List.fold_left (fun a (_, _, sz) -> a + sz) 0 files in
          if total <= max_bytes then (0, 0)
          else
            (* oldest first *)
            let files =
              List.sort (fun (_, m1, _) (_, m2, _) -> compare m1 m2) files
            in
            let removed = ref 0 and freed = ref 0 and live = ref total in
            List.iter
              (fun (path, _, sz) ->
                if !live > max_bytes then
                  match Sys.remove path with
                  | () ->
                      incr removed;
                      freed := !freed + sz;
                      live := !live - sz
                  | exception Sys_error _ -> ())
              files;
            (!removed, !freed))

let gc_disk ~max_bytes c =
  match c.c_dir with
  | None -> (0, 0)
  | Some dir -> (
      match with_dir_lock dir (fun () -> gc_disk_unlocked ~max_bytes c) with
      | Some r -> r
      | None -> (0, 0))

(* ---------- cache merge ---------- *)

type merge_stats = {
  mg_scanned : int;
  mg_copied : int;
  mg_present : int;
  mg_corrupt : int;
  mg_failed : int;
}

(* Entries are content-addressed, so merging cache directories is a
   union: a name present in [dst] already holds the same bytes (same
   digest key, same version in the key) and is skipped.  Each copy is
   checksum-verified first — a merge must not propagate a corrupt
   entry from a damaged shard cache into a healthy one — and published
   with the same tmp+rename, shared-directory-lock discipline as a
   cache store, so a daemon serving from [dst] meanwhile never
   observes a torn entry. *)
let merge_dirs ~dst srcs =
  if not (Sys.file_exists dst) then begin
    try Sys.mkdir dst 0o755 with Sys_error _ -> ()
  end;
  let scanned = ref 0 and copied = ref 0 and present = ref 0 in
  let corrupt = ref 0 and failed = ref 0 in
  let entry_magic f =
    if Filename.check_suffix f file_suffix then Some payload_magic
    else if Filename.check_suffix f fn_suffix then Some fn_magic
    else None
  in
  List.iter
    (fun src ->
      match Sys.readdir src with
      | exception Sys_error _ -> incr failed
      | entries ->
          Array.sort compare entries;
          Array.iter
            (fun f ->
              match entry_magic f with
              | None -> ()
              | Some _ when is_tmp_name f -> ()
              | Some magic -> (
                  incr scanned;
                  let target = Filename.concat dst f in
                  if Sys.file_exists target then incr present
                  else
                    match read_file (Filename.concat src f) with
                    | exception Sys_error _ -> incr failed
                    | data -> (
                        match decode_blob ~magic data with
                        | exception Corrupt_entry _ -> incr corrupt
                        | _body -> (
                            let tmp =
                              Filename.concat dst
                                (Printf.sprintf "%s.tmp.%d" f (Unix.getpid ()))
                            in
                            match
                              with_dir_lock ~shared:true dst (fun () ->
                                  durable_publish ~subject:f ~tmp
                                    ~final:target data)
                            with
                            | Some () -> incr copied
                            | None | (exception Sys_error _) ->
                                (try Sys.remove tmp with Sys_error _ -> ());
                                incr failed))))
            entries)
    srcs;
  {
    mg_scanned = !scanned;
    mg_copied = !copied;
    mg_present = !present;
    mg_corrupt = !corrupt;
    mg_failed = !failed;
  }

(* ---------- one task ---------- *)

(* [Assembled n]: the file missed both file tiers but was rebuilt from
   the function tier with [n] functions re-analyzed in isolation
   ([n = 0] — e.g. a formatting-only edit — means pure cache work). *)
type tier = Fresh | Mem | Disk | Assembled of int

let fn_salt level = fn_cache_version ^ "\x00" ^ level_tag level

(* The function-granular path, taken on a file-tier miss when
   [incremental] is on and a cache exists.  Digest every function of
   the prepared AST and probe the function tier; if nothing hits, fall
   back to the whole-file pipeline (one compilation instead of N
   stub-reduced ones) and seed the tier with the parts it produces.
   Otherwise re-analyze only the misses, each against its own reduced
   compilation, and assemble.  Either way the assembled model is
   byte-identical to a cold whole-file analysis: parts are a pure
   function of (function, closure) — which is what the digest hashes —
   and the cross-function parameter fixpoint reruns at assembly. *)
let analyze_incremental ~level ~faults ~retries c ~src_name ~src_text =
  let pr = Input_processor.prepare ~level ~source_name:src_name src_text in
  let salt = fn_salt level in
  let fns = Mira_srclang.Ast.all_functions pr.Input_processor.pr_ast in
  let probed =
    List.map
      (fun f ->
        let d = Input_processor.function_digest pr ~salt f in
        let part =
          match mem_find_in c c.c_fn_mem d with
          | Some part ->
              Atomic.incr c.c_fn_mem_hits;
              touch_disk ~suffix:fn_suffix c d;
              Some part
          | None -> (
              match disk_find_fn ~faults ~retries c d with
              | Some part ->
                  Atomic.incr c.c_fn_disk_hits;
                  mem_store_in c c.c_fn_mem d part;
                  Some part
              | None -> None)
        in
        (f, d, part))
      fns
  in
  let store_part d part =
    mem_store_in c c.c_fn_mem d part;
    disk_store_fn ~faults ~retries c d part
  in
  if List.for_all (fun (_, _, part) -> part = None) probed then begin
    (* nothing reusable: one whole-file compilation, then seed the
       function tier from its parts *)
    let input = Input_processor.process_prepared pr in
    let bridge = Bridge.create input.Input_processor.binast in
    let parts =
      List.map
        (fun (f, d, _) ->
          let part =
            Metric_gen.build_part input.Input_processor.ast bridge f
          in
          store_part d part;
          part)
        probed
    in
    (Metric_gen.assemble ~source_name:src_name parts, None)
  end
  else
    let misses = ref 0 in
    let parts =
      List.map
        (fun (f, d, part) ->
          match part with
          | Some part -> part
          | None ->
              let binast = Input_processor.process_function pr f in
              let bridge = Bridge.create binast in
              let part =
                Metric_gen.build_part pr.Input_processor.pr_ast bridge f
              in
              Atomic.incr c.c_fn_fresh;
              incr misses;
              store_part d part;
              part)
        probed
    in
    (Metric_gen.assemble ~source_name:src_name parts, Some !misses)

let analyze_one ~level ~cache ~incremental ~limits ~faults
    { src_name; src_text } =
  let retries = limits.Limits.retries in
  let fresh () =
    let input = Input_processor.process ~level ~source_name:src_name src_text in
    let bridge = Bridge.create input.binast in
    let model = Metric_gen.build ~source_name:src_name input.ast bridge in
    { p_name = src_name; p_model = model; p_python = Python_emit.emit model }
  in
  (* A hit may come from an identical source under another name:
     re-emission runs off the current name so output stays
     byte-identical to a fresh analysis. *)
  let rename p =
    if p.p_name = src_name then p
    else
      let model = { p.p_model with Model_ir.source_name = src_name } in
      { p_name = src_name; p_model = model; p_python = Python_emit.emit model }
  in
  match
    (* each source gets its own budget: a hostile input exhausts its
       fuel, depth or deadline and becomes a diagnostic — it cannot
       hang or crash the worker domain *)
    Limits.Budget.install (Limits.budget limits) (fun () ->
        (match faults with
        | Some f ->
            if f.Faults.slow_ms > 0
               && Faults.fires f ~p:f.slow_p ~site:"slow" ~subject:src_name
            then Unix.sleepf (float_of_int f.slow_ms /. 1000.0);
            if Faults.fires f ~p:f.worker_p ~site:"worker" ~subject:src_name
            then raise (Faults.Injected "worker")
        | None -> ());
        let k = key ~level src_text in
        match cache with
        | None -> (fresh (), Fresh)
        | Some c -> (
            match mem_find c k with
            | Some p ->
                touch_disk ~suffix:file_suffix c k;
                (rename p, Mem)
            | None -> (
                match disk_find ~faults ~retries c k with
                | Some p ->
                    mem_store c k p;
                    (rename p, Disk)
                | None ->
                    let p, tier =
                      if incremental then
                        let model, misses =
                          analyze_incremental ~level ~faults ~retries c
                            ~src_name ~src_text
                        in
                        ( {
                            p_name = src_name;
                            p_model = model;
                            p_python = Python_emit.emit model;
                          },
                          match misses with
                          | None -> Fresh
                          | Some m -> Assembled m )
                      else (fresh (), Fresh)
                    in
                    mem_store c k p;
                    disk_store ~faults ~retries c k p;
                    (p, tier))))
  with
  | payload, tier ->
      ( Ok
          {
            a_name = src_name;
            a_model = payload.p_model;
            a_python = payload.p_python;
            a_warnings = Model_ir.all_warnings payload.p_model;
            a_cached =
              (match tier with
              | Fresh -> false
              | Mem | Disk -> true
              (* assembled entirely from cached parts (e.g. a
                 formatting-only edit): no re-analysis happened *)
              | Assembled misses -> misses = 0);
          },
        tier )
  | exception e ->
      (* classify everything: user errors keep their position, budget
         and timeout overruns are first-class, and anything unexpected
         becomes Internal_error with a captured backtrace instead of
         masquerading as an input problem *)
      (Error (src_name, Diag.of_exn e), Fresh)

(* ---------- the worker pool ---------- *)

let run ?(jobs = 1) ?cache ?(incremental = true)
    ?(level = Mira_codegen.Codegen.O1) ?(limits = Limits.default) ?faults
    sources =
  Printexc.record_backtrace true;
  let health0 =
    match cache with
    | Some c -> cache_health c
    | None ->
        {
          h_corrupt = 0;
          h_io_retries = 0;
          h_io_failures = 0;
          h_fn_mem_hits = 0;
          h_fn_disk_hits = 0;
          h_fn_fresh = 0;
        }
  in
  let tasks = Array.of_list sources in
  let n = Array.length tasks in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let analyzed = Atomic.make 0
  and mem_hits = Atomic.make 0
  and disk_hits = Atomic.make 0
  and assembled = Atomic.make 0
  and failed = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let res, tier =
          analyze_one ~level ~cache ~incremental ~limits ~faults tasks.(i)
        in
        (match (res, tier) with
        | Error _, _ -> Atomic.incr failed
        | Ok _, Fresh -> Atomic.incr analyzed
        | Ok _, Mem -> Atomic.incr mem_hits
        | Ok _, Disk -> Atomic.incr disk_hits
        | Ok _, Assembled _ -> Atomic.incr assembled);
        (* slot write: the merge below replays input order, so
           scheduling cannot reorder results *)
        out.(i) <- Some res;
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs (max 1 n)) in
  if jobs = 1 then worker ()
  else begin
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  end;
  let results = Array.to_list (Array.map (fun r -> Option.get r) out) in
  let count_diag pred =
    List.fold_left
      (fun acc r ->
        match r with Error (_, d) when pred d -> acc + 1 | _ -> acc)
      0 results
  in
  let health =
    match cache with Some c -> cache_health c | None -> health0
  in
  ( results,
    {
      st_total = n;
      st_analyzed = Atomic.get analyzed;
      st_mem_hits = Atomic.get mem_hits;
      st_disk_hits = Atomic.get disk_hits;
      st_failed = Atomic.get failed;
      st_jobs = jobs;
      st_budget = count_diag Diag.is_budget;
      st_injected =
        count_diag (fun d -> d.Diag.d_kind = Diag.Injected_fault);
      (* cache health is reported as this run's delta, so a cache value
         reused across runs doesn't double-count *)
      st_cache_corrupt = health.h_corrupt - health0.h_corrupt;
      st_io_retries = health.h_io_retries - health0.h_io_retries;
      st_io_failures = health.h_io_failures - health0.h_io_failures;
      st_assembled = Atomic.get assembled;
      st_fn_mem_hits = health.h_fn_mem_hits - health0.h_fn_mem_hits;
      st_fn_disk_hits = health.h_fn_disk_hits - health0.h_fn_disk_hits;
      st_fn_analyzed = health.h_fn_fresh - health0.h_fn_fresh;
    } )

(* ---------- reporting ---------- *)

let report results stats =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun res ->
      match res with
      | Ok a ->
          (* no cache marker here: per-source report lines are
             byte-identical whether the source was analyzed or served
             from cache; only the stats line below reflects tiers *)
          pr "%s: %d function(s)\n" a.a_name
            (List.length a.a_model.Model_ir.functions);
          List.iter
            (fun (fm : Model_ir.fmodel) ->
              pr "  %s(%s)\n" fm.Model_ir.mf_name
                (String.concat ", " fm.Model_ir.mf_params))
            a.a_model.Model_ir.functions;
          List.iter (fun (f, w) -> pr "  warning [%s] %s\n" f w) a.a_warnings
      | Error (name, diag) -> pr "%s: FAILED: %s\n" name (Diag.to_string diag))
    results;
  pr "batch: %d source(s), %d analyzed, %d memory hit(s), %d disk hit(s), %d failed\n"
    stats.st_total stats.st_analyzed stats.st_mem_hits stats.st_disk_hits
    stats.st_failed;
  if
    stats.st_assembled + stats.st_fn_mem_hits + stats.st_fn_disk_hits
    + stats.st_fn_analyzed
    > 0
  then
    pr
      "batch: function tier: %d source(s) assembled, %d memory hit(s), %d \
       disk hit(s), %d function(s) analyzed\n"
      stats.st_assembled stats.st_fn_mem_hits stats.st_fn_disk_hits
      stats.st_fn_analyzed;
  if
    stats.st_budget + stats.st_injected + stats.st_cache_corrupt
    + stats.st_io_retries + stats.st_io_failures
    > 0
  then
    pr "robustness: %d budget-limited, %d injected fault(s), %d corrupt cache \
        entr(ies), %d I/O retr(ies), %d I/O failure(s)\n"
      stats.st_budget stats.st_injected stats.st_cache_corrupt
      stats.st_io_retries stats.st_io_failures;
  Buffer.contents buf
