type source = { src_name : string; src_text : string }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of_file path =
  { src_name = Filename.basename path; src_text = read_file path }

let sources_of_paths paths =
  List.concat_map
    (fun path ->
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mc")
        |> List.sort compare
        |> List.map (fun f -> source_of_file (Filename.concat path f))
      else [ source_of_file path ])
    paths

type analysis = {
  a_name : string;
  a_model : Model_ir.t;
  a_python : string;
  a_warnings : (string * string) list;
  a_cached : bool;
}

type result = (analysis, string * Diag.t) Stdlib.result

type stats = {
  st_total : int;
  st_analyzed : int;
  st_mem_hits : int;
  st_disk_hits : int;
  st_failed : int;
  st_jobs : int;
  st_budget : int;
  st_injected : int;
  st_cache_corrupt : int;
  st_io_retries : int;
  st_io_failures : int;
}

(* ---------- content addressing ---------- *)

(* bumped from mira-batch-1: disk payloads are now checksummed *)
let cache_version = "mira-batch-2"

let level_tag = function
  | Mira_codegen.Codegen.O0 -> "O0"
  | Mira_codegen.Codegen.O1 -> "O1"
  | Mira_codegen.Codegen.O2 -> "O2"

let key ~level text =
  Digest.to_hex
    (Digest.string (cache_version ^ "\x00" ^ level_tag level ^ "\x00" ^ text))

(* ---------- two-tier cache ---------- *)

(* What a cache entry holds: the model plus the Python emitted for it
   under [p_name].  Emission is deterministic in (model, name), so a
   hit under the same name reuses [p_python] verbatim and a hit under
   another name (renamed identical file) re-emits from the model —
   either way the output is byte-identical to a fresh analysis. *)
type payload = { p_name : string; p_model : Model_ir.t; p_python : string }

(* The memory tier is an LRU keyed by digest; entries carry a use tick
   and eviction scans for the minimum (capacities are small).  All
   access goes through [c_lock]: lookups and stores are brief, the
   expensive analysis itself runs outside the lock.  The health
   counters are atomics, not lock-protected: they are bumped from
   worker domains during disk I/O, outside the lock. *)
type cache = {
  c_lock : Mutex.t;
  c_mem : (string, payload * int ref) Hashtbl.t;
  c_capacity : int;
  mutable c_tick : int;
  c_dir : string option;
  c_corrupt : int Atomic.t;  (* checksum/decode failures detected *)
  c_retries : int Atomic.t;  (* I/O attempts retried *)
  c_io_fail : int Atomic.t;  (* I/O given up on after retries *)
}

let is_tmp_name f =
  (* entries are published as <digest>.model; anything still carrying a
     .tmp. infix is an orphan from an interrupted writer *)
  let rec find_sub i =
    i + 5 <= String.length f && (String.sub f i 5 = ".tmp." || find_sub (i + 1))
  in
  find_sub 0

let sweep_orphans dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter
        (fun f ->
          if is_tmp_name f then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        entries

let create_cache ?(capacity = 512) ?dir () =
  (match dir with
  | Some d when Sys.file_exists d -> sweep_orphans d
  | _ -> ());
  {
    c_lock = Mutex.create ();
    c_mem = Hashtbl.create 64;
    c_capacity = max 1 capacity;
    c_tick = 0;
    c_dir = dir;
    c_corrupt = Atomic.make 0;
    c_retries = Atomic.make 0;
    c_io_fail = Atomic.make 0;
  }

type cache_health = { h_corrupt : int; h_io_retries : int; h_io_failures : int }

let cache_health c =
  {
    h_corrupt = Atomic.get c.c_corrupt;
    h_io_retries = Atomic.get c.c_retries;
    h_io_failures = Atomic.get c.c_io_fail;
  }

let locked c f =
  Mutex.lock c.c_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.c_lock) f

let mem_find c k =
  locked c (fun () ->
      match Hashtbl.find_opt c.c_mem k with
      | None -> None
      | Some (m, tick) ->
          c.c_tick <- c.c_tick + 1;
          tick := c.c_tick;
          Some m)

let mem_store c k m =
  locked c (fun () ->
      if not (Hashtbl.mem c.c_mem k) then begin
        if Hashtbl.length c.c_mem >= c.c_capacity then begin
          (* evict the least recently used entry *)
          let victim = ref None in
          Hashtbl.iter
            (fun k' (_, tick) ->
              match !victim with
              | Some (_, t) when t <= !tick -> ()
              | _ -> victim := Some (k', !tick))
            c.c_mem;
          match !victim with
          | Some (k', _) -> Hashtbl.remove c.c_mem k'
          | None -> ()
        end;
        c.c_tick <- c.c_tick + 1;
        Hashtbl.add c.c_mem k (m, ref c.c_tick)
      end)

(* ---------- checksummed disk payloads ---------- *)

exception Corrupt_entry of string

let payload_magic = "MIRAC2\n"

let encode_payload (m : payload) =
  let body = Marshal.to_string m [] in
  payload_magic ^ Digest.string body ^ body

let decode_payload data : payload =
  let mlen = String.length payload_magic in
  if String.length data < mlen + 16 then raise (Corrupt_entry "truncated entry");
  if String.sub data 0 mlen <> payload_magic then
    raise (Corrupt_entry "bad magic");
  let digest = String.sub data mlen 16 in
  let body = String.sub data (mlen + 16) (String.length data - mlen - 16) in
  if Digest.string body <> digest then
    raise (Corrupt_entry "checksum mismatch");
  (* the checksum matched, so this is byte-for-byte what a writer
     produced and unmarshalling is safe *)
  match (Marshal.from_string body 0 : payload) with
  | p -> p
  | exception _ -> raise (Corrupt_entry "undecodable payload")

(* ---------- retrying disk I/O ---------- *)

let backoff_s attempt = 0.0005 *. (4.0 ** float_of_int attempt)

(* Run [op attempt], retrying transient [Sys_error]s with bounded
   exponential backoff.  [op] receives the attempt number so fault
   injection can key on it (a retry may then succeed, exercising the
   recovery path rather than looping on the same decision). *)
let with_io_retries c ~retries op =
  let rec go attempt =
    try op attempt
    with Sys_error _ when attempt < retries ->
      Atomic.incr c.c_retries;
      Unix.sleepf (backoff_s attempt);
      go (attempt + 1)
  in
  go 0

let inject_io faults ~p ~site ~subject ~attempt =
  match faults with
  | Some f when Faults.fires f ~p:(p f) ~site ~subject:(Printf.sprintf "%s#%d" subject attempt)
    ->
      raise (Sys_error ("injected " ^ site))
  | _ -> ()

let disk_path dir k = Filename.concat dir (k ^ ".model")

let disk_find ~faults ~retries c k =
  match c.c_dir with
  | None -> None
  | Some dir -> (
      let path = disk_path dir k in
      if not (Sys.file_exists path) then None
      else
        match
          with_io_retries c ~retries (fun attempt ->
              inject_io faults
                ~p:(fun f -> f.Faults.read_p)
                ~site:"disk_read" ~subject:k ~attempt;
              read_file path)
        with
        | exception Sys_error _ ->
            (* persistently unreadable: degrade to a miss *)
            Atomic.incr c.c_io_fail;
            None
        | data -> (
            match decode_payload data with
            | p -> Some p
            | exception Corrupt_entry _ ->
                (* detected, counted, and removed so the fresh result
                   can be rewritten cleanly *)
                Atomic.incr c.c_corrupt;
                (try Sys.remove path with Sys_error _ -> ());
                None))

let disk_store ~faults ~retries c k m =
  match c.c_dir with
  | None -> ()
  | Some dir -> (
      let data =
        let full = encode_payload m in
        match faults with
        | Some f when Faults.fires f ~p:f.corrupt_p ~site:"corrupt" ~subject:k
          ->
            (* a deliberately truncated payload: readable, wrong
               checksum — must be detected on the next read *)
            String.sub full 0 (String.length full / 2)
        | _ -> full
      in
      let tmp =
        disk_path dir (Printf.sprintf "%s.tmp.%d" k (Domain.self () :> int))
      in
      match
        with_io_retries c ~retries (fun attempt ->
            if not (Sys.file_exists dir) then begin
              try Sys.mkdir dir 0o755
              with Sys_error _ when Sys.file_exists dir -> ()
            end;
            inject_io faults
              ~p:(fun f -> f.Faults.write_p)
              ~site:"disk_write" ~subject:k ~attempt;
            let oc = open_out_bin tmp in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc data);
            inject_io faults
              ~p:(fun f -> f.Faults.rename_p)
              ~site:"rename" ~subject:k ~attempt;
            Sys.rename tmp (disk_path dir k))
      with
      | () -> ()
      | exception Sys_error _ ->
          (* a cold cache next time, never a failed batch; don't leave
             the orphan behind (the next create_cache would sweep it,
             but be tidy) *)
          Atomic.incr c.c_io_fail;
          (try Sys.remove tmp with Sys_error _ -> ()))

(* ---------- one task ---------- *)

type tier = Fresh | Mem | Disk

let analyze_one ~level ~cache ~limits ~faults { src_name; src_text } =
  let retries = limits.Limits.retries in
  let fresh () =
    let input = Input_processor.process ~level ~source_name:src_name src_text in
    let bridge = Bridge.create input.binast in
    let model = Metric_gen.build ~source_name:src_name input.ast bridge in
    { p_name = src_name; p_model = model; p_python = Python_emit.emit model }
  in
  (* A hit may come from an identical source under another name:
     re-emission runs off the current name so output stays
     byte-identical to a fresh analysis. *)
  let rename p =
    if p.p_name = src_name then p
    else
      let model = { p.p_model with Model_ir.source_name = src_name } in
      { p_name = src_name; p_model = model; p_python = Python_emit.emit model }
  in
  match
    (* each source gets its own budget: a hostile input exhausts its
       fuel, depth or deadline and becomes a diagnostic — it cannot
       hang or crash the worker domain *)
    Limits.Budget.install (Limits.budget limits) (fun () ->
        (match faults with
        | Some f ->
            if f.Faults.slow_ms > 0
               && Faults.fires f ~p:f.slow_p ~site:"slow" ~subject:src_name
            then Unix.sleepf (float_of_int f.slow_ms /. 1000.0);
            if Faults.fires f ~p:f.worker_p ~site:"worker" ~subject:src_name
            then raise (Faults.Injected "worker")
        | None -> ());
        let k = key ~level src_text in
        match cache with
        | None -> (fresh (), Fresh)
        | Some c -> (
            match mem_find c k with
            | Some p -> (rename p, Mem)
            | None -> (
                match disk_find ~faults ~retries c k with
                | Some p ->
                    mem_store c k p;
                    (rename p, Disk)
                | None ->
                    let p = fresh () in
                    mem_store c k p;
                    disk_store ~faults ~retries c k p;
                    (p, Fresh))))
  with
  | payload, tier ->
      ( Ok
          {
            a_name = src_name;
            a_model = payload.p_model;
            a_python = payload.p_python;
            a_warnings = Model_ir.all_warnings payload.p_model;
            a_cached = tier <> Fresh;
          },
        tier )
  | exception e ->
      (* classify everything: user errors keep their position, budget
         and timeout overruns are first-class, and anything unexpected
         becomes Internal_error with a captured backtrace instead of
         masquerading as an input problem *)
      (Error (src_name, Diag.of_exn e), Fresh)

(* ---------- the worker pool ---------- *)

let run ?(jobs = 1) ?cache ?(level = Mira_codegen.Codegen.O1)
    ?(limits = Limits.default) ?faults sources =
  Printexc.record_backtrace true;
  let health0 =
    match cache with
    | Some c -> cache_health c
    | None -> { h_corrupt = 0; h_io_retries = 0; h_io_failures = 0 }
  in
  let tasks = Array.of_list sources in
  let n = Array.length tasks in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let analyzed = Atomic.make 0
  and mem_hits = Atomic.make 0
  and disk_hits = Atomic.make 0
  and failed = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let res, tier = analyze_one ~level ~cache ~limits ~faults tasks.(i) in
        (match (res, tier) with
        | Error _, _ -> Atomic.incr failed
        | Ok _, Fresh -> Atomic.incr analyzed
        | Ok _, Mem -> Atomic.incr mem_hits
        | Ok _, Disk -> Atomic.incr disk_hits);
        (* slot write: the merge below replays input order, so
           scheduling cannot reorder results *)
        out.(i) <- Some res;
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs (max 1 n)) in
  if jobs = 1 then worker ()
  else begin
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  end;
  let results = Array.to_list (Array.map (fun r -> Option.get r) out) in
  let count_diag pred =
    List.fold_left
      (fun acc r ->
        match r with Error (_, d) when pred d -> acc + 1 | _ -> acc)
      0 results
  in
  let health =
    match cache with Some c -> cache_health c | None -> health0
  in
  ( results,
    {
      st_total = n;
      st_analyzed = Atomic.get analyzed;
      st_mem_hits = Atomic.get mem_hits;
      st_disk_hits = Atomic.get disk_hits;
      st_failed = Atomic.get failed;
      st_jobs = jobs;
      st_budget = count_diag Diag.is_budget;
      st_injected =
        count_diag (fun d -> d.Diag.d_kind = Diag.Injected_fault);
      (* cache health is reported as this run's delta, so a cache value
         reused across runs doesn't double-count *)
      st_cache_corrupt = health.h_corrupt - health0.h_corrupt;
      st_io_retries = health.h_io_retries - health0.h_io_retries;
      st_io_failures = health.h_io_failures - health0.h_io_failures;
    } )

(* ---------- reporting ---------- *)

let report results stats =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun res ->
      match res with
      | Ok a ->
          (* no cache marker here: per-source report lines are
             byte-identical whether the source was analyzed or served
             from cache; only the stats line below reflects tiers *)
          pr "%s: %d function(s)\n" a.a_name
            (List.length a.a_model.Model_ir.functions);
          List.iter
            (fun (fm : Model_ir.fmodel) ->
              pr "  %s(%s)\n" fm.Model_ir.mf_name
                (String.concat ", " fm.Model_ir.mf_params))
            a.a_model.Model_ir.functions;
          List.iter (fun (f, w) -> pr "  warning [%s] %s\n" f w) a.a_warnings
      | Error (name, diag) -> pr "%s: FAILED: %s\n" name (Diag.to_string diag))
    results;
  pr "batch: %d source(s), %d analyzed, %d memory hit(s), %d disk hit(s), %d failed\n"
    stats.st_total stats.st_analyzed stats.st_mem_hits stats.st_disk_hits
    stats.st_failed;
  if
    stats.st_budget + stats.st_injected + stats.st_cache_corrupt
    + stats.st_io_retries + stats.st_io_failures
    > 0
  then
    pr "robustness: %d budget-limited, %d injected fault(s), %d corrupt cache \
        entr(ies), %d I/O retr(ies), %d I/O failure(s)\n"
      stats.st_budget stats.st_injected stats.st_cache_corrupt
      stats.st_io_retries stats.st_io_failures;
  Buffer.contents buf
