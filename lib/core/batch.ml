type source = { src_name : string; src_text : string }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of_file path =
  { src_name = Filename.basename path; src_text = read_file path }

let sources_of_paths paths =
  List.concat_map
    (fun path ->
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mc")
        |> List.sort compare
        |> List.map (fun f -> source_of_file (Filename.concat path f))
      else [ source_of_file path ])
    paths

type analysis = {
  a_name : string;
  a_model : Model_ir.t;
  a_python : string;
  a_warnings : (string * string) list;
  a_cached : bool;
}

type result = (analysis, string * string) Stdlib.result

type stats = {
  st_total : int;
  st_analyzed : int;
  st_mem_hits : int;
  st_disk_hits : int;
  st_failed : int;
  st_jobs : int;
}

(* ---------- content addressing ---------- *)

let cache_version = "mira-batch-1"

let level_tag = function
  | Mira_codegen.Codegen.O0 -> "O0"
  | Mira_codegen.Codegen.O1 -> "O1"
  | Mira_codegen.Codegen.O2 -> "O2"

let key ~level text =
  Digest.to_hex
    (Digest.string (cache_version ^ "\x00" ^ level_tag level ^ "\x00" ^ text))

(* ---------- two-tier cache ---------- *)

(* What a cache entry holds: the model plus the Python emitted for it
   under [p_name].  Emission is deterministic in (model, name), so a
   hit under the same name reuses [p_python] verbatim and a hit under
   another name (renamed identical file) re-emits from the model —
   either way the output is byte-identical to a fresh analysis. *)
type payload = { p_name : string; p_model : Model_ir.t; p_python : string }

(* The memory tier is an LRU keyed by digest; entries carry a use tick
   and eviction scans for the minimum (capacities are small).  All
   access goes through [c_lock]: lookups and stores are brief, the
   expensive analysis itself runs outside the lock. *)
type cache = {
  c_lock : Mutex.t;
  c_mem : (string, payload * int ref) Hashtbl.t;
  c_capacity : int;
  mutable c_tick : int;
  c_dir : string option;
}

let create_cache ?(capacity = 512) ?dir () =
  {
    c_lock = Mutex.create ();
    c_mem = Hashtbl.create 64;
    c_capacity = max 1 capacity;
    c_tick = 0;
    c_dir = dir;
  }

let locked c f =
  Mutex.lock c.c_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.c_lock) f

let mem_find c k =
  locked c (fun () ->
      match Hashtbl.find_opt c.c_mem k with
      | None -> None
      | Some (m, tick) ->
          c.c_tick <- c.c_tick + 1;
          tick := c.c_tick;
          Some m)

let mem_store c k m =
  locked c (fun () ->
      if not (Hashtbl.mem c.c_mem k) then begin
        if Hashtbl.length c.c_mem >= c.c_capacity then begin
          (* evict the least recently used entry *)
          let victim = ref None in
          Hashtbl.iter
            (fun k' (_, tick) ->
              match !victim with
              | Some (_, t) when t <= !tick -> ()
              | _ -> victim := Some (k', !tick))
            c.c_mem;
          match !victim with
          | Some (k', _) -> Hashtbl.remove c.c_mem k'
          | None -> ()
        end;
        c.c_tick <- c.c_tick + 1;
        Hashtbl.add c.c_mem k (m, ref c.c_tick)
      end)

let disk_path dir k = Filename.concat dir (k ^ ".model")

let disk_find c k =
  match c.c_dir with
  | None -> None
  | Some dir -> (
      let path = disk_path dir k in
      try
        let data = read_file path in
        Some (Marshal.from_string data 0 : payload)
      with _ -> None)

let disk_store c k m =
  match c.c_dir with
  | None -> ()
  | Some dir -> (
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let tmp =
          disk_path dir
            (Printf.sprintf "%s.tmp.%d" k (Domain.self () :> int))
        in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Marshal.to_string m []));
        Sys.rename tmp (disk_path dir k)
      with _ -> () (* a cold cache next time, never a failed batch *))

(* ---------- one task ---------- *)

type tier = Fresh | Mem | Disk

let analyze_one ~level ~cache { src_name; src_text } =
  let fresh () =
    let input = Input_processor.process ~level ~source_name:src_name src_text in
    let bridge = Bridge.create input.binast in
    let model = Metric_gen.build ~source_name:src_name input.ast bridge in
    { p_name = src_name; p_model = model; p_python = Python_emit.emit model }
  in
  (* A hit may come from an identical source under another name:
     re-emission runs off the current name so output stays
     byte-identical to a fresh analysis. *)
  let rename p =
    if p.p_name = src_name then p
    else
      let model = { p.p_model with Model_ir.source_name = src_name } in
      { p_name = src_name; p_model = model; p_python = Python_emit.emit model }
  in
  try
    let k = key ~level src_text in
    let payload, tier =
      match cache with
      | None -> (fresh (), Fresh)
      | Some c -> (
          match mem_find c k with
          | Some p -> (rename p, Mem)
          | None -> (
              match disk_find c k with
              | Some p ->
                  mem_store c k p;
                  (rename p, Disk)
              | None ->
                  let p = fresh () in
                  mem_store c k p;
                  disk_store c k p;
                  (p, Fresh)))
    in
    ( Ok
        {
          a_name = src_name;
          a_model = payload.p_model;
          a_python = payload.p_python;
          a_warnings = Model_ir.all_warnings payload.p_model;
          a_cached = tier <> Fresh;
        },
      tier )
  with
  | Mira_srclang.Lexer.Error (m, p) ->
      (Error (src_name, Printf.sprintf "lex error at %d:%d: %s" p.line p.col m), Fresh)
  | Mira_srclang.Parser.Error (m, p) ->
      ( Error (src_name, Printf.sprintf "parse error at %d:%d: %s" p.line p.col m),
        Fresh )
  | Mira_srclang.Annot.Error m ->
      (Error (src_name, "annotation error: " ^ m), Fresh)
  | Mira_codegen.Codegen.Error (m, p) ->
      ( Error
          (src_name, Printf.sprintf "codegen error at %d:%d: %s" p.line p.col m),
        Fresh )
  | Failure m -> (Error (src_name, m), Fresh)

(* ---------- the worker pool ---------- *)

let run ?(jobs = 1) ?cache ?(level = Mira_codegen.Codegen.O1) sources =
  let tasks = Array.of_list sources in
  let n = Array.length tasks in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let analyzed = Atomic.make 0
  and mem_hits = Atomic.make 0
  and disk_hits = Atomic.make 0
  and failed = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let res, tier = analyze_one ~level ~cache tasks.(i) in
        (match (res, tier) with
        | Error _, _ -> Atomic.incr failed
        | Ok _, Fresh -> Atomic.incr analyzed
        | Ok _, Mem -> Atomic.incr mem_hits
        | Ok _, Disk -> Atomic.incr disk_hits);
        (* slot write: the merge below replays input order, so
           scheduling cannot reorder results *)
        out.(i) <- Some res;
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs (max 1 n)) in
  if jobs = 1 then worker ()
  else begin
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  end;
  let results =
    Array.to_list (Array.map (fun r -> Option.get r) out)
  in
  ( results,
    {
      st_total = n;
      st_analyzed = Atomic.get analyzed;
      st_mem_hits = Atomic.get mem_hits;
      st_disk_hits = Atomic.get disk_hits;
      st_failed = Atomic.get failed;
      st_jobs = jobs;
    } )

(* ---------- reporting ---------- *)

let report results stats =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun res ->
      match res with
      | Ok a ->
          (* no cache marker here: per-source report lines are
             byte-identical whether the source was analyzed or served
             from cache; only the stats line below reflects tiers *)
          pr "%s: %d function(s)\n" a.a_name
            (List.length a.a_model.Model_ir.functions);
          List.iter
            (fun (fm : Model_ir.fmodel) ->
              pr "  %s(%s)\n" fm.Model_ir.mf_name
                (String.concat ", " fm.Model_ir.mf_params))
            a.a_model.Model_ir.functions;
          List.iter (fun (f, w) -> pr "  warning [%s] %s\n" f w) a.a_warnings
      | Error (name, msg) -> pr "%s: FAILED: %s\n" name msg)
    results;
  pr "batch: %d source(s), %d analyzed, %d memory hit(s), %d disk hit(s), %d failed\n"
    stats.st_total stats.st_analyzed stats.st_mem_hits stats.st_disk_hits
    stats.st_failed;
  Buffer.contents buf
