(* Minimal JSON emission — no external dependency, compact output,
   deterministic byte-for-byte (the golden tests pin it).  This module
   is the single machine-readable encoding shared by `mira batch
   --format json`, `mira client --format json` and the daemon's
   watch/reanalyze frames. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Raw of string  (* pre-encoded JSON, spliced verbatim *)
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Raw s -> Buffer.add_string b s
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* ---------- encoders (the stable schema of docs/PROTOCOL.md) ---------- *)

let opt_str = function None -> Null | Some s -> Str s
let str_list xs = Arr (List.map (fun s -> Str s) xs)

let of_span (s : Diag.span) =
  Obj
    [
      ("label", opt_str s.sp_label);
      ("line", Int s.sp_pos.Mira_srclang.Loc.line);
      ("col", Int s.sp_pos.Mira_srclang.Loc.col);
    ]

let of_diag (d : Diag.t) =
  Obj
    [
      ("phase", Str (Diag.phase_to_string d.d_phase));
      ("kind", Str (Diag.kind_to_string d.d_kind));
      ("message", Str d.d_message);
      ("spans", Arr (List.map of_span d.d_spans));
      ("rendered", Str (Diag.to_string d));
    ]

let of_fmodel (m : Model_ir.t) (f : Model_ir.fmodel) =
  Obj
    [
      ("name", Str f.mf_name);
      ("python_name", Str (Model_ir.python_name f));
      ("class", opt_str f.mf_class);
      ("arity", Int f.mf_arity);
      ("params", str_list f.mf_params);
      ("source_params", str_list f.mf_source_params);
      ("warnings", str_list f.mf_warnings);
      ("python", Str (Python_emit.emit_function m f.mf_name));
    ]

let of_model (m : Model_ir.t) =
  Obj
    [
      ("file", Str m.Model_ir.source_name);
      ("functions", Arr (List.map (of_fmodel m) m.Model_ir.functions));
      ("python", Str (Python_emit.emit m));
    ]

let analysis_fields (a : Batch.analysis) =
  [
    ("file", Str a.a_name);
    ("cached", Bool a.a_cached);
    ( "functions",
      Arr (List.map (of_fmodel a.a_model) a.a_model.Model_ir.functions) );
    ( "warnings",
      Arr
        (List.map
           (fun (f, w) -> Obj [ ("function", Str f); ("message", Str w) ])
           a.a_warnings) );
    ("python", Str a.a_python);
  ]

let of_analysis a = Obj (("status", Str "ok") :: analysis_fields a)

let of_result = function
  | Ok a -> of_analysis a
  | Error (name, d) ->
      Obj [ ("status", Str "error"); ("file", Str name); ("diag", of_diag d) ]

let of_stats (s : Batch.stats) =
  Obj
    [
      ("total", Int s.st_total);
      ("analyzed", Int s.st_analyzed);
      ("mem_hits", Int s.st_mem_hits);
      ("disk_hits", Int s.st_disk_hits);
      ("failed", Int s.st_failed);
      ("jobs", Int s.st_jobs);
      ("budget", Int s.st_budget);
      ("injected", Int s.st_injected);
      ("cache_corrupt", Int s.st_cache_corrupt);
      ("io_retries", Int s.st_io_retries);
      ("io_failures", Int s.st_io_failures);
      ("assembled", Int s.st_assembled);
      ("fn_mem_hits", Int s.st_fn_mem_hits);
      ("fn_disk_hits", Int s.st_fn_disk_hits);
      ("fn_analyzed", Int s.st_fn_analyzed);
    ]

let of_batch results stats =
  Obj
    [
      ("results", Arr (List.map of_result results)); ("stats", of_stats stats);
    ]
