(** Eval-layer microbenchmark: sweep-throughput of the three
    evaluation tiers — one-shot {!Model_eval.eval}, a reusable
    {!Model_eval.plan}, and the {!Model_compile} register program —
    over one swept variable.  [mira bench-eval] renders the results
    into [BENCH_eval.json]; every run cross-checks a sample of sweep
    points against the interpreter first (failing loudly on
    divergence), so the recorded throughput is always that of a
    correct evaluator. *)

type target = {
  tg_label : string;  (** name recorded in the result *)
  tg_source_name : string;
  tg_source : string;  (** source text to analyze *)
  tg_fname : string;  (** mangled function name *)
  tg_sweep : string;  (** swept parameter *)
  tg_lo : int;
  tg_hi : int;  (** inclusive sweep range — one eval per value *)
  tg_fixed : (string * int) list;  (** remaining parameters *)
}

type result = {
  br_label : string;
  br_fname : string;
  br_points : int;  (** evals per pass *)
  br_legacy_ns : float;  (** per-eval, one-shot interpretation *)
  br_plan_ns : float;  (** per-eval, hoisted plan *)
  br_compiled_ns : float;  (** per-eval, register program *)
  br_legacy_eps : float;  (** evals/second *)
  br_plan_eps : float;
  br_compiled_eps : float;
  br_speedup_vs_plan : float;
  br_speedup_vs_legacy : float;
  br_prog_ops : int;  (** compiled program length *)
  br_max_rel_err : float;  (** observed in the verification sample *)
}

val default_min_time_s : float

val run : ?min_time_s:float -> ?verify_points:int -> target -> result
(** Measure one target.  Each tier's timing loop is calibrated: whole
    sweep passes are doubled until at least [min_time_s] (default
    0.5s) of work is measured.
    @raise Model_compile.Not_compilable when the target has no closed
    form (pick targets that do).
    @raise Failure when compiled and interpreted results diverge
    beyond 1e-6 relative tolerance. *)
