(** Daemon endpoints: where a [mira serve] listens and a client
    connects.

    The grammar is parsed and printed in exactly one place — here:

    {v
      unix:PATH          a Unix-domain socket at PATH
      tcp:HOST:PORT      a TCP socket (PORT 0 asks the OS for an
                         ephemeral port when listening)
      PATH               compatibility: a bare string with no
                         unix:/tcp: prefix is a Unix-socket path
    v}

    [HOST] is a dotted-quad address or a resolvable name; IPv6
    bracket syntax is not supported.  The rendered form
    ({!to_string}) always carries the explicit scheme, and for a
    TCP endpoint bound on port 0 the resolved form carries the port
    the OS actually assigned (see {!listen}). *)

type t =
  | Unix_sock of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

val parse : string -> (t, string) result
(** Parse the grammar above.  Errors name the offending part
    (empty path, malformed or out-of-range port, missing host). *)

val parse_exn : string -> t
(** {!parse}, raising [Invalid_argument] on error. *)

val to_string : t -> string
(** Canonical rendering, always scheme-prefixed:
    ["unix:/run/mira.sock"], ["tcp:127.0.0.1:7441"]. *)

val transport : t -> string
(** ["unix"] or ["tcp"] — the value daemons report in the
    [transport=] field of a [stats] response. *)

val equal : t -> t -> bool

val connect : ?io_timeout_ms:int -> t -> Unix.file_descr
(** Connect to a daemon at this endpoint.  With [io_timeout_ms > 0]
    the connect, and every subsequent read and write on the
    descriptor, is bounded: a wedged or stalled daemon surfaces as
    [Unix_error (ETIMEDOUT, _, _)] (connect) or a frame-layer
    timeout instead of hanging the caller forever.  [0] (the
    default) keeps the descriptor fully blocking.  TCP sockets get
    [TCP_NODELAY] — frames are small and latency-sensitive. *)

val listen : ?backlog:int -> t -> Unix.file_descr * t
(** Bind and listen; returns the listening descriptor and the
    {e resolved} endpoint — identical to the input except for
    [tcp:HOST:0], where the OS-assigned port is substituted so the
    caller can advertise a connectable address.

    For a Unix endpoint, a leftover socket file from a dead daemon
    is detected (connect probe) and replaced; a live one raises
    [Failure]. *)
