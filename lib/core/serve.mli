(** [mira serve]: a long-lived analysis daemon on a Unix-domain
    socket.

    The daemon keeps one {!Batch.cache} warm across requests — models
    are generated once and evaluated many times, so the serving layer
    is where the two-tier cache pays off — and exposes the analysis
    pipeline to untrusted clients.  Its contract is that {e no request
    can take it down}:

    - The wire format is a length-prefixed, versioned, checksummed
      frame ({!read_frame} / {!write_frame}).  Malformed input —
      bad magic, oversized length prefixes, truncated frames, checksum
      mismatches, garbage payloads — is answered with a structured
      error frame; whenever the frame boundary can no longer be
      trusted (including checksum mismatches: the digest covers only
      the payload, so a corrupted length prefix surfaces as one) the
      connection is also dropped.  The accept loop is never affected.
    - Every analysis runs under a per-request {!Limits} budget: the
      server's defaults, clamped further by the request (a request can
      only tighten its budget, never exceed the server's).  A hostile
      source exhausts its fuel or deadline and becomes an error frame.
    - Worker exceptions are caught and rendered as {!Diag}-derived
      error frames; the connection, and the daemon, live on.
    - Admission is bounded: at most [cfg_max_inflight] connections are
      served concurrently; beyond that, new connections receive an
      [overloaded] frame and are closed (load shedding — memory use
      never grows with offered load).
    - {!stop} (wired to SIGTERM/SIGINT by the CLI, and to the
      [shutdown] request) drains in-flight requests up to a hard
      deadline before {!serve} returns.

    {2 Wire protocol}

    Frame: [magic(6) ∥ length(4, big-endian) ∥ MD5(payload)(16) ∥
    payload].  Payloads are text: a [mira/1 <verb>] (request) or
    [mira/1 <status>] (response) head line, [key=value] field lines, a
    blank line, then a raw body (the source text, the emitted Python,
    …).  Requests: [ping], [stats], [analyze], [eval], [shutdown].
    Response statuses: [ok], [error], [overloaded]. *)

(** {1 Configuration} *)

type config = {
  cfg_socket : string;  (** Unix-domain socket path *)
  cfg_max_inflight : int;  (** concurrent connections before shedding *)
  cfg_max_frame_bytes : int;  (** largest accepted request payload *)
  cfg_idle_timeout_ms : int;
      (** per-read/write socket timeout; a stalled (slow-loris) client
          is disconnected, never waited on forever; [0] disables *)
  cfg_drain_ms : int;
      (** hard deadline for the graceful-shutdown drain *)
  cfg_level : Mira_codegen.Codegen.level;
  cfg_limits : Limits.t;  (** per-request budget ceiling *)
  cfg_cache : Batch.cache option;  (** the warm cache, shared by all requests *)
  cfg_incremental : bool;
  cfg_faults : Faults.t option;
      (** deterministic fault schedule (worker and wire sites) *)
}

val default_config : socket:string -> config
(** 8 in-flight, 4 MiB frames, 30 s idle timeout, 2 s drain, [O1],
    {!Limits.default}, no cache, incremental on, no faults. *)

(** {1 Frame layer}

    Exposed so tests (and any other client) can speak — and abuse —
    the wire format directly. *)

val magic : string
(** The 6-byte frame magic; its last byte before the newline is the
    frame-format version. *)

type frame_error =
  | Closed  (** clean EOF between frames *)
  | Truncated  (** EOF mid-frame *)
  | Bad_magic
  | Oversized of int  (** declared payload length exceeds the cap *)
  | Bad_checksum
  | Timed_out  (** the socket timeout expired mid-read *)

val frame_error_to_string : frame_error -> string

val write_frame : ?faults:Faults.t -> Unix.file_descr -> string -> unit
(** Frame [payload] and write it fully.  With [faults], the [net_write]
    site truncates the write mid-frame (short write), the [disconnect]
    site truncates it and shuts the socket down, and the [slow] site
    stalls [slow_ms] between header and payload (a slow client) —
    each raising/returning exactly as the real condition would. *)

val read_frame :
  ?max_bytes:int -> Unix.file_descr -> (string, frame_error) result
(** Read one frame's payload ([max_bytes] caps the declared length;
    default 4 MiB). *)

(** {1 Requests and responses} *)

type budget_request = {
  rq_fuel : int option;
  rq_timeout_ms : int option;
  rq_depth : int option;
}
(** Per-request budget clamp: each field, when set, {e lowers} the
    server's corresponding default ([min]); it can never raise it. *)

val no_budget : budget_request

type request =
  | Ping
  | Stats
  | Shutdown
  | Analyze of {
      an_name : string;  (** source name used in the model/report *)
      an_source : string;
      an_budget : budget_request;
    }
  | Eval of {
      ev_name : string;
      ev_source : string;
      ev_function : string;  (** mangled function name *)
      ev_params : (string * int) list;
      ev_budget : budget_request;
    }

val encode_request : request -> string
(** The request payload (to hand to {!write_frame}). *)

val parse_request : string -> (request, string) result

type response = {
  rs_status : string;  (** ["ok"], ["error"] or ["overloaded"] *)
  rs_fields : (string * string) list;  (** in wire order; keys repeat *)
  rs_body : string;
}

val encode_response : response -> string
val parse_response : string -> (response, string) result

val field : response -> string -> string option
(** First field with that key. *)

(** {1 Server} *)

type server_stats = {
  sv_uptime_ms : int;
  sv_served : int;  (** requests answered [ok] *)
  sv_failed : int;  (** requests answered [error] *)
  sv_shed : int;  (** connections answered [overloaded] and dropped *)
  sv_protocol_errors : int;  (** malformed frames rejected *)
  sv_inflight : int;  (** connections being served right now *)
  sv_inflight_hwm : int;  (** in-flight high-water mark *)
  (* accumulated Batch.stats over every analyze/eval served, so an
     operator can watch cache efficiency and robustness degrade before
     it becomes an outage *)
  sv_analyzed : int;
  sv_mem_hits : int;
  sv_disk_hits : int;
  sv_assembled : int;
  sv_fn_mem_hits : int;
  sv_fn_disk_hits : int;
  sv_fn_analyzed : int;
  sv_cache_corrupt : int;
  sv_io_retries : int;
  sv_io_failures : int;
}

val stats_fields : server_stats -> (string * string) list
(** Deterministically ordered [key=value] rendering — the body of a
    [stats] response. *)

type t

val create : config -> t
(** Bind and listen.  A leftover socket file from a dead daemon is
    detected (connect probe) and replaced; a live one raises
    [Failure].  Also ignores SIGPIPE process-wide: a client
    disconnecting mid-response must surface as [EPIPE] on that
    connection, not kill the process. *)

val stop : t -> unit
(** Begin graceful shutdown: stop accepting, let in-flight requests
    finish (up to [cfg_drain_ms]), then force-close stragglers.  Safe
    to call from a signal handler or another thread; idempotent. *)

val serve : t -> server_stats
(** Run the accept loop in the calling thread until {!stop} (or a
    [shutdown] request) and the drain complete; returns the final
    stats.  Connections are handled on threads; analyses reuse the
    shared cache. *)

val stats : t -> server_stats
(** A live snapshot (what a [stats] request returns). *)

(** {1 Client helpers} *)

val connect : ?io_timeout_ms:int -> string -> Unix.file_descr
(** Connect to a daemon's socket.  With [io_timeout_ms > 0] the
    connect, and every subsequent read and write on the descriptor,
    is bounded: a wedged or stalled daemon surfaces as
    [Unix_error (ETIMEDOUT, _, _)] (connect) or {!Timed_out}
    (roundtrip) instead of hanging the client forever.  [0] (the
    default) keeps the descriptor fully blocking. *)

val roundtrip :
  ?faults:Faults.t ->
  ?max_bytes:int ->
  Unix.file_descr ->
  request ->
  (response, string) result
(** One request/response exchange on an open connection. *)

val wait_ready : ?timeout_s:float -> string -> bool
(** Poll [connect]+[ping] until the daemon answers (for scripts and
    tests that just started one); [false] on timeout (default 5 s). *)
