(** [mira serve]: a long-lived analysis daemon on one or more
    {!Endpoint}s (Unix-domain and/or TCP).

    The daemon keeps one {!Batch.cache} warm across requests — models
    are generated once and evaluated many times, so the serving layer
    is where the two-tier cache pays off — and exposes the analysis
    pipeline to untrusted clients.  Its contract is that {e no request
    can take it down}:

    - The wire format is a length-prefixed, versioned, checksummed
      frame ({!read_frame} / {!write_frame}); the full grammar, the
      [id=] pipelining tags, and the error taxonomy are documented in
      [docs/PROTOCOL.md] — that page is the stable wire API.
      Malformed input is answered with a structured error frame;
      whenever the frame boundary can no longer be trusted (including
      checksum mismatches: the digest covers only the payload, so a
      corrupted length prefix surfaces as one) the connection is also
      dropped.  The accept loop is never affected.
    - Every analysis runs under a per-request {!Limits} budget: the
      server's defaults, clamped further by the request (a request can
      only tighten its budget, never exceed the server's).  A hostile
      source exhausts its fuel or deadline and becomes an error frame.
    - Worker exceptions are caught and rendered as {!Diag}-derived
      error frames; the connection, and the daemon, live on.
    - Admission is bounded twice over: at most [cfg_max_inflight]
      connections are served concurrently (beyond that, new
      connections receive an [overloaded] frame and are closed), and
      each connection pipelines at most [cfg_max_pipeline] tagged
      requests (beyond that, the connection's reader stops consuming,
      backpressuring the socket).  Memory use never grows with
      offered load.
    - {!stop} (wired to SIGTERM/SIGINT by the CLI, and to the
      [shutdown] request) drains in-flight requests up to a hard
      deadline before {!serve} returns.

    {2 Pipelining}

    A request carrying an [id=] field may be answered out of order:
    the daemon dispatches it concurrently (bounded by
    [cfg_max_pipeline]) and echoes the tag on the response —
    including error responses — so a client holding several requests
    on one connection re-associates each answer by its id.  Requests
    without an [id=] keep the original strictly-serial semantics; the
    two styles can be mixed but serial requests then see arbitrary
    interleaving, so clients should pick one per connection.
    {!Client} implements the tagged style, with pooling and failover,
    on top of this. *)

(** {1 Configuration} *)

type config = {
  cfg_endpoints : Endpoint.t list;
      (** listeners; at least one ([unix:] and [tcp:] freely mixed) *)
  cfg_max_inflight : int;  (** concurrent connections before shedding *)
  cfg_max_pipeline : int;
      (** tagged requests in flight per connection before the reader
          stops consuming (socket backpressure) *)
  cfg_max_frame_bytes : int;  (** largest accepted request payload *)
  cfg_idle_timeout_ms : int;
      (** per-read/write socket timeout; a stalled (slow-loris) client
          is disconnected, never waited on forever — but a client
          merely waiting for its pipelined responses is not idle;
          [0] disables *)
  cfg_drain_ms : int;
      (** hard deadline for the graceful-shutdown drain *)
  cfg_workers : int;
      (** analysis worker threads: analyze/eval requests run on this
          fixed pool, so concurrent analyses are bounded by the pool,
          not by connection or request count *)
  cfg_level : Mira_codegen.Codegen.level;
  cfg_limits : Limits.t;  (** per-request budget ceiling *)
  cfg_cache : Batch.cache option;  (** the warm cache, shared by all requests *)
  cfg_incremental : bool;
  cfg_faults : Faults.t option;
      (** deterministic fault schedule (worker and wire sites; the
          wire sites fire identically over Unix and TCP transports) *)
  cfg_auth_secret : string option;
      (** shared-secret frame authentication ({!Auth}): when set, every
          [tcp:] request frame must carry a valid [auth=] MAC (optional
          on [unix:], but verified when present), rejected frames are
          answered with an [auth] error and dropped before they reach
          the parser or the analysis pool, and every outgoing frame is
          sealed in turn *)
}

val default_config_endpoints : endpoints:Endpoint.t list -> config
(** 8 in-flight connections, 8-deep pipelines, 4 MiB frames, 30 s idle
    timeout, 2 s drain, 8 workers, [O1], {!Limits.default}, no cache,
    incremental on, no faults. *)

val default_config : socket:string -> config
(** [default_config_endpoints] over a single Unix-socket endpoint. *)

(** {1 Frame layer}

    Exposed so tests (and any other client) can speak — and abuse —
    the wire format directly.  See [docs/PROTOCOL.md] for the byte
    layout and payload grammar. *)

val magic : string
(** The 6-byte frame magic; its last byte before the newline is the
    frame-format version. *)

type frame_error =
  | Closed  (** clean EOF between frames *)
  | Truncated  (** EOF mid-frame *)
  | Bad_magic
  | Oversized of int  (** declared payload length exceeds the cap *)
  | Bad_checksum
  | Timed_out  (** the socket timeout expired mid-read *)

val frame_error_to_string : frame_error -> string

val write_frame : ?faults:Faults.t -> Unix.file_descr -> string -> unit
(** Frame [payload] and write it fully.  With [faults], the [net_write]
    site truncates the write mid-frame (short write), the [disconnect]
    site truncates it and shuts the socket down, and the [slow] site
    stalls [slow_ms] between header and payload (a slow client) —
    each raising/returning exactly as the real condition would, on
    either transport. *)

val read_frame :
  ?max_bytes:int -> Unix.file_descr -> (string, frame_error) result
(** Read one frame's payload ([max_bytes] caps the declared length;
    default 4 MiB). *)

(** {1 Requests and responses} *)

type budget_request = {
  rq_fuel : int option;
  rq_timeout_ms : int option;
  rq_depth : int option;
}
(** Per-request budget clamp: each field, when set, {e lowers} the
    server's corresponding default ([min]); it can never raise it. *)

val no_budget : budget_request

type sweep_binding = {
  sb_index : int;
      (** caller-chosen tag echoed as [binding=] on the response frame;
          what lets a coordinator track completion across re-dispatch *)
  sb_source : string;  (** names an entry of [sw_sources] *)
  sb_function : string;
  sb_params : (string * int) list;
}

type request =
  | Ping
  | Stats
  | Health
      (** readiness/liveness probe, answered inline by the event loop:
          the response carries [state=starting|ready|draining|overloaded]
          plus [inflight=], [max-inflight=], [workers=], [served=] and
          [failed=] fields.  [starting] means the process answered but
          the serve loop is not live yet; [draining] that {!stop} has
          begun; [overloaded] that admission is at [cfg_max_inflight].
          Purely additive to the wire format — a pre-health daemon
          answers it with an [unknown request verb] error, which probes
          should treat as "ready, but old".  The {!Supervisor} polls
          this verb to distinguish a wedged child from a busy one. *)
  | Shutdown
  | Analyze of {
      an_name : string;  (** source name used in the model/report *)
      an_source : string;
      an_budget : budget_request;
    }
  | Eval of {
      ev_name : string;
      ev_source : string;
      ev_function : string;  (** mangled function name *)
      ev_params : (string * int) list;
      ev_budget : budget_request;
    }
  | Sweep of {
      sw_sources : (string * string) list;  (** (name, text), each once *)
      sw_bindings : sweep_binding list;
      sw_budget : budget_request;  (** clamp shared by every binding *)
    }
      (** a whole sweep chunk in one frame: the daemon schedules the
          bindings across its worker pool and streams one
          [binding=]-tagged response frame per binding (in completion
          order) followed by a terminal [sweep-done=1] frame.  Requires
          an [id=] tag; see "The sweep verb" in [docs/PROTOCOL.md]. *)
  | Watch of { wt_path : string; wt_source : string }
      (** register [wt_path] with the daemon's watch-mode session and
          analyze it cold.  An empty [wt_source] makes the daemon read
          the file from its own filesystem (shared-filesystem
          deployment); otherwise the body carries the text.  Response:
          [path=], [functions=] fields and the model's JSON encoding as
          body.  See "Watch mode" in [docs/PROTOCOL.md]. *)
  | Reanalyze of { rz_path : string; rz_source : string }
      (** diff the new text of a watched file against its last
          analyzed state, re-analyze exactly the invalidated functions
          (including cross-file dependents) on the worker pool, and
          stream one [binding=]-tagged frame per invalidated function
          followed by a terminal [reanalyze-done=1] frame carrying the
          reassembled models.  Requires an [id=] tag, like {!Sweep}. *)
  | Forget of { fg_path : string }
      (** drop a file from the watch-mode session ([forgotten=0] when
          it was not watched). *)

val encode_request : ?id:string -> request -> string
(** The request payload (to hand to {!write_frame}).  With [id], the
    request is tagged for pipelining: the daemon may answer it out of
    order and echoes [id] on the response.  Without it, the payload is
    byte-identical to the pre-pipelining wire format. *)

val parse_request : string -> (request, string) result
(** The request proper; any [id=] tag is read separately
    ({!payload_id}) so it survives even verbs this parser rejects. *)

val payload_id : string -> string option
(** The [id=] field of a request payload, when the payload parses at
    all — extracted independently of the verb so even a bad-request
    error frame can be re-associated by a pipelining client. *)

type response = {
  rs_status : string;  (** ["ok"], ["error"] or ["overloaded"] *)
  rs_fields : (string * string) list;  (** in wire order; keys repeat *)
  rs_body : string;
}

val encode_response : response -> string
val parse_response : string -> (response, string) result

val field : response -> string -> string option
(** First field with that key ([field r "id"] recovers the pipelining
    tag). *)

(** {1 Server} *)

type server_stats = {
  sv_uptime_ms : int;
  sv_served : int;  (** requests answered [ok] *)
  sv_failed : int;  (** requests answered [error] *)
  sv_shed : int;  (** connections answered [overloaded] and dropped *)
  sv_protocol_errors : int;  (** malformed frames rejected *)
  sv_inflight : int;  (** connections being served right now *)
  sv_inflight_hwm : int;  (** in-flight high-water mark *)
  (* accumulated Batch.stats over every analyze/eval served, so an
     operator can watch cache efficiency and robustness degrade before
     it becomes an outage *)
  sv_analyzed : int;
  sv_mem_hits : int;
  sv_disk_hits : int;
  sv_assembled : int;
  sv_fn_mem_hits : int;
  sv_fn_disk_hits : int;
  sv_fn_analyzed : int;
  sv_cache_corrupt : int;
  sv_io_retries : int;
  sv_io_failures : int;
  (* the compiled-evaluator cache (see {!Model_compile}): eval and
     sweep requests compile each (model, function, parameter-name set)
     once and re-run the program per binding *)
  sv_compile_hits : int;
  sv_compile_misses : int;
  sv_compile_fallbacks : int;
      (** evals answered by the interpreter (model not compilable) *)
}

val stats_fields : server_stats -> (string * string) list
(** Deterministically ordered [key=value] rendering — the body of a
    [stats] response.  The response additionally carries [proto=mira/1]
    and [transport=unix|tcp] fields, so a pool can refuse a mismatched
    daemon with a clear diagnostic instead of a decode error. *)

type t

val create : config -> t
(** Bind and listen on every configured endpoint (all bound before any
    is served; a failure unwinds them all).  For Unix endpoints a
    leftover socket file from a dead daemon is detected (connect
    probe) and replaced; a live one raises [Failure].  Also ignores
    SIGPIPE process-wide: a client disconnecting mid-response must
    surface as [EPIPE] on that connection, not kill the process. *)

val bound_endpoints : t -> Endpoint.t list
(** The endpoints actually listening — identical to [cfg_endpoints]
    except that a [tcp:HOST:0] request carries the OS-assigned
    ephemeral port, so callers can advertise a connectable address. *)

val stop : t -> unit
(** Begin graceful shutdown: stop accepting, let in-flight requests
    finish (up to [cfg_drain_ms]), then force-close stragglers.  Safe
    to call from a signal handler or another thread; idempotent. *)

val serve : t -> server_stats
(** Run the event loop in the calling thread until {!stop} (or a
    [shutdown] request) and the drain complete; returns the final
    stats.  All sockets are serviced by one poller here — an idle
    connection costs a descriptor, not a thread — while analyze/eval
    requests run on the [cfg_workers] pool and reuse the shared
    cache; ping/stats/shutdown are answered inline by the loop.  See
    "Server concurrency model" in [docs/PROTOCOL.md]. *)

val stats : t -> server_stats
(** A live snapshot (what a [stats] request returns). *)

(** {1 Low-level client helpers}

    One blocking request per connection, no pooling, no pipelining —
    kept for tests and scripts that drive the frame layer directly.
    Real clients should use {!Client}. *)

val connect : ?io_timeout_ms:int -> string -> Unix.file_descr
(** Connect to a daemon's Unix socket
    ([Endpoint.connect (Unix_sock path)]).  With [io_timeout_ms > 0]
    the connect, and every subsequent read and write on the
    descriptor, is bounded: a wedged or stalled daemon surfaces as
    [Unix_error (ETIMEDOUT, _, _)] (connect) or {!Timed_out}
    (roundtrip) instead of hanging the client forever.  [0] (the
    default) keeps the descriptor fully blocking. *)

val roundtrip :
  ?faults:Faults.t ->
  ?max_bytes:int ->
  ?auth_secret:string ->
  Unix.file_descr ->
  request ->
  (response, string) result
(** One request/response exchange on an open connection.  With
    [auth_secret] the request is sealed ({!Auth.seal}) and the
    response must verify — a secret-bearing daemon seals everything it
    sends.  Not suitable for [Sweep] (multiple response frames). *)

val wait_ready : ?timeout_s:float -> string -> bool
(** Poll [connect]+[ping] until the daemon answers (for scripts and
    tests that just started one); [false] on timeout (default 5 s). *)
