(** Structured diagnostics.

    Every way an analysis can fail — a malformed source, an exhausted
    budget, a wall-clock timeout, cache corruption, an injected fault,
    or a genuine bug in Mira itself — is described by one {!t}: the
    pipeline phase that failed, a machine-readable {!kind}, a human
    message, the source position when one is known, and a captured
    backtrace for internal errors.  {!Batch} threads these through its
    results in place of ad-hoc strings, and the CLI maps {!kind}s to
    distinct exit codes. *)

type phase =
  | Lex
  | Parse
  | Annotate
  | Typecheck
  | Codegen
  | Analysis  (** metric generation / model emission *)
  | Cache
  | Driver  (** the batch driver or worker machinery itself *)

type kind =
  | User_error  (** the input is malformed; fix the source *)
  | Budget_exhausted  (** fuel or recursion-depth budget ran out *)
  | Timeout  (** the per-source wall-clock deadline passed *)
  | Io_error  (** persistent I/O failure after retries *)
  | Cache_corrupt  (** checksum/decode failure on a disk cache entry *)
  | Injected_fault  (** a {!Faults} schedule fired on purpose *)
  | Internal_error  (** an unexpected exception: a bug in Mira *)

type t = {
  d_phase : phase;
  d_kind : kind;
  d_message : string;
  d_pos : Mira_srclang.Loc.pos option;
  d_backtrace : string option;  (** captured for [Internal_error] *)
}

val make :
  ?pos:Mira_srclang.Loc.pos -> ?backtrace:string -> phase -> kind -> string -> t

val of_exn : ?phase:phase -> exn -> t
(** Classify an exception raised during analysis.  Known pipeline
    exceptions ([Lexer.Error], [Parser.Error], [Annot.Error],
    [Typecheck.Check_error], [Codegen.Error], [Metric_gen.Unsupported],
    [Budget.Exhausted], [Faults.Injected], [Stack_overflow], …) map to
    their phase and kind; anything else — including a bare [Failure] —
    becomes [Internal_error] with the current backtrace attached.
    [phase] is the fallback phase for exceptions that do not pin one
    down (default [Analysis]). *)

val phase_to_string : phase -> string
val kind_to_string : kind -> string

val to_string : t -> string
(** One-line rendering, e.g. ["parse error at 3:7: expected \";\""] or
    ["budget exhausted: fuel"].  Deterministic (never includes the
    backtrace — use {!d_backtrace} for that). *)

val is_budget : t -> bool
(** [Budget_exhausted] or [Timeout] — the "slow source" family that
    the CLI reports with its own exit code. *)
