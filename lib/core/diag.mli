(** Structured diagnostics.

    Every way an analysis can fail — a malformed source, an exhausted
    budget, a wall-clock timeout, cache corruption, an injected fault,
    or a genuine bug in Mira itself — is described by one {!t}: the
    pipeline phase that failed, a machine-readable {!kind}, a human
    message, a list of source {!span}s (each an optional label plus a
    position; the first is the primary location), and a captured
    backtrace for internal errors.  {!Batch} threads these through its
    results in place of ad-hoc strings, the CLI maps {!kind}s to
    distinct exit codes, and {!Json.of_diag} gives the stable
    machine-readable encoding. *)

type phase =
  | Lex
  | Parse
  | Annotate
  | Typecheck
  | Codegen
  | Analysis  (** metric generation / model emission *)
  | Cache
  | Driver  (** the batch driver or worker machinery itself *)

type kind =
  | User_error  (** the input is malformed; fix the source *)
  | Budget_exhausted  (** fuel or recursion-depth budget ran out *)
  | Timeout  (** the per-source wall-clock deadline passed *)
  | Io_error  (** persistent I/O failure after retries *)
  | Cache_corrupt  (** checksum/decode failure on a disk cache entry *)
  | Injected_fault  (** a {!Faults} schedule fired on purpose *)
  | Internal_error  (** an unexpected exception: a bug in Mira *)

type span = { sp_label : string option; sp_pos : Mira_srclang.Loc.pos }
(** One source location a diagnostic points at.  The label carries the
    per-span message of a multi-error diagnostic ([None] when the main
    message is the whole story). *)

type t = {
  d_phase : phase;
  d_kind : kind;
  d_message : string;  (** the main message *)
  d_spans : span list;  (** primary span first; may be empty *)
  d_backtrace : string option;  (** captured for [Internal_error] *)
}

val span : ?label:string -> Mira_srclang.Loc.pos -> span

val make_spans :
  ?backtrace:string -> phase -> kind -> string -> span list -> t
(** The full constructor: main message plus any number of spans. *)

val make :
  ?pos:Mira_srclang.Loc.pos -> ?backtrace:string -> phase -> kind -> string -> t
(** Compat constructor (the pre-multi-span shape): [pos] becomes the
    unlabelled primary span.  Existing call sites migrate without
    edits. *)

val primary_pos : t -> Mira_srclang.Loc.pos option
(** The first span's position, when there is one — what [d_pos] used
    to be. *)

val of_exn : ?phase:phase -> exn -> t
(** Classify an exception raised during analysis.  Known pipeline
    exceptions ([Lexer.Error], [Parser.Error], [Annot.Error],
    [Typecheck.Check_error], [Codegen.Error], [Metric_gen.Unsupported],
    [Budget.Exhausted], [Faults.Injected], [Stack_overflow], …) map to
    their phase and kind; a multi-error [Check_error] becomes one
    labelled span per error under a count headline; anything else —
    including a bare [Failure] — becomes [Internal_error] with the
    current backtrace attached.  [phase] is the fallback phase for
    exceptions that do not pin one down (default [Analysis]). *)

val phase_to_string : phase -> string
val kind_to_string : kind -> string

val to_string : t -> string
(** Human rendering.  The head line is byte-identical to the
    pre-multi-span format — ["parse error at 3:7: expected \";\""] or
    ["budget exhausted: fuel"] — and each labelled span appends an
    indented ["\n  at L:C: label"] line.  Deterministic (never
    includes the backtrace — use {!d_backtrace} for that). *)

val to_editor_string : ?file:string -> t -> string
(** Editor-parsable rendering: one GNU-style
    ["file:line:col: label: message"] line per span (or a single
    positionless ["file: label: message"] line when the diagnostic has
    no spans).  [file] defaults to ["<input>"]. *)

val is_budget : t -> bool
(** [Budget_exhausted] or [Timeout] — the "slow source" family that
    the CLI reports with its own exit code. *)
