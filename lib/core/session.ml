(* Long-lived incremental analysis sessions (watch mode).

   A session holds, per watched file: the source text, the prepared
   (parsed, folded, typechecked) AST, the per-function fingerprint
   table, the per-function model parts, the assembled model and its
   emitted Python — plus the file's exported interface
   ({!Mira_srclang.Fingerprint.interface_of_program}) and each
   function's cross-file reference set ({!Fingerprint.func_refs}).

   Reanalysis is function-granular and mirrors PR 3's batch
   machinery exactly — [Input_processor.prepare] →
   [function_digest] diff → [process_function] → [Bridge.create] →
   [Metric_gen.build_part] → [Metric_gen.assemble] — so every warm
   model is byte-identical to a cold whole-file analysis: parts are a
   pure function of (function, closure) and the assembly fixpoint
   reruns over the full part set.

   Cross-file invalidation is name-based and conservative: each file
   is a self-contained program, but projects repeat shared
   declarations textually (the C-header discipline), so when file B's
   exported [sig:g] / [class:C] / [extern:x] / [ann:f] digest changes,
   every function in another file whose reference set contains that
   key is re-analyzed.  A dependent whose own source is unchanged
   recomputes an identical part (sound over-approximation), which is
   precisely what makes the byte-identity invariant testable alongside
   the invalidation counters.

   The three-phase API ({!plan} → {!recompute}* → {!commit}) lets the
   serve daemon run recomputations on its worker pool while all
   session-state reads and writes stay behind the internal mutex;
   {!reanalyze} composes the three for in-process callers (the
   [mira watch] CLI, tests, benchmarks). *)

type counters = {
  ct_files : int;  (* currently watched *)
  ct_reanalyses : int;  (* committed reanalyze calls *)
  ct_invalidated : int;  (* cumulative invalidated functions *)
  ct_local : int;  (* … of which same-file *)
  ct_cross : int;  (* … of which cross-file dependents *)
  ct_recomputed : int;  (* function recomputations performed *)
  ct_clean : int;  (* reanalyzes that invalidated nothing *)
}

let zero_counters =
  {
    ct_files = 0;
    ct_reanalyses = 0;
    ct_invalidated = 0;
    ct_local = 0;
    ct_cross = 0;
    ct_recomputed = 0;
    ct_clean = 0;
  }

type reason = Edited | Added | Cross of string

let reason_to_string = function
  | Edited -> "edited"
  | Added -> "added"
  | Cross key -> "cross:" ^ key

type inval = { iv_file : string; iv_func : string; iv_reason : reason }

type fstate = {
  f_source : string;
  f_prepared : Input_processor.prepared;
  f_digests : (string * string) list;  (* mangled name -> digest *)
  f_parts : (string * Metric_gen.part) list;  (* program order *)
  f_interface : (string * string) list;
  f_refs : (string * string list) list;
  f_model : Model_ir.t;
  f_python : string;
}

type t = {
  s_mu : Mutex.t;
  s_level : Mira_codegen.Codegen.level;
  s_limits : Limits.t;
  s_files : (string, fstate) Hashtbl.t;
  mutable s_counters : counters;
}

type info = {
  in_path : string;
  in_functions : string list;
  in_model : Model_ir.t;
  in_python : string;
}

type plan = {
  pl_path : string;
  pl_source : string;
  pl_prepared : Input_processor.prepared;
  pl_digests : (string * string) list;
  pl_interface : (string * string) list;
  pl_refs : (string * string list) list;
  pl_invalidated : inval list;
  pl_deleted : string list;
  pl_changed_keys : string list;
}

type update = {
  up_path : string;
  up_invalidated : inval list;
  up_recomputed : int;
  up_failed : int;
  up_cross_files : string list;
  up_deleted : string list;
  up_clean : bool;
  up_models : (string * Model_ir.t * string) list;
}

let create ?(level = Mira_codegen.Codegen.O1) ?(limits = Limits.default) () =
  {
    s_mu = Mutex.create ();
    s_level = level;
    s_limits = limits;
    s_files = Hashtbl.create 16;
    s_counters = zero_counters;
  }

let locked t f =
  Mutex.lock t.s_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.s_mu) f

(* every analysis runs under a fresh budget, exactly as one Batch
   source does: a hostile edit becomes a diagnostic, never a hang *)
let with_budget t f = Limits.Budget.install (Limits.budget t.s_limits) f

let salt = "mira-session-1"

let mangle (f : Mira_srclang.Ast.func) =
  match f.Mira_srclang.Ast.fclass with
  | None -> f.fname
  | Some c -> c ^ "::" ^ f.fname

let build_part_of pr f =
  let binast = Input_processor.process_function pr f in
  let bridge = Bridge.create binast in
  Metric_gen.build_part pr.Input_processor.pr_ast bridge f

(* Whole-file analysis, producing the full file state.  Identical
   pipeline to Batch's cold path: one compilation, parts for every
   function, assemble (= Metric_gen.build), emit. *)
let build_state t ~path text =
  let pr = Input_processor.prepare ~level:t.s_level ~source_name:path text in
  let input = Input_processor.process_prepared pr in
  let bridge = Bridge.create input.Input_processor.binast in
  let ast = pr.Input_processor.pr_ast in
  let fns = Mira_srclang.Ast.all_functions ast in
  let parts =
    List.map (fun f -> (mangle f, Metric_gen.build_part ast bridge f)) fns
  in
  let model = Metric_gen.assemble ~source_name:path (List.map snd parts) in
  {
    f_source = text;
    f_prepared = pr;
    f_digests =
      List.map
        (fun f -> (mangle f, Input_processor.function_digest pr ~salt f))
        fns;
    f_parts = parts;
    f_interface = Mira_srclang.Fingerprint.interface_of_program ast;
    f_refs =
      List.map (fun f -> (mangle f, Mira_srclang.Fingerprint.func_refs ast f)) fns;
    f_model = model;
    f_python = Python_emit.emit model;
  }

let info_of path st =
  {
    in_path = path;
    in_functions = List.map fst st.f_parts;
    in_model = st.f_model;
    in_python = st.f_python;
  }

let watch t ~path text =
  match with_budget t (fun () -> build_state t ~path text) with
  | exception e -> Error (Diag.of_exn e)
  | st ->
      locked t (fun () ->
          let fresh = not (Hashtbl.mem t.s_files path) in
          Hashtbl.replace t.s_files path st;
          if fresh then
            t.s_counters <-
              { t.s_counters with ct_files = t.s_counters.ct_files + 1 });
      Ok (info_of path st)

let forget t ~path =
  locked t (fun () ->
      let existed = Hashtbl.mem t.s_files path in
      if existed then begin
        Hashtbl.remove t.s_files path;
        t.s_counters <-
          { t.s_counters with ct_files = t.s_counters.ct_files - 1 }
      end;
      existed)

let paths t =
  locked t (fun () ->
      List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.s_files []))

let lookup t ~path =
  locked t (fun () -> Hashtbl.find_opt t.s_files path)
  |> Option.map (info_of path)

let counters t = locked t (fun () -> t.s_counters)

let source t ~path =
  locked t (fun () -> Hashtbl.find_opt t.s_files path)
  |> Option.map (fun st -> st.f_source)

let not_watched path =
  Diag.make Diag.Driver Diag.User_error
    (Printf.sprintf "not watched: %s (use watch first)" path)

let plan t ~path text =
  let watched = locked t (fun () -> Hashtbl.mem t.s_files path) in
  if not watched then Error (not_watched path)
  else
    match
      with_budget t (fun () ->
          let pr =
            Input_processor.prepare ~level:t.s_level ~source_name:path text
          in
          let ast = pr.Input_processor.pr_ast in
          let fns = Mira_srclang.Ast.all_functions ast in
          let digests =
            List.map
              (fun f -> (mangle f, Input_processor.function_digest pr ~salt f))
              fns
          in
          let interface = Mira_srclang.Fingerprint.interface_of_program ast in
          let refs =
            List.map
              (fun f ->
                (mangle f, Mira_srclang.Fingerprint.func_refs ast f))
              fns
          in
          (pr, digests, interface, refs))
    with
    | exception e -> Error (Diag.of_exn e)
    | pr, digests, interface, refs ->
        locked t (fun () ->
            match Hashtbl.find_opt t.s_files path with
            | None -> Error (not_watched path)
            | Some old ->
                let edited =
                  List.filter_map
                    (fun (n, d) ->
                      match List.assoc_opt n old.f_digests with
                      | Some od when od = d -> None
                      | Some _ ->
                          Some
                            { iv_file = path; iv_func = n; iv_reason = Edited }
                      | None ->
                          Some
                            { iv_file = path; iv_func = n; iv_reason = Added })
                    digests
                in
                let deleted =
                  List.filter_map
                    (fun (n, _) ->
                      if List.mem_assoc n digests then None else Some n)
                    old.f_digests
                in
                let changed_keys =
                  (* changed or added keys, plus removed ones: a
                     dependent referencing a vanished declaration
                     re-analyzes too *)
                  List.filter_map
                    (fun (k, d) ->
                      match List.assoc_opt k old.f_interface with
                      | Some od when od = d -> None
                      | _ -> Some k)
                    interface
                  @ List.filter_map
                      (fun (k, _) ->
                        if List.mem_assoc k interface then None else Some k)
                      old.f_interface
                in
                let cross =
                  if changed_keys = [] then []
                  else
                    Hashtbl.fold
                      (fun p st acc ->
                        if p = path then acc else (p, st) :: acc)
                      t.s_files []
                    |> List.sort (fun (a, _) (b, _) -> compare a b)
                    |> List.concat_map (fun (p, st) ->
                           List.filter_map
                             (fun (fn, frefs) ->
                               match
                                 List.find_opt
                                   (fun k -> List.mem k frefs)
                                   changed_keys
                               with
                               | Some k ->
                                   Some
                                     {
                                       iv_file = p;
                                       iv_func = fn;
                                       iv_reason = Cross k;
                                     }
                               | None -> None)
                             st.f_refs)
                in
                Ok
                  {
                    pl_path = path;
                    pl_source = text;
                    pl_prepared = pr;
                    pl_digests = digests;
                    pl_interface = interface;
                    pl_refs = refs;
                    pl_invalidated = edited @ cross;
                    pl_deleted = deleted;
                    pl_changed_keys = changed_keys;
                  })

let plan_invalidated pl = pl.pl_invalidated
let plan_path pl = pl.pl_path

let find_func ast name =
  List.find_opt
    (fun f -> mangle f = name)
    (Mira_srclang.Ast.all_functions ast)

(* Pure recomputation of one invalidated function's part.  Thread-safe
   (the daemon runs these on its worker pool): session state is only
   read, briefly, under the mutex; [prepared] records are immutable so
   a snapshot stays valid across a concurrent commit. *)
let recompute t plan inv =
  let work () =
    let pr =
      if inv.iv_file = plan.pl_path then plan.pl_prepared
      else
        match
          locked t (fun () -> Hashtbl.find_opt t.s_files inv.iv_file)
        with
        | Some st -> st.f_prepared
        | None ->
            failwith
              (Printf.sprintf "%s was forgotten mid-reanalysis" inv.iv_file)
    in
    match find_func pr.Input_processor.pr_ast inv.iv_func with
    | Some f -> build_part_of pr f
    | None ->
        failwith
          (Printf.sprintf "no function %s in %s" inv.iv_func inv.iv_file)
  in
  match with_budget t work with
  | part -> Ok part
  | exception e -> Error (Diag.of_exn e)

let distinct xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

(* Apply a finished plan.  [results] pairs every planned invalidation
   with its recomputation outcome (order free).  A file's state is
   replaced only when every one of its invalidated functions
   succeeded; a failure leaves that file's last good model in place
   and is reported in [up_failed].  Counters update under the same
   lock, so a stats probe races with a commit atomically. *)
let commit t plan results =
  locked t (fun () ->
      let part_of inv =
        List.find_map
          (fun (i, r) ->
            if i.iv_file = inv.iv_file && i.iv_func = inv.iv_func then
              match r with Ok p -> Some p | Error _ -> None
            else None)
          results
      in
      let failed =
        List.length
          (List.filter (fun (_, r) -> Result.is_error r) results)
      in
      let invals_of file =
        List.filter (fun iv -> iv.iv_file = file) plan.pl_invalidated
      in
      let file_ok file =
        List.for_all
          (fun iv -> Option.is_some (part_of iv))
          (invals_of file)
      in
      let touched = ref [] in
      let recomputed = ref 0 in
      (* the edited file: refresh source/digests/interface/refs even
         on a clean edit; rebuild the model when anything changed *)
      (match Hashtbl.find_opt t.s_files plan.pl_path with
      | None -> () (* forgotten mid-flight: drop the update *)
      | Some old ->
          let local = invals_of plan.pl_path in
          if file_ok plan.pl_path then begin
            let dirty = local <> [] || plan.pl_deleted <> [] in
            let parts =
              List.map
                (fun (name, _) ->
                  match
                    part_of { iv_file = plan.pl_path; iv_func = name;
                              iv_reason = Edited }
                  with
                  | Some p ->
                      incr recomputed;
                      (name, p)
                  | None -> (name, List.assoc name old.f_parts))
                plan.pl_digests
            in
            let model, python =
              if dirty then
                let m =
                  Metric_gen.assemble ~source_name:plan.pl_path
                    (List.map snd parts)
                in
                (m, Python_emit.emit m)
              else (old.f_model, old.f_python)
            in
            Hashtbl.replace t.s_files plan.pl_path
              {
                f_source = plan.pl_source;
                f_prepared = plan.pl_prepared;
                f_digests = plan.pl_digests;
                f_parts = parts;
                f_interface = plan.pl_interface;
                f_refs = plan.pl_refs;
                f_model = model;
                f_python = python;
              };
            if dirty then touched := (plan.pl_path, model, python) :: !touched
          end);
      (* cross-file dependents, in plan (sorted-path) order *)
      let cross_files =
        distinct
          (List.filter_map
             (fun iv ->
               if iv.iv_file = plan.pl_path then None else Some iv.iv_file)
             plan.pl_invalidated)
      in
      List.iter
        (fun file ->
          match Hashtbl.find_opt t.s_files file with
          | None -> ()
          | Some old when file_ok file ->
              let parts =
                List.map
                  (fun (name, old_part) ->
                    match
                      part_of
                        { iv_file = file; iv_func = name; iv_reason = Edited }
                    with
                    | Some p ->
                        incr recomputed;
                        (name, p)
                    | None -> (name, old_part))
                  old.f_parts
              in
              let model =
                Metric_gen.assemble ~source_name:file (List.map snd parts)
              in
              let python = Python_emit.emit model in
              Hashtbl.replace t.s_files file
                { old with f_parts = parts; f_model = model; f_python = python };
              touched := (file, model, python) :: !touched
          | Some _ -> ())
        cross_files;
      let local, cross =
        List.partition (fun iv -> iv.iv_file = plan.pl_path) plan.pl_invalidated
      in
      let clean = plan.pl_invalidated = [] && plan.pl_deleted = [] in
      let c = t.s_counters in
      t.s_counters <-
        {
          c with
          ct_reanalyses = c.ct_reanalyses + 1;
          ct_invalidated = c.ct_invalidated + List.length plan.pl_invalidated;
          ct_local = c.ct_local + List.length local;
          ct_cross = c.ct_cross + List.length cross;
          ct_recomputed = c.ct_recomputed + !recomputed;
          ct_clean = (c.ct_clean + if clean then 1 else 0);
        };
      {
        up_path = plan.pl_path;
        up_invalidated = plan.pl_invalidated;
        up_recomputed = !recomputed;
        up_failed = failed;
        up_cross_files = cross_files;
        up_deleted = plan.pl_deleted;
        up_clean = clean;
        up_models = List.rev !touched;
      })

let reanalyze t ~path text =
  match plan t ~path text with
  | Error d -> Error d
  | Ok pl ->
      let results =
        List.map (fun iv -> (iv, recompute t pl iv)) pl.pl_invalidated
      in
      let upd = commit t pl results in
      if upd.up_failed > 0 then
        (* surface the first failure: an in-process caller (CLI watch,
           tests) treats a failed edit like a failed batch source *)
        match
          List.find_map
            (fun (_, r) -> match r with Error d -> Some d | Ok _ -> None)
            results
        with
        | Some d -> Error d
        | None -> Ok upd
      else Ok upd
