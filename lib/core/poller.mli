(** A select-shaped interface over poll(2).

    [Unix.select] cannot watch a descriptor numbered >= FD_SETSIZE
    (1024 on Linux) — writing it into an [fd_set] is undefined
    behaviour — so the event-loop server and the bench-serve load
    generator, both of which hold thousands of sockets, go through
    this module instead.  Unix-only (the stub passes the descriptor's
    integer value straight to [poll]). *)

val rlimit_nofile : unit -> int
(** The soft RLIMIT_NOFILE: how many descriptors this process may
    hold.  Connection-scale benchmarks and tests size themselves (or
    skip) from this. *)

val wait :
  ?read:Unix.file_descr list ->
  ?write:Unix.file_descr list ->
  timeout_ms:int ->
  unit ->
  Unix.file_descr list * Unix.file_descr list
(** [wait ~read ~write ~timeout_ms ()] blocks until a watched
    descriptor is ready or the timeout elapses, and returns the
    (ready-to-read, ready-to-write) descriptors.  A descriptor may
    appear in both interest lists.  [timeout_ms < 0] waits forever;
    [timeout_ms = 0] polls.  Error/hangup conditions are reported
    under whichever interest was registered for that descriptor, so
    the owner sees them via its next read/write syscall.  Returns
    empty lists when interrupted by a signal — recompute deadlines and
    call again. *)
