(** The [mira bench-serve] load generator.

    A single event-driven thread ({!Poller}) holds [connections]
    pipelined connections to a daemon, each keeping [pipeline] tagged
    requests in flight (closed loop: a completion immediately issues
    the next request), with payloads drawn from a deterministic
    ping/eval/analyze {!mix}.  Reports throughput and p50/p99
    enqueue-to-response latency, so serving changes are measurable —
    [BENCH_serve.json] records the numbers across implementations. *)

type mix = { mx_ping : int; mx_eval : int; mx_analyze : int }
(** Relative weights; requests cycle through the mix deterministically
    (request [n] picks by [n mod total]), so two runs offer identical
    request sequences. *)

val default_mix : mix
(** [ping=8,eval=1,analyze=1] — wire-dominated with a steady trickle
    of real analysis work. *)

val mix_to_string : mix -> string

val parse_mix : string -> (mix, string) result
(** Parse ["ping=8,eval=1,analyze=1"]-style specs (unmentioned kinds
    get weight 0; at least one weight must be positive). *)

type run = {
  bs_connections : int;
  bs_pipeline : int;
  bs_elapsed_s : float;  (** measured wall time, including drain *)
  bs_ok : int;  (** [ok] responses *)
  bs_errors : int;  (** [error]/[overloaded] responses *)
  bs_dropped_conns : int;  (** connections that died mid-run *)
  bs_throughput_rps : float;
  bs_p50_ms : float;
  bs_p99_ms : float;
}

val run :
  endpoint:Endpoint.t ->
  connections:int ->
  pipeline:int ->
  duration_s:float ->
  mix:mix ->
  run
(** Drive the daemon at [endpoint] for [duration_s], then drain
    in-flight requests (bounded) and report.  The generator is
    deliberately identical whatever the server implementation, so
    before/after numbers are comparable. *)

val max_idle_probe :
  endpoint:Endpoint.t ->
  ?cap:int ->
  ?health_timeout_ms:int ->
  unit ->
  int * string
(** Open idle connections (in batches, health-checked with a fresh
    ping on a control connection) until the daemon stops answering
    within [health_timeout_ms], sheds/closes a probe connection, the
    OS refuses descriptors, or [cap] (default 8000) is reached.
    Returns how many idle connections were held at once, and why the
    probe stopped. *)
