(** Facade tying the pipeline together: source → input processing →
    bridge → metric generation → model, plus evaluation and reporting
    conveniences.  This is the API the CLI, examples and benchmarks
    use. *)

type t = {
  input : Input_processor.t;
  model : Model_ir.t;
}

val analyze :
  ?level:Mira_codegen.Codegen.level -> ?source_name:string -> string -> t
(** Analyze mini-C source text (builds the model for every function). *)

val analyze_file : ?level:Mira_codegen.Codegen.level -> string -> t

val analyze_batch :
  ?jobs:int ->
  ?cache:Batch.cache ->
  ?incremental:bool ->
  ?level:Mira_codegen.Codegen.level ->
  ?limits:Limits.t ->
  ?faults:Faults.t ->
  (string * string) list ->
  Batch.result list * Batch.stats
(** Analyze many [(name, source)] pairs through {!Batch}: a fixed-size
    pool of worker domains, deterministic input-order results, optional
    content-addressed memoization (with function-granular incremental
    reanalysis, on by default — see {!Batch.run}), per-source
    {!Limits} budgets, and an optional deterministic {!Faults}
    schedule. *)

val counts :
  t -> fname:string -> env:(string * int) list -> (string * float) list
(** Predicted per-mnemonic counts for one invocation of [fname] (the
    mangled name, e.g. ["cg_solve"] or ["A::foo"]). *)

val counts_split :
  t -> fname:string -> env:(string * int) list ->
  (string * (float * float)) list
(** (serial, parallel) per-mnemonic counts, split by [{parallel:yes}]
    annotations — feeds {!Predict.parallel_estimate}. *)

val fpi : t -> fname:string -> env:(string * int) list -> float
(** Predicted floating-point instruction count — the paper's headline
    metric. *)

val python_model : t -> string
(** The generated Python model (Figure 5). *)

val parameters : t -> fname:string -> string list
(** Model parameters [fname]'s evaluation requires. *)

val warnings : t -> (string * string) list
(** (function, warning) pairs accumulated during analysis. *)

val source_dot : t -> string
(** Source AST in Graphviz form (Figure 2). *)

val binary_dot : t -> string
(** Binary AST in Graphviz form (Figure 3). *)

val with_endpoint :
  ?io_timeout_ms:int -> Endpoint.t -> (Client.t -> 'a) -> 'a
(** Re-export of {!Client.with_endpoint}: open a pooled connection to
    one daemon, run the callback, close — the one-shot convenience for
    library users, who never need the {!Serve} frame codec directly:
    [Mira.with_endpoint e (fun c -> Client.request c Serve.Ping)]. *)
