(** The Input Processor (paper §III-A): parses the source into the
    source AST and puts the compiled object file through the binary
    path (encode → decode → disassemble) to obtain the binary AST.

    Note the deliberate round-trip: Mira only ever sees the {e decoded
    object bytes}, never the compiler's in-memory program, mirroring
    the paper's setup where the binary comes from an external
    toolchain.

    For incremental reanalysis the pipeline splits in two: {!prepare}
    does the cheap source-side work (parse, fold, typecheck, closure
    fingerprint) shared by every function, after which each function
    can be digested ({!function_digest}) and, on a cache miss,
    compiled and disassembled in isolation ({!process_function}). *)

type t = {
  source_name : string;
  source : string;
  ast : Mira_srclang.Ast.program;  (** typechecked source AST *)
  object_bytes : string;
  binast : Mira_visa.Binast.t;
  level : Mira_codegen.Codegen.level;
}

val process :
  ?level:Mira_codegen.Codegen.level -> source_name:string -> string -> t
(** Process mini-C source text.
    @raise Mira_srclang.Parser.Error, [Failure] (typechecking),
    Mira_codegen.Codegen.Error. *)

val process_file : ?level:Mira_codegen.Codegen.level -> string -> t

(** {2 Function-granular pipeline} *)

type prepared = {
  pr_source_name : string;
  pr_source : string;
  pr_level : Mira_codegen.Codegen.level;
  pr_ast : Mira_srclang.Ast.program;  (** folded, typechecked *)
  pr_closure : Mira_srclang.Fingerprint.context;
}

val prepare :
  ?level:Mira_codegen.Codegen.level -> source_name:string -> string -> prepared
(** Source-side half of {!process}: parse, fold, typecheck, and
    compute the fingerprint closure.  Raises exactly what {!process}
    raises for source-side errors. *)

val process_prepared : prepared -> t
(** Compile-side half: [process = process_prepared ∘ prepare]. *)

val function_digest : prepared -> salt:string -> Mira_srclang.Ast.func -> string
(** Content digest of one function of [pr_ast] under its closure; see
    {!Mira_srclang.Fingerprint.func_digest}. *)

val process_function : prepared -> Mira_srclang.Ast.func -> Mira_visa.Binast.t
(** Compile just this function (all others stubbed) and return the
    binary AST of the reduced program.  The kept function's
    instruction stream is identical to its stream in a whole-file
    {!process}, so a {!Bridge} over this binast yields an identical
    {!Metric_gen.part}. *)
