(** The Metric Generator (paper §III-B): traverses the source AST with
    the binary AST attached through the {!Bridge} and produces the
    performance model.

    The bottom-up phase of the paper (hoisting SCoP information to
    loop head nodes) corresponds to {!Scop} extraction here; the
    top-down phase is the walk that pushes polyhedral context (loop
    levels, branch constraints, annotation scales) into nested
    structures while claiming each structure's instructions from the
    bridge.

    Every instruction of every analyzed function is attributed exactly
    once: statement buckets claim their spans, loop heads claim their
    init/cond/step sub-spans with the right multiplicities (once,
    n+1, n), and whatever remains (prologue, epilogue) is charged once
    per invocation. *)

exception Unsupported of string * Mira_srclang.Loc.pos

type part = {
  fp_name : string;  (** mangled: [Class::method] for methods *)
  fp_source_params : string list;
  fp_arity : int;
  fp_class : string option;
  fp_entries : Model_ir.entry list;
  fp_warnings : string list;
  fp_free : string list;
      (** free model variables of [fp_entries], precomputed so the
          assembly fixpoint never re-walks the (possibly very large)
          multiplicity expressions *)
  fp_update_py : string option list;
      (** {!Python_emit.update_chunk} per entry, precomputed so
          emission of a cache-served function splices stored text *)
}
(** One function's contribution to the model before the whole-program
    parameter fixpoint.  A part depends only on the function and its
    analysis closure (signatures, classes, externs), never on other
    functions' bodies — which is what makes parts cacheable under a
    {!Mira_srclang.Fingerprint} digest. *)

val build_part : Mira_srclang.Ast.program -> Bridge.t -> Mira_srclang.Ast.func -> part
(** Model one function against a bridge that contains it (whole-file
    or reduced single-function compilation — the result is identical
    either way). *)

val assemble : source_name:string -> part list -> Model_ir.t
(** Run the cross-function parameter fixpoint over the parts and
    produce the model.  [assemble ~source_name (List.map (build_part
    prog bridge) (all_functions prog))] is exactly {!build}; parts may
    come from a cache instead and the output is byte-identical. *)

val build : source_name:string -> Mira_srclang.Ast.program -> Bridge.t -> Model_ir.t
(** Build models for every function in the program.  The AST must be
    typechecked; the bridge must come from the same program's compiled
    binary.
    @raise Unsupported only for malformed inputs (analysis limitations
    produce warnings and parameters instead, as the paper's annotation
    workflow expects). *)
