(** Batch analysis driver: many mini-C sources analyzed concurrently
    on a fixed-size pool of OCaml 5 domains, with a content-addressed
    memoization cache.

    Two guarantees shape the design:

    - {b Determinism}: for a given input list, every per-source output
      (model, emitted Python, warnings, report lines) is byte-identical
      whatever [jobs] is and whatever the cache contains; only the
      trailing stats line of {!report} reflects cache tiers.  Workers
      pull tasks from a shared index and write results into per-task
      slots; the merge replays input order.  Cache hits re-emit Python
      from the cached {!Model_ir.t} with the current source name, so a
      hit is indistinguishable from a fresh analysis.
    - {b Content addressing}: the cache key is
      [Digest(source text, codegen level, cache_version)].  Renaming a
      file reuses its entry; editing one byte, changing [-O], or
      upgrading the library invalidates it.

    The cache has an in-memory LRU tier (always) and an optional
    on-disk tier (a directory of marshalled model + emitted-Python
    payloads, conventionally [.mira-cache/]).  Disk entries that fail
    to load for any reason are treated as misses and rewritten. *)

type source = { src_name : string; src_text : string }

val source_of_file : string -> source
(** Read one file; [src_name] is its basename. *)

val sources_of_paths : string list -> source list
(** Expand files and directories (directories contribute their [.mc]
    files, sorted by name) into a deterministic source list. *)

type analysis = {
  a_name : string;
  a_model : Model_ir.t;
  a_python : string;  (** the emitted Python model *)
  a_warnings : (string * string) list;
  a_cached : bool;  (** served from a cache tier, no re-analysis *)
}

type result = (analysis, string * string) Stdlib.result
(** Per-source outcome; [Error (name, message)] for sources that fail
    to parse, typecheck or compile (the batch keeps going). *)

type stats = {
  st_total : int;  (** sources submitted *)
  st_analyzed : int;  (** full analyses actually performed *)
  st_mem_hits : int;
  st_disk_hits : int;
  st_failed : int;
  st_jobs : int;  (** worker domains actually used *)
}

type cache

val cache_version : string
(** Participates in every key; bump on model-format changes. *)

val create_cache : ?capacity:int -> ?dir:string -> unit -> cache
(** [capacity] bounds the in-memory LRU tier (default 512 entries).
    [dir] enables the on-disk tier; it is created on first write. *)

val key : level:Mira_codegen.Codegen.level -> string -> string
(** The content-addressed cache key (hex digest) of a source text. *)

val run :
  ?jobs:int ->
  ?cache:cache ->
  ?level:Mira_codegen.Codegen.level ->
  source list ->
  result list * stats
(** Analyze every source.  [jobs] defaults to 1; it is clamped to
    [1 .. max 1 (length sources)].  Results are in input order. *)

val report : result list -> stats -> string
(** Deterministic textual report of a batch run (per-source function
    lists, warnings, failures, then the stats line). *)
