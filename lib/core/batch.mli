(** Batch analysis driver: many mini-C sources analyzed concurrently
    on a fixed-size pool of OCaml 5 domains, with a content-addressed
    memoization cache.

    Three guarantees shape the design:

    - {b Determinism}: for a given input list, every per-source output
      (model, emitted Python, warnings, report lines) is byte-identical
      whatever [jobs] is and whatever the cache contains; only the
      trailing stats lines of {!report} reflect cache tiers.  Workers
      pull tasks from a shared index and write results into per-task
      slots; the merge replays input order.  Cache hits re-emit Python
      from the cached {!Model_ir.t} with the current source name, so a
      hit is indistinguishable from a fresh analysis.
    - {b Content addressing}: the cache key is
      [Digest(source text, codegen level, cache_version)].  Renaming a
      file reuses its entry; editing one byte, changing [-O], or
      upgrading the library invalidates it.
    - {b Fault tolerance}: a batch run always terminates and never
      raises.  Every per-source failure — malformed input, an exhausted
      {!Limits} budget, a timeout, an injected {!Faults} event, or an
      unexpected exception (classified [Internal_error] with a captured
      backtrace) — becomes a structured {!Diag.t} in that source's slot
      while the rest of the batch proceeds.  Disk-cache entries are
      checksummed; corrupt or unreadable entries are counted and
      degraded to misses, transient I/O errors are retried with bounded
      backoff, and orphaned temporary files are swept when a cache is
      opened.

    The cache has an in-memory LRU tier (always) and an optional
    on-disk tier (a directory of marshalled model + emitted-Python
    payloads, conventionally [.mira-cache/]). *)

type source = { src_name : string; src_text : string }

val source_of_file : string -> source
(** Read one file; [src_name] is its basename. *)

val expand_paths : string list -> string list
(** Expand files and directories (directories contribute their [.mc]
    files, sorted by name) into a deterministic path list — the
    universe that {!shard_member} partitions. *)

val sources_of_paths : string list -> source list
(** [expand_paths] with each path read into a {!source}. *)

val shard_member : index:int -> count:int -> string -> bool
(** Whether a path belongs to shard [index] of [count] ([1 ≤ index ≤
    count]; raises [Invalid_argument] otherwise).  Membership is a
    stable hash of the path string alone, so [count] processes
    launched with the same inputs and [--shard 1/k .. k/k] partition
    the expanded path set exactly — every path in one shard, no path
    in two — without any coordination. *)

type analysis = {
  a_name : string;
  a_model : Model_ir.t;
  a_python : string;  (** the emitted Python model *)
  a_warnings : (string * string) list;
  a_cached : bool;  (** served from a cache tier, no re-analysis *)
}

type result = (analysis, string * Diag.t) Stdlib.result
(** Per-source outcome; [Error (name, diag)] for sources that fail to
    parse, typecheck, compile, or stay within budget (the batch keeps
    going). *)

type stats = {
  st_total : int;  (** sources submitted *)
  st_analyzed : int;  (** whole-file analyses actually performed *)
  st_mem_hits : int;
  st_disk_hits : int;
  st_failed : int;
  st_jobs : int;  (** worker domains actually used *)
  st_budget : int;  (** failures that were budget/timeout overruns *)
  st_injected : int;  (** failures caused by injected worker faults *)
  st_cache_corrupt : int;  (** corrupt disk entries detected this run *)
  st_io_retries : int;  (** disk I/O attempts retried this run *)
  st_io_failures : int;  (** disk I/O given up on after retries *)
  st_assembled : int;
      (** sources rebuilt from the function tier (file-tier miss) *)
  st_fn_mem_hits : int;  (** function-tier memory hits this run *)
  st_fn_disk_hits : int;  (** function-tier disk hits this run *)
  st_fn_analyzed : int;
      (** functions re-analyzed in isolation this run — editing one
          function of an N-function source costs 1 here, not N *)
}

type cache

val cache_version : string
(** Participates in every file-tier key; bump on model-format
    changes. *)

val fn_cache_version : string
(** Participates in every function-tier digest; bump when
    {!Metric_gen.part} or its serialization changes. *)

val create_cache : ?capacity:int -> ?dir:string -> unit -> cache
(** [capacity] bounds the in-memory LRU tier (default 512 entries).
    [dir] enables the on-disk tier; it is created on first write, and
    an existing directory gets the startup housekeeping now (under the
    directory lock — see {!lock_file_name}): orphaned temporaries from
    interrupted writers are swept ([*.tmp.*], and [*.ptmp.*] from the
    {!Model_compile} prog tier), and the {!recover_dir} integrity scan
    quarantines any entry a crash left torn. *)

val set_fsync : bool -> unit
(** Process-wide durability switch (default on).  When on, every cache
    publish — all tiers — fsyncs the entry file before the
    rename-publish and the directory after it, so a machine crash
    cannot leave a published name over torn bytes.  [set_fsync false]
    ([--no-fsync]) drops both fsyncs for benchmarking; the checksum
    layer and {!recover_dir} then remain the only defence. *)

val durable_publish :
  ?before_rename:(unit -> unit) ->
  subject:string ->
  tmp:string ->
  final:string ->
  string ->
  unit
(** The one crash-consistent publish path shared by every cache tier
    ([.model], [.fnmodel], and {!Model_compile}'s [.prog]): write
    [data] to [tmp], fsync it, rename over [final], fsync the parent
    directory (fsyncs subject to {!set_fsync}).  [before_rename] runs
    between the file sync and the rename (fault-injection hook).  The
    {!Faults.set_crash} site fires at seeded points between the steps
    — subjects ["SUBJECT@tmp-written"], ["@tmp-synced"], ["@renamed"]
    — SIGKILLing the process where a real crash would bite.  I/O
    failures raise [Sys_error].  Callers are expected to hold the
    shared directory lock. *)

type recovery_stats = { rc_scanned : int; rc_quarantined : int }

val quarantine_suffix : string
(** [".quarantined"] — appended to a torn entry's name by
    {!recover_dir}; no reader or sweeper matches the suffix, so
    quarantined files are inert but kept for post-mortems. *)

val recover_dir : ?entries:(string * string) list -> string -> recovery_stats
(** Crash-recovery integrity scan over a cache directory: re-verify
    the checksum of every published entry and rename torn ones to
    [NAME ^ quarantine_suffix].  [entries] maps entry suffix to magic
    and defaults to the two Batch tiers; {!Model_compile} adds its
    prog tier.  Runs under the exclusive directory lock (a busy lock
    postpones the scan); {!create_cache} runs it on every existing
    directory it opens. *)

val cache_dir : cache -> string option
(** The disk tier's directory, when one was given — other per-model
    caches (e.g. {!Model_compile.cache}) co-locate their entries
    there. *)

val lock_file_name : string
(** Name of the advisory lock file ([".lock"]) kept inside a disk
    cache directory.  Writers hold a shared [Unix.lockf] lock on it
    for the write+rename window of each entry; {!gc_disk} and the
    orphan sweep hold it exclusively, so two processes sharing one
    cache directory (a daemon and a concurrent [mira batch], say)
    cannot evict or sweep what the other is mid-writing.  Acquisition
    is always non-blocking with bounded retry; failure degrades —
    GC is skipped, a store is dropped — and never blocks or crashes
    a run. *)

val with_dir_lock : ?shared:bool -> string -> (unit -> 'a) -> 'a option
(** Run [f] holding the advisory directory lock ({!lock_file_name}) —
    shared (default exclusive: [?shared] defaults to [false]) for a
    writer's publish window, exclusive for sweep/GC-style passes.
    Non-blocking with bounded retry; [None] means the lock could not
    be taken and [f] never ran (callers degrade).  Used by
    {!Model_compile} so its prog-tier publishes participate in the
    same cross-process discipline. *)

type cache_health = {
  h_corrupt : int;
  h_io_retries : int;
  h_io_failures : int;
  h_fn_mem_hits : int;
  h_fn_disk_hits : int;
  h_fn_fresh : int;
}

val cache_health : cache -> cache_health
(** Cumulative robustness and function-tier counters over the cache
    value's lifetime ({!stats} reports per-run deltas of these). *)

val gc_disk : max_bytes:int -> cache -> int * int
(** Size-capped eviction of the disk tier: if the directory's
    published entries ([.model] and [.fnmodel]) exceed [max_bytes],
    remove least-recently-used first (successful reads refresh an
    entry's mtime) until under the cap; orphaned temporaries are swept
    unconditionally.  Returns [(entries_removed, bytes_freed)].
    Removals are atomic, so a concurrent reader at worst takes a
    miss.  The pass runs under the exclusive directory lock
    ({!lock_file_name}); if another process holds it the pass is
    skipped and [(0, 0)] is returned.  No-op without a disk tier. *)

val key : level:Mira_codegen.Codegen.level -> string -> string
(** The content-addressed cache key (hex digest) of a source text. *)

type merge_stats = {
  mg_scanned : int;  (** entries examined across all sources *)
  mg_copied : int;
  mg_present : int;  (** already in the destination, skipped *)
  mg_corrupt : int;  (** failed checksum verification, not copied *)
  mg_failed : int;  (** I/O or lock failures (the merge keeps going) *)
}

val merge_dirs : dst:string -> string list -> merge_stats
(** Union the entries of the source cache directories into [dst]
    (created if missing).  Entries are content-addressed, so a
    filename already present in [dst] is the same payload and is
    skipped; everything copied is checksum-verified first and
    published atomically (tmp + rename) under the shared directory
    lock ({!lock_file_name}), so a daemon serving from [dst]
    concurrently never sees a torn entry.  After
    [merge_dirs ~dst shard_caches], a batch over the union of the
    shards' inputs runs entirely warm against [dst].  Never raises;
    failures are counted and the merge proceeds. *)

val run :
  ?jobs:int ->
  ?cache:cache ->
  ?incremental:bool ->
  ?level:Mira_codegen.Codegen.level ->
  ?limits:Limits.t ->
  ?faults:Faults.t ->
  source list ->
  result list * stats
(** Analyze every source.  [jobs] defaults to 1; it is clamped to
    [1 .. max 1 (length sources)].  Results are in input order.
    [limits] is enforced per source (each gets a fresh budget whose
    deadline starts when its analysis starts).  [faults] injects a
    deterministic fault schedule — decisions depend only on
    [(seed, site, subject)], never on worker scheduling, so the set of
    affected sources is identical at any [jobs] value.

    [incremental] (default [true], meaningful only with a cache): on a
    file-tier miss, probe the function tier by per-function
    {!Mira_srclang.Fingerprint} digest, re-analyze only missing
    functions against stub-reduced compilations, and assemble the
    model from cached + fresh parts.  The assembled output is
    byte-identical to a cold whole-file analysis; only the stats
    differ.  When no function hits (a brand-new source), the
    whole-file pipeline runs once and seeds the function tier. *)

val report : result list -> stats -> string
(** Deterministic textual report of a batch run (per-source function
    lists, warnings, failures, then the stats line and — only when any
    counter is nonzero — a robustness line). *)
