(* The performance-model intermediate representation.

   A model is a set of per-function bodies mirroring the generated
   Python of the paper's Figure 5: each function accumulates
   per-mnemonic instruction counts, where every contribution is a
   static count vector times a symbolic execution multiplicity, plus
   call sites that splice in callee models with argument bindings. *)

open Mira_symexpr
open Mira_poly

(* A signed combination of domain counts times a scalar weight.  Plain
   statements have one +1 term; else-branches of affine conditions and
   complements contribute negative terms; `fraction` annotations set
   [scale] below 1. *)
type mult = {
  terms : (int * Count.result) list;  (* (sign, count) *)
  scale : float;
  parallel : bool;
      (* inside a {parallel:yes} loop: distributable across cores
         (shared-memory extension, the paper's future work) *)
}

let mult_one =
  { terms = [ (1, Count.Closed Expr.one) ]; scale = 1.0; parallel = false }

(* Binding of one callee model parameter at a call site. *)
type arg_binding =
  | Bound of Poly.t
      (* affine/polynomial in the caller's symbols; evaluated in the
         caller's environment *)
  | Unbound of string
      (* opaque at the call site: becomes the given caller parameter
         (paper's y_16 pattern: value supplied at evaluation time) *)

type entry =
  | Update of {
      line : int;  (* source line, for readable models *)
      label : string;  (* what this bucket is: statement, loop cond, ... *)
      counts : (string * int) list;  (* mnemonic -> static count *)
      mult : mult;
    }
  | Call_site of {
      line : int;
      callee : string;  (* mangled name *)
      bindings : (string * arg_binding) list;
          (* callee model parameter -> binding *)
      mult : mult;
    }

type fmodel = {
  mf_name : string;  (* mangled source name *)
  mf_source_params : string list;  (* source-level parameter names *)
  mf_arity : int;  (* source arity (for the Python name suffix) *)
  mf_class : string option;
  mf_params : string list;  (* model parameters, in signature order *)
  mf_entries : entry list;
  mf_warnings : string list;
  mf_update_py : string option list;
      (* per-entry cached Python rendering, in lockstep with
         [mf_entries]: [Some chunk] for [Update] entries (whose text
         depends only on the entry), [None] for [Call_site] entries
         (rendered live against the assembled model) *)
}

type t = {
  functions : fmodel list;
  source_name : string;  (* provenance, for reports *)
}

let find t name = List.find_opt (fun f -> f.mf_name = name) t.functions

let find_exn t name =
  match find t name with
  | Some f -> f
  | None -> invalid_arg ("Model_ir.find_exn: no model for " ^ name)

(* Python-side function name, as in Figure 5: A_foo_2. *)
let python_name (f : fmodel) =
  let short =
    match String.rindex_opt f.mf_name ':' with
    | Some i -> String.sub f.mf_name (i + 1) (String.length f.mf_name - i - 1)
    | None -> f.mf_name
  in
  let prefix = match f.mf_class with Some c -> c ^ "_" | None -> "" in
  Printf.sprintf "%s%s_%d" prefix short f.mf_arity

let free_vars_of_mult m =
  List.concat_map
    (fun (_, c) ->
      match c with
      | Count.Closed e -> Expr.vars e
      | Count.Deferred d -> Domain.parameters d)
    m.terms

let mult_is_static m =
  List.for_all
    (fun (_, c) ->
      match c with
      | Count.Closed e -> Expr.is_const e <> None
      | Count.Deferred d -> Domain.parameters d = [])
    m.terms

let all_warnings t =
  List.concat_map
    (fun f -> List.map (fun w -> (f.mf_name, w)) f.mf_warnings)
    t.functions
