open Mira_symexpr
open Mira_poly

exception Missing_parameter of string * string

let lookup fname env p =
  match List.assoc_opt p env with
  | Some v -> v
  | None -> raise (Missing_parameter (fname, p))

let eval_count fname env (c : Count.result) : float =
  match c with
  | Count.Closed e -> Expr.eval_float (fun v -> float_of_int (lookup fname env v)) e
  | Count.Deferred d ->
      let params =
        List.map (fun p -> (p, lookup fname env p)) (Domain.parameters d)
      in
      float_of_int (Enumerate.count ~params d)

let eval_mult fname env (m : Model_ir.mult) : float =
  m.scale
  *. List.fold_left
       (fun acc (sign, c) ->
         acc +. (float_of_int sign *. eval_count fname env c))
       0.0 m.terms

(* ------------------------------------------------------------------ *)
(* Canonical mnemonic order                                            *)
(* ------------------------------------------------------------------ *)

(* The set of mnemonics an evaluation can touch is static per
   (model, fname): the union of Update count vectors over the
   call-graph reachable functions (entries are unconditional, so every
   reachable Update contributes — possibly with weight 0).  Hoisting
   the sorted order here lets evaluation fill preallocated arrays
   instead of rebuilding a Hashtbl.fold |> List.sort per eval. *)
let mnemonic_order (model : Model_ir.t) ~fname ~inclusive : string array =
  let seen = Hashtbl.create 8 in
  let mns = Hashtbl.create 32 in
  let rec go fname =
    if not (Hashtbl.mem seen fname) then begin
      Hashtbl.add seen fname ();
      match Model_ir.find model fname with
      | None -> ()
      | Some fm ->
          List.iter
            (fun entry ->
              match entry with
              | Model_ir.Update { counts; _ } ->
                  List.iter (fun (m, _) -> Hashtbl.replace mns m ()) counts
              | Model_ir.Call_site { callee; _ } ->
                  if inclusive then go callee)
            fm.mf_entries
    end
  in
  go fname;
  Hashtbl.fold (fun m () acc -> m :: acc) mns []
  |> List.sort compare |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Plans: slot-resolved evaluation                                     *)
(* ------------------------------------------------------------------ *)

(* A plan resolves, once per (model, fname, env shape), everything
   [eval] used to redo per evaluation: parameter names become integer
   slots into an env array, count expressions become closures over
   that array (same operation order as [Expr.eval_float], so results
   are bit-identical), call-site bindings become slot copies or exact
   rational polynomial closures, and mnemonics become indices into a
   canonical sorted output array. *)

type rterm =
  | Tclosed of float * (int array -> float)  (* sign, compiled count *)
  | Tdefer of float * Domain.t * (string * int) array
      (* enumerate at eval time; (parameter, slot) in Domain.parameters
         order *)

type rmult = { rm_scale : float; rm_terms : rterm array }

type rbind =
  | Bslot of int  (* copy a caller env slot *)
  | Bpoly of (int array -> int)  (* exact rational eval + floor *)

type rentry =
  | Ru of {
      u_slots : int array;  (* mnemonic output slots, \ *)
      u_counts : float array;  (* static counts,       / in lockstep *)
      u_mult : rmult;
      u_parallel : bool;
    }
  | Rc of {
      c_fn : int;  (* callee plan-function index *)
      c_binds : rbind array;  (* callee env, in mf_params order *)
      c_mult : rmult;
      c_parallel : bool;
    }

type rfun = { rf_entries : rentry array }

type plan = {
  pl_params : string array;  (* env slot i holds the value of name i *)
  pl_mnemonics : string array;  (* canonical sorted output order *)
  pl_funs : rfun array;
  pl_entry : int;
}

let plan_params p = p.pl_params
let plan_mnemonics p = p.pl_mnemonics

(* First occurrence wins, like List.assoc on a duplicated env. *)
let slot_table names =
  let t = Hashtbl.create 16 in
  List.iteri
    (fun i n -> if not (Hashtbl.mem t n) then Hashtbl.add t n i)
    names;
  t

let compile_closed resolve (e : Expr.t) : int array -> float =
  let compile_poly p =
    let terms =
      Poly.fold_terms
        (fun m c acc ->
          ( Ratio.to_float c,
            Array.of_list
              (List.map (fun (x, e) -> (resolve x, float_of_int e)) m) )
          :: acc)
        p []
      |> List.rev |> Array.of_list
    in
    fun env ->
      Array.fold_left
        (fun acc (cf, vs) ->
          acc
          +. Array.fold_left
               (fun v (s, ef) -> v *. (float_of_int env.(s) ** ef))
               cf vs)
        0.0 terms
  in
  let rec go e =
    match (e : Expr.t) with
    | Expr.P p -> compile_poly p
    | Expr.Add (a, b) ->
        let fa = go a and fb = go b in
        fun env -> fa env +. fb env
    | Expr.Mul (a, b) ->
        let fa = go a and fb = go b in
        fun env -> fa env *. fb env
    | Expr.Max (a, b) ->
        let fa = go a and fb = go b in
        fun env -> Float.max (fa env) (fb env)
    | Expr.Min (a, b) ->
        let fa = go a and fb = go b in
        fun env -> Float.min (fa env) (fb env)
    | Expr.Fdiv (a, n) ->
        let fa = go a and nf = float_of_int n in
        fun env -> Float.of_int (int_of_float (floor (fa env /. nf)))
    | Expr.Cdiv (a, n) ->
        let fa = go a and nf = float_of_int n in
        fun env -> Float.of_int (int_of_float (ceil (fa env /. nf)))
    | Expr.If (g, a, b) ->
        let fg = compile_poly g and fa = go a and fb = go b in
        fun env -> if fg env >= 0.0 then fa env else fb env
  in
  go e

(* Exact twin of [Poly.eval (fun x -> Ratio.of_int (lookup ..)) |>
   Ratio.floor]: rational arithmetic is exact, so term order does not
   matter. *)
let compile_bind_poly resolve (p : Poly.t) : int array -> int =
  let terms =
    Poly.fold_terms
      (fun m c acc ->
        (c, Array.of_list (List.map (fun (x, e) -> (resolve x, e)) m)) :: acc)
      p []
    |> Array.of_list
  in
  fun env ->
    Ratio.floor
      (Array.fold_left
         (fun acc (c, vs) ->
           Ratio.add acc
             (Array.fold_left
                (fun v (s, e) -> Ratio.mul v (Ratio.pow (Ratio.of_int env.(s)) e))
                c vs))
         Ratio.zero terms)

let compile_mult resolve (m : Model_ir.mult) : rmult =
  let term (sign, c) =
    let signf = float_of_int sign in
    match (c : Count.result) with
    | Count.Closed e -> Tclosed (signf, compile_closed resolve e)
    | Count.Deferred d ->
        let ps =
          Array.of_list
            (List.map (fun p -> (p, resolve p)) (Domain.parameters d))
        in
        Tdefer (signf, d, ps)
  in
  { rm_scale = m.scale; rm_terms = Array.of_list (List.map term m.terms) }

(* Build a plan.  Resolution errors surface now, with the same
   attribution as lazy evaluation would give: [Missing_parameter
   (fname-of-the-looking-function, name)], encountered in entry order
   with callee bodies resolved at their first call site (mirroring the
   evaluation order of the recursive interpreter). *)
let plan ?(who = "Model_eval.eval") ?(inclusive = true) (model : Model_ir.t)
    ~fname ~params : plan =
  (match Model_ir.find model fname with
  | Some _ -> ()
  | None -> invalid_arg (who ^ ": no model for " ^ fname));
  let mns = mnemonic_order model ~fname ~inclusive in
  let mn_slot = slot_table (Array.to_list mns) in
  let funs : (int, rfun) Hashtbl.t = Hashtbl.create 8 in
  let fn_idx : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  let reserve () =
    let i = !next in
    incr next;
    i
  in
  let rec build fname (fm : Model_ir.fmodel) slots : rfun =
    let resolve name =
      match Hashtbl.find_opt slots name with
      | Some i -> i
      | None -> raise (Missing_parameter (fname, name))
    in
    let entries =
      List.filter_map
        (fun entry ->
          match entry with
          | Model_ir.Update { counts; mult; _ } ->
              let u_slots =
                Array.of_list
                  (List.map (fun (m, _) -> Hashtbl.find mn_slot m) counts)
              in
              let u_counts =
                Array.of_list (List.map (fun (_, c) -> float_of_int c) counts)
              in
              Some
                (Ru
                   {
                     u_slots;
                     u_counts;
                     u_mult = compile_mult resolve mult;
                     u_parallel = mult.parallel;
                   })
          | Model_ir.Call_site { callee; bindings; mult; _ } -> (
              if not inclusive then None
              else
                match Model_ir.find model callee with
                | None -> None  (* extern: call cost already counted *)
                | Some cm ->
                    let c_binds =
                      Array.of_list
                        (List.map
                           (fun p ->
                             match List.assoc_opt p bindings with
                             | Some (Model_ir.Bound poly) ->
                                 Bpoly (compile_bind_poly resolve poly)
                             | Some (Model_ir.Unbound name) ->
                                 Bslot (resolve name)
                             | None -> Bslot (resolve p))
                           cm.mf_params)
                    in
                    let c_fn = fn_of callee cm in
                    Some
                      (Rc
                         {
                           c_fn;
                           c_binds;
                           c_mult = compile_mult resolve mult;
                           c_parallel = mult.parallel;
                         })))
        fm.mf_entries
    in
    { rf_entries = Array.of_list entries }
  and fn_of callee cm =
    match Hashtbl.find_opt fn_idx callee with
    | Some i -> i
    | None ->
        let i = reserve () in
        Hashtbl.add fn_idx callee i;  (* before recursing: cycles *)
        let rf = build callee cm (slot_table cm.mf_params) in
        Hashtbl.replace funs i rf;
        i
  in
  let entry_i = reserve () in
  let fm = Model_ir.find_exn model fname in
  let entry_rf = build fname fm (slot_table params) in
  Hashtbl.replace funs entry_i entry_rf;
  {
    pl_params = Array.of_list params;
    pl_mnemonics = mns;
    pl_funs = Array.init !next (fun i -> Hashtbl.find funs i);
    pl_entry = entry_i;
  }

let eval_rmult (m : rmult) env =
  m.rm_scale
  *. Array.fold_left
       (fun acc t ->
         acc
         +.
         match t with
         | Tclosed (sign, f) -> sign *. f env
         | Tdefer (sign, d, ps) ->
             let params =
               Array.to_list (Array.map (fun (n, s) -> (n, env.(s))) ps)
             in
             sign *. float_of_int (Enumerate.count ~params d))
       0.0 m.rm_terms

(* Per-run memo on (plan function, env values) — same sharing as the
   old interpreter's (fname, projected env) key. *)
let run_plan_into (p : plan) (env : int array) (out : float array) =
  let nm = Array.length p.pl_mnemonics in
  let memo : (int * int array, float array) Hashtbl.t = Hashtbl.create 16 in
  let rec go fi fenv =
    match Hashtbl.find_opt memo (fi, fenv) with
    | Some r -> r
    | None ->
        let acc = Array.make nm 0.0 in
        Array.iter
          (fun entry ->
            match entry with
            | Ru u ->
                let m = eval_rmult u.u_mult fenv in
                Array.iteri
                  (fun i s -> acc.(s) <- acc.(s) +. (m *. u.u_counts.(i)))
                  u.u_slots
            | Rc c ->
                let cenv =
                  Array.map
                    (function Bslot s -> fenv.(s) | Bpoly f -> f fenv)
                    c.c_binds
                in
                let sub = go c.c_fn cenv in
                let m = eval_rmult c.c_mult fenv in
                for i = 0 to nm - 1 do
                  acc.(i) <- acc.(i) +. (m *. sub.(i))
                done)
          p.pl_funs.(fi).rf_entries;
        Hashtbl.replace memo (fi, fenv) acc;
        acc
  in
  Array.blit (go p.pl_entry env) 0 out 0 nm

let run_plan p env =
  let out = Array.make (Array.length p.pl_mnemonics) 0.0 in
  run_plan_into p env out;
  out

(* Split accumulation over the same plan: serial at 2i, parallel at
   2i+1.  A parallel call site promotes the whole callee to parallel,
   as before. *)
let run_plan_split (p : plan) (env : int array) : float array =
  let nm = Array.length p.pl_mnemonics in
  let memo : (int * int array, float array) Hashtbl.t = Hashtbl.create 16 in
  let rec go fi fenv =
    match Hashtbl.find_opt memo (fi, fenv) with
    | Some r -> r
    | None ->
        let acc = Array.make (2 * nm) 0.0 in
        Array.iter
          (fun entry ->
            match entry with
            | Ru u ->
                let m = eval_rmult u.u_mult fenv in
                Array.iteri
                  (fun i s ->
                    let v = m *. u.u_counts.(i) in
                    let j = (2 * s) + if u.u_parallel then 1 else 0 in
                    acc.(j) <- acc.(j) +. v)
                  u.u_slots
            | Rc c ->
                let cenv =
                  Array.map
                    (function Bslot s -> fenv.(s) | Bpoly f -> f fenv)
                    c.c_binds
                in
                let sub = go c.c_fn cenv in
                let m = eval_rmult c.c_mult fenv in
                for i = 0 to nm - 1 do
                  let cs = sub.(2 * i) and cp = sub.((2 * i) + 1) in
                  if c.c_parallel then
                    acc.((2 * i) + 1) <-
                      acc.((2 * i) + 1) +. (m *. (cs +. cp))
                  else begin
                    acc.(2 * i) <- acc.(2 * i) +. (m *. cs);
                    acc.((2 * i) + 1) <- acc.((2 * i) + 1) +. (m *. cp)
                  end
                done)
          p.pl_funs.(fi).rf_entries;
        Hashtbl.replace memo (fi, fenv) acc;
        acc
  in
  go p.pl_entry env

(* ------------------------------------------------------------------ *)
(* Public API on top of plans                                          *)
(* ------------------------------------------------------------------ *)

let assoc_of p out =
  Array.to_list (Array.mapi (fun i m -> (m, out.(i))) p.pl_mnemonics)

let eval (model : Model_ir.t) ~fname ~env =
  let p =
    plan ~who:"Model_eval.eval" model ~fname ~params:(List.map fst env)
  in
  assoc_of p (run_plan p (Array.of_list (List.map snd env)))

let eval_exclusive (model : Model_ir.t) ~fname ~env =
  let p =
    plan ~who:"Model_eval.eval_exclusive" ~inclusive:false model ~fname
      ~params:(List.map fst env)
  in
  assoc_of p (run_plan p (Array.of_list (List.map snd env)))

let eval_split (model : Model_ir.t) ~fname ~env =
  let p =
    plan ~who:"Model_eval.eval_split" model ~fname ~params:(List.map fst env)
  in
  let out = run_plan_split p (Array.of_list (List.map snd env)) in
  Array.to_list
    (Array.mapi
       (fun i m -> (m, (out.(2 * i), out.((2 * i) + 1))))
       p.pl_mnemonics)

let total counts = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 counts

let count counts m =
  Option.value ~default:0.0 (List.assoc_opt m counts)

let fp_mnemonics =
  [ "addsd"; "subsd"; "mulsd"; "divsd"; "sqrtsd"; "ucomisd";
    "addpd"; "subpd"; "mulpd"; "divpd" ]

let fpi counts =
  List.fold_left (fun acc m -> acc +. count counts m) 0.0 fp_mnemonics

(* FPI under a trip-count-changing vectorizer (ablation B): on source
   lines the compiler vectorized, the binary holds the packed main
   loop AND its scalar remainder epilogue.  Bridging multiplies both
   by the full source trip count; the correction divides packed
   contributions by the lane count and drops the epilogue's scalar FP
   (it executes at most lanes-1 times per loop entry). *)
let fpi_vectorization_aware (model : Model_ir.t) ~lanes ~vectorized ~fname
    ~env =
  let lanes_f = float_of_int lanes in
  let is_packed = Mira_visa.Isa.is_packed_mnemonic in
  let rec go fname env =
    let fm = Model_ir.find_exn model fname in
    let vec_lines =
      Option.value ~default:[] (List.assoc_opt fname vectorized)
    in
    List.fold_left
      (fun acc entry ->
        match entry with
        | Model_ir.Update { line; counts; mult; _ } ->
            let m = eval_mult fname env mult in
            let vectorized_line = List.mem line vec_lines in
            acc
            +. List.fold_left
                 (fun a (mn, c) ->
                   if not (List.mem mn fp_mnemonics) then a
                   else if vectorized_line then
                     if is_packed mn then a +. (m *. float_of_int c /. lanes_f)
                     else a  (* epilogue copy: at most lanes-1 runs *)
                   else a +. (m *. float_of_int c))
                 0.0 counts
        | Model_ir.Call_site { callee; bindings; mult; _ } -> (
            match Model_ir.find model callee with
            | None -> acc
            | Some cm ->
                let callee_env =
                  List.map
                    (fun p ->
                      match List.assoc_opt p bindings with
                      | Some (Model_ir.Bound poly) ->
                          ( p,
                            Ratio.floor
                              (Poly.eval
                                 (fun x -> Ratio.of_int (lookup fname env x))
                                 poly) )
                      | Some (Model_ir.Unbound name) ->
                          (p, lookup fname env name)
                      | None -> (p, lookup fname env p))
                    cm.mf_params
                in
                acc +. (eval_mult fname env mult *. go callee callee_env)))
      0.0 fm.mf_entries
  in
  go fname env
