(* bench-serve: an event-driven load generator for the analysis
   daemon.

   One thread drives every connection through {!Poller}: each
   connection keeps [pipeline] tagged requests in flight (closed
   loop — a completion immediately issues the next request), payloads
   drawn from a deterministic ping/eval/analyze mix.  Latency is
   enqueue-to-response per request; throughput is completed responses
   over elapsed time.  Single-threaded by design so the generator's
   own cost is identical whichever server implementation is being
   measured.

   The scale probe ([max_idle_probe]) answers a different question:
   how many concurrent *idle* connections the daemon can hold while
   still answering a fresh ping promptly — the resource the event-loop
   refactor trades from threads down to file descriptors. *)

type mix = { mx_ping : int; mx_eval : int; mx_analyze : int }

let default_mix = { mx_ping = 8; mx_eval = 1; mx_analyze = 1 }

let mix_to_string m =
  Printf.sprintf "ping=%d,eval=%d,analyze=%d" m.mx_ping m.mx_eval m.mx_analyze

let parse_mix s =
  let parts = String.split_on_char ',' s in
  let weights =
    List.fold_left
      (fun acc part ->
        Result.bind acc (fun m ->
            match String.index_opt part '=' with
            | None -> Error (Printf.sprintf "mix %S: expected kind=N" part)
            | Some i -> (
                let k = String.sub part 0 i in
                let v = String.sub part (i + 1) (String.length part - i - 1) in
                match int_of_string_opt v with
                | None ->
                    Error (Printf.sprintf "mix %s: %S is not an integer" k v)
                | Some n when n < 0 ->
                    Error (Printf.sprintf "mix %s: negative weight" k)
                | Some n -> (
                    match k with
                    | "ping" -> Ok { m with mx_ping = n }
                    | "eval" -> Ok { m with mx_eval = n }
                    | "analyze" -> Ok { m with mx_analyze = n }
                    | _ -> Error (Printf.sprintf "mix: unknown kind %S" k)))))
      (Ok { mx_ping = 0; mx_eval = 0; mx_analyze = 0 })
      parts
  in
  Result.bind weights (fun m ->
      if m.mx_ping + m.mx_eval + m.mx_analyze = 0 then
        Error "mix: all weights are zero"
      else Ok m)

type run = {
  bs_connections : int;
  bs_pipeline : int;
  bs_elapsed_s : float;
  bs_ok : int;
  bs_errors : int;
  bs_dropped_conns : int;
  bs_throughput_rps : float;
  bs_p50_ms : float;
  bs_p99_ms : float;
}

(* the kernel the eval/analyze traffic carries: small enough that the
   wire dominates pings, real enough that analyze/eval do the whole
   pipeline *)
let bench_source =
  "double bench_kernel(double *x, int n) {\n\
  \  double s = 0.0;\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    s += x[i] * 0.5 + 1.0;\n\
  \  }\n\
  \  return s;\n\
   }\n"

let nth_request mix n =
  let total = mix.mx_ping + mix.mx_eval + mix.mx_analyze in
  let r = n mod total in
  if r < mix.mx_ping then Serve.Ping
  else if r < mix.mx_ping + mix.mx_eval then
    Serve.Eval
      {
        ev_name = "bench.mc";
        ev_source = bench_source;
        ev_function = "bench_kernel";
        ev_params = [ ("n", 64) ];
        ev_budget = Serve.no_budget;
      }
  else
    Serve.Analyze
      {
        an_name = "bench.mc";
        an_source = bench_source;
        an_budget = Serve.no_budget;
      }

(* ---------- framing (client side, nonblocking) ---------- *)

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.unsafe_to_string b

let of_be32 b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let frame payload =
  Serve.magic ^ be32 (String.length payload) ^ Digest.string payload ^ payload

let header_len = String.length Serve.magic + 4
let frame_overhead = header_len + 16

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  outq : string Queue.t;
  mutable wchunk : string;
  mutable woff : int;
  inflight : (string, float) Hashtbl.t;
  mutable next_id : int;
  mutable dead : bool;
}

let new_conn fd =
  {
    fd;
    rbuf = Bytes.create 65536;
    rlen = 0;
    outq = Queue.create ();
    wchunk = "";
    woff = 0;
    inflight = Hashtbl.create 16;
    next_id = 0;
    dead = false;
  }

(* ---------- latency accumulator ---------- *)

type lats = { mutable arr : float array; mutable n : int }

let lat_push l v =
  if l.n = Array.length l.arr then begin
    let grown = Array.make (max 1024 (2 * l.n)) 0.0 in
    Array.blit l.arr 0 grown 0 l.n;
    l.arr <- grown
  end;
  l.arr.(l.n) <- v;
  l.n <- l.n + 1

let percentile sorted n p =
  if n = 0 then 0.0 else sorted.(min (n - 1) (p * n / 100))

(* ---------- the closed-loop run ---------- *)

let run ~endpoint ~connections ~pipeline ~duration_s ~mix =
  let conns =
    Array.init connections (fun _ ->
        (* ramping thousands of connections overruns the listen
           backlog; EAGAIN/ECONNREFUSED here just means "slower" *)
        let rec connect tries =
          match Endpoint.connect endpoint with
          | fd -> fd
          | exception
              Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ECONNREFUSED), _, _)
            when tries > 0 ->
              Unix.sleepf 0.01;
              connect (tries - 1)
        in
        let fd = connect 500 in
        Unix.set_nonblock fd;
        new_conn fd)
  in
  let by_fd = Hashtbl.create (2 * connections) in
  Array.iter (fun c -> Hashtbl.replace by_fd c.fd c) conns;
  let lats = { arr = Array.make 4096 0.0; n = 0 } in
  let ok = ref 0 and errors = ref 0 and reqno = ref 0 in
  let t0 = Unix.gettimeofday () in
  let issue_deadline = t0 +. duration_s in
  let hard_stop = issue_deadline +. 10.0 in
  let issue c now =
    let id = string_of_int c.next_id in
    c.next_id <- c.next_id + 1;
    let req = nth_request mix !reqno in
    incr reqno;
    Hashtbl.replace c.inflight id now;
    Queue.add (frame (Serve.encode_request ~id req)) c.outq
  in
  let kill c =
    if not c.dead then begin
      c.dead <- true;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  let pump_writes c =
    let continue = ref true in
    while !continue && not c.dead do
      if c.woff >= String.length c.wchunk then
        if Queue.is_empty c.outq then continue := false
        else begin
          c.wchunk <- Queue.pop c.outq;
          c.woff <- 0
        end
      else
        match
          Unix.write_substring c.fd c.wchunk c.woff
            (String.length c.wchunk - c.woff)
        with
        | n -> c.woff <- c.woff + n
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            continue := false
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> kill c
    done
  in
  let complete c payload now =
    match Serve.payload_id payload with
    | Some id when Hashtbl.mem c.inflight id ->
        let t_sent = Hashtbl.find c.inflight id in
        Hashtbl.remove c.inflight id;
        lat_push lats ((now -. t_sent) *. 1000.0);
        let is_ok =
          let pfx = "mira/1 ok\n" in
          String.length payload >= String.length pfx
          && String.sub payload 0 (String.length pfx) = pfx
        in
        if is_ok then incr ok else incr errors;
        if now < issue_deadline then begin
          issue c now;
          pump_writes c
        end
    | _ -> ()
  in
  let scratch = Bytes.create 65536 in
  let pump_reads c =
    let now = Unix.gettimeofday () in
    let continue = ref true in
    while !continue && not c.dead do
      (match Unix.read c.fd scratch 0 (Bytes.length scratch) with
      | 0 -> kill c
      | n ->
          if c.rlen + n > Bytes.length c.rbuf then begin
            let grown =
              Bytes.create (max (c.rlen + n) (2 * Bytes.length c.rbuf))
            in
            Bytes.blit c.rbuf 0 grown 0 c.rlen;
            c.rbuf <- grown
          end;
          Bytes.blit scratch 0 c.rbuf c.rlen n;
          c.rlen <- c.rlen + n;
          if n < Bytes.length scratch then continue := false
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> kill c);
      (* extract every complete frame, then compact once *)
      let off = ref 0 in
      let more = ref true in
      while !more do
        let avail = c.rlen - !off in
        if avail < frame_overhead then more := false
        else
          let len = of_be32 c.rbuf (!off + String.length Serve.magic) in
          if avail < frame_overhead + len then more := false
          else begin
            let payload =
              Bytes.sub_string c.rbuf (!off + frame_overhead) len
            in
            off := !off + frame_overhead + len;
            complete c payload now
          end
      done;
      if !off > 0 then begin
        Bytes.blit c.rbuf !off c.rbuf 0 (c.rlen - !off);
        c.rlen <- c.rlen - !off
      end
    done
  in
  (* prime the pipelines *)
  Array.iter
    (fun c ->
      for _ = 1 to max 1 pipeline do
        issue c t0
      done;
      pump_writes c)
    conns;
  let finished = ref false in
  while not !finished do
    let live =
      Array.fold_left (fun acc c -> if c.dead then acc else c :: acc) [] conns
    in
    let now = Unix.gettimeofday () in
    let inflight_total =
      List.fold_left (fun a c -> a + Hashtbl.length c.inflight) 0 live
    in
    if live = [] || now >= hard_stop then finished := true
    else if now >= issue_deadline && inflight_total = 0 then finished := true
    else begin
      let read = List.map (fun c -> c.fd) live in
      let write =
        List.filter_map
          (fun c ->
            if
              c.woff < String.length c.wchunk
              || not (Queue.is_empty c.outq)
            then Some c.fd
            else None)
          live
      in
      let timeout_ms = 250 in
      let rd, wr = Poller.wait ~read ~write ~timeout_ms () in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt by_fd fd with
          | Some c when not c.dead -> pump_writes c
          | _ -> ())
        wr;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt by_fd fd with
          | Some c when not c.dead -> pump_reads c
          | _ -> ())
        rd
    end
  done;
  let t_end = Unix.gettimeofday () in
  let dropped =
    Array.fold_left (fun a c -> if c.dead then a + 1 else a) 0 conns
  in
  Array.iter kill conns;
  let sorted = Array.sub lats.arr 0 lats.n in
  Array.sort compare sorted;
  let elapsed = t_end -. t0 in
  let completed = !ok + !errors in
  {
    bs_connections = connections;
    bs_pipeline = pipeline;
    bs_elapsed_s = elapsed;
    bs_ok = !ok;
    bs_errors = !errors;
    bs_dropped_conns = dropped;
    bs_throughput_rps =
      (if elapsed > 0.0 then float_of_int completed /. elapsed else 0.0);
    bs_p50_ms = percentile sorted lats.n 50;
    bs_p99_ms = percentile sorted lats.n 99;
  }

(* ---------- idle-connection scale probe ---------- *)

(* Open idle connections until the daemon stops being healthy: a
   fresh ping on a control connection must still answer within
   [health_timeout_ms], no opened connection may be shed or closed,
   and the OS must keep granting descriptors.  Returns how many idle
   connections were held at once and why the probe stopped. *)
let max_idle_probe ~endpoint ?(cap = 8000) ?(health_timeout_ms = 2000) () =
  let control = Endpoint.connect ~io_timeout_ms:health_timeout_ms endpoint in
  let opened = ref [] in
  let count = ref 0 in
  let reason = ref "reached probe cap" in
  let batch = ref [] in
  let healthy () =
    match Serve.roundtrip control Serve.Ping with
    | Ok { Serve.rs_status = "ok"; _ } -> true
    | _ -> false
  in
  (try
     if not (healthy ()) then begin
       reason := "daemon not answering before probe";
       raise Exit
     end;
     while !count < cap do
       (match Endpoint.connect endpoint with
       | fd ->
           opened := fd :: !opened;
           batch := fd :: !batch;
           incr count
       | exception Unix.Unix_error (e, _, _) ->
           reason := "connect failed: " ^ Unix.error_message e;
           raise Exit);
       if !count mod 100 = 0 then begin
         (* an fd with bytes (an overloaded frame) or EOF was shed *)
         let rd, _ = Poller.wait ~read:!batch ~timeout_ms:0 () in
         if rd <> [] then begin
           reason := "connections shed or closed";
           raise Exit
         end;
         batch := [];
         if not (healthy ()) then begin
           reason :=
             Printf.sprintf "daemon unresponsive within %dms"
               health_timeout_ms;
           raise Exit
         end
       end
     done
   with
  | Exit -> ()
  | Unix.Unix_error (e, _, _) ->
      reason := "probe error: " ^ Unix.error_message e);
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    !opened;
  (try Unix.close control with Unix.Unix_error _ -> ());
  (!count, !reason)
