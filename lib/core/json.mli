(** Minimal JSON values and the stable machine-readable encodings of
    models, analyses and diagnostics ([--format json], the daemon's
    watch/reanalyze frame bodies).  The schema is documented in
    docs/PROTOCOL.md and pinned byte-for-byte by test_json.ml; output
    is compact (no whitespace) and deterministic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Raw of string
      (** pre-encoded JSON, spliced verbatim — for nesting a frame
          body that is already encoded *)
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact encoding.  Strings are escaped per RFC 8259 (control
    characters as [\u00XX]); floats render as [%.1f] when integral and
    [%.17g] (round-trip exact) otherwise; NaN becomes [null]. *)

val escape : string -> string
(** The string-escaping helper alone (no surrounding quotes). *)

val of_span : Diag.span -> t
(** [{"label": string|null, "line": int, "col": int}] *)

val of_diag : Diag.t -> t
(** [{"phase", "kind", "message", "spans": [span…], "rendered"}] —
    [rendered] is {!Diag.to_string}. *)

val of_fmodel : Model_ir.t -> Model_ir.fmodel -> t
(** One function's model: [{"name", "python_name", "class":
    string|null, "arity", "params", "source_params", "warnings",
    "python"}] — [python] is the function's emitted definition within
    the given assembled model. *)

val of_model : Model_ir.t -> t
(** [{"file", "functions": [fmodel…], "python"}] — [python] is the
    whole emitted module. *)

val of_analysis : Batch.analysis -> t
(** [{"status": "ok", "file", "cached", "functions": [fmodel…],
    "warnings": [{"function", "message"}…], "python"}] *)

val of_result : Batch.result -> t
(** {!of_analysis} for successes;
    [{"status": "error", "file", "diag": diag}] for failures. *)

val of_stats : Batch.stats -> t
(** Every {!Batch.stats} counter under its field name sans the [st_]
    prefix. *)

val of_batch : Batch.result list -> Batch.stats -> t
(** [{"results": [result…], "stats": stats}] — the
    [mira batch --format json] document. *)
