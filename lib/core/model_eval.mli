(** Evaluation of generated models (the OCaml twin of running the
    emitted Python).

    Given integer values for a function's model parameters, produces
    the predicted per-mnemonic instruction counts, inclusive of
    callees (call sites splice in callee evaluations times the call
    multiplicity, like the Python [handle_function_call]).  Counts are
    floats because [fraction] annotations scale contributions.

    Evaluation is two-phase: {!plan} resolves names to integer slots,
    compiles count expressions to closures, and hoists the canonical
    mnemonic order once per (model, function, env shape);
    {!run_plan_into} then evaluates one binding into a preallocated
    array with no per-eval allocation beyond the memo table.  The
    one-shot {!eval}/{!eval_exclusive}/{!eval_split} wrappers plan and
    run in one call and return the classic sorted assoc lists.  For
    arithmetic-speed bulk evaluation, see {!Model_compile}, which
    partially evaluates a plan's symbolic content into a register
    program; this module is its differential oracle. *)

exception Missing_parameter of string * string
(** function, parameter *)

val eval :
  Model_ir.t -> fname:string -> env:(string * int) list ->
  (string * float) list
(** Predicted mnemonic counts for one invocation of [fname].
    @raise Missing_parameter when [env] lacks a needed parameter.
    @raise Invalid_argument on unknown function names. *)

val eval_exclusive :
  Model_ir.t -> fname:string -> env:(string * int) list ->
  (string * float) list
(** Self counts: this function's own instructions only, callee bodies
    excluded (TAU's "self" column; call-site instruction sequences
    still count as the caller's own). *)

val eval_split :
  Model_ir.t -> fname:string -> env:(string * int) list ->
  (string * (float * float)) list
(** Like {!eval}, but splits each mnemonic's count into
    (serial, parallel) portions according to [{parallel:yes}] loop
    annotations — the input to shared-memory predictions. *)

(** {1 Plans: reusable slot-resolved evaluators} *)

type plan
(** Everything per-eval work used to redo, resolved once: parameter
    names to env-array slots, count expressions to closures (same
    operation order as the tree walk, so results are bit-identical),
    mnemonics to indices of a canonical sorted output array. *)

val plan :
  ?who:string ->
  ?inclusive:bool ->
  Model_ir.t ->
  fname:string ->
  params:string list ->
  plan
(** Build a plan for evaluating [fname] against envs whose names (and
    order) are [params].  [inclusive] (default true) splices callees
    in; [false] gives the {!eval_exclusive} shape.  [who] labels the
    [Invalid_argument] raised for unknown function names.
    @raise Missing_parameter when the model needs a name not in
    [params] — the same error one-shot evaluation raises lazily. *)

val plan_params : plan -> string array
(** Env slot order: slot [i] holds the value of name [i]. *)

val plan_mnemonics : plan -> string array
(** Canonical sorted output order; the run functions fill values in
    lockstep with it. *)

val run_plan_into : plan -> int array -> float array -> unit
(** [run_plan_into p env out] evaluates one binding ([env] in
    {!plan_params} order) into [out] (length [plan_mnemonics]). *)

val run_plan : plan -> int array -> float array
(** Allocating variant of {!run_plan_into}. *)

val mnemonic_order : Model_ir.t -> fname:string -> inclusive:bool -> string array
(** The static sorted mnemonic universe evaluation of [fname] can
    touch: the union of Update count vectors over reachable functions
    (callees included iff [inclusive]). *)

(** {1 Aggregates} *)

val total : (string * float) list -> float

val count : (string * float) list -> string -> float
(** Count of one mnemonic (0 when absent). *)

val fp_mnemonics : string list
(** The mnemonics PAPI-style FP_INS counting covers. *)

val fpi : (string * float) list -> float
(** Floating-point instruction count — the paper's validation
    metric. *)

val fpi_vectorization_aware :
  Model_ir.t ->
  lanes:int ->
  vectorized:(string * int list) list ->
  fname:string ->
  env:(string * int) list ->
  float
(** Packed-aware FPI for binaries produced by a trip-count-changing
    vectorizer (the ablation-B correction): [vectorized] maps function
    names to the source lines whose loops were packed (from
    {!Mira_codegen.Vectorize.vectorized_lines}); packed instructions
    on those lines count [1/lanes] of the bridged estimate and the
    scalar remainder copies are dropped (they execute at most
    [lanes-1] times per loop entry). *)
