type phase =
  | Lex
  | Parse
  | Annotate
  | Typecheck
  | Codegen
  | Analysis
  | Cache
  | Driver

type kind =
  | User_error
  | Budget_exhausted
  | Timeout
  | Io_error
  | Cache_corrupt
  | Injected_fault
  | Internal_error

type t = {
  d_phase : phase;
  d_kind : kind;
  d_message : string;
  d_pos : Mira_srclang.Loc.pos option;
  d_backtrace : string option;
}

let make ?pos ?backtrace d_phase d_kind d_message =
  { d_phase; d_kind; d_message; d_pos = pos; d_backtrace = backtrace }

let phase_to_string = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Annotate -> "annotation"
  | Typecheck -> "type"
  | Codegen -> "codegen"
  | Analysis -> "analysis"
  | Cache -> "cache"
  | Driver -> "driver"

let kind_to_string = function
  | User_error -> "error"
  | Budget_exhausted -> "budget exhausted"
  | Timeout -> "timeout"
  | Io_error -> "I/O error"
  | Cache_corrupt -> "corrupt cache entry"
  | Injected_fault -> "injected fault"
  | Internal_error -> "internal error"

let of_exn ?(phase = Analysis) exn =
  (* capture before any further calls can disturb the backtrace *)
  let bt () =
    match Printexc.get_backtrace () with "" -> None | s -> Some s
  in
  match exn with
  | Mira_srclang.Lexer.Error (m, p) -> make ~pos:p Lex User_error m
  | Mira_srclang.Parser.Error (m, p) -> make ~pos:p Parse User_error m
  | Mira_srclang.Annot.Error m -> make Annotate User_error m
  | Mira_srclang.Typecheck.Check_error es -> (
      (* a lone error's position goes in [d_pos]; several keep their
         own positions in the multi-line message *)
      match es with
      | [ e ] ->
          make ~pos:e.Mira_srclang.Typecheck.at Typecheck User_error
            e.Mira_srclang.Typecheck.msg
      | es ->
          make Typecheck User_error
            (Mira_srclang.Typecheck.errors_to_string es))
  | Mira_codegen.Codegen.Error (m, p) -> make ~pos:p Codegen User_error m
  | Metric_gen.Unsupported (m, p) ->
      let pos = if p = Mira_srclang.Loc.dummy.lo then None else Some p in
      make ?pos Analysis User_error m
  | Mira_limits.Budget.Exhausted what ->
      let kind =
        match what with
        | Mira_limits.Budget.Deadline -> Timeout
        | Fuel | Depth -> Budget_exhausted
      in
      make phase kind (Mira_limits.Budget.what_to_string what)
  | Faults.Injected site -> make phase Injected_fault site
  | Stack_overflow ->
      (* the depth budget should make this unreachable; classify it as
         a resource limit all the same so it is never a crash *)
      make phase Budget_exhausted "native stack overflow" ?backtrace:(bt ())
  | Out_of_memory -> make phase Budget_exhausted "out of memory"
  | e ->
      make phase Internal_error (Printexc.to_string e) ?backtrace:(bt ())

let to_string d =
  let label =
    match d.d_kind with
    | User_error -> phase_to_string d.d_phase ^ " error"
    | k -> kind_to_string k
  in
  match d.d_pos with
  | Some p -> Printf.sprintf "%s at %d:%d: %s" label p.line p.col d.d_message
  | None -> Printf.sprintf "%s: %s" label d.d_message

let is_budget d =
  match d.d_kind with Budget_exhausted | Timeout -> true | _ -> false
