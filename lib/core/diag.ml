type phase =
  | Lex
  | Parse
  | Annotate
  | Typecheck
  | Codegen
  | Analysis
  | Cache
  | Driver

type kind =
  | User_error
  | Budget_exhausted
  | Timeout
  | Io_error
  | Cache_corrupt
  | Injected_fault
  | Internal_error

type span = { sp_label : string option; sp_pos : Mira_srclang.Loc.pos }

type t = {
  d_phase : phase;
  d_kind : kind;
  d_message : string;
  d_spans : span list;
  d_backtrace : string option;
}

let span ?label sp_pos = { sp_label = label; sp_pos }

let make_spans ?backtrace d_phase d_kind d_message d_spans =
  { d_phase; d_kind; d_message; d_spans; d_backtrace = backtrace }

(* compat constructor: the single optional position becomes an
   unlabelled primary span, so pre-multi-span call sites migrate
   without edits *)
let make ?pos ?backtrace phase kind msg =
  make_spans ?backtrace phase kind msg
    (match pos with None -> [] | Some p -> [ span p ])

let primary_pos d =
  match d.d_spans with [] -> None | s :: _ -> Some s.sp_pos

let phase_to_string = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Annotate -> "annotation"
  | Typecheck -> "type"
  | Codegen -> "codegen"
  | Analysis -> "analysis"
  | Cache -> "cache"
  | Driver -> "driver"

let kind_to_string = function
  | User_error -> "error"
  | Budget_exhausted -> "budget exhausted"
  | Timeout -> "timeout"
  | Io_error -> "I/O error"
  | Cache_corrupt -> "corrupt cache entry"
  | Injected_fault -> "injected fault"
  | Internal_error -> "internal error"

let of_exn ?(phase = Analysis) exn =
  (* capture before any further calls can disturb the backtrace *)
  let bt () =
    match Printexc.get_backtrace () with "" -> None | s -> Some s
  in
  match exn with
  | Mira_srclang.Lexer.Error (m, p) -> make ~pos:p Lex User_error m
  | Mira_srclang.Parser.Error (m, p) -> make ~pos:p Parse User_error m
  | Mira_srclang.Annot.Error m -> make Annotate User_error m
  | Mira_srclang.Typecheck.Check_error es -> (
      (* a lone error's position is the primary span; several become
         one labelled span each under a count headline *)
      match es with
      | [ e ] ->
          make ~pos:e.Mira_srclang.Typecheck.at Typecheck User_error
            e.Mira_srclang.Typecheck.msg
      | es ->
          make_spans Typecheck User_error
            (Printf.sprintf "%d type errors" (List.length es))
            (List.map
               (fun (e : Mira_srclang.Typecheck.error) ->
                 span ~label:e.msg e.at)
               es))
  | Mira_codegen.Codegen.Error (m, p) -> make ~pos:p Codegen User_error m
  | Metric_gen.Unsupported (m, p) ->
      let pos = if p = Mira_srclang.Loc.dummy.lo then None else Some p in
      make ?pos Analysis User_error m
  | Mira_limits.Budget.Exhausted what ->
      let kind =
        match what with
        | Mira_limits.Budget.Deadline -> Timeout
        | Fuel | Depth -> Budget_exhausted
      in
      make phase kind (Mira_limits.Budget.what_to_string what)
  | Faults.Injected site -> make phase Injected_fault site
  | Stack_overflow ->
      (* the depth budget should make this unreachable; classify it as
         a resource limit all the same so it is never a crash *)
      make phase Budget_exhausted "native stack overflow" ?backtrace:(bt ())
  | Out_of_memory -> make phase Budget_exhausted "out of memory"
  | e ->
      make phase Internal_error (Printexc.to_string e) ?backtrace:(bt ())

let label_of d =
  match d.d_kind with
  | User_error -> phase_to_string d.d_phase ^ " error"
  | k -> kind_to_string k

let to_string d =
  let label = label_of d in
  let head =
    match d.d_spans with
    | [] -> Printf.sprintf "%s: %s" label d.d_message
    | s :: _ ->
        Printf.sprintf "%s at %d:%d: %s" label s.sp_pos.line s.sp_pos.col
          d.d_message
  in
  (* the head line alone is byte-identical to the pre-multi-span
     rendering; labelled spans each add an indented line *)
  String.concat ""
    (head
    :: List.filter_map
         (fun s ->
           match s.sp_label with
           | None -> None
           | Some l ->
               Some
                 (Printf.sprintf "\n  at %d:%d: %s" s.sp_pos.line s.sp_pos.col
                    l))
         d.d_spans)

let to_editor_string ?(file = "<input>") d =
  let label = label_of d in
  match d.d_spans with
  | [] -> Printf.sprintf "%s: %s: %s" file label d.d_message
  | spans ->
      String.concat "\n"
        (List.map
           (fun s ->
             Printf.sprintf "%s:%d:%d: %s: %s" file s.sp_pos.line s.sp_pos.col
               label
               (match s.sp_label with Some l -> l | None -> d.d_message))
           spans)

let is_budget d =
  match d.d_kind with Budget_exhausted | Timeout -> true | _ -> false
