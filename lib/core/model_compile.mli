(** Partial evaluation of performance models into closed-form register
    programs.

    {!Model_eval} re-walks the symbolic expression tree and splices
    callees on every evaluation; this module does that walk {e once}:
    given a model, a set of sweep variables and fixed values for the
    remaining parameters, it evaluates the model symbolically — fixed
    parameters and call bindings folded, deferred counts pre-expanded
    by enumeration, callee models inlined by call multiplicity, all
    polynomial contributions merged exactly in rational arithmetic —
    into one closed form per mnemonic, Horner-schedules the
    polynomials in the sweep variables, and emits a flat register
    program: an array of ops over a float register file with inputs
    bound by slot index.  Running one sweep binding is then a single
    allocation-free pass over the op array — no closures, no assoc
    lookups, no hashing.

    Results match {!Model_eval} to float tolerance (the symbolic
    merge reassociates float arithmetic, so the last ulps can differ;
    integer-exact paths — call bindings, floor steps — are exact by
    construction).  Models whose counts stay data-dependent under the
    chosen sweep set (a {!Mira_poly.Count.Deferred} count over a live
    sweep variable) are rejected with {!Not_compilable}; callers fall
    back to the interpreter.

    Programs contain only plain data and are cacheable: {!cache}
    provides a thread-safe memory LRU plus an optional checksummed
    disk tier keyed by (model digest, arch, fname, sweep set, fixed
    values, mode). *)

exception Not_compilable of string
(** The model has no closed form under the requested sweep set (or
    blew a compile-time size/depth cap).  Evaluate with {!Model_eval}
    instead. *)

type mode =
  | Inclusive  (** callees spliced in — the {!Model_eval.eval} shape *)
  | Exclusive  (** own entries only — {!Model_eval.eval_exclusive} *)
  | Split  (** (serial, parallel) pairs — {!Model_eval.eval_split} *)

(** {1 Programs} *)

type prog
(** A compiled evaluator.  Plain data (marshallable). *)

val compile :
  ?arch:Mira_arch.Archdesc.t ->
  ?mode:mode ->
  Model_ir.t ->
  fname:string ->
  sweep:string list ->
  fixed:(string * int) list ->
  prog
(** Compile [fname] of the model with the given sweep variables (the
    program's inputs, in this order) and fixed parameter values.
    [arch] folds per-mnemonic cycle costs and the clock into the
    program so {!cycles}/{!seconds} work; counts themselves are
    arch-independent.  [mode] defaults to [Inclusive].
    @raise Not_compilable when no closed form exists (see above).
    @raise Model_eval.Missing_parameter when the model references a
    parameter that is neither swept nor fixed — the same error
    interpreted evaluation raises.
    @raise Invalid_argument on unknown function names (same message as
    the corresponding {!Model_eval} entry point). *)

val params : prog -> string array
(** Input slot order (= the [sweep] list passed to {!compile}). *)

val mnemonics : prog -> string array
(** Canonical sorted output order, identical to the mnemonic set of
    the corresponding {!Model_eval} result. *)

val prog_mode : prog -> mode
val prog_arch : prog -> string option
val n_ops : prog -> int
val n_regs : prog -> int
val validate : prog -> bool
(** Structural soundness (register indices in range …) — what the
    unchecked hot loop relies on; used to screen disk-loaded
    programs. *)

(** {1 Execution} *)

type runner
(** Mutable execution state (register file + output buffers) for one
    thread's use of a program.  Create once, run per binding. *)

val runner : prog -> runner

val run : runner -> int array -> float array
(** [run r args] evaluates one binding ([args] in {!params} order) and
    returns per-mnemonic counts in {!mnemonics} order.  The returned
    array is the runner's internal buffer — read it before the next
    [run], don't hold it.  Allocation-free. *)

val run_split : runner -> int array -> float array * float array
(** Split-mode variant: (serial, parallel) buffers. *)

val eval : prog -> env:(string * int) list -> (string * float) list
(** One-shot convenience with the {!Model_eval.eval} result shape.
    @raise Model_eval.Missing_parameter when [env] lacks an input. *)

val eval_split :
  prog -> env:(string * int) list -> (string * (float * float)) list

(** {1 Derived metrics (arch constants folded at compile time)} *)

val total : prog -> float array -> float
val fpi : prog -> float array -> float

val cycles : prog -> float array -> float
(** @raise Invalid_argument if compiled without [?arch]. *)

val seconds : prog -> float array -> float

(** {1 The program cache} *)

type cache
(** Thread-safe: a memory LRU always, plus a checksummed disk tier
    ([<key>.prog] files: magic + MD5 + marshalled program, published
    crash-consistently through {!Batch.durable_publish} under the
    shared directory lock) when [dir] is given — it can share a
    directory with the {!Batch} analysis cache.  "Not compilable"
    verdicts are negatively cached in memory so sweeps over
    uncompilable models don't re-attempt compilation per binding. *)

val recovery_entry : string * string
(** The prog tier's [(suffix, magic)] pair ([".prog"], its file magic)
    for {!Batch.recover_dir}'s integrity scan. *)

val create_cache : ?capacity:int -> ?dir:string -> unit -> cache
(** An existing [dir] gets the {!Batch.recover_dir} startup scan over
    the prog tier now: entries a crash left torn are quarantined
    before anything can load them. *)

type stats = {
  hits : int;  (** served from a tier without compiling *)
  misses : int;  (** compiled fresh *)
  disk_hits : int;  (** subset of [hits] served from disk *)
  fallbacks : int;  (** requests answered "not compilable" *)
}

val stats : cache -> stats

val cache_version : string
(** Participates in every key; bump on program-format changes. *)

val key :
  digest:string ->
  ?arch:Mira_arch.Archdesc.t ->
  mode:mode ->
  fname:string ->
  sweep:string list ->
  fixed:(string * int) list ->
  unit ->
  string
(** The content key (hex digest).  [digest] identifies the model
    content; the arch participates via its name and rendered
    description. *)

val get :
  cache ->
  digest:string ->
  ?arch:Mira_arch.Archdesc.t ->
  ?mode:mode ->
  model:Model_ir.t ->
  fname:string ->
  sweep:string list ->
  fixed:(string * int) list ->
  unit ->
  (prog, string) result
(** Cached {!compile}: memory, then disk, then compile-and-store.
    [Error reason] means not compilable (fall back to the
    interpreter); model/parameter errors raise as in {!compile}. *)
