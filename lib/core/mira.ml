type t = { input : Input_processor.t; model : Model_ir.t }

let analyze ?level ?(source_name = "<memory>") source =
  let input = Input_processor.process ?level ~source_name source in
  let bridge = Bridge.create input.binast in
  let model = Metric_gen.build ~source_name input.ast bridge in
  { input; model }

let analyze_file ?level path =
  let input = Input_processor.process_file ?level path in
  let bridge = Bridge.create input.binast in
  let model = Metric_gen.build ~source_name:input.source_name input.ast bridge in
  { input; model }

let analyze_batch ?jobs ?cache ?incremental ?level ?limits ?faults sources =
  Batch.run ?jobs ?cache ?incremental ?level ?limits ?faults
    (List.map
       (fun (name, text) -> { Batch.src_name = name; src_text = text })
       sources)

let counts t ~fname ~env = Model_eval.eval t.model ~fname ~env
let counts_split t ~fname ~env = Model_eval.eval_split t.model ~fname ~env
let fpi t ~fname ~env = Model_eval.fpi (counts t ~fname ~env)
let python_model t = Python_emit.emit t.model

let parameters t ~fname = (Model_ir.find_exn t.model fname).mf_params
let warnings t = Model_ir.all_warnings t.model
let source_dot t = Mira_srclang.Dot.of_program t.input.ast
let binary_dot t = Mira_visa.Binast.to_dot t.input.binast

(* one-shot daemon access, so library users never touch the frame
   codec: [with_endpoint e (fun c -> Client.request c Ping)] *)
let with_endpoint = Client.with_endpoint
