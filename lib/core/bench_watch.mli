(** Watch-mode latency benchmark: edit-to-updated-model through a warm
    {!Session} vs a cold whole-corpus re-batch.

    The harness watches every given source plus one synthesized edit
    target, then repeatedly edits a single constant inside one of the
    target's functions — the canonical watch-mode interaction.  Each
    warm sample times {!Session.reanalyze} end to end (diff,
    recompute, reassemble, re-emit); each cold sample times
    {!Batch.run} over the whole source set with no cache, which is
    what a pre-watch caller had to do per edit.  Every warm model is
    verified byte-identical to its cold counterpart before anything is
    timed. *)

type result = {
  bw_files : int;  (** watched files, edit target included *)
  bw_functions : int;  (** functions across all watched files *)
  bw_edits : int;  (** timed warm edits *)
  bw_invalidated : int;  (** functions invalidated per edit *)
  bw_warm_ms : float;  (** median edit-to-updated-model latency *)
  bw_warm_p90_ms : float;
  bw_cold_ms : float;  (** median cold whole-corpus re-batch *)
  bw_cold_samples : int;
  bw_speedup : float;  (** [bw_cold_ms /. bw_warm_ms] *)
}

val run :
  ?level:Mira_codegen.Codegen.level ->
  ?limits:Limits.t ->
  ?edits:int ->
  ?cold_samples:int ->
  ?target_functions:int ->
  sources:(string * string) list ->
  unit ->
  result
(** [sources] are (path, text) pairs (the corpus); the synthesized
    edit target rides alongside them.  Raises [Failure] if any source
    fails cold analysis or a warm model diverges from its cold
    counterpart. *)
