module Budget = Mira_limits.Budget

type t = {
  fuel : int option;
  depth : int;
  timeout_ms : int option;
  retries : int;
}

let default =
  { fuel = None; depth = Budget.default_depth; timeout_ms = None; retries = 2 }

let budget t = Budget.make ?fuel:t.fuel ~depth:t.depth ?timeout_ms:t.timeout_ms ()

(* the configured limits are a ceiling: a request can tighten its own
   budget but never exceed the operator's *)
let clamp t ~fuel ~timeout_ms ~depth =
  let min_opt a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
  in
  {
    t with
    fuel = min_opt t.fuel fuel;
    depth = (match depth with Some d -> min t.depth d | None -> t.depth);
    timeout_ms = min_opt t.timeout_ms timeout_ms;
  }
