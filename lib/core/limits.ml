module Budget = Mira_limits.Budget

type t = {
  fuel : int option;
  depth : int;
  timeout_ms : int option;
  retries : int;
}

let default =
  { fuel = None; depth = Budget.default_depth; timeout_ms = None; retries = 2 }

let budget t = Budget.make ?fuel:t.fuel ~depth:t.depth ?timeout_ms:t.timeout_ms ()
