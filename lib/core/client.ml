(* The pooled daemon client.  Layering, bottom up:

   - conn: one pipelined connection — a writer (serialized under the
     connection mutex), a reader thread that re-associates responses
     by their echoed id= tag, and per-request slots the callers poll;
   - pool: one conn per endpoint, opened lazily, with round-robin +
     health-aware dispatch and reconnect-with-retry for idempotent
     requests;
   - sweep: fan a request batch over the pool on worker threads,
     merging results positionally so the output is in input order.

   Death discipline: a connection dies exactly once ([kill] sets
   [c_dead] under the mutex and shuts the socket down so the blocked
   reader wakes); the reader owns the descriptor close, taken under
   the same mutex after it exits, so no writer can race a descriptor
   reuse.  Every waiter observes either its response or the death
   message — never silence. *)

type slot = { mutable s_resp : Serve.response option }

type conn = {
  c_fd : Unix.file_descr;
  c_mu : Mutex.t;
  mutable c_next : int;
  c_slots : (string, slot) Hashtbl.t;
  mutable c_dead : string option;
  mutable c_closed : bool;
  mutable c_inflight : int;
  mutable c_reader : Thread.t option;
  c_secret : string option;
      (* shared auth secret: seal every request, require a valid MAC
         on every response *)
}

let kill conn msg =
  Mutex.lock conn.c_mu;
  if conn.c_dead = None then begin
    conn.c_dead <- Some msg;
    (* wake the reader out of its blocking read; it will close the
       descriptor once no writer can hold it *)
    try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.c_mu

let reader conn =
  let rec loop () =
    match Serve.read_frame conn.c_fd with
    | Error Serve.Timed_out ->
        (* the socket timeout is only a poll tick here: per-request
           deadlines belong to the waiters, and an idle pooled
           connection is not an error *)
        if conn.c_dead = None then loop ()
    | Error e -> kill conn (Serve.frame_error_to_string e)
    | Ok payload -> (
        let payload =
          match conn.c_secret with
          | None -> Ok payload
          | Some secret -> (
              (* a secret-bearing daemon seals every response; an
                 unsealed or forged frame means the peer is not the
                 daemon this pool was configured for *)
              match Auth.verify ~secret payload with
              | `Ok stripped -> Ok stripped
              | `Missing | `Bad -> Error "response failed authentication")
        in
        match Result.bind payload Serve.parse_response with
        | Error m -> kill conn ("unparseable response: " ^ m)
        | Ok resp -> (
            match Serve.field resp "id" with
            | None ->
                (* the only legitimate untagged response is the shed
                   frame the accept loop sends before dropping us *)
                if resp.Serve.rs_status = "overloaded" then
                  kill conn "server overloaded"
                else kill conn "untagged response on a pipelined connection"
            | Some id ->
                Mutex.lock conn.c_mu;
                (match Hashtbl.find_opt conn.c_slots id with
                | Some slot ->
                    slot.s_resp <- Some resp;
                    Hashtbl.remove conn.c_slots id
                | None ->
                    (* an abandoned (deadlined) request's late answer:
                       drop it, the stream itself is still in sync *)
                    ());
                Mutex.unlock conn.c_mu;
                loop ()))
  in
  (try loop () with _ -> ());
  Mutex.lock conn.c_mu;
  if conn.c_dead = None then conn.c_dead <- Some "connection closed";
  if not conn.c_closed then begin
    conn.c_closed <- true;
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.c_mu

let make_conn ~io_timeout_ms ?auth_secret ep =
  let fd = Endpoint.connect ~io_timeout_ms ep in
  let conn =
    {
      c_fd = fd;
      c_mu = Mutex.create ();
      c_next = 1;
      c_slots = Hashtbl.create 16;
      c_dead = None;
      c_closed = false;
      c_inflight = 0;
      c_reader = None;
      c_secret = auth_secret;
    }
  in
  conn.c_reader <- Some (Thread.create reader conn);
  conn

(* adaptive wait: spin briefly for the common sub-millisecond ping,
   then back off to a 1 ms poll for real analyses *)
let backoff n = if n < 64 then Thread.yield () else Unix.sleepf 0.001

(* one tagged request on an open connection; every exit decrements the
   in-flight count exactly once *)
let conn_request conn ~max_inflight ~deadline_ms req =
  Mutex.lock conn.c_mu;
  let rec admit n =
    match conn.c_dead with
    | Some m ->
        Mutex.unlock conn.c_mu;
        Error ("connection: " ^ m)
    | None ->
        if conn.c_inflight >= max 1 max_inflight then begin
          (* pipeline full: backpressure this caller, not the wire *)
          Mutex.unlock conn.c_mu;
          backoff n;
          Mutex.lock conn.c_mu;
          admit (n + 1)
        end
        else submit ()
  and submit () =
    let id = string_of_int conn.c_next in
    conn.c_next <- conn.c_next + 1;
    let slot = { s_resp = None } in
    Hashtbl.replace conn.c_slots id slot;
    conn.c_inflight <- conn.c_inflight + 1;
    let payload = Serve.encode_request ~id req in
    let payload =
      match conn.c_secret with
      | Some secret -> Auth.seal ~secret payload
      | None -> payload
    in
    match Serve.write_frame conn.c_fd payload with
    | exception e ->
        Hashtbl.remove conn.c_slots id;
        conn.c_inflight <- conn.c_inflight - 1;
        let msg =
          match e with
          | Unix.Unix_error (er, _, _) -> Unix.error_message er
          | e -> Printexc.to_string e
        in
        Mutex.unlock conn.c_mu;
        kill conn ("write: " ^ msg);
        Error ("write: " ^ msg)
    | () ->
        Mutex.unlock conn.c_mu;
        await id slot
  and await id slot =
    let deadline =
      if deadline_ms <= 0 then infinity
      else Unix.gettimeofday () +. (float_of_int deadline_ms /. 1000.0)
    in
    let finish r =
      conn.c_inflight <- conn.c_inflight - 1;
      Mutex.unlock conn.c_mu;
      r
    in
    let rec wait n =
      Mutex.lock conn.c_mu;
      match (slot.s_resp, conn.c_dead) with
      | Some resp, _ -> finish (Ok resp)
      | None, Some m -> finish (Error ("connection: " ^ m))
      | None, None ->
          if Unix.gettimeofday () > deadline then begin
            (* wedged or merely slow?  Undecidable from here — treat
               the connection as lost so nothing queues behind it *)
            Hashtbl.remove conn.c_slots id;
            ignore
              (finish
                 (Error "request deadline exceeded (daemon wedged?)"));
            kill conn "request deadline exceeded";
            Error "request deadline exceeded (daemon wedged?)"
          end
          else begin
            Mutex.unlock conn.c_mu;
            backoff n;
            wait (n + 1)
          end
    in
    wait 0
  in
  admit 0

(* ---------- the pool ---------- *)

type ep_state = {
  e_ep : Endpoint.t;
  e_mu : Mutex.t;
  mutable e_conn : conn option;
  mutable e_down_until : float;
}

type t = {
  p_eps : ep_state array;
  p_rr : int Atomic.t;
  p_io_timeout_ms : int;
  p_max_inflight : int;
  p_retries : int;
  p_closed : bool Atomic.t;
  p_auth_secret : string option;
}

(* how long a failed endpoint sits out before dispatch tries it again;
   reconnects still happen sooner when every endpoint is down *)
let down_cooldown_s = 1.0

let create ?(io_timeout_ms = 30_000) ?(max_inflight = 8) ?(retries = 2)
    ?auth_secret eps =
  if eps = [] then invalid_arg "Client.create: no endpoints";
  {
    p_eps =
      Array.of_list
        (List.map
           (fun ep ->
             {
               e_ep = ep;
               e_mu = Mutex.create ();
               e_conn = None;
               e_down_until = 0.0;
             })
           eps);
    p_rr = Atomic.make 0;
    p_io_timeout_ms = max 0 io_timeout_ms;
    p_max_inflight = max 1 max_inflight;
    p_retries = max 0 retries;
    p_closed = Atomic.make false;
    p_auth_secret = auth_secret;
  }

let endpoints t = Array.to_list (Array.map (fun s -> s.e_ep) t.p_eps)

let idempotent = function
  | Serve.Shutdown -> false
  (* Sweep is side-effect-free on the daemon too, but this pool's
     one-response-per-request slots cannot carry its streamed frames:
     [request] refuses it and Coordinator owns the verb *)
  | Serve.Ping | Serve.Stats | Serve.Analyze _ | Serve.Eval _
  | Serve.Sweep _ ->
      true

let drop_conn st =
  Mutex.lock st.e_mu;
  let c = st.e_conn in
  st.e_conn <- None;
  Mutex.unlock st.e_mu;
  match c with None -> () | Some c -> kill c "connection replaced"

let mark_down st =
  st.e_down_until <- Unix.gettimeofday () +. down_cooldown_s;
  drop_conn st

(* round-robin, health- and room-aware: prefer an up endpoint with
   pipeline room, then any up endpoint, then the raw round-robin
   choice (when everything is cooling down, trying beats failing) *)
let pick t =
  let n = Array.length t.p_eps in
  let start = Atomic.fetch_and_add t.p_rr 1 in
  let at i = t.p_eps.((start + i) mod n) in
  let now = Unix.gettimeofday () in
  let up st = st.e_down_until <= now in
  let room st =
    match st.e_conn with
    | Some c -> c.c_dead = None && c.c_inflight < t.p_max_inflight
    | None -> true
  in
  let rec scan i pred = if i >= n then None else
    let st = at i in
    if pred st then Some st else scan (i + 1) pred
  in
  match scan 0 (fun st -> up st && room st) with
  | Some st -> st
  | None -> (
      match scan 0 up with Some st -> st | None -> at 0)

let get_conn t st =
  Mutex.lock st.e_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.e_mu)
    (fun () ->
      match st.e_conn with
      | Some c when c.c_dead = None -> c
      | _ ->
          let c =
            make_conn ~io_timeout_ms:t.p_io_timeout_ms
              ?auth_secret:t.p_auth_secret st.e_ep
          in
          st.e_conn <- Some c;
          st.e_down_until <- 0.0;
          c)

let request ?deadline_ms t req =
  if Atomic.get t.p_closed then Error "client pool is closed"
  else if match req with Serve.Sweep _ -> true | _ -> false then
    Error "sweep responses stream (one frame per binding); use Coordinator"
  else
    let deadline_ms = Option.value deadline_ms ~default:t.p_io_timeout_ms in
    let attempts = if idempotent req then 1 + t.p_retries else 1 in
    let rec go attempt last_err =
      if attempt >= attempts then Error last_err
      else
        let st = pick t in
        let label m = Endpoint.to_string st.e_ep ^ ": " ^ m in
        match get_conn t st with
        | exception Unix.Unix_error (e, _, _) ->
            mark_down st;
            go (attempt + 1) (label ("connect: " ^ Unix.error_message e))
        | exception Failure m ->
            (* unresolvable host: no point hammering it *)
            mark_down st;
            go (attempt + 1) (label m)
        | conn -> (
            match
              conn_request conn ~max_inflight:t.p_max_inflight ~deadline_ms
                req
            with
            | Ok resp when resp.Serve.rs_status = "overloaded" ->
                (* shed at accept: this daemon is saturated, move on —
                   but surface the shed itself when attempts run out *)
                mark_down st;
                if idempotent req && attempt + 1 < attempts then
                  go (attempt + 1) (label "overloaded")
                else Ok resp
            | Ok resp -> Ok resp
            | Error m ->
                mark_down st;
                go (attempt + 1) (label m))
    in
    go 0 "no endpoints"

let sweep ?jobs ?deadline_ms t reqs =
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n (Error "sweep: never ran") in
    let jobs =
      min n
        (match jobs with
        | Some j -> max 1 j
        | None -> max 1 (Array.length t.p_eps * t.p_max_inflight))
    in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (try request ?deadline_ms t arr.(i)
             with e -> Error (Printexc.to_string e)));
          go ()
        end
      in
      go ()
    in
    let threads = List.init jobs (fun _ -> Thread.create worker ()) in
    List.iter Thread.join threads;
    Array.to_list results
  end

let close t =
  if not (Atomic.exchange t.p_closed true) then
    Array.iter
      (fun st ->
        Mutex.lock st.e_mu;
        let c = st.e_conn in
        st.e_conn <- None;
        Mutex.unlock st.e_mu;
        match c with
        | None -> ()
        | Some c -> (
            kill c "client closed";
            match c.c_reader with
            | Some th -> ( try Thread.join th with _ -> ())
            | None -> ()))
      t.p_eps

let with_pool ?io_timeout_ms ?max_inflight ?retries ?auth_secret eps f =
  let t = create ?io_timeout_ms ?max_inflight ?retries ?auth_secret eps in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let with_endpoint ?io_timeout_ms ep f = with_pool ?io_timeout_ms [ ep ] f

let wait_ready ?(timeout_s = 5.0) ?auth_secret ep =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let ready =
      (* each probe is individually bounded so a half-up daemon cannot
         park one past the caller's overall deadline *)
      match Endpoint.connect ~io_timeout_ms:1000 ep with
      | exception (Unix.Unix_error _ | Sys_error _ | Failure _) -> false
      | fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match Serve.roundtrip ?auth_secret fd Serve.Ping with
              | Ok { Serve.rs_status = "ok"; _ } -> true
              | _ -> false)
    in
    if ready then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()
