(* The pooled daemon client.  Layering, bottom up:

   - conn: one pipelined connection — a writer (serialized under the
     connection mutex), a reader thread that re-associates responses
     by their echoed id= tag, and per-request slots the callers poll;
   - pool: one conn per endpoint, opened lazily, with round-robin +
     health-aware dispatch and reconnect-with-retry for idempotent
     requests;
   - sweep: fan a request batch over the pool on worker threads,
     merging results positionally so the output is in input order.

   Death discipline: a connection dies exactly once ([kill] sets
   [c_dead] under the mutex and shuts the socket down so the blocked
   reader wakes); the reader owns the descriptor close, taken under
   the same mutex after it exits, so no writer can race a descriptor
   reuse.  Every waiter observes either its response or the death
   message — never silence. *)

type slot = { mutable s_resp : Serve.response option }

type conn = {
  c_fd : Unix.file_descr;
  c_mu : Mutex.t;
  mutable c_next : int;
  c_slots : (string, slot) Hashtbl.t;
  mutable c_dead : string option;
  mutable c_closed : bool;
  mutable c_inflight : int;
  mutable c_reader : Thread.t option;
  c_secret : string option;
      (* shared auth secret: seal every request, require a valid MAC
         on every response *)
}

let kill conn msg =
  Mutex.lock conn.c_mu;
  if conn.c_dead = None then begin
    conn.c_dead <- Some msg;
    (* wake the reader out of its blocking read; it will close the
       descriptor once no writer can hold it *)
    try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.c_mu

let reader conn =
  let rec loop () =
    match Serve.read_frame conn.c_fd with
    | Error Serve.Timed_out ->
        (* the socket timeout is only a poll tick here: per-request
           deadlines belong to the waiters, and an idle pooled
           connection is not an error *)
        if conn.c_dead = None then loop ()
    | Error e -> kill conn (Serve.frame_error_to_string e)
    | Ok payload -> (
        let payload =
          match conn.c_secret with
          | None -> Ok payload
          | Some secret -> (
              (* a secret-bearing daemon seals every response; an
                 unsealed or forged frame means the peer is not the
                 daemon this pool was configured for *)
              match Auth.verify ~secret payload with
              | `Ok stripped -> Ok stripped
              | `Missing | `Bad -> Error "response failed authentication")
        in
        match Result.bind payload Serve.parse_response with
        | Error m -> kill conn ("unparseable response: " ^ m)
        | Ok resp -> (
            match Serve.field resp "id" with
            | None ->
                (* the only legitimate untagged response is the shed
                   frame the accept loop sends before dropping us *)
                if resp.Serve.rs_status = "overloaded" then
                  kill conn "server overloaded"
                else kill conn "untagged response on a pipelined connection"
            | Some id ->
                Mutex.lock conn.c_mu;
                (match Hashtbl.find_opt conn.c_slots id with
                | Some slot ->
                    slot.s_resp <- Some resp;
                    Hashtbl.remove conn.c_slots id
                | None ->
                    (* an abandoned (deadlined) request's late answer:
                       drop it, the stream itself is still in sync *)
                    ());
                Mutex.unlock conn.c_mu;
                loop ()))
  in
  (try loop () with _ -> ());
  Mutex.lock conn.c_mu;
  if conn.c_dead = None then conn.c_dead <- Some "connection closed";
  if not conn.c_closed then begin
    conn.c_closed <- true;
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.c_mu

let make_conn ~io_timeout_ms ?auth_secret ep =
  let fd = Endpoint.connect ~io_timeout_ms ep in
  let conn =
    {
      c_fd = fd;
      c_mu = Mutex.create ();
      c_next = 1;
      c_slots = Hashtbl.create 16;
      c_dead = None;
      c_closed = false;
      c_inflight = 0;
      c_reader = None;
      c_secret = auth_secret;
    }
  in
  conn.c_reader <- Some (Thread.create reader conn);
  conn

(* adaptive wait: spin briefly for the common sub-millisecond ping,
   then back off to a 1 ms poll for real analyses *)
let backoff n = if n < 64 then Thread.yield () else Unix.sleepf 0.001

(* one tagged request on an open connection; every exit decrements the
   in-flight count exactly once *)
let conn_request conn ~max_inflight ~deadline_ms req =
  Mutex.lock conn.c_mu;
  let rec admit n =
    match conn.c_dead with
    | Some m ->
        Mutex.unlock conn.c_mu;
        Error ("connection: " ^ m)
    | None ->
        if conn.c_inflight >= max 1 max_inflight then begin
          (* pipeline full: backpressure this caller, not the wire *)
          Mutex.unlock conn.c_mu;
          backoff n;
          Mutex.lock conn.c_mu;
          admit (n + 1)
        end
        else submit ()
  and submit () =
    let id = string_of_int conn.c_next in
    conn.c_next <- conn.c_next + 1;
    let slot = { s_resp = None } in
    Hashtbl.replace conn.c_slots id slot;
    conn.c_inflight <- conn.c_inflight + 1;
    let payload = Serve.encode_request ~id req in
    let payload =
      match conn.c_secret with
      | Some secret -> Auth.seal ~secret payload
      | None -> payload
    in
    match Serve.write_frame conn.c_fd payload with
    | exception e ->
        Hashtbl.remove conn.c_slots id;
        conn.c_inflight <- conn.c_inflight - 1;
        let msg =
          match e with
          | Unix.Unix_error (er, _, _) -> Unix.error_message er
          | e -> Printexc.to_string e
        in
        Mutex.unlock conn.c_mu;
        kill conn ("write: " ^ msg);
        Error ("write: " ^ msg)
    | () ->
        Mutex.unlock conn.c_mu;
        await id slot
  and await id slot =
    let deadline =
      if deadline_ms <= 0 then infinity
      else Unix.gettimeofday () +. (float_of_int deadline_ms /. 1000.0)
    in
    let finish r =
      conn.c_inflight <- conn.c_inflight - 1;
      Mutex.unlock conn.c_mu;
      r
    in
    let rec wait n =
      Mutex.lock conn.c_mu;
      match (slot.s_resp, conn.c_dead) with
      | Some resp, _ -> finish (Ok resp)
      | None, Some m -> finish (Error ("connection: " ^ m))
      | None, None ->
          if Unix.gettimeofday () > deadline then begin
            (* wedged or merely slow?  Undecidable from here — treat
               the connection as lost so nothing queues behind it *)
            Hashtbl.remove conn.c_slots id;
            ignore
              (finish
                 (Error "request deadline exceeded (daemon wedged?)"));
            kill conn "request deadline exceeded";
            Error "request deadline exceeded (daemon wedged?)"
          end
          else begin
            Mutex.unlock conn.c_mu;
            backoff n;
            wait (n + 1)
          end
    in
    wait 0
  in
  admit 0

(* ---------- the pool ---------- *)

(* Per-endpoint circuit breaker.  Closed passes traffic and counts
   consecutive failures; [trip_after] of them open the circuit for a
   cooldown that doubles with each consecutive trip; once the cooldown
   elapses exactly one caller is admitted as the half-open probe
   (everyone else keeps skipping), and that probe's outcome either
   closes the circuit (a revived daemon rejoins dispatch — counted in
   [p_reopened]) or re-opens it with a longer cooldown.  This replaces
   the old flat mark-down cooldown: a dead endpoint is skipped, not
   periodically retried into by every caller at once. *)
type breaker = Closed | Open of float  (* earliest half-open probe *) | Half_open

type ep_state = {
  e_ep : Endpoint.t;
  e_mu : Mutex.t;
  mutable e_conn : conn option;
  mutable e_breaker : breaker;
  mutable e_fails : int;  (* consecutive failures while closed *)
  mutable e_trips : int;  (* consecutive opens — scales the cooldown *)
}

type t = {
  p_eps : ep_state array;
  p_rr : int Atomic.t;
  p_io_timeout_ms : int;
  p_max_inflight : int;
  p_retries : int;
  p_hedge_ms : int;
  p_closed : bool Atomic.t;
  p_auth_secret : string option;
  p_reopened : int Atomic.t;  (* half-open probes that closed the circuit *)
  p_hedges : int Atomic.t;  (* hedge requests actually fired *)
  p_hedge_wins : int Atomic.t;  (* answered by the hedge, not the primary *)
}

type breaker_stats = {
  bk_closed : int;
  bk_open : int;
  bk_half_open : int;
  bk_reopened : int;
  bk_hedges : int;
  bk_hedge_wins : int;
}

let trip_after = 2
let cooldown_base_s = 0.5
let cooldown_max_s = 8.0

let cooldown trips =
  Float.min cooldown_max_s
    (cooldown_base_s *. (2.0 ** float_of_int (min 8 (max 0 (trips - 1)))))

let create ?(io_timeout_ms = 30_000) ?(max_inflight = 8) ?(retries = 2)
    ?(hedge_ms = 0) ?auth_secret eps =
  if eps = [] then invalid_arg "Client.create: no endpoints";
  {
    p_eps =
      Array.of_list
        (List.map
           (fun ep ->
             {
               e_ep = ep;
               e_mu = Mutex.create ();
               e_conn = None;
               e_breaker = Closed;
               e_fails = 0;
               e_trips = 0;
             })
           eps);
    p_rr = Atomic.make 0;
    p_io_timeout_ms = max 0 io_timeout_ms;
    p_max_inflight = max 1 max_inflight;
    p_retries = max 0 retries;
    p_hedge_ms = max 0 hedge_ms;
    p_closed = Atomic.make false;
    p_auth_secret = auth_secret;
    p_reopened = Atomic.make 0;
    p_hedges = Atomic.make 0;
    p_hedge_wins = Atomic.make 0;
  }

let breaker_stats t =
  let closed = ref 0 and opened = ref 0 and half = ref 0 in
  Array.iter
    (fun st ->
      Mutex.lock st.e_mu;
      (match st.e_breaker with
      | Closed -> incr closed
      | Open _ -> incr opened
      | Half_open -> incr half);
      Mutex.unlock st.e_mu)
    t.p_eps;
  {
    bk_closed = !closed;
    bk_open = !opened;
    bk_half_open = !half;
    bk_reopened = Atomic.get t.p_reopened;
    bk_hedges = Atomic.get t.p_hedges;
    bk_hedge_wins = Atomic.get t.p_hedge_wins;
  }

let endpoints t = Array.to_list (Array.map (fun s -> s.e_ep) t.p_eps)

let idempotent = function
  | Serve.Shutdown -> false
  (* the session verbs mutate daemon state (watch/forget change the
     watched set, reanalyze advances it): never hedge or silently
     retry them — a duplicate would double-commit an edit *)
  | Serve.Watch _ | Serve.Reanalyze _ | Serve.Forget _ -> false
  (* Sweep is side-effect-free on the daemon too, but this pool's
     one-response-per-request slots cannot carry its streamed frames:
     [request] refuses it and Coordinator owns the verb *)
  | Serve.Ping | Serve.Stats | Serve.Health | Serve.Analyze _ | Serve.Eval _
  | Serve.Sweep _ ->
      true

let drop_conn st =
  Mutex.lock st.e_mu;
  let c = st.e_conn in
  st.e_conn <- None;
  Mutex.unlock st.e_mu;
  match c with None -> () | Some c -> kill c "connection replaced"

let breaker_fail st =
  Mutex.lock st.e_mu;
  (match st.e_breaker with
  | Half_open ->
      (* the probe failed: back to open, longer cooldown *)
      st.e_trips <- st.e_trips + 1;
      st.e_breaker <- Open (Unix.gettimeofday () +. cooldown st.e_trips)
  | Closed ->
      st.e_fails <- st.e_fails + 1;
      if st.e_fails >= trip_after then begin
        st.e_trips <- st.e_trips + 1;
        st.e_breaker <- Open (Unix.gettimeofday () +. cooldown st.e_trips)
      end
  | Open _ -> ());
  Mutex.unlock st.e_mu;
  drop_conn st

let breaker_ok t st =
  Mutex.lock st.e_mu;
  (match st.e_breaker with
  | Closed -> st.e_fails <- 0
  | Half_open | Open _ ->
      (* the half-open probe succeeded (or a last-resort try against an
         open circuit did): the daemon is back — e.g. just restarted by
         a supervisor — so it rejoins dispatch *)
      st.e_breaker <- Closed;
      st.e_fails <- 0;
      st.e_trips <- 0;
      Atomic.incr t.p_reopened);
  Mutex.unlock st.e_mu

(* round-robin, breaker- and room-aware: a due half-open probe first
   (it fires at most once per cooldown window, and skipping it while
   healthy endpoints exist would strand a revived endpoint open
   forever), then a closed-circuit endpoint with pipeline room, then
   any closed one, then the raw round-robin choice (when every
   circuit is open, trying beats failing) *)
let pick t =
  let n = Array.length t.p_eps in
  let start = Atomic.fetch_and_add t.p_rr 1 in
  let at i = t.p_eps.((start + i) mod n) in
  let now = Unix.gettimeofday () in
  let state st =
    Mutex.lock st.e_mu;
    let b = st.e_breaker in
    Mutex.unlock st.e_mu;
    b
  in
  let closed st = state st = Closed in
  let probe_due st =
    match state st with Open until -> now >= until | Closed | Half_open -> false
  in
  let room st =
    match st.e_conn with
    | Some c -> c.c_dead = None && c.c_inflight < t.p_max_inflight
    | None -> true
  in
  let rec scan i pred = if i >= n then None else
    let st = at i in
    if pred st then Some st else scan (i + 1) pred
  in
  let claim_probe st =
    (* claim the single probe slot; a racing picker that saw the same
       expiry loses here and skips the endpoint *)
    Mutex.lock st.e_mu;
    let won =
      match st.e_breaker with
      | Open until when now >= until ->
          st.e_breaker <- Half_open;
          true
      | Closed | Open _ | Half_open -> false
    in
    Mutex.unlock st.e_mu;
    won
  in
  match scan 0 probe_due with
  | Some st when claim_probe st -> st
  | Some _ | None -> (
      match scan 0 (fun st -> closed st && room st) with
      | Some st -> st
      | None -> (
          match scan 0 closed with Some st -> st | None -> at 0))

let get_conn t st =
  Mutex.lock st.e_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.e_mu)
    (fun () ->
      match st.e_conn with
      | Some c when c.c_dead = None -> c
      | _ ->
          let c =
            make_conn ~io_timeout_ms:t.p_io_timeout_ms
              ?auth_secret:t.p_auth_secret st.e_ep
          in
          st.e_conn <- Some c;
          c)

let request_once ?deadline_ms t req =
  let deadline_ms = Option.value deadline_ms ~default:t.p_io_timeout_ms in
  let attempts = if idempotent req then 1 + t.p_retries else 1 in
  let rec go attempt last_err =
    if attempt >= attempts then Error last_err
    else
      let st = pick t in
      let label m = Endpoint.to_string st.e_ep ^ ": " ^ m in
      match get_conn t st with
      | exception Unix.Unix_error (e, _, _) ->
          breaker_fail st;
          go (attempt + 1) (label ("connect: " ^ Unix.error_message e))
      | exception Failure m ->
          (* unresolvable host: no point hammering it *)
          breaker_fail st;
          go (attempt + 1) (label m)
      | conn -> (
          match
            conn_request conn ~max_inflight:t.p_max_inflight ~deadline_ms
              req
          with
          | Ok resp when resp.Serve.rs_status = "overloaded" ->
              (* shed at accept: this daemon is saturated, move on —
                 but surface the shed itself when attempts run out *)
              breaker_fail st;
              if idempotent req && attempt + 1 < attempts then
                go (attempt + 1) (label "overloaded")
              else Ok resp
          | Ok resp ->
              breaker_ok t st;
              Ok resp
          | Error m ->
              breaker_fail st;
              go (attempt + 1) (label m))
  in
  go 0 "no endpoints"

(* Hedging: when the primary attempt has not answered after
   [p_hedge_ms], fire one duplicate through the pool (round-robin
   advances, so it lands on a different endpoint when one exists) and
   take whichever answers first.  Only for idempotent requests — a
   hedge is by construction a retry that may double-execute. *)
let request_hedged ?deadline_ms t req =
  let primary = Atomic.make None and hedge = Atomic.make None in
  let run cell =
    ignore
      (Thread.create
         (fun () ->
           let r =
             try request_once ?deadline_ms t req
             with e -> Error (Printexc.to_string e)
           in
           Atomic.set cell (Some r))
         ())
  in
  run primary;
  let hedge_at =
    Unix.gettimeofday () +. (float_of_int t.p_hedge_ms /. 1000.0)
  in
  let hedge_fired = ref false in
  let rec wait n =
    let rp = Atomic.get primary in
    let rh = if !hedge_fired then Atomic.get hedge else None in
    match (rp, rh) with
    | Some (Ok resp), _ -> Ok resp
    | _, Some (Ok resp) ->
        Atomic.incr t.p_hedge_wins;
        Ok resp
    | Some (Error _ as e), None when not !hedge_fired ->
        (* the primary already burned the retry budget; no hedge now *)
        e
    | Some (Error _ as e), Some (Error _) -> e
    | _ ->
        if
          (not !hedge_fired)
          && rp = None
          && Unix.gettimeofday () >= hedge_at
        then begin
          hedge_fired := true;
          Atomic.incr t.p_hedges;
          run hedge
        end;
        backoff n;
        wait (n + 1)
  in
  wait 0

let request ?deadline_ms t req =
  if Atomic.get t.p_closed then Error "client pool is closed"
  else if match req with Serve.Sweep _ -> true | _ -> false then
    Error "sweep responses stream (one frame per binding); use Coordinator"
  else if match req with Serve.Reanalyze _ -> true | _ -> false then
    Error
      "reanalyze responses stream (one frame per invalidated function); \
       use a direct connection (mira client reanalyze)"
  else if t.p_hedge_ms > 0 && idempotent req && Array.length t.p_eps > 1 then
    request_hedged ?deadline_ms t req
  else request_once ?deadline_ms t req

let sweep ?jobs ?deadline_ms t reqs =
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n (Error "sweep: never ran") in
    let jobs =
      min n
        (match jobs with
        | Some j -> max 1 j
        | None -> max 1 (Array.length t.p_eps * t.p_max_inflight))
    in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (try request ?deadline_ms t arr.(i)
             with e -> Error (Printexc.to_string e)));
          go ()
        end
      in
      go ()
    in
    let threads = List.init jobs (fun _ -> Thread.create worker ()) in
    List.iter Thread.join threads;
    Array.to_list results
  end

let close t =
  if not (Atomic.exchange t.p_closed true) then
    Array.iter
      (fun st ->
        Mutex.lock st.e_mu;
        let c = st.e_conn in
        st.e_conn <- None;
        Mutex.unlock st.e_mu;
        match c with
        | None -> ()
        | Some c -> (
            kill c "client closed";
            match c.c_reader with
            | Some th -> ( try Thread.join th with _ -> ())
            | None -> ()))
      t.p_eps

let with_pool ?io_timeout_ms ?max_inflight ?retries ?hedge_ms ?auth_secret
    eps f =
  let t =
    create ?io_timeout_ms ?max_inflight ?retries ?hedge_ms ?auth_secret eps
  in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let with_endpoint ?io_timeout_ms ep f = with_pool ?io_timeout_ms [ ep ] f

let wait_ready ?(timeout_s = 5.0) ?auth_secret ep =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let ready =
      (* each probe is individually bounded so a half-up daemon cannot
         park one past the caller's overall deadline *)
      match Endpoint.connect ~io_timeout_ms:1000 ep with
      | exception (Unix.Unix_error _ | Sys_error _ | Failure _) -> false
      | fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match Serve.roundtrip ?auth_secret fd Serve.Ping with
              | Ok { Serve.rs_status = "ok"; _ } -> true
              | _ -> false)
    in
    if ready then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()
