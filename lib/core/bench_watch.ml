(* Watch-mode latency benchmark — see the .mli.  The edit target is
   synthesized rather than taken from the corpus so the edit is
   guaranteed to be interface-neutral: a constant changes inside one
   function body, no signature/class/extern/annotation key moves, and
   the invalidation set is exactly that one function. *)

type result = {
  bw_files : int;
  bw_functions : int;
  bw_edits : int;
  bw_invalidated : int;
  bw_warm_ms : float;
  bw_warm_p90_ms : float;
  bw_cold_ms : float;
  bw_cold_samples : int;
  bw_speedup : float;
}

let target_path = "watch_target.mc"

(* [k] sibling functions make the target a realistic multi-function
   file: the edit must invalidate one of them, not all *)
let target_text ~functions ~variant =
  let b = Buffer.create 1024 in
  for i = 0 to functions - 1 do
    Printf.bprintf b
      "int probe_%d(int n) {\n\
      \  int acc = 0;\n\
      \  for (int i = 0; i < n; i++) {\n\
      \    acc = acc + %d;\n\
      \  }\n\
      \  return acc;\n\
       }\n\n"
      i
      (if i = 0 then variant else i + 1)
  done;
  Buffer.contents b

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a))))

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let cold_python ~level ~limits sources =
  let results, _ =
    Batch.run ~jobs:1 ~incremental:false ~level ~limits
      (List.map
         (fun (name, text) -> { Batch.src_name = name; src_text = text })
         sources)
  in
  List.map
    (function
      | Ok (a : Batch.analysis) -> (a.a_name, a.a_python)
      | Error (name, d) ->
          failwith
            (Printf.sprintf "bench-watch: %s failed cold analysis: %s" name
               (Diag.to_string d)))
    results

let run ?(level = Mira_codegen.Codegen.O1) ?(limits = Limits.default)
    ?(edits = 20) ?(cold_samples = 5) ?(target_functions = 8) ~sources () =
  let edits = max 1 edits and cold_samples = max 1 cold_samples in
  let session = Session.create ~level ~limits () in
  let watch path text =
    match Session.watch session ~path text with
    | Ok info -> List.length info.Session.in_functions
    | Error d ->
        failwith
          (Printf.sprintf "bench-watch: %s failed cold analysis: %s" path
             (Diag.to_string d))
  in
  let corpus_fns =
    List.fold_left (fun acc (p, text) -> acc + watch p text) 0 sources
  in
  let target0 = target_text ~functions:target_functions ~variant:100 in
  let target_fns = watch target_path target0 in
  (* correctness gate before any timing: a warm edit's model must be
     byte-identical to a cold analysis of the same text *)
  let check_variant = target_text ~functions:target_functions ~variant:101 in
  let invalidated =
    match Session.reanalyze session ~path:target_path check_variant with
    | Error d -> failwith ("bench-watch: reanalyze failed: " ^ Diag.to_string d)
    | Ok upd ->
        let cold =
          cold_python ~level ~limits ((target_path, check_variant) :: sources)
        in
        List.iter
          (fun (path, _, py) ->
            match List.assoc_opt path cold with
            | Some cold_py when cold_py = py -> ()
            | _ ->
                failwith
                  (Printf.sprintf
                     "bench-watch: warm model of %s diverges from cold" path))
          upd.Session.up_models;
        List.length upd.Session.up_invalidated
  in
  (* warm samples: alternate the constant so every edit really is an
     edit (an unchanged text would invalidate nothing) *)
  let warm =
    List.init edits (fun i ->
        let text =
          target_text ~functions:target_functions ~variant:(200 + i)
        in
        let upd, ms =
          time_ms (fun () ->
              match Session.reanalyze session ~path:target_path text with
              | Ok upd -> upd
              | Error d ->
                  failwith
                    ("bench-watch: reanalyze failed: " ^ Diag.to_string d))
        in
        if List.length upd.Session.up_invalidated <> invalidated then
          failwith "bench-watch: invalidation set drifted across edits";
        ms)
  in
  (* cold samples: what each edit cost before watch mode existed —
     re-batch the whole source set from scratch *)
  let cold =
    List.init cold_samples (fun i ->
        let text =
          target_text ~functions:target_functions ~variant:(500 + i)
        in
        snd
          (time_ms (fun () ->
               ignore (cold_python ~level ~limits ((target_path, text) :: sources)))))
  in
  let warm_ms = median warm and cold_ms = median cold in
  {
    bw_files = List.length sources + 1;
    bw_functions = corpus_fns + target_fns;
    bw_edits = edits;
    bw_invalidated = invalidated;
    bw_warm_ms = warm_ms;
    bw_warm_p90_ms = percentile 0.9 warm;
    bw_cold_ms = cold_ms;
    bw_cold_samples = cold_samples;
    bw_speedup = (if warm_ms > 0.0 then cold_ms /. warm_ms else infinity);
  }
