(** Deterministic fault injection.

    A fault spec assigns probabilities to injection sites in the batch
    pipeline (disk-cache reads, writes and renames; payload corruption;
    worker exceptions; artificial slowness).  Whether a given site
    fires is a {e pure function} of [(seed, site, subject)] — an MD5
    hash, no global PRNG state — so a schedule is reproducible across
    runs and, crucially, independent of worker scheduling: the set of
    affected sources is identical at [--jobs 1] and [--jobs 8].  That
    is what makes the byte-identity invariant testable under faults.

    Spec grammar (comma-separated [key=value]):

    {v seed=INT read=P write=P rename=P corrupt=P worker=P slow=P slow_ms=INT
       net_write=P disconnect=P kill=P crash=P v}

    where [P] is a probability in [0..1].  Example:
    [--faults seed=42,read=0.3,corrupt=0.2,worker=0.1].

    The [net_write] and [disconnect] sites live in the {!Serve} wire
    layer: a firing [net_write] truncates a socket write mid-frame (a
    dropped/short write), a firing [disconnect] closes the connection
    mid-frame instead of completing it, and [slow] in that layer
    stalls [slow_ms] between the frame header and its payload (a slow
    client).  They let one spec drive both the disk-cache and the
    network fault schedules.  The wire sites act on the descriptor,
    not the transport: one schedule fires identically over Unix-domain
    and TCP ({!Endpoint}) connections, so the multi-host paths are
    testable with the same determinism as the local ones. *)

type t = {
  seed : int;
  read_p : float;  (** injected [Sys_error] on a disk-cache read attempt *)
  write_p : float;  (** injected [Sys_error] on a disk-cache write attempt *)
  rename_p : float;  (** injected [Sys_error] publishing a cache entry *)
  corrupt_p : float;  (** write a truncated/garbled payload instead *)
  worker_p : float;  (** raise {!Injected} in the worker for a source *)
  slow_p : float;  (** sleep [slow_ms] in the worker for a source *)
  slow_ms : int;
  net_write_p : float;
      (** truncate a {!Serve} frame write (short write, then EOF) *)
  disconnect_p : float;
      (** drop a {!Serve} connection mid-frame instead of finishing *)
  kill_p : float;
      (** daemon death {e between} frames: the response frame is never
          written at all and the connection is severed abruptly, as a
          SIGKILLed daemon's kernel would — the site that makes the
          {!Coordinator} re-dispatch path deterministically testable *)
}

exception Injected of string
(** Raised at a [worker] site; the payload names the site. *)

val none : t
(** All probabilities zero (seed 0). *)

val parse : string -> (t, string) result
(** Parse the spec grammar above; unknown keys and malformed values are
    errors. *)

val to_string : t -> string
(** Canonical spec rendering (omits zero-probability sites). *)

val roll : t -> site:string -> subject:string -> float
(** The deterministic uniform draw in [0, 1) for one site/subject
    pair.  [subject] should identify the unit of work (a source name, a
    cache key, a cache key with an attempt number…). *)

val fires : t -> p:float -> site:string -> subject:string -> bool
(** [roll < p]; false when [p = 0]. *)

(** {1 The crash site}

    [crash=P] is unlike every other site: when it fires the whole
    process dies by self-SIGKILL — no unwind, no finalizers, no
    buffered-IO flush, exactly what a power cut leaves behind.  It
    fires at seeded points {e inside} the cache publish sequence
    ({!Batch.durable_publish}: between write, fsync and rename), which
    is what makes crash-consistent publish testable: a harness forks a
    child per publish, lets the seed pick where it dies, and asserts
    the {!Batch.recover_dir} scan finds nothing torn.  Because only
    one death schedule per process is meaningful, it is process-global
    state armed by {!set_crash} (or a [crash=P] key in {!parse}, using
    that spec's seed), not a field of [t]. *)

val set_crash : ?seed:int -> float -> unit
(** Arm (or, with [p <= 0], disarm) the process-global crash
    schedule.  [seed] defaults to [0]. *)

val maybe_crash : subject:string -> unit
(** Fire the [crash] site against the armed schedule (no-op when
    disarmed).  [subject] should be ["KEY@point"], naming the entry
    and the position inside the publish sequence; the decision is the
    same pure [(seed, site, subject)] draw as {!fires}. *)
