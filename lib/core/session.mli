(** Long-lived incremental analysis sessions — watch mode.

    A session holds, per watched file, the parsed AST, the
    per-function fingerprint table and the assembled model, plus a
    cross-file dependency index: each exported declaration key
    ([sig:NAME], [class:NAME], [extern:NAME], [ann:NAME] — see
    {!Mira_srclang.Fingerprint.interface_of_program}) maps to every
    function, in any file, whose analysis closure references it.

    {!reanalyze} diffs the edited file's per-function fingerprints,
    invalidates exactly the edited functions {e and} all cross-file
    dependents of its changed interface keys, re-analyzes only those
    (stub-reduced single-function compilations, as in {!Batch}'s
    incremental tier), and reassembles each touched file's model.
    Every warm model is {b byte-identical} to a cold whole-file
    analysis of the same text.

    The three-phase {!plan} → {!recompute} → {!commit} split exists so
    the serve daemon can fan recomputations out over its worker pool;
    {!recompute} is pure and thread-safe, while {!plan} and {!commit}
    serialize behind the session's internal mutex.  In-process callers
    use {!reanalyze}, which composes the three. *)

type t

type counters = {
  ct_files : int;  (** currently watched files *)
  ct_reanalyses : int;  (** committed reanalyze calls *)
  ct_invalidated : int;  (** cumulative invalidated functions *)
  ct_local : int;  (** … of which in the edited file itself *)
  ct_cross : int;  (** … of which cross-file dependents *)
  ct_recomputed : int;  (** function recomputations performed *)
  ct_clean : int;  (** reanalyzes that invalidated nothing *)
}

type reason =
  | Edited  (** the function's own fingerprint changed *)
  | Added  (** new function in the edited file *)
  | Cross of string
      (** dependent in another file; the payload is the changed
          interface key (e.g. ["sig:g"]) that reached it *)

val reason_to_string : reason -> string
(** ["edited"], ["added"], ["cross:KEY"]. *)

type inval = { iv_file : string; iv_func : string; iv_reason : reason }
(** One invalidated function (mangled name). *)

type info = {
  in_path : string;
  in_functions : string list;  (** mangled, program order *)
  in_model : Model_ir.t;
  in_python : string;
}

type plan
(** A computed invalidation set for one edit, pinned to a snapshot of
    the session: which functions to recompute and what the edited
    file's new tables will be. *)

type update = {
  up_path : string;  (** the edited file *)
  up_invalidated : inval list;  (** edited-file first, then dependents *)
  up_recomputed : int;  (** parts actually rebuilt *)
  up_failed : int;  (** recomputations that raised (file kept stale) *)
  up_cross_files : string list;  (** other files touched, sorted *)
  up_deleted : string list;  (** functions removed by the edit *)
  up_clean : bool;  (** nothing invalidated and nothing deleted *)
  up_models : (string * Model_ir.t * string) list;
      (** (path, model, python) for every file whose model was
          reassembled — each byte-identical to a cold analysis of that
          file's current text *)
}

val create : ?level:Mira_codegen.Codegen.level -> ?limits:Limits.t -> unit -> t
(** A fresh session.  [level] must match the cold analyses warm
    results are compared against (default [O1], {!Batch.run}'s
    default); [limits] bounds every per-file analysis and
    recomputation exactly as one batch source is bounded. *)

val watch : t -> path:string -> string -> (info, Diag.t) result
(** Cold whole-file analysis of [text]; the file is registered (or
    refreshed) under [path].  Never raises: failures come back as a
    structured {!Diag.t} and leave the session unchanged. *)

val forget : t -> path:string -> bool
(** Drop a file and its index entries; [false] when it was not
    watched. *)

val reanalyze : t -> path:string -> string -> (update, Diag.t) result
(** Diff [text] against the watched state of [path], re-analyze
    exactly the invalidated functions, reassemble touched models.
    [Error] on an unwatched path, a source that no longer parses or
    typechecks, or a failed recomputation — the session then keeps
    every file's last good model. *)

(** {2 The daemon's split pipeline} *)

val plan : t -> path:string -> string -> (plan, Diag.t) result
val plan_invalidated : plan -> inval list
val plan_path : plan -> string

val recompute : t -> plan -> inval -> (Metric_gen.part, Diag.t) result
(** Rebuild one invalidated function's part.  Pure and thread-safe —
    the daemon runs these concurrently on its worker pool. *)

val commit :
  t -> plan -> (inval * (Metric_gen.part, Diag.t) result) list -> update
(** Apply the plan: install new parts, reassemble every touched
    file's model, update counters.  A file whose invalidated set has
    any failed recomputation keeps its last good state (counted in
    [up_failed]). *)

(** {2 Observation} *)

val paths : t -> string list
(** Watched paths, sorted. *)

val lookup : t -> path:string -> info option
val source : t -> path:string -> string option
val counters : t -> counters
