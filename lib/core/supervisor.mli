(** [mira supervise]: the self-healing fleet supervisor.

    One supervisor process owns a fleet of [mira serve] children: it
    forks/execs each configured child, watches {e liveness} (process
    exit, reaped with [waitpid]) and {e readiness} (the [health] wire
    verb — see {!Serve.request} and [docs/PROTOCOL.md]), and restarts
    whatever crashed or wedged.  Together with the {!Client} circuit
    breakers and the {!Coordinator}'s half-open revival, this closes
    the loop: a daemon SIGKILLed mid-sweep is restarted here, answers
    its probes, and rejoins the running sweep on the client side.

    {2 Policy}

    - {b Restart backoff}: a failed child is respawned after an
      exponential backoff ([sp_backoff_base_ms] doubling per
      consecutive failed generation, capped at [sp_backoff_max_ms])
      plus a {e deterministic} jitter — a hash of
      [(sp_seed, child, attempt)], not a random draw — so a chaos run
      replays the same restart timeline for the same seed.  Reaching
      ready resets the consecutive-failure count.
    - {b Wedge detection}: a child that keeps running but does not
      reach (or return to) a live [health] state — [ready],
      [overloaded] or [draining] all count; [starting] forever and not
      answering at all both do not — within [sp_wedge_timeout_ms] is
      SIGKILLed and treated as a failure.
    - {b Storm breaker}: [sp_storm_failures] failures of the {e same}
      child within [sp_storm_window_s] seconds mean the child can not
      come up (bad flags, unbindable endpoint, missing binary); the
      supervisor drains the rest of the fleet and gives up —
      {!run} returns [Storm] and the CLI exits 3.
    - {b Shutdown}: {!stop} (wired to SIGTERM/SIGINT by the CLI) fans
      SIGTERM out to every child — each daemon then drains exactly as
      an individually-TERMed [mira serve] would — waits up to
      [sp_grace_ms], and SIGKILLs stragglers.

    The control loop is single-threaded and poll-driven; {!stop} only
    flips an atomic flag, so it is safe from a signal handler. *)

type child_spec = {
  cs_name : string;  (** label used in every log line *)
  cs_argv : string array;  (** full argv; [argv.(0)] is the executable *)
  cs_endpoint : Endpoint.t;  (** where the child's [health] verb answers *)
}

type config = {
  sp_children : child_spec list;
  sp_probe_interval_ms : int;  (** readiness poll period (and probe I/O timeout) *)
  sp_wedge_timeout_ms : int;  (** unready this long → SIGKILL + restart *)
  sp_backoff_base_ms : int;
  sp_backoff_max_ms : int;
  sp_storm_failures : int;  (** per-child failures that trip the breaker… *)
  sp_storm_window_s : float;  (** …when inside this window *)
  sp_grace_ms : int;  (** SIGTERM → SIGKILL drain deadline *)
  sp_seed : int;  (** jitter determinism *)
  sp_log : string -> unit;
}

val default_config : children:child_spec list -> config
(** 300 ms probes, 10 s wedge timeout, 200 ms backoff doubling to a
    5 s cap, breaker at 5 failures in 30 s, 5 s drain grace, seed 0,
    logging to [stderr]. *)

type stats = {
  su_spawns : int;  (** processes forked, including the initial fleet *)
  su_restarts : int;  (** respawns scheduled after a failure *)
  su_wedge_kills : int;  (** children SIGKILLed for failing readiness *)
  su_storms : int;
}

type outcome =
  | Drained  (** {!stop} was called and the fleet drained *)
  | Storm of string  (** this child tripped the restart-storm breaker *)

type t

val create : config -> t
(** Raises [Failure] on an empty child list.  Nothing is spawned until
    {!run}. *)

val stop : t -> unit
(** Begin shutdown: the control loop notices within a tick and fans
    SIGTERM out to the fleet.  Signal-handler-safe; idempotent. *)

val run : t -> outcome
(** Spawn the fleet and supervise it in the calling thread until
    {!stop} or a restart storm.  Either way the fleet is drained
    (SIGTERM, [sp_grace_ms], SIGKILL) before returning. *)

val stats : t -> stats
