open Mira_srclang
open Mira_srclang.Ast
open Mira_symexpr
open Mira_poly

exception Unsupported of string * Loc.pos
exception Non_affine of string

module S = Set.Make (String)

let mangle_func (f : func) =
  match f.fclass with None -> f.fname | Some c -> c ^ "::" ^ f.fname

type tctx = {
  prog : program;
  func : func;
  fb : Bridge.fn_bridge;
  mutable entries : Model_ir.entry list;  (* reversed *)
  mutable warnings : string list;
  (* value propagation for int scalars: name -> polynomial in symbols *)
  mutable subst : (string * Poly.t) list;
  (* source loop-variable name -> domain variable name (uniquified) *)
  mutable lvmap : (string * string) list;
  mutable used_domain_vars : string list;
}

(* warnings accumulate in reverse (prepend is O(1); appending made a
   warning-heavy function quadratic) and are reversed once at the end
   of [build_function] *)
let warn ctx fmt =
  Format.kasprintf (fun m -> ctx.warnings <- m :: ctx.warnings) fmt

(* ---------- affine conversion ---------- *)

let rec expr_to_poly ctx (e : expr) : Poly.t =
  Mira_limits.Budget.tick ();
  match e.e with
  | Int_lit n -> Poly.of_int n
  | Var x -> (
      match List.assoc_opt x ctx.lvmap with
      | Some dv -> Poly.var dv
      | None -> (
          match List.assoc_opt x ctx.subst with
          | Some p -> p
          | None ->
              if e.ety = Some Tint then Poly.var x
              else raise (Non_affine (x ^ " is not an int scalar"))))
  | Binop (Add, a, b) -> Poly.add (expr_to_poly ctx a) (expr_to_poly ctx b)
  | Binop (Sub, a, b) -> Poly.sub (expr_to_poly ctx a) (expr_to_poly ctx b)
  | Binop (Mul, a, b) -> Poly.mul (expr_to_poly ctx a) (expr_to_poly ctx b)
  | Unop (Neg, a) -> Poly.neg (expr_to_poly ctx a)
  | Cast (Tint, a) when a.ety = Some Tint -> expr_to_poly ctx a
  | Call (f, _) -> raise (Non_affine ("call to " ^ f ^ " in static expression"))
  | Method_call (_, m, _) ->
      raise (Non_affine ("method call " ^ m ^ " in static expression"))
  | Index _ -> raise (Non_affine "array element in static expression")
  | _ -> raise (Non_affine "expression is not affine")

(* ---------- condition -> signed guard terms ---------- *)

(* A condition denotes a signed union of convex pieces: the indicator
   function is a sum of +/-1 times guard conjunctions.  Affine
   comparisons, &&, ||, !, == / != and modulo tests all reduce to this
   form (Figure 4 b/c); anything else raises Non_affine. *)
let rec cond_terms ctx (c : expr) : (int * Domain.guard list) list =
  Mira_limits.Budget.tick ();
  match c.e with
  | Binop (Lt, a, b) -> [ (1, [ cmp_guard ctx b a (-1) ]) ]
  | Binop (Le, a, b) -> [ (1, [ cmp_guard ctx b a 0 ]) ]
  | Binop (Gt, a, b) -> [ (1, [ cmp_guard ctx a b (-1) ]) ]
  | Binop (Ge, a, b) -> [ (1, [ cmp_guard ctx a b 0 ]) ]
  | Binop (Eq, a, b) -> (
      match mod_guard ctx a b with
      | Some (p, m) -> [ (1, [ Domain.Mod_eq (p, m) ]) ]
      | None ->
          let g = Poly.sub (expr_to_poly ctx a) (expr_to_poly ctx b) in
          [ (1, [ Domain.Ge g; Domain.Ge (Poly.neg g) ]) ])
  | Binop (Ne, a, b) -> (
      match mod_guard ctx a b with
      | Some (p, m) -> [ (1, [ Domain.Mod_ne (p, m) ]) ]
      | None ->
          let g = Poly.sub (expr_to_poly ctx a) (expr_to_poly ctx b) in
          (* a != b is the complement of a == b *)
          [ (1, []); (-1, [ Domain.Ge g; Domain.Ge (Poly.neg g) ]) ])
  | Binop (Land, a, b) ->
      let ta = cond_terms ctx a and tb = cond_terms ctx b in
      List.concat_map
        (fun (sa, ga) -> List.map (fun (sb, gb) -> (sa * sb, ga @ gb)) tb)
        ta
  | Binop (Lor, a, b) ->
      let ta = cond_terms ctx a and tb = cond_terms ctx b in
      let tab =
        List.concat_map
          (fun (sa, ga) -> List.map (fun (sb, gb) -> (-sa * sb, ga @ gb)) tb)
          ta
      in
      ta @ tb @ tab
  | Unop (Lnot, a) ->
      (1, []) :: List.map (fun (s, g) -> (-s, g)) (cond_terms ctx a)
  | _ -> raise (Non_affine "condition is not an affine predicate")

(* b - a + slack >= 0, i.e. a < b (slack -1) or a <= b (slack 0),
   with operands swapped by callers for > / >=. *)
and cmp_guard ctx hi lo slack =
  if hi.ety <> Some Tint || lo.ety <> Some Tint then
    raise (Non_affine "comparison on non-integer operands");
  Domain.Ge
    (Poly.add
       (Poly.sub (expr_to_poly ctx hi) (expr_to_poly ctx lo))
       (Poly.of_int slack))

(* e % m == r (or != r) shapes *)
and mod_guard ctx a b =
  match (a.e, b.e) with
  | Binop (Mod, e, { e = Int_lit m; _ }), Int_lit r when m >= 2 ->
      Some (Poly.sub (expr_to_poly ctx e) (Poly.of_int r), m)
  | Int_lit r, Binop (Mod, e, { e = Int_lit m; _ }) when m >= 2 ->
      Some (Poly.sub (expr_to_poly ctx e) (Poly.of_int r), m)
  | _ -> None

(* ---------- signed-domain context ---------- *)

type sdoms = (int * Domain.t) list

let push_level (sd : sdoms) lvl : sdoms =
  List.map (fun (s, d) -> (s, Domain.add_level d lvl)) sd

let apply_cond (sd : sdoms) (terms : (int * Domain.guard list) list) : sdoms =
  List.concat_map
    (fun (s, d) ->
      List.map
        (fun (s2, gs) -> (s * s2, List.fold_left Domain.add_guard d gs))
        terms)
    sd

let negate (sd : sdoms) : sdoms = List.map (fun (s, d) -> (-s, d)) sd

let mult_of ?(parallel = false) (sd : sdoms) (scale : float) : Model_ir.mult =
  (* signed-domain lists grow multiplicatively under nested &&/|| and
     each piece pays a symbolic count: tick per piece so pathological
     conditions burn fuel instead of time *)
  { terms =
      List.map
        (fun (s, d) ->
          Mira_limits.Budget.tick ();
          (s, Count.count d))
        sd;
    scale;
    parallel;
  }

(* ---------- entries ---------- *)

let add_update ctx ~line ~label ~counts ~mult =
  if counts <> [] then
    ctx.entries <- Model_ir.Update { line; label; counts; mult } :: ctx.entries

let fresh_domain_var ctx base =
  let rec go i =
    let name = if i = 0 then base else Printf.sprintf "%s_%d" base i in
    if List.mem name ctx.used_domain_vars then go (i + 1) else name
  in
  let name = go 0 in
  ctx.used_domain_vars <- name :: ctx.used_domain_vars;
  name

(* Collect call sites appearing anywhere in a statement's expressions. *)
let collect_calls ctx (st : stmt) (mult : Model_ir.mult) =
  let handle (e : expr) =
    let callee_and_params =
      match e.e with
      | Call (name, args) when find_func ctx.prog name <> None ->
          let f = Option.get (find_func ctx.prog name) in
          Some (name, f.fparams, args)
      | Method_call (o, m, args) -> (
          match o.ety with
          | Some (Tclass c) -> (
              match find_method ctx.prog c m with
              | Some f -> Some (c ^ "::" ^ m, f.fparams, args)
              | None -> None)
          | _ -> None)
      | _ -> None
    in
    match callee_and_params with
    | None -> ()
    | Some (callee, params, args) ->
        let line = st.sspan.lo.line in
        let bindings =
          List.concat
            (List.map2
               (fun (p : param) arg ->
                 match p.pty with
                 | Tint -> (
                     match expr_to_poly ctx arg with
                     | poly -> [ (p.pname, Model_ir.Bound poly) ]
                     | exception Non_affine _ ->
                         [ (p.pname,
                            Model_ir.Unbound (Printf.sprintf "%s_%d" p.pname line)) ])
                 | _ -> [])
               params args)
        in
        ctx.entries <-
          Model_ir.Call_site { line; callee; bindings; mult } :: ctx.entries
  in
  (* iter_exprs_of_stmt already visits every nested expression *)
  iter_exprs_of_stmt handle st

(* Track scalar propagation: declarations bind, assignments kill or
   rebind. *)
let update_subst ctx (st : stmt) =
  match st.s with
  | Decl (Tint, x, Some e) -> (
      ctx.subst <- List.remove_assoc x ctx.subst;
      match expr_to_poly ctx e with
      | p -> ctx.subst <- (x, p) :: ctx.subst
      | exception Non_affine _ -> ())
  | Decl (_, x, _) | Arr_decl (_, x, _) ->
      ctx.subst <- List.remove_assoc x ctx.subst
  | Assign ({ l = Lvar x; _ }, e) -> (
      ctx.subst <- List.remove_assoc x ctx.subst;
      if (List.assoc_opt x ctx.lvmap) = None then
        match expr_to_poly ctx e with
        | p -> ctx.subst <- (x, p) :: ctx.subst
        | exception Non_affine _ -> ())
  | Op_assign (_, { l = Lvar x; _ }, _) ->
      ctx.subst <- List.remove_assoc x ctx.subst
  | _ -> ()

(* ---------- loop SCoP extraction ---------- *)

type scop_result =
  | Affine of Domain.level
  | Pseudo of Domain.level  (* synthetic counter from annotation/fallback *)

let rec ann_poly ctx (e : expr) : Poly.t =
  (* like expr_to_poly but blind to types (annotation snippets are
     untyped) *)
  match e.e with
  | Int_lit n -> Poly.of_int n
  | Var x -> (
      match List.assoc_opt x ctx.lvmap with
      | Some dv -> Poly.var dv
      | None -> (
          match List.assoc_opt x ctx.subst with
          | Some p -> p
          | None -> Poly.var x))
  | Binop (Add, a, b) -> Poly.add (ann_poly ctx a) (ann_poly ctx b)
  | Binop (Sub, a, b) -> Poly.sub (ann_poly ctx a) (ann_poly ctx b)
  | Binop (Mul, a, b) -> Poly.mul (ann_poly ctx a) (ann_poly ctx b)
  | Unop (Neg, a) -> Poly.neg (ann_poly ctx a)
  | _ -> raise (Non_affine "annotation expression not affine")

let ann_value ctx (v : string) : Poly.t =
  (* annotation values are identifiers or expressions over symbols *)
  match int_of_string_opt v with
  | Some n -> Poly.of_int n
  | None -> (
      match Parser.parse_expr v with
      | e -> (
          try ann_poly ctx e
          with Non_affine _ ->
            raise
              (Unsupported ("annotation value not affine: " ^ v, Loc.dummy.lo)))
      | exception _ ->
          raise (Unsupported ("malformed annotation value: " ^ v, Loc.dummy.lo)))

let scop_of_for ctx (st : stmt) init (cond : expr) (step : for_step) :
    scop_result =
  let line = st.sspan.lo.line in
  let ann_init =
    List.find_map (function A_init v -> Some v | _ -> None) st.sann
  in
  let ann_cond =
    List.find_map (function A_cond v -> Some v | _ -> None) st.sann
  in
  let ann_iters =
    List.find_map (function A_iters v -> Some v | _ -> None) st.sann
  in
  match ann_iters with
  | Some v ->
      let hi =
        match Parser.parse_expr v with
        | e -> (
            try ann_poly ctx e
            with Non_affine _ ->
              warn ctx "line %d: iters annotation %S not affine; using it as a parameter" line v;
              Poly.var v)
        | exception _ -> Poly.var v
      in
      let dv = fresh_domain_var ctx (Printf.sprintf "__it%d" line) in
      Pseudo (Domain.level dv ~lo:Poly.one ~hi)
  | None -> (
      let dv = fresh_domain_var ctx init.ivar in
      let step_val =
        match step.sdelta with
        | Some d when d <> 0 -> d
        | _ ->
            warn ctx "line %d: non-constant loop step; annotate with iters" line;
            1
      in
      let lo_opt =
        match ann_init with
        | Some v -> Some (ann_value ctx v)
        | None -> (
            match expr_to_poly ctx init.iexpr with
            | p -> Some p
            | exception Non_affine why ->
                warn ctx
                  "line %d: loop initial value not static (%s); annotate with lp_init"
                  line why;
                None)
      in
      (* extract the bound from `i < e`-style conditions, in either
         operand order *)
      let bound_opt =
        match ann_cond with
        | Some v ->
            (* an annotated condition variable is an inclusive upper
               bound, as in Figure 5 *)
            Some (`Le, ann_value ctx v)
        | None -> (
            let var_is_i (e : expr) =
              match e.e with Var x -> x = init.ivar | _ -> false
            in
            match cond.e with
            | Binop (Lt, a, b) when var_is_i a -> (
                match expr_to_poly ctx b with
                | p -> Some (`Lt, p)
                | exception Non_affine why ->
                    warn ctx "line %d: loop bound not static (%s); annotate with lp_cond" line why;
                    None)
            | Binop (Le, a, b) when var_is_i a -> (
                match expr_to_poly ctx b with
                | p -> Some (`Le, p)
                | exception Non_affine why ->
                    warn ctx "line %d: loop bound not static (%s); annotate with lp_cond" line why;
                    None)
            | Binop (Gt, a, b) when var_is_i b -> (
                (* e > i *)
                match expr_to_poly ctx a with
                | p -> Some (`Lt, p)
                | exception Non_affine _ -> None)
            | Binop (Ge, a, b) when var_is_i b -> (
                match expr_to_poly ctx a with
                | p -> Some (`Le, p)
                | exception Non_affine _ -> None)
            | Binop (Gt, a, b) when var_is_i a && step_val < 0 -> (
                (* decreasing loop: i > e *)
                match expr_to_poly ctx b with
                | p -> Some (`Down_gt, p)
                | exception Non_affine _ -> None)
            | Binop (Ge, a, b) when var_is_i a && step_val < 0 -> (
                match expr_to_poly ctx b with
                | p -> Some (`Down_ge, p)
                | exception Non_affine _ -> None)
            | _ ->
                warn ctx
                  "line %d: unrecognized loop condition shape; annotate with lp_cond or iters"
                  line;
                None)
      in
      match (lo_opt, bound_opt) with
      | Some lo, Some (`Lt, b) when step_val > 0 ->
          Affine (Domain.level ~step:step_val dv ~lo ~hi:(Poly.sub b Poly.one))
      | Some lo, Some (`Le, b) when step_val > 0 ->
          Affine (Domain.level ~step:step_val dv ~lo ~hi:b)
      | Some hi, Some (`Down_gt, b) when step_val = -1 ->
          Affine (Domain.level dv ~lo:(Poly.add b Poly.one) ~hi)
      | Some hi, Some (`Down_ge, b) when step_val = -1 ->
          Affine (Domain.level dv ~lo:b ~hi)
      | _ ->
          if step_val < -1 then
            warn ctx "line %d: decreasing loop with |step| > 1 is not modeled; using a parameter" line;
          let p = Printf.sprintf "iters_%d" line in
          warn ctx "line %d: loop modeled by parameter %s" line p;
          let dvp = fresh_domain_var ctx (Printf.sprintf "__it%d" line) in
          Pseudo (Domain.level dvp ~lo:Poly.one ~hi:(Poly.var p)))

(* ---------- the walk ---------- *)

let has_skip st = List.mem A_skip st.sann
let has_parallel st = List.mem A_parallel st.sann

let fraction_of st =
  List.find_map (function A_fraction f -> Some f | _ -> None) st.sann

let rec walk ctx ?(par = false) (sd : sdoms) (scale : float)
    (stmts : stmt list) =
  List.iter (walk_stmt ctx ~par sd scale) stmts

(* Claim a condition's instructions respecting short-circuit
   evaluation: in `a && b`, b's comparison only executes where a
   holds; in `a || b`, only where a fails. *)
and claim_cond ctx ~par (sd : sdoms) (scale : float) ~line (c : expr) =
  match c.e with
  | Binop (Land, a, b) ->
      claim_cond ctx ~par sd scale ~line a;
      let sd_b =
        match cond_terms ctx a with
        | terms -> apply_cond sd terms
        | exception Non_affine _ -> sd  (* approximation *)
      in
      claim_cond ctx ~par sd_b scale ~line b
  | Binop (Lor, a, b) ->
      claim_cond ctx ~par sd scale ~line a;
      let sd_b =
        match cond_terms ctx a with
        | terms -> sd @ negate (apply_cond sd terms)
        | exception Non_affine _ -> sd
      in
      claim_cond ctx ~par sd_b scale ~line b
  | Unop (Lnot, a) -> claim_cond ctx ~par sd scale ~line a
  | _ ->
      let counts = Bridge.claim_span ctx.fb c.espan in
      add_update ctx ~line ~label:"if-cond" ~counts
        ~mult:(mult_of ~parallel:par sd scale)

and walk_stmt ctx ~par (sd : sdoms) (scale : float) (st : stmt) =
  Mira_limits.Budget.tick ();
  let line = st.sspan.lo.line in
  if has_skip st then
    (* claim and drop: excluded from the model, as §III-C4 *)
    ignore (Bridge.claim_span ctx.fb st.sspan)
  else
    match st.s with
    | Decl _ | Arr_decl _ | Assign _ | Op_assign _ | Expr_stmt _ | Return _ ->
        let mult = mult_of ~parallel:par sd scale in
        let counts = Bridge.claim_span ctx.fb st.sspan in
        add_update ctx ~line ~label:"stmt" ~counts ~mult;
        collect_calls ctx st mult;
        update_subst ctx st
    | Block body -> walk ctx ~par sd scale body
    | If { cond; then_; else_ } -> (
        let visit_mult = mult_of ~parallel:par sd scale in
        claim_cond ctx ~par sd scale ~line cond;
        collect_calls ctx st visit_mult;
        match fraction_of st with
        | Some f ->
            walk ctx ~par sd (scale *. f) then_;
            walk ctx ~par sd (scale *. (1.0 -. f)) else_
        | None -> (
            match cond_terms ctx cond with
            | terms ->
                let then_sd = apply_cond sd terms in
                walk ctx ~par then_sd scale then_;
                if else_ <> [] then
                  walk ctx ~par (sd @ negate then_sd) scale else_
            | exception Non_affine why ->
                warn ctx
                  "line %d: branch condition not statically analyzable (%s); \
                   assuming always taken — annotate with fraction"
                  line why;
                walk ctx ~par sd scale then_;
                if else_ <> [] then walk ctx ~par sd 0.0 else_))
    | For { init; cond; step; body } -> (
        (* a {parallel:yes} loop distributes everything from its
           condition inward; the init remains serial *)
        let par_here = par || has_parallel st in
        let outer_mult = mult_of ~parallel:par sd scale in
        let init_counts = Bridge.claim_span ctx.fb init.ispan in
        add_update ctx ~line ~label:"loop-init" ~counts:init_counts
          ~mult:outer_mult;
        let scop = scop_of_for ctx st init cond step in
        let level =
          match scop with Affine l | Pseudo l -> l
        in
        let saved_lvmap = ctx.lvmap in
        let saved_subst = ctx.subst in
        (match scop with
        | Affine l -> ctx.lvmap <- (init.ivar, l.Domain.var) :: ctx.lvmap
        | Pseudo _ ->
            (* the source index is opaque inside the body *)
            ctx.subst <- List.remove_assoc init.ivar ctx.subst);
        let inner_sd = push_level sd level in
        (* condition: once per iteration plus the final failing test *)
        let cond_counts = Bridge.claim_span ctx.fb cond.espan in
        add_update ctx ~line ~label:"loop-cond" ~counts:cond_counts
          ~mult:(mult_of ~parallel:par_here (inner_sd @ sd) scale);
        let step_counts = Bridge.claim_span ctx.fb step.stspan in
        add_update ctx ~line ~label:"loop-step" ~counts:step_counts
          ~mult:(mult_of ~parallel:par_here inner_sd scale);
        walk ctx ~par:par_here inner_sd scale body;
        ctx.lvmap <- saved_lvmap;
        (* drop propagation facts established inside the loop: they do
           not necessarily hold after it *)
        ctx.subst <- saved_subst)
    | While (cond, body) ->
        let line = st.sspan.lo.line in
        let hi =
          match
            List.find_map (function A_iters v -> Some v | _ -> None) st.sann
          with
          | Some v -> (
              match Parser.parse_expr v with
              | e -> (
                  try ann_poly ctx e with Non_affine _ -> Poly.var v)
              | exception _ -> Poly.var v)
          | None ->
              let p = Printf.sprintf "iters_%d" line in
              warn ctx
                "line %d: while loop has no static trip count; modeled by \
                 parameter %s (annotate with iters)"
                line p;
              Poly.var p
        in
        let dv = fresh_domain_var ctx (Printf.sprintf "__wh%d" line) in
        let level = Domain.level dv ~lo:Poly.one ~hi in
        let inner_sd = push_level sd level in
        let par_here = par || has_parallel st in
        let cond_counts = Bridge.claim_span ctx.fb cond.espan in
        add_update ctx ~line ~label:"loop-cond" ~counts:cond_counts
          ~mult:(mult_of ~parallel:par_here (inner_sd @ sd) scale);
        let saved_subst = ctx.subst in
        walk ctx ~par:par_here inner_sd scale body;
        ctx.subst <- saved_subst

(* ---------- model parameters ---------- *)

let local_free_vars (entries : Model_ir.entry list) =
  let s =
    List.fold_left
      (fun s e ->
        match e with
        | Model_ir.Update { mult; _ } ->
            List.fold_left (fun s v -> S.add v s) s
              (Model_ir.free_vars_of_mult mult)
        | Model_ir.Call_site { mult; bindings; _ } ->
            let s =
              List.fold_left (fun s v -> S.add v s) s
                (Model_ir.free_vars_of_mult mult)
            in
            List.fold_left
              (fun s (_, b) ->
                match b with
                | Model_ir.Bound p ->
                    List.fold_left (fun s v -> S.add v s) s (Poly.vars p)
                | Model_ir.Unbound name -> S.add name s)
              s bindings)
      S.empty entries
  in
  s

(* What one function contributes to the model, before the
   whole-program parameter fixpoint: everything here is computable
   from the function and its analysis closure alone, which is what
   makes parts cacheable per function digest (see
   {!Mira_srclang.Fingerprint}). *)
type part = {
  fp_name : string;  (* mangled *)
  fp_source_params : string list;
  fp_arity : int;
  fp_class : string option;
  fp_entries : Model_ir.entry list;
  fp_warnings : string list;
  fp_free : string list;
      (* [local_free_vars fp_entries], precomputed: the entry lists
         carry the multiplicity expressions, which can run to hundreds
         of kilobytes for deep dependent nests, and the parameter
         fixpoint at assembly must not re-walk them on every
         incremental reanalysis *)
  fp_update_py : string option list;
      (* {!Python_emit.update_chunk} per entry, precomputed for the
         same reason: emission of a cached function must splice stored
         text, not re-render those expressions *)
}

(* Fixpoint over the call graph: a caller inherits callee model
   parameters that its call sites leave unbound. *)
let compute_params (fns : part list) : (string * string list) list =
  let params = Hashtbl.create 16 in
  List.iter
    (fun p -> Hashtbl.replace params p.fp_name (S.of_list p.fp_free))
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { fp_name = name; fp_entries = entries; _ } ->
        let mine = Hashtbl.find params name in
        let extra =
          List.fold_left
            (fun acc e ->
              match e with
              | Model_ir.Call_site { callee; bindings; _ } -> (
                  match Hashtbl.find_opt params callee with
                  | None -> acc
                  | Some callee_params ->
                      S.fold
                        (fun p acc ->
                          if List.mem_assoc p bindings then acc else S.add p acc)
                        callee_params acc)
              | Model_ir.Update _ -> acc)
            S.empty entries
        in
        let merged = S.union mine extra in
        if not (S.equal merged mine) then begin
          Hashtbl.replace params name merged;
          changed := true
        end)
      fns
  done;
  List.map
    (fun p ->
      let s = Hashtbl.find params p.fp_name in
      (* stable order: source parameters first, then the rest sorted *)
      let src = List.filter (fun pname -> S.mem pname s) p.fp_source_params in
      let rest =
        S.elements (S.diff s (S.of_list src)) |> List.sort compare
      in
      (p.fp_name, src @ rest))
    fns

(* ---------- entry point ---------- *)

let build_function prog bridge (f : func) : Model_ir.entry list * string list =
  let name = mangle_func f in
  let fb = Bridge.fn_exn bridge name in
  Bridge.reset fb;
  let ctx =
    {
      prog;
      func = f;
      fb;
      entries = [];
      warnings = [];
      subst = [];
      lvmap = [];
      used_domain_vars = [];
    }
  in
  let sd0 = [ (1, Domain.empty) ] in
  walk ctx sd0 1.0 f.fbody;
  (* prologue, epilogue and anything unclaimed: once per invocation *)
  let rest = Bridge.claim_rest fb in
  add_update ctx ~line:f.fspan.lo.line ~label:"overhead" ~counts:rest
    ~mult:Model_ir.mult_one;
  (List.rev ctx.entries, List.rev ctx.warnings)

let build_part (prog : program) (bridge : Bridge.t) (f : func) : part =
  let entries, warnings = build_function prog bridge f in
  {
    fp_name = mangle_func f;
    fp_source_params = List.map (fun (p : param) -> p.pname) f.fparams;
    fp_arity = List.length f.fparams;
    fp_class = f.fclass;
    fp_entries = entries;
    fp_warnings = warnings;
    fp_free = S.elements (local_free_vars entries);
    fp_update_py = List.map Python_emit.update_chunk entries;
  }

(* The parameter fixpoint runs at assembly time over the parts —
   cached or fresh — so an assembled model is byte-identical to a
   whole-file build by construction. *)
let assemble ~source_name (parts : part list) : Model_ir.t =
  let params = compute_params parts in
  let functions =
    List.map
      (fun p ->
        {
          Model_ir.mf_name = p.fp_name;
          mf_source_params = p.fp_source_params;
          mf_arity = p.fp_arity;
          mf_class = p.fp_class;
          mf_params = List.assoc p.fp_name params;
          mf_entries = p.fp_entries;
          mf_warnings = p.fp_warnings;
          mf_update_py = p.fp_update_py;
        })
      parts
  in
  { Model_ir.functions; source_name }

let build ~source_name (prog : program) (bridge : Bridge.t) : Model_ir.t =
  assemble ~source_name
    (List.map (build_part prog bridge) (all_functions prog))
