(** Shared-secret frame authentication for the wire protocol.

    A daemon and its clients can share a secret (a file of raw bytes,
    see {!read_secret_file}); every payload is then {e sealed} with an
    [auth=] field carrying an HMAC-SHA256 of the rest of the payload.
    The daemon requires a valid MAC on [tcp:] endpoints — an
    unauthenticated or forged frame is answered with a structured
    [auth] error and the connection is dropped before the payload ever
    reaches the request parser or the analysis pool — and accepts
    MAC-less frames on [unix:] endpoints, where filesystem permissions
    already gate access.  See "Authenticated frames" in
    [docs/PROTOCOL.md].

    The primitives are implemented here in plain OCaml (the stdlib
    only ships MD5, which is fine for framing checksums but not for
    authentication); they are pinned against the FIPS 180-4 / RFC 4231
    test vectors in the test suite. *)

val sha256 : string -> string
(** Raw 32-byte SHA-256 digest. *)

val sha256_hex : string -> string
(** Lowercase-hex SHA-256 digest (64 characters). *)

val hmac_sha256 : key:string -> string -> string
(** Raw 32-byte HMAC-SHA256; keys longer than the 64-byte block are
    hashed first, per RFC 2104. *)

val hmac_sha256_hex : key:string -> string -> string

val equal_constant_time : string -> string -> bool
(** Equality whose running time does not depend on {e where} the
    strings differ (it still depends on their lengths, which are
    public here: MACs are fixed-width). *)

(** {1 Payload sealing}

    The MAC rides inside the payload itself, as the first field line:

    {v mira/1 VERB \n auth=HEX \n ...other fields... \n\n body v}

    and covers the payload {e with the auth line absent} — so sealing
    then verifying is the identity, and every other byte of the
    payload (verb, fields, body, the [id=] pipelining tag) is
    authenticated.  The frame checksum continues to cover the sealed
    payload as ordinary bytes: integrity and authenticity compose
    without the frame layer knowing about secrets. *)

val seal : secret:string -> string -> string
(** Insert an [auth=] MAC as the first field line of a payload. *)

val verify :
  secret:string -> string -> [ `Ok of string | `Missing | `Bad ]
(** Check a payload's [auth=] line against [secret].  [`Ok stripped]
    returns the payload with the auth line removed (the bytes the MAC
    covered — hand these to the parser); [`Missing] means the first
    field line is not an [auth=] MAC; [`Bad] means one is present but
    wrong (forged, or a different secret).  Comparison is
    constant-time. *)

val read_secret_file : string -> (string, string) result
(** Load a shared secret from a file: the raw bytes with trailing
    newlines stripped (so [echo secret > file] works).  An unreadable
    or empty file is an [Error] with a human-readable reason. *)
