open Mira_symexpr
open Mira_poly
open Mira_arch

exception Not_compilable of string

type mode = Inclusive | Exclusive | Split

let who_of_mode = function
  | Inclusive -> "Model_eval.eval"
  | Exclusive -> "Model_eval.eval_exclusive"
  | Split -> "Model_eval.eval_split"

(* ------------------------------------------------------------------ *)
(* Symbolic values: the partial-evaluation IR                          *)
(* ------------------------------------------------------------------ *)

(* A value symbolic in the sweep variables only: every fixed
   parameter, arch constant and call binding has been folded.  [Spoly]
   is the workhorse — polynomial contributions merge exactly (rational
   coefficient arithmetic), which is what collapses an inlined call
   tree into one closed form per mnemonic.  The remaining constructors
   carry the non-polynomial residue (floor/ceil steps, min/max
   clipping, interval guards). *)
type s =
  | Sconst of float
  | Spoly of Poly.t
  | Sadd of s * s
  | Smul of s * s
  | Smax of s * s
  | Smin of s * s
  | Sfdiv of s * int
  | Scdiv of s * int
  | Sif of s * s * s  (* guard >= 0 ? then : else *)

let poly_size p = Poly.fold_terms (fun _ _ n -> n + 1) p 0

(* Keep symbolic polynomial merging from exploding on pathological
   products; past this we leave an Smul/Spow node for the register
   program to evaluate. *)
let max_merge_terms = 4096

let is_intf c = Float.is_integer c && Float.abs c <= 9.007199254740992e15

let spoly p =
  match Poly.to_const p with
  | Some r -> Sconst (Ratio.to_float r)
  | None -> Spoly p

let rec sadd a b =
  match (a, b) with
  | Sconst 0., x | x, Sconst 0. -> x
  | Sconst a, Sconst b -> Sconst (a +. b)
  | Spoly p, Spoly q -> spoly (Poly.add p q)
  | (Sconst c, Spoly p | Spoly p, Sconst c) when is_intf c ->
      spoly (Poly.add p (Poly.of_int (int_of_float c)))
  | Sadd (x, Sconst c1), Sconst c2 -> sadd x (Sconst (c1 +. c2))
  | _ -> Sadd (a, b)

let smul a b =
  match (a, b) with
  | Sconst 0., _ | _, Sconst 0. -> Sconst 0.
  | Sconst 1., x | x, Sconst 1. -> x
  | Sconst a, Sconst b -> Sconst (a *. b)
  | Spoly p, Spoly q when poly_size p * poly_size q <= max_merge_terms ->
      spoly (Poly.mul p q)
  | (Sconst c, Spoly p | Spoly p, Sconst c) when is_intf c ->
      spoly (Poly.scale (Ratio.of_int (int_of_float c)) p)
  | _ -> Smul (a, b)

let smax a b =
  match (a, b) with
  | Sconst x, Sconst y -> Sconst (Float.max x y)
  | Spoly p, Spoly q when Poly.equal p q -> a
  | _ -> Smax (a, b)

let smin a b =
  match (a, b) with
  | Sconst x, Sconst y -> Sconst (Float.min x y)
  | Spoly p, Spoly q when Poly.equal p q -> a
  | _ -> Smin (a, b)

(* Folds replicate the runtime op exactly (same float expression as
   Expr.eval_float), so folding never changes a result. *)
let sfdiv a n =
  if n = 1 then a
  else
    match a with
    | Sconst c ->
        Sconst (Float.of_int (int_of_float (floor (c /. float_of_int n))))
    | _ -> Sfdiv (a, n)

let scdiv a n =
  if n = 1 then a
  else
    match a with
    | Sconst c ->
        Sconst (Float.of_int (int_of_float (ceil (c /. float_of_int n))))
    | _ -> Scdiv (a, n)

let sif g a b =
  match g with Sconst c -> if c >= 0.0 then a else b | _ -> Sif (g, a, b)

let rec spow a e =
  if e <= 0 then Sconst 1.0 else if e = 1 then a else smul a (spow a (e - 1))

(* ------------------------------------------------------------------ *)
(* The symbolic walk: evaluate the model over [s] values               *)
(* ------------------------------------------------------------------ *)

type ctx = { model : Model_ir.t; mutable work : int }

let max_work = 200_000
let max_depth = 128

let bump ctx =
  ctx.work <- ctx.work + 1;
  if ctx.work > max_work then
    raise (Not_compilable "inlined model too large to compile");
  Limits.Budget.tick ()

(* Substitute every variable of [p] simultaneously by its [s] value.
   When all values are polynomials (or exactly representable integer
   constants) the result stays an exact polynomial. *)
let poly_s (lookup : string -> s) (p : Poly.t) : s =
  let vals = List.map (fun x -> (x, lookup x)) (Poly.vars p) in
  let as_poly = function
    | Spoly q -> Some q
    | Sconst c when is_intf c -> Some (Poly.of_int (int_of_float c))
    | _ -> None
  in
  let polys =
    List.fold_left
      (fun acc (x, v) ->
        match (acc, as_poly v) with
        | Some m, Some q -> Some ((x, q) :: m)
        | _ -> None)
      (Some []) vals
  in
  match polys with
  | Some env ->
      spoly
        (Poly.fold_terms
           (fun m c acc ->
             Poly.add acc
               (Poly.scale c
                  (Poly.product
                     (List.map
                        (fun (x, e) -> Poly.pow (List.assoc x env) e)
                        m))))
           p Poly.zero)
  | None ->
      let env = vals in
      Poly.fold_terms
        (fun m c acc ->
          sadd acc
            (smul
               (Sconst (Ratio.to_float c))
               (List.fold_left
                  (fun v (x, e) -> smul v (spow (List.assoc x env) e))
                  (Sconst 1.0) m)))
        p (Sconst 0.0)

let rec expr_s lookup (e : Expr.t) : s =
  match e with
  | Expr.P p -> poly_s lookup p
  | Expr.Add (a, b) -> sadd (expr_s lookup a) (expr_s lookup b)
  | Expr.Mul (a, b) -> smul (expr_s lookup a) (expr_s lookup b)
  | Expr.Max (a, b) -> smax (expr_s lookup a) (expr_s lookup b)
  | Expr.Min (a, b) -> smin (expr_s lookup a) (expr_s lookup b)
  | Expr.Fdiv (a, n) -> sfdiv (expr_s lookup a) n
  | Expr.Cdiv (a, n) -> scdiv (expr_s lookup a) n
  | Expr.If (g, a, b) ->
      sif (poly_s lookup g) (expr_s lookup a) (expr_s lookup b)

let count_s ctx lookup (c : Count.result) : s =
  match c with
  | Count.Closed e -> expr_s lookup e
  | Count.Deferred d ->
      (* Pre-expand: when every domain parameter folded to a constant,
         enumerate now; a deferred count over a live sweep variable
         has no closed form and forces the interpreted fallback. *)
      let params =
        List.map
          (fun p ->
            match lookup p with
            | Sconst c when Float.is_integer c -> (p, int_of_float c)
            | _ ->
                raise
                  (Not_compilable
                     ("deferred count depends on sweep variable " ^ p)))
          (Domain.parameters d)
      in
      bump ctx;
      Sconst (float_of_int (Enumerate.count ~params d))

let mult_s ctx lookup (m : Model_ir.mult) : s =
  let sum =
    List.fold_left
      (fun acc (sign, c) ->
        let v = count_s ctx lookup c in
        let sv =
          if sign = 1 then v else smul (Sconst (float_of_int sign)) v
        in
        sadd acc sv)
      (Sconst 0.0) m.terms
  in
  smul (Sconst m.scale) sum

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

(* Call-site binding: the interpreter computes the exact rational
   value of the binding polynomial and floors it.  With integer
   arguments, floor(p(args)) = floor((d*p)(args) / d) where d is the
   lcm of p's coefficient denominators — and d*p has integer
   coefficients, so its float evaluation is exact.  That turns the
   exact-rational floor into one integer-float Fdiv. *)
let bind_s lookup (poly : Poly.t) : s =
  let d = Poly.fold_terms (fun _ c acc -> lcm acc (Ratio.den c)) poly 1 in
  let scaled = if d = 1 then poly else Poly.scale (Ratio.of_int d) poly in
  let y = poly_s lookup scaled in
  if d = 1 then y else sfdiv y d

(* Accumulate symbolic (serial, parallel) contributions per mnemonic,
   mirroring Model_eval's recursive walk with callee models inlined by
   call multiplicity. *)
let gather ctx ~inline_calls ~fname (lookup : string -> s) :
    (string, s * s) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  let add mn (ds, dp) =
    let s0, p0 =
      Option.value ~default:(Sconst 0.0, Sconst 0.0) (Hashtbl.find_opt tbl mn)
    in
    Hashtbl.replace tbl mn (sadd s0 ds, sadd p0 dp)
  in
  let rec go depth fname lookup scale_into =
    if depth > max_depth then
      raise (Not_compilable "call depth limit exceeded (recursive model?)");
    let fm = Model_ir.find_exn ctx.model fname in
    List.iter
      (fun entry ->
        bump ctx;
        match entry with
        | Model_ir.Update { counts; mult; _ } ->
            let m = mult_s ctx lookup mult in
            List.iter
              (fun (mn, c) ->
                let v = smul m (Sconst (float_of_int c)) in
                scale_into mn mult.parallel v)
              counts
        | Model_ir.Call_site { callee; bindings; mult; _ } -> (
            if inline_calls then
              match Model_ir.find ctx.model callee with
              | None -> ()  (* extern: call cost already counted *)
              | Some cm ->
                  let cenv =
                    List.map
                      (fun p ->
                        let v =
                          match List.assoc_opt p bindings with
                          | Some (Model_ir.Bound poly) -> bind_s lookup poly
                          | Some (Model_ir.Unbound name) -> lookup name
                          | None -> lookup p
                        in
                        (p, v))
                      cm.mf_params
                  in
                  let clookup name =
                    match List.assoc_opt name cenv with
                    | Some v -> v
                    | None ->
                        raise (Model_eval.Missing_parameter (callee, name))
                  in
                  let m = mult_s ctx lookup mult in
                  let scale_sub mn sub_parallel v =
                    (* a parallel call site makes the whole callee
                       parallel *)
                    let parallel = mult.parallel || sub_parallel in
                    scale_into mn parallel (smul m v)
                  in
                  go (depth + 1) callee clookup scale_sub))
      fm.mf_entries
  in
  let top mn parallel v =
    add mn (if parallel then (Sconst 0.0, v) else (v, Sconst 0.0))
  in
  go 0 fname lookup top;
  tbl

(* ------------------------------------------------------------------ *)
(* Register programs                                                   *)
(* ------------------------------------------------------------------ *)

type op =
  | Oadd of int * int * int
  | Omul of int * int * int
  | Omax of int * int * int
  | Omin of int * int * int
  | Omadd of int * int * int * int  (* d <- a *. b +. c *)
  | Ofdiv of int * int * float  (* d <- floor (a / n) *)
  | Ocdiv of int * int * float
  | Osel of int * int * int * int  (* d <- if g >= 0 then a else b *)

type prog = {
  p_fname : string;
  p_params : string array;  (* input register slots 0 .. k-1 *)
  p_mnemonics : string array;  (* canonical sorted order *)
  p_nregs : int;
  p_init : float array;  (* initial register image (consts preloaded) *)
  p_ops : op array;
  p_out : int array;  (* result register per mnemonic *)
  p_out_par : int array;  (* Split mode: parallel result registers *)
  p_mode : mode;
  p_fp : bool array;  (* fp_mnemonics membership, in p_mnemonics order *)
  p_cost : float array;  (* per-mnemonic cycles; [||] without an arch *)
  p_arch : string option;
  p_clock_ghz : float;
}

let params p = p.p_params
let mnemonics p = p.p_mnemonics
let prog_mode p = p.p_mode
let n_ops p = Array.length p.p_ops
let n_regs p = p.p_nregs
let prog_arch p = p.p_arch

(* Structural keys for common-subexpression elimination.  Commutative
   ops are normalized (IEEE +,*,min,max are exactly commutative for
   the finite values programs compute). *)
type ckey =
  | Kadd of int * int
  | Kmul of int * int
  | Kmax of int * int
  | Kmin of int * int
  | Kmadd of int * int * int
  | Kfdiv of int * int
  | Kcdiv of int * int
  | Ksel of int * int * int

type builder = {
  mutable nreg : int;
  mutable ops_rev : op list;
  mutable nops : int;
  consts : (float, int) Hashtbl.t;
  cse : (ckey, int) Hashtbl.t;
  cval : (int, float) Hashtbl.t;  (* registers holding known constants *)
  var_reg : (string, int) Hashtbl.t;  (* sweep variable -> input slot *)
}

let max_ops = 1_000_000

let newreg b =
  let r = b.nreg in
  b.nreg <- r + 1;
  r

let creg b c =
  match Hashtbl.find_opt b.consts c with
  | Some r -> r
  | None ->
      let r = newreg b in
      Hashtbl.add b.consts c r;
      Hashtbl.add b.cval r c;
      r

let emit b key mk =
  match Hashtbl.find_opt b.cse key with
  | Some r -> r
  | None ->
      let r = newreg b in
      b.ops_rev <- mk r :: b.ops_rev;
      b.nops <- b.nops + 1;
      if b.nops > max_ops then
        raise (Not_compilable "compiled program too large");
      Hashtbl.add b.cse key r;
      r

let cv b r = Hashtbl.find_opt b.cval r
let norm2 x y = if x <= y then (x, y) else (y, x)

let fadd b x y =
  match (cv b x, cv b y) with
  | Some a, Some c -> creg b (a +. c)
  | _ ->
      let x, y = norm2 x y in
      emit b (Kadd (x, y)) (fun d -> Oadd (d, x, y))

let fmul b x y =
  match (cv b x, cv b y) with
  | Some a, Some c -> creg b (a *. c)
  | _ ->
      let x, y = norm2 x y in
      emit b (Kmul (x, y)) (fun d -> Omul (d, x, y))

let fmax b x y =
  match (cv b x, cv b y) with
  | Some a, Some c -> creg b (Float.max a c)
  | _ ->
      let x, y = norm2 x y in
      emit b (Kmax (x, y)) (fun d -> Omax (d, x, y))

let fmin b x y =
  match (cv b x, cv b y) with
  | Some a, Some c -> creg b (Float.min a c)
  | _ ->
      let x, y = norm2 x y in
      emit b (Kmin (x, y)) (fun d -> Omin (d, x, y))

let fmadd b x y z =
  (* x *. y +. z *)
  match (cv b x, cv b y, cv b z) with
  | Some a, Some c, Some e -> creg b ((a *. c) +. e)
  | _ -> (
      match (cv b x, cv b y, cv b z) with
      | _, _, Some 0. -> fmul b x y
      | Some 1., _, _ -> fadd b y z
      | _, Some 1., _ -> fadd b x z
      | _ ->
          let x, y = norm2 x y in
          emit b (Kmadd (x, y, z)) (fun d -> Omadd (d, x, y, z)))

let ffdiv b x n =
  match cv b x with
  | Some a -> creg b (Float.of_int (int_of_float (floor (a /. n))))
  | None -> emit b (Kfdiv (x, int_of_float n)) (fun d -> Ofdiv (d, x, n))

let fcdiv b x n =
  match cv b x with
  | Some a -> creg b (Float.of_int (int_of_float (ceil (a /. n))))
  | None -> emit b (Kcdiv (x, int_of_float n)) (fun d -> Ocdiv (d, x, n))

let fsel b g x y =
  match cv b g with
  | Some c -> if c >= 0.0 then x else y
  | None -> emit b (Ksel (g, x, y)) (fun d -> Osel (d, g, x, y))

(* Horner scheduling: view the polynomial as univariate in its
   highest-degree variable, recurse on the coefficients. *)
let rec creg_poly b (p : Poly.t) : int =
  match Poly.to_const p with
  | Some c -> creg b (Ratio.to_float c)
  | None ->
      let x, _ =
        List.fold_left
          (fun (bx, bd) v ->
            let d = Poly.degree_in v p in
            if d > bd then (v, d) else (bx, bd))
          ("", 0) (Poly.vars p)
      in
      let xr =
        match Hashtbl.find_opt b.var_reg x with
        | Some r -> r
        | None -> raise (Not_compilable ("unresolved variable " ^ x))
      in
      let cs = Poly.coeffs_in x p in
      let n = Array.length cs - 1 in
      let r = ref (creg_poly b cs.(n)) in
      for k = n - 1 downto 0 do
        if Poly.is_zero cs.(k) then r := fmul b !r xr
        else r := fmadd b !r xr (creg_poly b cs.(k))
      done;
      !r

let rec creg_s b (v : s) : int =
  match v with
  | Sconst c -> creg b c
  | Spoly p -> creg_poly b p
  | Sadd (x, y) -> fadd b (creg_s b x) (creg_s b y)
  | Smul (x, y) -> fmul b (creg_s b x) (creg_s b y)
  | Smax (x, y) -> fmax b (creg_s b x) (creg_s b y)
  | Smin (x, y) -> fmin b (creg_s b x) (creg_s b y)
  | Sfdiv (x, n) -> ffdiv b (creg_s b x) (float_of_int n)
  | Scdiv (x, n) -> fcdiv b (creg_s b x) (float_of_int n)
  | Sif (g, x, y) -> fsel b (creg_s b g) (creg_s b x) (creg_s b y)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile ?arch ?(mode = Inclusive) (model : Model_ir.t) ~fname ~sweep
    ~fixed : prog =
  (match Model_ir.find model fname with
  | Some _ -> ()
  | None -> invalid_arg (who_of_mode mode ^ ": no model for " ^ fname));
  let inclusive = mode <> Exclusive in
  let mns = Model_eval.mnemonic_order model ~fname ~inclusive in
  let lookup name =
    if List.mem name sweep then Spoly (Poly.var name)
    else
      match List.assoc_opt name fixed with
      | Some v -> Sconst (float_of_int v)
      | None -> raise (Model_eval.Missing_parameter (fname, name))
  in
  let ctx = { model; work = 0 } in
  let tbl = gather ctx ~inline_calls:inclusive ~fname lookup in
  let b =
    {
      nreg = List.length sweep;
      ops_rev = [];
      nops = 0;
      consts = Hashtbl.create 32;
      cse = Hashtbl.create 64;
      cval = Hashtbl.create 32;
      var_reg = Hashtbl.create 8;
    }
  in
  List.iteri (fun i v -> Hashtbl.replace b.var_reg v i) sweep;
  let value_of mn =
    Option.value ~default:(Sconst 0.0, Sconst 0.0) (Hashtbl.find_opt tbl mn)
  in
  let p_out, p_out_par =
    match mode with
    | Split ->
        let os =
          Array.map (fun mn -> creg_s b (fst (value_of mn))) mns
        in
        let op =
          Array.map (fun mn -> creg_s b (snd (value_of mn))) mns
        in
        (os, op)
    | Inclusive | Exclusive ->
        ( Array.map
            (fun mn ->
              let s, p = value_of mn in
              creg_s b (sadd s p))
            mns,
          [||] )
  in
  let init = Array.make (max b.nreg 1) 0.0 in
  Hashtbl.iter (fun c r -> init.(r) <- c) b.consts;
  {
    p_fname = fname;
    p_params = Array.of_list sweep;
    p_mnemonics = mns;
    p_nregs = max b.nreg 1;
    p_init = init;
    p_ops = Array.of_list (List.rev b.ops_rev);
    p_out;
    p_out_par;
    p_mode = mode;
    p_fp = Array.map (fun m -> List.mem m Model_eval.fp_mnemonics) mns;
    p_cost =
      (match arch with
      | None -> [||]
      | Some a -> Array.map (fun m -> Archdesc.cost_of_mnemonic a m) mns);
    p_arch = (match arch with None -> None | Some a -> Some a.Archdesc.name);
    p_clock_ghz = (match arch with None -> 0.0 | Some a -> a.Archdesc.clock_ghz);
  }

(* Structural soundness of a program — everything [run]'s unsafe
   accesses rely on.  Also the defense for disk-loaded programs. *)
let validate (p : prog) : bool =
  let n = p.p_nregs in
  let reg r = r >= 0 && r < n in
  let nm = Array.length p.p_mnemonics in
  n >= 1
  && Array.length p.p_init = n
  && Array.length p.p_params <= n
  && Array.length p.p_out = nm
  && (Array.length p.p_out_par = 0 || Array.length p.p_out_par = nm)
  && Array.length p.p_fp = nm
  && (Array.length p.p_cost = 0 || Array.length p.p_cost = nm)
  && Array.for_all reg p.p_out
  && Array.for_all reg p.p_out_par
  && Array.for_all
       (fun op ->
         match op with
         | Oadd (d, a, b) | Omul (d, a, b) | Omax (d, a, b) | Omin (d, a, b)
           ->
             reg d && reg a && reg b
         | Omadd (d, a, b, c) | Osel (d, a, b, c) ->
             reg d && reg a && reg b && reg c
         | Ofdiv (d, a, _) | Ocdiv (d, a, _) -> reg d && reg a)
       p.p_ops

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type runner = {
  r_prog : prog;
  r_regs : float array;
  r_out : float array;
  r_out_par : float array;
}

let runner p =
  {
    r_prog = p;
    r_regs = Array.copy p.p_init;
    r_out = Array.make (Array.length p.p_mnemonics) 0.0;
    r_out_par = Array.make (Array.length p.p_out_par) 0.0;
  }

(* The hot loop: no allocation, no bounds checks (the program is
   validated at construction / load), no name lookups. *)
let exec (r : runner) (args : int array) =
  let regs = r.r_regs in
  let np = Array.length r.r_prog.p_params in
  if Array.length args <> np then
    invalid_arg "Model_compile.run: wrong argument count";
  for i = 0 to np - 1 do
    Array.unsafe_set regs i (float_of_int (Array.unsafe_get args i))
  done;
  let ops = r.r_prog.p_ops in
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | Oadd (d, a, b) ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a +. Array.unsafe_get regs b)
    | Omul (d, a, b) ->
        Array.unsafe_set regs d
          (Array.unsafe_get regs a *. Array.unsafe_get regs b)
    | Omax (d, a, b) ->
        Array.unsafe_set regs d
          (Float.max (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | Omin (d, a, b) ->
        Array.unsafe_set regs d
          (Float.min (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | Omadd (d, a, b, c) ->
        Array.unsafe_set regs d
          ((Array.unsafe_get regs a *. Array.unsafe_get regs b)
          +. Array.unsafe_get regs c)
    | Ofdiv (d, a, n) ->
        Array.unsafe_set regs d
          (Float.of_int (int_of_float (floor (Array.unsafe_get regs a /. n))))
    | Ocdiv (d, a, n) ->
        Array.unsafe_set regs d
          (Float.of_int (int_of_float (ceil (Array.unsafe_get regs a /. n))))
    | Osel (d, g, a, b) ->
        Array.unsafe_set regs d
          (if Array.unsafe_get regs g >= 0.0 then Array.unsafe_get regs a
           else Array.unsafe_get regs b)
  done

let run (r : runner) (args : int array) : float array =
  exec r args;
  let regs = r.r_regs and out = r.r_out and po = r.r_prog.p_out in
  for i = 0 to Array.length po - 1 do
    Array.unsafe_set out i
      (Array.unsafe_get regs (Array.unsafe_get po i))
  done;
  out

let run_split (r : runner) (args : int array) : float array * float array =
  if r.r_prog.p_mode <> Split then
    invalid_arg "Model_compile.run_split: program not compiled with ~mode:Split";
  exec r args;
  let regs = r.r_regs in
  let out = r.r_out and po = r.r_prog.p_out in
  for i = 0 to Array.length po - 1 do
    Array.unsafe_set out i (Array.unsafe_get regs (Array.unsafe_get po i))
  done;
  let out2 = r.r_out_par and pp = r.r_prog.p_out_par in
  for i = 0 to Array.length pp - 1 do
    Array.unsafe_set out2 i (Array.unsafe_get regs (Array.unsafe_get pp i))
  done;
  (out, out2)

let args_of_env (p : prog) env =
  Array.map
    (fun name ->
      match List.assoc_opt name env with
      | Some v -> v
      | None -> raise (Model_eval.Missing_parameter (p.p_fname, name)))
    p.p_params

let eval (p : prog) ~env : (string * float) list =
  let r = runner p in
  let out = run r (args_of_env p env) in
  Array.to_list (Array.mapi (fun i m -> (m, out.(i))) p.p_mnemonics)

let eval_split (p : prog) ~env : (string * (float * float)) list =
  let r = runner p in
  let out, out2 = run_split r (args_of_env p env) in
  Array.to_list
    (Array.mapi (fun i m -> (m, (out.(i), out2.(i)))) p.p_mnemonics)

(* Derived metrics with arch constants folded at compile time. *)

let total (_ : prog) (out : float array) =
  Array.fold_left ( +. ) 0.0 out

let fpi (p : prog) (out : float array) =
  let acc = ref 0.0 in
  Array.iteri (fun i fp -> if fp then acc := !acc +. out.(i)) p.p_fp;
  !acc

let cycles (p : prog) (out : float array) =
  if Array.length p.p_cost = 0 then
    invalid_arg "Model_compile.cycles: program compiled without an arch";
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. out.(i))) p.p_cost;
  !acc

let seconds (p : prog) (out : float array) =
  cycles p out /. (p.p_clock_ghz *. 1e9)

(* ------------------------------------------------------------------ *)
(* Program cache: memory LRU + checksummed disk tier                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  hits : int;  (** served from a tier without compiling *)
  misses : int;  (** compiled fresh *)
  disk_hits : int;  (** subset of [hits] served from disk *)
  fallbacks : int;  (** requests answered "not compilable" *)
}

type centry = { ce_prog : prog; mutable ce_used : int }

type cache = {
  c_mutex : Mutex.t;
  c_mem : (string, centry) Hashtbl.t;
  c_neg : (string, string) Hashtbl.t;  (* key -> Not_compilable reason *)
  c_capacity : int;
  c_dir : string option;
  mutable c_tick : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_disk_hits : int;
  mutable c_fallbacks : int;
}

let disk_magic = "MIRAPROG1\n"
let disk_suffix = ".prog"
let recovery_entry = (disk_suffix, disk_magic)

let create_cache ?(capacity = 256) ?dir () =
  (* same startup recovery discipline as the Batch tiers: quarantine
     any prog entry a crash left torn before anything can load it *)
  (match dir with
  | Some d when Sys.file_exists d ->
      ignore (Batch.recover_dir ~entries:[ recovery_entry ] d)
  | _ -> ());
  {
    c_mutex = Mutex.create ();
    c_mem = Hashtbl.create 64;
    c_neg = Hashtbl.create 16;
    c_capacity = max 1 capacity;
    c_dir = dir;
    c_tick = 0;
    c_hits = 0;
    c_misses = 0;
    c_disk_hits = 0;
    c_fallbacks = 0;
  }

let stats c =
  Mutex.lock c.c_mutex;
  let s =
    {
      hits = c.c_hits;
      misses = c.c_misses;
      disk_hits = c.c_disk_hits;
      fallbacks = c.c_fallbacks;
    }
  in
  Mutex.unlock c.c_mutex;
  s

let cache_version = "mira-prog-1"

let mode_tag = function Inclusive -> "i" | Exclusive -> "x" | Split -> "s"

(* The content key: anything that can change the compiled program. *)
let key ~digest ?arch ~mode ~fname ~sweep ~fixed () =
  let b = Buffer.create 160 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\x00'
  in
  add cache_version;
  add digest;
  add fname;
  add (mode_tag mode);
  List.iter add sweep;
  add "|";
  List.iter (fun (k, v) -> add (Printf.sprintf "%s=%d" k v)) fixed;
  add "|";
  (match arch with
  | None -> add "-"
  | Some a ->
      add a.Archdesc.name;
      add (Stdlib.Digest.to_hex (Stdlib.Digest.string (Archdesc.to_text a))));
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents b))

(* Temporary-file suffix distinct from Batch's "*.tmp.*" pattern so
   prog writers stay recognizable; Batch's orphan sweep knows it and
   removes stale ".ptmp." files too, which is why the publish below
   holds the shared directory lock for its write+rename window. *)
let disk_path dir k = Filename.concat dir (k ^ disk_suffix)

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let store_disk dir k (p : prog) =
  try
    mkdir_p dir;
    let payload = Marshal.to_string p [] in
    let sum = Stdlib.Digest.string payload in
    let tmp =
      Filename.concat dir
        (Printf.sprintf "%s.ptmp.%d" k (Unix.getpid ()))
    in
    ignore
      (Batch.with_dir_lock ~shared:true dir (fun () ->
           Batch.durable_publish ~subject:k ~tmp ~final:(disk_path dir k)
             (disk_magic ^ sum ^ payload)))
  with _ -> ()  (* disk tier is best-effort *)

let load_disk dir k : prog option =
  try
    let s = read_file (disk_path dir k) in
    let mlen = String.length disk_magic in
    if String.length s < mlen + 16 then None
    else if String.sub s 0 mlen <> disk_magic then None
    else
      let sum = String.sub s mlen 16 in
      let payload = String.sub s (mlen + 16) (String.length s - mlen - 16) in
      if not (String.equal (Stdlib.Digest.string payload) sum) then None
      else
        let p : prog = Marshal.from_string payload 0 in
        if validate p then Some p else None
  with _ -> None

let evict_excess c =
  while Hashtbl.length c.c_mem > c.c_capacity do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, u) when u <= e.ce_used -> acc
          | _ -> Some (k, e.ce_used))
        c.c_mem None
    in
    match victim with
    | Some (k, _) -> Hashtbl.remove c.c_mem k
    | None -> ()
  done

let insert c k p =
  Mutex.lock c.c_mutex;
  c.c_tick <- c.c_tick + 1;
  Hashtbl.replace c.c_mem k { ce_prog = p; ce_used = c.c_tick };
  evict_excess c;
  Mutex.unlock c.c_mutex

(* Look up or compile.  [digest] identifies the model content (the
   daemon uses the digest of the emitted Python, which is in turn a
   function of the source digest).  Raises like [compile] for model /
   parameter errors; "not compilable" is an [Error] so callers fall
   back to the interpreter. *)
let get c ~digest ?arch ?(mode = Inclusive) ~model ~fname ~sweep ~fixed () :
    (prog, string) result =
  let k = key ~digest ?arch ~mode ~fname ~sweep ~fixed () in
  Mutex.lock c.c_mutex;
  let cached =
    match Hashtbl.find_opt c.c_mem k with
    | Some e ->
        c.c_tick <- c.c_tick + 1;
        e.ce_used <- c.c_tick;
        c.c_hits <- c.c_hits + 1;
        Some (Ok e.ce_prog)
    | None -> (
        match Hashtbl.find_opt c.c_neg k with
        | Some reason ->
            c.c_fallbacks <- c.c_fallbacks + 1;
            Some (Error reason)
        | None -> None)
  in
  Mutex.unlock c.c_mutex;
  match cached with
  | Some r -> r
  | None -> (
      let from_disk =
        match c.c_dir with None -> None | Some dir -> load_disk dir k
      in
      match from_disk with
      | Some p ->
          Mutex.lock c.c_mutex;
          c.c_hits <- c.c_hits + 1;
          c.c_disk_hits <- c.c_disk_hits + 1;
          c.c_tick <- c.c_tick + 1;
          Hashtbl.replace c.c_mem k { ce_prog = p; ce_used = c.c_tick };
          evict_excess c;
          Mutex.unlock c.c_mutex;
          Ok p
      | None -> (
          match compile ?arch ~mode model ~fname ~sweep ~fixed with
          | p ->
              insert c k p;
              Mutex.lock c.c_mutex;
              c.c_misses <- c.c_misses + 1;
              Mutex.unlock c.c_mutex;
              (match c.c_dir with
              | Some dir -> store_disk dir k p
              | None -> ());
              Ok p
          | exception Not_compilable reason ->
              Mutex.lock c.c_mutex;
              c.c_fallbacks <- c.c_fallbacks + 1;
              Hashtbl.replace c.c_neg k reason;
              Mutex.unlock c.c_mutex;
              Error reason))
