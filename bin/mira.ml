(* Command-line front-end for Mira.

   `mira analyze prog.mc --python`     generate the Python model
   `mira eval prog.mc -f foo -p n=100` evaluate a function's model
   `mira dot prog.mc --binary`         AST dumps (Figures 2 and 3)
   `mira compile/disasm`               the object-file path
   `mira coverage --corpus`            Table I
   `mira validate --app stream`        static vs dynamic comparison
   `mira corpus-dump DIR`              write the bundled corpus *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let level_conv =
  let parse = function
    | "O0" | "0" -> Ok Mira_codegen.Codegen.O0
    | "O1" | "1" -> Ok Mira_codegen.Codegen.O1
    | "O2" | "2" -> Ok Mira_codegen.Codegen.O2
    | s -> Error (`Msg (Printf.sprintf "unknown optimization level %S" s))
  in
  let print ppf = function
    | Mira_codegen.Codegen.O0 -> Format.pp_print_string ppf "O0"
    | Mira_codegen.Codegen.O1 -> Format.pp_print_string ppf "O1"
    | Mira_codegen.Codegen.O2 -> Format.pp_print_string ppf "O2"
  in
  Arg.conv (parse, print)

let level_arg =
  Arg.(
    value
    & opt level_conv Mira_codegen.Codegen.O1
    & info [ "O"; "level" ] ~docv:"LEVEL" ~doc:"Optimization level (O0, O1, O2).")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-C source file.")

let arch_conv =
  let parse = function
    | "arya" -> Ok Mira_arch.Archdesc.arya
    | "frankenstein" -> Ok Mira_arch.Archdesc.frankenstein
    | path when Sys.file_exists path -> (
        try Ok (Mira_arch.Archdesc.load path)
        with Mira_arch.Archdesc.Parse_error (m, l) ->
          Error (`Msg (Printf.sprintf "%s:%d: %s" path l m)))
    | s -> Error (`Msg (Printf.sprintf "unknown architecture %S" s))
  in
  let print ppf (a : Mira_arch.Archdesc.t) = Format.pp_print_string ppf a.name in
  Arg.conv (parse, print)

let arch_arg =
  Arg.(
    value
    & opt arch_conv Mira_arch.Archdesc.frankenstein
    & info [ "arch" ] ~docv:"ARCH"
        ~doc:"Architecture description: arya, frankenstein, or a file path.")

(* Documented exit codes (README "Robustness & limits"):
   0 success; 1 analysis failure (the input is at fault); 2 a budget,
   timeout or other resource limit was hit; 3 internal error (a bug in
   mira); 124 command-line usage error (cmdliner's convention). *)
let exit_analysis = 1
let exit_budget = 2
let exit_internal = 3

let handle_errors f =
  Printexc.record_backtrace true;
  try f () with
  | Mira_core.Model_eval.Missing_parameter (f, p) ->
      Printf.eprintf
        "error: function %s needs a value for parameter %s (use -p %s=...)\n" f
        p p;
      exit exit_analysis
  (* at the CLI a Failure/Invalid_argument usually means a bad argument
     (unknown function name, missing parameter), not a bug: report it
     plainly as an analysis failure, as before this exit-code scheme *)
  | Failure m | Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      exit exit_analysis
  | e ->
      let diag = Mira_core.Diag.of_exn e in
      Printf.eprintf "%s\n" (Mira_core.Diag.to_string diag);
      (match diag.Mira_core.Diag.d_backtrace with
      | Some bt when diag.d_kind = Mira_core.Diag.Internal_error ->
          prerr_string bt
      | _ -> ());
      exit
        (match diag.Mira_core.Diag.d_kind with
        | Mira_core.Diag.Budget_exhausted | Mira_core.Diag.Timeout ->
            exit_budget
        | Mira_core.Diag.Internal_error -> exit_internal
        | _ -> exit_analysis)

(* ---------- parse ---------- *)

let parse_cmd =
  let run file =
    handle_errors (fun () ->
        let ast = Mira_srclang.Parser.parse (read_file file) in
        match Mira_srclang.Typecheck.check ast with
        | Ok () ->
            Printf.printf "%s: %d function(s), %d class(es), %d extern(s)\n"
              file
              (List.length ast.funcs)
              (List.length ast.classes)
              (List.length ast.externs);
            List.iter
              (fun (f : Mira_srclang.Ast.func) ->
                Printf.printf "  %s %s(%d args)\n"
                  (Mira_srclang.Ast.ty_to_string f.fret)
                  (match f.fclass with
                  | Some c -> c ^ "::" ^ f.fname
                  | None -> f.fname)
                  (List.length f.fparams))
              (Mira_srclang.Ast.all_functions ast)
        | Error es ->
            List.iter
              (fun e ->
                Printf.eprintf "%s\n"
                  (Format.asprintf "%a" Mira_srclang.Typecheck.pp_error e))
              es;
            exit 1)
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and typecheck a mini-C source file.")
    Term.(const run $ file_arg)

(* ---------- dot ---------- *)

let dot_cmd =
  let run file binary level =
    handle_errors (fun () ->
        let m = Mira_core.Mira.analyze ~level ~source_name:file (read_file file) in
        print_string
          (if binary then Mira_core.Mira.binary_dot m
           else Mira_core.Mira.source_dot m))
  in
  let binary =
    Arg.(value & flag & info [ "binary" ] ~doc:"Dump the binary AST (Figure 3) instead of the source AST (Figure 2).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Graphviz rendering of the source or binary AST.")
    Term.(const run $ file_arg $ binary $ level_arg)

(* ---------- compile / disasm ---------- *)

let compile_cmd =
  let run file out level =
    handle_errors (fun () ->
        let obj = Mira_codegen.Codegen.compile_to_object ~level (read_file file) in
        write_file out obj;
        List.iter
          (fun (name, size) -> Printf.printf "%-14s %6d bytes\n" name size)
          (Mira_visa.Objfile.section_sizes obj))
  in
  let out =
    Arg.(value & opt string "a.mobj" & info [ "o" ] ~docv:"OUT" ~doc:"Output object file.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile mini-C to a virtual-ISA object file.")
    Term.(const run $ file_arg $ out $ level_arg)

let disasm_cmd =
  let run file =
    handle_errors (fun () ->
        let bast = Mira_visa.Binast.of_object (read_file file) in
        Format.printf "%a@." Mira_visa.Binast.pp bast)
  in
  let obj =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OBJ" ~doc:"Object file.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble an object file (binary AST listing).")
    Term.(const run $ obj)

(* ---------- analyze ---------- *)

let analyze_cmd =
  let run file python level =
    handle_errors (fun () ->
        let m = Mira_core.Mira.analyze ~level ~source_name:file (read_file file) in
        if python then print_string (Mira_core.Mira.python_model m)
        else begin
          Printf.printf "model for %s (%d function(s))\n" file
            (List.length m.model.functions);
          List.iter
            (fun (fm : Mira_core.Model_ir.fmodel) ->
              Printf.printf "  %s(%s)\n" fm.mf_name
                (String.concat ", " fm.mf_params))
            m.model.functions;
          match Mira_core.Mira.warnings m with
          | [] -> ()
          | ws ->
              print_endline "warnings:";
              List.iter (fun (f, w) -> Printf.printf "  [%s] %s\n" f w) ws
        end)
  in
  let python =
    Arg.(value & flag & info [ "python" ] ~doc:"Print the generated Python model (Figure 5).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Generate a performance model from mini-C source.")
    Term.(const run $ file_arg $ python $ level_arg)

(* ---------- eval ---------- *)

let params_arg =
  let kv_conv =
    let parse s =
      match String.index_opt s '=' with
      | Some i -> (
          let k = String.sub s 0 i in
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt v with
          | Some n -> Ok (k, n)
          | None -> Error (`Msg (Printf.sprintf "parameter %S is not an integer" s)))
      | None -> Error (`Msg (Printf.sprintf "expected name=value, got %S" s))
    in
    let print ppf (k, v) = Format.fprintf ppf "%s=%d" k v in
    Arg.conv (parse, print)
  in
  Arg.(value & opt_all kv_conv [] & info [ "p"; "param" ] ~docv:"NAME=VALUE" ~doc:"Model parameter binding (repeatable).")

let eval_cmd =
  let run file fname env arch level via_python =
    handle_errors (fun () ->
        let m = Mira_core.Mira.analyze ~level ~source_name:file (read_file file) in
        let counts =
          if via_python then begin
            (* evaluate the emitted Python artifact itself, through the
               bundled mini-Python interpreter *)
            let call = Mira_minipy.Minipy.run (Mira_core.Mira.python_model m) in
            let fm = Mira_core.Model_ir.find_exn m.model fname in
            let args =
              List.map
                (fun p ->
                  match List.assoc_opt p env with
                  | Some v -> Mira_minipy.Minipy.Int v
                  | None ->
                      Printf.eprintf
                        "error: parameter %s required (use -p %s=...)\n" p p;
                      exit 1)
                fm.mf_params
            in
            Mira_minipy.Minipy.dict_counts
              (call (Mira_core.Model_ir.python_name fm, args))
          end
          else Mira_core.Mira.counts m ~fname ~env
        in
        print_string (Mira_core.Report.table2 arch counts);
        Printf.printf "\nFP instructions (FP_INS): %s\n"
          (Mira_core.Report.scientific (Mira_core.Model_eval.fpi counts));
        Printf.printf "arithmetic intensity:     %.3f\n"
          (Mira_core.Report.arithmetic_intensity arch counts);
        Printf.printf "roofline estimate:        %.1f GFLOP/s attainable on %s\n"
          (Mira_core.Report.roofline_gflops arch counts)
          arch.name)
  in
  let fname =
    Arg.(required & opt (some string) None & info [ "f"; "function" ] ~docv:"FN" ~doc:"Function to evaluate (mangled name).")
  in
  let via_python =
    Arg.(value & flag & info [ "via-python" ] ~doc:"Evaluate by executing the emitted Python model in the bundled interpreter instead of the internal evaluator.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a generated model and print categorized counts (Table II).")
    Term.(const run $ file_arg $ fname $ params_arg $ arch_arg $ level_arg $ via_python)

(* ---------- predict ---------- *)

let predict_cmd =
  let run file fname env archs level =
    handle_errors (fun () ->
        let m = Mira_core.Mira.analyze ~level ~source_name:file (read_file file) in
        let counts = Mira_core.Mira.counts m ~fname ~env in
        let archs =
          if archs = [] then
            [ Mira_arch.Archdesc.arya; Mira_arch.Archdesc.frankenstein ]
          else archs
        in
        let ranked = Mira_core.Predict.compare_architectures archs counts in
        List.iteri
          (fun i (_, p) ->
            if i > 0 then print_newline ();
            print_endline (Mira_core.Predict.to_string p))
          ranked;
        match ranked with
        | (best, pb) :: (_ :: _ as rest) ->
            let worst, pw = List.nth rest (List.length rest - 1) in
            Printf.printf "\n%s is %.2fx faster than %s for this workload\n"
              best (pw.Mira_core.Predict.seconds /. pb.Mira_core.Predict.seconds) worst
        | _ -> ())
  in
  let fname =
    Arg.(required & opt (some string) None & info [ "f"; "function" ] ~docv:"FN" ~doc:"Function to predict (mangled name).")
  in
  let archs =
    Arg.(value & opt_all arch_conv [] & info [ "arch" ] ~docv:"ARCH" ~doc:"Architecture(s) to compare (repeatable; default: arya and frankenstein).")
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Predict time/throughput on one or more architectures (section III-C6).")
    Term.(const run $ file_arg $ fname $ params_arg $ archs $ level_arg)

(* ---------- profile ---------- *)

let profile_cmd =
  let run app =
    handle_errors (fun () ->
        let vm =
          match app with
          | "stream" -> Mira_corpus.Corpus.run_stream ~n:200_000 ~ntimes:10
          | "dgemm" -> Mira_corpus.Corpus.run_dgemm ~n:96
          | "minife" ->
              (Mira_corpus.Corpus.run_minife ~nx:10 ~ny:10 ~nz:10 ~max_iter:30)
                .vm
          | other ->
              Printf.eprintf "unknown app %S (stream, dgemm, minife)\n" other;
              exit 1
        in
        Printf.printf "%-22s %8s %14s %14s %12s\n" "function" "calls"
          "incl. instrs" "self instrs" "incl. FPI";
        List.iter
          (fun (name, (p : Mira_vm.Vm.profile)) ->
            let total sel =
              List.fold_left (fun a (_, c) -> a + c) 0 sel
            in
            let fpi =
              List.fold_left
                (fun a mn -> a + Mira_vm.Vm.count_of p mn)
                0 Mira_core.Model_eval.fp_mnemonics
            in
            Printf.printf "%-22s %8d %14d %14d %12d\n" name p.calls
              (total p.inclusive) (total p.exclusive) fpi)
          (Mira_vm.Vm.profiles vm))
  in
  let app_arg =
    Arg.(value & opt string "minife" & info [ "app" ] ~docv:"APP" ~doc:"Workload: stream, dgemm or minife.")
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Run a corpus workload in the VM and print a TAU-style profile.")
    Term.(const run $ app_arg)

(* ---------- coverage ---------- *)

let coverage_cmd =
  let run files use_corpus =
    handle_errors (fun () ->
        let sources =
          if use_corpus then Mira_corpus.Corpus.all
          else
            List.map (fun f -> (Filename.remove_extension (Filename.basename f), read_file f)) files
        in
        let rows =
          List.map
            (fun (name, src) ->
              Mira_core.Coverage.of_program ~name (Mira_srclang.Parser.parse src))
            sources
        in
        print_string (Mira_core.Coverage.table rows))
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILES" ~doc:"mini-C sources.")
  in
  let use_corpus =
    Arg.(value & flag & info [ "corpus" ] ~doc:"Analyze the bundled corpus (Table I).")
  in
  Cmd.v
    (Cmd.info "coverage" ~doc:"Loop-coverage survey of programs (Table I).")
    Term.(const run $ files $ use_corpus)

(* ---------- validate ---------- *)

let validate_cmd =
  let run app arch =
    handle_errors (fun () ->
        let report name fname env vm =
          let src = Option.get (Mira_corpus.Corpus.find name) in
          let m = Mira_core.Mira.analyze ~source_name:name src in
          let static = Mira_core.Mira.fpi m ~fname ~env in
          match Mira_baselines.Tau.measure ~arch vm "FP_INS" fname with
          | Error e ->
              Format.printf "%s %s: static FPI = %s; dynamic: %a@." name fname
                (Mira_core.Report.scientific static)
                Mira_baselines.Tau.pp_error e
          | Ok meas ->
              let err =
                if meas.per_call = 0.0 then 0.0
                else
                  Float.abs (meas.per_call -. static) /. meas.per_call *. 100.0
              in
              Format.printf "%-10s %-18s TAU %-12s Mira %-12s error %.2f%%@."
                name fname
                (Mira_core.Report.scientific meas.per_call)
                (Mira_core.Report.scientific static)
                err
        in
        match app with
        | "stream" ->
            let n = 500_000 and ntimes = 10 in
            let vm = Mira_corpus.Corpus.run_stream ~n ~ntimes in
            report "stream" "stream_driver" [ ("n", n); ("ntimes", ntimes) ] vm
        | "dgemm" ->
            let n = 96 in
            let vm = Mira_corpus.Corpus.run_dgemm ~n in
            report "dgemm" "dgemm" [ ("n", n) ] vm
        | "minife" ->
            let nx, ny, nz = (10, 10, 10) in
            let max_iter = 30 in
            let run = Mira_corpus.Corpus.run_minife ~nx ~ny ~nz ~max_iter in
            let nrows = run.nrows in
            report "minife" "waxpby" [ ("n", nrows) ] run.vm;
            report "minife" "matvec_std::apply" [ ("nrows", nrows) ] run.vm;
            report "minife" "cg_solve"
              [ ("nrows", nrows); ("max_iter", max_iter) ]
              run.vm
        | other ->
            Printf.eprintf "unknown app %S (stream, dgemm, minife)\n" other;
            exit 1)
  in
  let app_arg =
    Arg.(value & opt string "stream" & info [ "app" ] ~docv:"APP" ~doc:"Workload: stream, dgemm or minife.")
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Compare static predictions with dynamic measurement (Tables III-V).")
    Term.(const run $ app_arg $ arch_arg)

(* ---------- shared option set (batch / serve / client / eval-sweep) ----------

   One definition per flag: every subcommand that touches the cache,
   the limits, the fault schedule or a daemon endpoint gets identical
   names, docs and defaults from this single source. *)

module Opts = struct
  let faults_conv =
    let parse s =
      match Mira_core.Faults.parse s with
      | Ok f -> Ok f
      | Error m -> Error (`Msg m)
    in
    let print ppf f =
      Format.pp_print_string ppf (Mira_core.Faults.to_string f)
    in
    Arg.conv (parse, print)

  let faults =
    Arg.(
      value & opt (some faults_conv) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection, e.g. \
             seed=42,read=0.3,corrupt=0.2,worker=0.1,slow=0.5,slow_ms=20, \
             including the wire sites net_write and disconnect, which fire \
             identically over Unix and TCP transports (testing only; \
             decisions are scheduling-independent).")

  (* cache: --cache / --cache-dir / --cache-max-mb *)

  let use_cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Memoize analyses content-addressed on disk (reused across runs \
             and, under $(b,mira serve), kept warm across requests).")

  let cache_dir =
    Arg.(
      value & opt string ".mira-cache"
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"On-disk cache directory.")

  let cache_max_mb =
    Arg.(
      value & opt (some int) None
      & info [ "cache-max-mb" ] ~docv:"MB"
          ~doc:
            "Evict least-recently-used disk-cache entries after the run (on \
             shutdown, for a daemon) until the directory is under this size \
             (implies $(b,--cache)).")

  (* a size cap only makes sense with a cache, so asking for one turns
     the cache on rather than being silently ignored *)
  let cache_term =
    let make use dir mb =
      let use = use || mb <> None in
      ( (if use then Some (Mira_core.Batch.create_cache ~dir ()) else None),
        mb )
    in
    Term.(const make $ use_cache $ cache_dir $ cache_max_mb)

  (* evict after the run so this run's own entries participate in the
     LRU ordering *)
  let gc_cache = function
    | Some c, Some mb ->
        ignore (Mira_core.Batch.gc_disk ~max_bytes:(mb * 1024 * 1024) c)
    | _ -> ()

  (* limits: --fuel / --timeout-ms / --max-depth / --retries *)

  let fuel =
    Arg.(
      value & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Per-request work budget (tokens, statements, domain pieces); \
             exhaustion becomes a diagnostic for that source (exit code 2). \
             A daemon treats its own value as a ceiling: requests may \
             tighten it but never exceed it.")

  let timeout_ms =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wall-clock deadline; an overrun becomes a timeout \
             diagnostic for that source (exit code 2).  A daemon treats its \
             own value as a ceiling: requests may tighten it but never \
             exceed it.")

  let depth =
    Arg.(
      value & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Per-request recursion-depth cap (default 10000).")

  let retries =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Disk-cache I/O retry attempts after the first, with bounded \
             exponential backoff (default 2).")

  let limits_term =
    let make fuel timeout_ms depth retries =
      {
        Mira_core.Limits.fuel;
        depth = Option.value depth ~default:Mira_core.Limits.default.depth;
        timeout_ms;
        retries =
          Option.value retries ~default:Mira_core.Limits.default.retries;
      }
    in
    Term.(const make $ fuel $ timeout_ms $ depth $ retries)

  (* the same flags, as a client-side budget request (clamped by the
     daemon's ceiling; --retries is a disk-cache knob, not a wire one) *)
  let budget_term =
    let make fuel timeout_ms depth =
      { Mira_core.Serve.rq_fuel = fuel; rq_timeout_ms = timeout_ms;
        rq_depth = depth }
    in
    Term.(const make $ fuel $ timeout_ms $ depth)

  (* endpoints: --endpoint (with --socket as unix shorthand) *)

  let endpoint_conv =
    let parse s =
      match Mira_core.Endpoint.parse s with
      | Ok e -> Ok e
      | Error m -> Error (`Msg m)
    in
    let print ppf e =
      Format.pp_print_string ppf (Mira_core.Endpoint.to_string e)
    in
    Arg.conv (parse, print)

  let endpoints_term =
    let eps =
      Arg.(
        value
        & opt_all endpoint_conv []
        & info [ "e"; "endpoint" ] ~docv:"ENDPOINT"
            ~doc:
              "Daemon endpoint, $(i,unix:PATH) or $(i,tcp:HOST:PORT) \
               (repeatable; a bare path means $(i,unix:); port 0 asks the \
               OS for an ephemeral port when serving).")
    in
    let socket =
      Arg.(
        value
        & opt (some string) None
        & info [ "socket" ] ~docv:"PATH"
            ~doc:
              "Unix-domain socket path — shorthand for $(b,--endpoint) \
               $(i,unix:PATH).")
    in
    let make eps socket =
      match
        (match socket with
        | Some s -> Mira_core.Endpoint.Unix_sock s :: eps
        | None -> eps)
      with
      | [] -> [ Mira_core.Endpoint.Unix_sock "mira.sock" ]
      | eps -> eps
    in
    Term.(const make $ eps $ socket)

  let io_timeout_ms =
    Arg.(
      value & opt int 30_000
      & info [ "io-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Client-side socket timeout covering connect, every read/write \
             and the per-request response deadline: a wedged or stalled \
             daemon becomes a clean error exit instead of a hung client.  \
             0 disables.")

  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"K"
          ~doc:
            "Requests kept in flight per daemon connection: tagged with \
             $(i,id=), answered possibly out of order, and re-associated by \
             the tag.")

  let no_fsync =
    Arg.(
      value & flag
      & info [ "no-fsync" ]
          ~doc:
            "Skip the fsync-before-rename durability protocol on cache \
             publishes (benchmarking escape hatch): a machine crash can \
             then leave a published cache name over torn bytes, detected \
             and quarantined at next startup rather than prevented.")

  let apply_fsync no_fsync =
    if no_fsync then Mira_core.Batch.set_fsync false

  let auth_secret_file =
    Arg.(
      value & opt (some file) None
      & info [ "auth-secret-file" ] ~docv:"FILE"
          ~doc:
            "Shared secret for frame authentication (file contents, trailing \
             newline stripped).  Every frame sent is sealed with an \
             $(i,auth=) HMAC-SHA256 over the payload and every frame \
             received must verify.  A daemon with a secret $(b,requires) \
             authentication on $(i,tcp:) endpoints (optional on $(i,unix:), \
             but verified when present); see docs/PROTOCOL.md.")

  let load_auth_secret = function
    | None -> None
    | Some path -> (
        match Mira_core.Auth.read_secret_file path with
        | Ok s -> Some s
        | Error m ->
            Printf.eprintf "error: --auth-secret-file: %s\n" m;
            exit 124)
end

(* ---------- batch ---------- *)

(* shared output-format selector: the JSON schema is pinned in
   docs/PROTOCOL.md ("JSON output") and by test_json.ml *)
let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(i,text) (human-readable, the default) or \
           $(i,json) (the stable machine-readable schema of \
           docs/PROTOCOL.md).")

let batch_cmd =
  let run paths jobs cache no_incremental python level limits faults shard
      no_fsync format =
    handle_errors (fun () ->
        Opts.apply_fsync no_fsync;
        let expanded =
          try Mira_core.Batch.expand_paths paths
          with Sys_error m ->
            Printf.eprintf "error: %s\n" m;
            exit exit_analysis
        in
        if expanded = [] then begin
          Printf.eprintf "error: no .mc sources found\n";
          exit exit_analysis
        end;
        let selected =
          match shard with
          | None -> expanded
          | Some (index, count) ->
              List.filter
                (Mira_core.Batch.shard_member ~index ~count)
                expanded
        in
        (if selected = [] then
           (* an empty shard is a successful no-op: its siblings hold
              every path, so k sharded runs still cover the whole set *)
           match shard with
           | Some (index, count) ->
               Printf.printf
                 "batch: shard %d/%d holds none of the %d source(s)\n" index
                 count (List.length expanded);
               exit 0
           | None -> assert false);
        let sources =
          try List.map Mira_core.Batch.source_of_file selected
          with Sys_error m ->
            Printf.eprintf "error: %s\n" m;
            exit exit_analysis
        in
        let results, stats =
          Mira_core.Batch.run ~jobs
            ?cache:(fst cache)
            ~incremental:(not no_incremental) ~level ~limits ?faults sources
        in
        Opts.gc_cache cache;
        (match format with
        | `Json ->
            print_endline
              (Mira_core.Json.to_string (Mira_core.Json.of_batch results stats))
        | `Text ->
            if python then
              List.iter
                (function
                  | Ok (a : Mira_core.Batch.analysis) -> print_string a.a_python
                  | Error (name, diag) ->
                      Printf.eprintf "%s: FAILED: %s\n" name
                        (Mira_core.Diag.to_string diag))
                results
            else print_string (Mira_core.Batch.report results stats));
        (* budget/timeout overruns outrank plain analysis failures so a
           driver can tell "your corpus is slow" from "your corpus is
           broken" without parsing the report *)
        if stats.st_budget > 0 then exit exit_budget
        else if stats.st_failed > 0 then exit exit_analysis)
  in
  let paths =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PATHS"
          ~doc:"mini-C source files and/or directories of .mc files.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains to analyze with.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Disable function-granular incremental reanalysis (with a cache, \
             a file-tier miss then always re-analyzes the whole file instead \
             of only the edited functions).")
  in
  let python =
    Arg.(
      value & flag
      & info [ "python" ]
          ~doc:"Print every generated Python model instead of the batch report.")
  in
  let shard =
    let shard_conv =
      let parse s =
        let bad () =
          Error
            (`Msg
               (Printf.sprintf "bad shard %S (expected I/K with 1 <= I <= K)"
                  s))
        in
        match String.index_opt s '/' with
        | None -> bad ()
        | Some i -> (
            match
              ( int_of_string_opt (String.sub s 0 i),
                int_of_string_opt
                  (String.sub s (i + 1) (String.length s - i - 1)) )
            with
            | Some index, Some count
              when count >= 1 && index >= 1 && index <= count ->
                Ok (index, count)
            | _ -> bad ())
      in
      let print ppf (i, k) = Format.fprintf ppf "%d/%d" i k in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some shard_conv) None
      & info [ "shard" ] ~docv:"I/K"
          ~doc:
            "Process only shard $(i,I) of $(i,K): membership is a stable \
             hash of each expanded source path, so $(i,K) processes run \
             with $(b,--shard) $(i,1/K) .. $(i,K/K) over the same inputs \
             partition the set exactly — every source analyzed by one \
             shard, none by two.  Point the shards at per-shard \
             $(b,--cache-dir)s and union them afterwards with $(b,mira \
             cache merge).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze many sources concurrently with memoization (deterministic: \
          output is byte-identical for any --jobs and cache state).")
    Term.(
      const run $ paths $ jobs $ Opts.cache_term $ no_incremental $ python
      $ level_arg $ Opts.limits_term $ Opts.faults $ shard $ Opts.no_fsync
      $ format_arg)

(* ---------- cache ---------- *)

let cache_merge_cmd =
  let run dst srcs no_fsync =
    handle_errors (fun () ->
        Opts.apply_fsync no_fsync;
        let st = Mira_core.Batch.merge_dirs ~dst srcs in
        Printf.printf
          "cache merge: %d entries scanned, %d copied, %d already present, \
           %d corrupt skipped, %d failed\n"
          st.Mira_core.Batch.mg_scanned st.mg_copied st.mg_present
          st.mg_corrupt st.mg_failed;
        if st.mg_failed > 0 then exit exit_internal)
  in
  let dst =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DST"
          ~doc:"Destination cache directory (created if missing).")
  in
  let srcs =
    Arg.(
      non_empty & pos_right 0 dir []
      & info [] ~docv:"SRC" ~doc:"Source cache directories to union in.")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Union source cache directories into DST.  Entries are \
          content-addressed, so a filename already present in DST is the \
          same payload and is skipped; everything copied is \
          checksum-verified first and published atomically under the \
          shared cache lock, safe against a daemon serving from DST \
          concurrently.  A batch over the union of sharded inputs then \
          runs entirely warm against DST.  Exit 3 only on I/O failure; \
          corrupt source entries are counted and skipped.")
    Term.(const run $ dst $ srcs $ Opts.no_fsync)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Operate on on-disk analysis caches (see $(b,mira batch --cache)).")
    [ cache_merge_cmd ]

(* ---------- serve / client / eval-sweep ---------- *)

let serve_cmd =
  let run endpoints max_inflight max_pipeline max_frame_bytes idle_timeout_ms
      drain_ms workers cache no_incremental level limits faults
      auth_secret_file no_fsync =
    handle_errors (fun () ->
        Opts.apply_fsync no_fsync;
        let cfg =
          {
            (Mira_core.Serve.default_config_endpoints ~endpoints) with
            cfg_max_inflight = max 1 max_inflight;
            cfg_max_pipeline = max 1 max_pipeline;
            cfg_max_frame_bytes = max 1024 max_frame_bytes;
            cfg_idle_timeout_ms = idle_timeout_ms;
            cfg_drain_ms = drain_ms;
            cfg_workers = max 1 workers;
            cfg_level = level;
            cfg_limits = limits;
            cfg_cache = fst cache;
            cfg_incremental = not no_incremental;
            cfg_faults = faults;
            cfg_auth_secret = Opts.load_auth_secret auth_secret_file;
          }
        in
        let server = Mira_core.Serve.create cfg in
        (* graceful shutdown: drain in-flight requests, then exit 0 *)
        List.iter
          (fun s ->
            Sys.set_signal s
              (Sys.Signal_handle (fun _ -> Mira_core.Serve.stop server)))
          [ Sys.sigterm; Sys.sigint ];
        (* the ready lines are the startup handshake scripts wait for; a
           tcp:HOST:0 endpoint is printed with its OS-assigned port, which
           is the only place that port is advertised *)
        List.iter
          (fun ep ->
            Printf.printf "mira serve: listening on %s\n%!"
              (Mira_core.Endpoint.to_string ep))
          (Mira_core.Serve.bound_endpoints server);
        let stats = Mira_core.Serve.serve server in
        Opts.gc_cache cache;
        Printf.printf
          "mira serve: drained; %d served, %d failed, %d shed, %d protocol \
           error(s), in-flight high-water %d\n"
          stats.Mira_core.Serve.sv_served stats.sv_failed stats.sv_shed
          stats.sv_protocol_errors stats.sv_inflight_hwm)
  in
  let max_inflight =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Connections served concurrently; beyond this, new connections \
             are shed with an $(i,overloaded) frame (bounded memory under \
             any offered load).")
  in
  let max_pipeline =
    Arg.(
      value & opt int 8
      & info [ "max-pipeline" ] ~docv:"N"
          ~doc:
            "Tagged ($(i,id=)) requests dispatched concurrently per \
             connection; beyond this the connection's reader stops \
             consuming, backpressuring the socket.")
  in
  let max_frame_bytes =
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "max-frame-bytes" ] ~docv:"BYTES"
          ~doc:"Largest accepted request payload; bigger frames are rejected.")
  in
  let idle_timeout_ms =
    Arg.(
      value & opt int 30_000
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-read/write socket timeout; stalled (slow-loris) clients are \
             disconnected.  0 disables.")
  in
  let drain_ms =
    Arg.(
      value & opt int 2_000
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:
            "Hard deadline for the graceful drain on SIGTERM/SIGINT/shutdown.")
  in
  let workers =
    Arg.(
      value & opt int 8
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Analysis worker threads.  Analyze/eval requests run on this \
             fixed pool; ping/stats are answered by the event loop itself, \
             and connections cost a descriptor, not a thread.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:"Disable function-granular incremental reanalysis.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon: a long-lived process serving \
          analyze/eval/stats/ping over Unix-domain and/or TCP endpoints \
          (repeat $(b,--endpoint) to listen on several), with pipelined \
          requests, the batch cache kept warm, per-request budgets, bounded \
          admission, and graceful drain on SIGTERM.")
    Term.(
      const run $ Opts.endpoints_term $ max_inflight $ max_pipeline
      $ max_frame_bytes $ idle_timeout_ms $ drain_ms $ workers
      $ Opts.cache_term $ no_incremental $ level_arg $ Opts.limits_term
      $ Opts.faults $ Opts.auth_secret_file $ Opts.no_fsync)

(* shared response rendering for the pooled clients: print one response
   (body to stdout, diagnostics to stderr) and return its exit code *)
let render_response = function
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      exit_internal
  | Ok resp -> (
      match resp.Mira_core.Serve.rs_status with
      | "ok" ->
          List.iter
            (fun (k, v) ->
              if k = "warning" then Printf.eprintf "warning: %s\n" v)
            resp.rs_fields;
          (if resp.rs_body <> "" then begin
             print_string resp.rs_body;
             (* eval carries its headline numbers as fields; stats carries
                the compiled-evaluator counters there too (the body's key
                list is pinned wire shape, see docs/PROTOCOL.md) *)
             List.iter
               (fun k ->
                 match Mira_core.Serve.field resp k with
                 | Some v -> Printf.printf "%s=%s\n" k v
                 | None -> ())
               [ "fpi"; "total"; "compile-hits"; "compile-misses";
                 "compile-fallbacks" ]
           end
           else
             match Mira_core.Serve.field resp "pong" with
             | Some _ -> print_endline "pong"
             | None -> (
                 match Mira_core.Serve.field resp "state" with
                 | Some _ ->
                     (* a health response: its payload is all fields *)
                     List.iter
                       (fun k ->
                         match Mira_core.Serve.field resp k with
                         | Some v -> Printf.printf "%s=%s\n" k v
                         | None -> ())
                       [ "state"; "inflight"; "max-inflight"; "workers";
                         "served"; "failed" ]
                 | None -> print_endline "ok"));
          0
      | "overloaded" ->
          Printf.eprintf "error: server overloaded, retry later\n";
          exit_budget
      | "error" ->
          let msg =
            Option.value
              (Mira_core.Serve.field resp "message")
              ~default:"unknown error"
          in
          Printf.eprintf "error: %s\n" msg;
          (match Mira_core.Serve.field resp "code" with
          | Some ("budget" | "timeout") -> exit_budget
          | Some "internal" -> exit_internal
          | _ -> exit_analysis)
      | other ->
          Printf.eprintf "error: unknown response status %S\n" other;
          exit_internal)

(* the exit code a response maps to, shared by text and JSON modes *)
let response_code = function
  | Error _ -> exit_internal
  | Ok resp -> (
      match resp.Mira_core.Serve.rs_status with
      | "ok" -> 0
      | "overloaded" -> exit_budget
      | "error" -> (
          match Mira_core.Serve.field resp "code" with
          | Some ("budget" | "timeout") -> exit_budget
          | Some "internal" -> exit_internal
          | _ -> exit_analysis)
      | _ -> exit_internal)

(* JSON rendering of one wire response: status, fields in wire order
   (keys repeat), and the body — spliced verbatim when it is itself
   JSON (watch/reanalyze frames), escaped as a string otherwise *)
let response_json r =
  let open Mira_core.Json in
  match r with
  | Error m -> Obj [ ("status", Str "transport-error"); ("message", Str m) ]
  | Ok resp ->
      let body =
        if resp.Mira_core.Serve.rs_body = "" then Null
        else if resp.rs_body.[0] = '{' || resp.rs_body.[0] = '[' then
          Raw resp.rs_body
        else Str resp.rs_body
      in
      Obj
        [
          ("status", Str resp.rs_status);
          ( "fields",
            Arr
              (List.map
                 (fun (k, v) -> Obj [ ("key", Str k); ("value", Str v) ])
                 resp.rs_fields) );
          ("body", body);
        ]

let render_response_json r =
  print_endline (Mira_core.Json.to_string (response_json r));
  response_code r

let client_cmd =
  let run endpoints verb file fname params budget io_timeout_ms pipeline
      auth_secret_file format =
    handle_errors (fun () ->
        let need_file () =
          match file with
          | Some f -> f
          | None ->
              Printf.eprintf "error: %s needs a FILE argument\n" verb;
              exit 124
        in
        let render =
          match format with
          | `Json -> render_response_json
          | `Text -> render_response
        in
        let req =
          match verb with
          | "ping" -> Mira_core.Serve.Ping
          | "stats" -> Mira_core.Serve.Stats
          | "health" -> Mira_core.Serve.Health
          | "shutdown" -> Mira_core.Serve.Shutdown
          | "analyze" ->
              let f = need_file () in
              Mira_core.Serve.Analyze
                {
                  an_name = Filename.basename f;
                  an_source = read_file f;
                  an_budget = budget;
                }
          | "eval" -> (
              let f = need_file () in
              match fname with
              | None ->
                  Printf.eprintf "error: eval needs -f FUNCTION\n";
                  exit 124
              | Some fn ->
                  Mira_core.Serve.Eval
                    {
                      ev_name = Filename.basename f;
                      ev_source = read_file f;
                      ev_function = fn;
                      ev_params = params;
                      ev_budget = budget;
                    })
          (* the session verbs ship the text when the file is readable
             client-side and fall back to a daemon-side read (empty
             body) otherwise — the shared-filesystem deployment *)
          | "watch" ->
              let f = need_file () in
              Mira_core.Serve.Watch
                {
                  wt_path = f;
                  wt_source = (if Sys.file_exists f then read_file f else "");
                }
          | "reanalyze" ->
              let f = need_file () in
              Mira_core.Serve.Reanalyze
                {
                  rz_path = f;
                  rz_source = (if Sys.file_exists f then read_file f else "");
                }
          | "forget" -> Mira_core.Serve.Forget { fg_path = need_file () }
          | other ->
              Printf.eprintf
                "error: unknown request %S (ping, stats, health, analyze, \
                 eval, watch, reanalyze, forget, shutdown)\n"
                other;
              exit 124
        in
        match req with
        | Mira_core.Serve.Reanalyze _ ->
            (* reanalyze streams one frame per invalidated function
               plus a terminal frame: drive one direct connection with
               the frame loop instead of the one-response pool *)
            let ep =
              match endpoints with
              | [ ep ] -> ep
              | _ ->
                  Printf.eprintf
                    "error: reanalyze streams over a single connection; give \
                     exactly one --endpoint\n";
                  exit 124
            in
            let secret = Opts.load_auth_secret auth_secret_file in
            let fd = Mira_core.Endpoint.connect ~io_timeout_ms ep in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let payload =
                  Mira_core.Serve.encode_request ~id:"reanalyze-1" req
                in
                let payload =
                  match secret with
                  | Some secret -> Mira_core.Auth.seal ~secret payload
                  | None -> payload
                in
                Mira_core.Serve.write_frame fd payload;
                let rec drain worst =
                  match Mira_core.Serve.read_frame fd with
                  | Error e ->
                      Printf.eprintf "error: %s\n"
                        (Mira_core.Serve.frame_error_to_string e);
                      exit exit_internal
                  | Ok payload -> (
                      let payload =
                        match secret with
                        | None -> payload
                        | Some secret -> (
                            match
                              Mira_core.Auth.verify ~secret payload
                            with
                            | `Ok stripped -> stripped
                            | `Missing | `Bad ->
                                Printf.eprintf
                                  "error: unauthenticated response frame\n";
                                exit exit_internal)
                      in
                      match Mira_core.Serve.parse_response payload with
                      | Error m ->
                          Printf.eprintf "error: bad response frame: %s\n" m;
                          exit exit_internal
                      | Ok resp ->
                          let worst = max worst (render (Ok resp)) in
                          if
                            Mira_core.Serve.field resp "reanalyze-done"
                            = Some "1"
                            || resp.rs_status <> "ok"
                               && Mira_core.Serve.field resp "binding" = None
                          then worst
                          else drain worst)
                in
                let worst = drain 0 in
                if worst <> 0 then exit worst)
        | req ->
            let pipeline = max 1 pipeline in
            let results =
              Mira_core.Client.with_pool ~io_timeout_ms ~max_inflight:pipeline
                ?auth_secret:(Opts.load_auth_secret auth_secret_file) endpoints
                (fun pool ->
                  if pipeline = 1 then [ Mira_core.Client.request pool req ]
                  else
                    Mira_core.Client.sweep pool
                      (List.init pipeline (fun _ -> req)))
            in
            let worst =
              List.fold_left (fun acc r -> max acc (render r)) 0 results
            in
            if worst <> 0 then exit worst)
  in
  let verb =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:
            "One of ping, stats, health, analyze, eval, watch, reanalyze, \
             forget, shutdown.")
  in
  let file =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "mini-C source (analyze, eval, watch, reanalyze) or watched \
             path (forget).")
  in
  let fname =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "function" ] ~docv:"FN"
          ~doc:"Function to evaluate (mangled name).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send a request to running $(b,mira serve) daemon(s) through the \
          connection pool (repeat $(b,--endpoint) to spread load; \
          $(b,--pipeline) $(i,K) sends the request K times down one \
          connection and prints the answers in request order).")
    Term.(
      const run $ Opts.endpoints_term $ verb $ file $ fname $ params_arg
      $ Opts.budget_term $ Opts.io_timeout_ms $ Opts.pipeline
      $ Opts.auth_secret_file $ format_arg)

(* ---------- watch ---------- *)

let watch_cmd =
  let run paths level limits poll_ms once check format =
    handle_errors (fun () ->
        let json = format = `Json in
        let session = Mira_core.Session.create ~level ~limits () in
        let worst = ref 0 in
        let emit_json obj =
          print_endline (Mira_core.Json.to_string obj);
          flush stdout
        in
        let report_diag path (d : Mira_core.Diag.t) =
          worst := max !worst exit_analysis;
          if json then
            emit_json
              (Mira_core.Json.Obj
                 [
                   ("event", Mira_core.Json.Str "error");
                   ("path", Mira_core.Json.Str path);
                   ("diag", Mira_core.Json.of_diag d);
                 ])
          else
            Printf.eprintf "%s\n"
              (Mira_core.Diag.to_editor_string ~file:path d)
        in
        (* remembered text per path: an mtime tick only becomes a
           reanalyze when the bytes really moved, so editors that
           touch without writing stay quiet *)
        let texts : (string, string) Hashtbl.t = Hashtbl.create 16 in
        let mtimes : (string, float) Hashtbl.t = Hashtbl.create 16 in
        let mtime p = try (Unix.stat p).Unix.st_mtime with Unix.Unix_error _ -> 0.0 in
        let do_watch path =
          let text = read_file path in
          Hashtbl.replace texts path text;
          Hashtbl.replace mtimes path (mtime path);
          match Mira_core.Session.watch session ~path text with
          | Error d -> report_diag path d
          | Ok info ->
              if json then
                emit_json
                  (Mira_core.Json.Obj
                     [
                       ("event", Mira_core.Json.Str "watch");
                       ("path", Mira_core.Json.Str path);
                       ( "functions",
                         Mira_core.Json.Int
                           (List.length info.Mira_core.Session.in_functions) );
                     ])
              else
                Printf.printf "watch %s: %d function(s)\n%!" path
                  (List.length info.Mira_core.Session.in_functions)
        in
        (* --check: every touched model must match a cold whole-file
           analysis of the file's current text, byte for byte *)
        let check_models (upd : Mira_core.Session.update) =
          List.iter
            (fun (path, _, py) ->
              let text =
                Option.value
                  (Mira_core.Session.source session ~path)
                  ~default:""
              in
              let cold, _ =
                Mira_core.Batch.run ~jobs:1 ~incremental:false ~level ~limits
                  [ { Mira_core.Batch.src_name = path; src_text = text } ]
              in
              match cold with
              | [ Ok a ] when a.Mira_core.Batch.a_python = py -> ()
              | _ ->
                  Printf.eprintf
                    "error: %s: warm model diverges from cold analysis\n" path;
                  exit exit_internal)
            upd.Mira_core.Session.up_models
        in
        let do_reanalyze path =
          let text = read_file path in
          Hashtbl.replace texts path text;
          Hashtbl.replace mtimes path (mtime path);
          match Mira_core.Session.reanalyze session ~path text with
          | Error d -> report_diag path d
          | Ok upd ->
              if check then check_models upd;
              if json then
                emit_json
                  (Mira_core.Json.Obj
                     [
                       ("event", Mira_core.Json.Str "reanalyze");
                       ("path", Mira_core.Json.Str path);
                       ( "invalidated",
                         Mira_core.Json.Arr
                           (List.map
                              (fun (iv : Mira_core.Session.inval) ->
                                Mira_core.Json.Obj
                                  [
                                    ("file", Mira_core.Json.Str iv.iv_file);
                                    ( "function",
                                      Mira_core.Json.Str iv.iv_func );
                                    ( "reason",
                                      Mira_core.Json.Str
                                        (Mira_core.Session.reason_to_string
                                           iv.iv_reason) );
                                  ])
                              upd.Mira_core.Session.up_invalidated) );
                       ( "recomputed",
                         Mira_core.Json.Int upd.Mira_core.Session.up_recomputed
                       );
                       ( "cross_files",
                         Mira_core.Json.Arr
                           (List.map
                              (fun f -> Mira_core.Json.Str f)
                              upd.Mira_core.Session.up_cross_files) );
                       ( "deleted",
                         Mira_core.Json.Arr
                           (List.map
                              (fun f -> Mira_core.Json.Str f)
                              upd.Mira_core.Session.up_deleted) );
                       ( "clean",
                         Mira_core.Json.Bool upd.Mira_core.Session.up_clean );
                     ])
              else begin
                Printf.printf
                  "reanalyze %s: invalidated=%d recomputed=%d cross-files=%d \
                   deleted=%d clean=%d\n"
                  path
                  (List.length upd.Mira_core.Session.up_invalidated)
                  upd.Mira_core.Session.up_recomputed
                  (List.length upd.Mira_core.Session.up_cross_files)
                  (List.length upd.Mira_core.Session.up_deleted)
                  (if upd.Mira_core.Session.up_clean then 1 else 0);
                List.iter
                  (fun (iv : Mira_core.Session.inval) ->
                    Printf.printf "  %s %s (%s)\n" iv.iv_file iv.iv_func
                      (Mira_core.Session.reason_to_string iv.iv_reason))
                  upd.Mira_core.Session.up_invalidated;
                flush stdout
              end
        in
        List.iter do_watch paths;
        (* one polling pass: reanalyze every watched file whose bytes
           changed since last look *)
        let poll_once () =
          List.iter
            (fun path ->
              if Sys.file_exists path then
                let m = mtime path in
                if
                  Some m <> Hashtbl.find_opt mtimes path
                  && Some (read_file path) <> Hashtbl.find_opt texts path
                then do_reanalyze path
                else Hashtbl.replace mtimes path m)
            (Mira_core.Session.paths session)
        in
        if once then poll_once ()
        else begin
          (* event loop: edits arrive as mtime ticks or as explicit
             stdin command lines (reanalyze/watch/forget/quit) —
             inotify-free, so it runs anywhere *)
          let stdin_open = ref true in
          let quit = ref false in
          while not !quit do
            let readable, _, _ =
              if !stdin_open then
                Unix.select [ Unix.stdin ] [] []
                  (float_of_int (max 10 poll_ms) /. 1000.0)
              else begin
                Unix.sleepf (float_of_int (max 10 poll_ms) /. 1000.0);
                ([], [], [])
              end
            in
            if readable <> [] then begin
              match input_line stdin with
              | exception End_of_file ->
                  (* piped command stream ended: finish pending polls
                     and stop — interactive use quits with `quit` *)
                  quit := true
              | line -> (
                  match
                    String.split_on_char ' ' (String.trim line)
                    |> List.filter (fun s -> s <> "")
                  with
                  | [] -> ()
                  | [ "quit" ] -> quit := true
                  | [ "watch"; p ] -> do_watch p
                  | [ "reanalyze"; p ] -> do_reanalyze p
                  | [ "forget"; p ] ->
                      let dropped =
                        Mira_core.Session.forget session ~path:p
                      in
                      Hashtbl.remove texts p;
                      Hashtbl.remove mtimes p;
                      if json then
                        emit_json
                          (Mira_core.Json.Obj
                             [
                               ("event", Mira_core.Json.Str "forget");
                               ("path", Mira_core.Json.Str p);
                               ("forgotten", Mira_core.Json.Bool dropped);
                             ])
                      else
                        Printf.printf "forget %s: %s\n%!" p
                          (if dropped then "dropped" else "not watched")
                  | _ ->
                      Printf.eprintf
                        "watch: unknown command %S (watch PATH, reanalyze \
                         PATH, forget PATH, quit)\n"
                        line)
            end;
            poll_once ()
          done
        end;
        if !worst <> 0 then exit !worst)
  in
  let paths =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"PATHS" ~doc:"mini-C source files to watch.")
  in
  let poll_ms =
    Arg.(
      value & opt int 200
      & info [ "poll-ms" ] ~docv:"MS"
          ~doc:"File modification-time polling interval.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Analyze, run a single polling pass (reanalyzing anything \
             already edited), then exit — for scripts and CI.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After every reanalyze, cold-analyze each touched file in \
             process and exit 3 unless the warm models are byte-identical.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Hold a long-lived incremental analysis session over a set of \
          sources: edits (detected by mtime polling, or injected as \
          $(i,reanalyze PATH) lines on stdin) invalidate exactly the \
          edited functions plus their cross-file dependents, and only \
          those are re-analyzed.  Warm models are byte-identical to cold \
          analysis ($(b,--check) verifies this).  See README \"Watch \
          mode\".")
    Term.(
      const run $ paths $ level_arg $ Opts.limits_term $ poll_ms $ once
      $ check $ format_arg)

let eval_sweep_cmd =
  let run sweep_file endpoints chunk heartbeat_ms chunk_deadline_ms
      dispatch_retries budget auth_secret_file =
    handle_errors (fun () ->
        let usage_error ln msg =
          Printf.eprintf "error: %s:%d: %s\n" sweep_file ln msg;
          exit 124
        in
        (* one spec line per evaluation: FILE FUNCTION [name=value ...] *)
        let specs =
          let ln = ref 0 in
          read_file sweep_file |> String.split_on_char '\n'
          |> List.filter_map (fun line ->
                 incr ln;
                 let line =
                   String.map (fun c -> if c = '\t' then ' ' else c) line
                   |> String.trim
                 in
                 if line = "" || line.[0] = '#' then None
                 else
                   match
                     String.split_on_char ' ' line
                     |> List.filter (fun s -> s <> "")
                   with
                   | file :: fn :: binds ->
                       let params =
                         List.map
                           (fun tok ->
                             match String.index_opt tok '=' with
                             | Some i when i > 0 -> (
                                 let v =
                                   String.sub tok (i + 1)
                                     (String.length tok - i - 1)
                                 in
                                 match int_of_string_opt v with
                                 | Some n -> (String.sub tok 0 i, n)
                                 | None ->
                                     usage_error !ln
                                       (Printf.sprintf
                                          "binding %S is not name=INT" tok))
                             | _ ->
                                 usage_error !ln
                                   (Printf.sprintf
                                      "binding %S is not name=INT" tok))
                           binds
                       in
                       Some (!ln, file, fn, params)
                   | _ ->
                       usage_error !ln
                         "expected: FILE FUNCTION [name=value ...]")
        in
        if specs = [] then begin
          Printf.eprintf "error: %s: no evaluations\n" sweep_file;
          exit 124
        end;
        (* each distinct file is read (and shipped) once per request but
           loaded from disk once *)
        let sources = Hashtbl.create 16 in
        let source_of ln f =
          match Hashtbl.find_opt sources f with
          | Some s -> s
          | None ->
              let s =
                try read_file f
                with Sys_error m -> usage_error ln m
              in
              Hashtbl.add sources f s;
              s
        in
        (* sweep-frame source names are single tokens, and the
           coordinator requires one name = one text: sanitize the
           basename and disambiguate collisions with a #N suffix *)
        let sanitize s =
          String.map
            (function ' ' | '\t' | '\n' | '\r' -> '_' | c -> c)
            s
        in
        let by_content = Hashtbl.create 16 and used = Hashtbl.create 16 in
        let name_of base text =
          match Hashtbl.find_opt by_content (base, text) with
          | Some n -> n
          | None ->
              let rec pick i =
                let cand =
                  if i = 0 then base else Printf.sprintf "%s#%d" base i
                in
                if Hashtbl.mem used cand then pick (i + 1) else cand
              in
              let n = pick 0 in
              Hashtbl.add used n ();
              Hashtbl.add by_content (base, text) n;
              n
        in
        let bindings =
          List.map
            (fun (ln, file, fn, params) ->
              let text = source_of ln file in
              {
                Mira_core.Coordinator.bd_name =
                  name_of (sanitize (Filename.basename file)) text;
                bd_source = text;
                bd_function = fn;
                bd_params = params;
              })
            specs
        in
        let results, cstats =
          Mira_core.Coordinator.run ~chunk:(max 1 chunk) ~heartbeat_ms
            ~deadline_ms:chunk_deadline_ms ~retries:dispatch_retries
            ?auth_secret:(Opts.load_auth_secret auth_secret_file) ~budget
            endpoints bindings
        in
        let results = Array.to_list results in
        (* results come back in input order whatever the completion order
           across the pool was; render one line per spec line *)
        let transport = ref 0 and budget_hits = ref 0 and failed = ref 0 in
        List.iter2
          (fun (_, file, fn, params) result ->
            let label =
              Printf.sprintf "%s %s%s" (Filename.basename file) fn
                (String.concat ""
                   (List.map
                      (fun (k, v) -> Printf.sprintf " %s=%d" k v)
                      params))
            in
            match result with
            | Error m ->
                incr transport;
                Printf.printf "error %s: %s\n" label m
            | Ok resp -> (
                match resp.Mira_core.Serve.rs_status with
                | "ok" ->
                    let fld k =
                      Option.value
                        (Mira_core.Serve.field resp k)
                        ~default:"?"
                    in
                    Printf.printf "ok %s fpi=%s total=%s\n" label (fld "fpi")
                      (fld "total")
                | "overloaded" ->
                    incr budget_hits;
                    Printf.printf "error %s: server overloaded\n" label
                | _ ->
                    let msg =
                      Option.value
                        (Mira_core.Serve.field resp "message")
                        ~default:"unknown error"
                    in
                    (match Mira_core.Serve.field resp "code" with
                    | Some ("budget" | "timeout") -> incr budget_hits
                    | _ -> incr failed);
                    Printf.printf "error %s: %s\n" label msg))
          specs results;
        (* whole-fleet death: name exactly which evaluations were never
           answered, so a partial run is actionable *)
        (if cstats.Mira_core.Coordinator.co_unfinished <> [] then
           let specs_arr = Array.of_list specs in
           Printf.eprintf
             "error: every daemon lost; %d of %d evaluation(s) unanswered:\n"
             (List.length cstats.co_unfinished)
             cstats.co_total;
           List.iter
             (fun i ->
               let _, file, fn, params = specs_arr.(i) in
               Printf.eprintf "  unfinished: %s %s%s\n"
                 (Filename.basename file) fn
                 (String.concat ""
                    (List.map
                       (fun (k, v) -> Printf.sprintf " %s=%d" k v)
                       params)))
             cstats.co_unfinished);
        (* transport failures outrank budget outranks analysis, mirroring
           `mira batch`'s slow-vs-broken split with an extra "unreachable"
           tier *)
        if !transport > 0 then exit exit_internal
        else if !budget_hits > 0 then exit exit_budget
        else if !failed > 0 then exit exit_analysis)
  in
  let sweep_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SWEEPFILE"
          ~doc:
            "Evaluation sweep: one $(i,FILE FUNCTION [name=value ...]) line \
             per evaluation ($(i,#) comments and blank lines ignored).")
  in
  let chunk =
    Arg.(
      value & opt int 64
      & info [ "chunk" ] ~docv:"N"
          ~doc:
            "Evaluations shipped to a daemon per $(i,sweep) frame; the \
             daemon schedules them across its own worker pool and streams \
             one answer frame per evaluation.")
  in
  let heartbeat_ms =
    Arg.(
      value & opt int 1000
      & info [ "heartbeat-ms" ] ~docv:"MS"
          ~doc:
            "Liveness threshold per daemon connection: after this much \
             silence the coordinator pings, and a second silent interval \
             declares the daemon lost — its unfinished evaluations are \
             re-dispatched to the survivors.  0 disables loss detection.")
  in
  let chunk_deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "chunk-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Hard wall-clock bound on one chunk end to end; an overrun is \
             treated as a lost daemon.  0 disables.")
  in
  let dispatch_retries =
    Arg.(
      value & opt int 3
      & info [ "dispatch-retries" ] ~docv:"N"
          ~doc:
            "Consecutive no-progress dispatch failures before an endpoint \
             is retired (any completed evaluation resets the count).")
  in
  Cmd.v
    (Cmd.info "eval-sweep"
       ~doc:
         "Fan a batch of model evaluations across a fleet of $(b,mira \
          serve) daemons (repeat $(b,--endpoint); Unix and TCP mix freely) \
          and print one result line per sweep line, in input order.  The \
          sweep travels in whole chunks ($(b,--chunk)) that each daemon \
          schedules internally; a daemon that dies or goes silent \
          mid-chunk has its unfinished evaluations re-dispatched to the \
          survivors, so every evaluation is answered exactly once.  Exit \
          status is 3 if any evaluation could not be completed by any \
          daemon (the unanswered ones are named on stderr), else 2 on any \
          budget/timeout overrun, else 1 on any analysis failure.")
    Term.(
      const run $ sweep_file $ Opts.endpoints_term
      $ chunk $ heartbeat_ms $ chunk_deadline_ms $ dispatch_retries
      $ Opts.budget_term $ Opts.auth_secret_file)

(* ---------- supervise ---------- *)

let supervise_cmd =
  let run endpoints serve_args probe_interval_ms wedge_timeout_ms
      backoff_base_ms backoff_max_ms storm_failures storm_window_s grace_ms
      seed =
    handle_errors (fun () ->
        (* the supervisor probes each child at its configured endpoint, so
           a tcp:HOST:0 child would advertise a port only on its own
           stdout — unprobeable.  Demand concrete addresses. *)
        List.iter
          (fun ep ->
            match ep with
            | Mira_core.Endpoint.Tcp (_, 0) ->
                Printf.eprintf
                  "error: supervise needs a concrete endpoint to probe; \
                   tcp port 0 is assigned by the OS inside the child\n";
                exit 124
            | _ -> ())
          endpoints;
        let exe = Sys.executable_name in
        let children =
          List.mapi
            (fun i ep ->
              {
                Mira_core.Supervisor.cs_name = Printf.sprintf "serve-%d" i;
                cs_argv =
                  Array.of_list
                    (exe :: "serve" :: "--endpoint"
                    :: Mira_core.Endpoint.to_string ep
                    :: serve_args);
                cs_endpoint = ep;
              })
            endpoints
        in
        let cfg =
          {
            (Mira_core.Supervisor.default_config ~children) with
            sp_probe_interval_ms = max 50 probe_interval_ms;
            sp_wedge_timeout_ms = max 1 wedge_timeout_ms;
            sp_backoff_base_ms = max 1 backoff_base_ms;
            sp_backoff_max_ms = max backoff_base_ms backoff_max_ms;
            sp_storm_failures = max 1 storm_failures;
            sp_storm_window_s = storm_window_s;
            sp_grace_ms = max 0 grace_ms;
            sp_seed = seed;
          }
        in
        let sup = Mira_core.Supervisor.create cfg in
        List.iter
          (fun s ->
            Sys.set_signal s
              (Sys.Signal_handle (fun _ -> Mira_core.Supervisor.stop sup)))
          [ Sys.sigterm; Sys.sigint ];
        let outcome = Mira_core.Supervisor.run sup in
        let st = Mira_core.Supervisor.stats sup in
        Printf.printf
          "mira supervise: %d spawn(s), %d restart(s), %d wedge kill(s)\n"
          st.Mira_core.Supervisor.su_spawns st.su_restarts st.su_wedge_kills;
        match outcome with
        | Mira_core.Supervisor.Drained -> ()
        | Mira_core.Supervisor.Storm name ->
            Printf.eprintf
              "error: child %s kept failing (restart storm); fleet drained\n"
              name;
            exit exit_internal)
  in
  let serve_args =
    Arg.(
      value & opt_all string []
      & info [ "serve-arg" ] ~docv:"ARG"
          ~doc:
            "Extra argument appended to every child's $(b,mira serve) \
             command line (repeatable, in order) — e.g. \
             $(b,--serve-arg=--workers --serve-arg=4).")
  in
  let probe_interval_ms =
    Arg.(
      value & opt int 300
      & info [ "probe-interval-ms" ] ~docv:"MS"
          ~doc:
            "Readiness poll period: each child's $(i,health) verb is \
             probed this often (also the probe's I/O timeout).")
  in
  let wedge_timeout_ms =
    Arg.(
      value & opt int 10_000
      & info [ "wedge-timeout-ms" ] ~docv:"MS"
          ~doc:
            "A child that runs but stays unready — answering \
             $(i,starting) forever, or not answering at all — this long \
             is SIGKILLed and restarted.")
  in
  let backoff_base_ms =
    Arg.(
      value & opt int 200
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:
            "Restart backoff base, doubling per consecutive failure (plus \
             deterministic jitter, see $(b,--seed)).")
  in
  let backoff_max_ms =
    Arg.(
      value & opt int 5_000
      & info [ "backoff-max-ms" ] ~docv:"MS" ~doc:"Restart backoff cap.")
  in
  let storm_failures =
    Arg.(
      value & opt int 5
      & info [ "storm-failures" ] ~docv:"N"
          ~doc:
            "Restart-storm breaker: this many failures of the same child \
             inside $(b,--storm-window-s) means it can not come up; the \
             fleet is drained and supervise exits 3.")
  in
  let storm_window_s =
    Arg.(
      value & opt float 30.0
      & info [ "storm-window-s" ] ~docv:"S"
          ~doc:"Window for $(b,--storm-failures).")
  in
  let grace_ms =
    Arg.(
      value & opt int 5_000
      & info [ "grace-ms" ] ~docv:"MS"
          ~doc:
            "Shutdown drain deadline: SIGTERM fans out to the fleet, and \
             a child still running after this long is SIGKILLed.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Jitter seed: restart delays are jittered by a hash of \
             (seed, child, attempt), so a chaos run replays the same \
             restart timeline for the same seed.")
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Run a self-healing fleet of $(b,mira serve) daemons: fork one \
          child per $(b,--endpoint), watch liveness (process exit) and \
          readiness (the $(i,health) verb), and restart whatever crashes \
          or wedges — exponential backoff with deterministic jitter, a \
          per-child restart-storm breaker (exit 3), and SIGTERM fan-out \
          drain on shutdown.  Pair with $(b,mira eval-sweep) against the \
          same endpoints: a daemon killed mid-sweep is restarted here and \
          rejoins the running sweep on the client side.")
    Term.(
      const run $ Opts.endpoints_term $ serve_args $ probe_interval_ms
      $ wedge_timeout_ms $ backoff_base_ms $ backoff_max_ms $ storm_failures
      $ storm_window_s $ grace_ms $ seed)

(* ---------- corpus-dump ---------- *)

let corpus_dump_cmd =
  let run dir =
    Mira_corpus.Corpus.dump ~dir;
    Printf.printf "wrote %d programs to %s/\n"
      (List.length Mira_corpus.Corpus.all)
      dir
  in
  let dir =
    Arg.(value & pos 0 string "corpus" & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "corpus-dump" ~doc:"Write the bundled mini-C corpus to disk.")
    Term.(const run $ dir)

(* ---------- bench-serve ---------- *)

let bench_serve_cmd =
  let run endpoint connections pipeline duration_s mix_str probe probe_cap
      json_path label smoke =
    handle_errors (fun () ->
        let mix =
          match Mira_core.Bench_serve.parse_mix mix_str with
          | Ok m -> m
          | Error m ->
              Printf.eprintf "error: %s\n" m;
              exit exit_internal
        in
        (* smoke: a small fixed workload whose only assertion is that
           the harness completes and emits valid JSON — CI keeps the
           harness alive without turning timings into thresholds *)
        let connections =
          if smoke then [ 2 ]
          else if connections = [] then [ 8 ]
          else connections
        in
        let pipeline = max 1 (if smoke then 2 else pipeline) in
        let duration_s = if smoke then 0.3 else duration_s in
        let probe = probe && not smoke in
        let json_path = if smoke && json_path = None then Some "-" else json_path in
        let with_daemon f =
          match endpoint with
          | Some ep -> f ep
          | None ->
              (* no endpoint: measure a fresh in-process daemon with
                 admission opened up — the generator, not the shed
                 limit, should be what saturates *)
              let sock =
                Filename.concat
                  (Filename.get_temp_dir_name ())
                  (Printf.sprintf "mira-bench-%d.sock" (Unix.getpid ()))
              in
              (try Sys.remove sock with Sys_error _ -> ());
              let cfg =
                {
                  (Mira_core.Serve.default_config ~socket:sock) with
                  cfg_max_inflight = 1_000_000;
                  cfg_max_pipeline = pipeline;
                  cfg_idle_timeout_ms = 60_000;
                }
              in
              let server = Mira_core.Serve.create cfg in
              let th =
                Thread.create
                  (fun () -> ignore (Mira_core.Serve.serve server))
                  ()
              in
              Fun.protect
                ~finally:(fun () ->
                  Mira_core.Serve.stop server;
                  Thread.join th;
                  try Sys.remove sock with Sys_error _ -> ())
                (fun () ->
                  let ep = Mira_core.Endpoint.Unix_sock sock in
                  if not (Mira_core.Client.wait_ready ep) then begin
                    Printf.eprintf "error: in-process daemon not ready\n";
                    exit exit_internal
                  end;
                  f ep)
        in
        with_daemon (fun ep ->
            let runs =
              List.map
                (fun conns ->
                  let r =
                    Mira_core.Bench_serve.run ~endpoint:ep ~connections:conns
                      ~pipeline ~duration_s ~mix
                  in
                  Printf.eprintf
                    "bench-serve: %4d conns x %d deep, %.1fs: %d ok, %d \
                     errors, %d dropped, %.0f req/s, p50 %.2fms, p99 %.2fms\n\
                     %!"
                    r.Mira_core.Bench_serve.bs_connections r.bs_pipeline
                    r.bs_elapsed_s r.bs_ok r.bs_errors r.bs_dropped_conns
                    r.bs_throughput_rps r.bs_p50_ms r.bs_p99_ms;
                  r)
                connections
            in
            let probe_result =
              if not probe then None
              else begin
                let cap =
                  if probe_cap > 0 then probe_cap
                  else
                    (* both ends of every probe connection may live in
                       this process: stay clear of RLIMIT_NOFILE *)
                    max 100
                      (min 8000 ((Mira_core.Poller.rlimit_nofile () - 256) / 2))
                in
                let n, reason =
                  Mira_core.Bench_serve.max_idle_probe ~endpoint:ep ~cap ()
                in
                Printf.eprintf "bench-serve: max idle connections %d (%s)\n%!"
                  n reason;
                Some (n, reason)
              end
            in
            match json_path with
            | None -> ()
            | Some path ->
                let b = Buffer.create 1024 in
                Buffer.add_string b "{\n";
                Buffer.add_string b "  \"bench\": \"serve\",\n";
                Printf.bprintf b "  \"label\": \"%s\",\n" label;
                Printf.bprintf b "  \"mix\": \"%s\",\n"
                  (Mira_core.Bench_serve.mix_to_string mix);
                Printf.bprintf b "  \"duration_s\": %.3f,\n" duration_s;
                Buffer.add_string b "  \"runs\": [\n";
                List.iteri
                  (fun i (r : Mira_core.Bench_serve.run) ->
                    Printf.bprintf b
                      "    { \"connections\": %d, \"pipeline\": %d, \
                       \"elapsed_s\": %.3f, \"ok\": %d, \"errors\": %d, \
                       \"dropped_conns\": %d, \"throughput_rps\": %.1f, \
                       \"p50_ms\": %.3f, \"p99_ms\": %.3f }%s\n"
                      r.bs_connections r.bs_pipeline r.bs_elapsed_s r.bs_ok
                      r.bs_errors r.bs_dropped_conns r.bs_throughput_rps
                      r.bs_p50_ms r.bs_p99_ms
                      (if i = List.length runs - 1 then "" else ","))
                  runs;
                Buffer.add_string b "  ]";
                (match probe_result with
                | None -> ()
                | Some (n, reason) ->
                    Printf.bprintf b
                      ",\n  \"max_idle_connections\": %d,\n\
                      \  \"max_idle_stop_reason\": \"%s\"" n reason);
                Buffer.add_string b "\n}\n";
                if path = "-" then print_string (Buffer.contents b)
                else begin
                  let oc = open_out path in
                  output_string oc (Buffer.contents b);
                  close_out oc;
                  Printf.eprintf "bench-serve: wrote %s\n" path
                end))
  in
  let endpoint =
    Arg.(
      value
      & opt (some Opts.endpoint_conv) None
      & info [ "e"; "endpoint" ] ~docv:"ENDPOINT"
          ~doc:
            "Daemon to load-test.  Omitted: boot a fresh in-process daemon \
             (admission opened up) and measure that.")
  in
  let connections =
    Arg.(
      value & opt_all int []
      & info [ "connections" ] ~docv:"N"
          ~doc:"Concurrent connections (repeatable: one run per count).")
  in
  let pipeline =
    Arg.(
      value & opt int 8
      & info [ "pipeline" ] ~docv:"K"
          ~doc:"Tagged requests kept in flight per connection.")
  in
  let duration_s =
    Arg.(
      value & opt float 3.0
      & info [ "duration-s" ] ~docv:"S" ~doc:"Measured load per run.")
  in
  let mix =
    Arg.(
      value
      & opt string (Mira_core.Bench_serve.mix_to_string
                      Mira_core.Bench_serve.default_mix)
      & info [ "mix" ] ~docv:"SPEC"
          ~doc:
            "Request mix weights, e.g. $(i,ping=8,eval=1,analyze=1); \
             requests cycle through the mix deterministically.")
  in
  let probe =
    Arg.(
      value & flag
      & info [ "probe" ]
          ~doc:
            "After the runs, probe how many concurrent idle connections the \
             daemon holds while still answering a fresh ping within 2s.")
  in
  let probe_cap =
    Arg.(
      value & opt int 0
      & info [ "probe-cap" ] ~docv:"N"
          ~doc:
            "Idle-connection probe ceiling (0: derived from the fd rlimit, \
             at most 8000).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write results as JSON ($(i,-) for stdout).")
  in
  let label =
    Arg.(
      value & opt string "current"
      & info [ "label" ] ~docv:"NAME"
          ~doc:"Implementation label recorded in the JSON.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Small fixed workload (2 connections, 2-deep, 0.3s, no probe) \
             that just proves the harness runs and emits valid JSON.")
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Load-test a daemon: N pipelined connections driving a \
          deterministic ping/eval/analyze mix from one event-driven \
          generator thread; reports throughput and p50/p99 latency, plus an \
          optional idle-connection scale probe.  BENCH_serve.json records \
          before/after numbers for serving-layer changes.")
    Term.(
      const run $ endpoint $ connections $ pipeline $ duration_s $ mix $ probe
      $ probe_cap $ json $ label $ smoke)

(* ---------- dataset ---------- *)

(* --sweep name=lo:hi[:step] | name=v1,v2,... (repeatable, one grid
   axis each, row order = odometer over the axes in argument order) *)
let sweep_conv =
  let parse s =
    match String.index_opt s '=' with
    | None -> Error (`Msg (Printf.sprintf "expected name=RANGE, got %S" s))
    | Some i -> (
        let name = String.sub s 0 i in
        let spec = String.sub s (i + 1) (String.length s - i - 1) in
        let ints l =
          try Ok (List.map int_of_string l)
          with Failure _ ->
            Error (`Msg (Printf.sprintf "%S: values must be integers" s))
        in
        if name = "" then Error (`Msg (Printf.sprintf "%S: empty name" s))
        else if String.contains spec ',' then
          match ints (String.split_on_char ',' spec) with
          | Ok (_ :: _ as vs) -> Ok (name, vs)
          | Ok [] -> Error (`Msg (Printf.sprintf "%S: empty list" s))
          | Error e -> Error e
        else
          match ints (String.split_on_char ':' spec) with
          | Ok [ v ] -> Ok (name, [ v ])
          | Ok [ lo; hi ] | Ok [ lo; hi; 1 ] when lo <= hi ->
              Ok (name, List.init (hi - lo + 1) (fun i -> lo + i))
          | Ok [ lo; hi; step ] when step > 0 && lo <= hi ->
              Ok
                ( name,
                  List.init
                    (((hi - lo) / step) + 1)
                    (fun i -> lo + (i * step)) )
          | Ok _ ->
              Error
                (`Msg (Printf.sprintf "%S: expected lo:hi[:step], step > 0" s))
          | Error e -> Error e)
  in
  let print ppf (name, vs) =
    Format.fprintf ppf "%s=%s" name
      (String.concat "," (List.map string_of_int vs))
  in
  Arg.conv (parse, print)

let dataset_cmd =
  let run file fname sweeps fixed archs level fmt out =
    handle_errors (fun () ->
        if sweeps = [] then begin
          Printf.eprintf "error: at least one --sweep axis is required\n";
          exit 124
        end;
        let m =
          Mira_core.Mira.analyze ~level ~source_name:file (read_file file)
        in
        let model = m.Mira_core.Mira.model in
        let archs =
          if archs = [] then [ Mira_arch.Archdesc.arya ] else archs
        in
        let vars = List.map fst sweeps in
        let axes = Array.of_list (List.map (fun (_, vs) -> Array.of_list vs) sweeps) in
        let mns = Mira_core.Model_eval.mnemonic_order model ~fname ~inclusive:true in
        let fp =
          Array.map
            (fun mn -> List.mem mn Mira_core.Model_eval.fp_mnemonics)
            mns
        in
        (* per arch: the compiled program when one exists, else an
           interpreter plan — rows are identical either way *)
        let eval_row =
          let cache = Mira_core.Model_compile.create_cache () in
          let digest = Digest.string (Mira_core.Mira.python_model m) in
          fun (arch : Mira_arch.Archdesc.t) ->
            match
              Mira_core.Model_compile.get cache ~digest ~arch ~model ~fname
                ~sweep:vars ~fixed ()
            with
            | Ok prog ->
                let runner = Mira_core.Model_compile.runner prog in
                fun args ->
                  let out = Mira_core.Model_compile.run runner args in
                  (out, Mira_core.Model_compile.cycles prog out)
            | Error _ ->
                let plan =
                  Mira_core.Model_eval.plan model ~fname
                    ~params:(vars @ List.map fst fixed)
                in
                let env = Array.make (List.length vars + List.length fixed) 0 in
                List.iteri
                  (fun i (_, v) -> env.(List.length vars + i) <- v)
                  fixed;
                let out = Array.make (Array.length mns) 0.0 in
                fun args ->
                  Array.blit args 0 env 0 (Array.length args);
                  Mira_core.Model_eval.run_plan_into plan env out;
                  let cycles = ref 0.0 in
                  Array.iteri
                    (fun i mn ->
                      cycles :=
                        !cycles
                        +. (out.(i)
                           *. Mira_arch.Archdesc.cost_of_mnemonic arch mn))
                    mns;
                  (out, !cycles)
        in
        let buf = Buffer.create 4096 in
        let sep = ref "" in
        (match fmt with
        | `Csv ->
            Buffer.add_string buf "arch";
            List.iter (fun v -> Printf.bprintf buf ",%s" v) vars;
            Array.iter (fun mn -> Printf.bprintf buf ",%s" mn) mns;
            Buffer.add_string buf ",total,fpi,cycles,seconds\n"
        | `Json -> Buffer.add_string buf "[\n");
        let emit_row (arch : Mira_arch.Archdesc.t) args (out : float array)
            cycles =
          let total = Array.fold_left ( +. ) 0.0 out in
          let fpi = ref 0.0 in
          Array.iteri (fun i v -> if fp.(i) then fpi := !fpi +. v) out;
          let seconds = cycles /. (arch.clock_ghz *. 1e9) in
          match fmt with
          | `Csv ->
              Buffer.add_string buf arch.name;
              Array.iter (fun v -> Printf.bprintf buf ",%d" v) args;
              Array.iter (fun v -> Printf.bprintf buf ",%.12g" v) out;
              Printf.bprintf buf ",%.12g,%.12g,%.12g,%.6e\n" total !fpi
                cycles seconds
          | `Json ->
              Printf.bprintf buf "%s  { \"arch\": \"%s\"" !sep arch.name;
              sep := ",\n";
              List.iteri
                (fun i v -> Printf.bprintf buf ", \"%s\": %d" v args.(i))
                vars;
              Array.iteri
                (fun i mn -> Printf.bprintf buf ", \"%s\": %.12g" mn out.(i))
                mns;
              Printf.bprintf buf
                ", \"total\": %.12g, \"fpi\": %.12g, \"cycles\": %.12g, \
                 \"seconds\": %.6e }"
                total !fpi cycles seconds
        in
        List.iter
          (fun arch ->
            let eval = eval_row arch in
            let n = Array.length axes in
            let idx = Array.make n 0 in
            let args = Array.make n 0 in
            let rec next () =
              Array.iteri (fun i ax -> args.(i) <- ax.(idx.(i))) axes;
              let out, cycles = eval args in
              emit_row arch args out cycles;
              (* odometer: last axis fastest *)
              let rec carry i =
                if i >= 0 then begin
                  idx.(i) <- idx.(i) + 1;
                  if idx.(i) >= Array.length axes.(i) then begin
                    idx.(i) <- 0;
                    carry (i - 1)
                  end
                  else next ()
                end
              in
              carry (n - 1)
            in
            next ())
          archs;
        if fmt = `Json then Buffer.add_string buf "\n]\n";
        match out with
        | "-" -> print_string (Buffer.contents buf)
        | path ->
            write_file path (Buffer.contents buf);
            Printf.eprintf "dataset: wrote %s\n" path)
  in
  let fname =
    Arg.(
      required
      & opt (some string) None
      & info [ "f"; "function" ] ~docv:"FN"
          ~doc:"Function to sweep (mangled name).")
  in
  let sweeps =
    Arg.(
      value & opt_all sweep_conv []
      & info [ "sweep" ] ~docv:"NAME=RANGE"
          ~doc:
            "Grid axis: $(i,name=lo:hi), $(i,name=lo:hi:step) or \
             $(i,name=v1,v2,...) (repeatable; row order sweeps the last \
             axis fastest).")
  in
  let archs =
    Arg.(
      value & opt_all arch_conv []
      & info [ "arch" ] ~docv:"ARCH"
          ~doc:
            "Architecture(s) to include, one row block each (repeatable; \
             default arya).")
  in
  let fmt =
    Arg.(
      value
      & opt (enum [ ("csv", `Csv); ("json", `Json) ]) `Csv
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: csv or json.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file ($(i,-) for stdout).")
  in
  Cmd.v
    (Cmd.info "dataset"
       ~doc:
         "Sweep a function's model over parameter grids and architectures \
          and emit a training-ready table (one row per grid point per \
          arch: parameters, per-mnemonic counts, total, FPI, predicted \
          cycles and seconds).  Sweeps run on the compiled evaluator \
          (see README \"Compiled evaluation\"); models without a closed \
          form fall back to the interpreter.")
    Term.(
      const run $ file_arg $ fname $ sweeps $ params_arg $ archs $ level_arg
      $ fmt $ out)

(* ---------- bench-eval ---------- *)

let bench_eval_cmd =
  let run smoke json_path label =
    handle_errors (fun () ->
        let corpus name =
          match Mira_corpus.Corpus.find name with
          | Some s -> s
          | None -> failwith ("no corpus program " ^ name)
        in
        (* one target per kernel shape: a streaming loop, a chained
           callee, and three nests of increasing polynomial degree *)
        let hi full = if smoke then 100 else full in
        let targets =
          [
            ("stream", "stream_triad", "n", 1, hi 100_000, []);
            ("saxpy", "saxpy_chain", "n", 1, hi 100_000, [ ("reps", 8) ]);
            ("dgemm", "dgemm", "n", 1, hi 10_000, []);
            ("jacobi2d", "jacobi2d", "n", 4, hi 10_000, [ ("tsteps", 10) ]);
            ("lu", "lu", "n", 2, hi 10_000, []);
          ]
        in
        let min_time_s = if smoke then 0.02 else 0.5 in
        let results =
          List.map
            (fun (name, fname, sweep, lo, hi, fixed) ->
              let r =
                Mira_core.Bench_eval.run ~min_time_s
                  {
                    Mira_core.Bench_eval.tg_label = name;
                    tg_source_name = name;
                    tg_source = corpus name;
                    tg_fname = fname;
                    tg_sweep = sweep;
                    tg_lo = lo;
                    tg_hi = hi;
                    tg_fixed = fixed;
                  }
              in
              Printf.eprintf
                "bench-eval: %-10s %-12s %8.1f ns/eval interpreted, %7.1f \
                 ns/eval planned, %6.2f ns/eval compiled (%.1fM evals/s, \
                 %.0fx vs interpreter, %.0fx vs plan)\n\
                 %!"
                name fname r.Mira_core.Bench_eval.br_legacy_ns r.br_plan_ns
                r.br_compiled_ns
                (r.br_compiled_eps /. 1e6)
                r.br_speedup_vs_legacy r.br_speedup_vs_plan;
              r)
            targets
        in
        let geomean f =
          exp
            (List.fold_left (fun a r -> a +. log (f r)) 0.0 results
            /. float_of_int (List.length results))
        in
        let gm_legacy =
          geomean (fun r -> r.Mira_core.Bench_eval.br_speedup_vs_legacy)
        in
        let gm_plan =
          geomean (fun r -> r.Mira_core.Bench_eval.br_speedup_vs_plan)
        in
        let peak =
          List.fold_left
            (fun a r -> Float.max a r.Mira_core.Bench_eval.br_compiled_eps)
            0.0 results
        in
        Printf.eprintf
          "bench-eval: geomean speedup %.0fx vs interpreter, %.0fx vs \
           plan; peak %.1fM evals/s\n\
           %!"
          gm_legacy gm_plan (peak /. 1e6);
        match json_path with
        | None -> ()
        | Some path ->
            let b = Buffer.create 2048 in
            Buffer.add_string b "{\n";
            Buffer.add_string b "  \"bench\": \"eval\",\n";
            Printf.bprintf b "  \"label\": \"%s\",\n" label;
            Buffer.add_string b "  \"targets\": [\n";
            List.iteri
              (fun i (r : Mira_core.Bench_eval.result) ->
                Printf.bprintf b
                  "    { \"label\": \"%s\", \"function\": \"%s\", \
                   \"points\": %d, \"interpreted_ns_per_eval\": %.2f, \
                   \"plan_ns_per_eval\": %.2f, \"compiled_ns_per_eval\": \
                   %.3f, \"compiled_evals_per_s\": %.0f, \
                   \"speedup_vs_interpreted\": %.1f, \"speedup_vs_plan\": \
                   %.1f, \"prog_ops\": %d, \"max_rel_err\": %.3g }%s\n"
                  r.br_label r.br_fname r.br_points r.br_legacy_ns
                  r.br_plan_ns r.br_compiled_ns r.br_compiled_eps
                  r.br_speedup_vs_legacy r.br_speedup_vs_plan r.br_prog_ops
                  r.br_max_rel_err
                  (if i = List.length results - 1 then "" else ","))
              results;
            Buffer.add_string b "  ],\n";
            Printf.bprintf b "  \"geomean_speedup_vs_interpreted\": %.1f,\n"
              gm_legacy;
            Printf.bprintf b "  \"geomean_speedup_vs_plan\": %.1f,\n" gm_plan;
            Printf.bprintf b "  \"peak_compiled_evals_per_s\": %.0f\n" peak;
            Buffer.add_string b "}\n";
            if path = "-" then print_string (Buffer.contents b)
            else begin
              write_file path (Buffer.contents b);
              Printf.eprintf "bench-eval: wrote %s\n" path
            end)
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Tiny sweeps and timing windows: proves the harness runs, \
             cross-checks compiled against interpreted, emits valid JSON.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write results as JSON ($(i,-) for stdout).")
  in
  let label =
    Arg.(
      value & opt string "current"
      & info [ "label" ] ~docv:"NAME"
          ~doc:"Implementation label recorded in the JSON.")
  in
  Cmd.v
    (Cmd.info "bench-eval"
       ~doc:
         "Benchmark the evaluation tiers on corpus kernels: one-shot \
          interpretation vs a reusable interpreter plan vs the compiled \
          register program (see README \"Compiled evaluation\").  Each \
          target is cross-checked against the interpreter before timing; \
          BENCH_eval.json records the numbers.")
    Term.(const run $ smoke $ json $ label)

(* ---------- bench-watch ---------- *)

let bench_watch_cmd =
  let run smoke json_path label level =
    handle_errors (fun () ->
        (* the corpus kernels are the watched background: the session
           holds them all, and each timed edit touches only the
           synthesized target file *)
        let sources =
          List.map
            (fun (name, text) -> (name ^ ".mc", text))
            Mira_corpus.Corpus.all
        in
        let edits = if smoke then 3 else 20 in
        let cold_samples = if smoke then 2 else 5 in
        let r =
          Mira_core.Bench_watch.run ~level ~edits ~cold_samples ~sources ()
        in
        Printf.eprintf
          "bench-watch: %d files, %d functions; one-function edit: %.2f ms \
           warm (p90 %.2f), %d invalidated; cold re-batch: %.1f ms; \
           speedup %.1fx\n\
           %!"
          r.Mira_core.Bench_watch.bw_files r.bw_functions r.bw_warm_ms
          r.bw_warm_p90_ms r.bw_invalidated r.bw_cold_ms r.bw_speedup;
        match json_path with
        | None -> ()
        | Some path ->
            let b = Buffer.create 1024 in
            Buffer.add_string b "{\n";
            Buffer.add_string b "  \"bench\": \"watch\",\n";
            Printf.bprintf b "  \"label\": \"%s\",\n" label;
            Printf.bprintf b "  \"files\": %d,\n"
              r.Mira_core.Bench_watch.bw_files;
            Printf.bprintf b "  \"functions\": %d,\n" r.bw_functions;
            Printf.bprintf b "  \"edits\": %d,\n" r.bw_edits;
            Printf.bprintf b "  \"invalidated_per_edit\": %d,\n"
              r.bw_invalidated;
            Printf.bprintf b "  \"warm_ms\": %.3f,\n" r.bw_warm_ms;
            Printf.bprintf b "  \"warm_p90_ms\": %.3f,\n" r.bw_warm_p90_ms;
            Printf.bprintf b "  \"cold_ms\": %.3f,\n" r.bw_cold_ms;
            Printf.bprintf b "  \"cold_samples\": %d,\n" r.bw_cold_samples;
            Printf.bprintf b "  \"speedup\": %.1f\n" r.bw_speedup;
            Buffer.add_string b "}\n";
            if path = "-" then print_string (Buffer.contents b)
            else begin
              write_file path (Buffer.contents b);
              Printf.eprintf "bench-watch: wrote %s\n" path
            end)
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Few edits and cold samples: proves the harness runs, verifies \
             byte-identity, emits valid JSON.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write results as JSON ($(i,-) for stdout).")
  in
  let label =
    Arg.(
      value & opt string "current"
      & info [ "label" ] ~docv:"NAME"
          ~doc:"Implementation label recorded in the JSON.")
  in
  Cmd.v
    (Cmd.info "bench-watch"
       ~doc:
         "Benchmark watch mode on the bundled corpus: the \
          edit-to-updated-model latency of a one-function edit through a \
          warm session vs a cold whole-corpus re-batch.  Warm models are \
          verified byte-identical to cold before timing; \
          BENCH_watch.json records the numbers.")
    Term.(const run $ smoke $ json $ label $ level_arg)

(* ---------- arch ---------- *)

let arch_cmd =
  let run arch =
    print_string (Mira_arch.Archdesc.to_text arch);
    match Mira_arch.Archdesc.validate arch with
    | Ok () -> ()
    | Error es ->
        List.iter (Printf.eprintf "invalid: %s\n") es;
        exit 1
  in
  Cmd.v
    (Cmd.info "arch" ~doc:"Print (and validate) an architecture description.")
    Term.(const run $ arch_arg)

let () =
  (* process-wide: a peer disconnecting mid-write (daemon responses,
     piped stdout) must surface as Unix_error (EPIPE, ...) on that
     descriptor and be handled there — never terminate the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let doc = "Mira: static performance analysis for mini-C programs" in
  let info = Cmd.info "mira" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd; dot_cmd; compile_cmd; disasm_cmd; analyze_cmd; eval_cmd;
            predict_cmd; profile_cmd; coverage_cmd; validate_cmd; batch_cmd;
            cache_cmd; serve_cmd; supervise_cmd; client_cmd; watch_cmd;
            eval_sweep_cmd; bench_serve_cmd; dataset_cmd; bench_eval_cmd;
            bench_watch_cmd; corpus_dump_cmd; arch_cmd;
          ]))
