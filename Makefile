.PHONY: build test ci bench bench-json clean

build:
	dune build @all

test:
	dune runtest

# Reproducible CI entry point: full build plus the whole test suite
# with every randomized layer pinned — the differential fuzz oracle
# reads MIRA_FUZZ_SEED (its default is the same baked-in seed), the
# qcheck property suites read QCHECK_SEED, and the fault-injection
# harness reads MIRA_FAULT_SEED.  --force re-executes tests even when
# dune has them cached, so the pinned seeds really run.  The hard
# timeout turns any nontermination regression (a budget that stopped
# firing, a stuck worker) into a CI failure instead of a hang.
CI_TIMEOUT ?= 600
ci:
	dune build @all
	MIRA_FUZZ_SEED=20260806 QCHECK_SEED=20260806 MIRA_FAULT_SEED=20260806 \
	  timeout --kill-after=30 $(CI_TIMEOUT) dune runtest --force

bench:
	dune exec bench/main.exe -- --fast

# Timing-only run (batch scaling + incremental reanalysis) that
# records its numbers in BENCH_batch.json for regression tracking.
bench-json:
	dune exec bench/main.exe -- --json

clean:
	dune clean
	rm -rf .mira-cache
