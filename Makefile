.PHONY: build test ci ci-seeds chaos-smoke serve-smoke cluster-smoke watch-smoke bench bench-json bench-serve bench-serve-smoke bench-eval bench-eval-smoke bench-watch bench-watch-smoke clean

build:
	dune build @all

test:
	dune runtest

# Reproducible CI entry point: full build plus the whole test suite
# with every randomized layer pinned — the differential fuzz oracle
# reads MIRA_FUZZ_SEED (its default is the same baked-in seed), the
# qcheck property suites read QCHECK_SEED, and the fault-injection
# harness reads MIRA_FAULT_SEED.  --force re-executes tests even when
# dune has them cached, so the pinned seeds really run.  The hard
# timeout turns any nontermination regression (a budget that stopped
# firing, a stuck worker) into a CI failure instead of a hang.
CI_TIMEOUT ?= 600
ci:
	dune build @all
	MIRA_FUZZ_SEED=20260806 QCHECK_SEED=20260806 MIRA_FAULT_SEED=20260806 \
	  timeout --kill-after=30 $(CI_TIMEOUT) dune runtest --force
	$(MAKE) ci-seeds
	$(MAKE) chaos-smoke
	$(MAKE) serve-smoke
	$(MAKE) cluster-smoke
	$(MAKE) watch-smoke
	$(MAKE) bench-serve-smoke
	$(MAKE) bench-eval-smoke
	$(MAKE) bench-watch-smoke

# Seed sweep: the fault-injection and cluster harnesses re-run under
# several pinned MIRA_FAULT_SEED values.  Each seed draws a different
# deterministic fault schedule (different sources corrupted, different
# connections killed), so invariants that happen to hold under one
# schedule — exactly-once dispatch, byte-identical recovery — get
# checked under three.  Assertions tied to the default schedule's
# specifics are themselves seed-gated in the tests.
CI_SEEDS ?= 20260806 7 424242
SEEDS_TIMEOUT ?= 300
ci-seeds: build
	for s in $(CI_SEEDS); do \
	  echo "== MIRA_FAULT_SEED=$$s"; \
	  MIRA_FAULT_SEED=$$s timeout --kill-after=30 $(SEEDS_TIMEOUT) \
	    sh -ec 'cd _build/default/test \
	      && ./test_faults.exe -e && ./test_cluster.exe -e' || exit 1; \
	done

# Chaos smoke: the self-healing-fleet harness end to end — seeded
# crash-injected cache publishes must recover with zero torn entries,
# a supervised 3-daemon fleet must survive one child SIGKILLed twice
# mid-sweep with exactly-once byte-identical results, circuit breakers
# must reopen through their half-open probes, and a lost endpoint must
# rejoin a running sweep when its daemon comes back.
CHAOS_TIMEOUT ?= 300
chaos-smoke: build
	MIRA_FAULT_SEED=20260806 timeout --kill-after=30 $(CHAOS_TIMEOUT) \
	  sh -ec 'cd _build/default/test && ./test_supervise.exe -e'

# Eval-service smoke: boot two real daemons — one on a Unix socket,
# one on a TCP ephemeral port (discovered from its ready line) — drive
# one client round-trip per verb, fan a pooled, pipelined eval-sweep
# across both, then SIGTERM each and require clean drained exits — all
# under a hard timeout so a wedged daemon fails CI instead of hanging
# it.
SERVE_TIMEOUT ?= 60
serve-smoke: build
	timeout --kill-after=10 $(SERVE_TIMEOUT) sh -ec ' \
	  exe=./_build/default/bin/mira.exe; \
	  dir=$$(mktemp -d); trap "rm -rf $$dir" EXIT; \
	  sock=$$dir/mira.sock; \
	  $$exe corpus-dump $$dir/corpus; \
	  $$exe serve --endpoint unix:$$sock --cache --cache-dir $$dir/cache-a \
	    & pid_unix=$$!; \
	  $$exe serve --endpoint tcp:127.0.0.1:0 --cache --cache-dir $$dir/cache-b \
	    > $$dir/tcp.log & pid_tcp=$$!; \
	  i=0; until $$exe client ping --endpoint unix:$$sock >/dev/null 2>&1; do \
	    i=$$((i+1)); [ $$i -lt 100 ] || exit 1; sleep 0.05; done; \
	  i=0; until grep -q "listening on tcp:" $$dir/tcp.log; do \
	    i=$$((i+1)); [ $$i -lt 100 ] || exit 1; sleep 0.05; done; \
	  tcp=$$(sed -n "s/^mira serve: listening on \(tcp:.*\)$$/\1/p" $$dir/tcp.log); \
	  $$exe client ping --endpoint $$tcp; \
	  $$exe client analyze $$dir/corpus/saxpy.mc --endpoint unix:$$sock >/dev/null; \
	  $$exe client eval $$dir/corpus/stream.mc -f stream_triad -p n=1000 \
	    --endpoint $$tcp; \
	  $$exe client stats --endpoint $$tcp | grep -q "^uptime-ms="; \
	  printf "%s\n%s\n%s\n%s\n" \
	    "$$dir/corpus/saxpy.mc saxpy_chain n=64 reps=2" \
	    "$$dir/corpus/saxpy.mc saxpy_chain n=128 reps=2" \
	    "$$dir/corpus/stream.mc stream_triad n=1000" \
	    "$$dir/corpus/stream.mc stream_triad n=2000" > $$dir/sweep.txt; \
	  $$exe eval-sweep $$dir/sweep.txt --endpoint unix:$$sock --endpoint $$tcp \
	    --chunk 4 | tee $$dir/sweep.out; \
	  [ $$(grep -c "^ok " $$dir/sweep.out) -eq 4 ]; \
	  kill -TERM $$pid_unix; kill -TERM $$pid_tcp; \
	  wait $$pid_unix; wait $$pid_tcp'

# Cluster smoke: three real daemons sharing an HMAC secret — one on a
# Unix socket, two on TCP ephemeral ports — serve a 200-binding
# authenticated sweep while one TCP daemon is SIGKILLed mid-run.  The
# coordinator must detect the loss, re-dispatch the dead shard's
# unfinished bindings to the survivors, and still deliver every answer
# in input order with exit 0.  An unauthenticated ping on a TCP
# endpoint must be refused.  Then the sharded-batch path: two disjoint
# --shard runs into separate caches, "mira cache merge" unions them,
# and a full batch against the merged cache must run entirely warm
# ("0 analyzed").  Survivors must drain cleanly on SIGTERM.
CLUSTER_TIMEOUT ?= 120
cluster-smoke: build
	timeout --kill-after=10 $(CLUSTER_TIMEOUT) sh -ec ' \
	  exe=./_build/default/bin/mira.exe; \
	  dir=$$(mktemp -d); trap "rm -rf $$dir" EXIT; \
	  printf "cluster-smoke-secret\n" > $$dir/secret; \
	  sock=$$dir/mira.sock; \
	  $$exe corpus-dump $$dir/corpus; \
	  $$exe serve --endpoint unix:$$sock --auth-secret-file $$dir/secret \
	    --workers 4 & pid1=$$!; \
	  $$exe serve --endpoint tcp:127.0.0.1:0 --auth-secret-file $$dir/secret \
	    --workers 4 > $$dir/t1.log & pid2=$$!; \
	  $$exe serve --endpoint tcp:127.0.0.1:0 --auth-secret-file $$dir/secret \
	    --workers 4 > $$dir/t2.log & pid3=$$!; \
	  i=0; until $$exe client ping --endpoint unix:$$sock \
	      --auth-secret-file $$dir/secret >/dev/null 2>&1; do \
	    i=$$((i+1)); [ $$i -lt 100 ] || exit 1; sleep 0.05; done; \
	  for log in t1 t2; do i=0; \
	    until grep -q "listening on tcp:" $$dir/$$log.log; do \
	      i=$$((i+1)); [ $$i -lt 100 ] || exit 1; sleep 0.05; done; done; \
	  tcp1=$$(sed -n "s/^mira serve: listening on \(tcp:.*\)$$/\1/p" $$dir/t1.log); \
	  tcp2=$$(sed -n "s/^mira serve: listening on \(tcp:.*\)$$/\1/p" $$dir/t2.log); \
	  if $$exe client ping --endpoint $$tcp1 >/dev/null 2>&1; then \
	    echo "unauthenticated tcp ping was accepted" >&2; exit 1; fi; \
	  : > $$dir/sweep.txt; : > $$dir/expect.txt; \
	  i=0; while [ $$i -lt 200 ]; do i=$$((i+1)); \
	    echo "$$dir/corpus/saxpy.mc saxpy_chain n=$$((8+i)) reps=2" \
	      >> $$dir/sweep.txt; \
	    echo "ok saxpy.mc saxpy_chain n=$$((8+i)) reps=2" \
	      >> $$dir/expect.txt; done; \
	  ( sleep 0.1; kill -9 $$pid3 ) & killer=$$!; \
	  $$exe eval-sweep $$dir/sweep.txt \
	    --endpoint unix:$$sock --endpoint $$tcp1 --endpoint $$tcp2 \
	    --auth-secret-file $$dir/secret --chunk 16 --heartbeat-ms 300 \
	    > $$dir/sweep.out; \
	  wait $$killer; \
	  cut -d" " -f1-5 $$dir/sweep.out | diff - $$dir/expect.txt; \
	  $$exe batch $$dir/corpus --shard 1/2 --cache --cache-dir $$dir/ca >/dev/null; \
	  $$exe batch $$dir/corpus --shard 2/2 --cache --cache-dir $$dir/cb >/dev/null; \
	  $$exe cache merge $$dir/cm $$dir/ca $$dir/cb; \
	  $$exe batch $$dir/corpus --cache --cache-dir $$dir/cm \
	    | grep -q " 0 analyzed"; \
	  kill -TERM $$pid1 $$pid2; wait $$pid1; wait $$pid2'

# Watch-mode smoke, both surfaces end to end.  Daemon path: a real
# daemon watches a 3-file tree (a.mc's g is also defined in b.mc and
# called by b.mc's h; c.mc is unrelated), a cross-file signature edit
# to a.mc is reanalyzed over the wire, and the streamed frames must
# show the EXACT invalidation set — two edited functions in a.mc, one
# cross:sig:g dependent in b.mc, three binding frames, cross-files=1 —
# with session counters visible on stats.  CLI path: the same edit
# through `mira watch --check`, whose cold-vs-warm gate exits 3 on any
# byte divergence between the incremental model and a cold analysis.
WATCH_TIMEOUT ?= 60
watch-smoke: build
	timeout --kill-after=10 $(WATCH_TIMEOUT) sh -ec ' \
	  exe=./_build/default/bin/mira.exe; \
	  dir=$$(mktemp -d); trap "rm -rf $$dir" EXIT; \
	  sock=$$dir/mira.sock; \
	  printf "double g(double *a, int n) {\n  double s = 0.0;\n  for (int i = 0; i < n; i++) {\n    s = s + a[i];\n  }\n  return s;\n}\n\ndouble f(double *a, int n) {\n  double t = g(a, n);\n  return t + 1.0;\n}\n" > $$dir/a.mc; \
	  printf "double g(double *a, int n) {\n  double s = 0.0;\n  for (int i = 0; i < n; i++) {\n    s = s + 2.0 * a[i];\n  }\n  return s;\n}\n\ndouble h(double *a, int n) {\n  return g(a, n) * 0.5;\n}\n" > $$dir/b.mc; \
	  printf "int c_only(int n) {\n  int acc = 0;\n  for (int i = 0; i < n; i++) {\n    acc = acc + 3;\n  }\n  return acc;\n}\n" > $$dir/c.mc; \
	  $$exe serve --endpoint unix:$$sock & pid=$$!; \
	  i=0; until $$exe client ping --endpoint unix:$$sock >/dev/null 2>&1; do \
	    i=$$((i+1)); [ $$i -lt 100 ] || exit 1; sleep 0.05; done; \
	  for f in a b c; do \
	    $$exe client watch $$dir/$$f.mc --endpoint unix:$$sock >/dev/null; done; \
	  $$exe client stats --format json --endpoint unix:$$sock \
	    | grep -q "\"key\":\"watch-files\",\"value\":\"3\""; \
	  sed -e "s/double g(double \*a, int n) {/double g(double *a, int n, int reps) {/" \
	      -e "s/g(a, n);/g(a, n, 1);/" $$dir/a.mc > $$dir/a2.mc; \
	  cp $$dir/a2.mc $$dir/a.mc; \
	  $$exe client reanalyze $$dir/a.mc --endpoint unix:$$sock --format json \
	    > $$dir/rz.out; \
	  [ $$(grep -c "\"key\":\"binding\"" $$dir/rz.out) -eq 3 ]; \
	  [ $$(grep -c "\"key\":\"reason\",\"value\":\"edited\"" $$dir/rz.out) -eq 2 ]; \
	  [ $$(grep -c "\"key\":\"reason\",\"value\":\"cross:sig:g\"" $$dir/rz.out) -eq 1 ]; \
	  grep -q "\"key\":\"function\",\"value\":\"h\"" $$dir/rz.out; \
	  grep -q "\"key\":\"reanalyze-done\",\"value\":\"1\"" $$dir/rz.out; \
	  grep -q "\"key\":\"invalidated\",\"value\":\"3\"" $$dir/rz.out; \
	  grep -q "\"key\":\"cross-files\",\"value\":\"1\"" $$dir/rz.out; \
	  grep -q "\"key\":\"clean\",\"value\":\"0\"" $$dir/rz.out; \
	  $$exe client stats --format json --endpoint unix:$$sock \
	    | grep -q "\"key\":\"watch-cross\",\"value\":\"1\""; \
	  $$exe client forget $$dir/c.mc --endpoint unix:$$sock >/dev/null; \
	  kill -TERM $$pid; wait $$pid; \
	  sed -e "s/double g(double \*a, int n, int reps) {/double g(double *a, int n) {/" \
	      -e "s/g(a, n, 1);/g(a, n);/" $$dir/a.mc > $$dir/a1.mc; \
	  cp $$dir/a1.mc $$dir/a.mc; \
	  ( sleep 1; cp $$dir/a2.mc $$dir/a.mc; echo "reanalyze $$dir/a.mc"; \
	    sleep 1; echo quit ) \
	    | $$exe watch $$dir/a.mc $$dir/b.mc $$dir/c.mc --check \
	        --poll-ms 100000 > $$dir/watch.out; \
	  grep -q "invalidated=3 recomputed=3 cross-files=1" $$dir/watch.out; \
	  grep -q "h (cross:sig:g)" $$dir/watch.out'

bench:
	dune exec bench/main.exe -- --fast

# Serving-layer benchmark: boots an in-process daemon and drives the
# ping/eval/analyze mix at several connection counts, plus the
# max-idle-connections probe.  Writes its numbers to
# BENCH_serve.run.json; the checked-in BENCH_serve.json is the curated
# before/after record from the event-loop migration and is not
# overwritten here.
bench-serve: build
	dune exec bin/mira.exe -- bench-serve \
	  --connections 8 --connections 256 --connections 2000 \
	  --probe --json BENCH_serve.run.json

# CI smoke: a 0.3 s run at 2 connections whose only assertion is that
# the bench harness itself still works (exit 0, zero errors).
bench-serve-smoke: build
	timeout --kill-after=10 60 dune exec bin/mira.exe -- bench-serve --smoke

# Eval-layer benchmark: one-shot interpretation vs interpreter plan vs
# the compiled register program on five corpus kernels, every target
# cross-checked against the interpreter before timing.  Writes
# BENCH_eval.json — the number the "compiled model evaluation" work is
# held to (>= 50x sweep throughput over interpreted evaluation).
bench-eval: build
	dune exec bin/mira.exe -- bench-eval --json BENCH_eval.json

# CI smoke: tiny sweeps and timing windows; asserts the harness runs
# and that compiled == interpreted on the sampled points (the harness
# fails loudly on divergence), without turning timings into thresholds.
bench-eval-smoke: build
	timeout --kill-after=10 120 dune exec bin/mira.exe -- bench-eval --smoke

# Watch-mode benchmark: median edit-to-updated-model latency through a
# warm session vs the cold whole-corpus re-batch each edit used to
# cost, every warm model byte-checked against cold before timing.
# Writes BENCH_watch.json — the number the watch-mode work is held to
# (>= 3x; measured around two orders of magnitude).
bench-watch: build
	dune exec bin/mira.exe -- bench-watch --json BENCH_watch.json

# CI smoke: a few edits and cold samples; asserts the harness runs and
# that warm == cold on the sampled edits (the harness fails loudly on
# divergence), without turning timings into thresholds.
bench-watch-smoke: build
	timeout --kill-after=10 120 dune exec bin/mira.exe -- bench-watch --smoke

# Timing-only run (batch scaling + incremental reanalysis) that
# records its numbers in BENCH_batch.json for regression tracking.
bench-json:
	dune exec bench/main.exe -- --json

clean:
	dune clean
	rm -rf .mira-cache
