.PHONY: build test ci serve-smoke bench bench-json clean

build:
	dune build @all

test:
	dune runtest

# Reproducible CI entry point: full build plus the whole test suite
# with every randomized layer pinned — the differential fuzz oracle
# reads MIRA_FUZZ_SEED (its default is the same baked-in seed), the
# qcheck property suites read QCHECK_SEED, and the fault-injection
# harness reads MIRA_FAULT_SEED.  --force re-executes tests even when
# dune has them cached, so the pinned seeds really run.  The hard
# timeout turns any nontermination regression (a budget that stopped
# firing, a stuck worker) into a CI failure instead of a hang.
CI_TIMEOUT ?= 600
ci:
	dune build @all
	MIRA_FUZZ_SEED=20260806 QCHECK_SEED=20260806 MIRA_FAULT_SEED=20260806 \
	  timeout --kill-after=30 $(CI_TIMEOUT) dune runtest --force
	$(MAKE) serve-smoke

# Eval-service smoke: boot the real daemon, drive one client
# round-trip per verb, SIGTERM it and require a clean drained exit —
# all under a hard timeout so a wedged daemon fails CI instead of
# hanging it.
SERVE_TIMEOUT ?= 60
serve-smoke: build
	timeout --kill-after=10 $(SERVE_TIMEOUT) sh -ec ' \
	  exe=./_build/default/bin/mira.exe; \
	  dir=$$(mktemp -d); trap "rm -rf $$dir" EXIT; \
	  sock=$$dir/mira.sock; \
	  $$exe corpus-dump $$dir/corpus; \
	  $$exe serve --socket $$sock --cache --cache-dir $$dir/cache & pid=$$!; \
	  i=0; until $$exe client ping --socket $$sock >/dev/null 2>&1; do \
	    i=$$((i+1)); [ $$i -lt 100 ] || exit 1; sleep 0.05; done; \
	  $$exe client analyze $$dir/corpus/saxpy.mc --socket $$sock >/dev/null; \
	  $$exe client eval $$dir/corpus/stream.mc -f stream_triad -p n=1000 --socket $$sock; \
	  $$exe client stats --socket $$sock; \
	  kill -TERM $$pid; \
	  wait $$pid'

bench:
	dune exec bench/main.exe -- --fast

# Timing-only run (batch scaling + incremental reanalysis) that
# records its numbers in BENCH_batch.json for regression tracking.
bench-json:
	dune exec bench/main.exe -- --json

clean:
	dune clean
	rm -rf .mira-cache
