(* A tour of the paper's polyhedral examples and the annotation
   mechanism: the loop listings of §III-C (counts and lattice plots,
   Figure 4), the non-convex exception, and the annotated class
   example of Figure 5.

   Run with: dune exec examples/annotations_tour.exe *)

open Mira_symexpr
open Mira_poly

let p_int = Poly.of_int
let v = Poly.var

let show title dom =
  Printf.printf "%s\n" title;
  (match Count.count dom with
  | Count.Closed e -> Printf.printf "  closed form: %s\n" (Expr.to_string e)
  | Count.Deferred _ -> Printf.printf "  (deferred to enumeration)\n");
  Printf.printf "  points: %d\n" (Count.eval ~params:[] (Count.count dom));
  if List.length dom.Domain.levels = 2 then
    print_string
      (String.concat ""
         (List.map (fun l -> "  " ^ l ^ "\n")
            (String.split_on_char '\n' (Plot.render dom))))

let () =
  (* Listing 1: for (i = 0; i < 10; i++) *)
  let l1 =
    Domain.add_level Domain.empty (Domain.level "i" ~lo:(p_int 0) ~hi:(p_int 9))
  in
  show "Listing 1: basic loop" l1;

  (* Listing 2: dependent nest *)
  let l2 =
    Domain.add_level
      (Domain.add_level Domain.empty
         (Domain.level "i" ~lo:(p_int 1) ~hi:(p_int 4)))
      (Domain.level "j" ~lo:(Poly.add (v "i") Poly.one) ~hi:(p_int 6))
  in
  show "\nListing 2: dependent nest (Figure 4a)" l2;

  (* Listing 4: branch constraint *)
  let l4 = Domain.add_guard l2 (Domain.Ge (Poly.sub (v "j") (p_int 5))) in
  show "\nListing 4: if (j > 4) (Figure 4b)" l4;

  (* Listing 5: modulo holes *)
  let l5 = Domain.add_guard l2 (Domain.Mod_ne (v "j", 4)) in
  show "\nListing 5: if (j % 4 != 0) (Figure 4c)" l5;

  (* A parametric triangular nest keeps its symbols. *)
  let tri =
    Domain.add_level
      (Domain.add_level Domain.empty
         (Domain.level "i" ~lo:(p_int 0) ~hi:(Poly.sub (v "n") Poly.one)))
      (Domain.level "j" ~lo:(v "i") ~hi:(Poly.sub (v "n") Poly.one))
  in
  (match Count.count tri with
  | Count.Closed e ->
      Printf.printf "\nparametric triangular nest: %s\n" (Expr.to_string e)
  | Count.Deferred _ -> assert false);

  (* Listing 3: min/max bounds — the polyhedral exception.  Mira
     reports it and asks for an annotation. *)
  let listing3 =
    {|extern int min(int, int);
extern int max(int, int);
int f() {
  int c = 0;
  for (int i = 1; i <= 5; i++) {
    for (int j = min(6 - i, 3); j <= max(8 - i, i); j++) {
      c++;
    }
  }
  return c;
}|}
  in
  let m3 = Mira_core.Mira.analyze ~source_name:"listing3.mc" listing3 in
  print_endline "\nListing 3 (non-affine bounds) diagnostics:";
  List.iter
    (fun (f, w) -> Printf.printf "  [%s] %s\n" f w)
    (Mira_core.Mira.warnings m3);

  (* The annotated version models cleanly with a user-supplied
     iteration count. *)
  let annotated =
    {|extern int min(int, int);
extern int max(int, int);
int f() {
  int c = 0;
  for (int i = 1; i <= 5; i++) {
    #pragma @Annotation {iters:inner_trips}
    for (int j = min(6 - i, 3); j <= max(8 - i, i); j++) {
      c++;
    }
  }
  return c;
}|}
  in
  let ma = Mira_core.Mira.analyze ~source_name:"listing3_annotated.mc" annotated in
  Printf.printf "\nannotated Listing 3 model parameters: %s\n"
    (String.concat ", " (Mira_core.Mira.parameters ma ~fname:"f"));
  let counts =
    Mira_core.Mira.counts ma ~fname:"f" ~env:[ ("inner_trips", 5) ]
  in
  Printf.printf "with inner_trips = 5: %.0f total instructions\n"
    (Mira_core.Model_eval.total counts);

  (* Figure 5: the class example with an annotated inner bound. *)
  let fig5 =
    {|class A {
  int tag;
  double foo(double *a, double *b) {
    double s = 0.0;
    for (int i = 0; i < 16; i++) {
      #pragma @Annotation {lp_cond:y}
      for (int j = 0; j <= 0; j++) {
        s = s + a[i] * b[j];
      }
    }
    return s;
  }
};
int main() {
  double a[16];
  double b[16];
  A inst;
  double r = inst.foo(a, b);
  if (r < 0.0) {
    return 1;
  }
  return 0;
}|}
  in
  let m5 = Mira_core.Mira.analyze ~source_name:"fig5.mc" fig5 in
  print_endline "\nFigure 5: generated Python model:";
  print_string (Mira_core.Mira.python_model m5)
