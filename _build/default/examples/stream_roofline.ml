(* STREAM across architectures: evaluate the parametric STREAM model
   at the paper's sizes, then combine it with architecture description
   files — including one written to disk and loaded back — for
   roofline-style estimates.  Also shows the Haswell FP_INS story:
   dynamic FP measurement is impossible on `arya`, static analysis
   still delivers (paper §IV-D1).

   Run with: dune exec examples/stream_roofline.exe *)

let () =
  let m =
    Mira_core.Mira.analyze ~source_name:"stream.mc" Mira_corpus.Corpus.stream
  in

  (* Table III shape: the model evaluated at the paper's sizes. *)
  print_endline "STREAM FPI (model, ntimes = 10):";
  List.iter
    (fun n ->
      let fpi =
        Mira_core.Mira.fpi m ~fname:"stream_driver"
          ~env:[ ("n", n); ("ntimes", 10) ]
      in
      Printf.printf "  n = %-10d FPI = %s\n" n (Mira_core.Report.scientific fpi))
    [ 2_000_000; 50_000_000; 100_000_000 ];

  (* Per-kernel arithmetic intensity and roofline on both machines. *)
  let arch_list =
    [ Mira_arch.Archdesc.arya; Mira_arch.Archdesc.frankenstein ]
  in
  List.iter
    (fun (arch : Mira_arch.Archdesc.t) ->
      Printf.printf "\narchitecture %s (%d cores, %d-bit vectors):\n" arch.name
        arch.cores arch.vector_bits;
      List.iter
        (fun kernel ->
          let counts =
            Mira_core.Mira.counts m ~fname:kernel ~env:[ ("n", 1_000_000) ]
          in
          Printf.printf "  %-14s AI = %.3f   attainable %.1f GFLOP/s\n" kernel
            (Mira_core.Report.arithmetic_intensity arch counts)
            (Mira_core.Report.roofline_gflops arch counts))
        [ "stream_copy"; "stream_scale"; "stream_add"; "stream_triad" ])
    arch_list;

  (* A custom description file round-trips through disk. *)
  let custom =
    {|arch my_cluster_node
cores 64
cache_line 64
vector_bits 512
clock_ghz 2.0
peak_gflops 4096
mem_gbps 300
|}
  in
  let path = Filename.temp_file "mira_arch" ".desc" in
  let oc = open_out path in
  output_string oc custom;
  close_out oc;
  let arch = Mira_arch.Archdesc.load path in
  Sys.remove path;
  let counts =
    Mira_core.Mira.counts m ~fname:"stream_triad" ~env:[ ("n", 1_000_000) ]
  in
  Printf.printf "\ncustom %s: triad attainable %.1f GFLOP/s\n" arch.name
    (Mira_core.Report.roofline_gflops arch counts);

  (* The Haswell counter story: dynamic FP_INS is unavailable on arya,
     so the static model is the only source of FP counts there. *)
  let vm = Mira_corpus.Corpus.run_stream ~n:10_000 ~ntimes:2 in
  (match
     Mira_baselines.Tau.measure ~arch:Mira_arch.Archdesc.arya vm "FP_INS"
       "stream_driver"
   with
  | Error e ->
      Format.printf "\ndynamic on arya: %a@." Mira_baselines.Tau.pp_error e
  | Ok _ -> print_endline "unexpected: arya reported FP_INS");
  let static =
    Mira_core.Mira.fpi m ~fname:"stream_driver"
      ~env:[ ("n", 10_000); ("ntimes", 2) ]
  in
  Printf.printf "static model still answers: FPI = %s\n"
    (Mira_core.Report.scientific static)
