examples/parallel_cache_study.mli:
