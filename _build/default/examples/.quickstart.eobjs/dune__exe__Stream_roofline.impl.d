examples/stream_roofline.ml: Filename Format List Mira_arch Mira_baselines Mira_core Mira_corpus Printf Sys
