examples/minife_study.ml: Float List Mira_arch Mira_core Mira_corpus Mira_vm Option Printf
