examples/parallel_cache_study.ml: Array List Mira_arch Mira_core Mira_vm Option Printf
