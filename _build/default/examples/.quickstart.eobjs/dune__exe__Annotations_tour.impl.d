examples/annotations_tour.ml: Count Domain Expr List Mira_core Mira_poly Mira_symexpr Plot Poly Printf String
