examples/annotations_tour.mli:
