examples/minife_study.mli:
