examples/quickstart.ml: Array List Mira_core Mira_vm Option Printf
