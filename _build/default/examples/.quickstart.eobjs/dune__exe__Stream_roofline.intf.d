examples/stream_roofline.mli:
