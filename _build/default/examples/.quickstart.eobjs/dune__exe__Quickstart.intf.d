examples/quickstart.mli:
