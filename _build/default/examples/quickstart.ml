(* Quickstart: model a small kernel statically, evaluate the model for
   several input sizes, and check it against actually running the
   compiled binary.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|// daxpy with a strided tail loop
void daxpy(double *x, double *y, double a, int n) {
  for (int i = 0; i < n; i++) {
    y[i] = a * x[i] + y[i];
  }
}

double checksum(double *y, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += y[i];
  }
  return s;
}
|}

let () =
  (* 1. Analyze: parse the source, compile it, disassemble the object
     file, bridge the two ASTs and generate the model. *)
  let m = Mira_core.Mira.analyze ~source_name:"daxpy.mc" source in

  (* 2. The model is parametric in n — evaluate it for any size
     without running anything. *)
  print_endline "static FP-instruction predictions for daxpy:";
  List.iter
    (fun n ->
      let fpi = Mira_core.Mira.fpi m ~fname:"daxpy" ~env:[ ("n", n) ] in
      Printf.printf "  n = %-10d FPI = %s\n" n (Mira_core.Report.scientific fpi))
    [ 1_000; 1_000_000; 100_000_000 ];

  (* 3. Validate one point dynamically: run the same object file in
     the instrumented VM and compare. *)
  let n = 10_000 in
  let vm = Mira_vm.Vm.load_object m.input.object_bytes in
  let x = Mira_vm.Vm.alloc_floats vm (Array.make n 1.0) in
  let y = Mira_vm.Vm.alloc_floats vm (Array.make n 2.0) in
  ignore (Mira_vm.Vm.call vm "daxpy" [ Int x; Int y; Double 3.0; Int n ]);
  let p = Option.get (Mira_vm.Vm.profile_of vm "daxpy") in
  let dynamic =
    List.fold_left
      (fun acc mn -> acc +. float_of_int (Mira_vm.Vm.count_of p mn))
      0.0 Mira_core.Model_eval.fp_mnemonics
  in
  let static = Mira_core.Mira.fpi m ~fname:"daxpy" ~env:[ ("n", n) ] in
  Printf.printf "\nvalidation at n = %d: static %.0f vs dynamic %.0f (%s)\n" n
    static dynamic
    (if static = dynamic then "exact" else "MISMATCH");

  (* 4. The same model as generated Python (paper Figure 5). *)
  print_endline "\ngenerated Python model:";
  print_string (Mira_core.Python_emit.emit_function m.model "daxpy")
