(* The paper's miniFE study (§IV): per-function validation against
   dynamic measurement at a VM-friendly size, categorized instruction
   counts for cg_solve (Table II), the instruction distribution
   (Figure 6), and model-only extrapolation to the paper's grids.

   Run with: dune exec examples/minife_study.exe *)

let fp_count vm fname =
  match Mira_vm.Vm.profile_of vm fname with
  | None -> nan
  | Some p ->
      List.fold_left
        (fun acc mn -> acc +. float_of_int (Mira_vm.Vm.count_of p mn))
        0.0 Mira_core.Model_eval.fp_mnemonics

let () =
  let m =
    Mira_core.Mira.analyze ~source_name:"minife.mc" Mira_corpus.Corpus.minife
  in

  (* Validation at a small grid (Table V methodology). *)
  let nx, ny, nz = (8, 8, 8) in
  let max_iter = 25 in
  let run = Mira_corpus.Corpus.run_minife ~nx ~ny ~nz ~max_iter in
  let nrows = run.nrows in
  Printf.printf "miniFE %dx%dx%d, %d CG iterations (residual %.2e)\n\n" nx ny
    nz max_iter run.final_norm;
  Printf.printf "%-22s %12s %12s %8s\n" "function" "TAU (dyn)" "Mira (static)"
    "error";
  List.iter
    (fun (fname, env) ->
      let static = Mira_core.Mira.fpi m ~fname ~env in
      let p = Option.get (Mira_vm.Vm.profile_of run.vm fname) in
      let dyn = fp_count run.vm fname /. float_of_int p.calls in
      let static_str = Mira_core.Report.scientific static in
      Printf.printf "%-22s %12s %12s %7.2f%%\n" fname
        (Mira_core.Report.scientific dyn)
        static_str
        (Float.abs (dyn -. static) /. dyn *. 100.0))
    [
      ("waxpby", [ ("n", nrows) ]);
      ("matvec_std::apply", [ ("nrows", nrows) ]);
      ("cg_solve", [ ("nrows", nrows); ("max_iter", max_iter) ]);
    ];

  (* Model-only extrapolation to the paper's grids — no execution. *)
  print_endline "\nmodel-only FPI at the paper's sizes (200 iterations):";
  List.iter
    (fun (nx, ny, nz) ->
      let nrows = nx * ny * nz in
      let fpi =
        Mira_core.Mira.fpi m ~fname:"cg_solve"
          ~env:[ ("nrows", nrows); ("max_iter", 200) ]
      in
      Printf.printf "  %2dx%2dx%2d  cg_solve FPI = %s\n" nx ny nz
        (Mira_core.Report.scientific fpi))
    [ (30, 30, 30); (35, 40, 45) ];

  (* Table II + Figure 6 for cg_solve. *)
  let arch = Mira_arch.Archdesc.arya in
  let counts =
    Mira_core.Mira.counts m ~fname:"cg_solve"
      ~env:[ ("nrows", 27_000); ("max_iter", 200) ]
  in
  print_endline "\ncategorized instruction counts of cg_solve (Table II):";
  print_string (Mira_core.Report.table2 arch counts);
  print_endline "\ninstruction distribution (Figure 6):";
  print_string (Mira_core.Report.distribution arch counts);
  Printf.printf "\ninstruction-based arithmetic intensity: %.2f (paper: 0.53)\n"
    (Mira_core.Report.arithmetic_intensity arch counts)
