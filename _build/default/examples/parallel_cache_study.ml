(* The two extension features together: shared-memory characterization
   (the paper's stated future work, via {parallel:yes} annotations and
   Amdahl-style prediction) and the data-cache simulator (the dynamic
   counterpart of the model's memory-traffic estimates).

   Run with: dune exec examples/parallel_cache_study.exe *)

let src =
  {|// a relaxation solver whose sweep is a parallel region
void sweep(double *u, double *v, int n) {
  for (int i = 1; i < n - 1; i++) {
    v[i] = 0.25 * u[i - 1] + 0.5 * u[i] + 0.25 * u[i + 1];
  }
}

double residual(double *u, double *v, int n) {
  double r = 0.0;
  for (int i = 0; i < n; i++) {
    double d = u[i] - v[i];
    r += d * d;
  }
  return r;
}

double relax(double *u, double *v, int n, int steps) {
  double r = 0.0;
  for (int t = 0; t < steps; t++) {
    #pragma @Annotation {parallel:yes}
    for (int i = 1; i < n - 1; i++) {
      v[i] = 0.25 * u[i - 1] + 0.5 * u[i] + 0.25 * u[i + 1];
    }
    r = residual(u, v, n);
    #pragma @Annotation {parallel:yes}
    for (int i = 0; i < n; i++) {
      u[i] = v[i];
    }
  }
  return r;
}|}

let () =
  let m = Mira_core.Mira.analyze ~source_name:"relax.mc" src in
  let n = 1_000_000 and steps = 50 in
  let env = [ ("n", n); ("steps", steps) ] in

  (* 1. Shared-memory prediction: the sweeps are parallel, the
     residual reduction is serial — an Amdahl curve with a visible
     ceiling. *)
  let split = Mira_core.Mira.counts_split m ~fname:"relax" ~env in
  let serial_total =
    List.fold_left (fun a (_, (s, _)) -> a +. s) 0.0 split
  in
  let par_total = List.fold_left (fun a (_, (_, p)) -> a +. p) 0.0 split in
  Printf.printf
    "relax(n=%d, steps=%d): %.1f%% of instructions in parallel regions\n" n
    steps
    (100.0 *. par_total /. (serial_total +. par_total));
  Printf.printf "%-8s %-12s %-10s %-12s\n" "cores" "est. time" "speedup"
    "efficiency";
  List.iter
    (fun cores ->
      let e =
        Mira_core.Predict.parallel_estimate Mira_arch.Archdesc.arya ~cores
          split
      in
      Printf.printf "%-8d %-12.4f %-10.2f %-10.0f%%\n" cores
        e.seconds_parallel e.speedup (100.0 *. e.efficiency))
    [ 1; 2; 4; 8; 18; 36 ];
  print_endline
    "(the serial residual reduction caps the speedup: Amdahl in action)";

  (* 2. Cache behavior, measured: run a smaller instance in the VM
     with a simulated 256 KiB data cache. *)
  let n_small = 16_384 in
  let vm = Mira_vm.Vm.load_object m.input.object_bytes in
  let cache = Mira_vm.Cache.create ~size_bytes:(256 * 1024) () in
  Mira_vm.Vm.attach_cache vm cache;
  let u = Mira_vm.Vm.alloc_floats vm (Array.init n_small float_of_int) in
  let v = Mira_vm.Vm.zeros_f vm n_small in
  ignore
    (Mira_vm.Vm.call vm "relax" [ Int u; Int v; Int n_small; Int 4 ]);
  let s = Option.get (Mira_vm.Vm.cache_stats vm) in
  Printf.printf "\nsimulated cache (%s) on relax(n=%d, steps=4):\n"
    (Mira_vm.Cache.describe cache)
    n_small;
  Printf.printf "  accesses %d, hits %d, misses %d (hit rate %.1f%%)\n"
    s.accesses s.hits s.misses
    (100.0 *. Mira_vm.Cache.hit_rate s);
  Printf.printf "  measured miss traffic: %.0f bytes\n"
    (Mira_vm.Cache.miss_traffic_bytes cache);
  let counts =
    Mira_core.Mira.counts m ~fname:"relax"
      ~env:[ ("n", n_small); ("steps", 4) ]
  in
  Printf.printf "  static movsd traffic:  %.0f bytes (every access, no reuse)\n"
    (8.0 *. Mira_core.Model_eval.count counts "movsd")
