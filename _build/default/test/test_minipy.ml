open Mira_minipy

let run_expr body =
  let call = Minipy.run (Printf.sprintf "def f():\n    return %s\n" body) in
  call ("f", [])

let check_int msg expected v =
  match v with
  | Minipy.Int n -> Alcotest.check Alcotest.int msg expected n
  | _ -> Alcotest.failf "%s: expected int, got %s" msg (Format.asprintf "%a" Minipy.pp v)

let interp_tests =
  let open Alcotest in
  [
    test_case "arithmetic and precedence" `Quick (fun () ->
        check_int "1+2*3" 7 (run_expr "1 + 2 * 3");
        check_int "(1+2)*3" 9 (run_expr "(1 + 2) * 3");
        check_int "2**10" 1024 (run_expr "2 ** 10");
        check_int "-7//2 floors" (-4) (run_expr "(-7) // 2");
        check_int "7%3" 1 (run_expr "7 % 3"));
    test_case "conditional expression" `Quick (fun () ->
        check_int "true branch" 1 (run_expr "1 if 5 >= 3 else 2");
        check_int "false branch" 2 (run_expr "1 if 2 >= 3 else 2"));
    test_case "max/min" `Quick (fun () ->
        check_int "max" 9 (run_expr "max(3, 9, 4)");
        check_int "min" 3 (run_expr "min(3, 9, 4)"));
    test_case "dicts and get" `Quick (fun () ->
        let src =
          {|
def f():
    m = {}
    m["a"] = 3
    m["a"] = m.get("a", 0) + 4
    m["b"] = m.get("missing", 10)
    return m["a"] + m["b"]
|}
        in
        let call = Minipy.run src in
        check_int "7+10" 17 (call ("f", [])));
    test_case "functions and recursion" `Quick (fun () ->
        let src =
          {|
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
|}
        in
        let call = Minipy.run src in
        check_int "fib 10" 55 (call ("fib", [ Minipy.Int 10 ])));
    test_case "for over dict" `Quick (fun () ->
        let src =
          {|
def f():
    m = {}
    m["x"] = 2
    m["y"] = 3
    s = 0
    for k in m:
        s = s + m[k]
    return s
|}
        in
        check_int "sum values" 5 (Minipy.run src ("f", [])));
    test_case "while loop" `Quick (fun () ->
        let src =
          {|
def f(n):
    s = 0
    i = 0
    while i < n:
        s = s + i
        i = i + 1
    return s
|}
        in
        check_int "gauss" 4950 (Minipy.run src ("f", [ Minipy.Int 100 ])));
    test_case "handle_function_call idiom" `Quick (fun () ->
        let src =
          {|
def handle_function_call(caller, callee, iters):
    for k in callee:
        caller[k] = caller.get(k, 0) + callee[k] * iters
    return caller

def inner():
    m = {}
    m["addsd"] = 5
    return m

def outer(n):
    m = {}
    m["movq"] = 1
    handle_function_call(m, inner(), n)
    return m
|}
        in
        let call = Minipy.run src in
        let counts = Minipy.dict_counts (call ("outer", [ Minipy.Int 7 ])) in
        check (float 1e-9) "addsd scaled" 35.0 (List.assoc "addsd" counts);
        check (float 1e-9) "movq" 1.0 (List.assoc "movq" counts));
    test_case "errors are reported" `Quick (fun () ->
        (match run_expr "1 // 0" with
        | exception Minipy.Error _ -> ()
        | _ -> fail "expected error");
        match Minipy.run "def f():\n    return undefined_name\n" ("f", []) with
        | exception Minipy.Error _ -> ()
        | _ -> fail "expected error");
  ]

(* The real point: the emitted Python model, executed by minipy, must
   agree with the internal evaluator. *)
let crosscheck name src fname env =
  let m = Mira_core.Mira.analyze ~source_name:(name ^ ".mc") src in
  let internal = Mira_core.Mira.counts m ~fname ~env in
  let python = Mira_core.Mira.python_model m in
  let call = Minipy.run python in
  let fm = Mira_core.Model_ir.find_exn m.model fname in
  let args =
    List.map
      (fun p ->
        match List.assoc_opt p env with
        | Some v -> Minipy.Int v
        | None -> Alcotest.failf "missing env for %s" p)
      fm.mf_params
  in
  let result = call (Mira_core.Model_ir.python_name fm, args) in
  let py_counts = Minipy.dict_counts result in
  (* same mnemonics, same counts *)
  let all =
    List.sort_uniq compare (List.map fst internal @ List.map fst py_counts)
  in
  List.iter
    (fun mn ->
      let a = Mira_core.Model_eval.count internal mn in
      let b = Option.value ~default:0.0 (List.assoc_opt mn py_counts) in
      Alcotest.check (Alcotest.float 1e-6)
        (Printf.sprintf "%s/%s: %s" name fname mn)
        a b)
    all

let crosscheck_tests =
  let open Alcotest in
  [
    test_case "emitted Python = internal eval (daxpy)" `Quick (fun () ->
        crosscheck "daxpy"
          {|void daxpy(double *x, double *y, double a, int n) {
              for (int i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
            }|}
          "daxpy"
          [ ("n", 1234) ]);
    test_case "emitted Python = internal eval (stream driver)" `Quick
      (fun () ->
        crosscheck "stream" Mira_corpus.Corpus.stream "stream_driver"
          [ ("n", 5000); ("ntimes", 7) ]);
    test_case "emitted Python = internal eval (dgemm)" `Quick (fun () ->
        crosscheck "dgemm" Mira_corpus.Corpus.dgemm "dgemm" [ ("n", 37) ]);
    test_case "emitted Python = internal eval (triangular + branch)" `Quick
      (fun () ->
        crosscheck "tri"
          {|int f(int n) {
              int c = 0;
              for (int i = 0; i < n; i++)
                for (int j = i; j < n; j++)
                  if (j > i + 2)
                    c++;
              return c;
            }|}
          "f"
          [ ("n", 19) ]);
    test_case "emitted Python = internal eval (class example, annotated)"
      `Quick (fun () ->
        crosscheck "fig5"
          {|class A {
              int tag;
              double foo(double *a, double *b) {
                double s = 0.0;
                for (int i = 0; i < 16; i++) {
                  #pragma @Annotation {lp_cond:y}
                  for (int j = 0; j <= 0; j++) {
                    s = s + a[i] * b[j];
                  }
                }
                return s;
              }
            };
            int main() { A inst; double a[4]; double b[4]; double r = inst.foo(a, b); if (r < 0.0) { return 1; } return 0; }|}
          "A::foo"
          [ ("y", 11) ]);
  ]

(* Property: Expr.to_python rendered into a Python function and run by
   minipy computes exactly what Expr.eval_int computes, for random
   integer-coefficient symbolic expressions. *)
let expr_gen rng depth =
  let open Mira_symexpr in
  let rec poly d =
    if d = 0 then
      match Random.State.int rng 3 with
      | 0 -> Poly.of_int (Random.State.int rng 21 - 10)
      | 1 -> Poly.var "a"
      | _ -> Poly.var "b"
    else
      match Random.State.int rng 3 with
      | 0 -> Poly.add (poly (d - 1)) (poly (d - 1))
      | 1 -> Poly.sub (poly (d - 1)) (poly (d - 1))
      | _ -> Poly.mul (poly (d - 1)) (poly 0)
  in
  let rec expr d =
    if d = 0 then Expr.poly (poly 1)
    else
      match Random.State.int rng 6 with
      | 0 -> Expr.add (expr (d - 1)) (expr (d - 1))
      | 1 -> Expr.mul (expr (d - 1)) (Expr.poly (poly 0))
      | 2 -> Expr.max_ (expr (d - 1)) (expr (d - 1))
      | 3 -> Expr.min_ (expr (d - 1)) (expr (d - 1))
      | 4 -> Expr.fdiv (expr (d - 1)) (1 + Random.State.int rng 5)
      | _ -> Expr.if_ (poly 1) (expr (d - 1)) (expr (d - 1))
  in
  expr depth

let python_semantics_tests =
  let open Alcotest in
  [
    test_case "200 random exprs: to_python via minipy = eval_int" `Quick
      (fun () ->
        let rng = Random.State.make [| 4242 |] in
        for i = 1 to 200 do
          let e = expr_gen rng 3 in
          let a = Random.State.int rng 15 - 5 in
          let b = Random.State.int rng 15 - 5 in
          let expected =
            Mira_symexpr.Expr.eval_int
              (function "a" -> a | "b" -> b | _ -> assert false)
              e
          in
          let py =
            Printf.sprintf "def f(a, b):\n    return %s\n"
              (Mira_symexpr.Expr.to_python e)
          in
          match Minipy.run py ("f", [ Minipy.Int a; Minipy.Int b ]) with
          | Minipy.Int got ->
              if got <> expected then
                failf "case %d (a=%d, b=%d): ocaml %d vs python %d\n%s" i a b
                  expected got py
          | v ->
              failf "case %d: python returned %s" i
                (Format.asprintf "%a" Minipy.pp v)
          | exception Minipy.Error msg -> failf "case %d: %s\n%s" i msg py
        done);
  ]

let () =
  Alcotest.run "minipy"
    [
      ("interp", interp_tests);
      ("crosscheck", crosscheck_tests);
      ("python-semantics", python_semantics_tests);
    ]
