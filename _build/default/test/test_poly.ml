open Mira_symexpr
open Mira_poly

let p_int = Poly.of_int
let v = Poly.var

(* The paper's Listing 1: for (i = 0; i < 10; i++), i.e. 0 <= i <= 9. *)
let listing1 =
  Domain.add_level Domain.empty
    (Domain.level "i" ~lo:(p_int 0) ~hi:(p_int 9))

(* Listing 2: for (i = 1; i <= 4; i++) for (j = i+1; j <= 6; j++). *)
let listing2 =
  let d =
    Domain.add_level Domain.empty
      (Domain.level "i" ~lo:(p_int 1) ~hi:(p_int 4))
  in
  Domain.add_level d
    (Domain.level "j" ~lo:(Poly.add (v "i") Poly.one) ~hi:(p_int 6))

(* Listing 4: Listing 2 plus `if (j > 4)`, i.e. j - 5 >= 0. *)
let listing4 =
  Domain.add_guard listing2 (Domain.Ge (Poly.sub (v "j") (p_int 5)))

(* Listing 5: Listing 2 plus `if (j % 4 != 0)`. *)
let listing5 = Domain.add_guard listing2 (Domain.Mod_ne (v "j", 4))

let listing5_eq = Domain.add_guard listing2 (Domain.Mod_eq (v "j", 4))

(* Parametric STREAM-style loop: for (i = 0; i < n; i++). *)
let rect_n =
  Domain.add_level Domain.empty
    (Domain.level "i" ~lo:(p_int 0) ~hi:(Poly.sub (v "n") Poly.one))

(* Parametric triangular nest: i in 0..n-1, j in i..n-1. *)
let tri_n =
  let d = rect_n in
  Domain.add_level d
    (Domain.level "j" ~lo:(v "i") ~hi:(Poly.sub (v "n") Poly.one))

let closed_exn = function
  | Count.Closed e -> e
  | Count.Deferred _ -> Alcotest.fail "expected closed-form count"

let count_at params dom = Count.eval ~params (Count.count dom)

let domain_tests =
  let open Alcotest in
  [
    test_case "validate accepts affine nests" `Quick (fun () ->
        check bool "listing2 valid" true (Domain.validate listing2 = Ok ());
        check bool "tri_n valid" true (Domain.validate tri_n = Ok ()));
    test_case "validate rejects non-affine bound" `Quick (fun () ->
        let bad =
          Domain.add_level rect_n
            (Domain.level "j" ~lo:(p_int 0) ~hi:(Poly.mul (v "i") (v "i")))
        in
        match Domain.validate bad with
        | Error [ Domain.Nonaffine_bound { var = "j"; _ } ] -> ()
        | _ -> fail "expected Nonaffine_bound for j");
    test_case "validate rejects bad step and duplicate var" `Quick (fun () ->
        let bad =
          Domain.add_level rect_n
            (Domain.level ~step:0 "i" ~lo:(p_int 0) ~hi:(p_int 5))
        in
        match Domain.validate bad with
        | Error errs ->
            check int "two violations" 2 (List.length errs)
        | Ok () -> fail "expected violations");
    test_case "parameters excludes loop vars" `Quick (fun () ->
        check (list string) "params of tri_n" [ "n" ] (Domain.parameters tri_n);
        check (list string) "params of listing2" []
          (Domain.parameters listing2));
    test_case "allows polynomial parameter bounds" `Quick (fun () ->
        (* for i = 0 .. n*m - 1 is affine in i though quadratic in params *)
        let d =
          Domain.add_level Domain.empty
            (Domain.level "i" ~lo:(p_int 0)
               ~hi:(Poly.sub (Poly.mul (v "n") (v "m")) Poly.one))
        in
        check bool "valid" true (Domain.validate d = Ok ()));
  ]

let enumerate_tests =
  let open Alcotest in
  [
    test_case "listing1 has 10 points" `Quick (fun () ->
        check int "count" 10 (Enumerate.count ~params:[] listing1));
    test_case "listing2 has 14 points" `Quick (fun () ->
        check int "count" 14 (Enumerate.count ~params:[] listing2));
    test_case "listing4 (if j > 4) has 8 points" `Quick (fun () ->
        check int "count" 8 (Enumerate.count ~params:[] listing4));
    test_case "listing5 (j % 4 != 0) has 11 points" `Quick (fun () ->
        check int "count" 11 (Enumerate.count ~params:[] listing5));
    test_case "points are ordered lexicographically" `Quick (fun () ->
        let pts = Enumerate.points ~params:[] listing2 in
        check int "14 points" 14 (List.length pts);
        check bool "first point (1,2)" true (List.hd pts = [| 1; 2 |]));
    test_case "parametric evaluation" `Quick (fun () ->
        check int "rect 7" 7 (Enumerate.count ~params:[ ("n", 7) ] rect_n);
        check int "tri 5" 15 (Enumerate.count ~params:[ ("n", 5) ] tri_n));
    test_case "step respects stride" `Quick (fun () ->
        let d =
          Domain.add_level Domain.empty
            (Domain.level ~step:3 "i" ~lo:(p_int 0) ~hi:(p_int 10))
        in
        check int "0,3,6,9" 4 (Enumerate.count ~params:[] d));
    test_case "negative modulo handled" `Quick (fun () ->
        let d =
          Domain.add_guard
            (Domain.add_level Domain.empty
               (Domain.level "i" ~lo:(p_int (-6)) ~hi:(p_int 6)))
            (Domain.Mod_eq (v "i", 4))
        in
        (* -4, 0, 4 *)
        check int "multiples of 4" 3 (Enumerate.count ~params:[] d));
  ]

let count_tests =
  let open Alcotest in
  [
    test_case "listing1 closed form = 10" `Quick (fun () ->
        let e = closed_exn (Count.count listing1) in
        check bool "constant 10" true (Expr.equal e (Expr.of_int 10)));
    test_case "listing2 closed form = 14" `Quick (fun () ->
        let e = closed_exn (Count.count listing2) in
        check bool "constant 14" true (Expr.equal e (Expr.of_int 14)));
    test_case "listing4 closed form = 8" `Quick (fun () ->
        check int "count" 8 (count_at [] listing4));
    test_case "listing5 via complement = 11" `Quick (fun () ->
        check int "count" 11 (count_at [] listing5);
        check int "mod-eq part" 3 (count_at [] listing5_eq));
    test_case "rectangular parametric count is n" `Quick (fun () ->
        let e = closed_exn (Count.count rect_n) in
        check bool "= n" true (Expr.equal e (Expr.var "n")));
    test_case "triangular parametric count is n(n+1)/2" `Quick (fun () ->
        let e = closed_exn (Count.count tri_n) in
        let expected =
          Expr.poly
            (Poly.scale (Ratio.make 1 2)
               (Poly.mul (v "n") (Poly.add (v "n") Poly.one)))
        in
        check bool "= n(n+1)/2" true (Expr.equal e expected));
    test_case "3-deep rectangular nest n*m*k" `Quick (fun () ->
        let d =
          List.fold_left Domain.add_level Domain.empty
            [
              Domain.level "i" ~lo:(p_int 0) ~hi:(Poly.sub (v "n") Poly.one);
              Domain.level "j" ~lo:(p_int 0) ~hi:(Poly.sub (v "m") Poly.one);
              Domain.level "k" ~lo:(p_int 0) ~hi:(Poly.sub (v "p") Poly.one);
            ]
        in
        let e = closed_exn (Count.count d) in
        check int "4*5*6" 120
          (Expr.eval_int
             (function "n" -> 4 | "m" -> 5 | "p" -> 6 | _ -> assert false)
             e));
    test_case "strided loop count" `Quick (fun () ->
        let d =
          Domain.add_level Domain.empty
            (Domain.level ~step:3 "i" ~lo:(p_int 0) ~hi:(p_int 10))
        in
        check int "4 iterations" 4 (count_at [] d));
    test_case "parametric guard splits on parameter" `Quick (fun () ->
        (* i in 0..9, constraint i <= n: count = min(10, n+1) clamped *)
        let d =
          Domain.add_guard
            (Domain.add_level Domain.empty
               (Domain.level "i" ~lo:(p_int 0) ~hi:(p_int 9)))
            (Domain.Ge (Poly.sub (v "n") (v "i")))
        in
        check int "n=3 -> 4" 4 (count_at [ ("n", 3) ] d);
        check int "n=20 -> 10" 10 (count_at [ ("n", 20) ] d);
        check int "n=-1 -> 0" 0 (count_at [ ("n", -1) ] d));
    test_case "branch constraint inside parametric nest" `Quick (fun () ->
        (* i in 1..n, j in i+1..6, if j > 4 — listing 4 with parametric
           outer bound. *)
        let d =
          let d0 =
            Domain.add_level Domain.empty
              (Domain.level "i" ~lo:(p_int 1) ~hi:(v "n"))
          in
          let d1 =
            Domain.add_level d0
              (Domain.level "j" ~lo:(Poly.add (v "i") Poly.one) ~hi:(p_int 6))
          in
          Domain.add_guard d1 (Domain.Ge (Poly.sub (v "j") (p_int 5)))
        in
        check int "n=4 -> 8" 8 (count_at [ ("n", 4) ] d);
        let brute n =
          Enumerate.count ~params:[ ("n", n) ]
            {
              d with
              levels = d.levels;
            }
        in
        List.iter
          (fun n ->
            check int (Printf.sprintf "n=%d matches enumeration" n) (brute n)
              (count_at [ ("n", n) ] d))
          [ 1; 2; 3; 4; 5 ]);
    test_case "mira count matches paper fig 4 narrative" `Quick (fun () ->
        (* Introducing the constraint shrinks the domain: 14 -> 8. *)
        check bool "smaller" true (count_at [] listing4 < count_at [] listing2));
  ]

(* Property: for random affine (possibly triangular) 2-nests with a
   random affine guard, the symbolic count evaluated at the parameters
   equals brute-force enumeration. *)
let random_nest_gen =
  let open QCheck.Gen in
  let* lo1 = int_range (-3) 3 in
  let* span1 = int_range 0 8 in
  let* dep = int_range (-1) 1 in
  let* off = int_range (-2) 4 in
  let* span2 = int_range 0 8 in
  let* guard_c1 = int_range (-1) 1 in
  let* guard_c2 = int_range (-1) 1 in
  let* guard_k = int_range (-6) 6 in
  let* with_guard = bool in
  let lo2 = Poly.add (Poly.scale (Ratio.of_int dep) (v "i")) (p_int off) in
  let hi2 = Poly.add lo2 (p_int span2) in
  (* hi2 - lo2 = span2 >= 0, so inner range is always non-empty: the
     assume-nonempty convention holds by construction. *)
  let d =
    List.fold_left Domain.add_level Domain.empty
      [
        Domain.level "i" ~lo:(p_int lo1) ~hi:(p_int (lo1 + span1));
        Domain.level "j" ~lo:lo2 ~hi:hi2;
      ]
  in
  let d =
    if with_guard then
      Domain.add_guard d
        (Domain.Ge
           (Poly.sum
              [
                Poly.scale (Ratio.of_int guard_c1) (v "i");
                Poly.scale (Ratio.of_int guard_c2) (v "j");
                p_int guard_k;
              ]))
    else d
  in
  return d

let nest_arb =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" Domain.pp d)
    random_nest_gen

(* Three-level nests with up to two guards: deeper stress for the
   interval-splitting machinery. *)
let random_nest3_gen =
  let open QCheck.Gen in
  let* lo1 = int_range (-2) 2 in
  let* span1 = int_range 0 5 in
  let* dep2 = int_range (-1) 1 in
  let* off2 = int_range (-2) 3 in
  let* span2 = int_range 0 5 in
  let* dep3a = int_range (-1) 1 in
  let* dep3b = int_range (-1) 1 in
  let* off3 = int_range (-2) 3 in
  let* span3 = int_range 0 5 in
  let* nguards = int_range 0 2 in
  let* coeffs =
    list_size (pure (3 * nguards)) (int_range (-1) 1)
  in
  let* ks = list_size (pure (max 1 nguards)) (int_range (-6) 6) in
  let lo2 = Poly.add (Poly.scale (Ratio.of_int dep2) (v "i")) (p_int off2) in
  let lo3 =
    Poly.sum
      [ Poly.scale (Ratio.of_int dep3a) (v "i");
        Poly.scale (Ratio.of_int dep3b) (v "j"); p_int off3 ]
  in
  let d =
    List.fold_left Domain.add_level Domain.empty
      [
        Domain.level "i" ~lo:(p_int lo1) ~hi:(p_int (lo1 + span1));
        Domain.level "j" ~lo:lo2 ~hi:(Poly.add lo2 (p_int span2));
        Domain.level "k" ~lo:lo3 ~hi:(Poly.add lo3 (p_int span3));
      ]
  in
  let rec add_guards d idx =
    if idx >= nguards then d
    else
      let c1 = List.nth coeffs (3 * idx)
      and c2 = List.nth coeffs ((3 * idx) + 1)
      and c3 = List.nth coeffs ((3 * idx) + 2) in
      let g =
        Poly.sum
          [ Poly.scale (Ratio.of_int c1) (v "i");
            Poly.scale (Ratio.of_int c2) (v "j");
            Poly.scale (Ratio.of_int c3) (v "k");
            p_int (List.nth ks idx) ]
      in
      add_guards (Domain.add_guard d (Domain.Ge g)) (idx + 1)
  in
  return (add_guards d 0)

let nest3_arb =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" Domain.pp d)
    random_nest3_gen

let count_props =
  [
    QCheck.Test.make ~name:"symbolic count = enumeration" ~count:500 nest_arb
      (fun d ->
        match Count.count d with
        | Count.Deferred _ -> QCheck.assume_fail ()
        | Count.Closed e ->
            Expr.eval_int (fun _ -> assert false) e
            = Enumerate.count ~params:[] d);
    QCheck.Test.make ~name:"deferred eval also matches enumeration" ~count:100
      nest_arb (fun d ->
        Count.eval ~params:[] (Count.count d) = Enumerate.count ~params:[] d);
    QCheck.Test.make ~name:"3-level nests with guards = enumeration"
      ~count:300 nest3_arb (fun d ->
        Count.eval ~params:[] (Count.count d) = Enumerate.count ~params:[] d);
    QCheck.Test.make ~name:"3-level closed forms are exact" ~count:300
      nest3_arb (fun d ->
        match Count.count d with
        | Count.Deferred _ -> QCheck.assume_fail ()
        | Count.Closed e ->
            Expr.eval_int (fun _ -> assert false) e
            = Enumerate.count ~params:[] d);
  ]

let plot_tests =
  let open Alcotest in
  [
    test_case "listing2 lattice plot shape" `Quick (fun () ->
        let s = Plot.render listing2 in
        (* 14 stars *)
        let stars = String.fold_left (fun n c -> if c = '*' then n + 1 else n) 0 s in
        check int "stars" 14 stars);
    test_case "listing5 plot shows holes" `Quick (fun () ->
        let s = Plot.render listing5 in
        let stars = String.fold_left (fun n c -> if c = '*' then n + 1 else n) 0 s in
        let dots = String.fold_left (fun n c -> if c = '.' then n + 1 else n) 0 s in
        check int "stars" 11 stars;
        check bool "has excluded points" true (dots > 0));
    test_case "render rejects non-2d domains" `Quick (fun () ->
        check_raises "1d"
          (Invalid_argument "Plot.render: exactly two loop levels required")
          (fun () -> ignore (Plot.render listing1)));
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "poly"
    [
      ("domain", domain_tests);
      ("enumerate", enumerate_tests);
      ("count", count_tests);
      ("count-props", q count_props);
      ("plot", plot_tests);
    ]
