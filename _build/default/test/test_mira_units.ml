(* Unit tests for the core's supporting pieces: the bridge, model IR,
   reporting, architecture descriptions, baselines and the vectorizer. *)

let contains hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ---------- bridge ---------- *)

let bridge_tests =
  let open Alcotest in
  let open Mira_srclang in
  [
    test_case "claims are exclusive and exhaustive" `Quick (fun () ->
        let items =
          [|
            (Loc.pos 1 1, "movq"); (Loc.pos 1 5, "addq"); (Loc.pos 2 1, "movsd");
            (Loc.pos 2 9, "movsd"); (Loc.pos 3 1, "ret");
          |]
        in
        let b = Mira_core.Bridge.of_items [ ("f", items) ] in
        let fb = Mira_core.Bridge.fn_exn b "f" in
        check int "size" 5 (Mira_core.Bridge.size fb);
        let line1 =
          Mira_core.Bridge.claim_span fb
            (Loc.span (Loc.pos 1 1) (Loc.pos 1 80))
        in
        check (list (pair string int)) "line 1"
          [ ("addq", 1); ("movq", 1) ]
          (List.sort compare line1);
        (* overlapping second claim must not double count *)
        let again =
          Mira_core.Bridge.claim_span fb
            (Loc.span (Loc.pos 1 1) (Loc.pos 2 80))
        in
        check (list (pair string int)) "only line 2 remains"
          [ ("movsd", 2) ]
          (List.sort compare again);
        check int "one unclaimed" 1 (Mira_core.Bridge.unclaimed fb);
        let rest = Mira_core.Bridge.claim_rest fb in
        check (list (pair string int)) "rest" [ ("ret", 1) ] rest;
        check int "none unclaimed" 0 (Mira_core.Bridge.unclaimed fb);
        Mira_core.Bridge.reset fb;
        check int "reset restores" 5
          (Mira_core.Bridge.size fb - Mira_core.Bridge.unclaimed fb + 5 - 5
          |> fun _ -> Mira_core.Bridge.unclaimed fb));
    test_case "every instruction of an analyzed function is attributed"
      `Quick (fun () ->
        (* bridging invariant: after model generation nothing remains
           unclaimed (verified indirectly: predicted totals at mult=1
           match function size for straight-line code) *)
        let src = "int f(int a) { int b = a + 1; int c = b * 3; return c - a; }" in
        let m = Mira_core.Mira.analyze ~source_name:"s.mc" src in
        let counts = Mira_core.Mira.counts m ~fname:"f" ~env:[] in
        let total = Mira_core.Model_eval.total counts in
        let fd =
          Mira_visa.Program.find_exn
            (Mira_visa.Objfile.decode m.input.object_bytes) "f"
        in
        check (float 0.0) "all instructions modeled"
          (float_of_int (Array.length fd.insns))
          total);
  ]

(* ---------- arch descriptions ---------- *)

let arch_tests =
  let open Alcotest in
  let open Mira_arch in
  [
    test_case "presets are valid and complete" `Quick (fun () ->
        List.iter
          (fun a ->
            match Archdesc.validate a with
            | Ok () -> ()
            | Error es -> failf "%s: %s" a.Archdesc.name (String.concat "; " es))
          [ Archdesc.arya; Archdesc.frankenstein ]);
    test_case "64 categories, as the paper describes" `Quick (fun () ->
        check bool "at least 64" true (Archdesc.n_categories Archdesc.arya >= 64));
    test_case "text round-trip" `Quick (fun () ->
        let a = Archdesc.arya in
        let b = Archdesc.parse (Archdesc.to_text a) in
        check string "name" a.name b.name;
        check int "cores" a.cores b.cores;
        check int "vector" a.vector_bits b.vector_bits;
        check bool "counters" true
          (a.unavailable_counters = b.unavailable_counters);
        check bool "categories" true (a.categories = b.categories);
        check bool "groups" true (a.groups = b.groups));
    test_case "parse errors carry line numbers" `Quick (fun () ->
        (match Archdesc.parse "arch x\nwat 3\n" with
        | exception Archdesc.Parse_error (_, 2) -> ()
        | exception Archdesc.Parse_error (_, l) -> failf "wrong line %d" l
        | _ -> fail "expected parse error");
        match Archdesc.parse "cores many\n" with
        | exception Archdesc.Parse_error (_, 1) -> ()
        | _ -> fail "expected parse error");
    test_case "counter availability (the Haswell FP_INS story)" `Quick
      (fun () ->
        check bool "arya lacks FP_INS" false
          (Archdesc.counter_available Archdesc.arya "FP_INS");
        check bool "frankenstein has FP_INS" true
          (Archdesc.counter_available Archdesc.frankenstein "FP_INS"));
    test_case "aggregation into the 7 display groups" `Quick (fun () ->
        let counts = [ ("addq", 10); ("movsd", 5); ("mulsd", 3); ("jmp", 2) ] in
        let groups = Archdesc.aggregate Archdesc.arya counts in
        check int "all 7 groups present" 7 (List.length groups);
        check int "int arith" 10
          (List.assoc "Integer arithmetic instruction" groups);
        check int "sse2 move" 5
          (List.assoc "SSE2 data movement instruction" groups);
        check int "sse2 arith" 3
          (List.assoc "SSE2 packed arithmetic instruction" groups));
    test_case "every ISA mnemonic categorized" `Quick (fun () ->
        List.iter
          (fun m ->
            check bool (m ^ " categorized") true
              (Archdesc.group_of_mnemonic Archdesc.arya m <> None))
          Mira_visa.Isa.all_mnemonics);
    test_case "vector lanes" `Quick (fun () ->
        check int "arya 256-bit = 4 doubles" 4
          (Archdesc.vector_lanes Archdesc.arya);
        check int "frankenstein 128-bit = 2" 2
          (Archdesc.vector_lanes Archdesc.frankenstein));
  ]

(* ---------- reporting ---------- *)

let report_tests =
  let open Alcotest in
  [
    test_case "scientific formatting" `Quick (fun () ->
        check string "1.93E8" "1.93E8" (Mira_core.Report.scientific 1.93e8);
        check string "8.239E7" "8.239E7" (Mira_core.Report.scientific 8.239e7);
        check string "zero" "0" (Mira_core.Report.scientific 0.0));
    test_case "arithmetic intensity" `Quick (fun () ->
        let counts = [ ("addsd", 193.0); ("movsd", 367.0) ] in
        check (float 1e-6) "0.526" (193.0 /. 367.0)
          (Mira_core.Report.arithmetic_intensity Mira_arch.Archdesc.arya counts));
    test_case "table2 skips empty groups, distribution sums to 100%" `Quick
      (fun () ->
        let counts = [ ("addsd", 60.0); ("movsd", 40.0) ] in
        let t = Mira_core.Report.table2 Mira_arch.Archdesc.arya counts in
        check bool "no integer row" false (contains t "Integer arithmetic");
        let d = Mira_core.Report.distribution Mira_arch.Archdesc.arya counts in
        check bool "60%" true (contains d "60.0%");
        check bool "40%" true (contains d "40.0%"));
    test_case "roofline saturates at peak" `Quick (fun () ->
        (* enormous AI: compute bound *)
        let counts = [ ("addsd", 1e9); ("movsd", 1.0) ] in
        check (float 1e-6) "peak" Mira_arch.Archdesc.arya.peak_gflops
          (Mira_core.Report.roofline_gflops Mira_arch.Archdesc.arya counts));
  ]

(* ---------- PBound baseline ---------- *)

let pbound_tests =
  let open Alcotest in
  [
    test_case "triad source ops: 2n flops, 3n memory refs" `Quick (fun () ->
        let model =
          Mira_baselines.Pbound.analyze ~source_name:"t.mc"
            {|void triad(double *a, double *b, double *c, double s, int n) {
                for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }
              }|}
        in
        let counts =
          Mira_core.Model_eval.eval model ~fname:"triad" ~env:[ ("n", 100) ]
        in
        check (float 0.0) "flops" 200.0 (Mira_baselines.Pbound.flops counts);
        check (float 0.0) "mem" 300.0 (Mira_baselines.Pbound.mem_refs counts));
    test_case "PBound misses compiler effects that Mira sees" `Quick
      (fun () ->
        (* folded constant: source has a multiply, -O1 binary does not *)
        let src =
          {|double f(double *a, int n) {
              double s = 0.0;
              for (int i = 0; i < n; i++) { s += a[i] * (2.0 * 3.0); }
              return s;
            }|}
        in
        let pb = Mira_baselines.Pbound.analyze ~source_name:"f.mc" src in
        let pbc = Mira_core.Model_eval.eval pb ~fname:"f" ~env:[ ("n", 50) ] in
        let m = Mira_core.Mira.analyze ~source_name:"f.mc" src in
        let mc = Mira_core.Mira.counts m ~fname:"f" ~env:[ ("n", 50) ] in
        (* source: 2 multiplies per iteration (a[i]*(...) and 2.0*3.0);
           binary after folding: 1 *)
        check (float 0.0) "pbound fmul" 100.0
          (Mira_core.Model_eval.count pbc "fmul");
        check (float 0.0) "mira mulsd" 50.0
          (Mira_core.Model_eval.count mc "mulsd"));
    test_case "per-function source models compose through calls" `Quick
      (fun () ->
        let model =
          Mira_baselines.Pbound.analyze ~source_name:"c.mc"
            {|double dot(double *x, double *y, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) { s += x[i] * y[i]; }
                return s;
              }
              double twice(double *x, double *y, int n) {
                return dot(x, y, n) + dot(x, y, n);
              }|}
        in
        let counts =
          Mira_core.Model_eval.eval model ~fname:"twice" ~env:[ ("n", 10) ]
        in
        (* 2 calls x (10 fmul + 10 fadd) + 1 fadd at the call site *)
        check (float 0.0) "fmul" 20.0 (Mira_core.Model_eval.count counts "fmul");
        check (float 0.0) "fadd" 21.0 (Mira_core.Model_eval.count counts "fadd"));
  ]

(* ---------- Tau baseline ---------- *)

let tau_tests =
  let open Alcotest in
  [
    test_case "measurement and counter availability" `Quick (fun () ->
        let vm = Mira_corpus.Corpus.run_stream ~n:1000 ~ntimes:2 in
        (match
           Mira_baselines.Tau.measure ~arch:Mira_arch.Archdesc.frankenstein vm
             "FP_INS" "stream_driver"
         with
        | Ok m ->
            check int "one call" 1 m.calls;
            check (float 0.0) "4*n*ntimes" 8000.0 m.value
        | Error e ->
            failf "unexpected error: %s"
              (Format.asprintf "%a" Mira_baselines.Tau.pp_error e));
        (match
           Mira_baselines.Tau.measure ~arch:Mira_arch.Archdesc.arya vm "FP_INS"
             "stream_driver"
         with
        | Error (Mira_baselines.Tau.Counter_unavailable _) -> ()
        | _ -> fail "expected Counter_unavailable on arya");
        (match
           Mira_baselines.Tau.measure ~arch:Mira_arch.Archdesc.arya vm
             "TOT_INS" "stream_driver"
         with
        | Ok m -> check bool "total positive" true (m.value > 0.0)
        | Error _ -> fail "TOT_INS should be available");
        match
          Mira_baselines.Tau.measure ~arch:Mira_arch.Archdesc.arya vm "WAT"
            "stream_driver"
        with
        | Error (Mira_baselines.Tau.Unknown_counter _) -> ()
        | _ -> fail "expected Unknown_counter");
  ]

(* ---------- vectorizer ---------- *)

let vectorize_tests =
  let open Alcotest in
  let triad_src =
    {|void triad(double *a, double *b, double *c, double s, int n) {
        for (int i = 0; i < n; i++) {
          a[i] = b[i] + s * c[i];
        }
      }|}
  in
  [
    test_case "O2 halves dynamic FP instructions and stays correct" `Quick
      (fun () ->
        let n = 1000 in
        let run level =
          let prog = Mira_codegen.Codegen.compile ~level triad_src in
          let vm = Mira_vm.Vm.create prog in
          let a = Mira_vm.Vm.zeros_f vm (n + 2) in
          let b = Mira_vm.Vm.alloc_floats vm (Array.make (n + 2) 1.0) in
          let c = Mira_vm.Vm.alloc_floats vm (Array.make (n + 2) 2.0) in
          ignore
            (Mira_vm.Vm.call vm "triad"
               [ Int a; Int b; Int c; Double 3.0; Int n ]);
          let out = Mira_vm.Vm.read_floats vm a n in
          let p = Option.get (Mira_vm.Vm.profile_of vm "triad") in
          let fp =
            List.fold_left
              (fun acc mn -> acc + Mira_vm.Vm.count_of p mn)
              0 Mira_core.Model_eval.fp_mnemonics
          in
          (out, fp)
        in
        let out1, fp1 = run Mira_codegen.Codegen.O1 in
        let out2, fp2 = run Mira_codegen.Codegen.O2 in
        check bool "results identical" true (out1 = out2);
        check int "scalar count" (2 * n) fp1;
        check int "packed halves the count" n fp2);
    test_case "odd trip counts handled by the scalar epilogue" `Quick
      (fun () ->
        let run level n =
          let prog = Mira_codegen.Codegen.compile ~level triad_src in
          let vm = Mira_vm.Vm.create prog in
          let a = Mira_vm.Vm.zeros_f vm (n + 2) in
          let b =
            Mira_vm.Vm.alloc_floats vm (Array.init (n + 2) float_of_int)
          in
          let c = Mira_vm.Vm.alloc_floats vm (Array.make (n + 2) 2.0) in
          ignore
            (Mira_vm.Vm.call vm "triad"
               [ Int a; Int b; Int c; Double 3.0; Int n ]);
          Mira_vm.Vm.read_floats vm a n
        in
        List.iter
          (fun n ->
            check bool
              (Printf.sprintf "n=%d identical" n)
              true
              (run Mira_codegen.Codegen.O1 n = run Mira_codegen.Codegen.O2 n))
          [ 0; 1; 2; 7; 999 ]);
    test_case "random kernels behave identically at O1 and O2" `Quick
      (fun () ->
        (* reuse simple eligible/ineligible mixed kernels *)
        let rng = Random.State.make [| 31337 |] in
        for _ = 1 to 25 do
          let n = 3 + Random.State.int rng 12 in
          let span = Random.State.int rng 4 in
          let src =
            Printf.sprintf
              {|void kern(double *a, double *b, int n) {
                  double s = 1.5;
                  for (int i = 0; i < n; i++) {
                    a[i] = b[i] + s * a[i];
                  }
                  for (int i = 0; i <= %d; i++) {
                    b[i] = a[i] * 0.5;
                  }
                  for (int i = 0; i < n; i++) {
                    s = s + a[i];
                  }
                  a[0] = s;
                }|}
              span
          in
          let run level =
            let prog = Mira_codegen.Codegen.compile ~level src in
            let vm = Mira_vm.Vm.create prog in
            let size = n + 8 in
            let a = Mira_vm.Vm.alloc_floats vm (Array.init size float_of_int) in
            let b = Mira_vm.Vm.alloc_floats vm (Array.make size 2.0) in
            ignore (Mira_vm.Vm.call vm "kern" [ Int a; Int b; Int n ]);
            (Mira_vm.Vm.read_floats vm a size, Mira_vm.Vm.read_floats vm b size)
          in
          if run Mira_codegen.Codegen.O1 <> run Mira_codegen.Codegen.O2 then
            failf "n=%d: O1 and O2 diverge\n%s" n src
        done);
    test_case "packed-aware FPI correction is exact at O2" `Quick (fun () ->
        let n = 2048 in
        let m =
          Mira_core.Mira.analyze ~level:Mira_codegen.Codegen.O2
            ~source_name:"t.mc" triad_src
        in
        let prog = Mira_visa.Objfile.decode m.input.object_bytes in
        let vectorized = Mira_codegen.Vectorize.vectorized_lines prog in
        let corrected =
          Mira_core.Model_eval.fpi_vectorization_aware m.model ~lanes:2
            ~vectorized ~fname:"triad" ~env:[ ("n", n) ]
        in
        let vm = Mira_vm.Vm.load_object m.input.object_bytes in
        let a = Mira_vm.Vm.zeros_f vm (n + 2) in
        let b = Mira_vm.Vm.alloc_floats vm (Array.make (n + 2) 1.0) in
        let c = Mira_vm.Vm.alloc_floats vm (Array.make (n + 2) 2.0) in
        ignore
          (Mira_vm.Vm.call vm "triad" [ Int a; Int b; Int c; Double 3.0; Int n ]);
        let p = Option.get (Mira_vm.Vm.profile_of vm "triad") in
        let dyn =
          List.fold_left
            (fun acc mn -> acc +. float_of_int (Mira_vm.Vm.count_of p mn))
            0.0 Mira_core.Model_eval.fp_mnemonics
        in
        check (float 0.0) "corrected = dynamic" dyn corrected);
    test_case "vectorized_lines reports the loop body" `Quick (fun () ->
        let prog =
          Mira_codegen.Codegen.compile ~level:Mira_codegen.Codegen.O2 triad_src
        in
        match Mira_codegen.Vectorize.vectorized_lines prog with
        | [ ("triad", lines) ] -> check bool "line 3 packed" true (List.mem 3 lines)
        | _ -> fail "expected triad to be vectorized");
    test_case "ineligible loops untouched" `Quick (fun () ->
        (* indirect addressing blocks vectorization *)
        let src =
          {|void gather(double *a, double *b, int *idx, int n) {
              for (int i = 0; i < n; i++) {
                a[i] = b[idx[i]];
              }
            }|}
        in
        let prog =
          Mira_codegen.Codegen.compile ~level:Mira_codegen.Codegen.O2 src
        in
        check (list (pair string (list int))) "nothing vectorized" []
          (Mira_codegen.Vectorize.vectorized_lines prog));
  ]

(* ---------- model IR details ---------- *)

let model_tests =
  let open Alcotest in
  [
    test_case "python names follow the Figure 5 convention" `Quick (fun () ->
        let src =
          {|class A {
              int x;
              double foo(double *a, double *b) { return a[0] + b[0]; }
            };
            int main() { A inst; double p[1]; double q[1]; double r = inst.foo(p, q); if (r < 0.0) { return 1; } return 0; }|}
        in
        let m = Mira_core.Mira.analyze ~source_name:"n.mc" src in
        check string "A_foo_2" "A_foo_2"
          (Mira_core.Model_ir.python_name
             (Mira_core.Model_ir.find_exn m.model "A::foo"));
        check string "main_0" "main_0"
          (Mira_core.Model_ir.python_name
             (Mira_core.Model_ir.find_exn m.model "main")));
    test_case "golden Figure 5 emission" `Quick (fun () ->
        let src =
          {|class A {
  int tag;
  double foo(double *a, double *b) {
    double s = 0.0;
    for (int i = 0; i < 16; i++) {
      #pragma @Annotation {lp_cond:y}
      for (int j = 0; j <= 0; j++) {
        s = s + a[i] * b[j];
      }
    }
    return s;
  }
};
int main() { A inst; double a[4]; double b[4]; double r = inst.foo(a, b); if (r < 0.0) { return 1; } return 0; }|}
        in
        let m = Mira_core.Mira.analyze ~source_name:"fig5.mc" src in
        let expected =
          {|def A_foo_2(y):
    m = {}
    # line 4 (stmt)
    bump(m, "movsd", (1))
    bump(m, "xorpd", (1))
    # line 5 (loop-init)
    bump(m, "movq", (1))
    # line 5 (loop-cond)
    bump(m, "cmpq", (16) + (1))
    bump(m, "jge", (16) + (1))
    # line 5 (loop-step)
    bump(m, "incq", (16))
    bump(m, "jmp", (16))
    # line 7 (loop-init)
    bump(m, "movq", (16))
    # line 7 (loop-cond)
    bump(m, "cmpq", (16*y + 16) + (16))
    bump(m, "jg", (16*y + 16) + (16))
    # line 7 (loop-step)
    bump(m, "incq", (16*y + 16))
    bump(m, "jmp", (16*y + 16))
    # line 8 (stmt)
    bump(m, "addsd", (16*y + 16))
    bump(m, "movsd", 5 * ((16*y + 16)))
    bump(m, "mulsd", (16*y + 16))
    # line 11 (stmt)
    bump(m, "movsd", (1))
    bump(m, "ret", (1))
    # line 3 (overhead)
    bump(m, "movq", 2 * ((1)))
    return m
|}
        in
        check string "emitted text"
          expected
          (Mira_core.Python_emit.emit_function m.model "A::foo"));
    test_case "unknown call arguments become line-tagged parameters" `Quick
      (fun () ->
        (* the paper's y_16 pattern: a call argument whose value is
           unknown statically becomes parameter <name>_<line> *)
        let src =
          {|double work(double *a, int k) {
              double s = 0.0;
              for (int i = 0; i < k; i++) { s += a[i]; }
              return s;
            }
            double driver(double *a, int *sizes) {
              return work(a, sizes[0]);
            }|}
        in
        let m = Mira_core.Mira.analyze ~source_name:"u.mc" src in
        let params = Mira_core.Mira.parameters m ~fname:"driver" in
        check bool "k_7 parameter" true (List.mem "k_7" params);
        let c =
          Mira_core.Mira.counts m ~fname:"driver" ~env:[ ("k_7", 42) ]
        in
        check (float 0.0) "addsd follows the parameter" 42.0
          (Mira_core.Model_eval.count c "addsd"));
    test_case "missing parameters raise a helpful error" `Quick (fun () ->
        let m =
          Mira_core.Mira.analyze ~source_name:"p.mc"
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
        in
        match Mira_core.Mira.counts m ~fname:"f" ~env:[] with
        | exception Mira_core.Model_eval.Missing_parameter ("f", "n") -> ()
        | _ -> fail "expected Missing_parameter");
    test_case "fraction annotation scales branch counts" `Quick (fun () ->
        let src =
          {|extern double frand();
            double f(double *a, int n) {
              double s = 0.0;
              for (int i = 0; i < n; i++) {
                #pragma @Annotation {fraction:0.25}
                if (a[i] > 0.5) {
                  s += a[i];
                }
              }
              return s;
            }|}
        in
        let m = Mira_core.Mira.analyze ~source_name:"fr.mc" src in
        let c = Mira_core.Mira.counts m ~fname:"f" ~env:[ ("n", 1000) ] in
        (* s += a[i] contributes addsd on a quarter of iterations *)
        check (float 0.0) "250 scaled adds" 250.0
          (Mira_core.Model_eval.count c "addsd"));
  ]

let predict_tests =
  let open Alcotest in
  [
    test_case "cost directives parse and apply" `Quick (fun () ->
        let desc =
          {|arch toy
cores 1
clock_ghz 1.0
peak_gflops 10
mem_gbps 10
cost sse2_arith_scalar 4
cost int_mov 2
|}
        in
        let a = Mira_arch.Archdesc.parse desc in
        check (float 1e-9) "addsd costs 4" 4.0
          (Mira_arch.Archdesc.cost_of_mnemonic a "addsd");
        check (float 1e-9) "movq costs 2" 2.0
          (Mira_arch.Archdesc.cost_of_mnemonic a "movq");
        check (float 1e-9) "unlisted costs 1" 1.0
          (Mira_arch.Archdesc.cost_of_mnemonic a "jmp");
        (* cycles = 10 addsd * 4 + 5 movq * 2 = 50; 1 GHz -> 50 ns *)
        let p =
          Mira_core.Predict.of_counts a [ ("addsd", 10.0); ("movq", 5.0) ]
        in
        check (float 1e-9) "cycles" 50.0 p.cycles;
        check (float 1e-15) "seconds" 5e-8 p.seconds);
    test_case "validate rejects bad costs" `Quick (fun () ->
        let a =
          { Mira_arch.Archdesc.arya with costs = [ ("no_such_cat", 1.0) ] }
        in
        match Mira_arch.Archdesc.validate a with
        | Error es ->
            check bool "mentions unknown category" true
              (List.exists (fun e -> contains e "no_such_cat") es)
        | Ok () -> fail "expected validation error");
    test_case "memory- vs compute-bound verdicts" `Quick (fun () ->
        let a = Mira_arch.Archdesc.frankenstein in
        let streamy = [ ("movsd", 1000.0); ("addsd", 10.0) ] in
        let gemmy = [ ("movsd", 10.0); ("mulsd", 10000.0) ] in
        let ps = Mira_core.Predict.of_counts a streamy in
        let pg = Mira_core.Predict.of_counts a gemmy in
        check bool "stream-like memory-bound" true (ps.bound = `Memory);
        check bool "gemm-like compute-bound" true (pg.bound = `Compute));
    test_case "architecture ranking on the STREAM model" `Quick (fun () ->
        let m =
          Mira_core.Mira.analyze ~source_name:"stream.mc"
            Mira_corpus.Corpus.stream
        in
        let counts =
          Mira_core.Mira.counts m ~fname:"stream_triad" ~env:[ ("n", 100000) ]
        in
        let ranked =
          Mira_core.Predict.compare_architectures
            [ Mira_arch.Archdesc.arya; Mira_arch.Archdesc.frankenstein ]
            counts
        in
        check int "two rows" 2 (List.length ranked);
        let (_, first) = List.hd ranked and (_, second) = List.nth ranked 1 in
        check bool "sorted by time" true (first.seconds <= second.seconds));
  ]

let exclusive_tests =
  let open Alcotest in
  [
    test_case "exclusive static = exclusive dynamic through calls" `Quick
      (fun () ->
        let src =
          {|double inner(double *x, int n) {
              double s = 0.0;
              for (int i = 0; i < n; i++) { s += x[i] * x[i]; }
              return s;
            }
            double outer(double *x, int n) {
              double acc = 0.0;
              for (int k = 0; k < 5; k++) {
                acc += inner(x, n);
              }
              return acc;
            }|}
        in
        let m = Mira_core.Mira.analyze ~source_name:"e.mc" src in
        let n = 50 in
        let static_excl =
          Mira_core.Model_eval.eval_exclusive m.model ~fname:"outer"
            ~env:[ ("n", n) ]
        in
        let vm = Mira_vm.Vm.load_object m.input.object_bytes in
        let x = Mira_vm.Vm.alloc_floats vm (Array.make n 1.5) in
        ignore (Mira_vm.Vm.call vm "outer" [ Int x; Int n ]);
        let p = Option.get (Mira_vm.Vm.profile_of vm "outer") in
        (* every mnemonic's self count matches *)
        let mns =
          List.sort_uniq compare
            (List.map fst static_excl @ List.map fst p.exclusive)
        in
        List.iter
          (fun mn ->
            check (float 0.0) ("self " ^ mn)
              (float_of_int (Mira_vm.Vm.self_count_of p mn))
              (Mira_core.Model_eval.count static_excl mn))
          mns;
        (* outer's own FP work is just the 5 accumulating adds *)
        check (float 0.0) "outer self addsd" 5.0
          (Mira_core.Model_eval.count static_excl "addsd");
        (* inclusive strictly dominates exclusive *)
        let static_incl =
          Mira_core.Mira.counts m ~fname:"outer" ~env:[ ("n", n) ]
        in
        check bool "inclusive >= exclusive" true
          (Mira_core.Model_eval.total static_incl
          >= Mira_core.Model_eval.total static_excl));
    test_case "leaf functions: inclusive = exclusive" `Quick (fun () ->
        let m =
          Mira_core.Mira.analyze ~source_name:"l.mc"
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
        in
        let env = [ ("n", 33) ] in
        check bool "equal" true
          (Mira_core.Mira.counts m ~fname:"f" ~env
          = Mira_core.Model_eval.eval_exclusive m.model ~fname:"f" ~env));
  ]

let parallel_tests =
  let open Alcotest in
  let src =
    {|void scale_all(double *a, int n, int reps) {
        for (int r = 0; r < reps; r++) {
          #pragma @Annotation {parallel:yes}
          for (int i = 0; i < n; i++) {
            a[i] = 2.0 * a[i];
          }
        }
      }|}
  in
  [
    test_case "split separates serial and parallel counts" `Quick (fun () ->
        let m = Mira_core.Mira.analyze ~source_name:"par.mc" src in
        let split =
          Mira_core.Mira.counts_split m ~fname:"scale_all"
            ~env:[ ("n", 1000); ("reps", 4) ]
        in
        let total =
          Mira_core.Mira.counts m ~fname:"scale_all"
            ~env:[ ("n", 1000); ("reps", 4) ]
        in
        (* split sums back to the total *)
        List.iter
          (fun (mn, (s, p)) ->
            check (float 1e-9) (mn ^ " sums")
              (Mira_core.Model_eval.count total mn)
              (s +. p))
          split;
        (* the multiplies are in the parallel part; the outer loop's
           own control is serial *)
        let _, mul_par = List.assoc "mulsd" split in
        check (float 0.0) "mulsd parallel" 4000.0 mul_par;
        let incq_s, incq_p = List.assoc "incq" split in
        check (float 0.0) "outer steps serial" 4.0 incq_s;
        check (float 0.0) "inner steps parallel" 4000.0 incq_p);
    test_case "Amdahl-style speedup estimate" `Quick (fun () ->
        let m = Mira_core.Mira.analyze ~source_name:"par.mc" src in
        let split =
          Mira_core.Mira.counts_split m ~fname:"scale_all"
            ~env:[ ("n", 100000); ("reps", 2) ]
        in
        let est1 =
          Mira_core.Predict.parallel_estimate Mira_arch.Archdesc.arya ~cores:1
            split
        in
        let est8 =
          Mira_core.Predict.parallel_estimate Mira_arch.Archdesc.arya ~cores:8
            split
        in
        check (float 1e-9) "1 core = no speedup" 1.0 est1.speedup;
        check bool "8 cores speed up" true (est8.speedup > 6.0);
        check bool "bounded by cores" true (est8.speedup <= 8.0);
        check bool "monotone time" true
          (est8.seconds_parallel < est1.seconds_parallel));
    test_case "a serial model has speedup 1" `Quick (fun () ->
        let m =
          Mira_core.Mira.analyze ~source_name:"s.mc"
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
        in
        let split =
          Mira_core.Mira.counts_split m ~fname:"f" ~env:[ ("n", 100) ]
        in
        let est =
          Mira_core.Predict.parallel_estimate Mira_arch.Archdesc.arya ~cores:36
            split
        in
        check (float 1e-9) "no parallel cycles" 0.0 est.parallel_cycles;
        check (float 1e-9) "speedup 1" 1.0 est.speedup);
    test_case "parallel loop calling a function parallelizes the callee"
      `Quick (fun () ->
        let src =
          {|double piece(double *a, int i) { return a[i] * 0.5; }
            double total(double *a, int n) {
              double s = 0.0;
              #pragma @Annotation {parallel:yes}
              for (int i = 0; i < n; i++) {
                s += piece(a, i);
              }
              return s;
            }|}
        in
        let m = Mira_core.Mira.analyze ~source_name:"pc.mc" src in
        let split =
          Mira_core.Mira.counts_split m ~fname:"total" ~env:[ ("n", 64) ]
        in
        let _, mul_par = List.assoc "mulsd" split in
        check (float 0.0) "callee multiplies are parallel" 64.0 mul_par);
  ]

let liveness_tests =
  let open Alcotest in
  [
    test_case "copy propagation removes protective copies at O1" `Quick
      (fun () ->
        let src =
          {|void triad(double *a, double *b, double *c, double s, int n) {
              for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }
            }|}
        in
        let count level =
          let prog = Mira_codegen.Codegen.compile ~level src in
          let f = Mira_visa.Program.find_exn prog "triad" in
          Array.length f.insns
        in
        check bool "O1 emits fewer instructions than O0" true
          (count Mira_codegen.Codegen.O1 < count Mira_codegen.Codegen.O0));
    test_case "dead computations are eliminated" `Quick (fun () ->
        (* u is computed but never used *)
        let src =
          {|double f(double *a, int n) {
              double s = 0.0;
              for (int i = 0; i < n; i++) {
                double u = a[i] * 3.0;
                s += a[i];
              }
              return s;
            }|}
        in
        let m = Mira_core.Mira.analyze ~source_name:"d.mc" src in
        let counts = Mira_core.Mira.counts m ~fname:"f" ~env:[ ("n", 100) ] in
        (* the multiply by 3.0 never survives *)
        check (float 0.0) "no mulsd" 0.0
          (Mira_core.Model_eval.count counts "mulsd");
        (* and the program still computes the right sum *)
        let vm = Mira_vm.Vm.load_object m.input.object_bytes in
        let a = Mira_vm.Vm.alloc_floats vm (Array.make 100 2.0) in
        (match Mira_vm.Vm.call vm "f" [ Int a; Int 100 ] with
        | Double v -> check (float 1e-9) "sum" 200.0 v
        | _ -> fail "expected double"));
    test_case "stores and calls are never eliminated" `Quick (fun () ->
        let src =
          {|extern double sqrt(double);
            void g(double *a, int n) {
              for (int i = 0; i < n; i++) {
                a[i] = sqrt(a[i]);
              }
            }|}
        in
        let prog = Mira_codegen.Codegen.compile src in
        let vm = Mira_vm.Vm.create prog in
        let a = Mira_vm.Vm.alloc_floats vm (Array.make 16 4.0) in
        ignore (Mira_vm.Vm.call vm "g" [ Int a; Int 16 ]);
        let out = Mira_vm.Vm.read_floats vm a 16 in
        check (float 1e-9) "store survived" 2.0 out.(0));
  ]

let cache_tests =
  let open Alcotest in
  [
    test_case "geometry validation" `Quick (fun () ->
        (match Mira_vm.Cache.create ~size_bytes:0 () with
        | exception Invalid_argument _ -> ()
        | _ -> fail "zero capacity accepted");
        match Mira_vm.Cache.create ~line_bytes:12 ~size_bytes:4096 () with
        | exception Invalid_argument _ -> ()
        | _ -> fail "fractional doubles per line accepted");
    test_case "sequential streaming: one miss per line" `Quick (fun () ->
        let c = Mira_vm.Cache.create ~size_bytes:(32 * 1024) () in
        for i = 0 to 799 do
          ignore (Mira_vm.Cache.access c i)
        done;
        let s = Mira_vm.Cache.stats c in
        (* 64 B lines = 8 doubles: 100 lines for 800 accesses *)
        check int "misses" 100 s.misses;
        check int "hits" 700 s.hits);
    test_case "working set inside capacity: second pass all hits" `Quick
      (fun () ->
        let c = Mira_vm.Cache.create ~size_bytes:(32 * 1024) () in
        for i = 0 to 999 do
          ignore (Mira_vm.Cache.access c i)
        done;
        let first = Mira_vm.Cache.stats c in
        for i = 0 to 999 do
          ignore (Mira_vm.Cache.access c i)
        done;
        let second = Mira_vm.Cache.stats c in
        check int "no new misses" first.misses second.misses);
    test_case "working set beyond capacity: LRU thrashes on re-scan" `Quick
      (fun () ->
        (* 1 KiB cache = 128 doubles; scanning 512 doubles twice gives
           no reuse under LRU *)
        let c = Mira_vm.Cache.create ~size_bytes:1024 () in
        for _ = 1 to 2 do
          for i = 0 to 511 do
            ignore (Mira_vm.Cache.access c i)
          done
        done;
        let s = Mira_vm.Cache.stats c in
        check int "every line missed twice" 128 s.misses;
        check bool "evictions occurred" true (s.evictions > 0));
    test_case "VM integration: triad misses match streaming traffic" `Quick
      (fun () ->
        let src =
          {|void triad(double *a, double *b, double *c, double s, int n) {
              for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }
            }|}
        in
        let prog = Mira_codegen.Codegen.compile src in
        let vm = Mira_vm.Vm.create prog in
        let cache = Mira_vm.Cache.create ~size_bytes:(256 * 1024) () in
        Mira_vm.Vm.attach_cache vm cache;
        let n = 4096 in
        let a = Mira_vm.Vm.zeros_f vm n in
        let b = Mira_vm.Vm.alloc_floats vm (Array.make n 1.0) in
        let c = Mira_vm.Vm.alloc_floats vm (Array.make n 2.0) in
        ignore
          (Mira_vm.Vm.call vm "triad" [ Int a; Int b; Int c; Double 3.0; Int n ]);
        let s = Option.get (Mira_vm.Vm.cache_stats vm) in
        check int "3n accesses" (3 * n) s.accesses;
        (* three streams x n/8 lines, cold cache *)
        check int "streaming misses" (3 * n / 8) s.misses;
        (* measured traffic vs the model's static FP-byte estimate:
           same order (model counts all movsd, cache counts lines) *)
        let m = Mira_core.Mira.analyze ~source_name:"t.mc" src in
        let counts = Mira_core.Mira.counts m ~fname:"triad" ~env:[ ("n", n) ] in
        let static_bytes =
          8.0 *. Mira_core.Model_eval.count counts "movsd"
        in
        let measured =
          Mira_vm.Cache.miss_traffic_bytes (Option.get (Mira_vm.Vm.cache vm))
        in
        check bool "same order of magnitude" true
          (static_bytes /. measured < 10.0 && measured /. static_bytes < 10.0));
  ]

let () =
  Alcotest.run "mira-units"
    [
      ("bridge", bridge_tests);
      ("arch", arch_tests);
      ("report", report_tests);
      ("pbound", pbound_tests);
      ("tau", tau_tests);
      ("vectorize", vectorize_tests);
      ("model", model_tests);
      ("predict", predict_tests);
      ("parallel", parallel_tests);
      ("exclusive", exclusive_tests);
      ("cache", cache_tests);
      ("liveness", liveness_tests);
    ]
