open Mira_visa

let compile = Mira_codegen.Codegen.compile

let exec_src ?level src fn args =
  let prog = compile ?level src in
  let vm = Mira_vm.Vm.create prog in
  (Mira_vm.Vm.call vm fn args, vm)

let check_int msg expected = function
  | Mira_vm.Vm.Int n -> Alcotest.check Alcotest.int msg expected n
  | _ -> Alcotest.fail "expected int result"

let check_double msg expected = function
  | Mira_vm.Vm.Double f -> Alcotest.check (Alcotest.float 1e-9) msg expected f
  | _ -> Alcotest.fail "expected double result"

let basic_tests =
  let open Alcotest in
  [
    test_case "arithmetic and return" `Quick (fun () ->
        let r, _ = exec_src "int f(int a, int b) { return a * b + 7; }" "f"
            [ Int 6; Int 7 ] in
        check_int "6*7+7" 49 r);
    test_case "double arithmetic" `Quick (fun () ->
        let r, _ =
          exec_src "double f(double x) { return x * x - 0.5; }" "f" [ Double 3.0 ]
        in
        check_double "9-0.5" 8.5 r);
    test_case "int/double mixing" `Quick (fun () ->
        let r, _ =
          exec_src "double f(int n) { return n * 0.5; }" "f" [ Int 7 ]
        in
        check_double "3.5" 3.5 r);
    test_case "division and modulo truncate like C" `Quick (fun () ->
        let r, _ =
          exec_src "int f(int a, int b) { return a / b * 100 + a % b; }" "f"
            [ Int (-7); Int 2 ]
        in
        check_int "-7/2=-3 rem -1" (-301) r);
    test_case "if/else" `Quick (fun () ->
        let src = "int f(int x) { if (x > 10) return 1; else return 2; }" in
        let r1, _ = exec_src src "f" [ Int 11 ] in
        check_int "11 -> 1" 1 r1;
        let r2, _ = exec_src src "f" [ Int 10 ] in
        check_int "10 -> 2" 2 r2);
    test_case "logical operators short-circuit" `Quick (fun () ->
        let src =
          "int f(int a, int b) { if (a > 0 && b / a > 1) return 1; return 0; }"
        in
        (* b/a would fault on a = 0 without short-circuiting *)
        let r, _ = exec_src src "f" [ Int 0; Int 5 ] in
        check_int "no division by zero" 0 r);
    test_case "for loop sum" `Quick (fun () ->
        let r, _ =
          exec_src "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }"
            "f" [ Int 100 ]
        in
        check_int "gauss" 5050 r);
    test_case "nested triangular loop" `Quick (fun () ->
        let r, _ =
          exec_src
            {|int f() {
                int c = 0;
                for (int i = 1; i <= 4; i++)
                  for (int j = i + 1; j <= 6; j++)
                    c++;
                return c;
              }|}
            "f" []
        in
        check_int "listing 2 count" 14 r);
    test_case "while loop" `Quick (fun () ->
        let r, _ =
          exec_src
            "int f(int n) { int c = 0; while (n > 1) { if (n % 2 == 0) n = n / 2; else n = 3 * n + 1; c++; } return c; }"
            "f" [ Int 27 ]
        in
        check_int "collatz(27)" 111 r);
    test_case "arrays" `Quick (fun () ->
        let r, _ =
          exec_src
            {|double f(int n) {
                double a[n];
                for (int i = 0; i < n; i++) { a[i] = i * 1.5; }
                double s = 0.0;
                for (int i = 0; i < n; i++) { s += a[i]; }
                return s;
              }|}
            "f" [ Int 10 ]
        in
        check_double "sum" (1.5 *. 45.0) r);
    test_case "int arrays and a[i+1] addressing" `Quick (fun () ->
        let r, _ =
          exec_src
            {|int f(int n) {
                int a[n];
                for (int i = 0; i < n; i++) { a[i] = i; }
                int s = 0;
                for (int i = 0; i < n - 1; i++) { s += a[i + 1] - a[i]; }
                return s;
              }|}
            "f" [ Int 50 ]
        in
        check_int "telescoping" 49 r);
    test_case "function calls" `Quick (fun () ->
        let r, _ =
          exec_src
            {|int sq(int x) { return x * x; }
              int f(int n) { return sq(n) + sq(n + 1); }|}
            "f" [ Int 3 ]
        in
        check_int "9+16" 25 r);
    test_case "recursion" `Quick (fun () ->
        let r, _ =
          exec_src
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
            "fib" [ Int 15 ]
        in
        check_int "fib 15" 610 r);
    test_case "extern sqrt" `Quick (fun () ->
        let r, _ =
          exec_src "extern double sqrt(double);\ndouble f(double x) { return sqrt(x); }"
            "f" [ Double 2.0 ]
        in
        check_double "sqrt 2" (sqrt 2.0) r);
    test_case "extern min/max" `Quick (fun () ->
        let r, _ =
          exec_src
            "extern int min(int, int);\nextern int max(int, int);\nint f(int a, int b) { return max(a, b) - min(a, b); }"
            "f" [ Int 3; Int 11 ]
        in
        check_int "range" 8 r);
    test_case "classes: fields and methods" `Quick (fun () ->
        let r, _ =
          exec_src
            {|class Acc {
                double total;
                int n;
                void add(double x) { total += x; n++; }
                double mean() { return total / n; }
              };
              double f() {
                Acc a;
                a.add(1.0); a.add(2.0); a.add(6.0);
                return a.mean();
              }|}
            "f" []
        in
        check_double "mean" 3.0 r);
    test_case "casts" `Quick (fun () ->
        let r, _ =
          exec_src "int f(double x) { return (int)(x * 2.0); }" "f" [ Double 3.7 ]
        in
        check_int "trunc 7.4" 7 r);
    test_case "array parameter aliasing" `Quick (fun () ->
        let r, _ =
          exec_src
            {|void fill(double *a, int n, double v) {
                for (int i = 0; i < n; i++) { a[i] = v; }
              }
              double f(int n) {
                double a[n];
                fill(a, n, 2.5);
                double s = 0.0;
                for (int i = 0; i < n; i++) { s += a[i]; }
                return s;
              }|}
            "f" [ Int 8 ]
        in
        check_double "8 * 2.5" 20.0 r);
    test_case "O0 and O1 agree semantically" `Quick (fun () ->
        let src =
          {|int f(int n) {
              int s = 0;
              for (int i = 0; i < n; i++) { s += i * 8 + 3 * 4; }
              return s;
            }|}
        in
        let r0, _ = exec_src ~level:Mira_codegen.Codegen.O0 src "f" [ Int 20 ] in
        let r1, _ = exec_src ~level:Mira_codegen.Codegen.O1 src "f" [ Int 20 ] in
        check_int "O0" (8 * 190 + 240) r0;
        check_int "O1" (8 * 190 + 240) r1);
    test_case "memory fault detected" `Quick (fun () ->
        match
          exec_src "double f() { double a[4]; return a[9]; }" "f" []
        with
        | exception Mira_vm.Vm.Fault _ -> ()
        | _ -> Alcotest.fail "expected fault");
  ]

let counting_tests =
  let open Alcotest in
  [
    test_case "FP instruction counts are exact" `Quick (fun () ->
        (* triad: per iteration 2 loads, 1 store, 1 mul, 1 add (plus
           two-address accumulator copies) *)
        let src =
          {|void triad(double *a, double *b, double *c, double s, int n) {
              for (int i = 0; i < n; i++) {
                a[i] = b[i] + s * c[i];
              }
            }|}
        in
        let prog = compile src in
        let vm = Mira_vm.Vm.create prog in
        let n = 1000 in
        let a = Mira_vm.Vm.zeros_f vm n in
        let b = Mira_vm.Vm.alloc_floats vm (Array.make n 1.0) in
        let c = Mira_vm.Vm.alloc_floats vm (Array.make n 2.0) in
        (match
           Mira_vm.Vm.call vm "triad"
             [ Int a; Int b; Int c; Double 3.0; Int n ]
         with
        | Unit -> ()
        | _ -> fail "expected unit");
        let p = Option.get (Mira_vm.Vm.profile_of vm "triad") in
        check int "one call" 1 p.calls;
        check int "mulsd" n (Mira_vm.Vm.count_of p "mulsd");
        check int "addsd" n (Mira_vm.Vm.count_of p "addsd");
        (* result correct too *)
        let out = Mira_vm.Vm.read_floats vm a n in
        check (float 1e-9) "a[0]" 7.0 out.(0));
    test_case "inclusive attribution through calls" `Quick (fun () ->
        let src =
          {|double inner(double x) { return x * x; }
            double outer(int n) {
              double s = 0.0;
              for (int i = 0; i < n; i++) { s += inner(i * 1.0); }
              return s;
            }|}
        in
        let prog = compile src in
        let vm = Mira_vm.Vm.create prog in
        ignore (Mira_vm.Vm.call vm "outer" [ Int 10 ]);
        let po = Option.get (Mira_vm.Vm.profile_of vm "outer") in
        let pi = Option.get (Mira_vm.Vm.profile_of vm "inner") in
        check int "inner called 10x" 10 pi.calls;
        check bool "outer includes inner's multiplies" true
          (Mira_vm.Vm.count_of po "mulsd" >= Mira_vm.Vm.count_of pi "mulsd"));
    test_case "extern costs are charged to caller" `Quick (fun () ->
        let src =
          {|extern double sqrt(double);
            double f(double x) { return sqrt(x) + 1.0; }|}
        in
        let prog = compile src in
        let vm = Mira_vm.Vm.create prog in
        ignore (Mira_vm.Vm.call vm "f" [ Double 9.0 ]);
        let p = Option.get (Mira_vm.Vm.profile_of vm "f") in
        check bool "synthetic sqrtsd present" true
          (Mira_vm.Vm.count_of p "sqrtsd" >= 1));
    test_case "step limit" `Quick (fun () ->
        let src = "int f() { int i = 0; while (i < 100000) { i++; } return i; }" in
        let prog = compile src in
        let vm = Mira_vm.Vm.create ~step_limit:1000 prog in
        match Mira_vm.Vm.call vm "f" [] with
        | exception Mira_vm.Vm.Fault _ -> ()
        | _ -> fail "expected step-limit fault");
  ]

let objfile_tests =
  let open Alcotest in
  let sample =
    {|extern double sqrt(double);
      class P { double x; double y; double norm() { return sqrt(x * x + y * y); } };
      double f(double a, double b) {
        P p;
        p.x = a; p.y = b;
        return p.norm();
      }|}
  in
  [
    test_case "encode/decode round-trip is exact" `Quick (fun () ->
        let prog = compile sample in
        let bytes = Objfile.encode prog in
        let prog' = Objfile.decode bytes in
        let bytes' = Objfile.encode prog' in
        check bool "byte-identical" true (bytes = bytes');
        check int "same functions" (List.length prog.funs)
          (List.length prog'.funs);
        List.iter2
          (fun (a : Program.fundef) (b : Program.fundef) ->
            check string "name" a.name b.name;
            check bool "insns equal" true (a.insns = b.insns);
            check bool "debug equal" true (a.debug = b.debug))
          prog.funs prog'.funs);
    test_case "decoded object runs identically" `Quick (fun () ->
        let prog = compile sample in
        let bytes = Objfile.encode prog in
        let vm = Mira_vm.Vm.load_object bytes in
        match Mira_vm.Vm.call vm "f" [ Double 3.0; Double 4.0 ] with
        | Double v -> check (float 1e-9) "norm" 5.0 v
        | _ -> fail "expected double");
    test_case "corrupt objects rejected" `Quick (fun () ->
        check_raises "bad magic" (Objfile.Corrupt "bad magic") (fun () ->
            ignore (Objfile.decode "NOTANOBJ"));
        let prog = compile sample in
        let bytes = Objfile.encode prog in
        let clipped = String.sub bytes 0 (String.length bytes / 2) in
        match Objfile.decode clipped with
        | exception Objfile.Corrupt _ -> ()
        | _ -> fail "expected corrupt error");
    test_case "fuzz: corrupted objects never crash the decoder" `Quick
      (fun () ->
        let prog = compile sample in
        let bytes = Objfile.encode prog in
        let rng = Random.State.make [| 13 |] in
        for _ = 1 to 500 do
          let b = Bytes.of_string bytes in
          (* flip 1-4 random bytes *)
          for _ = 1 to 1 + Random.State.int rng 4 do
            let i = Random.State.int rng (Bytes.length b) in
            Bytes.set b i (Char.chr (Random.State.int rng 256))
          done;
          match Objfile.decode (Bytes.to_string b) with
          | _ -> ()  (* harmless mutation or silently different program *)
          | exception Objfile.Corrupt _ -> ()  (* detected *)
          | exception e ->
              Alcotest.failf "decoder raised %s" (Printexc.to_string e)
        done);
    test_case "fuzz: truncated objects never crash the decoder" `Quick
      (fun () ->
        let prog = compile sample in
        let bytes = Objfile.encode prog in
        let n = String.length bytes in
        for len = 0 to min n 200 do
          match Objfile.decode (String.sub bytes 0 len) with
          | _ -> ()
          | exception Objfile.Corrupt _ -> ()
          | exception e ->
              Alcotest.failf "len %d: decoder raised %s" len
                (Printexc.to_string e)
        done);
    test_case "section sizes reported" `Quick (fun () ->
        let bytes = Objfile.encode (compile sample) in
        let sections = Objfile.section_sizes bytes in
        List.iter
          (fun name ->
            check bool (name ^ " present") true (List.mem_assoc name sections))
          [ ".symtab"; ".text"; ".rodata"; ".debug_line" ]);
    test_case "binary AST mirrors the program" `Quick (fun () ->
        let prog = compile sample in
        let bast = Binast.of_object (Objfile.encode prog) in
        let f = Option.get (Binast.find_func bast "P::norm") in
        check bool "has instructions" true (f.fsize > 0);
        check bool "line info present" true
          (List.exists (fun i -> i.Binast.line > 0) f.finsns);
        let dot = Binast.to_dot bast in
        check bool "dot has SgAsmFunction" true
          (let frag = "SgAsmFunction P::norm" in
           let len = String.length frag in
           let rec has i =
             i + len <= String.length dot
             && (String.sub dot i len = frag || has (i + 1))
           in
           has 0));
  ]

let debug_line_tests =
  let open Alcotest in
  [
    test_case "loop header instructions carry init/cond/step positions"
      `Quick (fun () ->
        (* source col of init, cond, step differ; check distinct cols
           appear among loop-control instructions *)
        let src = "int f(int n) { int s = 0;\nfor (int i = 0; i < n; i++) { s += i; }\nreturn s; }" in
        let prog = compile src in
        let f = Program.find_exn prog "f" in
        let cols_on_line2 = ref [] in
        Array.iteri
          (fun i insn ->
            ignore insn;
            let d = f.debug.(i) in
            if d.line = 2 && not (List.mem d.col !cols_on_line2) then
              cols_on_line2 := d.col :: !cols_on_line2)
          f.insns;
        check bool "at least 3 distinct columns (init/cond/step)" true
          (List.length !cols_on_line2 >= 3));
  ]

let vm_edge_tests =
  let open Alcotest in
  [
    test_case "deep recursion works (fresh frames)" `Quick (fun () ->
        let r, _ =
          exec_src "int down(int n) { if (n <= 0) return 0; return down(n - 1) + 1; }"
            "down" [ Int 5000 ]
        in
        check_int "depth 5000" 5000 r);
    test_case "float constants come from the pool" `Quick (fun () ->
        let src =
          "double f() { return 3.25 + 3.25 + 1.5; }"
        in
        let prog = compile src in
        (* pool deduplicates: 3.25 appears once *)
        check bool "pool small" true (Array.length prog.fpool <= 2);
        let r, _ = exec_src src "f" [] in
        check_double "value" 8.0 r);
    test_case "reset_counters clears profiles" `Quick (fun () ->
        let prog = compile "int f() { return 1; }" in
        let vm = Mira_vm.Vm.create prog in
        ignore (Mira_vm.Vm.call vm "f" []);
        check bool "has profile" true (Mira_vm.Vm.profile_of vm "f" <> None);
        Mira_vm.Vm.reset_counters vm;
        check bool "cleared" true (Mira_vm.Vm.profile_of vm "f" = None);
        check int "retired reset" 0 (Mira_vm.Vm.total_retired vm));
    test_case "calling unknown function faults" `Quick (fun () ->
        let prog = compile "int f() { return 1; }" in
        let vm = Mira_vm.Vm.create prog in
        match Mira_vm.Vm.call vm "nope" [] with
        | exception Mira_vm.Vm.Fault _ -> ()
        | _ -> fail "expected fault");
    test_case "argument kind mismatch faults" `Quick (fun () ->
        let prog = compile "int f(int x) { return x; }" in
        let vm = Mira_vm.Vm.create prog in
        (match Mira_vm.Vm.call vm "f" [ Double 1.0 ] with
        | exception Mira_vm.Vm.Fault _ -> ()
        | _ -> fail "expected kind fault");
        match Mira_vm.Vm.call vm "f" [] with
        | exception Mira_vm.Vm.Fault _ -> ()
        | _ -> fail "expected arity fault");
    test_case "division by zero faults cleanly" `Quick (fun () ->
        match exec_src "int f(int a) { return 1 / a; }" "f" [ Int 0 ] with
        | exception Mira_vm.Vm.Fault _ -> ()
        | _ -> fail "expected fault");
    test_case "total_retired counts across calls" `Quick (fun () ->
        let prog = compile "int f() { return 1; }" in
        let vm = Mira_vm.Vm.create prog in
        ignore (Mira_vm.Vm.call vm "f" []);
        let once = Mira_vm.Vm.total_retired vm in
        ignore (Mira_vm.Vm.call vm "f" []);
        check int "doubles" (2 * once) (Mira_vm.Vm.total_retired vm));
  ]

let () =
  Alcotest.run "compile-vm"
    [
      ("basic", basic_tests);
      ("counting", counting_tests);
      ("objfile", objfile_tests);
      ("debug-line", debug_line_tests);
      ("vm-edge", vm_edge_tests);
    ]
