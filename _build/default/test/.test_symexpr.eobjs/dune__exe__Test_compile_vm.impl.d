test/test_compile_vm.ml: Alcotest Array Binast Bytes Char List Mira_codegen Mira_visa Mira_vm Objfile Option Printexc Program Random String
