test/test_poly.ml: Alcotest Count Domain Enumerate Expr Format List Mira_poly Mira_symexpr Plot Poly Printf QCheck QCheck_alcotest Ratio String
