test/test_endtoend.ml: Alcotest Array Buffer List Mira_codegen Mira_core Mira_srclang Mira_vm Option Printf Random String
