test/test_minipy.ml: Alcotest Expr Format List Minipy Mira_core Mira_corpus Mira_minipy Mira_symexpr Option Poly Printf Random
