test/test_corpus.ml: Alcotest Lazy List Mira_codegen Mira_core Mira_corpus Mira_srclang Mira_vm Option Printf
