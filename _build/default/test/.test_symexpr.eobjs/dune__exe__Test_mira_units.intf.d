test/test_mira_units.mli:
