test/test_srclang.ml: Alcotest Annot Ast Dot Format Lexer List Mira_srclang Option Parser Pretty Printf String Typecheck
