test/test_compile_vm.mli:
