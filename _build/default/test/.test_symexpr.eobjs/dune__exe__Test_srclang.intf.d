test/test_srclang.mli:
