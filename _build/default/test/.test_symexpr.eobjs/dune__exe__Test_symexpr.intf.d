test/test_symexpr.mli:
