test/test_symexpr.ml: Alcotest Array Expr Faulhaber List Mira_symexpr Poly Printf QCheck QCheck_alcotest Ratio String
