test/test_mira_units.ml: Alcotest Archdesc Array Format List Loc Mira_arch Mira_baselines Mira_codegen Mira_core Mira_corpus Mira_srclang Mira_visa Mira_vm Option Printf Random String
