test/test_minipy.mli:
