(* End-to-end validation on the paper's workloads: Mira's static FPI
   predictions against VM-measured ground truth (the Table III/IV/V
   methodology at test-friendly sizes). *)

let analyze name src = Mira_core.Mira.analyze ~source_name:(name ^ ".mc") src

let dyn_fpi vm fname =
  match Mira_vm.Vm.profile_of vm fname with
  | None -> Alcotest.failf "no profile for %s" fname
  | Some p ->
      List.fold_left
        (fun acc m -> acc +. float_of_int (Mira_vm.Vm.count_of p m))
        0.0 Mira_core.Model_eval.fp_mnemonics

let every_program_tests =
  let open Alcotest in
  List.map
    (fun (name, src) ->
      test_case (name ^ " compiles, runs and models") `Quick (fun () ->
          (* main() must execute successfully *)
          let prog = Mira_codegen.Codegen.compile src in
          let vm = Mira_vm.Vm.create ~step_limit:500_000_000 prog in
          (match Mira_vm.Vm.call vm "main" [] with
          | Mira_vm.Vm.Int 0 -> ()
          | Mira_vm.Vm.Int n -> failf "%s: main returned %d" name n
          | _ -> failf "%s: main returned non-int" name);
          (* analysis must succeed and produce a model per function *)
          let m = analyze name src in
          check bool "has models" true
            (List.length m.model.functions > 0)))
    Mira_corpus.Corpus.all

let stream_tests =
  let open Alcotest in
  [
    test_case "STREAM: static FPI = 4*n*ntimes and matches VM exactly"
      `Quick (fun () ->
        let n = 2000 and ntimes = 3 in
        let m = analyze "stream" Mira_corpus.Corpus.stream in
        let static =
          Mira_core.Mira.fpi m ~fname:"stream_driver"
            ~env:[ ("n", n); ("ntimes", ntimes) ]
        in
        check (float 0.0) "closed form" (float_of_int (4 * n * ntimes)) static;
        let vm = Mira_corpus.Corpus.run_stream ~n ~ntimes in
        check (float 0.0) "matches dynamic" (dyn_fpi vm "stream_driver") static);
    test_case "STREAM: paper sizes reproduce Table III" `Quick (fun () ->
        let m = analyze "stream" Mira_corpus.Corpus.stream in
        let fpi n =
          Mira_core.Mira.fpi m ~fname:"stream_driver"
            ~env:[ ("n", n); ("ntimes", 10) ]
        in
        (* Table III: 2M -> 8.2E7 (Mira column) *)
        check (float 0.0) "2M" 8.0e7 (fpi 2_000_000);
        check (float 0.0) "50M" 2.0e9 (fpi 50_000_000);
        check (float 0.0) "100M" 4.0e9 (fpi 100_000_000));
    test_case "STREAM: per-kernel models" `Quick (fun () ->
        let m = analyze "stream" Mira_corpus.Corpus.stream in
        let fpi f = Mira_core.Mira.fpi m ~fname:f ~env:[ ("n", 100) ] in
        check (float 0.0) "copy has no flops" 0.0 (fpi "stream_copy");
        check (float 0.0) "scale" 100.0 (fpi "stream_scale");
        check (float 0.0) "add" 100.0 (fpi "stream_add");
        check (float 0.0) "triad" 200.0 (fpi "stream_triad"));
  ]

let dgemm_tests =
  let open Alcotest in
  [
    test_case "DGEMM: static matches dynamic exactly" `Quick (fun () ->
        let n = 20 in
        let m = analyze "dgemm" Mira_corpus.Corpus.dgemm in
        let static = Mira_core.Mira.fpi m ~fname:"dgemm" ~env:[ ("n", n) ] in
        let vm = Mira_corpus.Corpus.run_dgemm ~n in
        check (float 0.0) "fpi" (dyn_fpi vm "dgemm") static;
        (* leading term 2n^3 *)
        check bool "within 2n^3 .. 2n^3 + O(n^2)" true
          (static >= float_of_int (2 * n * n * n)
          && static <= float_of_int ((2 * n * n * n) + (8 * n * n))));
    test_case "DGEMM: paper sizes scale as 2n^3" `Quick (fun () ->
        let m = analyze "dgemm" Mira_corpus.Corpus.dgemm in
        let f n = Mira_core.Mira.fpi m ~fname:"dgemm" ~env:[ ("n", n) ] in
        let r = f 512 /. f 256 in
        check bool "doubling n costs ~8x" true (r > 7.8 && r < 8.2));
  ]

let minife_tests =
  let open Alcotest in
  let nx, ny, nz = (8, 8, 8) in
  let max_iter = 20 in
  let nrows = nx * ny * nz in
  let lazy_setup =
    lazy
      (let m = analyze "minife" Mira_corpus.Corpus.minife in
       let run = Mira_corpus.Corpus.run_minife ~nx ~ny ~nz ~max_iter in
       (m, run))
  in
  [
    test_case "waxpby static = dynamic (per call)" `Quick (fun () ->
        let m, run = Lazy.force lazy_setup in
        let static =
          Mira_core.Mira.fpi m ~fname:"waxpby" ~env:[ ("n", nrows) ]
        in
        let p = Option.get (Mira_vm.Vm.profile_of run.vm "waxpby") in
        let dyn_total = dyn_fpi run.vm "waxpby" in
        let per_call = dyn_total /. float_of_int p.calls in
        check (float 0.0) "exact" per_call static);
    test_case "matvec static = dynamic (per call)" `Quick (fun () ->
        let m, run = Lazy.force lazy_setup in
        let static =
          Mira_core.Mira.fpi m ~fname:"matvec_std::apply"
            ~env:[ ("nrows", nrows) ]
        in
        let p = Option.get (Mira_vm.Vm.profile_of run.vm "matvec_std::apply") in
        check int "called once per iteration" max_iter p.calls;
        let per_call = dyn_fpi run.vm "matvec_std::apply" /. float_of_int p.calls in
        check (float 0.0) "exact (padded rows)" per_call static);
    test_case "cg_solve: small undercount from external sqrt" `Quick
      (fun () ->
        let m, run = Lazy.force lazy_setup in
        let static =
          Mira_core.Mira.fpi m ~fname:"cg_solve"
            ~env:[ ("nrows", nrows); ("max_iter", max_iter) ]
        in
        let dyn = dyn_fpi run.vm "cg_solve" in
        check bool "static undercounts (sqrt not visible)" true (static < dyn);
        let err = (dyn -. static) /. dyn *. 100.0 in
        check bool
          (Printf.sprintf "error %.3f%% below 4%% (paper: <= 3.08%%)" err)
          true (err < 4.0));
    test_case "CG actually converges on the test problem" `Quick (fun () ->
        let _, run = Lazy.force lazy_setup in
        check bool "residual dropped" true (run.final_norm < 1.0));
    test_case "model warnings include the CSR annotation context" `Quick
      (fun () ->
        let m, _ = Lazy.force lazy_setup in
        (* matvec's data-dependent inner bound must NOT warn (it is
           annotated); the double-comparison in main may warn *)
        let warnings = Mira_core.Mira.warnings m in
        check bool "no warnings for matvec" true
          (not
             (List.exists
                (fun (f, _) -> f = "matvec_std::apply")
                warnings)));
  ]

let coverage_tests =
  let open Alcotest in
  [
    test_case "Table I: corpus loop coverage" `Quick (fun () ->
        let rows =
          List.map
            (fun (name, src) ->
              Mira_core.Coverage.of_program ~name
                (Mira_srclang.Parser.parse src))
            Mira_corpus.Corpus.all
        in
        List.iter
          (fun (r : Mira_core.Coverage.t) ->
            check bool
              (Printf.sprintf "%s coverage %.0f%% in [50, 100]" r.app
                 (Mira_core.Coverage.percentage r))
              true
              (Mira_core.Coverage.percentage r >= 50.0
              && Mira_core.Coverage.percentage r <= 100.0);
            check bool (r.app ^ " has loops") true (r.loops > 0))
          rows;
        (* the survey's point: most statements live in loops *)
        let total_stmts =
          List.fold_left (fun acc r -> acc + r.Mira_core.Coverage.statements) 0 rows
        in
        let total_in =
          List.fold_left (fun acc r -> acc + r.Mira_core.Coverage.in_loops) 0 rows
        in
        check bool "aggregate coverage >= 70%" true
          (float_of_int total_in /. float_of_int total_stmts >= 0.7));
  ]

let () =
  Alcotest.run "corpus"
    [
      ("programs", every_program_tests);
      ("stream", stream_tests);
      ("dgemm", dgemm_tests);
      ("minife", minife_tests);
      ("coverage", coverage_tests);
    ]
