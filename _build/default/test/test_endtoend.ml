(* End-to-end property: for randomly generated affine mini-C kernels,
   Mira's statically predicted per-mnemonic instruction counts equal
   the VM's dynamically measured counts exactly.

   The generator stays inside the statically analyzable fragment (the
   paper's scope): affine bounds that are non-empty by construction,
   branch conditions that are affine or modulo tests, stride-1 and
   strided loops, array and scalar statements. *)

let margin = 64  (* array slack beyond the largest generated index *)

type level = { var : string; header : string; guaranteed_span : int }

let gen_level rng depth_idx outer_vars =
  let var = Printf.sprintf "i%d" depth_idx in
  match Random.State.int rng 3 with
  | 0 ->
      (* 0 .. n-1 *)
      { var; header = Printf.sprintf "for (int %s = 0; %s < n; %s++)" var var var;
        guaranteed_span = 0 }
  | 1 ->
      (* base .. base + span, always non-empty *)
      let base =
        match outer_vars with
        | [] -> "0"
        | vs -> List.nth vs (Random.State.int rng (List.length vs))
      in
      let span = Random.State.int rng 5 in
      { var;
        header =
          Printf.sprintf "for (int %s = %s; %s <= %s + %d; %s++)" var base var
            base span var;
        guaranteed_span = span }
  | _ ->
      (* constant range, possibly strided *)
      let c0 = Random.State.int rng 4 in
      let c1 = c0 + 1 + Random.State.int rng 8 in
      let step = 1 + Random.State.int rng 2 in
      let step_str = if step = 1 then var ^ "++" else Printf.sprintf "%s += %d" var step in
      { var;
        header =
          Printf.sprintf "for (int %s = %d; %s <= %d; %s)" var c0 var c1
            step_str;
        guaranteed_span = c1 }

let gen_stmt rng vars =
  let v () = List.nth vars (Random.State.int rng (List.length vars)) in
  let idx () =
    let off = Random.State.int rng 3 in
    if off = 0 then v () else Printf.sprintf "%s + %d" (v ()) off
  in
  match Random.State.int rng 6 with
  | 0 -> Printf.sprintf "s += a[%s] * 1.5;" (idx ())
  | 1 -> Printf.sprintf "a[%s] = b[%s] + s;" (idx ()) (idx ())
  | 2 -> Printf.sprintf "b[%s] = a[%s] - 2.0 * b[%s];" (idx ()) (idx ()) (idx ())
  | 3 -> "t++;"
  | 4 -> Printf.sprintf "t += %s;" (v ())
  | _ -> Printf.sprintf "s = s + a[%s] / 4.0;" (idx ())

let gen_cond rng vars =
  let v () = List.nth vars (Random.State.int rng (List.length vars)) in
  match Random.State.int rng 5 with
  | 0 -> Printf.sprintf "%s > %d" (v ()) (Random.State.int rng 6)
  | 1 -> (
      match vars with
      | [ _ ] -> Printf.sprintf "%s <= %d" (v ()) (Random.State.int rng 8)
      | _ ->
          let a = v () and b = v () in
          Printf.sprintf "%s <= %s + %d" a b (Random.State.int rng 3))
  | 2 -> Printf.sprintf "%s %% %d == 0" (v ()) (2 + Random.State.int rng 3)
  | 3 -> Printf.sprintf "%s %% %d != 0" (v ()) (2 + Random.State.int rng 3)
  | _ ->
      Printf.sprintf "%s >= %d && %s <= %d" (v ())
        (Random.State.int rng 4)
        (v ())
        (4 + Random.State.int rng 8)

let gen_program ?(with_helper = false) rng =
  let depth = 1 + Random.State.int rng 3 in
  let buf = Buffer.create 256 in
  if with_helper then
    Buffer.add_string buf
      "double helper(double x, double y) {\n  return x * 0.5 + y;\n}\n\n\
       double helper2(double *p, int k, int m) {\n\
       \  double acc = 0.0;\n\
       \  for (int q = 0; q < m; q++) {\n\
       \    acc += p[k + q];\n\
       \  }\n\
       \  return acc;\n\
       }\n\n";
  Buffer.add_string buf
    "void kern(double *a, double *b, int n) {\n  double s = 0.0;\n  int t = 0;\n";
  let rec build idx outer_vars indent =
    if idx = depth then begin
      let vars = List.rev outer_vars in
      let with_if = Random.State.int rng 3 = 0 in
      if with_if then begin
        Buffer.add_string buf
          (Printf.sprintf "%sif (%s) {\n" indent (gen_cond rng vars));
        Buffer.add_string buf
          (Printf.sprintf "%s  %s\n" indent (gen_stmt rng vars));
        Buffer.add_string buf (Printf.sprintf "%s}\n" indent)
      end;
      let n_stmts = 1 + Random.State.int rng 2 in
      for _ = 1 to n_stmts do
        Buffer.add_string buf
          (Printf.sprintf "%s%s\n" indent (gen_stmt rng vars))
      done;
      if with_helper then begin
        let v = List.nth vars (Random.State.int rng (List.length vars)) in
        (match Random.State.int rng 2 with
        | 0 ->
            Buffer.add_string buf
              (Printf.sprintf "%ss += helper(a[%s], b[%s]);\n" indent v v)
        | _ ->
            Buffer.add_string buf
              (Printf.sprintf "%ss += helper2(b, %s, %d);\n" indent v
                 (1 + Random.State.int rng 4)))
      end
    end
    else begin
      let lvl = gen_level rng idx outer_vars in
      Buffer.add_string buf (Printf.sprintf "%s%s {\n" indent lvl.header);
      build (idx + 1) (lvl.var :: outer_vars) (indent ^ "  ");
      Buffer.add_string buf (Printf.sprintf "%s}\n" indent)
    end
  in
  build 0 [] "  ";
  Buffer.add_string buf "  a[0] = s + t;\n}\n";
  Buffer.contents buf

let compare_static_dynamic ?level src n =
  let m = Mira_core.Mira.analyze ?level ~source_name:"gen.mc" src in
  let static = Mira_core.Mira.counts m ~fname:"kern" ~env:[ ("n", n) ] in
  let vm = Mira_vm.Vm.load_object m.input.object_bytes in
  let size = n + margin in
  let a = Mira_vm.Vm.alloc_floats vm (Array.make size 1.0) in
  let b = Mira_vm.Vm.alloc_floats vm (Array.make size 2.0) in
  ignore (Mira_vm.Vm.call vm "kern" [ Int a; Int b; Int n ]);
  let p = Option.get (Mira_vm.Vm.profile_of vm "kern") in
  let mns =
    List.sort_uniq compare
      (List.map fst static @ List.map fst p.Mira_vm.Vm.inclusive)
  in
  List.filter_map
    (fun mn ->
      let s = Mira_core.Model_eval.count static mn in
      let d = float_of_int (Mira_vm.Vm.count_of p mn) in
      if s <> d then Some (mn, s, d) else None)
    mns

let endtoend_tests =
  let open Alcotest in
  [
    test_case "100 random affine kernels: static = dynamic exactly" `Slow
      (fun () ->
        let rng = Random.State.make [| 20260704 |] in
        for seed = 1 to 100 do
          let src = gen_program rng in
          let n = 5 + Random.State.int rng 8 in
          match compare_static_dynamic src n with
          | [] -> ()
          | mismatches ->
              failf "seed %d, n=%d:\n%s\nmismatches: %s" seed n src
                (String.concat "; "
                   (List.map
                      (fun (mn, s, d) ->
                        Printf.sprintf "%s static=%.0f dyn=%.0f" mn s d)
                      mismatches))
        done);
    test_case "20 random kernels: quick subset" `Quick (fun () ->
        let rng = Random.State.make [| 42 |] in
        for seed = 1 to 20 do
          let src = gen_program rng in
          let n = 5 + Random.State.int rng 8 in
          match compare_static_dynamic src n with
          | [] -> ()
          | mismatches ->
              failf "seed %d, n=%d:\n%s\nmismatches: %s" seed n src
                (String.concat "; "
                   (List.map
                      (fun (mn, s, d) ->
                        Printf.sprintf "%s static=%.0f dyn=%.0f" mn s d)
                      mismatches))
        done);
    test_case
      "40 random kernels with helper calls: call-site multiplicities exact"
      `Quick (fun () ->
        let rng = Random.State.make [| 5150 |] in
        for seed = 1 to 40 do
          let src = gen_program ~with_helper:true rng in
          let n = 5 + Random.State.int rng 8 in
          match compare_static_dynamic src n with
          | [] -> ()
          | mismatches ->
              failf "helper seed %d, n=%d:\n%s\nmismatches: %s" seed n src
                (String.concat "; "
                   (List.map
                      (fun (mn, s, d) ->
                        Printf.sprintf "%s static=%.0f dyn=%.0f" mn s d)
                      mismatches))
        done);
    test_case "30 random kernels at -O0: bridging exact without folding"
      `Quick (fun () ->
        let rng = Random.State.make [| 90210 |] in
        for seed = 1 to 30 do
          let src = gen_program rng in
          let n = 5 + Random.State.int rng 8 in
          match
            compare_static_dynamic ~level:Mira_codegen.Codegen.O0 src n
          with
          | [] -> ()
          | mismatches ->
              failf "O0 seed %d, n=%d:\n%s\nmismatches: %s" seed n src
                (String.concat "; "
                   (List.map
                      (fun (mn, s, d) ->
                        Printf.sprintf "%s static=%.0f dyn=%.0f" mn s d)
                      mismatches))
        done);
  ]

(* The pretty-printer round-trip on the same random programs, plus
   semantic equivalence: the reprinted source compiles to a program
   that executes identically. *)
let roundtrip_tests =
  let open Alcotest in
  [
    test_case "50 random kernels: print/parse round-trip + same behavior"
      `Quick (fun () ->
        let rng = Random.State.make [| 777 |] in
        for seed = 1 to 50 do
          let src = gen_program rng in
          let ast = Mira_srclang.Parser.parse src in
          let printed = Mira_srclang.Pretty.program_to_string ast in
          let ast2 =
            try Mira_srclang.Parser.parse printed
            with Mira_srclang.Parser.Error (m, pos) ->
              failf "seed %d: reparse failed at %d:%d: %s\n%s" seed pos.line
                pos.col m printed
          in
          if not (Mira_srclang.Pretty.equal_program ast ast2) then
            failf "seed %d: round-trip changed the AST\n%s\n----\n%s" seed src
              printed;
          (* dynamic behavior identical *)
          let n = 6 + Random.State.int rng 6 in
          let run_it source =
            let prog = Mira_codegen.Codegen.compile source in
            let vm = Mira_vm.Vm.create prog in
            let size = n + margin in
            let a = Mira_vm.Vm.alloc_floats vm (Array.make size 1.0) in
            let b = Mira_vm.Vm.alloc_floats vm (Array.make size 2.0) in
            ignore (Mira_vm.Vm.call vm "kern" [ Int a; Int b; Int n ]);
            Mira_vm.Vm.read_floats vm a size
          in
          let r1 = run_it src and r2 = run_it printed in
          if r1 <> r2 then failf "seed %d: behavior diverged after printing" seed
        done);
  ]

let () =
  Alcotest.run "endtoend"
    [ ("random-kernels", endtoend_tests); ("print-roundtrip", roundtrip_tests) ]
