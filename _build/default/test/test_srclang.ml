open Mira_srclang

let parse = Parser.parse

let tc src = Typecheck.check_exn (parse src)

let stream_like =
  {|
extern double sqrt(double);

void triad(double *a, double *b, double *c, double s, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + s * c[i];
  }
}

int main() {
  return 0;
}
|}

let class_example =
  {|
class A {
  int n;
  double foo(double *a, double *b) {
    double s = 0.0;
    for (int i = 0; i < 16; i++) {
      #pragma @Annotation {lp_cond:y}
      for (int j = 0; j < 8; j++) {
        s = s + a[i] * b[j];
      }
    }
    return s;
  }
};

int main() {
  return 0;
}
|}

let lexer_tests =
  let open Alcotest in
  [
    test_case "tokens with positions" `Quick (fun () ->
        let toks = Lexer.tokenize "int x = 42;" in
        check int "count incl EOF" 6 (List.length toks);
        let first = List.hd toks in
        check bool "first is kw int" true (first.Lexer.t = Lexer.KW "int");
        check int "line" 1 first.tspan.lo.line;
        check int "col" 1 first.tspan.lo.col);
    test_case "comments are skipped" `Quick (fun () ->
        let toks = Lexer.tokenize "// hi\n/* multi\nline */ x" in
        check int "ident + eof" 2 (List.length toks));
    test_case "float literals" `Quick (fun () ->
        match Lexer.tokenize "3.5 1e3 2.0e-2 7" with
        | [ { t = FLOAT a; _ }; { t = FLOAT b; _ }; { t = FLOAT c; _ };
            { t = INT d; _ }; { t = EOF; _ } ] ->
            check (float 1e-9) "3.5" 3.5 a;
            check (float 1e-9) "1e3" 1000.0 b;
            check (float 1e-9) "2e-2" 0.02 c;
            check int "7" 7 d
        | _ -> fail "unexpected token stream");
    test_case "two-char operators" `Quick (fun () ->
        let toks = Lexer.tokenize "<= >= == != && || += ++" in
        let ops =
          List.filter_map
            (function { Lexer.t = PUNCT p; _ } -> Some p | _ -> None)
            toks
        in
        check (list string) "ops"
          [ "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "++" ]
          ops);
    test_case "pragma annotation is a token" `Quick (fun () ->
        let toks = Lexer.tokenize "#pragma @Annotation {skip:yes}\nx" in
        match toks with
        | { t = PRAGMA p; _ } :: _ -> check string "payload" "{skip:yes}" p
        | _ -> fail "expected pragma token");
    test_case "pragma with line continuation" `Quick (fun () ->
        let toks =
          Lexer.tokenize "#pragma @Annotation \\\n{lp_init:x,lp_cond:y}\nz"
        in
        match toks with
        | { t = PRAGMA p; _ } :: _ ->
            check string "payload" "{lp_init:x,lp_cond:y}" p
        | _ -> fail "expected pragma token");
    test_case "unknown pragmas ignored" `Quick (fun () ->
        let toks = Lexer.tokenize "#pragma omp parallel\nx" in
        check int "just ident+eof" 2 (List.length toks));
    test_case "lex error position" `Quick (fun () ->
        try
          ignore (Lexer.tokenize "x @");
          fail "expected error"
        with Lexer.Error (_, pos) -> check int "col" 3 pos.col);
  ]

let annot_tests =
  let open Alcotest in
  [
    test_case "all annotation forms" `Quick (fun () ->
        check bool "skip" true (Annot.parse "{skip:yes}" = [ Ast.A_skip ]);
        check bool "bounds" true
          (Annot.parse "{lp_init:x, lp_cond:y}"
          = [ Ast.A_init "x"; Ast.A_cond "y" ]);
        check bool "iters" true (Annot.parse "{iters:27}" = [ Ast.A_iters "27" ]);
        check bool "fraction" true
          (Annot.parse "{fraction:0.25}" = [ Ast.A_fraction 0.25 ]));
    test_case "malformed payloads rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match Annot.parse s with
            | exception Annot.Error _ -> ()
            | _ -> failf "accepted %S" s)
          [ "skip:yes"; "{skip:no}"; "{fraction:2.0}"; "{wat:1}"; "{skip}" ]);
  ]

let parser_tests =
  let open Alcotest in
  [
    test_case "parse stream-like program" `Quick (fun () ->
        let p = parse stream_like in
        check int "functions" 2 (List.length p.funcs);
        check int "externs" 1 (List.length p.externs);
        let triad = Option.get (Ast.find_func p "triad") in
        check int "params" 5 (List.length triad.fparams);
        match triad.fbody with
        | [ { s = For { init; cond; step; body }; _ } ] ->
            check string "loop var" "i" init.ivar;
            check bool "declared" true init.ideclared;
            check bool "step is ++" true (step.sdelta = Some 1);
            check int "body" 1 (List.length body);
            check bool "cond is i < n" true
              (match cond.e with
              | Binop (Lt, { e = Var "i"; _ }, { e = Var "n"; _ }) -> true
              | _ -> false)
        | _ -> fail "expected single for loop");
    test_case "spans map to source lines" `Quick (fun () ->
        let p = parse stream_like in
        let triad = Option.get (Ast.find_func p "triad") in
        match triad.fbody with
        | [ { s = For { body = [ assign ]; _ }; sspan; _ } ] ->
            check int "for starts line 5" 5 sspan.lo.line;
            check int "assign on line 6" 6 assign.sspan.lo.line
        | _ -> fail "expected loop");
    test_case "classes, methods, annotations" `Quick (fun () ->
        let p = parse class_example in
        check int "one class" 1 (List.length p.classes);
        let c = List.hd p.classes in
        check string "name" "A" c.cname;
        check int "fields" 1 (List.length c.cfields);
        check int "methods" 1 (List.length c.cmethods);
        let m = List.hd c.cmethods in
        check bool "method class" true (m.fclass = Some "A");
        (* the annotation is attached to the inner for *)
        let anns = ref [] in
        Ast.iter_stmts
          (fun st -> if st.sann <> [] then anns := st.sann :: !anns)
          m.fbody;
        check int "one annotated stmt" 1 (List.length !anns);
        check bool "is lp_cond" true (List.hd !anns = [ Ast.A_cond "y" ]));
    test_case "operator precedence" `Quick (fun () ->
        let e = Parser.parse_expr "1 + 2 * 3 < 4 && 5 == 6" in
        match e.e with
        | Ast.Binop (Land, { e = Binop (Lt, _, _); _ }, { e = Binop (Eq, _, _); _ })
          -> ()
        | _ -> fail "precedence wrong");
    test_case "method call and field access" `Quick (fun () ->
        let e = Parser.parse_expr "obj.run(1, x)" in
        (match e.e with
        | Ast.Method_call ({ e = Var "obj"; _ }, "run", [ _; _ ]) -> ()
        | _ -> fail "method call");
        let e2 = Parser.parse_expr "p.x + a[i].y" in
        match e2.e with Ast.Binop (Add, _, _) -> () | _ -> fail "field");
    test_case "compound assignment and ++" `Quick (fun () ->
        let p = parse "void f() { int i = 0; i += 2; i++; }" in
        let f = Option.get (Ast.find_func p "f") in
        check int "3 stmts" 3 (List.length f.fbody));
    test_case "syntax error reported with position" `Quick (fun () ->
        try
          ignore (parse "void f( { }");
          fail "expected error"
        with Parser.Error (_, pos) -> check int "line" 1 pos.line);
    test_case "else branch" `Quick (fun () ->
        let p = parse "int f(int x) { if (x > 0) return 1; else return 2; }" in
        let f = Option.get (Ast.find_func p "f") in
        match f.fbody with
        | [ { s = If { else_ = [ _ ]; _ }; _ } ] -> ()
        | _ -> fail "expected if/else");
    test_case "while loop" `Quick (fun () ->
        let p = parse "int f(int x) { while (x > 0) { x -= 1; } return x; }" in
        let f = Option.get (Ast.find_func p "f") in
        check int "stmts" 2 (List.length f.fbody));
    test_case "cast expression" `Quick (fun () ->
        let e = Parser.parse_expr "(double)n * 0.5" in
        match e.e with
        | Ast.Binop (Mul, { e = Cast (Tdouble, _); _ }, _) -> ()
        | _ -> fail "cast");
  ]

let typecheck_tests =
  let open Alcotest in
  let expect_err src frag =
    match Typecheck.check (parse src) with
    | Ok () -> failf "expected error mentioning %S" frag
    | Error es ->
        let all =
          String.concat "; "
            (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) es)
        in
        check bool
          (Printf.sprintf "error mentions %S (got %s)" frag all)
          true
          (let len = String.length frag in
           let rec has i =
             i + len <= String.length all
             && (String.sub all i len = frag || has (i + 1))
           in
           has 0)
  in
  [
    test_case "stream program typechecks" `Quick (fun () ->
        ignore (tc stream_like));
    test_case "class program typechecks and fills ety" `Quick (fun () ->
        let p = tc class_example in
        let m = Option.get (Ast.find_method p "A" "foo") in
        let filled = ref 0 and total = ref 0 in
        Ast.iter_stmts
          (fun st ->
            Ast.iter_exprs_of_stmt
              (fun e ->
                Ast.iter_exprs_of_expr
                  (fun e ->
                    incr total;
                    if e.ety <> None then incr filled)
                  e)
              st)
          m.fbody;
        check bool "all expressions typed" true (!total > 0 && !filled = !total));
    test_case "unbound variable" `Quick (fun () ->
        expect_err "int f() { return x; }" "unbound variable x");
    test_case "indexing non-array" `Quick (fun () ->
        expect_err "int f(int x) { return x[0]; }" "indexing non-array");
    test_case "arity mismatch" `Quick (fun () ->
        expect_err "int g(int x) { return x; } int f() { return g(1, 2); }"
          "expects 1 arguments");
    test_case "narrowing rejected, widening allowed" `Quick (fun () ->
        expect_err "int f() { int x = 1.5; return x; }" "expected int";
        ignore (tc "double f() { double x = 1; return x; }"));
    test_case "mod requires ints" `Quick (fun () ->
        expect_err "int f(double x) { if (x % 2 == 0) return 1; return 0; }"
          "% requires int");
    test_case "field and method resolution" `Quick (fun () ->
        ignore
          (tc
             {|
class V {
  double x;
  double get() { return x; }
};
double f() { V v; return v.get() + v.x; }
|});
        expect_err
          {|
class V { double x; };
double f() { V v; return v.y; }
|}
          "no field y");
    test_case "loop step variable must match" `Quick (fun () ->
        expect_err "void f(int n) { for (int i = 0; i < n; n++) { } }"
          "loop variable");
    test_case "duplicate function" `Quick (fun () ->
        expect_err "int f() { return 0; } int f() { return 1; }"
          "duplicate function f");
  ]

let dot_tests =
  let open Alcotest in
  [
    test_case "dot output contains ROSE-style nodes" `Quick (fun () ->
        let p = tc class_example in
        let s = Dot.of_program p in
        List.iter
          (fun frag ->
            let len = String.length frag in
            let rec has i =
              i + len <= String.length s
              && (String.sub s i len = frag || has (i + 1))
            in
            check bool (frag ^ " present") true (has 0))
          [
            "digraph"; "SgForStatement"; "SgForInitStatement"; "SgPlusPlusOp";
            "SgClassDeclaration A"; "SgFunctionDeclaration A::foo";
            "SgPntrArrRefExp";
          ]);
  ]

let pretty_tests =
  let open Alcotest in
  let roundtrip name src =
    let ast = parse src in
    let printed = Pretty.program_to_string ast in
    let ast2 =
      try parse printed
      with Parser.Error (m, pos) ->
        failf "%s: reparse failed at %d:%d: %s\n%s" name pos.line pos.col m
          printed
    in
    check bool (name ^ " round-trips") true (Pretty.equal_program ast ast2)
  in
  [
    test_case "print/parse round-trip on handwritten programs" `Quick
      (fun () ->
        roundtrip "stream-like" stream_like;
        roundtrip "class example" class_example);
    test_case "precedence is preserved" `Quick (fun () ->
        let e = Parser.parse_expr "(a + b) * c - d / (e - f)" in
        let printed = Pretty.expr_to_string e in
        check string "minimal parens" "(a + b) * c - d / (e - f)" printed;
        let e2 = Parser.parse_expr printed in
        check bool "same tree" true
          (Pretty.expr_to_string e2 = printed));
    test_case "annotations survive printing" `Quick (fun () ->
        let src =
          "void f(int n) {\n#pragma @Annotation {iters:27}\nfor (int i = 0; i < n; i++) { n += 0; }\n}"
        in
        let printed = Pretty.program_to_string (parse src) in
        check bool "pragma present" true
          (let needle = "#pragma @Annotation {iters:27}" in
           let ln = String.length needle and lh = String.length printed in
           let rec go i =
             i + ln <= lh && (String.sub printed i ln = needle || go (i + 1))
           in
           go 0);
        roundtrip "annotated" src);
  ]

let () =
  Alcotest.run "srclang"
    [
      ("lexer", lexer_tests);
      ("annot", annot_tests);
      ("parser", parser_tests);
      ("typecheck", typecheck_tests);
      ("dot", dot_tests);
      ("pretty", pretty_tests);
    ]
