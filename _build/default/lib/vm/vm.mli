(** Interpreter for virtual-ISA programs with TAU/PAPI-style
    measurement.

    Executes object code while counting every retired instruction by
    mnemonic, attributed to functions {e inclusively} through the call
    stack (what instrumentation-based TAU reports per invocation).
    External functions ([sqrt], [min], [max], [fabs]) execute natively
    and charge a synthetic libm-like instruction mix to the calling
    frame — instructions a hardware counter sees but a static analyzer
    does not (the paper's dominant validation error source).

    Memory is split into an integer and a floating-point space, each a
    flat growable array with a bump allocator. *)

type t

exception Fault of string

val create : ?step_limit:int -> Mira_visa.Program.t -> t
(** [step_limit] (default 2_000_000_000) aborts runaway programs. *)

val load_object : ?step_limit:int -> string -> t
(** Decode an object file and create a machine for it. *)

(* -- memory helpers for harnesses -- *)

val alloc_floats : t -> float array -> int
(** Copy an array into float memory; returns its address. *)

val alloc_ints : t -> int array -> int

val zeros_f : t -> int -> int
(** Allocate a zeroed float block; returns its address. *)

val zeros_i : t -> int -> int
val read_floats : t -> int -> int -> float array
val read_ints : t -> int -> int -> int array

(* -- execution -- *)

type value = Int of int | Double of float | Unit

val call : t -> string -> value list -> value
(** Call a function by (mangled) name with the given arguments; array
    arguments are passed as [Int address].
    @raise Fault on runtime errors (unknown function, bad memory
    access, step-limit exhaustion, arity mismatch). *)

(* -- measurement -- *)

type profile = {
  calls : int;
  inclusive : (string * int) list;  (** mnemonic -> retired count *)
  exclusive : (string * int) list;
      (** own retires only, callees excluded (TAU's "self" column);
          synthetic extern costs count as the caller's own *)
}

val profiles : t -> (string * profile) list
(** Per-function inclusive instruction counts accumulated so far,
    including synthetic extern costs, most-executed first. *)

val profile_of : t -> string -> profile option
val total_retired : t -> int
val reset_counters : t -> unit

val count_of : profile -> string -> int
(** Inclusive count for one mnemonic (0 when absent). *)

val self_count_of : profile -> string -> int

(* -- data-cache simulation -- *)

val attach_cache : t -> Cache.t -> unit
(** Attach a simulated data cache: every float-memory access (scalar
    and packed loads/stores) touches it from then on. *)

val cache_stats : t -> Cache.stats option
val cache : t -> Cache.t option
