type stats = { accesses : int; hits : int; misses : int; evictions : int }

type t = {
  line_elems : int;  (* doubles per line *)
  line_bytes : int;
  ways : int;
  sets : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  ages : int array;  (* LRU clocks *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(line_bytes = 64) ?(ways = 8) ~size_bytes () =
  if line_bytes <= 0 || ways <= 0 || size_bytes <= 0 then
    invalid_arg "Cache.create: sizes must be positive";
  if line_bytes mod 8 <> 0 then
    invalid_arg "Cache.create: line size must hold whole doubles";
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Cache.create: capacity must be a whole number of sets";
  let sets = size_bytes / (ways * line_bytes) in
  {
    line_elems = line_bytes / 8;
    line_bytes;
    ways;
    sets;
    tags = Array.make (sets * ways) (-1);
    ages = Array.make (sets * ways) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let access t elem =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = elem / t.line_elems in
  let set = line mod t.sets in
  let base = set * t.ways in
  let rec find w = if w = t.ways then None
    else if t.tags.(base + w) = line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
      t.hits <- t.hits + 1;
      t.ages.(base + w) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      (* LRU victim: oldest way (empty ways have age 0 and win) *)
      let victim = ref 0 in
      for w = 1 to t.ways - 1 do
        if t.ages.(base + w) < t.ages.(base + !victim) then victim := w
      done;
      if t.tags.(base + !victim) >= 0 then t.evictions <- t.evictions + 1;
      t.tags.(base + !victim) <- line;
      t.ages.(base + !victim) <- t.clock;
      false

let stats t =
  { accesses = t.accesses; hits = t.hits; misses = t.misses;
    evictions = t.evictions }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let hit_rate (s : stats) =
  if s.accesses = 0 then 1.0
  else float_of_int s.hits /. float_of_int s.accesses

let miss_traffic_bytes t = float_of_int (t.misses * t.line_bytes)

let describe t =
  Printf.sprintf "%d B (%d sets x %d ways x %d B lines), LRU"
    (t.sets * t.ways * t.line_bytes)
    t.sets t.ways t.line_bytes
