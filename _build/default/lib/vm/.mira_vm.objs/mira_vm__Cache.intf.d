lib/vm/cache.mli:
