lib/vm/vm.ml: Array Cache Float Format Hashtbl Isa List Mira_visa Objfile Option Program
