lib/vm/vm.mli: Cache Mira_visa
