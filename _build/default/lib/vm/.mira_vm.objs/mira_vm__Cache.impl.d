lib/vm/cache.ml: Array Printf
