(** A set-associative LRU data-cache simulator for the VM's
    floating-point memory space.

    The paper positions Mira's static arithmetic-intensity estimates
    against measurement; related work (Kerncraft) centres on the
    memory hierarchy.  This simulator provides the dynamic side of
    that comparison: attach one to a VM, run a workload, and compare
    measured miss traffic with the model's static byte estimates
    (`Report.roofline_gflops`, `Predict`).

    Addresses are element indices (8-byte doubles); [line_bytes]
    converts to elements per line. *)

type t

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create : ?line_bytes:int -> ?ways:int -> size_bytes:int -> unit -> t
(** [create ~size_bytes ()] builds an LRU cache with the given total
    capacity, 64-byte lines and 8 ways by default.
    @raise Invalid_argument if geometry is inconsistent (capacity not
    divisible by [ways * line_bytes], or non-positive sizes). *)

val access : t -> int -> bool
(** [access t elem_index] touches one double; returns [true] on hit. *)

val stats : t -> stats
val reset : t -> unit

val hit_rate : stats -> float
val miss_traffic_bytes : t -> float
(** Misses × line size — the memory traffic a hardware prefetch-free
    cache of this geometry would generate. *)

val describe : t -> string
