(** Reporting: categorized instruction counts (Table II), instruction
    distribution (Figure 6), and instruction-based arithmetic
    intensity with a roofline estimate (§IV-D2). *)

val categorize :
  Mira_arch.Archdesc.t -> (string * float) list -> (string * float) list
(** Per-mnemonic counts -> per-display-group counts (group order of
    the architecture description; zero groups included). *)

val table2 : Mira_arch.Archdesc.t -> (string * float) list -> string
(** Render categorized counts in the shape of Table II. *)

val distribution : Mira_arch.Archdesc.t -> (string * float) list -> string
(** ASCII rendering of Figure 6: percentage per category with bars. *)

val arithmetic_intensity :
  Mira_arch.Archdesc.t -> (string * float) list -> float
(** SSE2 packed arithmetic / SSE2 data movement — the paper's
    instruction-based arithmetic-intensity example (0.53 for
    cg_solve). *)

val roofline_gflops :
  Mira_arch.Archdesc.t -> (string * float) list -> float
(** Attainable GFLOP/s estimate: min(peak, byte-based AI × bandwidth),
    taking 8 bytes per scalar FP move and counting FP arithmetic
    instructions as flops (packed ones as vector-lane multiples). *)

val scientific : float -> string
(** Format like the paper's tables: 1.93E8. *)
