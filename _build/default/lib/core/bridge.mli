(** The source↔binary bridge (paper §III-A2).

    Binds each binary-AST instruction to source coordinates recovered
    from [.debug_line], and answers the metric generator's queries:
    "which instructions belong to this source span / sub-expression
    position".  Instructions are {e claimed} as they are queried so the
    generator can verify every instruction was attributed exactly once
    (full coverage of the function body). *)

type fn_bridge

type t

val create : Mira_visa.Binast.t -> t

val of_items : (string * (Mira_srclang.Loc.pos * string) array) list -> t
(** Build a bridge from arbitrary positioned items (per function name).
    Lets the metric generator run over other cost domains — the PBound
    baseline feeds it source-level operations instead of binary
    instructions. *)

val fn : t -> string -> fn_bridge option
(** Bridge for one (mangled) function name. *)

val fn_exn : t -> string -> fn_bridge

val claim_span : fn_bridge -> Mira_srclang.Loc.span -> (string * int) list
(** Claim all not-yet-claimed instructions whose source position lies
    inside the span; returns mnemonic counts.  Claims are destructive:
    a second overlapping query does not double count. *)

val claim_rest : fn_bridge -> (string * int) list
(** Claim everything still unclaimed (function prologue/epilogue). *)

val unclaimed : fn_bridge -> int
val size : fn_bridge -> int

val reset : fn_bridge -> unit
