open Mira_arch

type t = {
  arch : string;
  instructions : float;
  cycles : float;
  seconds : float;
  flops : float;
  bytes : float;
  arithmetic_intensity : float;
  gflops_achieved : float;
  gflops_attainable : float;
  bound : [ `Compute | `Memory | `Balanced ];
}

let of_counts (arch : Archdesc.t) counts =
  let lanes = float_of_int (Archdesc.vector_lanes arch) in
  let instructions = List.fold_left (fun a (_, c) -> a +. c) 0.0 counts in
  let cycles =
    List.fold_left
      (fun a (m, c) -> a +. (c *. Archdesc.cost_of_mnemonic arch m))
      0.0 counts
  in
  let seconds = cycles /. (arch.clock_ghz *. 1e9) in
  let flops =
    List.fold_left
      (fun a (m, c) ->
        match m with
        | "addsd" | "subsd" | "mulsd" | "divsd" | "sqrtsd" -> a +. c
        | "addpd" | "subpd" | "mulpd" | "divpd" -> a +. (lanes *. c)
        | _ -> a)
      0.0 counts
  in
  let bytes =
    List.fold_left
      (fun a (m, c) ->
        match m with
        | "movsd" -> a +. (8.0 *. c)
        | "movapd" -> a +. (8.0 *. lanes *. c)
        | _ -> a)
      0.0 counts
  in
  let ai = if bytes = 0.0 then Float.infinity else flops /. bytes in
  let attainable =
    if bytes = 0.0 then arch.peak_gflops
    else Float.min arch.peak_gflops (ai *. arch.mem_gbps)
  in
  let achieved = if seconds = 0.0 then 0.0 else flops /. seconds /. 1e9 in
  let ridge = arch.peak_gflops /. Float.max arch.mem_gbps 1e-9 in
  let bound =
    if bytes = 0.0 then `Compute
    else if ai > ridge *. 1.1 then `Compute
    else if ai < ridge /. 1.1 then `Memory
    else `Balanced
  in
  {
    arch = arch.name;
    instructions;
    cycles;
    seconds;
    flops;
    bytes;
    arithmetic_intensity = ai;
    gflops_achieved = achieved;
    gflops_attainable = attainable;
    bound;
  }

let compare_architectures archs counts =
  List.map (fun a -> (a.Archdesc.name, of_counts a counts)) archs
  |> List.sort (fun (_, a) (_, b) -> compare a.seconds b.seconds)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>architecture %s:@,\
     \  instructions          %s@,\
     \  est. cycles           %s@,\
     \  est. single-core time %.6f s@,\
     \  FP operations         %s@,\
     \  FP memory traffic     %s bytes@,\
     \  arithmetic intensity  %.3f flop/byte@,\
     \  achieved (est.)       %.2f GFLOP/s@,\
     \  roofline attainable   %.2f GFLOP/s@,\
     \  verdict               %s-bound@]"
    t.arch
    (Report.scientific t.instructions)
    (Report.scientific t.cycles)
    t.seconds
    (Report.scientific t.flops)
    (Report.scientific t.bytes)
    t.arithmetic_intensity t.gflops_achieved t.gflops_attainable
    (match t.bound with
    | `Compute -> "compute"
    | `Memory -> "memory"
    | `Balanced -> "balance")

let to_string t = Format.asprintf "%a" pp t

(* ---------- shared-memory estimate (the paper's future work) ---------- *)

type parallel_t = {
  p_arch : string;
  cores_used : int;
  serial_cycles : float;
  parallel_cycles : float;
  seconds_parallel : float;
  speedup : float;  (* vs the same workload on one core *)
  efficiency : float;  (* speedup / cores *)
}

let cycles_of arch counts =
  List.fold_left
    (fun a (m, c) -> a +. (c *. Archdesc.cost_of_mnemonic arch m))
    0.0 counts

let parallel_estimate (arch : Archdesc.t) ?cores split =
  let cores = Option.value ~default:arch.cores cores in
  let cores = max 1 cores in
  let serial = List.map (fun (m, (s, _)) -> (m, s)) split in
  let par = List.map (fun (m, (_, p)) -> (m, p)) split in
  let cs = cycles_of arch serial and cp = cycles_of arch par in
  let t1 = (cs +. cp) /. (arch.clock_ghz *. 1e9) in
  let tn = (cs +. (cp /. float_of_int cores)) /. (arch.clock_ghz *. 1e9) in
  {
    p_arch = arch.name;
    cores_used = cores;
    serial_cycles = cs;
    parallel_cycles = cp;
    seconds_parallel = tn;
    speedup = (if tn = 0.0 then 1.0 else t1 /. tn);
    efficiency =
      (if tn = 0.0 then 1.0 else t1 /. tn /. float_of_int cores);
  }

let pp_parallel ppf t =
  Format.fprintf ppf
    "@[<v>architecture %s, %d cores:@,\
     \  serial cycles    %s@,\
     \  parallel cycles  %s (distributed)@,\
     \  est. time        %.6f s@,\
     \  est. speedup     %.2fx (efficiency %.0f%%)@]"
    t.p_arch t.cores_used
    (Report.scientific t.serial_cycles)
    (Report.scientific t.parallel_cycles)
    t.seconds_parallel t.speedup (100.0 *. t.efficiency)

let parallel_to_string t = Format.asprintf "%a" pp_parallel t
