lib/core/input_processor.ml: Filename Fun Mira_codegen Mira_srclang Mira_visa
