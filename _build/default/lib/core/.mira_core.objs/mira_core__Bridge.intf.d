lib/core/bridge.mli: Mira_srclang Mira_visa
