lib/core/python_emit.mli: Model_ir
