lib/core/metric_gen.ml: Bridge Count Domain Format Hashtbl List Loc Mira_poly Mira_srclang Mira_symexpr Model_ir Option Parser Poly Printf Set String
