lib/core/predict.ml: Archdesc Float Format List Mira_arch Option Report
