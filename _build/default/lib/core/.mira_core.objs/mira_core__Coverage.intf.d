lib/core/coverage.mli: Mira_srclang
