lib/core/coverage.ml: Buffer List Mira_srclang Printf
