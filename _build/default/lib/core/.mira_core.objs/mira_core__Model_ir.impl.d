lib/core/model_ir.ml: Count Domain Expr List Mira_poly Mira_symexpr Poly Printf String
