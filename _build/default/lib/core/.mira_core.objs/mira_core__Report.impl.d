lib/core/report.ml: Archdesc Buffer Float Hashtbl List Mira_arch Option Printf String
