lib/core/mira.ml: Bridge Input_processor Metric_gen Mira_srclang Mira_visa Model_eval Model_ir Python_emit
