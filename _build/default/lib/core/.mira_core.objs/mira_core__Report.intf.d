lib/core/report.mli: Mira_arch
