lib/core/model_eval.ml: Count Domain Enumerate Expr Hashtbl List Mira_poly Mira_symexpr Mira_visa Model_ir Option Poly Ratio
