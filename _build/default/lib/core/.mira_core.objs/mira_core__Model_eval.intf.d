lib/core/model_eval.mli: Model_ir
