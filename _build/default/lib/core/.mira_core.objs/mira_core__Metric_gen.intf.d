lib/core/metric_gen.mli: Bridge Mira_srclang Model_ir
