lib/core/mira.mli: Input_processor Mira_codegen Model_ir
