lib/core/bridge.ml: Array Binast Hashtbl List Loc Mira_srclang Mira_visa Option
