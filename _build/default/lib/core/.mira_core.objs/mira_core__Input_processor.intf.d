lib/core/input_processor.mli: Mira_codegen Mira_srclang Mira_visa
