lib/core/predict.mli: Format Mira_arch
