lib/core/python_emit.ml: Buffer Count Expr List Mira_poly Mira_symexpr Model_ir Poly Printf String
