open Mira_srclang.Ast

type t = { app : string; loops : int; statements : int; in_loops : int }

let percentage t =
  if t.statements = 0 then 0.0
  else 100.0 *. float_of_int t.in_loops /. float_of_int t.statements

(* Statements are counted like the survey the paper cites: every
   executable statement node counts once, including the loop and
   branch heads themselves; declarations are not statements.  A
   statement is "in a loop" when any enclosing statement is a loop. *)
let of_program ~name (p : program) =
  let loops = ref 0 and statements = ref 0 and in_loops = ref 0 in
  let rec stmt ~inside (st : stmt) =
    match st.s with
    | Block body -> List.iter (stmt ~inside) body
    | For { body; _ } | While (_, body) ->
        incr loops;
        incr statements;
        (* a loop statement is covered by its own loop scope — the
           convention under which the survey's 100% rows are possible *)
        incr in_loops;
        List.iter (stmt ~inside:true) body
    | If { then_; else_; _ } ->
        incr statements;
        if inside then incr in_loops;
        List.iter (stmt ~inside) then_;
        List.iter (stmt ~inside) else_
    | Decl _ | Arr_decl _ -> ()
    | Assign _ | Op_assign _ | Expr_stmt _ | Return _ ->
        incr statements;
        if inside then incr in_loops
  in
  List.iter
    (fun (f : func) -> List.iter (stmt ~inside:false) f.fbody)
    (all_functions p);
  { app = name; loops = !loops; statements = !statements; in_loops = !in_loops }

let table rows =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-16s %8s %12s %10s %10s\n" "Application" "Loops"
       "Statements" "In loops" "Percent");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-16s %8d %12d %10d %9.0f%%\n" r.app r.loops
           r.statements r.in_loops (percentage r)))
    rows;
  Buffer.contents b
