(** Performance prediction from a model and an architecture
    description (paper §III-C6: "with sophisticated setting of the
    architecture description file, Mira is able to perform more
    complicated prediction").

    A prediction combines the model's per-mnemonic counts with the
    description's per-category issue costs, clock, vector width and
    memory bandwidth into a single-core time estimate, a byte-traffic
    estimate, and the roofline verdict (compute- vs memory-bound).
    These are first-order issue-cost estimates, not simulations — the
    intended use is comparing scenarios (architectures, input sizes,
    code variants), exactly how the paper positions Mira against
    heavyweight simulators like SST. *)

type t = {
  arch : string;
  instructions : float;  (** total retired *)
  cycles : float;  (** issue-cost weighted *)
  seconds : float;  (** cycles / clock *)
  flops : float;  (** FP operations (packed count lanes) *)
  bytes : float;  (** FP memory traffic *)
  arithmetic_intensity : float;  (** flops / bytes *)
  gflops_achieved : float;  (** flops / seconds *)
  gflops_attainable : float;  (** roofline bound *)
  bound : [ `Compute | `Memory | `Balanced ];
}

val of_counts : Mira_arch.Archdesc.t -> (string * float) list -> t

val compare_architectures :
  Mira_arch.Archdesc.t list -> (string * float) list -> (string * t) list
(** Predict the same workload on several machines, fastest first. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {2 Shared-memory estimates}

    Implements the paper's future-work item "extend Mira to enable
    characterization of shared-memory parallel programs": loops marked
    [#pragma @Annotation {parallel:yes}] contribute distributable
    cycles; everything else is serial.  The estimate is Amdahl-style:
    time(p) = serial + parallel/p. *)

type parallel_t = {
  p_arch : string;
  cores_used : int;
  serial_cycles : float;
  parallel_cycles : float;
  seconds_parallel : float;
  speedup : float;
  efficiency : float;
}

val parallel_estimate :
  Mira_arch.Archdesc.t ->
  ?cores:int ->
  (string * (float * float)) list ->
  parallel_t
(** Input is {!Mira_core.Model_eval.eval_split} output; [cores]
    defaults to the architecture's core count. *)

val pp_parallel : Format.formatter -> parallel_t -> unit
val parallel_to_string : parallel_t -> string
