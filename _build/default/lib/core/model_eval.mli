(** Evaluation of generated models (the OCaml twin of running the
    emitted Python).

    Given integer values for a function's model parameters, produces
    the predicted per-mnemonic instruction counts, inclusive of
    callees (call sites splice in callee evaluations times the call
    multiplicity, like the Python [handle_function_call]).  Counts are
    floats because [fraction] annotations scale contributions. *)

exception Missing_parameter of string * string
(** function, parameter *)

val eval :
  Model_ir.t -> fname:string -> env:(string * int) list ->
  (string * float) list
(** Predicted mnemonic counts for one invocation of [fname].
    @raise Missing_parameter when [env] lacks a needed parameter.
    @raise Invalid_argument on unknown function names. *)

val eval_exclusive :
  Model_ir.t -> fname:string -> env:(string * int) list ->
  (string * float) list
(** Self counts: this function's own instructions only, callee bodies
    excluded (TAU's "self" column; call-site instruction sequences
    still count as the caller's own). *)

val eval_split :
  Model_ir.t -> fname:string -> env:(string * int) list ->
  (string * (float * float)) list
(** Like {!eval}, but splits each mnemonic's count into
    (serial, parallel) portions according to [{parallel:yes}] loop
    annotations — the input to shared-memory predictions. *)

val total : (string * float) list -> float

val count : (string * float) list -> string -> float
(** Count of one mnemonic (0 when absent). *)

val fp_mnemonics : string list
(** The mnemonics PAPI-style FP_INS counting covers. *)

val fpi : (string * float) list -> float
(** Floating-point instruction count — the paper's validation
    metric. *)

val fpi_vectorization_aware :
  Model_ir.t ->
  lanes:int ->
  vectorized:(string * int list) list ->
  fname:string ->
  env:(string * int) list ->
  float
(** Packed-aware FPI for binaries produced by a trip-count-changing
    vectorizer (the ablation-B correction): [vectorized] maps function
    names to the source lines whose loops were packed (from
    {!Mira_codegen.Vectorize.vectorized_lines}); packed instructions
    on those lines count [1/lanes] of the bridged estimate and the
    scalar remainder copies are dropped (they execute at most
    [lanes-1] times per loop entry). *)
