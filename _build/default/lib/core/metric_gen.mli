(** The Metric Generator (paper §III-B): traverses the source AST with
    the binary AST attached through the {!Bridge} and produces the
    performance model.

    The bottom-up phase of the paper (hoisting SCoP information to
    loop head nodes) corresponds to {!Scop} extraction here; the
    top-down phase is the walk that pushes polyhedral context (loop
    levels, branch constraints, annotation scales) into nested
    structures while claiming each structure's instructions from the
    bridge.

    Every instruction of every analyzed function is attributed exactly
    once: statement buckets claim their spans, loop heads claim their
    init/cond/step sub-spans with the right multiplicities (once,
    n+1, n), and whatever remains (prologue, epilogue) is charged once
    per invocation. *)

exception Unsupported of string * Mira_srclang.Loc.pos

val build : source_name:string -> Mira_srclang.Ast.program -> Bridge.t -> Model_ir.t
(** Build models for every function in the program.  The AST must be
    typechecked; the bridge must come from the same program's compiled
    binary.
    @raise Unsupported only for malformed inputs (analysis limitations
    produce warnings and parameters instead, as the paper's annotation
    workflow expects). *)
