type t = {
  source_name : string;
  source : string;
  ast : Mira_srclang.Ast.program;
  object_bytes : string;
  binast : Mira_visa.Binast.t;
  level : Mira_codegen.Codegen.level;
}

let process ?(level = Mira_codegen.Codegen.O1) ~source_name source =
  (* The analysis AST is folded the same way the compiler folds (spans
     are preserved), so the metric generator's value propagation sees
     the expressions the binary actually implements; the compiler
     still parses its own copy. *)
  let parsed = Mira_srclang.Parser.parse source in
  let parsed =
    match level with
    | Mira_codegen.Codegen.O0 -> parsed
    | Mira_codegen.Codegen.O1 | Mira_codegen.Codegen.O2 ->
        Mira_codegen.Fold.program parsed
  in
  let ast = Mira_srclang.Typecheck.check_exn parsed in
  let object_bytes = Mira_codegen.Codegen.compile_to_object ~level source in
  let binast = Mira_visa.Binast.of_object object_bytes in
  { source_name; source; ast; object_bytes; binast; level }

let process_file ?level path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  process ?level ~source_name:(Filename.basename path) source
