(** Loop-coverage survey (paper Table I): for a program, how many
    loops it has, how many statements, and what fraction of statements
    sit inside loop bodies. *)

type t = {
  app : string;
  loops : int;
  statements : int;
  in_loops : int;
}

val percentage : t -> float

val of_program : name:string -> Mira_srclang.Ast.program -> t

val table : t list -> string
(** Render rows in the shape of Table I. *)
