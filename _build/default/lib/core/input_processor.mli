(** The Input Processor (paper §III-A): parses the source into the
    source AST and puts the compiled object file through the binary
    path (encode → decode → disassemble) to obtain the binary AST.

    Note the deliberate round-trip: Mira only ever sees the {e decoded
    object bytes}, never the compiler's in-memory program, mirroring
    the paper's setup where the binary comes from an external
    toolchain. *)

type t = {
  source_name : string;
  source : string;
  ast : Mira_srclang.Ast.program;  (** typechecked source AST *)
  object_bytes : string;
  binast : Mira_visa.Binast.t;
  level : Mira_codegen.Codegen.level;
}

val process :
  ?level:Mira_codegen.Codegen.level -> source_name:string -> string -> t
(** Process mini-C source text.
    @raise Mira_srclang.Parser.Error, [Failure] (typechecking),
    Mira_codegen.Codegen.Error. *)

val process_file : ?level:Mira_codegen.Codegen.level -> string -> t
