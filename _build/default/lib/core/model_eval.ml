open Mira_symexpr
open Mira_poly

exception Missing_parameter of string * string

let lookup fname env p =
  match List.assoc_opt p env with
  | Some v -> v
  | None -> raise (Missing_parameter (fname, p))

let eval_count fname env (c : Count.result) : float =
  match c with
  | Count.Closed e -> Expr.eval_float (fun v -> float_of_int (lookup fname env v)) e
  | Count.Deferred d ->
      let params =
        List.map (fun p -> (p, lookup fname env p)) (Domain.parameters d)
      in
      float_of_int (Enumerate.count ~params d)

let eval_mult fname env (m : Model_ir.mult) : float =
  m.scale
  *. List.fold_left
       (fun acc (sign, c) ->
         acc +. (float_of_int sign *. eval_count fname env c))
       0.0 m.terms

let add_counts tbl scale counts =
  List.iter
    (fun (m, c) ->
      Hashtbl.replace tbl m
        (Option.value ~default:0.0 (Hashtbl.find_opt tbl m)
        +. (scale *. float_of_int c)))
    counts

let add_scaled tbl scale counts =
  List.iter
    (fun (m, c) ->
      Hashtbl.replace tbl m
        (Option.value ~default:0.0 (Hashtbl.find_opt tbl m) +. (scale *. c)))
    counts

(* Split accumulation: (serial, parallel) per mnemonic. *)
let add_counts2 tbl scale ~parallel counts =
  List.iter
    (fun (m, c) ->
      let s0, p0 =
        Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt tbl m)
      in
      let v = scale *. float_of_int c in
      Hashtbl.replace tbl m
        (if parallel then (s0, p0 +. v) else (s0 +. v, p0)))
    counts

let add_scaled2 tbl scale ~parallel counts =
  List.iter
    (fun (m, (cs, cp)) ->
      let s0, p0 =
        Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt tbl m)
      in
      (* a parallel call site makes the whole callee parallel *)
      if parallel then
        Hashtbl.replace tbl m (s0, p0 +. (scale *. (cs +. cp)))
      else Hashtbl.replace tbl m (s0 +. (scale *. cs), p0 +. (scale *. cp)))
    counts

(* Exclusive (self) counts: only this function's own entries; call
   sites contribute their call-sequence instructions (they are Update
   entries) but callee bodies are not spliced in. *)
let eval_exclusive (model : Model_ir.t) ~fname ~env =
  let fm =
    match Model_ir.find model fname with
    | Some fm -> fm
    | None -> invalid_arg ("Model_eval.eval_exclusive: no model for " ^ fname)
  in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun entry ->
      match entry with
      | Model_ir.Update { counts; mult; _ } ->
          add_counts tbl (eval_mult fname env mult) counts
      | Model_ir.Call_site _ -> ())
    fm.mf_entries;
  Hashtbl.fold (fun m c acc -> (m, c) :: acc) tbl [] |> List.sort compare

let eval_split (model : Model_ir.t) ~fname ~env =
  let memo = Hashtbl.create 16 in
  let rec go fname env =
    let fm =
      match Model_ir.find model fname with
      | Some fm -> fm
      | None -> invalid_arg ("Model_eval.eval_split: no model for " ^ fname)
    in
    let key =
      (fname, List.map (fun p -> (p, List.assoc_opt p env)) fm.mf_params)
    in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        let tbl = Hashtbl.create 32 in
        List.iter
          (fun entry ->
            match entry with
            | Model_ir.Update { counts; mult; _ } ->
                add_counts2 tbl (eval_mult fname env mult)
                  ~parallel:mult.parallel counts
            | Model_ir.Call_site { callee; bindings; mult; _ } -> (
                match Model_ir.find model callee with
                | None -> ()
                | Some cm ->
                    let callee_env =
                      List.map
                        (fun p ->
                          match List.assoc_opt p bindings with
                          | Some (Model_ir.Bound poly) ->
                              let v =
                                Poly.eval
                                  (fun x ->
                                    Ratio.of_int (lookup fname env x))
                                  poly
                              in
                              (p, Ratio.floor v)
                          | Some (Model_ir.Unbound name) ->
                              (p, lookup fname env name)
                          | None -> (p, lookup fname env p))
                        cm.mf_params
                    in
                    let sub = go callee callee_env in
                    add_scaled2 tbl (eval_mult fname env mult)
                      ~parallel:mult.parallel sub))
          fm.mf_entries;
        let result =
          Hashtbl.fold (fun m c acc -> (m, c) :: acc) tbl []
          |> List.sort compare
        in
        Hashtbl.replace memo key result;
        result
  in
  go fname env

let eval (model : Model_ir.t) ~fname ~env =
  (* memoize on (function, relevant env slice) *)
  let memo = Hashtbl.create 16 in
  let rec go fname env =
    let fm =
      match Model_ir.find model fname with
      | Some fm -> fm
      | None -> invalid_arg ("Model_eval.eval: no model for " ^ fname)
    in
    let key =
      (fname, List.map (fun p -> (p, List.assoc_opt p env)) fm.mf_params)
    in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        let tbl = Hashtbl.create 32 in
        List.iter
          (fun entry ->
            match entry with
            | Model_ir.Update { counts; mult; _ } ->
                add_counts tbl (eval_mult fname env mult) counts
            | Model_ir.Call_site { callee; bindings; mult; _ } -> (
                match Model_ir.find model callee with
                | None -> ()  (* extern or unmodeled: call cost already counted *)
                | Some cm ->
                    let callee_env =
                      List.map
                        (fun p ->
                          match List.assoc_opt p bindings with
                          | Some (Model_ir.Bound poly) ->
                              let v =
                                Poly.eval
                                  (fun x ->
                                    Ratio.of_int (lookup fname env x))
                                  poly
                              in
                              (p, Ratio.floor v)
                          | Some (Model_ir.Unbound name) ->
                              (p, lookup fname env name)
                          | None -> (p, lookup fname env p))
                        cm.mf_params
                    in
                    let sub = go callee callee_env in
                    add_scaled tbl (eval_mult fname env mult) sub))
          fm.mf_entries;
        let result =
          Hashtbl.fold (fun m c acc -> (m, c) :: acc) tbl []
          |> List.sort compare
        in
        Hashtbl.replace memo key result;
        result
  in
  go fname env

let total counts = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 counts

let count counts m =
  Option.value ~default:0.0 (List.assoc_opt m counts)

let fp_mnemonics =
  [ "addsd"; "subsd"; "mulsd"; "divsd"; "sqrtsd"; "ucomisd";
    "addpd"; "subpd"; "mulpd"; "divpd" ]

let fpi counts =
  List.fold_left (fun acc m -> acc +. count counts m) 0.0 fp_mnemonics

(* FPI under a trip-count-changing vectorizer (ablation B): on source
   lines the compiler vectorized, the binary holds the packed main
   loop AND its scalar remainder epilogue.  Bridging multiplies both
   by the full source trip count; the correction divides packed
   contributions by the lane count and drops the epilogue's scalar FP
   (it executes at most lanes-1 times per loop entry). *)
let fpi_vectorization_aware (model : Model_ir.t) ~lanes ~vectorized ~fname
    ~env =
  let lanes_f = float_of_int lanes in
  let is_packed = Mira_visa.Isa.is_packed_mnemonic in
  let rec go fname env =
    let fm = Model_ir.find_exn model fname in
    let vec_lines =
      Option.value ~default:[] (List.assoc_opt fname vectorized)
    in
    List.fold_left
      (fun acc entry ->
        match entry with
        | Model_ir.Update { line; counts; mult; _ } ->
            let m = eval_mult fname env mult in
            let vectorized_line = List.mem line vec_lines in
            acc
            +. List.fold_left
                 (fun a (mn, c) ->
                   if not (List.mem mn fp_mnemonics) then a
                   else if vectorized_line then
                     if is_packed mn then a +. (m *. float_of_int c /. lanes_f)
                     else a  (* epilogue copy: at most lanes-1 runs *)
                   else a +. (m *. float_of_int c))
                 0.0 counts
        | Model_ir.Call_site { callee; bindings; mult; _ } -> (
            match Model_ir.find model callee with
            | None -> acc
            | Some cm ->
                let callee_env =
                  List.map
                    (fun p ->
                      match List.assoc_opt p bindings with
                      | Some (Model_ir.Bound poly) ->
                          ( p,
                            Ratio.floor
                              (Poly.eval
                                 (fun x -> Ratio.of_int (lookup fname env x))
                                 poly) )
                      | Some (Model_ir.Unbound name) ->
                          (p, lookup fname env name)
                      | None -> (p, lookup fname env p))
                    cm.mf_params
                in
                acc +. (eval_mult fname env mult *. go callee callee_env)))
      0.0 fm.mf_entries
  in
  go fname env
