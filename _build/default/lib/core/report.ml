open Mira_arch

let categorize (arch : Archdesc.t) counts =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (m, c) ->
      match Archdesc.group_of_mnemonic arch m with
      | Some g ->
          Hashtbl.replace totals g
            (c +. Option.value ~default:0.0 (Hashtbl.find_opt totals g))
      | None -> ())
    counts;
  List.map
    (fun (g, _) -> (g, Option.value ~default:0.0 (Hashtbl.find_opt totals g)))
    arch.groups

let scientific v =
  if v = 0.0 then "0"
  else
    let e = int_of_float (floor (log10 (Float.abs v))) in
    let m = v /. (10.0 ** float_of_int e) in
    (* two significant decimals, like 1.93E8 *)
    Printf.sprintf "%.4gE%d" m e

let table2 arch counts =
  let rows = categorize arch counts in
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%-42s %12s\n" "Category" "Count");
  List.iter
    (fun (g, c) ->
      if c > 0.0 then
        Buffer.add_string b (Printf.sprintf "%-42s %12s\n" g (scientific c)))
    rows;
  Buffer.contents b

let distribution arch counts =
  let rows = List.filter (fun (_, c) -> c > 0.0) (categorize arch counts) in
  let total = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 rows in
  let b = Buffer.create 256 in
  List.iter
    (fun (g, c) ->
      let pct = if total = 0.0 then 0.0 else 100.0 *. c /. total in
      let bar = String.make (int_of_float (pct /. 2.0)) '#' in
      Buffer.add_string b (Printf.sprintf "%-42s %5.1f%% %s\n" g pct bar))
    rows;
  Buffer.contents b

let group_count arch counts group =
  Option.value ~default:0.0 (List.assoc_opt group (categorize arch counts))

let arithmetic_intensity arch counts =
  let arith = group_count arch counts "SSE2 packed arithmetic instruction" in
  let move = group_count arch counts "SSE2 data movement instruction" in
  if move = 0.0 then 0.0 else arith /. move

let roofline_gflops (arch : Archdesc.t) counts =
  let lanes = float_of_int (Archdesc.vector_lanes arch) in
  let flops =
    List.fold_left
      (fun acc (m, c) ->
        match m with
        | "addsd" | "subsd" | "mulsd" | "divsd" | "sqrtsd" -> acc +. c
        | "addpd" | "subpd" | "mulpd" | "divpd" -> acc +. (lanes *. c)
        | _ -> acc)
      0.0 counts
  in
  let bytes =
    List.fold_left
      (fun acc (m, c) ->
        match m with
        | "movsd" -> acc +. (8.0 *. c)
        | "movapd" -> acc +. (8.0 *. lanes *. c)
        | _ -> acc)
      0.0 counts
  in
  if bytes = 0.0 then arch.peak_gflops
  else
    let ai = flops /. bytes in
    Float.min arch.peak_gflops (ai *. arch.mem_gbps)
