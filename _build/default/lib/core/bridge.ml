open Mira_srclang
open Mira_visa

type fn_bridge = {
  positions : Loc.pos array;
  mnemonics : string array;
  claimed : bool array;
}

type t = (string, fn_bridge) Hashtbl.t

let create (bast : Binast.t) : t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Binast.bin_func) ->
      let n = List.length f.finsns in
      let positions = Array.make n (Loc.pos 0 0) in
      let mnemonics = Array.make n "" in
      List.iteri
        (fun i (insn : Binast.bin_insn) ->
          positions.(i) <- Loc.pos insn.line insn.col;
          mnemonics.(i) <- insn.mnemonic)
        f.finsns;
      Hashtbl.replace tbl f.fname
        { positions; mnemonics; claimed = Array.make n false })
    bast.bfuncs;
  tbl

let of_items items : t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, arr) ->
      let n = Array.length arr in
      Hashtbl.replace tbl name
        {
          positions = Array.map fst arr;
          mnemonics = Array.map snd arr;
          claimed = Array.make n false;
        })
    items;
  tbl

let fn t name = Hashtbl.find_opt t name

let fn_exn t name =
  match fn t name with
  | Some b -> b
  | None -> invalid_arg ("Bridge.fn_exn: unknown function " ^ name)

let collect fb pred =
  let counts = Hashtbl.create 8 in
  Array.iteri
    (fun i pos ->
      if (not fb.claimed.(i)) && pred pos then begin
        fb.claimed.(i) <- true;
        let m = fb.mnemonics.(i) in
        Hashtbl.replace counts m
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts m))
      end)
    fb.positions;
  Hashtbl.fold (fun m c acc -> (m, c) :: acc) counts []
  |> List.sort compare

let claim_span fb span = collect fb (Loc.contains span)
let claim_rest fb = collect fb (fun _ -> true)

let unclaimed fb =
  Array.fold_left (fun n c -> if c then n else n + 1) 0 fb.claimed

let size fb = Array.length fb.positions
let reset fb = Array.fill fb.claimed 0 (Array.length fb.claimed) false
