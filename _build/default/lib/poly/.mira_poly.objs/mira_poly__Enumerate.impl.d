lib/poly/enumerate.ml: Array Domain List Mira_symexpr Poly Ratio
