lib/poly/count.mli: Domain Expr Format Mira_symexpr
