lib/poly/domain.ml: Format Hashtbl List Mira_symexpr Poly Set String
