lib/poly/plot.ml: Array Buffer Domain Enumerate List Printf Set
