lib/poly/enumerate.mli: Domain Mira_symexpr Poly Ratio
