lib/poly/count.ml: Array Domain Enumerate Expr Faulhaber Format List Mira_symexpr Poly Ratio
