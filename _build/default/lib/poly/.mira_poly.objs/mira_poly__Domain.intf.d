lib/poly/domain.mli: Format Mira_symexpr Poly
