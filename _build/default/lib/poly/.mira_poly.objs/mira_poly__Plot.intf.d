lib/poly/plot.mli: Domain
