let render ?(params = []) (t : Domain.t) =
  (match t.levels with
  | [ _; _ ] -> ()
  | _ -> invalid_arg "Plot.render: exactly two loop levels required");
  let pts = Enumerate.points ~params t in
  match pts with
  | [] -> "(empty domain)\n"
  | _ ->
      let outer = List.map (fun p -> p.(0)) pts in
      let inner = List.map (fun p -> p.(1)) pts in
      let omin = List.fold_left min max_int outer
      and omax = List.fold_left max min_int outer
      and imin = List.fold_left min max_int inner
      and imax = List.fold_left max min_int inner in
      let module P = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let set =
        List.fold_left (fun s p -> P.add (p.(0), p.(1)) s) P.empty pts
      in
      let buf = Buffer.create 256 in
      let ovar = (List.nth t.levels 0).Domain.var
      and ivar = (List.nth t.levels 1).Domain.var in
      Buffer.add_string buf
        (Printf.sprintf "%s \\ %s : %d..%d (rows) x %d..%d (cols)\n" ovar ivar
           omin omax imin imax);
      for o = omin to omax do
        Buffer.add_string buf (Printf.sprintf "%3d | " o);
        for i = imin to imax do
          Buffer.add_char buf (if P.mem (o, i) set then '*' else '.');
          Buffer.add_char buf ' '
        done;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf "      ";
      for i = imin to imax do
        Buffer.add_string buf (Printf.sprintf "%-2d" (((i mod 10) + 10) mod 10))
      done;
      Buffer.add_char buf '\n';
      Buffer.contents buf
