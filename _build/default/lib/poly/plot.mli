(** ASCII lattice plots of two-dimensional iteration domains — the
    textual counterpart of the paper's Figure 4 polyhedra drawings. *)

val render : ?params:(string * int) list -> Domain.t -> string
(** Renders a 2-level domain as a grid: ['*'] marks an iteration
    point, ['.'] a lattice point inside the bounding box that the
    domain excludes.  The vertical axis is the outer variable
    (increasing downwards), the horizontal axis the inner one.
    @raise Invalid_argument if the domain does not have exactly two
    levels. *)
