open Mira_symexpr

type result = Closed of Expr.t | Deferred of Domain.t

exception Give_up

let rec depends x (e : Expr.t) =
  match e with
  | P p -> Poly.degree_in x p > 0
  | Add (a, b) | Mul (a, b) | Max (a, b) | Min (a, b) ->
      depends x a || depends x b
  | Fdiv (a, _) | Cdiv (a, _) -> depends x a
  | If (g, a, b) -> Poly.degree_in x g > 0 || depends x a || depends x b

(* Non-emptiness guard for the integer range [lo, hi]: hi - lo + 1 >= 0
   covers the empty boundary case hi = lo - 1 where Faulhaber already
   yields 0. *)
let nonempty_guard lo hi = Poly.add (Poly.sub hi lo) Poly.one

(* Number of points in [lo, hi] with step 1. *)
let range_count ~assume lo hi =
  let n = Poly.add (Poly.sub hi lo) Poly.one in
  if assume then Expr.poly n else Expr.clamp0 (Expr.poly n)

(* g viewed as c*x + r with c a nonzero integer constant and r free of
   x.  Returns None when g is not of that shape. *)
let split_info x g =
  if Poly.degree_in x g <> 1 then None
  else
    let cs = Poly.coeffs_in x g in
    let c = cs.(1) and r = cs.(0) in
    match Poly.to_const c with
    | Some q when Ratio.is_integer q && not (Ratio.is_zero q) ->
        Some (Ratio.to_int_exn q, r)
    | _ -> None

(* ceil (p / c) for positive integer c, as a polynomial when exact. *)
let ceil_div_poly p c =
  if c = 1 then Some p
  else
    match Poly.to_const p with
    | Some q ->
        Some (Poly.of_int (Ratio.ceil (Ratio.div q (Ratio.of_int c))))
    | None -> None

(* Leaves of a same-constructor Max (resp. Min) tree. *)
let rec max_leaves (e : Expr.t) =
  match e with Max (a, b) -> max_leaves a @ max_leaves b | e -> [ e ]

let rec min_leaves (e : Expr.t) =
  match e with Min (a, b) -> min_leaves a @ min_leaves b | e -> [ e ]

let as_poly (e : Expr.t) =
  match Expr.to_poly e with Some p -> p | None -> raise Give_up

(* Sum [e] over integer x in [lo, hi] (step 1).  [lo] and [hi] are
   polynomials free of x.  When [assume] holds, the base range is
   trusted to be non-empty. *)
let rec sum_expr ~assume x ~lo ~hi (e : Expr.t) : Expr.t =
  if not (depends x e) then Expr.mul e (range_count ~assume lo hi)
  else
    match e with
    | P p ->
        let f = Expr.poly (Faulhaber.sum_range x ~lo ~hi p) in
        if assume then f else Expr.if_ (nonempty_guard lo hi) f Expr.zero
    | Add (a, b) ->
        Expr.add (sum_expr ~assume x ~lo ~hi a) (sum_expr ~assume x ~lo ~hi b)
    | Mul (a, b) when not (depends x a) ->
        Expr.mul a (sum_expr ~assume x ~lo ~hi b)
    | Mul (a, b) when not (depends x b) ->
        Expr.mul (sum_expr ~assume x ~lo ~hi a) b
    | Max _ ->
        let leaves = max_leaves e in
        split_extremum ~assume ~is_max:true x ~lo ~hi leaves
    | Min _ ->
        let leaves = min_leaves e in
        split_extremum ~assume ~is_max:false x ~lo ~hi leaves
    | If (g, a, b) ->
        if Poly.degree_in x g > 0 then
          split_if ~assume x ~lo ~hi g a b
        else Expr.if_ g (sum_expr ~assume x ~lo ~hi a) (sum_expr ~assume x ~lo ~hi b)
    | Mul _ | Fdiv _ | Cdiv _ -> raise Give_up

(* Sum a Max/Min tree by resolving its first two leaves with an
   interval split, then recursing on the reduced tree. *)
and split_extremum ~assume ~is_max x ~lo ~hi leaves =
  match leaves with
  | [ single ] -> sum_expr ~assume x ~lo ~hi single
  | l1 :: l2 :: rest ->
      let p1 = as_poly l1 and p2 = as_poly l2 in
      let rebuild winner =
        let op = if is_max then Expr.max_ else Expr.min_ in
        List.fold_left op winner rest
      in
      let g = Poly.sub p1 p2 in
      (* g >= 0 means p1 >= p2: the max is p1, the min is p2. *)
      let on_true = rebuild (if is_max then l1 else l2) in
      let on_false = rebuild (if is_max then l2 else l1) in
      if Poly.degree_in x g > 0 then split_if ~assume x ~lo ~hi g on_true on_false
      else Expr.if_ g (sum_expr ~assume x ~lo ~hi on_true)
             (sum_expr ~assume x ~lo ~hi on_false)
  | [] -> assert false

(* Split the summation range at the breakpoint of guard g = c*x + r. *)
and split_if ~assume x ~lo ~hi g on_true on_false =
  ignore assume;
  match split_info x g with
  | None -> raise Give_up
  | Some (c, r) ->
      (* Clipped sub-ranges may be empty, so sub-sums never assume. *)
      let sum_piece lo' hi' e = sum_expr ~assume:false x ~lo:lo' ~hi:hi' e in
      (* Sum over [max(lo,a), hi]: decide the max statically if the
         difference is constant, otherwise emit a parameter guard. *)
      let with_lo a k =
        match Poly.to_const (Poly.sub a lo) with
        | Some q -> if Ratio.sign q >= 0 then k a else k lo
        | None -> Expr.if_ (Poly.sub a lo) (k a) (k lo)
      in
      let with_hi b k =
        match Poly.to_const (Poly.sub hi b) with
        | Some q -> if Ratio.sign q >= 0 then k b else k hi
        | None -> Expr.if_ (Poly.sub hi b) (k b) (k hi)
      in
      if c > 0 then
        (* g >= 0 iff x >= t, t = ceil(-r/c). *)
        match ceil_div_poly (Poly.neg r) c with
        | None -> raise Give_up
        | Some t ->
            let true_part = with_lo t (fun lo' -> sum_piece lo' hi on_true) in
            let false_part =
              with_hi (Poly.sub t Poly.one) (fun hi' ->
                  sum_piece lo hi' on_false)
            in
            Expr.add true_part false_part
      else
        (* c < 0: g >= 0 iff x <= t, t = floor(r/(-c)). *)
        let t_opt =
          if c = -1 then Some r
          else
            match Poly.to_const r with
            | Some q ->
                Some (Poly.of_int (Ratio.floor (Ratio.div q (Ratio.of_int (-c)))))
            | None -> None
        in
        match t_opt with
        | None -> raise Give_up
        | Some t ->
            let true_part = with_hi t (fun hi' -> sum_piece lo hi' on_true) in
            let false_part =
              with_lo (Poly.add t Poly.one) (fun lo' ->
                  sum_piece lo' hi on_false)
            in
            Expr.add true_part false_part

(* Count of multiples: points x in [lo, hi] with x + r ≡ 0 (mod m),
   i.e. multiples of m in [lo + r, hi + r]:
   floor((hi+r)/m) - ceil((lo+r)/m) + 1, clamped at 0. *)
let lattice_count ~assume lo hi r m =
  let hi' = Expr.fdiv (Expr.poly (Poly.add hi r)) m in
  let lo' = Expr.cdiv (Expr.poly (Poly.add lo r)) m in
  let n = Expr.add (Expr.sub hi' lo') Expr.one in
  if assume then n else Expr.max_ Expr.zero n

(* One loop level: sum [e] over [x] with the level's bounds, step and
   the guards attached to this level. *)
let rec sum_level ~assume x ~lo ~hi ~step ~(extra : Domain.guard list) e =
  (* Peel modular guards first (complement rule for Mod_ne). *)
  let is_mod = function
    | Domain.Mod_eq _ | Domain.Mod_ne _ -> true
    | Domain.Ge _ -> false
  in
  match List.partition is_mod extra with
  | Domain.Mod_ne (p, m) :: mods, affine ->
      let all = sum_level ~assume x ~lo ~hi ~step ~extra:(mods @ affine) e in
      let eq =
        sum_level ~assume:false x ~lo ~hi ~step
          ~extra:(Domain.Mod_eq (p, m) :: (mods @ affine))
          e
      in
      Expr.sub all eq
  | Domain.Mod_eq (p, m) :: mods, affine ->
      if mods <> [] || affine <> [] then raise Give_up;
      if step <> 1 then raise Give_up;
      if depends x e then raise Give_up;
      (match split_info x p with
      | Some (1, r) -> Expr.mul e (lattice_count ~assume lo hi r m)
      | Some (-1, r) ->
          (* -x + r ≡ 0 (mod m) is x ≡ r (mod m): same as x + (-r). *)
          Expr.mul e (lattice_count ~assume lo hi (Poly.neg r) m)
      | _ -> raise Give_up)
  | [], affine -> (
      (* Affine guards wrap the summand in If nodes; interval splitting
         resolves them. *)
      let e =
        List.fold_left
          (fun e g ->
            match g with
            | Domain.Ge p -> Expr.if_ p e Expr.zero
            | Domain.Mod_eq _ | Domain.Mod_ne _ -> assert false)
          e affine
      in
      match step with
      | 1 -> sum_expr ~assume x ~lo ~hi e
      | s ->
          if depends x e then raise Give_up
          else
            let iters =
              Expr.add (Expr.fdiv (Expr.poly (Poly.sub hi lo)) s) Expr.one
            in
            let iters = if assume then iters else Expr.max_ Expr.zero iters in
            Expr.mul e iters)
  | _ :: _, _ -> raise Give_up

let deepest_level_of_guard (t : Domain.t) g =
  let vs =
    match g with
    | Domain.Ge p | Domain.Mod_eq (p, _) | Domain.Mod_ne (p, _) -> Poly.vars p
  in
  let rec go i best = function
    | [] -> best
    | l :: rest ->
        go (i + 1) (if List.mem l.Domain.var vs then i else best) rest
  in
  go 0 (-1) t.levels

let count ?(assume_nonempty = true) (t : Domain.t) : result =
  match Domain.validate t with
  | Error _ -> Deferred t
  | Ok () -> (
      try
        let n = List.length t.levels in
        let guards_at = Array.make (max n 1) [] in
        let param_guards = ref [] in
        List.iter
          (fun g ->
            let d = deepest_level_of_guard t g in
            if d < 0 then param_guards := g :: !param_guards
            else guards_at.(d) <- guards_at.(d) @ [ g ])
          t.guards;
        let levels = Array.of_list t.levels in
        let e = ref Expr.one in
        for i = n - 1 downto 0 do
          let l = levels.(i) in
          e :=
            sum_level ~assume:assume_nonempty l.var ~lo:l.lo ~hi:l.hi
              ~step:l.step ~extra:guards_at.(i) !e
        done;
        let e =
          List.fold_left
            (fun e g ->
              match g with
              | Domain.Ge p -> Expr.if_ p e Expr.zero
              | Domain.Mod_eq _ | Domain.Mod_ne _ -> raise Give_up)
            !e !param_guards
        in
        Closed e
      with Give_up -> Deferred t)

let eval ~params = function
  | Closed e -> Expr.eval_int (fun x -> List.assoc x params) e
  | Deferred t -> Enumerate.count ~params t

let eval_float ~params = function
  | Closed e -> Expr.eval_float (fun x -> List.assoc x params) e
  | Deferred t ->
      let iparams = List.map (fun (k, v) -> (k, int_of_float v)) params in
      float_of_int (Enumerate.count ~params:iparams t)

let expr = function Closed e -> Some e | Deferred _ -> None

let pp ppf = function
  | Closed e -> Expr.pp ppf e
  | Deferred t -> Format.fprintf ppf "deferred(@[%a@])" Domain.pp t
