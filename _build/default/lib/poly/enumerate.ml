open Mira_symexpr

let eval_poly env p =
  Poly.eval
    (fun x ->
      match List.assoc_opt x env with
      | Some v -> Ratio.of_int v
      | None -> raise Not_found)
    p

(* Guards that only mention bound variables can be checked as soon as
   those variables are assigned; we re-check all of them at the leaf
   for simplicity (domains passed here are small or the check is
   cheap). *)
let guard_holds env = function
  | Domain.Ge p -> Ratio.sign (eval_poly env p) >= 0
  | Domain.Mod_eq (p, m) ->
      let v = Ratio.to_int_exn (eval_poly env p) in
      ((v mod m) + m) mod m = 0
  | Domain.Mod_ne (p, m) ->
      let v = Ratio.to_int_exn (eval_poly env p) in
      ((v mod m) + m) mod m <> 0

let guard_vars = function
  | Domain.Ge p | Domain.Mod_eq (p, _) | Domain.Mod_ne (p, _) -> Poly.vars p

let iter ~params (t : Domain.t) f =
  let n = List.length t.levels in
  let point = Array.make n 0 in
  (* Pre-split guards by the deepest level variable they mention, so
     each guard is checked as early as possible. *)
  let lvars = Domain.loop_vars t in
  let depth_of_guard g =
    let vs = guard_vars g in
    let rec deepest i best = function
      | [] -> best
      | v :: rest -> deepest (i + 1) (if List.mem v vs then i else best) rest
    in
    deepest 0 (-1) lvars
  in
  let guards_at = Array.make (n + 1) [] in
  List.iter
    (fun g ->
      let d = depth_of_guard g in
      let slot = if d < 0 then 0 else d + 1 in
      guards_at.(slot) <- g :: guards_at.(slot))
    t.guards;
  let rec go i env =
    if List.for_all (guard_holds env) guards_at.(i) then
      if i = n then f (Array.copy point)
      else
        let l = List.nth t.levels i in
        let lo = Ratio.ceil (eval_poly env l.lo) in
        let hi = Ratio.floor (eval_poly env l.hi) in
        let v = ref lo in
        while !v <= hi do
          point.(i) <- !v;
          go (i + 1) ((l.var, !v) :: env);
          v := !v + l.step
        done
  in
  go 0 params

let count ~params t =
  let c = ref 0 in
  iter ~params t (fun _ -> incr c);
  !c

let points ~params t =
  let acc = ref [] in
  iter ~params t (fun p -> acc := p :: !acc);
  List.rev !acc
