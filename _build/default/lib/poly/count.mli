(** Parametric lattice-point counting.

    [count t] attempts to produce a closed-form symbolic expression in
    the domain parameters for the number of integer points in [t].
    Rectangular and triangular affine nests give polynomials
    (Faulhaber summation); affine guards and [max]/[min] clipping are
    resolved by splitting summation intervals at their breakpoints;
    lattice guards on the innermost variable produce floor/ceiling
    divisions; everything else falls back to {!Enumerate} at
    evaluation time ([Deferred]).

    Counting follows the paper's convention that source loop ranges
    are non-empty as written ([assume_nonempty], default true): the
    polyhedral model of §III-C2 multiplies counts without emptiness
    guards.  Pass [~assume_nonempty:false] to guard every range. *)

open Mira_symexpr

type result = Closed of Expr.t | Deferred of Domain.t

val count : ?assume_nonempty:bool -> Domain.t -> result

val eval : params:(string * int) list -> result -> int
(** Evaluate a count for concrete parameter values, enumerating if the
    count was deferred. *)

val eval_float : params:(string * float) list -> result -> float
(** Approximate evaluation; deferred counts require integral
    parameters and are enumerated. *)

val expr : result -> Expr.t option
val pp : Format.formatter -> result -> unit
