(** Exact lattice-point enumeration over an iteration domain with all
    parameters instantiated.  Used as the fallback evaluation mode for
    domains the symbolic counter cannot close (paper §III-C2: cases
    beyond the polyhedral model) and as the ground truth in tests. *)

open Mira_symexpr

val count : params:(string * int) list -> Domain.t -> int
(** Number of integer points in the domain.  Bounds and guards are
    evaluated under [params] extended with outer loop indices as the
    enumeration recurses.
    @raise Not_found if a free variable is missing from [params]. *)

val points : params:(string * int) list -> Domain.t -> int array list
(** The points themselves, each an array of loop-variable values in
    level order (outermost first).  Intended for small domains, e.g.
    the Figure 4 lattice plots. *)

val iter : params:(string * int) list -> Domain.t -> (int array -> unit) -> unit

val eval_poly : (string * int) list -> Poly.t -> Ratio.t
(** Evaluate a polynomial under an integer environment. *)
