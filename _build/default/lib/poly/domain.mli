(** Iteration domains: loop nests with affine bounds, affine guards and
    lattice (modulo) guards.

    A domain describes the static control part (SCoP) of a loop nest.
    Bounds are polynomials over outer loop variables and model
    parameters ([Mira_symexpr.Poly]); for a well-formed polyhedral
    domain they are affine in the loop variables, which
    {!val:validate} checks. *)

open Mira_symexpr

type level = {
  var : string;  (** loop index variable *)
  lo : Poly.t;  (** inclusive lower bound *)
  hi : Poly.t;  (** inclusive upper bound *)
  step : int;  (** positive stride *)
}

type guard =
  | Ge of Poly.t  (** [Ge p] constrains [p >= 0] *)
  | Mod_eq of Poly.t * int  (** [Mod_eq (p, m)] constrains [p ≡ 0 (mod m)] *)
  | Mod_ne of Poly.t * int  (** [Mod_ne (p, m)] constrains [p ≢ 0 (mod m)] *)

type t = {
  levels : level list;  (** outermost first *)
  guards : guard list;
}

val empty : t
val level : ?step:int -> string -> lo:Poly.t -> hi:Poly.t -> level

val add_level : t -> level -> t
(** Appends an innermost level. *)

val add_guard : t -> guard -> t

val loop_vars : t -> string list
(** Loop variables, outermost first. *)

val parameters : t -> string list
(** Free variables that are not loop indices, sorted. *)

type violation =
  | Nonaffine_bound of { var : string; bound : Poly.t }
  | Nonpositive_step of { var : string; step : int }
  | Duplicate_var of string
  | Nonaffine_guard of Poly.t
  | Bad_modulus of int

val validate : t -> (unit, violation list) result
(** Checks the domain is a well-formed SCoP: bounds and guards affine
    in the loop variables (arbitrary polynomials in parameters are
    allowed), strictly positive steps, distinct index variables,
    moduli [>= 2]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
