open Mira_symexpr

type level = { var : string; lo : Poly.t; hi : Poly.t; step : int }

type guard =
  | Ge of Poly.t
  | Mod_eq of Poly.t * int
  | Mod_ne of Poly.t * int

type t = { levels : level list; guards : guard list }

let empty = { levels = []; guards = [] }
let level ?(step = 1) var ~lo ~hi = { var; lo; hi; step }
let add_level t l = { t with levels = t.levels @ [ l ] }
let add_guard t g = { t with guards = t.guards @ [ g ] }
let loop_vars t = List.map (fun l -> l.var) t.levels

let parameters t =
  let module S = Set.Make (String) in
  let lvars = S.of_list (loop_vars t) in
  let add_poly s p = List.fold_left (fun s x -> S.add x s) s (Poly.vars p) in
  let s =
    List.fold_left (fun s l -> add_poly (add_poly s l.lo) l.hi) S.empty
      t.levels
  in
  let s =
    List.fold_left
      (fun s -> function
        | Ge p | Mod_eq (p, _) | Mod_ne (p, _) -> add_poly s p)
      s t.guards
  in
  S.elements (S.diff s lvars)

type violation =
  | Nonaffine_bound of { var : string; bound : Poly.t }
  | Nonpositive_step of { var : string; step : int }
  | Duplicate_var of string
  | Nonaffine_guard of Poly.t
  | Bad_modulus of int

(* Affine in the loop variables: every monomial has total degree at
   most 1 when restricted to loop variables. *)
let affine_in_loop_vars lvars p =
  Poly.fold_terms
    (fun m _ ok ->
      ok
      &&
      let d =
        List.fold_left
          (fun d (x, e) -> if List.mem x lvars then d + e else d)
          0 m
      in
      d <= 1)
    p true

let validate t =
  let lvars = loop_vars t in
  let errs = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l.var then errs := Duplicate_var l.var :: !errs
      else Hashtbl.add seen l.var ();
      if l.step <= 0 then
        errs := Nonpositive_step { var = l.var; step = l.step } :: !errs;
      List.iter
        (fun b ->
          if not (affine_in_loop_vars lvars b) then
            errs := Nonaffine_bound { var = l.var; bound = b } :: !errs)
        [ l.lo; l.hi ])
    t.levels;
  List.iter
    (fun g ->
      match g with
      | Ge p | Mod_eq (p, _) | Mod_ne (p, _) ->
          if not (affine_in_loop_vars lvars p) then
            errs := Nonaffine_guard p :: !errs;
          (match g with
          | Mod_eq (_, m) | Mod_ne (_, m) ->
              if m < 2 then errs := Bad_modulus m :: !errs
          | Ge _ -> ()))
    t.guards;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let pp_violation ppf = function
  | Nonaffine_bound { var; bound } ->
      Format.fprintf ppf "non-affine bound for %s: %a" var Poly.pp bound
  | Nonpositive_step { var; step } ->
      Format.fprintf ppf "non-positive step %d for %s" step var
  | Duplicate_var v -> Format.fprintf ppf "duplicate loop variable %s" v
  | Nonaffine_guard p -> Format.fprintf ppf "non-affine guard: %a" Poly.pp p
  | Bad_modulus m -> Format.fprintf ppf "modulus %d < 2" m

let pp ppf t =
  List.iter
    (fun l ->
      Format.fprintf ppf "for %s = %a .. %a step %d@." l.var Poly.pp l.lo
        Poly.pp l.hi l.step)
    t.levels;
  List.iter
    (fun g ->
      match g with
      | Ge p -> Format.fprintf ppf "subject to %a >= 0@." Poly.pp p
      | Mod_eq (p, m) -> Format.fprintf ppf "subject to %a ≡ 0 (mod %d)@." Poly.pp p m
      | Mod_ne (p, m) -> Format.fprintf ppf "subject to %a ≢ 0 (mod %d)@." Poly.pp p m)
    t.guards
