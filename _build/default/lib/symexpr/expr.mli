(** Symbolic count expressions.

    Parametric iteration counts are polynomials in the model
    parameters whenever the loop nest is affine and rectangular or
    triangular; [max]/[min], floor/ceiling division (loop steps,
    lattice constraints), guards (interval splitting) and explicit
    sums/products extend them to the remaining cases Mira handles.
    Values are exact rationals at evaluation time. *)

type t = private
  | P of Poly.t
  | Add of t * t
  | Mul of t * t
  | Max of t * t
  | Min of t * t
  | Fdiv of t * int  (** floor division by a positive integer constant *)
  | Cdiv of t * int  (** ceiling division by a positive integer constant *)
  | If of Poly.t * t * t
      (** [If (g, a, b)] is [a] when [g >= 0] holds, else [b]. *)

val poly : Poly.t -> t
val of_int : int -> t
val of_ratio : Ratio.t -> t
val var : string -> t
val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val max_ : t -> t -> t
val min_ : t -> t -> t
val fdiv : t -> int -> t
val cdiv : t -> int -> t
val if_ : Poly.t -> t -> t -> t

val clamp0 : t -> t
(** [clamp0 e] is [max 0 e] — the "empty loop executes zero times"
    guard. *)

val sum : t list -> t

val to_poly : t -> Poly.t option
(** [Some p] iff the expression is a plain polynomial. *)

val is_const : t -> Ratio.t option

val eval : (string -> Ratio.t) -> t -> Ratio.t
val eval_int : (string -> int) -> t -> int
val eval_float : (string -> float) -> t -> float

val vars : t -> string list
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_python : t -> string
