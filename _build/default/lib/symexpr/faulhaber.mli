(** Closed-form summation of polynomials over integer ranges
    (Faulhaber's formula), the engine behind parametric loop-nest
    counting.

    [sum_range x ~lo ~hi p] equals {m sum_{x=lo}^{hi} p(x)} whenever
    [hi >= lo - 1] (for [hi = lo - 1] the empty sum is 0).  Callers are
    responsible for that validity condition; the polyhedral layer
    either proves it or splits intervals. *)

val bernoulli : int -> Ratio.t
(** Bernoulli number {m B_n^+} (the [B(1) = +1/2] convention). *)

val power_sum : int -> Poly.t
(** [power_sum k] is the polynomial {m S_k(n) = sum_{i=1}^{n} i^k} in
    the variable ["n"]. *)

val sum_range : string -> lo:Poly.t -> hi:Poly.t -> Poly.t -> Poly.t
(** [sum_range x ~lo ~hi p] sums [p] over integer values of variable
    [x] from [lo] to [hi] inclusive.  [lo] and [hi] must not contain
    [x].  The result no longer contains [x]. *)
