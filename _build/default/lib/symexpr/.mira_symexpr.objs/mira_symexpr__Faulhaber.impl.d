lib/symexpr/faulhaber.ml: Array Hashtbl Poly Ratio
