lib/symexpr/ratio.mli: Format
