lib/symexpr/poly.ml: Array Format List Map Printf Ratio Set Stdlib String
