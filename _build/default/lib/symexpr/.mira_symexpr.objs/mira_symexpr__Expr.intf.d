lib/symexpr/expr.mli: Format Poly Ratio
