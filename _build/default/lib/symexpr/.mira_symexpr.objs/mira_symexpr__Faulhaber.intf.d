lib/symexpr/faulhaber.mli: Poly Ratio
