lib/symexpr/expr.ml: Float Format List Poly Printf Ratio Set String
