lib/symexpr/poly.mli: Format Ratio
