lib/symexpr/ratio.ml: Format
