(** Exact rational arithmetic on native integers.

    Numerators and denominators stay tiny in Mira models (the largest
    constants are Bernoulli-number denominators used by Faulhaber
    summation), so native [int] is ample.  All values are kept in
    canonical form: [den > 0] and [gcd (abs num) den = 1]. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val floor : t -> int
(** Greatest integer [<=] the value. *)

val ceil : t -> int
(** Least integer [>=] the value. *)

val pow : t -> int -> t
(** [pow q k] for [k >= 0]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
