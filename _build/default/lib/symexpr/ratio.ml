type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num q = q.num
let den q = q.den
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)
let div a b = make (a.num * b.den) (a.den * b.num)
let neg a = { a with num = -a.num }
let abs a = { a with num = abs a.num }
let inv a = make a.den a.num
let equal a b = a.num = b.num && a.den = b.den
let compare a b = compare (a.num * b.den) (b.num * a.den)
let sign a = compare a zero
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Ratio.to_int_exn: not an integer";
  a.num

let to_float a = float_of_int a.num /. float_of_int a.den

let floor a =
  if a.num >= 0 then a.num / a.den
  else
    let q = a.num / a.den in
    if q * a.den = a.num then q else q - 1

let ceil a = -floor (neg a)

let pow a k =
  assert (k >= 0);
  let rec go acc k = if k = 0 then acc else go (mul acc a) (k - 1) in
  go one k

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
